// Sharded scatter-gather serving benchmark (PR 10): on one dataset it runs
// the same randomized batch through
//
//   1. the single-node GpssnDatabase::Query loop (the reference answers),
//   2. an in-process ServingCluster at shard counts 1, 2, and 4,
//
// and reports batch QPS per shard count, the 4-shard / 1-shard scaling
// ratio, the cross-shard refine skip rate, and whether every sharded
// answer is byte-identical to the single-node one (it must be — that is
// the serving layer's core invariant, enforced here and by
// tests/serving/sharded_differential_test.cc).
//
// scripts/bench_smoke.sh turns the JSON report into BENCH_PR10.json with a
// core-aware acceptance gate: on >= 4 cores the 4-shard cluster must reach
// >= 2.5x the 1-shard batch QPS; on smaller hosts only answer identity and
// a positive skip rate are enforced (shards are threads here, so a
// single-core box cannot exhibit scale-out).
//
// Environment:
//   GPSSN_BENCH_SCALE       dataset scale (bench_util.h; default 0.1)
//   GPSSN_BENCH_QUERIES     batch size multiplier knob (default 12 -> 96)
//   GPSSN_BENCH_PR10_JSON   write a machine-readable report here

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "serving/coordinator.h"

namespace gpssn::bench {
namespace {

constexpr int kShardCounts[] = {1, 2, 4};

bool SameAnswer(const GpssnAnswer& a, const GpssnAnswer& b) {
  if (a.found != b.found) return false;
  if (!a.found) return true;
  return a.users == b.users && a.center == b.center && a.pois == b.pois &&
         std::memcmp(&a.max_dist, &b.max_dist, sizeof(a.max_dist)) == 0;
}

void Run() {
  const BenchConfig config = GetConfig();
  // A pipelined batch needs enough queries to keep every shard busy; the
  // default 12-query knob scales to 96.
  const int batch_size = config.queries * 8;
  std::printf("=== PR 10: sharded scatter-gather serving "
              "(scale %.2f, batch of %d) ===\n",
              config.scale, batch_size);

  auto db = BuildDatabase(MakeDataset("UNI", config.scale));
  const GpssnQuery base = DefaultQuery();
  Rng rng(17);
  std::vector<GpssnQuery> batch(batch_size, base);
  for (GpssnQuery& q : batch) {
    q.issuer = static_cast<UserId>(rng.NextBounded(db->ssn().num_users()));
  }

  // --- 1. Single-node reference answers (and serial QPS baseline) -------
  QueryOptions options;
  std::vector<GpssnAnswer> reference(batch.size());
  WallTimer timer;
  for (size_t i = 0; i < batch.size(); ++i) {
    auto answer = db->Query(batch[i], options);
    GPSSN_CHECK(answer.ok());
    reference[i] = *answer;
  }
  const double single_node_s = timer.ElapsedSeconds();
  const double single_node_qps =
      single_node_s > 0.0 ? batch.size() / single_node_s : 0.0;
  std::printf("single-node:      %7.3f s  (%.1f QPS)\n", single_node_s,
              single_node_qps);

  // --- 2. Serving cluster at each shard count ---------------------------
  double qps[std::size(kShardCounts)] = {};
  double skip_rate[std::size(kShardCounts)] = {};
  uint64_t skipped[std::size(kShardCounts)] = {};
  uint64_t refined[std::size(kShardCounts)] = {};
  uint64_t msgs[std::size(kShardCounts)] = {};
  bool identical = true;
  for (size_t i = 0; i < std::size(kShardCounts); ++i) {
    const int shards = kShardCounts[i];
    serving::ServingOptions serving_options;
    serving_options.num_shards = shards;
    serving_options.query = options;
    auto cluster = serving::ServingCluster::Create(*db, serving_options);
    GPSSN_CHECK(cluster.ok());
    BatchStats stats;
    const std::vector<BatchQueryResult> results =
        (*cluster)->QueryBatch(batch, &stats);
    for (size_t q = 0; q < results.size(); ++q) {
      GPSSN_CHECK(results[q].status.ok());
      if (!SameAnswer(results[q].answer, reference[q])) {
        std::printf("MISMATCH at query %zu (shards=%d)\n", q, shards);
        identical = false;
      }
    }
    qps[i] = stats.throughput_qps;
    skipped[i] = stats.totals.skipped_shards;
    refined[i] = stats.totals.refined_shards;
    msgs[i] = stats.totals.shard_msgs;
    const uint64_t planned = skipped[i] + refined[i];
    skip_rate[i] =
        planned > 0 ? static_cast<double>(skipped[i]) / planned : 0.0;
    std::printf("cluster(%d shard%s): %7.3f s  (%.1f QPS, "
                "refine skip-rate %.0f%%, %llu msgs)\n",
                shards, shards == 1 ? " " : "s", stats.wall_seconds,
                qps[i], 100.0 * skip_rate[i],
                static_cast<unsigned long long>(msgs[i]));
  }
  const double scaling = qps[0] > 0.0 ? qps[2] / qps[0] : 0.0;
  std::printf("4-shard / 1-shard QPS: %.2fx (answers identical: %s)\n",
              scaling, identical ? "yes" : "NO");

  if (const char* out = std::getenv("GPSSN_BENCH_PR10_JSON")) {
    std::FILE* f = std::fopen(out, "w");
    GPSSN_CHECK(f != nullptr);
    std::fprintf(f,
                 "{\n"
                 "  \"batch_size\": %d,\n"
                 "  \"single_node_qps\": %.3f,\n"
                 "  \"shard_counts\": [1, 2, 4],\n"
                 "  \"batch_qps\": [%.3f, %.3f, %.3f],\n"
                 "  \"skipped_shards\": [%llu, %llu, %llu],\n"
                 "  \"refined_shards\": [%llu, %llu, %llu],\n"
                 "  \"shard_msgs\": [%llu, %llu, %llu],\n"
                 "  \"refine_skip_rate\": [%.4f, %.4f, %.4f],\n"
                 "  \"qps_scaling_4_vs_1\": %.4f,\n"
                 "  \"answers_identical\": %s\n"
                 "}\n",
                 batch_size, single_node_qps, qps[0], qps[1], qps[2],
                 static_cast<unsigned long long>(skipped[0]),
                 static_cast<unsigned long long>(skipped[1]),
                 static_cast<unsigned long long>(skipped[2]),
                 static_cast<unsigned long long>(refined[0]),
                 static_cast<unsigned long long>(refined[1]),
                 static_cast<unsigned long long>(refined[2]),
                 static_cast<unsigned long long>(msgs[0]),
                 static_cast<unsigned long long>(msgs[1]),
                 static_cast<unsigned long long>(msgs[2]), skip_rate[0],
                 skip_rate[1], skip_rate[2], scaling,
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out);
  }
  GPSSN_CHECK(identical);
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
