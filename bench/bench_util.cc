#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gpssn::bench {

BenchConfig GetConfig() {
  BenchConfig config;
  if (const char* scale = std::getenv("GPSSN_BENCH_SCALE")) {
    if (std::strcmp(scale, "paper") == 0) {
      config.scale = 1.0;
    } else {
      const double v = std::atof(scale);
      if (v > 0.0 && v <= 1.0) config.scale = v;
    }
  }
  if (const char* queries = std::getenv("GPSSN_BENCH_QUERIES")) {
    const int v = std::atoi(queries);
    if (v > 0) config.queries = v;
  }
  return config;
}

GpssnQuery DefaultQuery() {
  GpssnQuery q;
  q.tau = 5;
  q.gamma = 0.3;
  q.theta = 0.3;
  q.radius = 2.0;
  return q;
}

SpatialSocialNetwork MakeDataset(const std::string& name, double scale,
                                 const DatasetOverrides& overrides) {
  auto scaled = [scale](int paper_value, int floor_value) {
    return std::max(floor_value, static_cast<int>(paper_value * scale));
  };
  if (name == "BriCal" || name == "GowCol") {
    RealLikeSsnOptions options =
        name == "BriCal" ? BriCalOptions(1.0, 7) : GowColOptions(1.0, 8);
    options.num_users = scaled(options.num_users, 256);
    options.num_road_vertices = scaled(options.num_road_vertices, 256);
    options.num_pois = scaled(options.num_pois, 128);
    if (overrides.num_pois > 0) options.num_pois = overrides.num_pois;
    if (overrides.num_road_vertices > 0) {
      options.num_road_vertices = overrides.num_road_vertices;
    }
    if (overrides.num_users > 0) options.num_users = overrides.num_users;
    return MakeRealLike(options);
  }
  SyntheticSsnOptions options;
  options.distribution =
      name == "ZIPF" ? Distribution::kZipf : Distribution::kUniform;
  options.seed = name == "ZIPF" ? 12 : 11;
  options.num_road_vertices = scaled(20000, 256);
  options.num_pois = scaled(10000, 128);
  options.num_users = scaled(30000, 256);
  if (overrides.num_pois > 0) options.num_pois = overrides.num_pois;
  if (overrides.num_road_vertices > 0) {
    options.num_road_vertices = overrides.num_road_vertices;
  }
  if (overrides.num_users > 0) options.num_users = overrides.num_users;
  return MakeSynthetic(options);
}

std::unique_ptr<GpssnDatabase> BuildDatabase(SpatialSocialNetwork ssn,
                                             int num_pivots,
                                             bool optimize_pivots) {
  GpssnBuildOptions build;
  build.num_road_pivots = num_pivots;
  build.num_social_pivots = num_pivots;
  build.optimize_pivots = optimize_pivots;
  return std::make_unique<GpssnDatabase>(std::move(ssn), build);
}

namespace {
void AddStats(QueryStats* total, const QueryStats& s) {
  total->io.logical_accesses += s.io.logical_accesses;
  total->io.page_misses += s.io.page_misses;
  total->social_nodes_visited += s.social_nodes_visited;
  total->social_nodes_pruned_interest += s.social_nodes_pruned_interest;
  total->social_nodes_pruned_distance += s.social_nodes_pruned_distance;
  total->users_seen += s.users_seen;
  total->users_pruned_interest += s.users_pruned_interest;
  total->users_pruned_distance += s.users_pruned_distance;
  total->users_pruned_corollary2 += s.users_pruned_corollary2;
  total->users_candidates += s.users_candidates;
  total->users_pruned_at_index_level += s.users_pruned_at_index_level;
  total->road_nodes_visited += s.road_nodes_visited;
  total->road_nodes_pruned_match += s.road_nodes_pruned_match;
  total->road_nodes_pruned_distance += s.road_nodes_pruned_distance;
  total->pois_seen += s.pois_seen;
  total->pois_pruned_match += s.pois_pruned_match;
  total->pois_pruned_distance += s.pois_pruned_distance;
  total->pois_candidates += s.pois_candidates;
  total->pois_pruned_at_index_level += s.pois_pruned_at_index_level;
  total->groups_enumerated += s.groups_enumerated;
  total->pairs_examined += s.pairs_examined;
  total->exact_distance_evals += s.exact_distance_evals;
  total->descent_seconds += s.descent_seconds;
  total->ball_seconds += s.ball_seconds;
  total->refine_seconds += s.refine_seconds;
  total->exact_dist_seconds += s.exact_dist_seconds;
  total->dist_cache_row_hits += s.dist_cache_row_hits;
  total->dist_cache_row_misses += s.dist_cache_row_misses;
  total->skipped_shards += s.skipped_shards;
  total->refined_shards += s.refined_shards;
  total->shard_msgs += s.shard_msgs;
  total->serve_gather_seconds += s.serve_gather_seconds;
  total->serve_plan_seconds += s.serve_plan_seconds;
  total->serve_refine_seconds += s.serve_refine_seconds;
}
}  // namespace

Aggregate RunWorkload(GpssnDatabase* db, const GpssnQuery& base, int queries,
                      const QueryOptions& options, uint64_t seed) {
  Aggregate agg;
  Rng rng(seed);
  double cpu = 0.0, ios = 0.0;
  for (int i = 0; i < queries; ++i) {
    GpssnQuery q = base;
    q.issuer = static_cast<UserId>(rng.NextBounded(db->ssn().num_users()));
    QueryStats stats;
    auto answer = db->Query(q, options, &stats);
    if (!answer.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   answer.status().ToString().c_str());
      continue;
    }
    cpu += stats.cpu_seconds;
    ios += static_cast<double>(stats.PageAccesses());
    if (answer->found) ++agg.answers_found;
    AddStats(&agg.total, stats);
    ++agg.queries;
  }
  if (agg.queries > 0) {
    agg.avg_cpu_seconds = cpu / agg.queries;
    agg.avg_page_ios = ios / agg.queries;
  }
  return agg;
}

std::string PhaseBreakdown(const Aggregate& agg) {
  const double n = std::max(1, agg.queries);
  const uint64_t rows =
      agg.total.dist_cache_row_hits + agg.total.dist_cache_row_misses;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "phases(ms/query) descent=%.3f ball=%.3f refine=%.3f "
                "exact-dist=%.3f; dist-cache row hit-rate=%.1f%% (%llu rows)",
                agg.total.descent_seconds * 1e3 / n,
                agg.total.ball_seconds * 1e3 / n,
                agg.total.refine_seconds * 1e3 / n,
                agg.total.exact_dist_seconds * 1e3 / n,
                rows > 0 ? 100.0 * static_cast<double>(
                                       agg.total.dist_cache_row_hits) /
                               static_cast<double>(rows)
                         : 0.0,
                static_cast<unsigned long long>(rows));
  std::string line = buf;
  // Serving counters are all zero on the single-node path; only append the
  // sharded-serving row when the workload actually went through a cluster.
  if (agg.total.shard_msgs > 0) {
    const uint64_t planned =
        agg.total.refined_shards + agg.total.skipped_shards;
    std::snprintf(
        buf, sizeof(buf),
        "\nserving(ms/query) gather=%.3f plan=%.3f refine=%.3f; "
        "msgs/query=%.1f refine-skip-rate=%.1f%% (%llu/%llu shards)",
        agg.total.serve_gather_seconds * 1e3 / n,
        agg.total.serve_plan_seconds * 1e3 / n,
        agg.total.serve_refine_seconds * 1e3 / n,
        static_cast<double>(agg.total.shard_msgs) / n,
        planned > 0 ? 100.0 * static_cast<double>(agg.total.skipped_shards) /
                          static_cast<double>(planned)
                    : 0.0,
        static_cast<unsigned long long>(agg.total.skipped_shards),
        static_cast<unsigned long long>(planned));
    line += buf;
  }
  return line;
}

double Aggregate::SocialIndexLevelPower(int num_users) const {
  const double total_users =
      static_cast<double>(num_users) * std::max(1, queries);
  if (total_users == 0) return 0.0;
  return static_cast<double>(total.users_pruned_at_index_level) / total_users;
}

double Aggregate::SocialObjectLevelPower() const {
  const double seen = static_cast<double>(total.users_seen);
  if (seen == 0) return 0.0;
  return (total.users_pruned_interest + total.users_pruned_distance) / seen;
}

double Aggregate::RoadIndexLevelPower(int num_pois) const {
  const double total_pois =
      static_cast<double>(num_pois) * std::max(1, queries);
  return total_pois > 0 ? static_cast<double>(total.pois_pruned_at_index_level) /
                              total_pois
                        : 0.0;
}

double Aggregate::RoadObjectLevelPower() const {
  const double seen = static_cast<double>(total.pois_seen);
  if (seen == 0) return 0.0;
  return (total.pois_pruned_match + total.pois_pruned_distance) / seen;
}

double Aggregate::UserInterestPower() const {
  const double seen = static_cast<double>(total.users_seen);
  return seen > 0 ? total.users_pruned_interest / seen : 0.0;
}

double Aggregate::UserDistancePower() const {
  const double seen = static_cast<double>(total.users_seen);
  return seen > 0 ? total.users_pruned_distance / seen : 0.0;
}

double Aggregate::PoiMatchPower() const {
  const double seen = static_cast<double>(total.pois_seen);
  return seen > 0 ? total.pois_pruned_match / seen : 0.0;
}

double Aggregate::PoiDistancePower(int num_pois) const {
  const double total_pois =
      static_cast<double>(num_pois) * std::max(1, queries);
  if (total_pois == 0) return 0.0;
  return (total.pois_pruned_distance + total.pois_pruned_at_index_level) /
         total_pois;
}

std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace gpssn::bench
