// Reproduces Figure 7(d): overall pruning power over user-POI group PAIRS —
// the fraction of all candidate (S, R) pairs never examined. The universe
// of pairs is C(m-1, τ-1) · n (τ-groups containing u_q times ball centers),
// so the fraction is computed in log space. Paper: 99.9993%-99.9999%.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/baseline.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Fig. 7(d): overall pruning power of user-POI group pairs "
              "(scale %.2f, %d queries/dataset) ===\n",
              config.scale, config.queries);
  TablePrinter table(
      {"dataset", "log10(total pairs)", "pairs examined/query", "pruned"});
  const GpssnQuery base = DefaultQuery();
  for (const char* name : {"BriCal", "GowCol", "UNI", "ZIPF"}) {
    auto db = BuildDatabase(MakeDataset(name, config.scale));
    const Aggregate agg =
        RunWorkload(db.get(), base, config.queries, QueryOptions{}, 8);
    const double log10_pairs =
        Log10Binomial(db->ssn().num_users() - 1, base.tau - 1) +
        std::log10(std::max(1, db->ssn().num_pois()));
    const double examined =
        agg.queries > 0
            ? static_cast<double>(agg.total.pairs_examined) / agg.queries
            : 0;
    // pruned fraction = 1 - examined / total; total >> examined, so print
    // with enough digits to see the 9s (long-double accumulation).
    const double fraction_examined =
        examined > 0 ? std::pow(10.0, std::log10(examined) - log10_pairs) : 0;
    char pruned[64];
    std::snprintf(pruned, sizeof(pruned), "%.12Lf%%",
                  (1.0L - static_cast<long double>(fraction_examined)) *
                      100.0L);
    table.AddRow({name, TablePrinter::Num(log10_pairs, 4),
                  TablePrinter::Num(examined, 4), pruned});
  }
  table.Print();
  std::printf("(paper: 99.9993%% - 99.9999%%)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
