// Ablation: Algorithm 1's cost-model pivot selection vs random pivots —
// lower-bound tightness and end-to-end query cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "index/pivot_select.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Ablation: Algorithm 1 pivot selection vs random pivots "
              "(UNI, scale %.2f, %d queries/row) ===\n",
              config.scale, config.queries);
  TablePrinter table({"pivot selection", "road lb tightness",
                      "social lb tightness", "CPU (s)", "I/Os"});
  for (bool optimize : {true, false}) {
    auto db = BuildDatabase(MakeDataset("UNI", config.scale), 5, optimize);
    const double road_tightness = MeasureRoadPivotTightness(
        db->ssn().road(), db->road_pivots().pivots(), 64, 3);
    const double social_tightness = MeasureSocialPivotTightness(
        db->ssn().social(), db->social_pivots().pivots(), 64, 3);
    const Aggregate agg = RunWorkload(db.get(), DefaultQuery(),
                                      config.queries, QueryOptions{}, 95);
    table.AddRow({optimize ? "Algorithm 1 (cost model)" : "random",
                  TablePrinter::Num(road_tightness, 3),
                  TablePrinter::Num(social_tightness, 3),
                  TablePrinter::Num(agg.avg_cpu_seconds, 3),
                  TablePrinter::Num(agg.avg_page_ios, 4)});
  }
  table.Print();
  std::printf("(expected: Algorithm 1 yields tighter lower bounds)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
