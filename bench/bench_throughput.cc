// Batch-query throughput: sweeps the GpssnBatchExecutor worker count over
// a fixed randomized workload on the synthetic datasets and reports
// aggregate throughput, speedup over 1 worker, and latency percentiles.
// The indexes are immutable shared state; each worker owns one pooled
// processor, so scaling is bounded only by cores and memory bandwidth.
//
// The second section measures the shared cross-query distance cache on a
// repeated-issuer workload (cache off vs cold vs warm). When
// GPSSN_BENCH_JSON is set, the cache comparison is also written to that
// path as a JSON object (consumed by scripts/bench_smoke.sh).
//
// The third section sweeps intra-query refinement lanes (QueryOptions::
// scheduler) over one heavy query at 1/2/4/8 workers, verifies the
// answers stay byte-identical, and measures a batch with and without
// scheduler sharing (intra_query_sharing) plus the steal/morsel counters.
// GPSSN_BENCH_INTRA_JSON writes the sweep as JSON (also consumed by
// scripts/bench_smoke.sh, which gates sharing-on QPS >= sharing-off).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "roadnet/distance_cache.h"

namespace gpssn::bench {
namespace {

std::vector<GpssnQuery> MakeWorkload(const GpssnDatabase& db, int count,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<GpssnQuery> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    GpssnQuery q = DefaultQuery();
    q.issuer = static_cast<UserId>(rng.NextBounded(db.ssn().num_users()));
    q.tau = 3 + static_cast<int>(rng.NextBounded(4));
    queries.push_back(q);
  }
  return queries;
}

std::vector<GpssnQuery> MakeRepeatedUserWorkload(const GpssnDatabase& db,
                                                 int count, int distinct_users,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<UserId> issuers;
  issuers.reserve(distinct_users);
  for (int i = 0; i < distinct_users; ++i) {
    issuers.push_back(
        static_cast<UserId>(rng.NextBounded(db.ssn().num_users())));
  }
  std::vector<GpssnQuery> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    GpssnQuery q = DefaultQuery();
    q.issuer = issuers[rng.NextBounded(issuers.size())];
    q.tau = 3 + static_cast<int>(rng.NextBounded(4));
    queries.push_back(q);
  }
  return queries;
}

Aggregate ToAggregate(const BatchStats& stats) {
  Aggregate agg;
  agg.queries = static_cast<int>(stats.queries);
  agg.total = stats.totals;
  return agg;
}

// Repeated-issuer batch, all workers sharing one DistanceCache: the "off"
// row is the seed behaviour, "cold" fills the cache while answering, and
// "warm" reuses the rows (the steady state of a production query mix where
// the same users issue queries repeatedly).
void RunCacheComparison() {
  const BenchConfig config = GetConfig();
  const int num_queries = config.queries * 8;
  const int num_workers = 4;
  std::printf(
      "\n=== Shared distance cache: repeated-issuer batch "
      "(%d queries over 24 issuers, %d workers) ===\n",
      num_queries, num_workers);

  // A denser road network than the worker sweep: the cache targets the
  // exact-distance phase, so the workload must actually be distance-bound
  // (on tiny graphs the social phases dominate and caching is a wash).
  DatasetOverrides overrides;
  overrides.num_road_vertices =
      std::max(8000, static_cast<int>(20000 * config.scale));
  auto db = BuildDatabase(MakeDataset("UNI", config.scale, overrides));
  const std::vector<GpssnQuery> workload =
      MakeRepeatedUserWorkload(*db, num_queries, /*distinct_users=*/24,
                               /*seed=*/43);

  BatchExecutorOptions off_options;
  off_options.num_workers = num_workers;
  GpssnBatchExecutor off_executor(&db->poi_index(), &db->social_index(),
                                  off_options);
  off_executor.ExecuteAll(workload);  // Arena warm-up.
  BatchStats off_stats;
  off_executor.ExecuteAll(workload, &off_stats);

  DistanceCache cache;
  BatchExecutorOptions cache_options = off_options;
  cache_options.query.distance_cache = &cache;
  GpssnBatchExecutor cache_executor(&db->poi_index(), &db->social_index(),
                                    cache_options);
  cache_executor.ExecuteAll(workload);  // Arena warm-up (fills the cache).
  cache.Clear();
  BatchStats cold_stats;
  cache_executor.ExecuteAll(workload, &cold_stats);
  BatchStats warm_stats;
  cache_executor.ExecuteAll(workload, &warm_stats);

  TablePrinter table({"config", "wall (s)", "qps", "speedup", "exact evals",
                      "row hit-rate"});
  const auto row = [&](const char* name, const BatchStats& stats) {
    const uint64_t rows =
        stats.totals.dist_cache_row_hits + stats.totals.dist_cache_row_misses;
    table.AddRow(
        {name, TablePrinter::Num(stats.wall_seconds, 3),
         TablePrinter::Num(stats.throughput_qps, 1),
         TablePrinter::Num(off_stats.throughput_qps > 0.0
                               ? stats.throughput_qps /
                                     off_stats.throughput_qps
                               : 0.0,
                           2) +
             "x",
         std::to_string(stats.totals.exact_distance_evals),
         rows > 0 ? Pct(static_cast<double>(stats.totals.dist_cache_row_hits) /
                        static_cast<double>(rows))
                  : "n/a"});
  };
  row("cache off", off_stats);
  row("cache cold", cold_stats);
  row("cache warm", warm_stats);
  table.Print();
  std::printf("off:  %s\n", PhaseBreakdown(ToAggregate(off_stats)).c_str());
  std::printf("warm: %s\n", PhaseBreakdown(ToAggregate(warm_stats)).c_str());
  std::printf("cache: %s\n", cache.GetStats().ToString().c_str());

  if (const char* json_path = std::getenv("GPSSN_BENCH_JSON")) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f != nullptr) {
      const double speedup = off_stats.throughput_qps > 0.0
                                 ? warm_stats.throughput_qps /
                                       off_stats.throughput_qps
                                 : 0.0;
      const uint64_t rows = warm_stats.totals.dist_cache_row_hits +
                            warm_stats.totals.dist_cache_row_misses;
      std::fprintf(
          f,
          "{\n"
          "  \"bench\": \"throughput_repeated_user_cache\",\n"
          "  \"queries\": %d,\n  \"workers\": %d,\n"
          "  \"cache_off_qps\": %.3f,\n  \"cache_cold_qps\": %.3f,\n"
          "  \"cache_warm_qps\": %.3f,\n  \"warm_speedup\": %.3f,\n"
          "  \"warm_row_hit_rate\": %.4f,\n"
          "  \"warm_exact_evals\": %llu,\n  \"off_exact_evals\": %llu\n"
          "}\n",
          num_queries, num_workers, off_stats.throughput_qps,
          cold_stats.throughput_qps, warm_stats.throughput_qps, speedup,
          rows > 0 ? static_cast<double>(warm_stats.totals.dist_cache_row_hits) /
                         static_cast<double>(rows)
                   : 0.0,
          static_cast<unsigned long long>(warm_stats.totals.exact_distance_evals),
          static_cast<unsigned long long>(off_stats.totals.exact_distance_evals));
      std::fclose(f);
      std::printf("wrote %s\n", json_path);
    } else {
      std::printf("could not open GPSSN_BENCH_JSON=%s\n", json_path);
    }
  }
}

void Run() {
  const BenchConfig config = GetConfig();
  const int num_queries = config.queries * 8;
  std::printf(
      "=== Batch throughput: GpssnBatchExecutor worker sweep "
      "(scale %.2f, %d queries, %u hardware threads) ===\n",
      config.scale, num_queries, std::thread::hardware_concurrency());

  TablePrinter table({"dataset", "workers", "wall (s)", "qps", "speedup",
                      "p50 (ms)", "p95 (ms)", "p99 (ms)", "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    auto db = BuildDatabase(MakeDataset(name, config.scale));
    const std::vector<GpssnQuery> workload =
        MakeWorkload(*db, num_queries, /*seed=*/42);
    double qps_at_1 = 0.0;
    for (int workers : {1, 2, 4, 8}) {
      BatchExecutorOptions options;
      options.num_workers = workers;
      GpssnBatchExecutor executor(&db->poi_index(), &db->social_index(),
                                  options);
      // Warm-up pass populates every worker's arenas; the measured pass
      // then sees steady-state allocation behaviour.
      executor.ExecuteAll(workload);
      BatchStats stats;
      executor.ExecuteAll(workload, &stats);
      if (workers == 1) qps_at_1 = stats.throughput_qps;
      table.AddRow(
          {name, std::to_string(workers), TablePrinter::Num(stats.wall_seconds, 3),
           TablePrinter::Num(stats.throughput_qps, 1),
           TablePrinter::Num(
               qps_at_1 > 0.0 ? stats.throughput_qps / qps_at_1 : 0.0, 2) + "x",
           TablePrinter::Num(stats.latency_p50_seconds * 1e3, 2),
           TablePrinter::Num(stats.latency_p95_seconds * 1e3, 2),
           TablePrinter::Num(stats.latency_p99_seconds * 1e3, 2),
           std::to_string(stats.answers_found) + "/" +
               std::to_string(stats.queries)});
    }
  }
  table.Print();
  std::printf(
      "(expected: near-linear speedup up to the physical core count; "
      "flat on a single-core host)\n");
}

// Picks the query with the heaviest serial refinement among a pool of
// random issuers, so the lane sweep measures the phase the lanes actually
// parallelize (a query that dies in Phase 1 would measure nothing).
GpssnQuery PickHeavyQuery(GpssnDatabase* db) {
  Rng rng(7);
  GpssnQuery best = DefaultQuery();
  double best_refine = -1.0;
  for (int i = 0; i < 12; ++i) {
    GpssnQuery q = DefaultQuery();
    q.issuer = static_cast<UserId>(rng.NextBounded(db->ssn().num_users()));
    q.tau = 3 + static_cast<int>(rng.NextBounded(3));
    q.radius *= 1.5;  // Larger balls: more centers and groups to refine.
    QueryStats stats;
    auto result = db->Query(q, QueryOptions(), &stats);
    if (result.ok() && stats.refine_seconds > best_refine) {
      best_refine = stats.refine_seconds;
      best = q;
    }
  }
  return best;
}

// One heavy query, refinement lanes swept over 1/2/4/8 workers. Reports
// best-of-reps refinement wall time per worker count and checks the answer
// never drifts from the serial one (the determinism contract).
void RunIntraQuerySweep() {
  const BenchConfig config = GetConfig();
  const int reps = 5;
  std::printf(
      "\n=== Intra-query parallel refinement: lane sweep on one heavy "
      "query (best of %d reps, %u hardware threads) ===\n",
      reps, std::thread::hardware_concurrency());

  // Dense road network, as in the cache section: the lanes claim centers
  // AND compute their exact-distance rows, so the workload must be
  // refinement-bound for the sweep to measure anything.
  DatasetOverrides overrides;
  overrides.num_road_vertices =
      std::max(8000, static_cast<int>(20000 * config.scale));
  auto db = BuildDatabase(MakeDataset("UNI", config.scale, overrides));
  const GpssnQuery query = PickHeavyQuery(db.get());

  GpssnAnswer reference;
  bool have_reference = false;
  bool identical = true;
  double refine_at_1 = 0.0;
  double speedup[4] = {0.0, 0.0, 0.0, 0.0};
  double refine_best[4] = {0.0, 0.0, 0.0, 0.0};
  const int worker_counts[4] = {1, 2, 4, 8};

  TablePrinter table({"workers", "lanes", "refine (ms)", "query (ms)",
                      "speedup", "identical"});
  for (int wi = 0; wi < 4; ++wi) {
    const int workers = worker_counts[wi];
    std::unique_ptr<TaskScheduler> scheduler;
    QueryOptions options;
    if (workers > 1) {
      scheduler = std::make_unique<TaskScheduler>(workers - 1);
      options.scheduler = scheduler.get();
      options.intra_query_workers = workers;
    }
    double best_refine = 0.0;
    double best_wall = 0.0;
    uint32_t lanes = 0;
    bool config_identical = true;
    for (int rep = 0; rep < reps; ++rep) {
      QueryStats stats;
      WallTimer timer;
      auto result = db->Query(query, options, &stats);
      const double wall = timer.ElapsedSeconds();
      if (!result.ok()) continue;
      if (!have_reference) {
        reference = *result;
        have_reference = true;
      } else if (result->found != reference.found ||
                 result->users != reference.users ||
                 result->center != reference.center ||
                 result->pois != reference.pois ||
                 result->max_dist != reference.max_dist) {
        config_identical = false;
      }
      if (rep == 0 || stats.refine_seconds < best_refine) {
        best_refine = stats.refine_seconds;
        best_wall = wall;
      }
      lanes = std::max(lanes, stats.intra_lanes_used);
    }
    identical = identical && config_identical;
    refine_best[wi] = best_refine;
    if (workers == 1) refine_at_1 = best_refine;
    speedup[wi] = best_refine > 0.0 ? refine_at_1 / best_refine : 0.0;
    table.AddRow({std::to_string(workers), std::to_string(lanes),
                  TablePrinter::Num(best_refine * 1e3, 3),
                  TablePrinter::Num(best_wall * 1e3, 3),
                  TablePrinter::Num(speedup[wi], 2) + "x",
                  config_identical ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "(expected: refinement speedup tracking physical cores; ~1x on a "
      "single-core host — the lanes only add an atomic claim per center)\n");

  // Batch x intra combined: the executor shares ONE scheduler between the
  // inter-query workers and the intra-query morsel lanes. Workers prefer
  // queued query tasks over morsels, so sharing-on must never lose
  // throughput to the sharing-off run (the gate in bench_smoke.sh); idle
  // workers at the batch tail steal morsels and trim the p99.
  const int num_queries = std::max(8, config.queries * 2);
  auto workload = MakeWorkload(*db, num_queries, /*seed=*/44);
  TablePrinter combo({"sharing", "wall (s)", "qps", "p99 (ms)", "morsels",
                      "stolen tasks"});
  double qps_off = 0.0;
  double qps_on = 0.0;
  uint64_t on_morsels = 0;
  uint64_t on_morsels_stolen = 0;
  uint64_t on_tasks_stolen = 0;
  uint64_t on_sources = 0;
  {
    BatchExecutorOptions off_opts;
    off_opts.num_workers = 4;
    BatchExecutorOptions on_opts = off_opts;
    on_opts.intra_query_sharing = true;
    GpssnBatchExecutor off_exec(&db->poi_index(), &db->social_index(),
                                off_opts);
    GpssnBatchExecutor on_exec(&db->poi_index(), &db->social_index(),
                               on_opts);
    off_exec.ExecuteAll(workload);  // Arena warm-up.
    on_exec.ExecuteAll(workload);
    // Best of `reps` batches, off/on INTERLEAVED: the smoke workload
    // finishes in tens of milliseconds, so back-to-back blocks would let
    // clock/cache drift masquerade as a sharing regression in the
    // bench_smoke.sh QPS gate.
    BatchStats off_stats;
    BatchStats on_stats;
    for (int rep = 0; rep < reps; ++rep) {
      BatchStats attempt;
      off_exec.ExecuteAll(workload, &attempt);
      if (rep == 0 || attempt.throughput_qps > off_stats.throughput_qps) {
        off_stats = attempt;
      }
      on_exec.ExecuteAll(workload, &attempt);
      if (rep == 0 || attempt.throughput_qps > on_stats.throughput_qps) {
        on_stats = attempt;
      }
    }
    qps_off = off_stats.throughput_qps;
    qps_on = on_stats.throughput_qps;
    on_morsels = on_stats.totals.refine_morsels;
    on_morsels_stolen = on_stats.totals.refine_morsels_stolen;
    on_tasks_stolen = on_stats.scheduler_tasks_stolen;
    on_sources = on_stats.scheduler_sources_published;
    for (const bool sharing : {false, true}) {
      const BatchStats& stats = sharing ? on_stats : off_stats;
      combo.AddRow({sharing ? "on" : "off",
                    TablePrinter::Num(stats.wall_seconds, 3),
                    TablePrinter::Num(stats.throughput_qps, 1),
                    TablePrinter::Num(stats.latency_p99_seconds * 1e3, 2),
                    std::to_string(stats.totals.refine_morsels),
                    std::to_string(stats.scheduler_tasks_stolen)});
    }
  }
  std::printf(
      "\n--- Batch (4 workers) with intra-query scheduler sharing ---\n");
  combo.Print();

  if (const char* json_path = std::getenv("GPSSN_BENCH_INTRA_JSON")) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\n"
          "  \"bench\": \"intra_query_refinement\",\n"
          "  \"hardware_threads\": %u,\n  \"reps\": %d,\n"
          "  \"refine_seconds\": {\"w1\": %.6f, \"w2\": %.6f, "
          "\"w4\": %.6f, \"w8\": %.6f},\n"
          "  \"refine_speedup\": {\"w2\": %.3f, \"w4\": %.3f, "
          "\"w8\": %.3f},\n"
          "  \"answers_identical\": %s,\n"
          "  \"batch_sharing_off_qps\": %.3f,\n"
          "  \"batch_sharing_on_qps\": %.3f,\n"
          "  \"sharing_on_refine_morsels\": %llu,\n"
          "  \"sharing_on_refine_morsels_stolen\": %llu,\n"
          "  \"sharing_on_tasks_stolen\": %llu,\n"
          "  \"sharing_on_sources_published\": %llu\n"
          "}\n",
          std::thread::hardware_concurrency(), reps, refine_best[0],
          refine_best[1], refine_best[2], refine_best[3], speedup[1],
          speedup[2], speedup[3], identical ? "true" : "false", qps_off,
          qps_on, static_cast<unsigned long long>(on_morsels),
          static_cast<unsigned long long>(on_morsels_stolen),
          static_cast<unsigned long long>(on_tasks_stolen),
          static_cast<unsigned long long>(on_sources));
      std::fclose(f);
      std::printf("wrote %s\n", json_path);
    } else {
      std::printf("could not open GPSSN_BENCH_INTRA_JSON=%s\n", json_path);
    }
  }
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  gpssn::bench::RunCacheComparison();
  gpssn::bench::RunIntraQuerySweep();
  return 0;
}
