// Batch-query throughput: sweeps the GpssnBatchExecutor worker count over
// a fixed randomized workload on the synthetic datasets and reports
// aggregate throughput, speedup over 1 worker, and latency percentiles.
// The indexes are immutable shared state; each worker owns one pooled
// processor, so scaling is bounded only by cores and memory bandwidth.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

std::vector<GpssnQuery> MakeWorkload(const GpssnDatabase& db, int count,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<GpssnQuery> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    GpssnQuery q = DefaultQuery();
    q.issuer = static_cast<UserId>(rng.NextBounded(db.ssn().num_users()));
    q.tau = 3 + static_cast<int>(rng.NextBounded(4));
    queries.push_back(q);
  }
  return queries;
}

void Run() {
  const BenchConfig config = GetConfig();
  const int num_queries = config.queries * 8;
  std::printf(
      "=== Batch throughput: GpssnBatchExecutor worker sweep "
      "(scale %.2f, %d queries, %u hardware threads) ===\n",
      config.scale, num_queries, std::thread::hardware_concurrency());

  TablePrinter table({"dataset", "workers", "wall (s)", "qps", "speedup",
                      "p50 (ms)", "p95 (ms)", "p99 (ms)", "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    auto db = BuildDatabase(MakeDataset(name, config.scale));
    const std::vector<GpssnQuery> workload =
        MakeWorkload(*db, num_queries, /*seed=*/42);
    double qps_at_1 = 0.0;
    for (int workers : {1, 2, 4, 8}) {
      BatchExecutorOptions options;
      options.num_workers = workers;
      GpssnBatchExecutor executor(&db->poi_index(), &db->social_index(),
                                  options);
      // Warm-up pass populates every worker's arenas; the measured pass
      // then sees steady-state allocation behaviour.
      executor.ExecuteAll(workload);
      BatchStats stats;
      executor.ExecuteAll(workload, &stats);
      if (workers == 1) qps_at_1 = stats.throughput_qps;
      table.AddRow(
          {name, std::to_string(workers), TablePrinter::Num(stats.wall_seconds, 3),
           TablePrinter::Num(stats.throughput_qps, 1),
           TablePrinter::Num(
               qps_at_1 > 0.0 ? stats.throughput_qps / qps_at_1 : 0.0, 2) + "x",
           TablePrinter::Num(stats.latency_p50_seconds * 1e3, 2),
           TablePrinter::Num(stats.latency_p95_seconds * 1e3, 2),
           TablePrinter::Num(stats.latency_p99_seconds * 1e3, 2),
           std::to_string(stats.answers_found) + "/" +
               std::to_string(stats.queries)});
    }
  }
  table.Print();
  std::printf(
      "(expected: near-linear speedup up to the physical core count; "
      "flat on a single-core host)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
