// Reproduces Table 2: statistics of the four evaluation datasets. The real
// Brightkite/Gowalla + California/Colorado data is substituted by
// statistically matched synthetic networks (see DESIGN.md §5); the paper's
// published statistics are printed alongside for comparison.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Table 2: dataset statistics (scale %.2f; paper values in "
              "brackets) ===\n",
              config.scale);
  TablePrinter table({"dataset", "|V(Gs)|", "deg(Gs)", "|V(Gr)|", "deg(Gr)",
                      "POIs", "paper deg(Gs)", "paper deg(Gr)"});
  struct Row {
    const char* name;
    double paper_social_deg;
    double paper_road_deg;
  };
  const Row rows[] = {
      {"BriCal", 10.3, 2.1},
      {"GowCol", 32.1, 2.4},
      {"UNI", -1, -1},
      {"ZIPF", -1, -1},
  };
  for (const Row& row : rows) {
    const SpatialSocialNetwork ssn = MakeDataset(row.name, config.scale);
    const SsnStats stats = ComputeStats(ssn);
    table.AddRow({row.name, std::to_string(stats.social_vertices),
                  TablePrinter::Num(stats.social_avg_degree, 3),
                  std::to_string(stats.road_vertices),
                  TablePrinter::Num(stats.road_avg_degree, 3),
                  std::to_string(stats.num_pois),
                  row.paper_social_deg > 0
                      ? TablePrinter::Num(row.paper_social_deg, 3)
                      : "-",
                  row.paper_road_deg > 0
                      ? TablePrinter::Num(row.paper_road_deg, 3)
                      : "-"});
  }
  table.Print();
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
