// Ablation: LRU buffer-pool capacity vs the paper's I/O metric. The paper's
// "number of page accesses" depends on how much of the working set the
// buffer absorbs; this bench sweeps the pool size (0 disables caching).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Ablation: buffer-pool capacity vs I/O cost "
              "(UNI, scale %.2f, %d queries/row) ===\n",
              config.scale, config.queries);
  auto db = BuildDatabase(MakeDataset("UNI", config.scale));
  TablePrinter table({"pool pages", "page misses (I/Os)", "logical accesses",
                      "hit rate", "CPU (s)"});
  for (uint32_t pages : {0u, 16u, 64u, 256u, 1024u, 4096u}) {
    QueryOptions options;
    options.buffer_pool_pages = pages;
    const Aggregate agg =
        RunWorkload(db.get(), DefaultQuery(), config.queries, options, 13);
    const double logical =
        agg.queries ? static_cast<double>(agg.total.io.logical_accesses) /
                          agg.queries
                    : 0;
    const double hit_rate =
        logical > 0 ? 1.0 - agg.avg_page_ios / logical : 0.0;
    table.AddRow({std::to_string(pages),
                  TablePrinter::Num(agg.avg_page_ios, 4),
                  TablePrinter::Num(logical, 4), Pct(hit_rate),
                  TablePrinter::Num(agg.avg_cpu_seconds, 3)});
  }
  table.Print();
  std::printf("(expected: misses fall monotonically with capacity and "
              "saturate once the working set fits)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
