// Reproduces the Appendix P experiment on the interest-score threshold γ
// (Table 3 row: 0.2, 0.3, 0.5, 0.7, 0.9). Larger γ prunes more users.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Appendix P: effect of the interest threshold gamma "
              "(scale %.2f, %d queries/point) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "gamma", "CPU (s)", "I/Os",
                      "user interest pruning", "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    auto db = BuildDatabase(MakeDataset(name, config.scale));
    for (double gamma : {0.2, 0.3, 0.5, 0.7, 0.9}) {
      GpssnQuery q = DefaultQuery();
      q.gamma = gamma;
      const Aggregate agg =
          RunWorkload(db.get(), q, config.queries, QueryOptions{}, 70);
      table.AddRow({name, TablePrinter::Num(gamma, 2),
                    TablePrinter::Num(agg.avg_cpu_seconds, 3),
                    TablePrinter::Num(agg.avg_page_ios, 4),
                    Pct(agg.UserInterestPower()),
                    std::to_string(agg.answers_found) + "/" +
                        std::to_string(agg.queries)});
    }
  }
  table.Print();
  std::printf("(expected shape: interest pruning grows with gamma, cost "
              "shrinks, answers get rarer)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
