// Reproduces the Appendix P experiment on the matching-score threshold θ
// (Table 3 row: 0.2, 0.3, 0.5, 0.7, 0.9). Larger θ prunes more POIs.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Appendix P: effect of the matching threshold theta "
              "(scale %.2f, %d queries/point) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "theta", "CPU (s)", "I/Os",
                      "POI match pruning", "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    auto db = BuildDatabase(MakeDataset(name, config.scale));
    for (double theta : {0.2, 0.3, 0.5, 0.7, 0.9}) {
      GpssnQuery q = DefaultQuery();
      q.theta = theta;
      const Aggregate agg =
          RunWorkload(db.get(), q, config.queries, QueryOptions{}, 50);
      table.AddRow({name, TablePrinter::Num(theta, 2),
                    TablePrinter::Num(agg.avg_cpu_seconds, 3),
                    TablePrinter::Num(agg.avg_page_ios, 4),
                    Pct(agg.PoiMatchPower()),
                    std::to_string(agg.answers_found) + "/" +
                        std::to_string(agg.queries)});
    }
  }
  table.Print();
  std::printf("(expected shape: match pruning grows with theta, cost "
              "shrinks)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
