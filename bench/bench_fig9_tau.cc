// Reproduces Figure 9: GP-SSN performance vs the user group size τ on the
// synthetic datasets. Paper: CPU and I/O grow smoothly with τ
// (0.01-0.022 s, 170-235 I/Os).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Fig. 9: effect of the user group size tau "
              "(scale %.2f, %d queries/point) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "tau", "CPU (s)", "I/Os", "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    auto db = BuildDatabase(MakeDataset(name, config.scale));
    for (int tau : {2, 3, 5, 7, 10}) {
      GpssnQuery q = DefaultQuery();
      q.tau = tau;
      const Aggregate agg =
          RunWorkload(db.get(), q, config.queries, QueryOptions{}, 10 + tau);
      table.AddRow({name, std::to_string(tau),
                    TablePrinter::Num(agg.avg_cpu_seconds, 3),
                    TablePrinter::Num(agg.avg_page_ios, 4),
                    std::to_string(agg.answers_found) + "/" +
                        std::to_string(agg.queries)});
    }
  }
  table.Print();
  std::printf("(paper: smooth growth; 0.01-0.022 s, 170-235 I/Os)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
