// Continental-scale distance-engine benchmark (PR 9): on a jittered
// synthetic grid it measures
//
//   1. CH construction, serial vs morselized (TaskScheduler) — the builds
//      must be bitwise identical, and the parallel one must not cost more
//      than scheduler overhead on a single core;
//   2. ball queries, bounded Dijkstra vs the CH range engine — answers
//      must be identical, and the range engine is the whole point: at
//      10^6 vertices it must be >= 5x faster (scripts/bench_smoke.sh
//      enforces a scale-aware threshold);
//   3. index persistence — SaveRoadIndex once, then mmap cold-start
//      (LoadRoadIndex) vs rebuilding the hierarchy from scratch.
//
// Environment:
//   GPSSN_BENCH_PR9_SIDE   grid side (default 1000 -> 10^6 vertices;
//                          scripts/bench_smoke.sh passes a smoke size)
//   GPSSN_BENCH_PR9_JSON   write a machine-readable report here
//   GPSSN_BENCH_PR9_INDEX  index file path (default: a file in the cwd,
//                          removed on exit)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/task_scheduler.h"
#include "roadnet/ch_range.h"
#include "roadnet/contraction_hierarchy.h"
#include "roadnet/index_io.h"
#include "roadnet/road_graph.h"
#include "roadnet/shortest_path.h"

namespace gpssn::bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

// Unit-spacing grid with jittered vertices: Euclidean weights are all
// distinct, so shortest paths are unique and both ball engines must
// return bit-identical answers.
RoadNetwork JitteredGrid(int side, uint64_t seed) {
  Rng rng(seed);
  RoadNetworkBuilder b;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      b.AddVertex(Point{x + 0.4 * (rng.UniformDouble() - 0.5),
                        y + 0.4 * (rng.UniformDouble() - 0.5)});
    }
  }
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      const VertexId v = y * side + x;
      if (x + 1 < side) GPSSN_CHECK(b.AddEdge(v, v + 1).ok());
      if (y + 1 < side) GPSSN_CHECK(b.AddEdge(v, v + side).ok());
    }
  }
  return b.Build();
}

std::vector<Poi> ScatterPois(const RoadNetwork& g, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Poi> pois(n);
  for (int i = 0; i < n; ++i) {
    pois[i].id = i;
    pois[i].position =
        EdgePosition{static_cast<EdgeId>(rng.NextBounded(g.num_edges())),
                     rng.UniformDouble()};
    pois[i].location = g.PositionPoint(pois[i].position);
  }
  return pois;
}

bool BitIdentical(const ContractionHierarchy& a,
                  const ContractionHierarchy& b) {
  if (a.num_shortcuts() != b.num_shortcuts()) return false;
  if (a.ranks().size() != b.ranks().size()) return false;
  for (size_t i = 0; i < a.ranks().size(); ++i) {
    if (a.ranks()[i] != b.ranks()[i]) return false;
  }
  if (a.up_arcs().size() != b.up_arcs().size()) return false;
  for (size_t i = 0; i < a.up_arcs().size(); ++i) {
    if (a.up_arcs()[i].to != b.up_arcs()[i].to ||
        a.up_arcs()[i].middle != b.up_arcs()[i].middle ||
        a.up_arcs()[i].weight != b.up_arcs()[i].weight) {
      return false;
    }
  }
  return true;
}

void Run() {
  const int side = EnvInt("GPSSN_BENCH_PR9_SIDE", 1000);
  const int workers = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::printf("=== PR 9: continental-scale distance engine "
              "(grid %dx%d = %d vertices, %d workers) ===\n",
              side, side, side * side, workers);

  const RoadNetwork g = JitteredGrid(side, 1);
  const std::vector<Poi> pois = ScatterPois(g, side * 4, 2);

  ChOptions options;
  // Default witness limits: weakening them (e.g. 5/24) looks cheaper per
  // search but misses witnesses, and the surviving shortcuts densify the
  // remaining graph — measured 3x slower AND 3x more shortcuts on a
  // 90k-vertex grid. Strong witnesses are the scale knob.
  options.build_ball_index = false;  // Built separately below (timed).

  // --- 1. CH construction: serial vs morselized ------------------------
  double t0 = Now();
  ContractionHierarchy serial(options);
  serial.Build(&g);
  const double build_serial_s = Now() - t0;
  std::printf("CH build (serial):    %7.2f s  (%lld shortcuts, %d rounds)\n",
              build_serial_s, static_cast<long long>(serial.num_shortcuts()),
              serial.build_rounds());

  TaskScheduler scheduler(workers);
  ChOptions par_options = options;
  par_options.scheduler = &scheduler;
  t0 = Now();
  ContractionHierarchy parallel(par_options);
  parallel.Build(&g);
  const double build_parallel_s = Now() - t0;
  const bool build_identical = BitIdentical(serial, parallel);
  std::printf("CH build (%d lanes):  %7.2f s  (identical: %s)\n",
              workers + 1, build_parallel_s, build_identical ? "yes" : "NO");

  // --- 2. Ball queries: bounded Dijkstra vs CH range engine ------------
  // Fixed city-scale radii (grid spacing is ~1): a query ball covers a
  // metro-sized patch regardless of how large the whole network is. This
  // is the continental regime — as the graph grows, the ball holds the
  // same number of vertices but an ever smaller share of the POI sources,
  // so bounded Dijkstra keeps paying for the full patch while the range
  // engine only pays for the few sources actually inside. That widening
  // gap is where the 10^6-vertex speedup gate comes from.
  const double max_radius = 30.0;
  t0 = Now();
  const ChBallIndex index(&serial, &pois, max_radius, &scheduler, 0);
  const double index_build_s = Now() - t0;
  std::printf("ball index:           %7.2f s  (%zu sources)\n",
              index_build_s, index.num_sources());

  DijkstraEngine dijkstra(&g);
  PoiLocator locator(&g, &pois);
  ChRangeEngine range(&index);
  const double radii[] = {5.0, 15.0, max_radius};
  std::vector<EdgePosition> centers;
  Rng rng(3);
  for (int c = 0; c < 8; ++c) {
    centers.push_back(
        EdgePosition{static_cast<EdgeId>(rng.NextBounded(g.num_edges())),
                     rng.UniformDouble()});
  }
  bool balls_identical = true;
  int ball_trials = 0;
  double ball_dijkstra_s = 0.0;
  double ball_ch_s = 0.0;
  for (const double radius : radii) {
    for (const EdgePosition& center : centers) {
      t0 = Now();
      const auto expected = locator.BallWithDistances(center, radius,
                                                      &dijkstra);
      ball_dijkstra_s += Now() - t0;
      t0 = Now();
      const auto actual = range.BallWithDistances(center, radius, locator,
                                                  pois);
      ball_ch_s += Now() - t0;
      balls_identical = balls_identical && expected == actual;
      ++ball_trials;
    }
  }
  const double ball_speedup =
      ball_ch_s > 0.0 ? ball_dijkstra_s / ball_ch_s : 0.0;
  std::printf("balls (%d trials):    Dijkstra %7.3f s, CH %7.3f s "
              "-> %.1fx (identical: %s)\n",
              ball_trials, ball_dijkstra_s, ball_ch_s, ball_speedup,
              balls_identical ? "yes" : "NO");

  // --- 3. Persistence: save once, mmap cold-start vs rebuild -----------
  const char* index_env = std::getenv("GPSSN_BENCH_PR9_INDEX");
  const std::string path =
      index_env != nullptr ? index_env : "bench_pr9.gpssnidx";
  t0 = Now();
  const Status saved = SaveRoadIndex(g, serial, path);
  const double save_s = Now() - t0;
  GPSSN_CHECK(saved.ok());
  t0 = Now();
  auto loaded = LoadRoadIndex(path);
  const double load_s = Now() - t0;
  GPSSN_CHECK(loaded.ok());
  GPSSN_CHECK(BitIdentical(serial, *loaded.value().ch));
  // The alternative to loading is building again: time one more build.
  t0 = Now();
  ContractionHierarchy rebuilt(options);
  rebuilt.Build(&g);
  const double rebuild_s = Now() - t0;
  std::printf("persistence:          save %.3f s, mmap load %.3f s, "
              "rebuild %.2f s (load %.0fx faster)\n",
              save_s, load_s, rebuild_s,
              load_s > 0.0 ? rebuild_s / load_s : 0.0);
  std::remove(path.c_str());

  if (const char* out = std::getenv("GPSSN_BENCH_PR9_JSON")) {
    std::FILE* f = std::fopen(out, "w");
    GPSSN_CHECK(f != nullptr);
    std::fprintf(f,
                 "{\n"
                 "  \"grid_side\": %d,\n"
                 "  \"num_vertices\": %d,\n"
                 "  \"num_pois\": %zu,\n"
                 "  \"workers\": %d,\n"
                 "  \"build_serial_seconds\": %.6f,\n"
                 "  \"build_parallel_seconds\": %.6f,\n"
                 "  \"build_identical\": %s,\n"
                 "  \"ball_index_seconds\": %.6f,\n"
                 "  \"ball_trials\": %d,\n"
                 "  \"ball_max_radius\": %.1f,\n"
                 "  \"ball_dijkstra_seconds\": %.6f,\n"
                 "  \"ball_ch_seconds\": %.6f,\n"
                 "  \"ball_speedup\": %.3f,\n"
                 "  \"balls_identical\": %s,\n"
                 "  \"save_seconds\": %.6f,\n"
                 "  \"load_seconds\": %.6f,\n"
                 "  \"rebuild_seconds\": %.6f\n"
                 "}\n",
                 side, side * side, pois.size(), workers, build_serial_s,
                 build_parallel_s, build_identical ? "true" : "false",
                 index_build_s, ball_trials, max_radius, ball_dijkstra_s,
                 ball_ch_s, ball_speedup, balls_identical ? "true" : "false",
                 save_s, load_s, rebuild_s);
    std::fclose(f);
    std::printf("wrote %s\n", out);
  }
  GPSSN_CHECK(build_identical && balls_identical);
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
