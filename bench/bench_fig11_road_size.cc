// Reproduces Figure 11: GP-SSN performance vs the road-network size
// |V(G_r)|. Paper: nearly flat (0.014-0.02 s, 200-270 I/Os) thanks to the
// offline pivot tables.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Fig. 11: effect of the road-network size |V(Gr)| "
              "(scale %.2f, %d queries/point) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "|V(Gr)| (scaled)", "CPU (s)", "I/Os",
                      "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    for (int paper_v : {10000, 20000, 30000, 40000, 50000}) {
      DatasetOverrides overrides;
      overrides.num_road_vertices =
          std::max(256, static_cast<int>(paper_v * config.scale));
      auto db = BuildDatabase(MakeDataset(name, config.scale, overrides));
      const Aggregate agg = RunWorkload(db.get(), DefaultQuery(),
                                        config.queries, QueryOptions{}, 30);
      table.AddRow({name, std::to_string(overrides.num_road_vertices),
                    TablePrinter::Num(agg.avg_cpu_seconds, 3),
                    TablePrinter::Num(agg.avg_page_ios, 4),
                    std::to_string(agg.answers_found) + "/" +
                        std::to_string(agg.queries)});
    }
  }
  table.Print();
  std::printf("(paper: not very sensitive to |V(Gr)|; 0.014-0.02 s, "
              "200-270 I/Os)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
