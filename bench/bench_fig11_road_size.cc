// Reproduces Figure 11: GP-SSN performance vs the road-network size
// |V(G_r)|. Paper: nearly flat (0.014-0.02 s, 200-270 I/Os) thanks to the
// offline pivot tables. GPSSN_BENCH_FIG11_LARGE=1 extends the sweep past
// the paper's 5x10^4 to continental sizes (2x10^5 and 10^6 vertices,
// unscaled) — minutes of build time per point, so opt-in.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  const char* large_env = std::getenv("GPSSN_BENCH_FIG11_LARGE");
  const bool large = large_env != nullptr && large_env[0] == '1';
  std::printf("=== Fig. 11: effect of the road-network size |V(Gr)| "
              "(scale %.2f, %d queries/point%s) ===\n",
              config.scale, config.queries,
              large ? ", +continental sizes" : "");
  TablePrinter table({"dataset", "|V(Gr)| (scaled)", "CPU (s)", "I/Os",
                      "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    std::vector<int> sizes;
    for (int paper_v : {10000, 20000, 30000, 40000, 50000}) {
      sizes.push_back(std::max(256, static_cast<int>(paper_v * config.scale)));
    }
    if (large) {
      // Past the paper's range: these are absolute sizes (the point is the
      // 10^6-vertex scale itself, not the paper's sweep).
      sizes.push_back(200000);
      sizes.push_back(1000000);
    }
    for (int num_vertices : sizes) {
      DatasetOverrides overrides;
      overrides.num_road_vertices = num_vertices;
      auto db = BuildDatabase(MakeDataset(name, config.scale, overrides));
      const Aggregate agg = RunWorkload(db.get(), DefaultQuery(),
                                        config.queries, QueryOptions{}, 30);
      table.AddRow({name, std::to_string(overrides.num_road_vertices),
                    TablePrinter::Num(agg.avg_cpu_seconds, 3),
                    TablePrinter::Num(agg.avg_page_ios, 4),
                    std::to_string(agg.answers_found) + "/" +
                        std::to_string(agg.queries)});
    }
  }
  table.Print();
  std::printf("(paper: not very sensitive to |V(Gr)|; 0.014-0.02 s, "
              "200-270 I/Os)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
