// Reproduces Figure 7(c): pruning power of the POI-pruning rules on road
// networks — road-network distance pruning (Lemmas 5/7 + δ cut) vs matching
// score pruning (Lemmas 1/6). Paper bands: distance 38-58%, match 55-68%.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Fig. 7(c): POI pruning power on road networks "
              "(scale %.2f, %d queries/dataset) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "matching-score pruning",
                      "road-distance pruning", "candidates left"});
  for (const char* name : {"BriCal", "GowCol", "UNI", "ZIPF"}) {
    auto db = BuildDatabase(MakeDataset(name, config.scale));
    const Aggregate agg = RunWorkload(db.get(), DefaultQuery(), config.queries,
                                      QueryOptions{}, 7);
    const double avg_candidates =
        agg.queries > 0
            ? static_cast<double>(agg.total.pois_candidates) / agg.queries
            : 0;
    table.AddRow({name, Pct(agg.PoiMatchPower()),
                  Pct(agg.PoiDistancePower(db->ssn().num_pois())),
                  TablePrinter::Num(avg_candidates, 4)});
  }
  table.Print();
  std::printf("(paper: match 55-68%%, distance 38-58%%)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
