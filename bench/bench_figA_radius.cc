// Reproduces the Appendix P experiment on the spatial radius r
// (Table 3 row: 0.5, 1, 2, 3, 4). Larger r means larger POI balls.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Appendix P: effect of the spatial radius r "
              "(scale %.2f, %d queries/point) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "r", "CPU (s)", "I/Os", "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    auto db = BuildDatabase(MakeDataset(name, config.scale));
    for (double r : {0.5, 1.0, 2.0, 3.0, 4.0}) {
      GpssnQuery q = DefaultQuery();
      q.radius = r;
      const Aggregate agg =
          RunWorkload(db.get(), q, config.queries, QueryOptions{}, 60);
      table.AddRow({name, TablePrinter::Num(r, 2),
                    TablePrinter::Num(agg.avg_cpu_seconds, 3),
                    TablePrinter::Num(agg.avg_page_ios, 4),
                    std::to_string(agg.answers_found) + "/" +
                        std::to_string(agg.queries)});
    }
  }
  table.Print();
  std::printf("(expected shape: larger r widens balls — more matches, "
              "higher refinement cost)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
