// Reproduces Figure 8: GP-SSN vs Baseline over the four datasets — CPU time
// and I/O cost. The Baseline is estimated exactly as the paper does
// (Section 6.3): average the per-pair cost over 100 sampled (S, R) pairs
// and multiply by the number of candidate pairs. Paper: GP-SSN
// 0.017-0.035 s and 201-303 I/Os; Baseline ~1.9e13 days.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/baseline.h"

namespace gpssn::bench {
namespace {

std::string Sci(double v) {
  char buf[48];
  if (!std::isfinite(v)) return "inf";
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Fig. 8: GP-SSN vs Baseline (scale %.2f, %d queries + 100 "
              "Baseline samples per dataset) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "GP-SSN CPU (s)", "GP-SSN I/Os",
                      "Baseline CPU (days, est)", "Baseline I/Os (est)",
                      "speedup (x, est)"});
  const GpssnQuery base = DefaultQuery();
  for (const char* name : {"BriCal", "GowCol", "UNI", "ZIPF"}) {
    SpatialSocialNetwork ssn = MakeDataset(name, config.scale);
    GpssnQuery q = base;
    q.issuer = 1;
    const BaselineEstimate est = EstimateBaselineCost(ssn, q, 100, 17);
    auto db = BuildDatabase(std::move(ssn));
    const Aggregate agg =
        RunWorkload(db.get(), base, config.queries, QueryOptions{}, 9);
    const double speedup =
        agg.avg_cpu_seconds > 0
            ? est.estimated_total_cpu_seconds / agg.avg_cpu_seconds
            : 0;
    table.AddRow({name, TablePrinter::Num(agg.avg_cpu_seconds, 3),
                  TablePrinter::Num(agg.avg_page_ios, 4),
                  Sci(est.estimated_total_days), Sci(est.estimated_total_ios),
                  Sci(speedup)});
  }
  table.Print();
  std::printf("(paper: GP-SSN 0.017-0.035 s / 201-303 I/Os; Baseline about "
              "1.9e13 days — orders-of-magnitude gap is the headline)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
