// Reproduces Figure 7(b): pruning power of the two user-pruning rules on
// social networks — social-network distance pruning (Lemma 4) vs interest
// score pruning (Lemma 3 / Corollary 1). Paper bands: distance 24-30%,
// interest 65-75%.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Fig. 7(b): user pruning power on social networks "
              "(scale %.2f, %d queries/dataset) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "interest-score pruning",
                      "social-distance pruning", "candidates left"});
  for (const char* name : {"BriCal", "GowCol", "UNI", "ZIPF"}) {
    auto db = BuildDatabase(MakeDataset(name, config.scale));
    const Aggregate agg = RunWorkload(db.get(), DefaultQuery(), config.queries,
                                      QueryOptions{}, 6);
    const double avg_candidates =
        agg.queries > 0
            ? static_cast<double>(agg.total.users_candidates) / agg.queries
            : 0;
    table.AddRow({name, Pct(agg.UserInterestPower()),
                  Pct(agg.UserDistancePower()),
                  TablePrinter::Num(avg_candidates, 4)});
  }
  table.Print();
  std::printf("(paper: interest 65-75%%, distance 24-30%%; "
              "rules apply in sequence, so powers are of the users each rule "
              "actually examines)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
