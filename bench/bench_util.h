// Copyright 2026 The gpssn Authors.
//
// Shared helpers for the experiment-reproduction benchmarks: dataset
// construction at a configurable scale, workload execution, and aggregate
// statistics matching what the paper's figures report.
//
// Scale: benches default to 10% of the paper's dataset sizes so the whole
// suite finishes quickly on a laptop. Set GPSSN_BENCH_SCALE=paper (or a
// numeric factor, e.g. 0.5) for larger runs; GPSSN_BENCH_QUERIES overrides
// the number of queries averaged per configuration.

#ifndef GPSSN_BENCH_BENCH_UTIL_H_
#define GPSSN_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "gpssn/gpssn.h"

namespace gpssn::bench {

/// Benchmark scale configuration (from the environment).
struct BenchConfig {
  double scale = 0.1;  // Fraction of paper-scale dataset sizes.
  int queries = 12;    // Queries averaged per configuration.
};

BenchConfig GetConfig();

/// Table 3 default query (bold values): γ=0.3, τ=5, θ=0.3, r=2.
GpssnQuery DefaultQuery();

/// Builds one of the four evaluation datasets ("BriCal", "GowCol", "UNI",
/// "ZIPF") at `scale` times the paper's sizes. Optional overrides (negative
/// = keep scaled default) support the parameter sweeps.
struct DatasetOverrides {
  int num_pois = -1;
  int num_road_vertices = -1;
  int num_users = -1;
};
SpatialSocialNetwork MakeDataset(const std::string& name, double scale,
                                 const DatasetOverrides& overrides = {});

/// Builds a database with Table 3 default pivots (l = h = 5).
std::unique_ptr<GpssnDatabase> BuildDatabase(SpatialSocialNetwork ssn,
                                             int num_pivots = 5,
                                             bool optimize_pivots = true);

/// Aggregate over a workload of queries with randomized issuers.
struct Aggregate {
  double avg_cpu_seconds = 0.0;
  double avg_page_ios = 0.0;
  int answers_found = 0;
  int queries = 0;
  QueryStats total;  // Counter sums across the workload.

  // --- Pruning-power helpers (fractions in [0, 1]) -----------------------
  double SocialIndexLevelPower(int num_users) const;
  double SocialObjectLevelPower() const;
  double RoadIndexLevelPower(int num_pois) const;
  double RoadObjectLevelPower() const;
  double UserInterestPower() const;
  double UserDistancePower() const;
  double PoiMatchPower() const;
  double PoiDistancePower(int num_pois) const;
};

Aggregate RunWorkload(GpssnDatabase* db, const GpssnQuery& base, int queries,
                      const QueryOptions& options, uint64_t seed);

/// Per-phase time breakdown of an aggregate (averages per query): descent /
/// ball / refine / exact-dist plus distance-cache row hit rate. When the
/// workload ran through a serving cluster (total.shard_msgs > 0) a second
/// line reports gather / plan / refine coordinator time, messages per query,
/// and the cross-shard refine skip rate.
std::string PhaseBreakdown(const Aggregate& agg);

/// Formats a fraction as a percentage string.
std::string Pct(double fraction);

}  // namespace gpssn::bench

#endif  // GPSSN_BENCH_BENCH_UTIL_H_
