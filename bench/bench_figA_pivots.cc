// Reproduces the Appendix P experiment on the number of pivots l = h
// (Table 3 row: 2, 3, 5, 7, 10). More pivots tighten distance bounds at
// higher storage/maintenance cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Appendix P: effect of the number of pivots l = h "
              "(scale %.2f, %d queries/point) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "pivots", "CPU (s)", "I/Os", "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    for (int pivots : {2, 3, 5, 7, 10}) {
      auto db = BuildDatabase(MakeDataset(name, config.scale), pivots);
      const Aggregate agg = RunWorkload(db.get(), DefaultQuery(),
                                        config.queries, QueryOptions{}, 80);
      table.AddRow({name, std::to_string(pivots),
                    TablePrinter::Num(agg.avg_cpu_seconds, 3),
                    TablePrinter::Num(agg.avg_page_ios, 4),
                    std::to_string(agg.answers_found) + "/" +
                        std::to_string(agg.queries)});
    }
  }
  table.Print();
  std::printf("(expected shape: more pivots -> tighter bounds -> fewer "
              "refinement evaluations, with diminishing returns)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
