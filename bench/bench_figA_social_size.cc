// Reproduces the Appendix P experiment on the social-network size
// |V(G_s)| (Table 3 row: 10K-50K).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Appendix P: effect of the social-network size |V(Gs)| "
              "(scale %.2f, %d queries/point) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "|V(Gs)| (scaled)", "CPU (s)", "I/Os",
                      "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    for (int paper_v : {10000, 20000, 30000, 40000, 50000}) {
      DatasetOverrides overrides;
      overrides.num_users =
          std::max(256, static_cast<int>(paper_v * config.scale));
      auto db = BuildDatabase(MakeDataset(name, config.scale, overrides));
      const Aggregate agg = RunWorkload(db.get(), DefaultQuery(),
                                        config.queries, QueryOptions{}, 40);
      table.AddRow({name, std::to_string(overrides.num_users),
                    TablePrinter::Num(agg.avg_cpu_seconds, 3),
                    TablePrinter::Num(agg.avg_page_ios, 4),
                    std::to_string(agg.answers_found) + "/" +
                        std::to_string(agg.queries)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
