// Ablation: contribution of each pruning rule class to query cost.
// Answers are identical with any rule disabled (verified by the test
// suite); only cost changes.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Ablation: disabling pruning-rule classes "
              "(UNI, scale %.2f, %d queries/row) ===\n",
              config.scale, config.queries);
  auto db = BuildDatabase(MakeDataset("UNI", config.scale));
  TablePrinter table({"configuration", "CPU (s)", "I/Os",
                      "exact dist evals", "groups"});
  struct Row {
    const char* name;
    PruningFlags flags;
  };
  const Row rows[] = {
      {"all rules on", {true, true, true, true}},
      {"no interest-score pruning", {false, true, true, true}},
      {"no social-distance pruning", {true, false, true, true}},
      {"no matching-score pruning", {true, true, false, true}},
      {"no road-distance pruning", {true, true, true, false}},
      {"no pruning at all", {false, false, false, false}},
  };
  for (const Row& row : rows) {
    QueryOptions options;
    options.pruning = row.flags;
    const Aggregate agg =
        RunWorkload(db.get(), DefaultQuery(), config.queries, options, 90);
    table.AddRow(
        {row.name, TablePrinter::Num(agg.avg_cpu_seconds, 3),
         TablePrinter::Num(agg.avg_page_ios, 4),
         TablePrinter::Num(
             agg.queries ? static_cast<double>(agg.total.exact_distance_evals) /
                               agg.queries
                         : 0,
             4),
         TablePrinter::Num(
             agg.queries ? static_cast<double>(agg.total.groups_enumerated) /
                               agg.queries
                         : 0,
             4)});
  }
  table.Print();
  std::printf("(expected: every disabled rule class increases cost; "
              "interest-score pruning matters most)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
