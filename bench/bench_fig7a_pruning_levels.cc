// Reproduces Figure 7(a): pruning power of index-level vs object-level
// pruning on both indexes, across the four datasets at default parameters.
// Paper bands: social index 40-50%, social object 50-58%; road index
// 48-70%, road object 30-42%.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Fig. 7(a): index-level vs object-level pruning power "
              "(scale %.2f, %d queries/dataset) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "social idx-level", "social obj-level",
                      "road idx-level", "road obj-level"});
  for (const char* name : {"BriCal", "GowCol", "UNI", "ZIPF"}) {
    auto db = BuildDatabase(MakeDataset(name, config.scale));
    const Aggregate agg = RunWorkload(db.get(), DefaultQuery(), config.queries,
                                      QueryOptions{}, 5);
    table.AddRow({name, Pct(agg.SocialIndexLevelPower(db->ssn().num_users())),
                  Pct(agg.SocialObjectLevelPower()),
                  Pct(agg.RoadIndexLevelPower(db->ssn().num_pois())),
                  Pct(agg.RoadObjectLevelPower())});
  }
  table.Print();
  std::printf("(paper: social 40-50%% / 50-58%%, road 48-70%% / 30-42%%)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
