// google-benchmark micro-benchmarks for the substrate kernels: Dijkstra,
// BFS, R*-tree operations, score computations, and pruning predicates.

#include <benchmark/benchmark.h>

#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/pruning.h"
#include "core/refinement.h"
#include "core/scores.h"
#include "core/social_scratch.h"
#include "core/stats.h"
#include "index/rstar_tree.h"
#include "roadnet/astar.h"
#include "roadnet/contraction_hierarchy.h"
#include "roadnet/distance_backend.h"
#include "roadnet/distance_cache.h"
#include "roadnet/road_generator.h"
#include "roadnet/shortest_path.h"
#include "socialnet/bfs.h"
#include "socialnet/social_generator.h"

namespace gpssn::bench {
namespace {

const RoadNetwork& SharedRoad(int n) {
  static auto* cache = new std::map<int, RoadNetwork>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    RoadGenOptions options;
    options.num_vertices = n;
    options.seed = 1;
    it = cache->emplace(n, GenerateRoadNetwork(options)).first;
  }
  return it->second;
}

const SocialNetwork& SharedSocial(int n) {
  static auto* cache = new std::map<int, SocialNetwork>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    SocialGenOptions options;
    options.num_users = n;
    options.seed = 1;
    it = cache->emplace(n, GenerateSocialNetwork(options)).first;
  }
  return it->second;
}

void BM_DijkstraSingleSource(benchmark::State& state) {
  const RoadNetwork& g = SharedRoad(static_cast<int>(state.range(0)));
  DijkstraEngine engine(&g);
  VertexId source = 0;
  for (auto _ : state) {
    engine.RunFromVertex(source);
    benchmark::DoNotOptimize(engine.Distance(g.num_vertices() - 1));
    source = (source + 101) % g.num_vertices();
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_DijkstraSingleSource)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_DijkstraBoundedBall(benchmark::State& state) {
  const RoadNetwork& g = SharedRoad(5000);
  DijkstraEngine engine(&g);
  EdgePosition pos{0, 0.5};
  for (auto _ : state) {
    engine.RunFromPosition(pos, /*bound=*/static_cast<double>(state.range(0)));
    benchmark::DoNotOptimize(engine.Settled().size());
    pos.edge = (pos.edge + 37) % g.num_edges();
  }
}
BENCHMARK(BM_DijkstraBoundedBall)->Arg(2)->Arg(4)->Arg(8);

void BM_BfsFullGraph(benchmark::State& state) {
  const SocialNetwork& g = SharedSocial(static_cast<int>(state.range(0)));
  BfsEngine engine(&g);
  UserId source = 0;
  for (auto _ : state) {
    engine.Run(source);
    benchmark::DoNotOptimize(engine.Visited().size());
    source = (source + 11) % g.num_users();
  }
  state.SetItemsProcessed(state.iterations() * g.num_users());
}
BENCHMARK(BM_BfsFullGraph)->Arg(1000)->Arg(10000);

// Point-to-point engine shoot-out on the same 20K-vertex road network:
// plain Dijkstra (early exit), A*, bidirectional, contraction hierarchies.
void BM_PointToPointDijkstra(benchmark::State& state) {
  const RoadNetwork& g = SharedRoad(20000);
  DijkstraEngine engine(&g);
  Rng rng(21);
  for (auto _ : state) {
    const VertexId a = rng.NextBounded(g.num_vertices());
    const VertexId b = rng.NextBounded(g.num_vertices());
    benchmark::DoNotOptimize(engine.VertexToVertex(a, b));
  }
}
BENCHMARK(BM_PointToPointDijkstra);

void BM_PointToPointAStar(benchmark::State& state) {
  const RoadNetwork& g = SharedRoad(20000);
  AStarEngine engine(&g);
  Rng rng(21);
  for (auto _ : state) {
    const VertexId a = rng.NextBounded(g.num_vertices());
    const VertexId b = rng.NextBounded(g.num_vertices());
    benchmark::DoNotOptimize(engine.VertexToVertex(a, b));
  }
}
BENCHMARK(BM_PointToPointAStar);

void BM_PointToPointBidirectional(benchmark::State& state) {
  const RoadNetwork& g = SharedRoad(20000);
  BidirectionalDijkstra engine(&g);
  Rng rng(21);
  for (auto _ : state) {
    const VertexId a = rng.NextBounded(g.num_vertices());
    const VertexId b = rng.NextBounded(g.num_vertices());
    benchmark::DoNotOptimize(engine.VertexToVertex(a, b));
  }
}
BENCHMARK(BM_PointToPointBidirectional);

void BM_PointToPointCh(benchmark::State& state) {
  const RoadNetwork& g = SharedRoad(20000);
  static auto* ch_cache = new std::map<const RoadNetwork*, ContractionHierarchy>();
  auto it = ch_cache->find(&g);
  if (it == ch_cache->end()) {
    it = ch_cache->emplace(&g, ContractionHierarchy()).first;
    it->second.Build(&g);
  }
  ChQuery engine(&it->second);
  Rng rng(21);
  for (auto _ : state) {
    const VertexId a = rng.NextBounded(g.num_vertices());
    const VertexId b = rng.NextBounded(g.num_vertices());
    benchmark::DoNotOptimize(engine.VertexToVertex(a, b));
  }
}
BENCHMARK(BM_PointToPointCh);

// One-to-many kernel shoot-out behind the pluggable DistanceBackend
// interface: the refinement loop's inner operation (one user home -> all
// candidate POIs), as bounded Dijkstra, as a CH bucket query, and as a
// warm-cache row read (the cost a repeated user pays instead of either).
constexpr int kOneToManyTargets = 64;

const std::vector<Poi>& SharedBenchPois(int n) {
  static auto* cache = new std::map<int, std::vector<Poi>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    const RoadNetwork& g = SharedRoad(n);
    Rng rng(77);
    std::vector<Poi> pois(kOneToManyTargets);
    for (int i = 0; i < kOneToManyTargets; ++i) {
      pois[i].id = i;
      pois[i].position =
          EdgePosition{static_cast<EdgeId>(rng.NextBounded(g.num_edges())),
                       rng.UniformDouble()};
      pois[i].location = g.PositionPoint(pois[i].position);
    }
    it = cache->emplace(n, std::move(pois)).first;
  }
  return it->second;
}

const DistanceBackend& SharedBackend(DistanceBackendKind kind, int n) {
  static auto* cache =
      new std::map<std::pair<int, int>, std::unique_ptr<DistanceBackend>>();
  const auto key = std::make_pair(static_cast<int>(kind), n);
  auto it = cache->find(key);
  if (it == cache->end()) {
    const RoadNetwork& g = SharedRoad(n);
    const std::vector<Poi>& pois = SharedBenchPois(n);
    auto backend = kind == DistanceBackendKind::kContractionHierarchy
                       ? MakeChBackend(&g, &pois)
                       : MakeDijkstraBackend(&g, &pois);
    it = cache->emplace(key, std::move(backend)).first;
  }
  return *it->second;
}

void RunOneToMany(benchmark::State& state, DistanceBackendKind kind) {
  const int n = static_cast<int>(state.range(0));
  const RoadNetwork& g = SharedRoad(n);
  const auto engine = SharedBackend(kind, n).CreateEngine();
  std::vector<EdgePosition> targets;
  targets.reserve(kOneToManyTargets);
  for (const Poi& p : SharedBenchPois(n)) targets.push_back(p.position);
  engine->SetTargets(targets);
  std::vector<double> row(targets.size());
  Rng rng(31);
  for (auto _ : state) {
    const EdgePosition src{static_cast<EdgeId>(rng.NextBounded(g.num_edges())),
                           rng.UniformDouble()};
    engine->SourceToTargets(src, kInfDistance, row.data());
    benchmark::DoNotOptimize(row[0]);
  }
  state.SetItemsProcessed(state.iterations() * targets.size());
}

void BM_OneToManyBoundedDijkstra(benchmark::State& state) {
  RunOneToMany(state, DistanceBackendKind::kDijkstra);
}
BENCHMARK(BM_OneToManyBoundedDijkstra)
    ->Arg(10000)->Arg(20000)->Arg(30000)->Arg(40000)->Arg(50000);

void BM_OneToManyChBucket(benchmark::State& state) {
  RunOneToMany(state, DistanceBackendKind::kContractionHierarchy);
}
BENCHMARK(BM_OneToManyChBucket)
    ->Arg(10000)->Arg(20000)->Arg(30000)->Arg(40000)->Arg(50000);

void BM_OneToManyCacheWarm(benchmark::State& state) {
  // The cache read path is road-size independent; the sweep arg only keeps
  // the three kernels comparable row for row in the report.
  DistanceCache cache;
  constexpr UserId kUsers = 256;
  for (UserId u = 0; u < kUsers; ++u) {
    for (int i = 0; i < kOneToManyTargets; ++i) {
      cache.Insert(u, i, kInfDistance, static_cast<double>(u + i));
    }
  }
  std::vector<double> row(kOneToManyTargets);
  UserId u = 0;
  for (auto _ : state) {
    bool all = true;
    for (int i = 0; i < kOneToManyTargets; ++i) {
      all = cache.Lookup(u, i, kInfDistance, &row[i]) && all;
    }
    benchmark::DoNotOptimize(all);
    u = (u + 1) % kUsers;
  }
  state.SetItemsProcessed(state.iterations() * kOneToManyTargets);
}
BENCHMARK(BM_OneToManyCacheWarm)
    ->Arg(10000)->Arg(20000)->Arg(30000)->Arg(40000)->Arg(50000);

void BM_RStarTreeInsert(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    RStarTree tree;
    std::vector<Point> pts(state.range(0));
    for (auto& p : pts) {
      p = {rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)};
    }
    state.ResumeTiming();
    for (size_t i = 0; i < pts.size(); ++i) {
      tree.Insert(pts[i], static_cast<int32_t>(i));
    }
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RStarTreeInsert)->Arg(1000)->Arg(10000);

void BM_RStarTreeCircleQuery(benchmark::State& state) {
  Rng rng(9);
  RStarTree tree;
  for (int i = 0; i < 20000; ++i) {
    tree.Insert({rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)}, i);
  }
  std::vector<int32_t> out;
  for (auto _ : state) {
    out.clear();
    const Point c{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)};
    tree.CircleQuery(c, 5.0, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RStarTreeCircleQuery);

void BM_InterestScore(benchmark::State& state) {
  Rng rng(11);
  const int d = static_cast<int>(state.range(0));
  std::vector<double> a(d), b(d);
  for (int f = 0; f < d; ++f) {
    a[f] = rng.UniformDouble();
    b[f] = rng.UniformDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(InterestScore(a, b));
  }
}
BENCHMARK(BM_InterestScore)->Arg(10)->Arg(100)->Arg(1000);

void BM_MatchScore(benchmark::State& state) {
  Rng rng(13);
  const int d = 100;
  std::vector<double> w(d);
  for (double& p : w) p = rng.UniformDouble();
  std::vector<KeywordId> kws;
  for (KeywordId f = 0; f < d; f += 3) kws.push_back(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchScore(w, kws));
  }
}
BENCHMARK(BM_MatchScore);

void BM_UbMatchScoreBitVector(benchmark::State& state) {
  Rng rng(15);
  std::vector<double> w(100);
  for (double& p : w) p = rng.Bernoulli(0.1) ? rng.UniformDouble() : 0.0;
  std::vector<int> kws;
  for (int f = 0; f < 100; f += 4) kws.push_back(f);
  const KeywordBitVector sig = KeywordBitVector::FromKeywords(kws);
  for (auto _ : state) {
    benchmark::DoNotOptimize(UbMatchScore(w, sig));
  }
}
BENCHMARK(BM_UbMatchScoreBitVector);

// ----- Social scoring kernels (SocialScratch fast path) -----
//
// Scalar vs SoA one-to-many interest scoring, hash-set vs bitset ESU
// extension tests, and Corollary 2 with the pairwise memo off vs on. The
// d sweep covers small/medium/large topic vocabularies; bench_smoke.sh
// enforces the SoA kernel speedup at d=128.

constexpr int kSocialRows = 256;

// One query row scored against kSocialRows candidate rows, sequential
// scalar kernel (span-based, one dependent accumulator chain).
void BM_SocialScoreScalar(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(23);
  std::vector<std::vector<double>> rows(kSocialRows);
  for (auto& r : rows) {
    r.resize(d);
    for (double& x : r) x = rng.Bernoulli(0.5) ? rng.UniformDouble() : 0.0;
  }
  const std::vector<double> q = rows[0];
  std::vector<double> out(kSocialRows);
  for (auto _ : state) {
    for (int i = 0; i < kSocialRows; ++i) {
      out[i] = UserSimilarity(InterestMetric::kDotProduct, q, rows[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kSocialRows);
}
BENCHMARK(BM_SocialScoreScalar)->Arg(8)->Arg(32)->Arg(128);

// The same scoring through the padded SoA rows and the unrolled
// multi-accumulator kernel (SoaSimilarityOneToMany).
void BM_SocialScoreSoa(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t padded = (d + kSoaLaneWidth - 1) / kSoaLaneWidth *
                        kSoaLaneWidth;
  Rng rng(23);
  std::vector<double> rows(kSocialRows * padded, 0.0);
  for (int i = 0; i < kSocialRows; ++i) {
    for (size_t f = 0; f < d; ++f) {
      rows[i * padded + f] = rng.Bernoulli(0.5) ? rng.UniformDouble() : 0.0;
    }
  }
  std::vector<double> out(kSocialRows);
  for (auto _ : state) {
    SoaSimilarityOneToMany(InterestMetric::kDotProduct, rows.data(),
                           rows.data(), d, padded, kSocialRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kSocialRows);
}
BENCHMARK(BM_SocialScoreSoa)->Arg(8)->Arg(32)->Arg(128);

// ESU extension probe, scalar shape: walk a candidate's CSR friend list,
// test candidate membership and seen-ness through hash sets (what the
// scalar GroupEnumerator does per extension step).
void BM_EsuExtendHashSet(benchmark::State& state) {
  const SocialNetwork& g = SharedSocial(2000);
  const int n = kSocialRows;
  std::unordered_map<UserId, int> cand_index;
  for (int i = 0; i < n; ++i) cand_index.emplace(static_cast<UserId>(i), i);
  std::unordered_set<UserId> seen;
  for (int i = 0; i < n; i += 3) seen.insert(static_cast<UserId>(i));
  for (auto _ : state) {
    size_t extensions = 0;
    for (int i = 0; i < n; ++i) {
      for (UserId v : g.Friends(static_cast<UserId>(i))) {
        if (cand_index.count(v) != 0 && seen.count(v) == 0) ++extensions;
      }
    }
    benchmark::DoNotOptimize(extensions);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EsuExtendHashSet);

// The same probe over SocialScratch's candidate-local adjacency bitsets:
// one AND-NOT + popcount per word (what ScratchGroupEnumerator does).
void BM_EsuExtendBitset(benchmark::State& state) {
  const SocialNetwork& g = SharedSocial(2000);
  const int n = kSocialRows;
  GpssnQuery q;
  q.issuer = 0;
  q.gamma = 0.0;
  std::vector<UserId> cands;
  for (int i = 0; i < n; ++i) cands.push_back(static_cast<UserId>(i));
  SocialScratch scratch;
  scratch.Build(g, q, cands);
  const size_t words = scratch.adj_words();
  std::vector<uint64_t> seen(words, 0);
  for (int i = 0; i < n; i += 3) seen[i >> 6] |= 1ULL << (i & 63);
  for (auto _ : state) {
    size_t extensions = 0;
    for (int i = 0; i < n; ++i) {
      const uint64_t* adj = scratch.AdjacencyRow(i);
      for (size_t w = 0; w < words; ++w) {
        extensions += static_cast<size_t>(std::popcount(adj[w] & ~seen[w]));
      }
    }
    benchmark::DoNotOptimize(extensions);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EsuExtendBitset);

const SocialNetwork& SharedSocialDim(int n, int d) {
  static auto* cache = new std::map<std::pair<int, int>, SocialNetwork>();
  const auto key = std::make_pair(n, d);
  auto it = cache->find(key);
  if (it == cache->end()) {
    SocialGenOptions options;
    options.num_users = n;
    options.num_topics = d;
    options.seed = 3;
    it = cache->emplace(key, GenerateSocialNetwork(options)).first;
  }
  return it->second;
}

void RunCorollary2(benchmark::State& state, bool memo) {
  const int d = static_cast<int>(state.range(0));
  const SocialNetwork& g = SharedSocialDim(512, d);
  GpssnQuery q;
  q.issuer = 0;
  q.tau = 5;
  q.gamma = 0.25;
  std::vector<UserId> cands;
  const int n_users = g.num_users();
  for (int u = 0; u < n_users; ++u) cands.push_back(static_cast<UserId>(u));
  SocialScratch scratch;
  QueryStats stats;
  for (auto _ : state) {
    std::vector<UserId> work = cands;
    if (memo) {
      scratch.Build(g, q, work);
      ApplyCorollary2(g, q, &work, &stats, &scratch);
    } else {
      ApplyCorollary2(g, q, &work, &stats);
    }
    benchmark::DoNotOptimize(work.size());
  }
  state.SetItemsProcessed(state.iterations() * cands.size());
}

void BM_Corollary2MemoOff(benchmark::State& state) {
  RunCorollary2(state, /*memo=*/false);
}
BENCHMARK(BM_Corollary2MemoOff)->Arg(8)->Arg(32)->Arg(128);

void BM_Corollary2MemoOn(benchmark::State& state) {
  RunCorollary2(state, /*memo=*/true);
}
BENCHMARK(BM_Corollary2MemoOn)->Arg(8)->Arg(32)->Arg(128);

void BM_PruningRegionVectorTest(benchmark::State& state) {
  Rng rng(17);
  std::vector<double> anchor(100);
  for (double& p : anchor) p = rng.Bernoulli(0.05) ? rng.UniformDouble() : 0.0;
  const PruningRegion region(anchor, 0.3);
  std::vector<double> probe(100);
  for (double& p : probe) p = rng.Bernoulli(0.05) ? rng.UniformDouble() : 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(region.PrunesVector(probe));
  }
}
BENCHMARK(BM_PruningRegionVectorTest);

}  // namespace
}  // namespace gpssn::bench

BENCHMARK_MAIN();
