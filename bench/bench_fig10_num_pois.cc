// Reproduces Figure 10: GP-SSN performance vs the number n of POIs on the
// synthetic datasets. Paper: smooth growth (0.009-0.03 s, 138-285 I/Os) for
// n in {3K, 5K, 10K, 15K, 30K}.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace gpssn::bench {
namespace {

void Run() {
  const BenchConfig config = GetConfig();
  std::printf("=== Fig. 10: effect of the number of POIs n "
              "(scale %.2f, %d queries/point) ===\n",
              config.scale, config.queries);
  TablePrinter table({"dataset", "n (scaled)", "CPU (s)", "I/Os", "found"});
  for (const char* name : {"UNI", "ZIPF"}) {
    for (int paper_n : {3000, 5000, 10000, 15000, 30000}) {
      DatasetOverrides overrides;
      overrides.num_pois =
          std::max(128, static_cast<int>(paper_n * config.scale));
      auto db = BuildDatabase(MakeDataset(name, config.scale, overrides));
      const Aggregate agg = RunWorkload(db.get(), DefaultQuery(),
                                        config.queries, QueryOptions{}, 20);
      table.AddRow({name, std::to_string(overrides.num_pois),
                    TablePrinter::Num(agg.avg_cpu_seconds, 3),
                    TablePrinter::Num(agg.avg_page_ios, 4),
                    std::to_string(agg.answers_found) + "/" +
                        std::to_string(agg.queries)});
    }
  }
  table.Print();
  std::printf("(paper: smooth growth with n; 0.009-0.03 s, 138-285 I/Os)\n");
}

}  // namespace
}  // namespace gpssn::bench

int main() {
  gpssn::bench::Run();
  return 0;
}
