// Quickstart: build a tiny spatial-social network by hand (mirroring the
// paper's Figure 1 example), index it, and answer one GP-SSN query.
//
//   ./examples/quickstart

#include <cstdio>

#include "gpssn/gpssn.h"

using namespace gpssn;

int main() {
  // --- Road network G_r: a 3x2 grid of intersections (v1..v6 of Fig. 1).
  RoadNetworkBuilder road_builder;
  //   0 -- 1 -- 2
  //   |    |    |
  //   3 -- 4 -- 5
  for (double y : {1.0, 0.0}) {
    for (double x : {0.0, 1.0, 2.0}) {
      road_builder.AddVertex({x, y});
    }
  }
  std::vector<EdgeId> edges;
  for (auto [a, b] : {std::pair{0, 1}, {1, 2}, {3, 4}, {4, 5},
                      {0, 3}, {1, 4}, {2, 5}}) {
    auto e = road_builder.AddEdge(a, b);
    GPSSN_CHECK_OK(e.status());
    edges.push_back(*e);
  }
  RoadNetwork road = road_builder.Build();

  // --- POIs on road edges: a restaurant, a mall, and two cafes. Topic ids:
  // 0 = restaurant, 1 = shopping mall, 2 = cafe (Table 1's vocabulary).
  std::vector<Poi> pois;
  auto add_poi = [&](EdgeId e, double t, std::vector<KeywordId> kws) {
    Poi poi;
    poi.id = static_cast<PoiId>(pois.size());
    poi.position = {e, t};
    poi.location = road.PositionPoint(poi.position);
    poi.keywords = std::move(kws);
    pois.push_back(std::move(poi));
  };
  add_poi(edges[0], 0.5, {0});     // Restaurant on the top-left road.
  add_poi(edges[1], 0.3, {1});     // Mall on the top-right road.
  add_poi(edges[2], 0.6, {2});     // Cafe on the bottom-left road.
  add_poi(edges[5], 0.5, {0, 2});  // Cafe+restaurant in the middle.

  // --- Social network G_s: the five users of Table 1, with Fig. 1's
  // friendship edges.
  SocialNetworkBuilder social_builder(/*num_topics=*/3);
  const double interests[5][3] = {
      {0.7, 0.3, 0.7},  // u1
      {0.2, 0.9, 0.3},  // u2
      {0.4, 0.8, 0.8},  // u3
      {0.9, 0.7, 0.7},  // u4
      {0.1, 0.8, 0.5},  // u5
  };
  for (const auto& w : interests) {
    GPSSN_CHECK_OK(social_builder.AddUser(std::span<const double>(w, 3)).status());
  }
  for (auto [a, b] : {std::pair{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {1, 4}}) {
    GPSSN_CHECK_OK(social_builder.AddFriendship(a, b));
  }
  SocialNetwork social = social_builder.Build();

  // --- Homes: each user lives on some road edge.
  std::vector<EdgePosition> homes = {
      {edges[0], 0.1}, {edges[1], 0.9}, {edges[2], 0.2},
      {edges[3], 0.8}, {edges[5], 0.4},
  };

  SpatialSocialNetwork ssn(std::move(road), std::move(social),
                           std::move(homes), std::move(pois));
  GPSSN_CHECK_OK(ssn.Validate());

  // --- Build the database (pivot tables + both indexes) and query.
  GpssnBuildOptions build;
  build.num_road_pivots = 2;
  build.num_social_pivots = 2;
  build.social_index.leaf_cell_size = 2;
  build.poi_index.r_min = 0.25;
  build.poi_index.r_max = 3.0;
  GpssnDatabase db(std::move(ssn), build);

  GpssnQuery query;
  query.issuer = 0;    // u1 wants to plan a trip...
  query.tau = 3;       // ...with two friends...
  query.gamma = 0.8;   // ...who share interests with each other...
  query.theta = 0.6;   // ...to POIs matching everyone's taste...
  query.radius = 1.5;  // ...within a walkable area.

  QueryStats stats;
  auto answer = db.Query(query, &stats);
  GPSSN_CHECK_OK(answer.status());

  if (!answer->found) {
    std::printf("No qualifying (group, POI set) pair exists.\n");
    return 0;
  }
  std::printf("Group S (issuer u%d + friends): ", query.issuer + 1);
  for (UserId u : answer->users) std::printf("u%d ", u + 1);
  std::printf("\nPOI set R (ball around POI %d): ", answer->center);
  for (PoiId o : answer->pois) {
    const Point p = db.ssn().poi(o).location;
    std::printf("#%d@(%.2f,%.2f) ", o, p.x, p.y);
  }
  std::printf("\nmaxdist_RN(S, R) = %.3f\n", answer->max_dist);
  std::printf("\nQuery statistics:\n%s\n", stats.ToString().c_str());
  return 0;
}
