// Dataset utility: generate the evaluation datasets, save/load them in the
// gpssn-v1 text format, and print their Table 2 statistics.
//
//   ./examples/dataset_tool gen <BriCal|GowCol|UNI|ZIPF> <scale> <path>
//   ./examples/dataset_tool stat <path>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gpssn/gpssn.h"

using namespace gpssn;

namespace {

int Usage() {
  std::printf(
      "usage:\n"
      "  dataset_tool gen <BriCal|GowCol|UNI|ZIPF> <scale> <path>\n"
      "  dataset_tool stat <path>\n");
  return 2;
}

void PrintStats(const SpatialSocialNetwork& ssn) {
  const SsnStats stats = ComputeStats(ssn);
  std::printf("|V(Gs)| = %d   deg(Gs) = %.2f\n", stats.social_vertices,
              stats.social_avg_degree);
  std::printf("|V(Gr)| = %d   deg(Gr) = %.2f\n", stats.road_vertices,
              stats.road_avg_degree);
  std::printf("POIs    = %d   topics  = %d\n", stats.num_pois,
              stats.num_topics);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];

  if (command == "gen") {
    if (argc != 5) return Usage();
    const std::string name = argv[2];
    const double scale = std::atof(argv[3]);
    const std::string path = argv[4];
    if (scale <= 0.0 || scale > 1.0) {
      std::fprintf(stderr, "scale must be in (0, 1]\n");
      return 2;
    }
    SpatialSocialNetwork ssn;
    if (name == "BriCal") {
      ssn = MakeRealLike(BriCalOptions(scale));
    } else if (name == "GowCol") {
      ssn = MakeRealLike(GowColOptions(scale));
    } else if (name == "UNI" || name == "ZIPF") {
      SyntheticSsnOptions options;
      options.distribution =
          name == "ZIPF" ? Distribution::kZipf : Distribution::kUniform;
      options.num_road_vertices = std::max(64, static_cast<int>(20000 * scale));
      options.num_pois = std::max(32, static_cast<int>(10000 * scale));
      options.num_users = std::max(64, static_cast<int>(30000 * scale));
      ssn = MakeSynthetic(options);
    } else {
      return Usage();
    }
    const Status saved = SaveSsn(ssn, path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s:\n", path.c_str());
    PrintStats(ssn);
    return 0;
  }

  if (command == "stat") {
    if (argc != 3) return Usage();
    auto loaded = LoadSsn(argv[2]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    PrintStats(*loaded);
    return 0;
  }

  return Usage();
}
