// Interactive GP-SSN shell: load or generate a spatial-social network, then
// issue queries and inspect results from a prompt. Reads commands from
// stdin (scriptable: `echo "gen UNI 0.05\nquery 10 3" | gpssn_shell`).
//
// Commands:
//   gen <BriCal|GowCol|UNI|ZIPF> <scale>   generate + index a dataset
//   load <path>                            load a saved .gpssn file + index
//   stat                                   dataset statistics
//   tune [percentile]                      data-driven (gamma, theta, r)
//   set <gamma|theta|r|metric> <value>     set query parameters
//   query <issuer> <tau> [k]               run a (top-k) GP-SSN query
//   baseline <issuer> <tau>                estimate the Baseline cost
//   addpoi <edge> <t> <kw...>              open a new facility (dynamic)
//   help / quit

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/timer.h"
#include "gpssn/gpssn.h"

using namespace gpssn;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  gen <BriCal|GowCol|UNI|ZIPF> <scale>\n"
      "  load <path>\n"
      "  stat\n"
      "  tune [percentile]\n"
      "  set <gamma|theta|r|metric> <value>   (metric: dot | jaccard)\n"
      "  query <issuer> <tau> [k]\n"
      "  baseline <issuer> <tau>\n"
      "  addpoi <edge> <t in [0,1]> <keyword...>\n"
      "  save <path> | restore <path>         (database snapshots)\n"
      "  help | quit\n");
}

SpatialSocialNetwork Generate(const std::string& name, double scale) {
  if (name == "BriCal") return MakeRealLike(BriCalOptions(scale));
  if (name == "GowCol") return MakeRealLike(GowColOptions(scale));
  SyntheticSsnOptions options;
  options.distribution =
      name == "ZIPF" ? Distribution::kZipf : Distribution::kUniform;
  options.num_road_vertices = std::max(64, static_cast<int>(20000 * scale));
  options.num_pois = std::max(32, static_cast<int>(10000 * scale));
  options.num_users = std::max(64, static_cast<int>(30000 * scale));
  return MakeSynthetic(options);
}

}  // namespace

int main() {
  std::unique_ptr<GpssnDatabase> db;
  GpssnQuery defaults;  // gamma/theta/radius/metric carried between queries.
  std::printf("gpssn shell — type 'help' for commands\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
      continue;
    }
    if (cmd == "gen") {
      std::string name;
      double scale = 0.05;
      if (!(in >> name >> scale) || scale <= 0 || scale > 1) {
        std::printf("usage: gen <BriCal|GowCol|UNI|ZIPF> <scale in (0,1]>\n");
        continue;
      }
      std::printf("generating %s at scale %.3f and building indexes...\n",
                  name.c_str(), scale);
      WallTimer timer;
      db = std::make_unique<GpssnDatabase>(Generate(name, scale));
      std::printf("ready in %.2f s (%d users, %d POIs)\n",
                  timer.ElapsedSeconds(), db->ssn().num_users(),
                  db->ssn().num_pois());
      continue;
    }
    if (cmd == "load") {
      std::string path;
      if (!(in >> path)) {
        std::printf("usage: load <path>\n");
        continue;
      }
      auto loaded = LoadSsn(path);
      if (!loaded.ok()) {
        std::printf("load failed: %s\n", loaded.status().ToString().c_str());
        continue;
      }
      db = std::make_unique<GpssnDatabase>(std::move(loaded).value());
      std::printf("loaded and indexed (%d users, %d POIs)\n",
                  db->ssn().num_users(), db->ssn().num_pois());
      continue;
    }
    if (db == nullptr) {
      std::printf("no dataset loaded — use 'gen' or 'load' first\n");
      continue;
    }
    if (cmd == "stat") {
      const SsnStats stats = ComputeStats(db->ssn());
      std::printf("|V(Gs)|=%d deg=%.2f  |V(Gr)|=%d deg=%.2f  POIs=%d d=%d\n",
                  stats.social_vertices, stats.social_avg_degree,
                  stats.road_vertices, stats.road_avg_degree, stats.num_pois,
                  stats.num_topics);
      continue;
    }
    if (cmd == "tune") {
      TuningOptions options;
      in >> options.percentile;
      if (options.percentile <= 0 || options.percentile >= 1) {
        options.percentile = 0.5;
      }
      ParameterSuggestion s = SuggestParameters(db->ssn(), options);
      // Keep r inside the index's precomputed envelope [r_min, r_max].
      const auto& poi_options = db->poi_index().options();
      const double clamped =
          std::clamp(s.radius, poi_options.r_min, poi_options.r_max);
      if (clamped != s.radius) {
        std::printf("(radius %.3f clamped to the index envelope "
                    "[%.2f, %.2f])\n",
                    s.radius, poi_options.r_min, poi_options.r_max);
        s.radius = clamped;
      }
      std::printf("suggested: gamma=%.3f theta=%.3f r=%.3f "
                  "(use 'set' to adopt)\n",
                  s.gamma, s.theta, s.radius);
      continue;
    }
    if (cmd == "set") {
      std::string key, value;
      if (!(in >> key >> value)) {
        std::printf("usage: set <gamma|theta|r|metric> <value>\n");
        continue;
      }
      if (key == "gamma") {
        defaults.gamma = std::atof(value.c_str());
      } else if (key == "theta") {
        defaults.theta = std::atof(value.c_str());
      } else if (key == "r") {
        defaults.radius = std::atof(value.c_str());
      } else if (key == "metric") {
        defaults.metric = value == "jaccard" ? InterestMetric::kJaccard
                                             : InterestMetric::kDotProduct;
      } else {
        std::printf("unknown parameter '%s'\n", key.c_str());
        continue;
      }
      std::printf("gamma=%.3f theta=%.3f r=%.3f metric=%s\n", defaults.gamma,
                  defaults.theta, defaults.radius,
                  defaults.metric == InterestMetric::kJaccard ? "jaccard"
                                                              : "dot");
      continue;
    }
    if (cmd == "query") {
      int issuer = -1, tau = 0, k = 1;
      if (!(in >> issuer >> tau)) {
        std::printf("usage: query <issuer> <tau> [k]\n");
        continue;
      }
      in >> k;
      GpssnQuery q = defaults;
      q.issuer = issuer;
      q.tau = tau;
      QueryStats stats;
      auto results = db->QueryTopK(q, std::max(1, k), QueryOptions{}, &stats);
      if (!results.ok()) {
        std::printf("error: %s\n", results.status().ToString().c_str());
        continue;
      }
      if (results->empty()) {
        std::printf("no answer (%.1f ms, %llu I/Os)\n",
                    stats.cpu_seconds * 1e3,
                    static_cast<unsigned long long>(stats.PageAccesses()));
        continue;
      }
      for (size_t rank = 0; rank < results->size(); ++rank) {
        const GpssnAnswer& a = (*results)[rank];
        std::printf("#%zu maxdist=%.3f  S = {", rank + 1, a.max_dist);
        for (size_t i = 0; i < a.users.size(); ++i) {
          std::printf("%s%d", i ? ", " : "", a.users[i]);
        }
        std::printf("}  R = %zu POIs around %d\n", a.pois.size(), a.center);
      }
      std::printf("(%.1f ms, %llu I/Os, %llu groups, %llu pairs)\n",
                  stats.cpu_seconds * 1e3,
                  static_cast<unsigned long long>(stats.PageAccesses()),
                  static_cast<unsigned long long>(stats.groups_enumerated),
                  static_cast<unsigned long long>(stats.pairs_examined));
      continue;
    }
    if (cmd == "save") {
      std::string path;
      if (!(in >> path)) {
        std::printf("usage: save <path>\n");
        continue;
      }
      const Status saved = SaveSnapshot(*db, path);
      std::printf("%s\n", saved.ok() ? "snapshot written" :
                                       saved.ToString().c_str());
      continue;
    }
    if (cmd == "restore") {
      std::string path;
      if (!(in >> path)) {
        std::printf("usage: restore <path>\n");
        continue;
      }
      WallTimer timer;
      auto restored = LoadSnapshot(path);
      if (!restored.ok()) {
        std::printf("restore failed: %s\n",
                    restored.status().ToString().c_str());
        continue;
      }
      db = std::move(restored).value();
      std::printf("restored in %.2f s (%d users, %d POIs)\n",
                  timer.ElapsedSeconds(), db->ssn().num_users(),
                  db->ssn().num_pois());
      continue;
    }
    if (cmd == "addpoi") {
      EdgePosition pos;
      if (!(in >> pos.edge >> pos.t)) {
        std::printf("usage: addpoi <edge> <t in [0,1]> <keyword...>\n");
        continue;
      }
      std::vector<KeywordId> kws;
      KeywordId kw;
      while (in >> kw) kws.push_back(kw);
      auto id = db->AddPoi(pos, std::move(kws));
      if (!id.ok()) {
        std::printf("error: %s\n", id.status().ToString().c_str());
        continue;
      }
      std::printf("opened POI %d at (%.2f, %.2f); index patched\n", *id,
                  db->ssn().poi(*id).location.x,
                  db->ssn().poi(*id).location.y);
      continue;
    }
    if (cmd == "baseline") {
      int issuer = -1, tau = 0;
      if (!(in >> issuer >> tau)) {
        std::printf("usage: baseline <issuer> <tau>\n");
        continue;
      }
      GpssnQuery q = defaults;
      q.issuer = issuer;
      q.tau = tau;
      const BaselineEstimate est = EstimateBaselineCost(db->ssn(), q, 50);
      std::printf("candidate pairs: 10^%.1f; estimated Baseline cost: "
                  "%.3g days, %.3g I/Os\n",
                  est.log10_candidate_pairs, est.estimated_total_days,
                  est.estimated_total_ios);
      continue;
    }
    std::printf("unknown command '%s' — type 'help'\n", cmd.c_str());
  }
  return 0;
}
