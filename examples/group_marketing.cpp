// Online advertising / group buying (Example 2 of the paper): a Groupon-
// style sales manager picks a seed customer and asks for groups of
// different sizes (coupon tiers), each with a set of participating
// merchants (POIs) the whole group's interests match.
//
//   ./examples/group_marketing [seed-customer]

#include <cstdio>
#include <cstdlib>

#include "gpssn/gpssn.h"

using namespace gpssn;

int main(int argc, char** argv) {
  // A Brightkite-like location-based social network at small scale.
  std::printf("Generating a check-in-driven LBSN (Brightkite-style)...\n");
  SpatialSocialNetwork ssn = MakeRealLike(BriCalOptions(/*scale=*/0.08,
                                                        /*seed=*/99));
  std::printf("  %d customers, %d merchants\n\n", ssn.num_users(),
              ssn.num_pois());
  GpssnDatabase db{std::move(ssn)};

  const UserId customer = argc > 1 ? std::atoi(argv[1]) : 123;
  std::printf("Seed customer: %d. Searching coupon groups...\n\n", customer);

  // Coupon tiers: "bring 2 friends", "bring 4", "bring 6".
  for (int tau : {3, 5, 7}) {
    GpssnQuery query;
    query.issuer = customer;
    query.tau = tau;
    query.gamma = 0.3;
    query.theta = 0.3;
    query.radius = 2.5;
    QueryStats stats;
    auto answer = db.Query(query, &stats);
    if (!answer.ok()) {
      std::printf("tier %d: query error %s\n", tau,
                  answer.status().ToString().c_str());
      continue;
    }
    std::printf("--- Coupon tier: group of %d ---\n", tau);
    if (!answer->found) {
      std::printf("  no qualifying group; tier not offered\n\n");
      continue;
    }
    std::printf("  recipients:");
    for (UserId u : answer->users) std::printf(" %d", u);
    std::printf("\n  participating merchants (%zu, centered on merchant %d):",
                answer->pois.size(), answer->center);
    for (PoiId o : answer->pois) std::printf(" %d", o);
    std::printf("\n  farthest customer-to-merchant distance: %.2f\n",
                answer->max_dist);
    std::printf("  (%.1f ms, %llu I/Os)\n\n", stats.cpu_seconds * 1e3,
                static_cast<unsigned long long>(stats.PageAccesses()));
  }
  return 0;
}
