// Destination planning for a group of friends (Example 1 of the paper):
// a city-scale synthetic spatial-social network; a user asks for a group of
// like-minded friends plus a set of nearby POIs they would all enjoy.
//
//   ./examples/trip_planning [issuer] [tau]

#include <cstdio>
#include <cstdlib>

#include "gpssn/gpssn.h"

using namespace gpssn;

int main(int argc, char** argv) {
  // A mid-size city: 5K intersections, 2.5K POIs, 8K residents.
  SyntheticSsnOptions city;
  city.num_road_vertices = 5000;
  city.num_pois = 2500;
  city.num_users = 8000;
  city.seed = 2026;
  std::printf("Generating the city and its residents...\n");
  SpatialSocialNetwork ssn = MakeSynthetic(city);
  const SsnStats stats = ComputeStats(ssn);
  std::printf("  road: %d intersections (avg degree %.2f), %d POIs\n",
              stats.road_vertices, stats.road_avg_degree, stats.num_pois);
  std::printf("  social: %d users (avg degree %.2f), %d topics\n\n",
              stats.social_vertices, stats.social_avg_degree,
              stats.num_topics);

  std::printf("Building pivot tables and the I_R / I_S indexes...\n");
  GpssnDatabase db{std::move(ssn)};

  GpssnQuery query;
  query.issuer = argc > 1 ? std::atoi(argv[1]) : 4242;
  query.tau = argc > 2 ? std::atoi(argv[2]) : 4;
  query.gamma = 0.3;
  query.theta = 0.3;
  query.radius = 2.0;

  std::printf("\nUser %d plans a day out with %d friends "
              "(gamma=%.1f, theta=%.1f, r=%.1f)...\n",
              query.issuer, query.tau - 1, query.gamma, query.theta,
              query.radius);
  QueryStats qstats;
  auto answer = db.Query(query, &qstats);
  if (!answer.ok()) {
    std::printf("query error: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  if (!answer->found) {
    std::printf("No qualifying plan exists for this user — try another "
                "issuer or relax the thresholds.\n");
    return 0;
  }

  std::printf("\n=== The plan ===\n");
  std::printf("Invitees (pairwise interest score >= %.1f, all connected):\n",
              query.gamma);
  for (UserId u : answer->users) {
    const Point home = db.ssn().user_point(u);
    std::printf("  user %-6d home (%.1f, %.1f)%s\n", u, home.x, home.y,
                u == query.issuer ? "   <- the organizer" : "");
  }
  std::printf("Destinations (all within road distance %.1f of POI %d):\n",
              query.radius, answer->center);
  for (PoiId o : answer->pois) {
    const Poi& poi = db.ssn().poi(o);
    std::printf("  POI %-6d at (%.1f, %.1f), topics:", o, poi.location.x,
                poi.location.y);
    for (KeywordId kw : poi.keywords) std::printf(" %d", kw);
    std::printf("\n");
  }
  std::printf("Longest drive for any invitee: %.2f road units.\n",
              answer->max_dist);
  std::printf("\n(answered in %.1f ms with %llu page I/Os)\n",
              qstats.cpu_seconds * 1e3,
              static_cast<unsigned long long>(qstats.PageAccesses()));

  // Alternative plans via the top-k extension.
  auto alternatives = db.QueryTopK(query, 3, QueryOptions{});
  if (alternatives.ok() && alternatives->size() > 1) {
    std::printf("\nAlternative plans:\n");
    for (size_t rank = 1; rank < alternatives->size(); ++rank) {
      const GpssnAnswer& alt = (*alternatives)[rank];
      std::printf("  #%zu: %zu POIs around POI %d, longest drive %.2f\n",
                  rank + 1, alt.pois.size(), alt.center, alt.max_dist);
    }
  }

  // What thresholds does this city's own data suggest? (Sec. 2.2's
  // parameter-tuning discussion.)
  const ParameterSuggestion suggestion =
      SuggestParameters(db.ssn(), TuningOptions{});
  std::printf("\nData-driven parameter suggestion for this city: "
              "gamma=%.2f theta=%.2f r=%.2f\n",
              suggestion.gamma, suggestion.theta, suggestion.radius);
  return 0;
}
