// Batch execution example: a city recommendation service answering a burst
// of GP-SSN queries concurrently through GpssnBatchExecutor — pooled
// processors over the shared indexes, per-query deadlines, completion
// callbacks, and the aggregated BatchStats report.

#include <atomic>
#include <cstdio>

#include "gpssn/gpssn.h"

using namespace gpssn;

int main() {
  // A mid-sized synthetic city (see examples/dataset_tool for real-like
  // dataset generation at paper scale).
  SyntheticSsnOptions data;
  data.num_road_vertices = 2000;
  data.num_pois = 1000;
  data.num_users = 3000;
  data.num_topics = 40;
  data.seed = 11;
  std::printf("building database (%d users, %d POIs)...\n", data.num_users,
              data.num_pois);
  GpssnDatabase db(MakeSynthetic(data));

  // A burst of queries: every 37th user asks for a group outing.
  std::vector<GpssnQuery> burst;
  for (UserId u = 0; u < db.ssn().num_users(); u += 37) {
    GpssnQuery q;
    q.issuer = u;
    q.tau = 4;
    burst.push_back(q);
  }

  // One-shot convenience path: GpssnDatabase::QueryBatch.
  BatchExecutorOptions options;
  options.num_workers = 4;
  BatchStats stats;
  std::vector<BatchQueryResult> results = db.QueryBatch(burst, options, &stats);
  std::printf("one-shot batch of %zu queries: %s\n", results.size(),
              stats.ToString().c_str());

  // Reusable executor with per-query deadlines and completion callbacks —
  // what a serving loop would hold on to.
  GpssnBatchExecutor executor(&db.poi_index(), &db.social_index(), options);
  std::atomic<int> completed{0};
  for (size_t i = 0; i < burst.size(); ++i) {
    // A 50 ms per-query budget; queries that blow it come back as
    // DeadlineExceeded instead of stalling the batch.
    executor.Submit(burst[i], /*deadline_seconds=*/0.050,
                    [&completed](const BatchQueryResult& r) {
                      completed.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(progress counter; read after Wait)
                      (void)r;  // Per-query answer, stats, latency.
                    });
  }
  results = executor.Wait(&stats);
  std::printf("deadline batch: callbacks=%d, %s\n",
              completed.load(), stats.ToString().c_str());

  // Show one concrete answer.
  for (const BatchQueryResult& r : results) {
    if (r.status.ok() && r.answer.found) {
      std::printf("user %d: group of %zu meets at %zu POIs around POI %d "
                  "(max travel %.3f) — served by worker %d in %.2f ms\n",
                  r.query.issuer, r.answer.users.size(), r.answer.pois.size(),
                  r.answer.center, r.answer.max_dist, r.worker,
                  r.latency_seconds * 1e3);
      break;
    }
  }
  return 0;
}
