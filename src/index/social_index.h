// Copyright 2026 The gpssn Authors.
//
// The social-network index I_S (Section 4.1): the graph structure of G_s is
// partitioned into subgraphs (leaf nodes, via the multilevel partitioner
// substituting METIS); connected subgraphs are recursively grouped into
// non-leaf nodes until a root remains. Every node stores
//   * lb/ub interest vectors over its users (Eqs. 9-10),
//   * lb/ub hop distances to the l social pivots (Eqs. 11-12),
//   * lb/ub road distances of its users' homes to the h road pivots
//     (Eqs. 13-14),
// and is mapped onto simulated disk pages for the I/O metric.

#ifndef GPSSN_INDEX_SOCIAL_INDEX_H_
#define GPSSN_INDEX_SOCIAL_INDEX_H_

#include <vector>

#include "common/pagestore.h"
#include "roadnet/road_pivots.h"
#include "socialnet/partitioner.h"
#include "socialnet/social_pivots.h"
#include "ssn/spatial_social_network.h"

namespace gpssn {

struct SocialIndexOptions {
  /// Users per leaf cell of the partition.
  int leaf_cell_size = 32;
  /// Child nodes grouped under one parent.
  int fanout = 8;
  /// Simulated page size in bytes.
  uint32_t page_size = 4096;
  PartitionOptions partition;
  uint64_t seed = 1;
};

using SNodeId = int32_t;

/// One node of I_S. Leaves own users; internal nodes own children. All
/// leaves sit at level 0 and the root at level height-1 (uniform depth, as
/// Algorithm 2's level-synchronized descent requires).
struct SocialIndexNode {
  int level = 0;
  std::vector<SNodeId> children;  // Non-leaf only.
  std::vector<UserId> users;      // Leaf only.
  std::vector<double> lb_w, ub_w; // Eqs. 9-10 (length d).
  std::vector<int> lb_sp, ub_sp;  // Eqs. 11-12 (length l).
  std::vector<double> lb_rp, ub_rp;  // Eqs. 13-14 (length h).
  int subtree_users = 0;  // Users under this node (pruning power).
  PageId page = kInvalidPage;

  bool is_leaf() const { return level == 0; }
};

/// I_S: partition tree + bounds + page layout. Built once, immutable.
class SocialIndex {
 public:
  /// `social_pivots` / `road_pivots` must outlive the index.
  SocialIndex(const SpatialSocialNetwork* ssn,
              const SocialPivotTable* social_pivots,
              const RoadPivotTable* road_pivots,
              const SocialIndexOptions& options);

  SNodeId root() const { return root_; }
  int height() const { return nodes_[root_].level + 1; }
  const SocialIndexNode& node(SNodeId id) const { return nodes_[id]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  const SpatialSocialNetwork& ssn() const { return *ssn_; }
  const SocialPivotTable& social_pivots() const { return *social_pivots_; }
  const RoadPivotTable& road_pivots() const { return *road_pivots_; }
  const SocialIndexOptions& options() const { return options_; }

  /// Exact road distances of user u's home to the h road pivots (stored at
  /// leaf granularity per Section 4.1).
  const std::vector<double>& user_road_pivot_dists(UserId u) const {
    return user_rp_[u];
  }

  /// Page of the leaf record holding user u's payload.
  PageId user_page(UserId u) const { return user_page_[u]; }

  /// Leaf node holding user u.
  SNodeId leaf_of_user(UserId u) const { return leaf_of_user_[u]; }

  /// Corruption-injection hook for the audit tests (core/audit.h): grants
  /// mutable access to a node so a test can break an invariant on purpose
  /// and assert the validator localizes it. Never call outside tests.
  SocialIndexNode& mutable_node_for_test(SNodeId id) { return nodes_[id]; }

  /// Dynamic maintenance: user u's interest vector changed in the
  /// underlying network (SpatialSocialNetwork::UpdateUserInterests).
  /// Recomputes the interest lb/ub boxes exactly along the leaf-to-root
  /// path (O(cell size + d·height)).
  Status UpdateUserInterests(UserId u);

 private:
  const SpatialSocialNetwork* ssn_;
  const SocialPivotTable* social_pivots_;
  const RoadPivotTable* road_pivots_;
  SocialIndexOptions options_;
  std::vector<SocialIndexNode> nodes_;
  SNodeId root_ = -1;
  std::vector<SNodeId> parent_;        // Parent per node (-1 at the root).
  std::vector<SNodeId> leaf_of_user_;  // Leaf node per user.
  std::vector<std::vector<double>> user_rp_;
  std::vector<PageId> user_page_;
};

}  // namespace gpssn

#endif  // GPSSN_INDEX_SOCIAL_INDEX_H_
