#include "index/social_index.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/macros.h"
#include "common/rng.h"

namespace gpssn {

namespace {

// Elementwise min/max merge helpers.
template <typename T>
void MergeBounds(std::vector<T>* lb, std::vector<T>* ub,
                 const std::vector<T>& child_lb, const std::vector<T>& child_ub) {
  for (size_t i = 0; i < lb->size(); ++i) {
    (*lb)[i] = std::min((*lb)[i], child_lb[i]);
    (*ub)[i] = std::max((*ub)[i], child_ub[i]);
  }
}

}  // namespace

SocialIndex::SocialIndex(const SpatialSocialNetwork* ssn,
                         const SocialPivotTable* social_pivots,
                         const RoadPivotTable* road_pivots,
                         const SocialIndexOptions& options)
    : ssn_(ssn),
      social_pivots_(social_pivots),
      road_pivots_(road_pivots),
      options_(options) {
  GPSSN_CHECK(ssn != nullptr && social_pivots != nullptr &&
              road_pivots != nullptr);
  GPSSN_CHECK(options.fanout >= 2);
  const SocialNetwork& social = ssn->social();
  const int m = social.num_users();
  GPSSN_CHECK(m > 0);
  const int d = social.num_topics();
  const int l = social_pivots->num_pivots();
  const int h = road_pivots->num_pivots();

  // --- Exact per-user road-pivot distances (leaf payload, Section 4.1).
  user_rp_.resize(m);
  for (UserId u = 0; u < m; ++u) {
    user_rp_[u] = road_pivots->PositionDistances(ssn->user_home(u));
  }

  // --- Leaf level: graph partition cells.
  PartitionOptions part_options = options.partition;
  part_options.target_cell_size = options.leaf_cell_size;
  part_options.seed = options.seed;
  const PartitionResult partition = PartitionSocialNetwork(social, part_options);

  auto init_bounds = [&](SocialIndexNode* node) {
    node->lb_w.assign(d, std::numeric_limits<double>::infinity());
    node->ub_w.assign(d, -std::numeric_limits<double>::infinity());
    node->lb_sp.assign(l, std::numeric_limits<int>::max());
    node->ub_sp.assign(l, std::numeric_limits<int>::min());
    node->lb_rp.assign(h, std::numeric_limits<double>::infinity());
    node->ub_rp.assign(h, -std::numeric_limits<double>::infinity());
  };

  // Materialize only non-empty cells (the partitioner may leave some cell
  // ids unused).
  std::vector<std::vector<UserId>> cell_users(partition.num_cells);
  for (UserId u = 0; u < m; ++u) cell_users[partition.cell[u]].push_back(u);

  std::vector<SNodeId> current_level;  // Node ids of the level being built.
  nodes_.reserve(2 * partition.num_cells + 2);
  std::vector<SNodeId> node_of_cell(partition.num_cells, -1);
  for (int c = 0; c < partition.num_cells; ++c) {
    if (cell_users[c].empty()) continue;
    SocialIndexNode node;
    node.level = 0;
    init_bounds(&node);
    nodes_.push_back(std::move(node));
    node_of_cell[c] = static_cast<SNodeId>(nodes_.size() - 1);
    current_level.push_back(node_of_cell[c]);
  }
  for (UserId u = 0; u < m; ++u) {
    SocialIndexNode& leaf = nodes_[node_of_cell[partition.cell[u]]];
    leaf.users.push_back(u);
    const auto w = social.Interests(u);
    for (int f = 0; f < d; ++f) {
      leaf.lb_w[f] = std::min(leaf.lb_w[f], w[f]);
      leaf.ub_w[f] = std::max(leaf.ub_w[f], w[f]);
    }
    for (int k = 0; k < l; ++k) {
      const int hops = social_pivots->UserToPivot(u, k);
      leaf.lb_sp[k] = std::min(leaf.lb_sp[k], hops);
      leaf.ub_sp[k] = std::max(leaf.ub_sp[k], hops);
    }
    for (int k = 0; k < h; ++k) {
      leaf.lb_rp[k] = std::min(leaf.lb_rp[k], user_rp_[u][k]);
      leaf.ub_rp[k] = std::max(leaf.ub_rp[k], user_rp_[u][k]);
    }
  }
  for (SNodeId id : current_level) {
    nodes_[id].subtree_users = static_cast<int>(nodes_[id].users.size());
  }
  GPSSN_CHECK(!current_level.empty());

  // Map each user to its node at the current level, for connectivity-aware
  // grouping.
  std::vector<int> node_of_user(m, -1);
  auto refresh_user_map = [&]() {
    for (size_t i = 0; i < current_level.size(); ++i) {
      // Collect users under node i of the current level.
      std::vector<SNodeId> stack = {current_level[i]};
      while (!stack.empty()) {
        const SNodeId nid = stack.back();
        stack.pop_back();
        const SocialIndexNode& node = nodes_[nid];
        if (node.is_leaf()) {
          for (UserId u : node.users) node_of_user[u] = static_cast<int>(i);
        } else {
          stack.insert(stack.end(), node.children.begin(), node.children.end());
        }
      }
    }
  };

  // --- Build upper levels until a single root remains.
  int level = 1;
  Rng rng(options.seed ^ 0x5351ULL);
  while (current_level.size() > 1) {
    refresh_user_map();
    const int num_current = static_cast<int>(current_level.size());
    // Adjacency between current-level nodes (via cross friendships).
    std::vector<std::vector<int>> adj(num_current);
    for (UserId u = 0; u < m; ++u) {
      for (UserId v : social.Friends(u)) {
        if (u >= v) continue;
        const int a = node_of_user[u], b = node_of_user[v];
        if (a != b) {
          adj[a].push_back(b);
          adj[b].push_back(a);
        }
      }
    }
    for (auto& list : adj) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }

    // Greedy BFS grouping into groups of <= fanout connected nodes.
    std::vector<int> group(num_current, -1);
    int num_groups = 0;
    std::vector<int> order(num_current);
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    for (int seed_node : order) {
      if (group[seed_node] >= 0) continue;
      const int g = num_groups++;
      group[seed_node] = g;
      std::vector<int> frontier = {seed_node};
      int members = 1;
      for (size_t head = 0; head < frontier.size() && members < options.fanout;
           ++head) {
        for (int nb : adj[frontier[head]]) {
          if (group[nb] >= 0) continue;
          group[nb] = g;
          frontier.push_back(nb);
          if (++members >= options.fanout) break;
        }
      }
    }

    std::vector<SNodeId> next_level(num_groups, -1);
    for (int i = 0; i < num_current; ++i) {
      const int g = group[i];
      if (next_level[g] < 0) {
        SocialIndexNode parent;
        parent.level = level;
        init_bounds(&parent);
        nodes_.push_back(std::move(parent));
        next_level[g] = static_cast<SNodeId>(nodes_.size() - 1);
      }
      SocialIndexNode& parent = nodes_[next_level[g]];
      parent.children.push_back(current_level[i]);
      const SocialIndexNode& child = nodes_[current_level[i]];
      parent.subtree_users += child.subtree_users;
      MergeBounds(&parent.lb_w, &parent.ub_w, child.lb_w, child.ub_w);
      MergeBounds(&parent.lb_sp, &parent.ub_sp, child.lb_sp, child.ub_sp);
      MergeBounds(&parent.lb_rp, &parent.ub_rp, child.lb_rp, child.ub_rp);
    }
    current_level = std::move(next_level);
    ++level;
  }
  root_ = current_level.front();

  // --- Navigation structures for dynamic maintenance.
  parent_.assign(nodes_.size(), -1);
  leaf_of_user_.assign(m, -1);
  for (SNodeId id = 0; id < static_cast<SNodeId>(nodes_.size()); ++id) {
    for (SNodeId child : nodes_[id].children) parent_[child] = id;
    for (UserId u : nodes_[id].users) leaf_of_user_[u] = id;
  }

  // --- Page layout: nodes breadth-first from the root, then user records.
  PageAllocator alloc(options.page_size);
  {
    std::vector<SNodeId> queue = {root_};
    for (size_t head = 0; head < queue.size(); ++head) {
      const SNodeId id = queue[head];
      SocialIndexNode& node = nodes_[id];
      const uint32_t bytes = static_cast<uint32_t>(
          16 + 16 * d + 8 * l + 16 * h + 4 * node.children.size() +
          4 * node.users.size());
      node.page = alloc.Place(bytes);
      queue.insert(queue.end(), node.children.begin(), node.children.end());
    }
  }
  user_page_.resize(m);
  for (UserId u = 0; u < m; ++u) {
    const uint32_t bytes =
        static_cast<uint32_t>(8 + 8 * d + 4 * l + 8 * h +
                              4 * social.Degree(u));
    user_page_[u] = alloc.Place(bytes);
  }
}

Status SocialIndex::UpdateUserInterests(UserId u) {
  if (u < 0 || u >= static_cast<UserId>(leaf_of_user_.size())) {
    return Status::InvalidArgument("user out of range");
  }
  const int d = ssn_->num_topics();
  const SocialNetwork& social = ssn_->social();
  // Exact recomputation of the interest boxes along the leaf-to-root path.
  for (SNodeId id = leaf_of_user_[u]; id != -1; id = parent_[id]) {
    SocialIndexNode& node = nodes_[id];
    node.lb_w.assign(d, std::numeric_limits<double>::infinity());
    node.ub_w.assign(d, -std::numeric_limits<double>::infinity());
    if (node.is_leaf()) {
      for (UserId member : node.users) {
        const auto w = social.Interests(member);
        for (int f = 0; f < d; ++f) {
          node.lb_w[f] = std::min(node.lb_w[f], w[f]);
          node.ub_w[f] = std::max(node.ub_w[f], w[f]);
        }
      }
    } else {
      for (SNodeId child : node.children) {
        const SocialIndexNode& c = nodes_[child];
        for (int f = 0; f < d; ++f) {
          node.lb_w[f] = std::min(node.lb_w[f], c.lb_w[f]);
          node.ub_w[f] = std::max(node.ub_w[f], c.ub_w[f]);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace gpssn
