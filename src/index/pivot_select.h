// Copyright 2026 The gpssn Authors.
//
// Pivot selection (Algorithm 1 of the paper): a random-restart swap local
// search that gradually improves the pivot set under a cost model. The cost
// model scores a pivot set by the expected TIGHTNESS of the triangle-
// inequality lower bound over a sample of object pairs:
//
//   Cost(P) = Σ_pairs  lb_P(a, b) / dist(a, b)        (∈ [0, 1] per pair)
//
// — exactly the "tighter distance lower bound" objective Section 3.2 states.
// Candidates are drawn from a random pool whose distances to the sample
// endpoints are precomputed (one Dijkstra/BFS per candidate), so each swap
// evaluation is O(|pool| · pairs).

#ifndef GPSSN_INDEX_PIVOT_SELECT_H_
#define GPSSN_INDEX_PIVOT_SELECT_H_

#include <vector>

#include "roadnet/road_graph.h"
#include "socialnet/social_graph.h"

namespace gpssn {

struct PivotSelectOptions {
  /// Size of the random candidate pool pivots are drawn from.
  int candidate_pool = 48;
  /// Number of sampled object pairs scored by the cost model.
  int sample_pairs = 64;
  /// Outer restarts (Algorithm 1: global_iter).
  int global_iter = 3;
  /// Swap attempts per restart (Algorithm 1: swap_iter).
  int swap_iter = 96;
  uint64_t seed = 1;
};

/// Selects h road-network pivot vertices via Algorithm 1 (maximizing
/// Cost_RN). Falls back to random pivots when h >= pool size.
std::vector<VertexId> SelectRoadPivots(const RoadNetwork& graph, int h,
                                       const PivotSelectOptions& options);

/// Selects l social-network pivot users via Algorithm 1 (maximizing
/// Cost_SN over hop distances).
std::vector<UserId> SelectSocialPivots(const SocialNetwork& graph, int l,
                                       const PivotSelectOptions& options);

/// Measures the average lower-bound tightness of a ROAD pivot set over
/// `sample_pairs` random vertex pairs (1.0 = bound always exact). Used by
/// the pivot-selection ablation benchmark and tests.
double MeasureRoadPivotTightness(const RoadNetwork& graph,
                                 const std::vector<VertexId>& pivots,
                                 int sample_pairs, uint64_t seed);

/// As above for SOCIAL pivots over hop distances.
double MeasureSocialPivotTightness(const SocialNetwork& graph,
                                   const std::vector<UserId>& pivots,
                                   int sample_pairs, uint64_t seed);

}  // namespace gpssn

#endif  // GPSSN_INDEX_PIVOT_SELECT_H_
