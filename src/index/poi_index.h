// Copyright 2026 The gpssn Authors.
//
// The road-network index I_R (Section 4.1): an R*-tree over POI locations
// whose leaf objects and internal entries carry the paper's augmentations:
//
//   * per POI o_i:   sup_K = union of keywords of POIs within road distance
//                    2·r_max of o_i (candidate superset R' of Fig. 2);
//                    sub_K = union of keywords within r_min (used for match-
//                    score LOWER bounds, Eq. 18, therefore stored exactly);
//                    exact road distances to the h road pivots.
//   * per node e_R:  V_sup bit vector (OR of children, Lemma 6 / Eq. 15);
//                    sampled POIs with exact sub_K sets (Eq. 18);
//                    per-pivot lb/ub road distances (Eqs. 7-8).
//
// Nodes are mapped onto simulated disk pages so queries can charge the
// paper's I/O metric.

#ifndef GPSSN_INDEX_POI_INDEX_H_
#define GPSSN_INDEX_POI_INDEX_H_

#include <vector>

#include "common/bitvector.h"
#include "common/pagestore.h"
#include "common/rng.h"
#include "index/rstar_tree.h"
#include "roadnet/road_pivots.h"
#include "roadnet/shortest_path.h"
#include "ssn/spatial_social_network.h"

namespace gpssn {

struct PoiIndexOptions {
  RStarTree::Options rtree;
  /// Smallest / largest radius r a query may specify; sub_K / sup_K are
  /// precomputed against these extremes (Section 4.1).
  double r_min = 0.5;
  double r_max = 4.0;
  /// How many sampled POIs (with exact sub_K sets) each node keeps for the
  /// match-score lower bound of Eq. 18.
  int sub_samples_per_node = 2;
  /// Simulated page size in bytes.
  uint32_t page_size = 4096;
  uint64_t seed = 1;
};

/// Augmentations of one POI (leaf object of I_R).
struct PoiAug {
  KeywordBitVector v_sup;                // Hash signature of sup_K.
  std::vector<KeywordId> sup_keywords;   // Exact sup_K (sorted).
  std::vector<KeywordId> sub_keywords;   // Exact sub_K (sorted).
  std::vector<double> pivot_dist;        // dist_RN(o_i, rp_k), k = 1..h.
};

/// Augmentations of one R*-tree node of I_R.
struct PoiNodeAug {
  KeywordBitVector v_sup;          // OR of member signatures.
  std::vector<PoiId> sub_samples;  // Sampled POIs (their sub_K is exact).
  std::vector<double> lb_pivot;    // Eq. 7, per pivot.
  std::vector<double> ub_pivot;    // Eq. 8, per pivot.
  int subtree_pois = 0;            // POIs under this node (pruning power).
  PageId page = kInvalidPage;
};

/// I_R: R*-tree + augmentations + page layout. Built once, immutable.
class PoiIndex {
 public:
  /// Builds the index. `pivots` must outlive the index. Runs one bounded
  /// Dijkstra ball query per POI (radius 2·r_max) to assemble sup/sub sets.
  PoiIndex(const SpatialSocialNetwork* ssn, const RoadPivotTable* pivots,
           const PoiIndexOptions& options);

  /// Snapshot-loading constructor: takes the sup_K / sub_K keyword sets
  /// precomputed by a previous build (the expensive per-POI ball queries
  /// are skipped; bit vectors and pivot distances are recomputed). The
  /// `precomputed` vector must have one entry per POI with sorted-unique
  /// keyword sets; everything else in it is ignored.
  PoiIndex(const SpatialSocialNetwork* ssn, const RoadPivotTable* pivots,
           const PoiIndexOptions& options, std::vector<PoiAug> precomputed);

  const RStarTree& tree() const { return tree_; }
  const RoadPivotTable& pivots() const { return *pivots_; }
  const SpatialSocialNetwork& ssn() const { return *ssn_; }
  const PoiIndexOptions& options() const { return options_; }

  const PoiAug& poi_aug(PoiId id) const { return poi_aug_[id]; }
  const PoiNodeAug& node_aug(RNodeId id) const { return node_aug_[id]; }

  /// Page of the (single) leaf page holding POI object payloads for `id`
  /// (POI payloads are packed after the node pages).
  PageId poi_page(PoiId id) const { return poi_page_[id]; }

  int height() const { return tree_.height(); }

  /// Corruption-injection hooks for the audit tests (core/audit.h): grant
  /// mutable access to augmentations / the tree so a test can break an
  /// invariant on purpose and assert the validator localizes it (or that a
  /// loosened bound trips the pruning-soundness auditor). Never call
  /// outside tests.
  PoiAug& mutable_poi_aug_for_test(PoiId id) { return poi_aug_[id]; }
  PoiNodeAug& mutable_node_aug_for_test(RNodeId id) { return node_aug_[id]; }
  RStarTree& mutable_tree_for_test() { return tree_; }

  /// Dynamic maintenance: registers the POI `id` that was just appended to
  /// the underlying network via SpatialSocialNetwork::AddPoi. Updates the
  /// new POI's augmentations, patches the sup_K / sub_K sets of every POI
  /// whose precomputed balls now contain it (reverse ball update), inserts
  /// it into the R*-tree, and rebuilds the node aggregates and page layout
  /// (O(n) — suitable for occasional facility openings, not bulk loads).
  Status InsertPoi(PoiId id);

 private:
  void ComputePoiAug(PoiId id, DijkstraEngine* engine,
                     const PoiLocator& locator);
  /// Recomputes every node's aggregates (bit vectors, pivot bounds,
  /// samples, subtree counts) and the page layout from the current tree.
  void RebuildNodeAugmentations();

  const SpatialSocialNetwork* ssn_;
  const RoadPivotTable* pivots_;
  PoiIndexOptions options_;
  RStarTree tree_;
  Rng rng_;
  std::vector<PoiAug> poi_aug_;
  std::vector<PoiNodeAug> node_aug_;
  std::vector<PageId> poi_page_;
};

}  // namespace gpssn

#endif  // GPSSN_INDEX_POI_INDEX_H_
