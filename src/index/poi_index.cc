#include "index/poi_index.h"

#include <algorithm>

#include "common/macros.h"

namespace gpssn {

namespace {

// Union of the keyword sets of `pois` (ids), sorted unique.
std::vector<KeywordId> KeywordUnion(const SpatialSocialNetwork& ssn,
                                    const std::vector<PoiId>& ids) {
  std::vector<KeywordId> out;
  for (PoiId id : ids) {
    const auto& kws = ssn.poi(id).keywords;
    out.insert(out.end(), kws.begin(), kws.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Inserts the elements of `add` into the sorted-unique vector `into`.
void MergeSorted(std::vector<KeywordId>* into,
                 const std::vector<KeywordId>& add) {
  for (KeywordId kw : add) {
    auto it = std::lower_bound(into->begin(), into->end(), kw);
    if (it == into->end() || *it != kw) into->insert(it, kw);
  }
}

}  // namespace

PoiIndex::PoiIndex(const SpatialSocialNetwork* ssn,
                   const RoadPivotTable* pivots,
                   const PoiIndexOptions& options)
    : ssn_(ssn),
      pivots_(pivots),
      options_(options),
      tree_(options.rtree),
      rng_(options.seed) {
  GPSSN_CHECK(ssn != nullptr && pivots != nullptr);
  GPSSN_CHECK(options.r_min > 0.0 && options.r_min <= options.r_max);
  const int n = ssn->num_pois();

  // --- R*-tree over POI locations (insertion in shuffled order improves
  // the tree shape for sorted inputs).
  std::vector<PoiId> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng_.Shuffle(&order);
  for (PoiId id : order) {
    tree_.Insert(ssn->poi(id).location, id);
  }

  // --- Per-POI augmentations.
  poi_aug_.resize(n);
  DijkstraEngine engine(&ssn->road());
  const PoiLocator locator(&ssn->road(), &ssn->pois());
  for (PoiId id = 0; id < n; ++id) {
    ComputePoiAug(id, &engine, locator);
  }

  RebuildNodeAugmentations();
}

PoiIndex::PoiIndex(const SpatialSocialNetwork* ssn,
                   const RoadPivotTable* pivots,
                   const PoiIndexOptions& options,
                   std::vector<PoiAug> precomputed)
    : ssn_(ssn),
      pivots_(pivots),
      options_(options),
      tree_(options.rtree),
      rng_(options.seed) {
  GPSSN_CHECK(ssn != nullptr && pivots != nullptr);
  GPSSN_CHECK(options.r_min > 0.0 && options.r_min <= options.r_max);
  const int n = ssn->num_pois();
  GPSSN_CHECK(static_cast<int>(precomputed.size()) == n);

  std::vector<PoiId> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng_.Shuffle(&order);
  for (PoiId id : order) {
    tree_.Insert(ssn->poi(id).location, id);
  }

  poi_aug_ = std::move(precomputed);
  for (PoiId id = 0; id < n; ++id) {
    PoiAug& aug = poi_aug_[id];
    aug.v_sup = KeywordBitVector::FromKeywords(
        std::vector<int>(aug.sup_keywords.begin(), aug.sup_keywords.end()));
    aug.pivot_dist = pivots->PositionDistances(ssn->poi(id).position);
  }

  RebuildNodeAugmentations();
}

void PoiIndex::ComputePoiAug(PoiId id, DijkstraEngine* engine,
                             const PoiLocator& locator) {
  PoiAug& aug = poi_aug_[id];
  const Poi& poi = ssn_->poi(id);
  // One ball query at the outer radius gives both sets (the inner ball is
  // a distance filter over the same result).
  const auto ball = locator.BallWithDistances(poi.position,
                                              2.0 * options_.r_max, engine);
  std::vector<PoiId> sup_ids, sub_ids;
  for (const auto& [other, dist] : ball) {
    sup_ids.push_back(other);
    if (dist <= options_.r_min) sub_ids.push_back(other);
  }
  aug.sup_keywords = KeywordUnion(*ssn_, sup_ids);
  aug.sub_keywords = KeywordUnion(*ssn_, sub_ids);
  aug.v_sup = KeywordBitVector::FromKeywords(
      std::vector<int>(aug.sup_keywords.begin(), aug.sup_keywords.end()));
  aug.pivot_dist = pivots_->PositionDistances(poi.position);
}

void PoiIndex::RebuildNodeAugmentations() {
  const int h = pivots_->num_pivots();
  node_aug_.assign(tree_.num_nodes(), PoiNodeAug{});

  // Children before parents; node ids do not encode level, so order by
  // level explicitly.
  std::vector<RNodeId> by_level(tree_.num_nodes());
  for (RNodeId i = 0; i < tree_.num_nodes(); ++i) by_level[i] = i;
  std::sort(by_level.begin(), by_level.end(), [this](RNodeId a, RNodeId b) {
    return tree_.node(a).level < tree_.node(b).level;
  });
  for (RNodeId id : by_level) {
    const RTreeNode& node = tree_.node(id);
    PoiNodeAug& aug = node_aug_[id];
    aug.lb_pivot.assign(h, kInfDistance);
    aug.ub_pivot.assign(h, 0.0);
    std::vector<PoiId> sample_pool;
    if (node.is_leaf()) {
      aug.subtree_pois = static_cast<int>(node.entries.size());
      for (const RTreeEntry& e : node.entries) {
        const PoiAug& poi = poi_aug_[e.id];
        aug.v_sup.UnionWith(poi.v_sup);
        for (int k = 0; k < h; ++k) {
          aug.lb_pivot[k] = std::min(aug.lb_pivot[k], poi.pivot_dist[k]);
          aug.ub_pivot[k] = std::max(aug.ub_pivot[k], poi.pivot_dist[k]);
        }
        sample_pool.push_back(e.id);
      }
    } else {
      for (const RTreeEntry& e : node.entries) {
        const PoiNodeAug& child = node_aug_[e.id];
        aug.subtree_pois += child.subtree_pois;
        aug.v_sup.UnionWith(child.v_sup);
        for (int k = 0; k < h; ++k) {
          aug.lb_pivot[k] = std::min(aug.lb_pivot[k], child.lb_pivot[k]);
          aug.ub_pivot[k] = std::max(aug.ub_pivot[k], child.ub_pivot[k]);
        }
        sample_pool.insert(sample_pool.end(), child.sub_samples.begin(),
                           child.sub_samples.end());
      }
    }
    if (!sample_pool.empty()) {
      const int want = std::min<int>(options_.sub_samples_per_node,
                                     static_cast<int>(sample_pool.size()));
      for (size_t idx :
           rng_.SampleWithoutReplacement(sample_pool.size(), want)) {
        aug.sub_samples.push_back(sample_pool[idx]);
      }
    }
  }

  // --- Page layout: nodes first (breadth-first from the root, the order a
  // bulk writer would emit them), then POI payload records.
  PageAllocator alloc(options_.page_size);
  {
    std::vector<RNodeId> queue = {tree_.root()};
    std::vector<bool> seen(tree_.num_nodes(), false);
    seen[tree_.root()] = true;
    for (size_t head = 0; head < queue.size(); ++head) {
      const RNodeId id = queue[head];
      const RTreeNode& node = tree_.node(id);
      // Entry bytes: MBR (32) + id (4); aug: bit vector (32), pivot bounds
      // (16h), samples (~8 each).
      const uint32_t bytes = static_cast<uint32_t>(
          node.entries.size() * 36 + 32 + 16 * h +
          node_aug_[id].sub_samples.size() * 8 + 16);
      node_aug_[id].page = alloc.Place(bytes);
      if (!node.is_leaf()) {
        for (const RTreeEntry& e : node.entries) {
          if (!seen[e.id]) {
            seen[e.id] = true;
            queue.push_back(e.id);
          }
        }
      }
    }
  }
  const int n = static_cast<int>(poi_aug_.size());
  poi_page_.resize(n);
  for (PoiId id = 0; id < n; ++id) {
    const PoiAug& aug = poi_aug_[id];
    const uint32_t bytes = static_cast<uint32_t>(
        24 + 4 * (aug.sup_keywords.size() + aug.sub_keywords.size()) +
        8 * aug.pivot_dist.size() + 32);
    poi_page_[id] = alloc.Place(bytes);
  }
}

Status PoiIndex::InsertPoi(PoiId id) {
  if (id != static_cast<PoiId>(poi_aug_.size())) {
    return Status::InvalidArgument(
        "InsertPoi expects the id just appended to the network");
  }
  if (id >= ssn_->num_pois()) {
    return Status::InvalidArgument("POI id not present in the network");
  }
  const Poi& poi = ssn_->poi(id);

  // Fresh augmentations for the new POI.
  poi_aug_.emplace_back();
  DijkstraEngine engine(&ssn_->road());
  const PoiLocator locator(&ssn_->road(), &ssn_->pois());
  ComputePoiAug(id, &engine, locator);

  // Reverse ball update: the new POI now appears inside the precomputed
  // balls of every POI within 2·r_max (sup) / r_min (sub) — road distances
  // are symmetric, so its own ball IS the reverse ball.
  const auto reverse =
      locator.BallWithDistances(poi.position, 2.0 * options_.r_max, &engine);
  for (const auto& [other, dist] : reverse) {
    if (other == id) continue;
    PoiAug& aug = poi_aug_[other];
    MergeSorted(&aug.sup_keywords, poi.keywords);
    for (KeywordId kw : poi.keywords) aug.v_sup.Add(kw);
    if (dist <= options_.r_min) {
      MergeSorted(&aug.sub_keywords, poi.keywords);
    }
  }

  tree_.Insert(poi.location, id);
  RebuildNodeAugmentations();
  return Status::OK();
}

}  // namespace gpssn
