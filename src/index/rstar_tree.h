// Copyright 2026 The gpssn Authors.
//
// R*-tree over 2D points (Beckmann, Kriegel, Schneider, Seeger, SIGMOD'90 —
// reference [6] of the paper), written from scratch. Implements the full
// R* insertion algorithm: overlap-minimizing ChooseSubtree at the leaf
// level, forced reinsertion on first overflow per level, and the
// margin-driven ChooseSplitAxis / overlap-driven ChooseSplitIndex split.
//
// The tree is the substrate of the POI index I_R (poi_index.h): the GP-SSN
// query processor traverses its nodes directly, so node ids, levels, and
// entry lists are part of the public interface.

#ifndef GPSSN_INDEX_RSTAR_TREE_H_
#define GPSSN_INDEX_RSTAR_TREE_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace gpssn {

using RNodeId = int32_t;
inline constexpr RNodeId kInvalidRNode = -1;

/// One slot of a node: for internal nodes `id` is a child RNodeId; for
/// leaves it is the caller's object id.
struct RTreeEntry {
  Rect mbr;
  int32_t id = -1;
};

/// A tree node. `level` 0 means leaf.
struct RTreeNode {
  int32_t level = 0;
  std::vector<RTreeEntry> entries;

  bool is_leaf() const { return level == 0; }
};

/// Point R*-tree. Insert-only (the GP-SSN indexes are built once, offline).
class RStarTree {
 public:
  struct Options {
    /// Maximum entries per node (page fanout). Minimum is 40% of max, the
    /// value recommended by the R*-tree paper.
    int max_entries = 32;
    /// Fraction of entries force-reinserted on first overflow (paper: 30%).
    double reinsert_fraction = 0.3;
  };

  RStarTree() : RStarTree(Options{}) {}
  explicit RStarTree(Options options);

  /// Inserts a point object. Object ids are arbitrary non-negative ints.
  void Insert(const Point& p, int32_t object_id);

  /// All object ids whose points fall inside `query` (borders inclusive).
  void RangeQuery(const Rect& query, std::vector<int32_t>* out) const;

  /// All object ids within Euclidean `radius` of `center`.
  void CircleQuery(const Point& center, double radius,
                   std::vector<int32_t>* out) const;

  int size() const { return size_; }
  int height() const { return nodes_[root_].level + 1; }
  RNodeId root() const { return root_; }
  const RTreeNode& node(RNodeId id) const { return nodes_[id]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Options& options() const { return options_; }

  /// Corruption-injection hook for the audit tests (core/audit.h): grants
  /// mutable access to a node so a test can break an invariant on purpose
  /// and assert the validator localizes it. Never call outside tests.
  RTreeNode& mutable_node_for_test(RNodeId id) { return nodes_[id]; }

  /// MBR of the whole tree (empty rect when the tree is empty).
  Rect bounds() const;

  /// Internal-consistency check for tests: MBRs contain children, levels
  /// are coherent, fanout limits hold (root exempt from the minimum).
  bool CheckInvariants() const;

 private:
  int min_entries() const;

  RNodeId NewNode(int32_t level);
  Rect NodeMbr(RNodeId id) const;

  /// Descends from the root to a node at `target_level`, choosing the
  /// subtree per the R* criteria. Fills `path` with node ids root..target.
  RNodeId ChooseSubtree(const Rect& mbr, int32_t target_level,
                        std::vector<RNodeId>* path) const;

  /// Inserts `entry` at `target_level`, handling overflow treatment
  /// (forced reinsert on the first overflow per level, split otherwise).
  void InsertEntry(const RTreeEntry& entry, int32_t target_level);

  /// R* split; returns the id of the newly created sibling.
  RNodeId Split(RNodeId node_id);

  /// Recomputes MBRs along `path` (from deepest to root).
  void AdjustPath(const std::vector<RNodeId>& path);

  Options options_;
  std::vector<RTreeNode> nodes_;
  RNodeId root_;
  int size_ = 0;
};

}  // namespace gpssn

#endif  // GPSSN_INDEX_RSTAR_TREE_H_
