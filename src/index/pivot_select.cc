#include "index/pivot_select.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/rng.h"
#include "roadnet/shortest_path.h"
#include "socialnet/bfs.h"

namespace gpssn {

namespace {

// Generic Algorithm 1 over a precomputed candidate/sample geometry:
//   cand_dist[c][e]: distance from candidate c to sample endpoint e
//   pair_dist[s]:    true distance of sample pair s = (2s, 2s+1)
// Distances may be infinity (unreachable); such terms are skipped.
struct SelectionProblem {
  std::vector<std::vector<double>> cand_dist;
  std::vector<double> pair_dist;
};

double CostOf(const SelectionProblem& problem, const std::vector<int>& pivots) {
  double total = 0.0;
  const size_t pairs = problem.pair_dist.size();
  for (size_t s = 0; s < pairs; ++s) {
    const double true_dist = problem.pair_dist[s];
    if (!std::isfinite(true_dist) || true_dist <= 0.0) continue;
    double lb = 0.0;
    for (int c : pivots) {
      const double da = problem.cand_dist[c][2 * s];
      const double db = problem.cand_dist[c][2 * s + 1];
      if (!std::isfinite(da) || !std::isfinite(db)) continue;
      lb = std::max(lb, std::abs(da - db));
    }
    total += std::min(lb / true_dist, 1.0);
  }
  return total;
}

// Algorithm 1: random restarts, each followed by swap local search.
std::vector<int> RunLocalSearch(const SelectionProblem& problem, int k,
                                const PivotSelectOptions& options, Rng* rng) {
  const int pool = static_cast<int>(problem.cand_dist.size());
  GPSSN_CHECK(k <= pool);
  double global_cost = -std::numeric_limits<double>::infinity();
  std::vector<int> global_best;
  for (int restart = 0; restart < options.global_iter; ++restart) {
    // Random initial pivot set P (line 3 of Algorithm 1).
    std::vector<int> in_set;
    std::vector<bool> is_pivot(pool, false);
    for (size_t idx : rng->SampleWithoutReplacement(pool, k)) {
      in_set.push_back(static_cast<int>(idx));
      is_pivot[idx] = true;
    }
    double local_cost = CostOf(problem, in_set);
    // Swap a pivot with a non-pivot; accept improvements (lines 6-13).
    for (int iter = 0; iter < options.swap_iter; ++iter) {
      if (k == pool) break;
      const int pos = static_cast<int>(rng->NextBounded(k));
      int replacement;
      do {
        replacement = static_cast<int>(rng->NextBounded(pool));
      } while (is_pivot[replacement]);
      const int old = in_set[pos];
      in_set[pos] = replacement;
      const double new_cost = CostOf(problem, in_set);
      if (new_cost > local_cost) {
        local_cost = new_cost;
        is_pivot[old] = false;
        is_pivot[replacement] = true;
      } else {
        in_set[pos] = old;
      }
    }
    if (local_cost > global_cost) {  // Lines 14-16.
      global_cost = local_cost;
      global_best = in_set;
    }
  }
  return global_best;
}

}  // namespace

std::vector<VertexId> SelectRoadPivots(const RoadNetwork& graph, int h,
                                       const PivotSelectOptions& options) {
  GPSSN_CHECK(h >= 1 && h <= graph.num_vertices());
  Rng rng(options.seed);
  const int pool =
      std::min(std::max(options.candidate_pool, h), graph.num_vertices());
  std::vector<VertexId> candidates;
  for (size_t idx : rng.SampleWithoutReplacement(graph.num_vertices(), pool)) {
    candidates.push_back(static_cast<VertexId>(idx));
  }

  const int pairs = options.sample_pairs;
  std::vector<VertexId> endpoints(2 * pairs);
  for (auto& e : endpoints) {
    e = static_cast<VertexId>(rng.NextBounded(graph.num_vertices()));
  }

  SelectionProblem problem;
  DijkstraEngine engine(&graph);
  problem.cand_dist.resize(pool);
  for (int c = 0; c < pool; ++c) {
    engine.RunFromVertex(candidates[c]);
    problem.cand_dist[c].resize(2 * pairs);
    for (int e = 0; e < 2 * pairs; ++e) {
      problem.cand_dist[c][e] = engine.Distance(endpoints[e]);
    }
  }
  problem.pair_dist.resize(pairs);
  for (int s = 0; s < pairs; ++s) {
    engine.RunFromVertex(endpoints[2 * s]);
    problem.pair_dist[s] = engine.Distance(endpoints[2 * s + 1]);
  }

  std::vector<VertexId> out;
  for (int c : RunLocalSearch(problem, h, options, &rng)) {
    out.push_back(candidates[c]);
  }
  return out;
}

std::vector<UserId> SelectSocialPivots(const SocialNetwork& graph, int l,
                                       const PivotSelectOptions& options) {
  GPSSN_CHECK(l >= 1 && l <= graph.num_users());
  Rng rng(options.seed ^ 0x9e37ULL);
  const int pool =
      std::min(std::max(options.candidate_pool, l), graph.num_users());
  std::vector<UserId> candidates;
  for (size_t idx : rng.SampleWithoutReplacement(graph.num_users(), pool)) {
    candidates.push_back(static_cast<UserId>(idx));
  }

  const int pairs = options.sample_pairs;
  std::vector<UserId> endpoints(2 * pairs);
  for (auto& e : endpoints) {
    e = static_cast<UserId>(rng.NextBounded(graph.num_users()));
  }

  SelectionProblem problem;
  BfsEngine engine(&graph);
  auto hops_or_inf = [](int hops) {
    return hops == kUnreachableHops ? std::numeric_limits<double>::infinity()
                                    : static_cast<double>(hops);
  };
  problem.cand_dist.resize(pool);
  for (int c = 0; c < pool; ++c) {
    engine.Run(candidates[c]);
    problem.cand_dist[c].resize(2 * pairs);
    for (int e = 0; e < 2 * pairs; ++e) {
      problem.cand_dist[c][e] = hops_or_inf(engine.Hops(endpoints[e]));
    }
  }
  problem.pair_dist.resize(pairs);
  for (int s = 0; s < pairs; ++s) {
    engine.Run(endpoints[2 * s]);
    problem.pair_dist[s] = hops_or_inf(engine.Hops(endpoints[2 * s + 1]));
  }

  std::vector<UserId> out;
  for (int c : RunLocalSearch(problem, l, options, &rng)) {
    out.push_back(candidates[c]);
  }
  return out;
}

double MeasureRoadPivotTightness(const RoadNetwork& graph,
                                 const std::vector<VertexId>& pivots,
                                 int sample_pairs, uint64_t seed) {
  Rng rng(seed);
  DijkstraEngine engine(&graph);
  // Pivot distance rows.
  std::vector<std::vector<double>> rows(pivots.size());
  for (size_t k = 0; k < pivots.size(); ++k) {
    engine.RunFromVertex(pivots[k]);
    rows[k].resize(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      rows[k][v] = engine.Distance(v);
    }
  }
  double total = 0.0;
  int counted = 0;
  for (int s = 0; s < sample_pairs; ++s) {
    const VertexId a = static_cast<VertexId>(rng.NextBounded(graph.num_vertices()));
    const VertexId b = static_cast<VertexId>(rng.NextBounded(graph.num_vertices()));
    if (a == b) continue;
    engine.RunFromVertex(a);
    const double true_dist = engine.Distance(b);
    if (!std::isfinite(true_dist) || true_dist <= 0.0) continue;
    double lb = 0.0;
    for (size_t k = 0; k < pivots.size(); ++k) {
      if (std::isfinite(rows[k][a]) && std::isfinite(rows[k][b])) {
        lb = std::max(lb, std::abs(rows[k][a] - rows[k][b]));
      }
    }
    total += std::min(lb / true_dist, 1.0);
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

double MeasureSocialPivotTightness(const SocialNetwork& graph,
                                   const std::vector<UserId>& pivots,
                                   int sample_pairs, uint64_t seed) {
  Rng rng(seed);
  BfsEngine engine(&graph);
  std::vector<std::vector<int>> rows(pivots.size());
  for (size_t k = 0; k < pivots.size(); ++k) {
    engine.Run(pivots[k]);
    rows[k].resize(graph.num_users());
    for (UserId u = 0; u < graph.num_users(); ++u) {
      rows[k][u] = engine.Hops(u);
    }
  }
  double total = 0.0;
  int counted = 0;
  for (int s = 0; s < sample_pairs; ++s) {
    const UserId a = static_cast<UserId>(rng.NextBounded(graph.num_users()));
    const UserId b = static_cast<UserId>(rng.NextBounded(graph.num_users()));
    if (a == b) continue;
    engine.Run(a);
    const int true_dist = engine.Hops(b);
    if (true_dist == kUnreachableHops || true_dist == 0) continue;
    int lb = 0;
    for (size_t k = 0; k < pivots.size(); ++k) {
      if (rows[k][a] != kUnreachableHops && rows[k][b] != kUnreachableHops) {
        lb = std::max(lb, std::abs(rows[k][a] - rows[k][b]));
      }
    }
    total += std::min(1.0, static_cast<double>(lb) / true_dist);
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

}  // namespace gpssn
