#include "index/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace gpssn {

RStarTree::RStarTree(Options options) : options_(options) {
  GPSSN_CHECK(options_.max_entries >= 4);
  GPSSN_CHECK(options_.reinsert_fraction > 0.0 &&
              options_.reinsert_fraction < 0.5);
  root_ = NewNode(0);
}

int RStarTree::min_entries() const {
  // 40% of the maximum, the R*-tree paper's recommendation.
  return std::max(2, options_.max_entries * 2 / 5);
}

RNodeId RStarTree::NewNode(int32_t level) {
  nodes_.push_back(RTreeNode{level, {}});
  return static_cast<RNodeId>(nodes_.size() - 1);
}

Rect RStarTree::NodeMbr(RNodeId id) const {
  Rect r;
  for (const RTreeEntry& e : nodes_[id].entries) r.ExtendRect(e.mbr);
  return r;
}

Rect RStarTree::bounds() const { return NodeMbr(root_); }

void RStarTree::Insert(const Point& p, int32_t object_id) {
  GPSSN_CHECK(object_id >= 0);
  InsertEntry(RTreeEntry{Rect::FromPoint(p), object_id}, /*target_level=*/0);
  ++size_;
}

RNodeId RStarTree::ChooseSubtree(const Rect& mbr, int32_t target_level,
                                 std::vector<RNodeId>* path) const {
  RNodeId current = root_;
  path->clear();
  path->push_back(current);
  while (nodes_[current].level > target_level) {
    const RTreeNode& node = nodes_[current];
    const bool children_are_leaves = node.level == 1;
    int best = -1;
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const Rect& r = node.entries[i].mbr;
      const double enlarge = r.Enlargement(mbr);
      const double area = r.Area();
      double overlap_delta = 0.0;
      if (children_are_leaves && target_level == 0) {
        // Overlap enlargement against the sibling entries.
        Rect grown = r;
        grown.ExtendRect(mbr);
        for (size_t j = 0; j < node.entries.size(); ++j) {
          if (j == i) continue;
          overlap_delta += grown.OverlapArea(node.entries[j].mbr) -
                           r.OverlapArea(node.entries[j].mbr);
        }
      }
      const bool better =
          (children_are_leaves && target_level == 0)
              ? (overlap_delta < best_overlap ||
                 (overlap_delta == best_overlap &&
                  (enlarge < best_enlarge ||
                   (enlarge == best_enlarge && area < best_area))))
              : (enlarge < best_enlarge ||
                 (enlarge == best_enlarge && area < best_area));
      if (better) {
        best = static_cast<int>(i);
        best_overlap = overlap_delta;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    GPSSN_CHECK(best >= 0);
    current = node.entries[best].id;
    path->push_back(current);
  }
  return current;
}

void RStarTree::AdjustPath(const std::vector<RNodeId>& path) {
  for (int i = static_cast<int>(path.size()) - 1; i >= 1; --i) {
    const RNodeId child = path[i];
    const RNodeId parent = path[i - 1];
    const Rect child_mbr = NodeMbr(child);
    for (RTreeEntry& e : nodes_[parent].entries) {
      if (e.id == child) {
        e.mbr = child_mbr;
        break;
      }
    }
  }
}

void RStarTree::InsertEntry(const RTreeEntry& entry, int32_t target_level) {
  std::vector<bool> reinserted_on_level(nodes_[root_].level + 1, false);
  // The first call may trigger forced reinserts, which recurse through the
  // same machinery but share the per-level flags.
  struct Frame {
    RTreeEntry entry;
    int32_t level;
  };
  std::vector<Frame> stack = {{entry, target_level}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();

    std::vector<RNodeId> path;
    const RNodeId target = ChooseSubtree(frame.entry.mbr, frame.level, &path);
    nodes_[target].entries.push_back(frame.entry);
    AdjustPath(path);

    // Handle overflow bottom-up.
    for (int idx = static_cast<int>(path.size()) - 1; idx >= 0; --idx) {
      const RNodeId node_id = path[idx];
      if (static_cast<int>(nodes_[node_id].entries.size()) <=
          options_.max_entries) {
        break;
      }
      const int32_t level = nodes_[node_id].level;
      if (node_id != root_ &&
          level < static_cast<int32_t>(reinserted_on_level.size()) &&
          !reinserted_on_level[level]) {
        // --- Forced reinsert (R* OverflowTreatment, first time per level).
        reinserted_on_level[level] = true;
        RTreeNode& node = nodes_[node_id];
        const Point center = NodeMbr(node_id).Center();
        std::vector<std::pair<double, size_t>> by_dist(node.entries.size());
        for (size_t i = 0; i < node.entries.size(); ++i) {
          by_dist[i] = {SquaredDistance(node.entries[i].mbr.Center(), center),
                        i};
        }
        std::sort(by_dist.begin(), by_dist.end());
        const int p = std::max(
            1, static_cast<int>(options_.reinsert_fraction *
                                static_cast<double>(node.entries.size())));
        // Remove the p farthest entries; reinsert closest-first
        // ("close reinsert").
        std::vector<bool> keep(node.entries.size(), true);
        for (size_t i = by_dist.size() - p; i < by_dist.size(); ++i) {
          keep[by_dist[i].second] = false;
        }
        std::vector<RTreeEntry> kept;
        kept.reserve(node.entries.size() - p);
        std::vector<RTreeEntry> removed;  // Farthest-last == pop closest...
        for (size_t i = 0; i < node.entries.size(); ++i) {
          if (keep[i]) kept.push_back(node.entries[i]);
        }
        // Push farthest first so the LIFO pops closest-first
        // ("close reinsert" of the R*-tree paper).
        for (size_t i = by_dist.size(); i-- > by_dist.size() - p;) {
          removed.push_back(node.entries[by_dist[i].second]);
        }
        node.entries = std::move(kept);
        AdjustPath(path);
        for (const RTreeEntry& r : removed) {
          stack.push_back(Frame{r, level});
        }
        break;  // Path may be restructured by the pending reinserts.
      }

      // --- Split.
      const RNodeId sibling = Split(node_id);
      if (node_id == root_) {
        const RNodeId new_root = NewNode(nodes_[node_id].level + 1);
        nodes_[new_root].entries.push_back(
            RTreeEntry{NodeMbr(node_id), node_id});
        nodes_[new_root].entries.push_back(
            RTreeEntry{NodeMbr(sibling), sibling});
        root_ = new_root;
        reinserted_on_level.resize(nodes_[root_].level + 1, false);
        break;
      }
      const RNodeId parent = path[idx - 1];
      // Refresh this node's slot and register the sibling.
      for (RTreeEntry& e : nodes_[parent].entries) {
        if (e.id == node_id) {
          e.mbr = NodeMbr(node_id);
          break;
        }
      }
      nodes_[parent].entries.push_back(RTreeEntry{NodeMbr(sibling), sibling});
      AdjustPath(path);  // Parent MBRs may have shifted.
    }
  }
}

RNodeId RStarTree::Split(RNodeId node_id) {
  RTreeNode& node = nodes_[node_id];
  std::vector<RTreeEntry> entries = std::move(node.entries);
  const int total = static_cast<int>(entries.size());
  const int m = min_entries();
  const int num_dists = total - 2 * m + 1;  // k = 1..(M-2m+2), total = M+1.
  GPSSN_CHECK(num_dists >= 1);

  // ChooseSplitAxis: minimize the margin sum over all distributions of both
  // sort orders per axis.
  int best_axis = 0;
  double best_margin = std::numeric_limits<double>::infinity();
  std::vector<RTreeEntry> best_sorted;
  for (int axis = 0; axis < 2; ++axis) {
    for (int by_upper = 0; by_upper < 2; ++by_upper) {
      std::vector<RTreeEntry> sorted = entries;
      std::sort(sorted.begin(), sorted.end(),
                [axis, by_upper](const RTreeEntry& a, const RTreeEntry& b) {
                  const double ka = axis == 0
                                        ? (by_upper ? a.mbr.max_x : a.mbr.min_x)
                                        : (by_upper ? a.mbr.max_y : a.mbr.min_y);
                  const double kb = axis == 0
                                        ? (by_upper ? b.mbr.max_x : b.mbr.min_x)
                                        : (by_upper ? b.mbr.max_y : b.mbr.min_y);
                  return ka < kb;
                });
      // Prefix/suffix MBRs for O(n) margin evaluation.
      std::vector<Rect> prefix(total), suffix(total);
      Rect acc;
      for (int i = 0; i < total; ++i) {
        acc.ExtendRect(sorted[i].mbr);
        prefix[i] = acc;
      }
      acc = Rect();
      for (int i = total - 1; i >= 0; --i) {
        acc.ExtendRect(sorted[i].mbr);
        suffix[i] = acc;
      }
      double margin_sum = 0.0;
      for (int k = 0; k < num_dists; ++k) {
        const int split_at = m + k;  // First group size.
        margin_sum +=
            prefix[split_at - 1].Margin() + suffix[split_at].Margin();
      }
      if (margin_sum < best_margin) {
        best_margin = margin_sum;
        best_axis = axis;
        best_sorted = std::move(sorted);
      }
    }
  }
  (void)best_axis;

  // ChooseSplitIndex: among the chosen axis's distributions, minimize
  // overlap, tie-break on combined area.
  std::vector<Rect> prefix(total), suffix(total);
  Rect acc;
  for (int i = 0; i < total; ++i) {
    acc.ExtendRect(best_sorted[i].mbr);
    prefix[i] = acc;
  }
  acc = Rect();
  for (int i = total - 1; i >= 0; --i) {
    acc.ExtendRect(best_sorted[i].mbr);
    suffix[i] = acc;
  }
  int best_split = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (int k = 0; k < num_dists; ++k) {
    const int split_at = m + k;
    const double overlap = prefix[split_at - 1].OverlapArea(suffix[split_at]);
    const double area = prefix[split_at - 1].Area() + suffix[split_at].Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = split_at;
    }
  }

  node.entries.assign(best_sorted.begin(), best_sorted.begin() + best_split);
  const RNodeId sibling = NewNode(node.level);
  nodes_[sibling].entries.assign(best_sorted.begin() + best_split,
                                 best_sorted.end());
  return sibling;
}

void RStarTree::RangeQuery(const Rect& query, std::vector<int32_t>* out) const {
  std::vector<RNodeId> stack = {root_};
  while (!stack.empty()) {
    const RNodeId id = stack.back();
    stack.pop_back();
    const RTreeNode& node = nodes_[id];
    for (const RTreeEntry& e : node.entries) {
      if (!query.Intersects(e.mbr)) continue;
      if (node.is_leaf()) {
        out->push_back(e.id);
      } else {
        stack.push_back(e.id);
      }
    }
  }
}

void RStarTree::CircleQuery(const Point& center, double radius,
                            std::vector<int32_t>* out) const {
  const Rect box{center.x - radius, center.y - radius, center.x + radius,
                 center.y + radius};
  std::vector<RNodeId> stack = {root_};
  while (!stack.empty()) {
    const RNodeId id = stack.back();
    stack.pop_back();
    const RTreeNode& node = nodes_[id];
    for (const RTreeEntry& e : node.entries) {
      if (!box.Intersects(e.mbr)) continue;
      if (node.is_leaf()) {
        if (EuclideanDistance(center, e.mbr.Center()) <= radius) {
          out->push_back(e.id);
        }
      } else if (MinDist(center, e.mbr) <= radius) {
        stack.push_back(e.id);
      }
    }
  }
}

bool RStarTree::CheckInvariants() const {
  struct Item {
    RNodeId id;
    bool is_root;
  };
  std::vector<Item> stack = {{root_, true}};
  int leaf_objects = 0;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const RTreeNode& node = nodes_[item.id];
    const int count = static_cast<int>(node.entries.size());
    if (count > options_.max_entries) return false;
    if (!item.is_root && count < min_entries()) return false;
    if (item.is_root && !node.is_leaf() && count < 2) return false;
    if (node.is_leaf()) {
      leaf_objects += count;
      continue;
    }
    for (const RTreeEntry& e : node.entries) {
      const RTreeNode& child = nodes_[e.id];
      if (child.level != node.level - 1) return false;
      if (!(NodeMbr(e.id) == e.mbr)) return false;
      stack.push_back({e.id, false});
    }
  }
  return leaf_objects == size_;
}

}  // namespace gpssn
