// Copyright 2026 The gpssn Authors.
//
// Hop-distance BFS on the social network: dist_SN(u, v) is the number of
// friendship hops on the shortest path (Lemma 4 and Eq. 19 operate on it).
// The engine owns a generation-stamped label arena for allocation-free reuse.

#ifndef GPSSN_SOCIALNET_BFS_H_
#define GPSSN_SOCIALNET_BFS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "socialnet/social_graph.h"

namespace gpssn {

inline constexpr int kUnreachableHops = std::numeric_limits<int>::max();

/// Reusable BFS arena bound to one social network. Not thread-safe.
class BfsEngine {
 public:
  explicit BfsEngine(const SocialNetwork* graph);

  /// BFS from `source`, exploring only users within `max_hops` hops
  /// (inclusive). After the call Hops(u) is exact for all users within the
  /// bound and kUnreachableHops otherwise.
  void Run(UserId source, int max_hops = std::numeric_limits<int>::max());

  /// Hop label from the last run.
  int Hops(UserId u) const {
    return stamp_[u] == generation_ ? hops_[u] : kUnreachableHops;
  }

  /// Users visited by the last run, in BFS order (source first).
  const std::vector<UserId>& Visited() const { return visited_; }

  /// Exact pairwise hop distance with early exit.
  int Distance(UserId a, UserId b,
               int max_hops = std::numeric_limits<int>::max());

 private:
  const SocialNetwork* graph_;
  std::vector<int> hops_;
  std::vector<uint32_t> stamp_;
  uint32_t generation_ = 0;
  std::vector<UserId> visited_;  // Doubles as the BFS queue.
};

}  // namespace gpssn

#endif  // GPSSN_SOCIALNET_BFS_H_
