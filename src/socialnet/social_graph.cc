#include "socialnet/social_graph.h"

#include <algorithm>

#include "common/macros.h"

namespace gpssn {

bool SocialNetwork::AreFriends(UserId a, UserId b) const {
  const auto friends = Friends(a);
  return std::binary_search(friends.begin(), friends.end(), b);
}

SocialNetworkBuilder::SocialNetworkBuilder(int num_topics)
    : num_topics_(num_topics) {
  GPSSN_CHECK(num_topics >= 1);
}

Result<UserId> SocialNetworkBuilder::AddUser(std::span<const double> interests) {
  if (static_cast<int>(interests.size()) != num_topics_) {
    return Status::InvalidArgument("interest vector has wrong dimensionality");
  }
  for (double p : interests) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("interest probability outside [0, 1]");
    }
  }
  interests_.insert(interests_.end(), interests.begin(), interests.end());
  adjacency_.emplace_back();
  return static_cast<UserId>(adjacency_.size() - 1);
}

Status SocialNetworkBuilder::AddFriendship(UserId a, UserId b) {
  if (a < 0 || b < 0 || a >= num_users() || b >= num_users()) {
    return Status::InvalidArgument("friendship endpoint out of range");
  }
  if (a == b) return Status::InvalidArgument("self-friendship");
  if (HasFriendship(a, b)) return Status::AlreadyExists("duplicate friendship");
  auto insert_sorted = [](std::vector<UserId>* v, UserId x) {
    v->insert(std::upper_bound(v->begin(), v->end(), x), x);
  };
  insert_sorted(&adjacency_[a], b);
  insert_sorted(&adjacency_[b], a);
  return Status::OK();
}

bool SocialNetworkBuilder::HasFriendship(UserId a, UserId b) const {
  const auto& adj = adjacency_[a];
  return std::binary_search(adj.begin(), adj.end(), b);
}

Status SocialNetwork::SetInterests(UserId u, std::span<const double> interests) {
  if (u < 0 || u >= num_users()) {
    return Status::InvalidArgument("user out of range");
  }
  if (static_cast<int>(interests.size()) != num_topics_) {
    return Status::InvalidArgument("interest vector has wrong dimensionality");
  }
  for (double p : interests) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("interest probability outside [0, 1]");
    }
  }
  std::copy(interests.begin(), interests.end(),
            interests_.begin() + static_cast<size_t>(u) * num_topics_);
  ++interests_version_;
  return Status::OK();
}

SocialNetwork WithInterests(const SocialNetwork& g,
                            std::vector<double> row_major_interests,
                            int num_topics) {
  GPSSN_CHECK(num_topics >= 1);
  GPSSN_CHECK(row_major_interests.size() ==
              static_cast<size_t>(g.num_users()) * num_topics);
  SocialNetwork out = g;
  out.num_topics_ = num_topics;
  out.interests_ = std::move(row_major_interests);
  ++out.interests_version_;
  return out;
}

SocialNetwork SocialNetworkBuilder::Build() {
  SocialNetwork g;
  g.num_topics_ = num_topics_;
  g.interests_ = std::move(interests_);
  const int m = num_users();
  g.offsets_.assign(m + 1, 0);
  for (int u = 0; u < m; ++u) {
    g.offsets_[u + 1] = g.offsets_[u] + static_cast<int>(adjacency_[u].size());
  }
  g.adjacency_.reserve(g.offsets_[m]);
  for (int u = 0; u < m; ++u) {
    g.adjacency_.insert(g.adjacency_.end(), adjacency_[u].begin(),
                        adjacency_[u].end());
  }
  *this = SocialNetworkBuilder(num_topics_);
  return g;
}

}  // namespace gpssn
