// Copyright 2026 The gpssn Authors.
//
// Multilevel graph partitioner for the social-network index I_S
// (Section 4.1 partitions G_s "via standard graph partitioning methods such
// as [METIS]"). This is a from-scratch implementation of the same algorithm
// family: heavy-edge-matching coarsening, greedy region-growing initial
// partition on the coarsest graph, and boundary (Fiduccia–Mattheyses style)
// refinement during uncoarsening.

#ifndef GPSSN_SOCIALNET_PARTITIONER_H_
#define GPSSN_SOCIALNET_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "socialnet/social_graph.h"

namespace gpssn {

struct PartitionOptions {
  /// Desired number of users per cell (leaf node of I_S). The number of
  /// cells is ceil(m / target_cell_size).
  int target_cell_size = 64;
  /// Allowed imbalance: a cell may hold up to (1 + balance_slack) times the
  /// average weight.
  double balance_slack = 0.30;
  /// Boundary-refinement passes per uncoarsening level.
  int refinement_passes = 3;
  /// Coarsening stops once the graph has at most this many times the number
  /// of cells.
  int coarsen_stop_factor = 4;
  uint64_t seed = 1;
};

struct PartitionResult {
  /// cell[u] in [0, num_cells) for every user u.
  std::vector<int> cell;
  int num_cells = 0;
  /// Number of friendship edges crossing cells (lower = better locality).
  int64_t cut_edges = 0;
};

/// Partitions the social network into balanced, low-cut cells.
PartitionResult PartitionSocialNetwork(const SocialNetwork& graph,
                                       const PartitionOptions& options);

/// Computes the edge cut of an assignment (for tests / quality reporting).
int64_t ComputeEdgeCut(const SocialNetwork& graph,
                       const std::vector<int>& cell);

}  // namespace gpssn

#endif  // GPSSN_SOCIALNET_PARTITIONER_H_
