#include "socialnet/bfs.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace gpssn {

BfsEngine::BfsEngine(const SocialNetwork* graph) : graph_(graph) {
  GPSSN_CHECK(graph != nullptr);
  hops_.resize(graph->num_users(), 0);
  stamp_.resize(graph->num_users(), 0);
}

void BfsEngine::Run(UserId source, int max_hops) {
  GPSSN_CHECK(source >= 0 && source < graph_->num_users());
  ++generation_;
  if (generation_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    generation_ = 1;
  }
  visited_.clear();
  hops_[source] = 0;
  stamp_[source] = generation_;
  visited_.push_back(source);
  for (size_t head = 0; head < visited_.size(); ++head) {
    const UserId u = visited_[head];
    const int next_hops = hops_[u] + 1;
    if (next_hops > max_hops) break;  // BFS order: all later labels >= hops_[u].
    for (UserId v : graph_->Friends(u)) {
      if (stamp_[v] == generation_) continue;
      stamp_[v] = generation_;
      hops_[v] = next_hops;
      visited_.push_back(v);
    }
  }
}

int BfsEngine::Distance(UserId a, UserId b, int max_hops) {
  if (a == b) return 0;
  Run(a, max_hops);
  return Hops(b);
}

}  // namespace gpssn
