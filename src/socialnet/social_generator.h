// Copyright 2026 The gpssn Authors.
//
// Synthetic social-network generators (Section 6.1): m users, each connected
// to deg(G_s) random friends where the degree follows a Uniform or Zipf
// distribution within [1, 10], plus a power-law-degree generator matched to
// the real Brightkite/Gowalla statistics (Table 2).
//
// Both generators support COMMUNITY STRUCTURE with interest homophily:
// users belong to latent communities, edges form preferentially inside the
// community, and user topic choices are biased toward a per-community topic
// profile. Real location-based social networks exhibit exactly this
// correlation, and it is what gives the paper's social index I_S its
// index-level pruning power (interest lb/ub boxes of partition cells are
// only tight when friends share interests). Setting community_size = 0
// disables the structure and yields the paper-literal fully random recipe.

#ifndef GPSSN_SOCIALNET_SOCIAL_GENERATOR_H_
#define GPSSN_SOCIALNET_SOCIAL_GENERATOR_H_

#include "common/rng.h"
#include "socialnet/social_graph.h"

namespace gpssn {

enum class Distribution {
  kUniform,
  kZipf,
};

/// How user interest vectors are drawn.
struct InterestModel {
  /// Sparse (default): each user cares about [topics_min, topics_max]
  /// topics with weights in [weight_min, 1]; topic choice follows the
  /// popularity distribution. Dense: every entry drawn from [0, 1]
  /// (the paper's literal synthetic recipe; scores concentrate near d/4).
  bool sparse = true;
  int topics_min = 2;
  int topics_max = 4;
  double weight_min = 0.2;
  /// Zipf exponent of topic popularity (sparse mode).
  double topic_zipf_exponent = 0.25;
};

struct SocialGenOptions {
  int num_users = 10000;
  int num_topics = 50;
  /// Per-user target degree drawn from [degree_min, degree_max] with this
  /// distribution (paper: Uniform/Zipf within [1, 10]).
  Distribution degree_distribution = Distribution::kUniform;
  int degree_min = 1;
  int degree_max = 10;
  /// Zipf exponent for kZipf degree / dense-interest draws.
  double zipf_exponent = 1.0;
  /// Interest vectors: sparse homophilous (default) or paper-literal dense.
  Distribution interest_distribution = Distribution::kUniform;
  InterestModel interests;
  /// Community structure; 0 disables it.
  int community_size = 150;
  double intra_community_edge_fraction = 0.7;
  int community_profile_topics = 6;
  /// Probability that a sparse topic pick comes from the community profile.
  double profile_affinity = 0.92;
  /// Ensure the friendship graph is connected (adds bridging edges).
  bool ensure_connected = true;
  uint64_t seed = 1;
};

/// Generates a social network per the paper's synthetic recipe (plus the
/// homophily extension above). If `community_of` is non-null it receives
/// each user's community id (all zero when community_size == 0).
SocialNetwork GenerateSocialNetwork(const SocialGenOptions& options,
                                    std::vector<int>* community_of = nullptr);

struct PowerLawSocialOptions {
  int num_users = 40000;
  int num_topics = 50;
  /// Target AVERAGE degree (Table 2: Brightkite 10.3, Gowalla 32.1).
  double avg_degree = 10.3;
  /// Power-law exponent of the degree sequence (2 < a < 3 for real social
  /// networks).
  double power_law_exponent = 2.5;
  /// Community structure (same semantics as SocialGenOptions).
  int community_size = 200;
  double intra_community_edge_fraction = 0.7;
  bool ensure_connected = true;
  uint64_t seed = 1;
};

/// Power-law-degree generator (stub matching with community mixing) used by
/// the Bri+Cal / Gow+Col real-data substitutes. Interest vectors are NOT
/// assigned here (all zeros); the spatial-social dataset builder derives
/// them from simulated check-in histories. If `community_of` is non-null it
/// receives each user's community id.
SocialNetwork GeneratePowerLawSocialNetwork(
    const PowerLawSocialOptions& options,
    std::vector<int>* community_of = nullptr);

/// Draws a dense interest vector (paper-literal mode): d entries in [0, 1]
/// with the given distribution.
std::vector<double> DrawDenseInterestVector(int num_topics, Distribution dist,
                                            double zipf_exponent, Rng* rng);

}  // namespace gpssn

#endif  // GPSSN_SOCIALNET_SOCIAL_GENERATOR_H_
