// Copyright 2026 The gpssn Authors.
//
// The social network G_s (Definition 3): users as vertices, friendships as
// edges, and a d-dimensional interest (topic) probability vector u_j.w per
// user. Immutable after building; CSR adjacency.

#ifndef GPSSN_SOCIALNET_SOCIAL_GRAPH_H_
#define GPSSN_SOCIALNET_SOCIAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "roadnet/types.h"

namespace gpssn {

/// Immutable social network. Construct with SocialNetworkBuilder.
class SocialNetwork {
 public:
  SocialNetwork() = default;

  int num_users() const { return static_cast<int>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  int num_friendships() const { return static_cast<int>(adjacency_.size() / 2); }
  int num_topics() const { return num_topics_; }

  /// Friends of user `u`.
  std::span<const UserId> Friends(UserId u) const {
    return std::span<const UserId>(adjacency_.data() + offsets_[u],
                                   offsets_[u + 1] - offsets_[u]);
  }

  int Degree(UserId u) const { return offsets_[u + 1] - offsets_[u]; }

  /// Average degree (the deg(G_s) statistic of Table 2).
  double AverageDegree() const {
    return num_users() == 0 ? 0.0
                            : 2.0 * num_friendships() / static_cast<double>(num_users());
  }

  bool AreFriends(UserId a, UserId b) const;

  /// Interest vector u_j.w: d probabilities in [0, 1].
  std::span<const double> Interests(UserId u) const {
    return std::span<const double>(interests_.data() +
                                       static_cast<size_t>(u) * num_topics_,
                                   num_topics_);
  }

  /// Dynamic maintenance: replaces one user's interest vector (profile
  /// drift as new check-ins accumulate). The friendship topology stays
  /// immutable. Indexes built over this network must be informed (see
  /// SocialIndex::UpdateUserInterests).
  Status SetInterests(UserId u, std::span<const double> interests);

  /// Monotone counter bumped by every successful SetInterests (and by
  /// WithInterests). Consumers holding derived interest state — e.g. the
  /// per-query SocialScratch pairwise-score memo — record the version they
  /// were built from and treat a mismatch as staleness.
  uint64_t interests_version() const { return interests_version_; }

 private:
  friend class SocialNetworkBuilder;
  friend SocialNetwork WithInterests(const SocialNetwork& g,
                                     std::vector<double> row_major_interests,
                                     int num_topics);

  int num_topics_ = 0;
  std::vector<int> offsets_;
  std::vector<UserId> adjacency_;       // Sorted within each user's range.
  std::vector<double> interests_;       // Row-major m × d.
  uint64_t interests_version_ = 0;      // Bumped on interest mutation.
};

/// Accumulates users/friendships, then finalizes the CSR representation.
class SocialNetworkBuilder {
 public:
  /// `num_topics` is the dimensionality d of interest vectors.
  explicit SocialNetworkBuilder(int num_topics);

  /// Adds a user with the given interest vector (must have d entries, each
  /// in [0, 1]). Returns the new user id.
  Result<UserId> AddUser(std::span<const double> interests);

  /// Adds an undirected friendship edge. Self-loops and duplicates are
  /// rejected.
  Status AddFriendship(UserId a, UserId b);

  bool HasFriendship(UserId a, UserId b) const;

  int num_users() const { return static_cast<int>(adjacency_.size()); }

  SocialNetwork Build();

 private:
  int num_topics_;
  std::vector<double> interests_;
  std::vector<std::vector<UserId>> adjacency_;  // Sorted per user.
};

/// Returns a copy of `g` whose interest vectors are replaced by
/// `row_major_interests` (m × num_topics, row-major). Used by dataset
/// builders that derive interests from simulated check-in histories after
/// the friendship topology exists.
SocialNetwork WithInterests(const SocialNetwork& g,
                            std::vector<double> row_major_interests,
                            int num_topics);

}  // namespace gpssn

#endif  // GPSSN_SOCIALNET_SOCIAL_GRAPH_H_
