// Copyright 2026 The gpssn Authors.
//
// Social-network pivot hop tables (Sections 3.2 and 4.1): l users are chosen
// as pivots sp_1..sp_l; exact hop distances dist_SN(u, sp_k) are precomputed
// by one BFS per pivot. The triangle inequality then yields the lower bound
// lb_dist_SN(u_k, u_q) = max_k |dist_SN(u_k, sp_k) − dist_SN(sp_k, u_q)|
// used by the social-network distance pruning (Lemma 4, Eq. 19).

#ifndef GPSSN_SOCIALNET_SOCIAL_PIVOTS_H_
#define GPSSN_SOCIALNET_SOCIAL_PIVOTS_H_

#include <vector>

#include "socialnet/bfs.h"
#include "socialnet/social_graph.h"

namespace gpssn {

/// Precomputed exact hop distances from every user to each pivot.
/// Unreachable pairs store kUnreachableHops.
class SocialPivotTable {
 public:
  SocialPivotTable() = default;

  /// Runs one full BFS per pivot.
  SocialPivotTable(const SocialNetwork& graph, std::vector<UserId> pivots);

  int num_pivots() const { return static_cast<int>(pivots_.size()); }
  const std::vector<UserId>& pivots() const { return pivots_; }

  /// Exact dist_SN(u, sp_k).
  int UserToPivot(UserId u, int k) const { return tables_[k][u]; }

  /// Triangle-inequality lower bound of dist_SN(a, b). Pivots unreachable
  /// from either side contribute nothing. When some pivot reaches exactly
  /// one of the two users, the pair is disconnected and the bound is
  /// kUnreachableHops.
  int LowerBound(UserId a, UserId b) const;

 private:
  std::vector<UserId> pivots_;
  // tables_[k][u] = hop distance from u to pivots_[k].
  std::vector<std::vector<int>> tables_;
};

/// Picks `l` distinct random users as pivots (baseline for Algorithm 1).
std::vector<UserId> RandomSocialPivots(const SocialNetwork& graph, int l,
                                       uint64_t seed);

}  // namespace gpssn

#endif  // GPSSN_SOCIALNET_SOCIAL_PIVOTS_H_
