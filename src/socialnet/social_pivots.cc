#include "socialnet/social_pivots.h"

#include <algorithm>
#include <cstdlib>

#include "common/macros.h"
#include "common/rng.h"

namespace gpssn {

SocialPivotTable::SocialPivotTable(const SocialNetwork& graph,
                                   std::vector<UserId> pivots)
    : pivots_(std::move(pivots)) {
  BfsEngine engine(&graph);
  tables_.resize(pivots_.size());
  for (size_t k = 0; k < pivots_.size(); ++k) {
    GPSSN_CHECK(pivots_[k] >= 0 && pivots_[k] < graph.num_users());
    engine.Run(pivots_[k]);
    auto& table = tables_[k];
    table.resize(graph.num_users());
    for (UserId u = 0; u < graph.num_users(); ++u) {
      table[u] = engine.Hops(u);
    }
  }
}

int SocialPivotTable::LowerBound(UserId a, UserId b) const {
  if (a == b) return 0;
  int best = 0;
  for (size_t k = 0; k < pivots_.size(); ++k) {
    const int da = tables_[k][a];
    const int db = tables_[k][b];
    const bool ra = da != kUnreachableHops;
    const bool rb = db != kUnreachableHops;
    if (ra != rb) return kUnreachableHops;  // Different components.
    if (!ra) continue;
    best = std::max(best, std::abs(da - db));
  }
  return best;
}

std::vector<UserId> RandomSocialPivots(const SocialNetwork& graph, int l,
                                       uint64_t seed) {
  GPSSN_CHECK(l >= 1 && l <= graph.num_users());
  Rng rng(seed);
  std::vector<UserId> out;
  for (size_t idx : rng.SampleWithoutReplacement(graph.num_users(), l)) {
    out.push_back(static_cast<UserId>(idx));
  }
  return out;
}

}  // namespace gpssn
