#include "socialnet/partitioner.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/macros.h"
#include "common/rng.h"

namespace gpssn {

namespace {

// Weighted working graph used across coarsening levels.
struct LevelGraph {
  // CSR adjacency with edge weights.
  std::vector<int> offsets;
  std::vector<int> neighbors;
  std::vector<int64_t> edge_weights;
  std::vector<int64_t> vertex_weights;
  // Mapping of this level's vertices down to the next-finer level is kept
  // by the caller (coarse id per fine vertex).

  int num_vertices() const {
    return static_cast<int>(vertex_weights.size());
  }
};

LevelGraph FromSocialNetwork(const SocialNetwork& g) {
  LevelGraph lg;
  const int m = g.num_users();
  lg.vertex_weights.assign(m, 1);
  lg.offsets.assign(m + 1, 0);
  for (UserId u = 0; u < m; ++u) {
    lg.offsets[u + 1] = lg.offsets[u] + g.Degree(u);
  }
  lg.neighbors.resize(lg.offsets[m]);
  lg.edge_weights.assign(lg.offsets[m], 1);
  for (UserId u = 0; u < m; ++u) {
    int pos = lg.offsets[u];
    for (UserId v : g.Friends(u)) lg.neighbors[pos++] = v;
  }
  return lg;
}

// Heavy-edge matching: visit vertices in random order; match each unmatched
// vertex with its unmatched neighbor of maximum edge weight.
std::vector<int> HeavyEdgeMatching(const LevelGraph& g, Rng* rng,
                                   int* num_coarse) {
  const int n = g.num_vertices();
  std::vector<int> match(n, -1);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  for (int u : order) {
    if (match[u] >= 0) continue;
    int best = -1;
    int64_t best_w = -1;
    for (int i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      const int v = g.neighbors[i];
      if (v == u || match[v] >= 0) continue;
      if (g.edge_weights[i] > best_w) {
        best_w = g.edge_weights[i];
        best = v;
      }
    }
    if (best >= 0) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;  // Stays single.
    }
  }
  // Assign coarse ids: one per matched pair / singleton.
  std::vector<int> coarse(n, -1);
  int next = 0;
  for (int u = 0; u < n; ++u) {
    if (coarse[u] >= 0) continue;
    coarse[u] = next;
    if (match[u] != u) coarse[match[u]] = next;
    ++next;
  }
  *num_coarse = next;
  return coarse;
}

// Contracts `g` along `coarse` (fine id -> coarse id).
LevelGraph Contract(const LevelGraph& g, const std::vector<int>& coarse,
                    int num_coarse) {
  LevelGraph cg;
  cg.vertex_weights.assign(num_coarse, 0);
  const int n = g.num_vertices();
  for (int u = 0; u < n; ++u) cg.vertex_weights[coarse[u]] += g.vertex_weights[u];

  // Accumulate coarse adjacency via per-coarse-vertex hash maps.
  std::vector<std::unordered_map<int, int64_t>> acc(num_coarse);
  for (int u = 0; u < n; ++u) {
    const int cu = coarse[u];
    for (int i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      const int cv = coarse[g.neighbors[i]];
      if (cu == cv) continue;  // Internal edge disappears.
      acc[cu][cv] += g.edge_weights[i];
    }
  }
  cg.offsets.assign(num_coarse + 1, 0);
  for (int c = 0; c < num_coarse; ++c) {
    cg.offsets[c + 1] = cg.offsets[c] + static_cast<int>(acc[c].size());
  }
  cg.neighbors.resize(cg.offsets[num_coarse]);
  cg.edge_weights.resize(cg.offsets[num_coarse]);
  for (int c = 0; c < num_coarse; ++c) {
    int pos = cg.offsets[c];
    for (const auto& [v, w] : acc[c]) {
      cg.neighbors[pos] = v;
      cg.edge_weights[pos] = w;
      ++pos;
    }
  }
  return cg;
}

// Greedy region growing into k cells balanced by vertex weight.
std::vector<int> InitialPartition(const LevelGraph& g, int k, Rng* rng) {
  const int n = g.num_vertices();
  const int64_t total =
      std::accumulate(g.vertex_weights.begin(), g.vertex_weights.end(),
                      static_cast<int64_t>(0));
  const int64_t target = (total + k - 1) / k;
  std::vector<int> cell(n, -1);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  int current = 0;
  int64_t current_weight = 0;
  std::vector<int> frontier;
  size_t seed_cursor = 0;
  auto next_seed = [&]() -> int {
    while (seed_cursor < order.size() && cell[order[seed_cursor]] >= 0) {
      ++seed_cursor;
    }
    return seed_cursor < order.size() ? order[seed_cursor] : -1;
  };
  int assigned = 0;
  while (assigned < n) {
    if (frontier.empty()) {
      const int seed = next_seed();
      if (seed < 0) break;
      cell[seed] = current;
      current_weight += g.vertex_weights[seed];
      ++assigned;
      frontier.push_back(seed);
    }
    // BFS growth.
    for (size_t head = 0; head < frontier.size() && current_weight < target;
         ++head) {
      const int u = frontier[head];
      for (int i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
        const int v = g.neighbors[i];
        if (cell[v] >= 0) continue;
        cell[v] = current;
        current_weight += g.vertex_weights[v];
        ++assigned;
        frontier.push_back(v);
        if (current_weight >= target) break;
      }
    }
    if (current_weight >= target || frontier.empty() ||
        assigned == n) {
      // Close this cell and open the next (unless everything is placed).
      if (assigned < n && current < k - 1) {
        ++current;
        current_weight = 0;
      }
      frontier.clear();
    } else {
      // Frontier exhausted by inner loop but weight not reached: grow from a
      // fresh seed into the SAME cell (disconnected remainder).
      frontier.clear();
    }
  }
  // Safety: anything left (shouldn't happen) goes to the last cell.
  for (int u = 0; u < n; ++u) {
    if (cell[u] < 0) cell[u] = k - 1;
  }
  return cell;
}

// One boundary-refinement sweep: move vertices to the adjacent cell with the
// highest cut-gain, respecting the balance ceiling. Returns #moves.
int RefinePass(const LevelGraph& g, int k, int64_t max_cell_weight,
               std::vector<int>* cell, std::vector<int64_t>* cell_weight) {
  const int n = g.num_vertices();
  int moves = 0;
  std::unordered_map<int, int64_t> link;  // cell -> edge weight to it.
  for (int u = 0; u < n; ++u) {
    const int cu = (*cell)[u];
    link.clear();
    for (int i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      link[(*cell)[g.neighbors[i]]] += g.edge_weights[i];
    }
    const int64_t internal = link.count(cu) ? link[cu] : 0;
    int best_cell = cu;
    int64_t best_gain = 0;
    for (const auto& [c, w] : link) {
      if (c == cu) continue;
      const int64_t gain = w - internal;
      if (gain > best_gain &&
          (*cell_weight)[c] + g.vertex_weights[u] <= max_cell_weight) {
        best_gain = gain;
        best_cell = c;
      }
    }
    if (best_cell != cu) {
      (*cell)[u] = best_cell;
      (*cell_weight)[cu] -= g.vertex_weights[u];
      (*cell_weight)[best_cell] += g.vertex_weights[u];
      ++moves;
    }
  }
  (void)k;
  return moves;
}

}  // namespace

PartitionResult PartitionSocialNetwork(const SocialNetwork& graph,
                                       const PartitionOptions& options) {
  GPSSN_CHECK(options.target_cell_size >= 1);
  const int m = graph.num_users();
  PartitionResult result;
  if (m == 0) return result;
  const int k = std::max(1, (m + options.target_cell_size - 1) /
                                options.target_cell_size);
  result.num_cells = k;
  if (k == 1) {
    result.cell.assign(m, 0);
    result.cut_edges = 0;
    return result;
  }

  Rng rng(options.seed);

  // --- Coarsening phase.
  std::vector<LevelGraph> levels;
  std::vector<std::vector<int>> projections;  // fine -> coarse per level.
  levels.push_back(FromSocialNetwork(graph));
  while (levels.back().num_vertices() > options.coarsen_stop_factor * k) {
    int num_coarse = 0;
    std::vector<int> coarse = HeavyEdgeMatching(levels.back(), &rng, &num_coarse);
    if (num_coarse >= levels.back().num_vertices() * 9 / 10) break;  // Stalled.
    levels.push_back(Contract(levels.back(), coarse, num_coarse));
    projections.push_back(std::move(coarse));
  }

  // --- Initial partition on the coarsest level.
  std::vector<int> cell = InitialPartition(levels.back(), k, &rng);

  // --- Uncoarsening with refinement.
  const int64_t total_weight = m;
  const int64_t max_cell_weight = static_cast<int64_t>(
      (1.0 + options.balance_slack) * total_weight / k) + 1;
  for (int level = static_cast<int>(levels.size()) - 1; level >= 0; --level) {
    const LevelGraph& g = levels[level];
    std::vector<int64_t> cell_weight(k, 0);
    for (int u = 0; u < g.num_vertices(); ++u) {
      cell_weight[cell[u]] += g.vertex_weights[u];
    }
    for (int pass = 0; pass < options.refinement_passes; ++pass) {
      if (RefinePass(g, k, max_cell_weight, &cell, &cell_weight) == 0) break;
    }
    if (level > 0) {
      // Project to the finer level.
      const std::vector<int>& proj = projections[level - 1];
      std::vector<int> fine_cell(proj.size());
      for (size_t u = 0; u < proj.size(); ++u) fine_cell[u] = cell[proj[u]];
      cell = std::move(fine_cell);
    }
  }

  result.cell = std::move(cell);
  result.cut_edges = ComputeEdgeCut(graph, result.cell);
  return result;
}

int64_t ComputeEdgeCut(const SocialNetwork& graph,
                       const std::vector<int>& cell) {
  int64_t cut = 0;
  for (UserId u = 0; u < graph.num_users(); ++u) {
    for (UserId v : graph.Friends(u)) {
      if (u < v && cell[u] != cell[v]) ++cut;
    }
  }
  return cut;
}

}  // namespace gpssn
