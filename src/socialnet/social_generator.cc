#include "socialnet/social_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/macros.h"

namespace gpssn {

namespace {

// Connects a built adjacency list into one component by wiring a random
// member of each extra component to a random member of another one.
void EnsureConnected(std::vector<std::vector<UserId>>* adj, Rng* rng) {
  const int m = static_cast<int>(adj->size());
  if (m == 0) return;
  std::vector<int> component(m, -1);
  std::vector<UserId> queue;
  int num_components = 0;
  for (UserId start = 0; start < m; ++start) {
    if (component[start] >= 0) continue;
    const int c = num_components++;
    component[start] = c;
    queue.clear();
    queue.push_back(start);
    for (size_t head = 0; head < queue.size(); ++head) {
      for (UserId v : (*adj)[queue[head]]) {
        if (component[v] < 0) {
          component[v] = c;
          queue.push_back(v);
        }
      }
    }
  }
  if (num_components <= 1) return;
  std::vector<UserId> rep(num_components, kInvalidUser);
  for (UserId u = 0; u < m; ++u) {
    if (rep[component[u]] == kInvalidUser) rep[component[u]] = u;
  }
  auto insert_unique = [](std::vector<UserId>* v, UserId x) {
    auto it = std::lower_bound(v->begin(), v->end(), x);
    if (it == v->end() || *it != x) v->insert(it, x);
  };
  for (int c = 1; c < num_components; ++c) {
    UserId a = rep[c];
    UserId b;
    do {
      b = static_cast<UserId>(rng->NextBounded(m));
    } while (component[b] == c);
    insert_unique(&(*adj)[a], b);
    insert_unique(&(*adj)[b], a);
  }
}

SocialNetwork BuildFromAdjacency(
    int num_topics, const std::vector<std::vector<double>>& interests,
    std::vector<std::vector<UserId>>* adj) {
  SocialNetworkBuilder builder(num_topics);
  for (const auto& w : interests) {
    GPSSN_CHECK(builder.AddUser(w).ok());
  }
  const int m = static_cast<int>(adj->size());
  for (UserId a = 0; a < m; ++a) {
    for (UserId b : (*adj)[a]) {
      if (a < b) GPSSN_CHECK(builder.AddFriendship(a, b).ok());
    }
  }
  return builder.Build();
}

// Assigns users to communities of roughly `community_size` members, in
// random order so community ids carry no information.
std::vector<int> AssignCommunities(int m, int community_size, Rng* rng) {
  if (community_size <= 0) return std::vector<int>(m, 0);
  const int num_communities =
      std::max(1, (m + community_size - 1) / community_size);
  std::vector<int> community(m);
  for (int u = 0; u < m; ++u) community[u] = u % num_communities;
  rng->Shuffle(&community);
  return community;
}

// Members per community.
std::vector<std::vector<UserId>> CommunityMembers(
    const std::vector<int>& community) {
  int num = 0;
  for (int c : community) num = std::max(num, c + 1);
  std::vector<std::vector<UserId>> members(num);
  for (UserId u = 0; u < static_cast<int>(community.size()); ++u) {
    members[community[u]].push_back(u);
  }
  return members;
}

// Per-community topic profiles: `profile_topics` topics drawn by Zipf
// popularity (popular topics recur across communities — that is what makes
// cross-community groups still possible).
std::vector<std::vector<KeywordId>> CommunityProfiles(
    int num_communities, int num_topics, int profile_topics,
    double topic_zipf, Rng* rng) {
  ZipfSampler sampler(num_topics, topic_zipf);
  std::vector<std::vector<KeywordId>> profiles(num_communities);
  for (auto& profile : profiles) {
    int guard = 0;
    while (static_cast<int>(profile.size()) <
               std::min(profile_topics, num_topics) &&
           guard++ < 40 * profile_topics) {
      const KeywordId t = static_cast<KeywordId>(sampler.Sample(rng));
      if (std::find(profile.begin(), profile.end(), t) == profile.end()) {
        profile.push_back(t);
      }
    }
  }
  return profiles;
}

// Sparse homophilous interest vector: k topics, mostly from the community
// profile, weights in [weight_min, 1].
std::vector<double> DrawSparseInterestVector(
    int num_topics, const InterestModel& model,
    const std::vector<KeywordId>& profile, double profile_affinity,
    const ZipfSampler& topic_sampler, Rng* rng) {
  std::vector<double> w(num_topics, 0.0);
  const int k = static_cast<int>(
      rng->UniformInt(model.topics_min,
                      std::max(model.topics_min, model.topics_max)));
  int placed = 0, guard = 0;
  while (placed < k && guard++ < 40 * k) {
    KeywordId topic;
    if (!profile.empty() && rng->UniformDouble() < profile_affinity) {
      topic = profile[rng->NextBounded(profile.size())];
    } else {
      topic = static_cast<KeywordId>(topic_sampler.Sample(rng));
    }
    if (w[topic] > 0.0) continue;
    w[topic] = rng->UniformDouble(model.weight_min, 1.0);
    ++placed;
  }
  return w;
}

}  // namespace

std::vector<double> DrawDenseInterestVector(int num_topics, Distribution dist,
                                            double zipf_exponent, Rng* rng) {
  std::vector<double> w(num_topics);
  if (dist == Distribution::kUniform) {
    for (double& p : w) p = rng->UniformDouble();
    return w;
  }
  static constexpr int kLevels = 11;
  ZipfSampler sampler(kLevels, zipf_exponent);
  for (double& p : w) {
    const size_t rank = sampler.Sample(rng);
    p = 1.0 - static_cast<double>(rank) / (kLevels - 1);
  }
  return w;
}

SocialNetwork GenerateSocialNetwork(const SocialGenOptions& options,
                                    std::vector<int>* community_of) {
  GPSSN_CHECK(options.num_users >= 2);
  GPSSN_CHECK(options.degree_min >= 0 &&
              options.degree_min <= options.degree_max);
  Rng rng(options.seed);
  const int m = options.num_users;
  const int d = options.num_topics;

  const std::vector<int> community =
      AssignCommunities(m, options.community_size, &rng);
  const auto members = CommunityMembers(community);
  const auto profiles = CommunityProfiles(
      static_cast<int>(members.size()), d, options.community_profile_topics,
      options.interests.topic_zipf_exponent, &rng);
  if (community_of != nullptr) *community_of = community;

  // --- Interest vectors.
  ZipfSampler topic_sampler(d, options.interests.topic_zipf_exponent);
  std::vector<std::vector<double>> interests(m);
  for (UserId u = 0; u < m; ++u) {
    if (options.interests.sparse) {
      interests[u] = DrawSparseInterestVector(
          d, options.interests, profiles[community[u]],
          options.community_size > 0 ? options.profile_affinity : 0.0,
          topic_sampler, &rng);
    } else {
      interests[u] = DrawDenseInterestVector(
          d, options.interest_distribution, options.zipf_exponent, &rng);
    }
  }

  // --- Target degrees.
  std::vector<int> target(m);
  if (options.degree_distribution == Distribution::kUniform) {
    for (int& t : target) {
      t = static_cast<int>(
          rng.UniformInt(options.degree_min, options.degree_max));
    }
  } else {
    const int span = options.degree_max - options.degree_min + 1;
    ZipfSampler sampler(span, options.zipf_exponent);
    for (int& t : target) {
      t = options.degree_min + static_cast<int>(sampler.Sample(&rng));
    }
  }

  // --- Edges: community-biased partner choice.
  std::vector<std::vector<UserId>> adj(m);
  auto has_edge = [&](UserId a, UserId b) {
    return std::binary_search(adj[a].begin(), adj[a].end(), b);
  };
  auto add_edge = [&](UserId a, UserId b) {
    adj[a].insert(std::upper_bound(adj[a].begin(), adj[a].end(), b), b);
    adj[b].insert(std::upper_bound(adj[b].begin(), adj[b].end(), a), a);
  };
  for (UserId u = 0; u < m; ++u) {
    int attempts = 0;
    while (static_cast<int>(adj[u].size()) < target[u] &&
           attempts < 10 * (target[u] + 1)) {
      ++attempts;
      UserId v;
      const auto& own = members[community[u]];
      if (options.community_size > 0 && own.size() > 1 &&
          rng.UniformDouble() < options.intra_community_edge_fraction) {
        v = own[rng.NextBounded(own.size())];
      } else {
        v = static_cast<UserId>(rng.NextBounded(m));
      }
      if (v == u || has_edge(u, v)) continue;
      add_edge(u, v);
    }
  }

  if (options.ensure_connected) EnsureConnected(&adj, &rng);
  return BuildFromAdjacency(d, interests, &adj);
}

SocialNetwork GeneratePowerLawSocialNetwork(
    const PowerLawSocialOptions& options, std::vector<int>* community_of) {
  GPSSN_CHECK(options.num_users >= 2);
  GPSSN_CHECK(options.avg_degree > 0.0);
  GPSSN_CHECK(options.power_law_exponent > 1.0);
  Rng rng(options.seed);
  const int m = options.num_users;

  const std::vector<int> community =
      AssignCommunities(m, options.community_size, &rng);
  const auto members = CommunityMembers(community);
  if (community_of != nullptr) *community_of = community;

  // Power-law degree sequence rescaled to the target mean, capped at
  // sqrt(m·avg) so stub matching stays feasible.
  const double inv = 1.0 / (options.power_law_exponent - 1.0);
  std::vector<double> weight(m);
  double sum = 0.0;
  for (int i = 0; i < m; ++i) {
    weight[i] = std::pow(static_cast<double>(i + 1), -inv);
    sum += weight[i];
  }
  const double cap = std::sqrt(static_cast<double>(m) * options.avg_degree);
  const double scale = options.avg_degree * m / sum;
  std::vector<int> degree(m);
  rng.Shuffle(&weight);  // Decorrelate degree from user id.
  for (int i = 0; i < m; ++i) {
    degree[i] = std::max(1, static_cast<int>(std::min(weight[i] * scale, cap)));
  }

  // Degree-proportional global sampler (CDF + binary search).
  std::vector<double> cdf(m);
  double acc = 0.0;
  for (int i = 0; i < m; ++i) {
    acc += degree[i];
    cdf[i] = acc;
  }
  auto sample_by_degree = [&]() {
    const double x = rng.UniformDouble() * acc;
    return static_cast<UserId>(
        std::lower_bound(cdf.begin(), cdf.end(), x) - cdf.begin());
  };

  // Stub matching with community mixing.
  std::vector<std::vector<UserId>> adj(m);
  auto has_edge = [&](UserId a, UserId b) {
    return std::binary_search(adj[a].begin(), adj[a].end(), b);
  };
  auto add_edge = [&](UserId a, UserId b) {
    adj[a].insert(std::upper_bound(adj[a].begin(), adj[a].end(), b), b);
    adj[b].insert(std::upper_bound(adj[b].begin(), adj[b].end(), a), a);
  };
  for (UserId u = 0; u < m; ++u) {
    int attempts = 0;
    while (static_cast<int>(adj[u].size()) < degree[u] &&
           attempts < 8 * (degree[u] + 1)) {
      ++attempts;
      UserId v;
      const auto& own = members[community[u]];
      if (options.community_size > 0 && own.size() > 1 &&
          rng.UniformDouble() < options.intra_community_edge_fraction) {
        v = own[rng.NextBounded(own.size())];
      } else {
        v = sample_by_degree();
      }
      if (v == u || has_edge(u, v)) continue;
      add_edge(u, v);
    }
  }

  if (options.ensure_connected) EnsureConnected(&adj, &rng);
  std::vector<std::vector<double>> interests(
      m, std::vector<double>(options.num_topics, 0.0));
  return BuildFromAdjacency(options.num_topics, interests, &adj);
}

}  // namespace gpssn
