// Copyright 2026 The gpssn Authors.
//
// The GP-SSN query answering algorithm (Algorithm 2): a level-synchronized
// descent of the social index I_S interleaved with a best-first (min-heap)
// traversal of the POI index I_R, followed by refinement of the surviving
// candidate user/POI sets. Returns the pair (S, R) minimizing
// maxdist_RN(S, R) subject to every predicate of Definition 5.
//
// Exactness: every pruning rule except the δ-based road-distance cut is
// individually safe. The δ cut (line 14 of Algorithm 2) is safe whenever
// the δ-defining candidate admits a feasible group; the processor verifies
// this a posteriori (best found objective <= final δ) and transparently
// re-executes with the cut disabled in the rare case the check fails, so
// answers are always exact (unless a refinement cap was hit, which is
// reported via QueryStats::truncated).

#ifndef GPSSN_CORE_QUERY_H_
#define GPSSN_CORE_QUERY_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/audit.h"
#include "core/options.h"
#include "core/social_scratch.h"
#include "core/stats.h"
#include "index/poi_index.h"
#include "index/social_index.h"
#include "roadnet/distance_backend.h"
#include "roadnet/shortest_path.h"
#include "socialnet/bfs.h"

namespace gpssn {

// Per-lane persistent state of the intra-query parallel refinement
// (defined in query.cc): a private distance engine plus stamped row/memo
// caches, reused across queries so lane setup is O(changed state).
struct IntraLane;

/// A GP-SSN answer: the user group S, the ball center o_i, and the POI set
/// R = B(o_i, r).
struct GpssnAnswer {
  bool found = false;
  std::vector<UserId> users;  // S, sorted, contains the issuer.
  PoiId center = kInvalidPoi;
  std::vector<PoiId> pois;    // R, sorted.
  double max_dist = kInfDistance;  // maxdist_RN(S, R), the objective.
};

/// Which index subtrees a serving shard owns: the shard's candidate scope
/// is the union of users under `social_roots` (I_S partition-tree nodes)
/// and POIs under `road_roots` (I_R R*-tree nodes). An empty scope is a
/// valid (idle) shard. Subtree lists are in left-to-right tree order.
struct ShardScope {
  std::vector<SNodeId> social_roots;
  std::vector<RNodeId> road_roots;
};

/// Scatter-phase result of one shard: the candidate users/POIs surviving
/// the index prunes inside the shard's scope, plus a lower bound on any
/// objective achievable with a center in this shard (min over candidate
/// POIs of the issuer-side distance lower bound, Lemma 5 lifted to shard
/// granularity). kInfDistance when the shard holds no candidate center.
struct ShardCandidates {
  /// Users in I_S leaf-traversal (left-to-right) order — the same relative
  /// order Execute() discovers them in, so concatenating the shards'
  /// lists in partition order reproduces the single-node candidate order
  /// (which group enumeration, and therefore tie-breaking, depends on).
  std::vector<UserId> users;
  std::vector<PoiId> pois;  // Sorted ascending (order is refinement-free).
  double lower_bound = kInfDistance;
};

/// Refine-phase result of one shard: the best feasible answer over the
/// shard's candidate centers with objective <= the incumbent, plus its
/// DISCOVERY RANK — the position the single-node serial loop would have
/// found it at: centers are visited in ascending (exact issuer-side
/// objective contribution `center_worst`, center id) order, groups in
/// ascending index order within a center, and the first-encountered
/// minimum wins. Comparing shard answers by the lex key
/// (max_dist, center_worst, center id, group_index) therefore reproduces
/// the single-node winner exactly, shard count notwithstanding.
struct ShardRefineResult {
  GpssnAnswer answer;
  double center_worst = kInfDistance;  // max_{o∈ball} dist(u_q, o).
  int64_t group_index = -1;            // Into the coordinator's group list.
};

/// Query processor bound to one pair of indexes. Owns reusable Dijkstra /
/// BFS arenas; not thread-safe (one processor per thread).
class GpssnProcessor {
 public:
  /// Both indexes must be built over the same SpatialSocialNetwork and
  /// must outlive the processor. In GPSSN_AUDIT builds the constructor
  /// additionally runs the structural validators of core/audit.h over both
  /// indexes (aborting with a node-level diagnostic on corruption) and
  /// installs a default sampling PruningAuditor used whenever
  /// QueryOptions::auditor is null.
  GpssnProcessor(const PoiIndex* poi_index, const SocialIndex* social_index);
  ~GpssnProcessor();

  /// Answers one GP-SSN query. On success `stats` (optional) carries CPU
  /// time, page I/Os, and pruning counters. Returns InvalidArgument for
  /// malformed queries (bad issuer, τ < 1, radius outside the index's
  /// [r_min, r_max] envelope), DeadlineExceeded when
  /// `options.deadline` fires mid-query, and Cancelled when
  /// `options.cancel` is raised (both polled cooperatively at descent-loop
  /// and refinement boundaries).
  Result<GpssnAnswer> Execute(const GpssnQuery& query,
                              const QueryOptions& options,
                              QueryStats* stats = nullptr);

  /// Top-k extension: the k best (S, R) pairs ordered by ascending
  /// maxdist_RN (fewer when fewer feasible pairs exist). For k > 1 the
  /// δ-based road-distance cut is disabled internally (it is only safe for
  /// the single optimum), so top-k queries trade some pruning for
  /// completeness.
  Result<std::vector<GpssnAnswer>> ExecuteTopK(const GpssnQuery& query, int k,
                                               const QueryOptions& options,
                                               QueryStats* stats = nullptr);

  /// Serving scatter phase: descends only the index subtrees in `scope`
  /// and returns the surviving candidate users/POIs plus the shard's
  /// objective lower bound. Runs the same node- and object-level prunes as
  /// Execute() except the δ road-distance cut, which is never applied here
  /// (δ is a global property; a shard-local δ would be unsound), so no
  /// a-posteriori re-execution is ever needed on the sharded path.
  /// Deadline/cancel are polled as in Execute().
  Result<ShardCandidates> GatherCandidates(const GpssnQuery& query,
                                           const QueryOptions& options,
                                           const ShardScope& scope,
                                           QueryStats* stats = nullptr);

  /// Serving refine phase: exact evaluation of the coordinator-supplied
  /// candidate `groups` (user lists satisfying the pairwise interest
  /// predicate, in enumeration order) against candidate centers `centers`,
  /// returning the discovery-order-first feasible answer with objective
  /// <= `incumbent` (kInfDistance for an unbounded search) plus its
  /// discovery rank (see ShardRefineResult). Mirrors Execute()'s serial
  /// refinement exactly — same arithmetic, same non-strict rejection
  /// against the running best — so per-pair objectives are bit-identical
  /// to the single-node run (rows are bound-tagged; values are
  /// bound-independent where finite). answer.found=false when no
  /// candidate has objective <= incumbent.
  Result<ShardRefineResult> RefineCandidates(
      const GpssnQuery& query, const QueryOptions& options,
      const std::vector<PoiId>& centers,
      const std::vector<std::vector<UserId>>& groups, double incumbent,
      QueryStats* stats = nullptr);

 private:
  /// `interrupted` (required) is set when the deadline/cancel hook fired
  /// and the traversal was abandoned; the partial result must be discarded.
  std::vector<GpssnAnswer> ExecuteImpl(const GpssnQuery& query,
                                       const QueryOptions& options, int top_k,
                                       QueryStats* stats, double* final_delta,
                                       bool* interrupted);

  /// Engine for `options.distance_backend` (the built-in Dijkstra engine
  /// when null). Plugged-backend engines are cached so repeated queries
  /// against the same backend reuse one set of arenas.
  DistanceEngine* EngineFor(const QueryOptions& options);

  /// Flat stamped scratch for the refinement phase, reused across queries:
  /// replaces the per-query unordered_map<UserId, unordered_map<PoiId,
  /// double>> distance memos with generation-stamped slot/row arrays and
  /// one flat row-major distance table, eliminating allocation churn in
  /// the refinement loop.
  struct RefineScratch {
    uint32_t generation = 0;
    // POI id -> slot in `needed` (valid when poi_stamp matches).
    std::vector<uint32_t> poi_stamp;
    std::vector<int32_t> poi_slot;
    std::vector<PoiId> needed;                  // Slot -> POI id.
    std::vector<EdgePosition> needed_positions; // Slot -> position.
    // User id -> row index into `rows` (valid when user_stamp matches).
    std::vector<uint32_t> user_stamp;
    std::vector<int32_t> user_row;
    // Row-major |rows| x |needed| distance table; kInfDistance = beyond
    // the bound the row was computed under.
    std::vector<double> rows;

    /// Starts a query: bumps the generation (invalidating every slot/row
    /// in O(1)) and clears the flat arrays, keeping their capacity.
    void BeginQuery(size_t num_users, size_t num_pois);
  };

  const PoiIndex* poi_index_;
  const SocialIndex* social_index_;
  BfsEngine bfs_;
  // Built-in backend: bounded Dijkstra over the indexes' road network
  // (bit-exact with the seed query path).
  std::unique_ptr<DistanceBackend> default_backend_;
  std::unique_ptr<DistanceEngine> default_engine_;
  // Engine created from the last non-null options.distance_backend, plus
  // the backend POI generation it was created under — the engine is
  // recreated when the backend reports a POI mutation, so cached arenas
  // (e.g. the CH ball index's locator) never serve a stale POI set.
  const DistanceBackend* plugged_source_ = nullptr;
  uint64_t plugged_generation_ = 0;
  std::unique_ptr<DistanceEngine> plugged_engine_;
  RefineScratch scratch_;
  // Per-query SoA social scratch (candidate interest matrix, adjacency
  // bitsets, pairwise-score memo); rebuilt only when
  // QueryOptions::vectorized_social_kernels is on and the candidate set
  // fits social_scratch_max_candidates.
  SocialScratch social_scratch_;
  // Lanes of the intra-query parallel refinement, lane 0 = the caller.
  // Grown on demand, reused across queries.
  std::vector<std::unique_ptr<IntraLane>> intra_lanes_;
  // Non-null only in GPSSN_AUDIT builds: the default pruning-soundness
  // auditor (abort-on-violation) used when the caller supplies none.
  std::unique_ptr<PruningAuditor> default_auditor_;
};

}  // namespace gpssn

#endif  // GPSSN_CORE_QUERY_H_
