// Copyright 2026 The gpssn Authors.
//
// Per-query measurements: CPU time, the paper's I/O metric (page accesses),
// and per-rule pruning counters backing the pruning-power experiments of
// Figure 7.

#ifndef GPSSN_CORE_STATS_H_
#define GPSSN_CORE_STATS_H_

#include <cstdint>
#include <string>

#include "common/pagestore.h"

namespace gpssn {

struct QueryStats {
  double cpu_seconds = 0.0;
  IoStats io;

  // --- Social-network side (Fig. 7(a)/(b)).
  uint64_t social_nodes_visited = 0;
  uint64_t social_nodes_pruned_interest = 0;  // Lemma 8.
  uint64_t social_nodes_pruned_distance = 0;  // Lemma 9.
  uint64_t users_seen = 0;                    // Users reaching object level.
  uint64_t users_pruned_interest = 0;         // Lemma 3 / Corollary 1.
  uint64_t users_pruned_distance = 0;         // Lemma 4.
  uint64_t users_pruned_corollary2 = 0;       // Corollary 2 (refinement).
  uint64_t users_candidates = 0;              // Survivors.
  /// Users covered by index nodes pruned at index level (for index-level
  /// pruning power: fraction of all users never reaching object level).
  uint64_t users_pruned_at_index_level = 0;

  // --- Road-network side (Fig. 7(a)/(c)).
  uint64_t road_nodes_visited = 0;
  uint64_t road_nodes_pruned_match = 0;      // Lemma 6.
  uint64_t road_nodes_pruned_distance = 0;   // Lemma 7 / δ cut.
  uint64_t pois_seen = 0;
  uint64_t pois_pruned_match = 0;            // Lemma 1.
  uint64_t pois_pruned_distance = 0;         // Lemma 5.
  uint64_t pois_candidates = 0;
  uint64_t pois_pruned_at_index_level = 0;

  // --- Refinement (Fig. 7(d), Figs. 8-11).
  uint64_t groups_enumerated = 0;
  uint64_t pairs_examined = 0;     // (S, R) pairs actually evaluated.
  uint64_t exact_distance_evals = 0;
  bool truncated = false;          // A refinement cap was hit.

  // --- Per-phase wall time (attributes backend/cache wins to the phase
  // they land in; the four do not sum to cpu_seconds — exact_dist and
  // ball are subsets of refine).
  double descent_seconds = 0.0;     // Phase 1: synchronized index descent.
  double ball_seconds = 0.0;        // Ball materialization (B(o_i, r)).
  double refine_seconds = 0.0;      // Phase 2 total (includes the below).
  double exact_dist_seconds = 0.0;  // Exact user→POI distance evaluations.

  // --- Shared distance cache (roadnet/distance_cache.h), counted at
  // user-row granularity: a hit means one whole per-user distance
  // evaluation (one bounded Dijkstra / CH forward search) was skipped.
  uint64_t dist_cache_row_hits = 0;
  uint64_t dist_cache_row_misses = 0;

  // --- Intra-query parallel refinement (QueryOptions::scheduler):
  // refinement lanes that claimed at least one candidate center (0 on the
  // serial path; MergeFrom keeps the max, a peak not a sum).
  uint32_t intra_lanes_used = 0;
  // Refinement morsels (candidate centers claimed off the atomic cursor)
  // processed in the parallel region, and the subset claimed by STOLEN
  // lanes (idle scheduler workers; lane 0 is the calling thread). Both 0
  // on the serial path; MergeFrom sums.
  uint64_t refine_morsels = 0;
  uint64_t refine_morsels_stolen = 0;
  // Fresh pairwise Interest_Score evaluations through the SocialScratch
  // memo (QueryOptions::vectorized_social_kernels; 0 on the scalar path).
  // Bounded by n(n-1)/2 per query — each pair is scored at most once.
  uint64_t interest_pairs_scored = 0;

  // --- Ball materialization backend (roadnet/ch_range.h): total B(o, r)
  // evaluations and the subset answered by the CH range index instead of
  // bounded Dijkstra (0 on the Dijkstra backend). MergeFrom sums.
  uint64_t ball_queries = 0;
  uint64_t ball_range_engine_queries = 0;

  // --- Sharded serving (src/serving/): all 0 on the single-node path.
  // Refine requests the coordinator never sent because the shard's gather
  // lower bound could not beat the global incumbent (the cross-shard
  // Lemma-style prune), over the shards that held candidate centers.
  uint64_t skipped_shards = 0;
  uint64_t refined_shards = 0;
  // Transport envelopes exchanged for this query (requests + replies).
  uint64_t shard_msgs = 0;
  // Coordinator-side wall time per serving phase: scatter/gather round,
  // central planning (merge + Corollary 2 + group enumeration), and the
  // incumbent-pruned refine waves. Shard-side descent/ball/refine time
  // lands in the regular phase counters above via the merged shard stats.
  double serve_gather_seconds = 0.0;
  double serve_plan_seconds = 0.0;
  double serve_refine_seconds = 0.0;

  /// Page misses (the paper's "number of page accesses through a buffer").
  uint64_t PageAccesses() const { return io.page_misses; }

  /// Adds every counter (and cpu_seconds) of `other` into this struct;
  /// `truncated` ORs. Used by batch-level aggregation (core/executor.h).
  void MergeFrom(const QueryStats& other);

  std::string ToString() const;
};

}  // namespace gpssn

#endif  // GPSSN_CORE_STATS_H_
