#include "core/baseline.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/refinement.h"
#include "core/scores.h"
#include "roadnet/shortest_path.h"

namespace gpssn {

double Log10Binomial(int64_t n, int64_t k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return (std::lgamma(static_cast<double>(n) + 1) -
          std::lgamma(static_cast<double>(k) + 1) -
          std::lgamma(static_cast<double>(n - k) + 1)) /
         std::log(10.0);
}

GpssnAnswer BruteForceGpssn(const SpatialSocialNetwork& ssn,
                            const GpssnQuery& query, int64_t max_groups,
                            QueryStats* stats,
                            const DistanceBackend* backend) {
  WallTimer timer;
  const SocialNetwork& social = ssn.social();
  GpssnAnswer answer;

  // All connected τ-groups containing the issuer with pairwise γ.
  std::vector<UserId> all_users(social.num_users());
  for (UserId u = 0; u < social.num_users(); ++u) all_users[u] = u;
  std::vector<std::vector<UserId>> groups;
  const bool complete =
      EnumerateGroups(social, query, all_users, max_groups, &groups);
  if (stats != nullptr) {
    stats->groups_enumerated = groups.size();
    stats->truncated = !complete;
  }
  if (groups.empty()) return answer;

  std::unique_ptr<DistanceBackend> own_backend;
  if (backend == nullptr) {
    own_backend = MakeDijkstraBackend(&ssn.road(), &ssn.pois());
    backend = own_backend.get();
  }
  std::unique_ptr<DistanceEngine> engine = backend->CreateEngine();

  // Per-user exact distances to every POI (exhaustive, no bounds): every
  // POI is a registered target, one unbounded one-to-many evaluation per
  // distinct group member.
  std::vector<EdgePosition> targets(ssn.num_pois());
  for (PoiId o = 0; o < ssn.num_pois(); ++o) {
    targets[o] = ssn.poi(o).position;
  }
  engine->SetTargets(targets);
  std::vector<UserId> members;
  for (const auto& group : groups) {
    members.insert(members.end(), group.begin(), group.end());
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  std::vector<std::vector<double>> dist_to_poi(social.num_users());
  for (UserId u : members) {
    auto& row = dist_to_poi[u];
    row.resize(ssn.num_pois());
    engine->SourceToTargets(ssn.user_home(u), kInfDistance, row.data());
  }

  // Every POI as a ball center.
  for (PoiId c = 0; c < ssn.num_pois(); ++c) {
    const auto ball_dists =
        engine->BallWithDistances(ssn.poi(c).position, query.radius);
    std::vector<PoiId> ball;
    for (const auto& [id, d] : ball_dists) ball.push_back(id);
    std::sort(ball.begin(), ball.end());
    if (ball.empty()) continue;
    const std::vector<KeywordId> kws = UnionKeywords(ssn, ball);
    for (const auto& group : groups) {
      if (stats != nullptr) ++stats->pairs_examined;
      bool all_match = true;
      for (UserId u : group) {
        if (MatchScore(social.Interests(u), kws) < query.theta) {
          all_match = false;
          break;
        }
      }
      if (!all_match) continue;
      double obj = 0.0;
      for (UserId u : group) {
        for (PoiId o : ball) obj = std::max(obj, dist_to_poi[u][o]);
      }
      if (!std::isfinite(obj)) continue;
      if (obj < answer.max_dist) {
        answer.found = true;
        answer.users = group;
        answer.center = c;
        answer.pois = ball;
        answer.max_dist = obj;
      }
    }
  }
  if (stats != nullptr) stats->cpu_seconds = timer.ElapsedSeconds();
  return answer;
}

BaselineEstimate EstimateBaselineCost(const SpatialSocialNetwork& ssn,
                                      const GpssnQuery& query, int samples,
                                      uint64_t seed) {
  GPSSN_CHECK(samples > 0);
  const SocialNetwork& social = ssn.social();
  const int m = social.num_users();
  const int n = ssn.num_pois();
  Rng rng(seed);
  DijkstraEngine engine(&ssn.road());
  PoiLocator locator(&ssn.road(), &ssn.pois());

  BaselineEstimate est;
  est.log10_candidate_pairs =
      Log10Binomial(m - 1, query.tau - 1) + std::log10(std::max(1, n));

  WallTimer timer;
  double total_ios = 0.0;
  const double vertices_per_page = 128.0;
  for (int s = 0; s < samples; ++s) {
    // One candidate pair (S, R): τ−1 random partners + a random center.
    std::vector<UserId> group = {query.issuer};
    while (static_cast<int>(group.size()) < query.tau && m > query.tau) {
      const UserId u = static_cast<UserId>(rng.NextBounded(m));
      if (std::find(group.begin(), group.end(), u) == group.end()) {
        group.push_back(u);
      }
    }
    const PoiId center = static_cast<PoiId>(rng.NextBounded(n));

    // The naive per-pair work: pairwise interest scores, ball
    // materialization, matching scores, exact max-distance.
    double sink = 0.0;
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        sink += InterestScore(social.Interests(group[i]),
                              social.Interests(group[j]));
      }
    }
    const auto ball_dists =
        locator.BallWithDistances(ssn.poi(center).position, query.radius,
                                  &engine);
    total_ios += 1.0 + ball_dists.size();  // Center + ball POI records.
    std::vector<PoiId> ball;
    for (const auto& [id, d] : ball_dists) ball.push_back(id);
    const std::vector<KeywordId> kws = UnionKeywords(ssn, ball);
    for (UserId u : group) {
      sink += MatchScore(social.Interests(u), kws);
    }
    for (UserId u : group) {
      engine.RunFromPosition(ssn.user_home(u));
      total_ios += 1.0 + engine.Settled().size() / vertices_per_page;
      for (PoiId o : ball) {
        sink += engine.DistanceToPosition(ssn.poi(o).position);
      }
    }
    // Keep the compiler from eliding the measured work.
    if (sink == -1.0) std::abort();
  }
  const double elapsed = timer.ElapsedSeconds();
  est.avg_pair_cpu_seconds = elapsed / samples;
  est.avg_pair_ios = total_ios / samples;

  const double log10_total_cpu =
      std::log10(std::max(est.avg_pair_cpu_seconds, 1e-12)) +
      est.log10_candidate_pairs;
  est.estimated_total_cpu_seconds =
      log10_total_cpu > 300 ? std::numeric_limits<double>::infinity()
                            : std::pow(10.0, log10_total_cpu);
  const double log10_total_ios =
      std::log10(std::max(est.avg_pair_ios, 1e-12)) +
      est.log10_candidate_pairs;
  est.estimated_total_ios =
      log10_total_ios > 300 ? std::numeric_limits<double>::infinity()
                            : std::pow(10.0, log10_total_ios);
  est.estimated_total_days = est.estimated_total_cpu_seconds / 86400.0;
  return est;
}

}  // namespace gpssn
