// Copyright 2026 The gpssn Authors.
//
// Refinement-phase helpers of Algorithm 2 (lines 29-31): the Corollary 2
// count-based user pruning and the enumeration of connected τ-subsets S of
// the candidate users that contain u_q and satisfy the pairwise
// interest-score predicate. Exhaustive enumeration uses the ESU
// (enumerate-subgraphs) scheme, emitting every qualifying group exactly
// once; the optional subset-sampling mode (the paper's future-work
// extension) randomly grows connected groups instead.

#ifndef GPSSN_CORE_REFINEMENT_H_
#define GPSSN_CORE_REFINEMENT_H_

#include <vector>

#include "core/options.h"
#include "core/stats.h"
#include "socialnet/social_graph.h"

namespace gpssn {

/// Corollary 2: a user u_k failing the pairwise interest test against at
/// least (|S'| − τ + 1) candidates cannot appear in any answer group and is
/// removed. The issuer is never removed. Quadratic in |candidates|; callers
/// should apply the cheaper per-user rules first.
void ApplyCorollary2(const SocialNetwork& social, const GpssnQuery& query,
                     std::vector<UserId>* candidates, QueryStats* stats);

/// Enumerates all connected groups S (|S| = τ, u_q ∈ S ⊆ candidates ∪
/// {u_q}) whose members pairwise satisfy Interest_Score >= γ. Each group is
/// emitted exactly once (sorted ids). Returns false when `max_groups` was
/// hit (output truncated).
bool EnumerateGroups(const SocialNetwork& social, const GpssnQuery& query,
                     const std::vector<UserId>& candidates, int64_t max_groups,
                     std::vector<std::vector<UserId>>* out);

/// Subset-sampling alternative: `samples` random connected growths from
/// u_q; deduplicated. Never truncates (sampling is inherently partial).
void SampleGroups(const SocialNetwork& social, const GpssnQuery& query,
                  const std::vector<UserId>& candidates, int samples,
                  uint64_t seed, std::vector<std::vector<UserId>>* out);

}  // namespace gpssn

#endif  // GPSSN_CORE_REFINEMENT_H_
