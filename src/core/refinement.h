// Copyright 2026 The gpssn Authors.
//
// Refinement-phase helpers of Algorithm 2 (lines 29-31): the Corollary 2
// count-based user pruning and the enumeration of connected τ-subsets S of
// the candidate users that contain u_q and satisfy the pairwise
// interest-score predicate. Exhaustive enumeration uses the ESU
// (enumerate-subgraphs) scheme, emitting every qualifying group exactly
// once; the optional subset-sampling mode (the paper's future-work
// extension) randomly grows connected groups instead.

#ifndef GPSSN_CORE_REFINEMENT_H_
#define GPSSN_CORE_REFINEMENT_H_

#include <vector>

#include "core/options.h"
#include "core/social_scratch.h"
#include "core/stats.h"
#include "socialnet/social_graph.h"

namespace gpssn {

/// Corollary 2: a user u_k failing the pairwise interest test against at
/// least (|S'| − τ + 1) candidates cannot appear in any answer group and is
/// removed. The issuer is never removed. Worst-case quadratic in
/// |candidates|, but per-user failure counters terminate each user early
/// once its decision is certain (removal reached, or too few pairs left to
/// reach it), and pairs between two decided users are skipped outright —
/// the removed set is provably the one full evaluation would produce.
/// When `scratch` is non-null (built over a superset of `candidates`),
/// pair tests go through its memoized SoA kernels and stay cached for the
/// group enumeration; null keeps the scalar sparse-merge kernels.
void ApplyCorollary2(const SocialNetwork& social, const GpssnQuery& query,
                     std::vector<UserId>* candidates, QueryStats* stats,
                     SocialScratch* scratch = nullptr);

/// Enumerates all connected groups S (|S| = τ, u_q ∈ S ⊆ candidates ∪
/// {u_q}) whose members pairwise satisfy Interest_Score >= γ. Each group is
/// emitted exactly once (sorted ids). Returns false when `max_groups` was
/// hit (output truncated). With a non-null `scratch` (candidates must all
/// be scratch members) the ESU extension tests run over candidate-local
/// adjacency bitsets and the memoized pair scores; the emitted group
/// sequence is identical to the scalar path (id-ascending bit order equals
/// the CSR Friends() order) up to pairwise-score rounding.
bool EnumerateGroups(const SocialNetwork& social, const GpssnQuery& query,
                     const std::vector<UserId>& candidates, int64_t max_groups,
                     std::vector<std::vector<UserId>>* out,
                     SocialScratch* scratch = nullptr);

/// Subset-sampling alternative: `samples` random connected growths from
/// u_q; deduplicated. Never truncates (sampling is inherently partial).
void SampleGroups(const SocialNetwork& social, const GpssnQuery& query,
                  const std::vector<UserId>& candidates, int samples,
                  uint64_t seed, std::vector<std::vector<UserId>>* out);

}  // namespace gpssn

#endif  // GPSSN_CORE_REFINEMENT_H_
