// Copyright 2026 The gpssn Authors.
//
// GpssnDatabase: the one-stop entry point of the library. Owns a
// spatial-social network plus everything needed to answer GP-SSN queries —
// road/social pivot tables (selected via Algorithm 1 or at random), the two
// indexes I_R and I_S, and a query processor.

#ifndef GPSSN_CORE_DATABASE_H_
#define GPSSN_CORE_DATABASE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/sync.h"
#include "core/executor.h"
#include "core/query.h"
#include "index/pivot_select.h"
#include "index/poi_index.h"
#include "index/social_index.h"
#include "roadnet/distance_backend.h"
#include "roadnet/distance_cache.h"
#include "ssn/spatial_social_network.h"

namespace gpssn {

struct GpssnBuildOptions {
  /// Number of road-network pivots h and social-network pivots l (Table 3
  /// default: 5).
  int num_road_pivots = 5;
  int num_social_pivots = 5;
  /// Use Algorithm 1's cost-model local search (true) or random pivots.
  bool optimize_pivots = true;
  PivotSelectOptions pivot_select;
  PoiIndexOptions poi_index;
  SocialIndexOptions social_index;
  uint64_t seed = 1;
  /// Exact-distance backend for refinement (roadnet/distance_backend.h).
  /// kDijkstra keeps the processor's built-in bounded Dijkstra (bit-exact
  /// seed behaviour, no preprocessing); kContractionHierarchy builds a CH
  /// once at database construction and answers refinement's one-to-many
  /// evaluations with bucket queries.
  DistanceBackendKind distance_backend = DistanceBackendKind::kDijkstra;
  /// CH construction knobs (used only for kContractionHierarchy).
  ChOptions ch;
  /// Persistence path for the graph + CH index (kContractionHierarchy
  /// only; empty = always build in-process). When set, construction mmaps
  /// a previously saved index from this file if its checksums validate
  /// and it matches the road network, and otherwise builds and saves one
  /// (see roadnet/index_io.h).
  std::string ch_index_path;
  /// Capacity of the shared cross-query (user, poi) → distance cache
  /// (roadnet/distance_cache.h); 0 disables it. The cache is shared by
  /// every query and batch worker of this database and is invalidated
  /// automatically on AddPoi.
  size_t distance_cache_entries = 0;
};

/// Owns the network, the pivot tables, both indexes, and a processor.
class GpssnDatabase {
 public:
  /// Builds everything offline. This is the expensive step (pivot Dijkstra
  /// tables, per-POI ball queries, graph partitioning).
  explicit GpssnDatabase(SpatialSocialNetwork ssn);
  GpssnDatabase(SpatialSocialNetwork ssn, const GpssnBuildOptions& options);

  /// Snapshot-loading constructor (see core/snapshot.h): reuses the pivot
  /// ids and per-POI keyword sets of a previous build instead of
  /// recomputing them.
  GpssnDatabase(SpatialSocialNetwork ssn, const GpssnBuildOptions& options,
                std::vector<VertexId> road_pivot_ids,
                std::vector<UserId> social_pivot_ids,
                std::vector<PoiAug> poi_augs);

  GPSSN_DISALLOW_COPY_AND_MOVE(GpssnDatabase);

  const SpatialSocialNetwork& ssn() const { return ssn_; }
  const RoadPivotTable& road_pivots() const { return road_pivots_; }
  const SocialPivotTable& social_pivots() const { return social_pivots_; }
  const PoiIndex& poi_index() const { return *poi_index_; }
  const SocialIndex& social_index() const { return *social_index_; }
  /// The database-level distance backend (null when the build options
  /// selected kDijkstra: the processor's built-in engine is used).
  const DistanceBackend* distance_backend() const { return backend_.get(); }
  /// The shared cross-query distance cache (null when disabled).
  DistanceCache* distance_cache() { return distance_cache_.get(); }

  /// Answers a GP-SSN query (see GpssnProcessor::Execute).
  Result<GpssnAnswer> Query(const GpssnQuery& query,
                            const QueryOptions& options,
                            QueryStats* stats = nullptr);
  Result<GpssnAnswer> Query(const GpssnQuery& query,
                            QueryStats* stats = nullptr);

  /// Top-k extension: the k best (S, R) pairs, ascending by maxdist_RN.
  Result<std::vector<GpssnAnswer>> QueryTopK(const GpssnQuery& query, int k,
                                             const QueryOptions& options,
                                             QueryStats* stats = nullptr);

  /// Concurrent batch entry point: runs `queries` across a pool of
  /// `options.num_workers` processors (see GpssnBatchExecutor) and returns
  /// per-query results in input order; `stats` (optional) receives the
  /// batch aggregate. For sustained workloads construct a
  /// GpssnBatchExecutor directly and reuse it across batches.
  std::vector<BatchQueryResult> QueryBatch(
      std::span<const GpssnQuery> queries,
      const BatchExecutorOptions& options = {}, BatchStats* stats = nullptr);

  /// Dynamic maintenance: a new facility opens on an existing road edge.
  /// Appends the POI, patches I_R (see PoiIndex::InsertPoi), and refreshes
  /// the query processor. Returns the new POI id. Maintenance calls
  /// serialize on maintenance_mu_ (single-writer); they must still not
  /// overlap concurrent queries — see the class comment.
  Result<PoiId> AddPoi(const EdgePosition& position,
                       std::vector<KeywordId> keywords)
      GPSSN_EXCLUDES(maintenance_mu_);

  /// Dynamic maintenance: a user's interest profile drifted (new
  /// check-ins). Updates the network and patches I_S's interest boxes.
  /// Serialized on maintenance_mu_ like AddPoi.
  Status UpdateUserInterests(UserId u, std::span<const double> interests)
      GPSSN_EXCLUDES(maintenance_mu_);

 private:
  /// Fills the distance backend / cache fields of `options` from the
  /// database-level defaults when the caller left them null.
  QueryOptions WithDatabaseDefaults(QueryOptions options);

  // Serializes the dynamic-maintenance mutators (AddPoi,
  // UpdateUserInterests) against EACH OTHER: two concurrent AddPoi calls
  // used to interleave their ssn_ append / I_R patch / processor swap with
  // no lock at all. Queries are NOT covered — the reader side of
  // maintenance-vs-query isolation is the ROADMAP's snapshot-isolation
  // item; until then callers must quiesce queries around maintenance,
  // exactly as before.
  Mutex maintenance_mu_;

  SpatialSocialNetwork ssn_;
  RoadPivotTable road_pivots_;
  SocialPivotTable social_pivots_;
  std::unique_ptr<PoiIndex> poi_index_;
  std::unique_ptr<SocialIndex> social_index_;
  std::unique_ptr<DistanceBackend> backend_;  // Null for kDijkstra.
  std::unique_ptr<DistanceCache> distance_cache_;  // Null when disabled.
  std::unique_ptr<GpssnProcessor> processor_;
};

}  // namespace gpssn

#endif  // GPSSN_CORE_DATABASE_H_
