#include "core/scores.h"

#include <algorithm>

#include "common/macros.h"

namespace gpssn {

double InterestScore(std::span<const double> a, std::span<const double> b) {
  GPSSN_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t f = 0; f < a.size(); ++f) s += a[f] * b[f];
  return s;
}

double WeightedJaccard(std::span<const double> a, std::span<const double> b) {
  GPSSN_CHECK(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (size_t f = 0; f < a.size(); ++f) {
    num += std::min(a[f], b[f]);
    den += std::max(a[f], b[f]);
  }
  return den > 0.0 ? num / den : 1.0;
}

double HammingSimilarity(std::span<const double> a,
                         std::span<const double> b) {
  GPSSN_CHECK(a.size() == b.size());
  if (a.empty()) return 1.0;
  int mismatches = 0;
  for (size_t f = 0; f < a.size(); ++f) {
    if ((a[f] > 0.0) != (b[f] > 0.0)) ++mismatches;
  }
  return 1.0 - static_cast<double>(mismatches) / static_cast<double>(a.size());
}

double UserSimilarity(InterestMetric metric, std::span<const double> a,
                      std::span<const double> b) {
  switch (metric) {
    case InterestMetric::kDotProduct:
      return InterestScore(a, b);
    case InterestMetric::kJaccard:
      return WeightedJaccard(a, b);
    case InterestMetric::kHamming:
      return HammingSimilarity(a, b);
  }
  return 0.0;
}

double UbJaccardBox(std::span<const double> q, std::span<const double> lb,
                    std::span<const double> ub) {
  GPSSN_CHECK(q.size() == lb.size() && q.size() == ub.size());
  double num = 0.0, den = 0.0;
  for (size_t f = 0; f < q.size(); ++f) {
    num += std::min(q[f], ub[f]);
    den += std::max(q[f], lb[f]);
  }
  return den > 0.0 ? num / den : 1.0;
}

double UbHammingBox(std::span<const double> q, std::span<const double> lb,
                    std::span<const double> ub) {
  GPSSN_CHECK(q.size() == lb.size() && q.size() == ub.size());
  if (q.empty()) return 1.0;
  int forced_mismatches = 0;
  for (size_t f = 0; f < q.size(); ++f) {
    const bool in_support = q[f] > 0.0;
    if (in_support && ub[f] <= 0.0) ++forced_mismatches;
    if (!in_support && lb[f] > 0.0) ++forced_mismatches;
  }
  return 1.0 -
         static_cast<double>(forced_mismatches) / static_cast<double>(q.size());
}

double MatchScore(std::span<const double> interests,
                  const std::vector<KeywordId>& keywords) {
  double s = 0.0;
  for (KeywordId kw : keywords) {
    if (kw >= 0 && static_cast<size_t>(kw) < interests.size()) {
      s += interests[kw];
    }
  }
  return s;
}

double UbMatchScore(std::span<const double> interests,
                    const KeywordBitVector& signature) {
  double s = 0.0;
  for (size_t f = 0; f < interests.size(); ++f) {
    if (interests[f] > 0.0 && signature.MayContain(static_cast<int>(f))) {
      s += interests[f];
    }
  }
  return s;
}

std::vector<KeywordId> UnionKeywords(const SpatialSocialNetwork& ssn,
                                     const std::vector<PoiId>& pois) {
  std::vector<KeywordId> out;
  for (PoiId id : pois) {
    const auto& kws = ssn.poi(id).keywords;
    out.insert(out.end(), kws.begin(), kws.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace gpssn
