#include "core/scores.h"

#include <algorithm>
#include <bit>

#include "common/macros.h"

namespace gpssn {

double InterestScore(std::span<const double> a, std::span<const double> b) {
  GPSSN_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t f = 0; f < a.size(); ++f) s += a[f] * b[f];
  return s;
}

double WeightedJaccard(std::span<const double> a, std::span<const double> b) {
  GPSSN_CHECK(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (size_t f = 0; f < a.size(); ++f) {
    num += std::min(a[f], b[f]);
    den += std::max(a[f], b[f]);
  }
  return den > 0.0 ? num / den : 1.0;
}

double HammingSimilarity(std::span<const double> a,
                         std::span<const double> b) {
  GPSSN_CHECK(a.size() == b.size());
  if (a.empty()) return 1.0;
  int mismatches = 0;
  for (size_t f = 0; f < a.size(); ++f) {
    if ((a[f] > 0.0) != (b[f] > 0.0)) ++mismatches;
  }
  return 1.0 - static_cast<double>(mismatches) / static_cast<double>(a.size());
}

double UserSimilarity(InterestMetric metric, std::span<const double> a,
                      std::span<const double> b) {
  switch (metric) {
    case InterestMetric::kDotProduct:
      return InterestScore(a, b);
    case InterestMetric::kJaccard:
      return WeightedJaccard(a, b);
    case InterestMetric::kHamming:
      return HammingSimilarity(a, b);
  }
  return 0.0;
}

double UbJaccardBox(std::span<const double> q, std::span<const double> lb,
                    std::span<const double> ub) {
  GPSSN_CHECK(q.size() == lb.size() && q.size() == ub.size());
  double num = 0.0, den = 0.0;
  for (size_t f = 0; f < q.size(); ++f) {
    num += std::min(q[f], ub[f]);
    den += std::max(q[f], lb[f]);
  }
  return den > 0.0 ? num / den : 1.0;
}

double UbHammingBox(std::span<const double> q, std::span<const double> lb,
                    std::span<const double> ub) {
  GPSSN_CHECK(q.size() == lb.size() && q.size() == ub.size());
  if (q.empty()) return 1.0;
  int forced_mismatches = 0;
  for (size_t f = 0; f < q.size(); ++f) {
    const bool in_support = q[f] > 0.0;
    if (in_support && ub[f] <= 0.0) ++forced_mismatches;
    if (!in_support && lb[f] > 0.0) ++forced_mismatches;
  }
  return 1.0 -
         static_cast<double>(forced_mismatches) / static_cast<double>(q.size());
}

double MatchScore(std::span<const double> interests,
                  const std::vector<KeywordId>& keywords) {
  double s = 0.0;
  for (KeywordId kw : keywords) {
    if (kw >= 0 && static_cast<size_t>(kw) < interests.size()) {
      s += interests[kw];
    }
  }
  return s;
}

double UbMatchScore(std::span<const double> interests,
                    const KeywordBitVector& signature) {
  double s = 0.0;
  for (size_t f = 0; f < interests.size(); ++f) {
    if (interests[f] > 0.0 && signature.MayContain(static_cast<int>(f))) {
      s += interests[f];
    }
  }
  return s;
}

double SoaDot(const double* a, const double* b, size_t padded_dim) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  for (size_t f = 0; f < padded_dim; f += kSoaLaneWidth) {
    l0 += a[f] * b[f];
    l1 += a[f + 1] * b[f + 1];
    l2 += a[f + 2] * b[f + 2];
    l3 += a[f + 3] * b[f + 3];
  }
  return (l0 + l1) + (l2 + l3);
}

double SoaJaccard(const double* a, const double* b, size_t padded_dim) {
  double n0 = 0.0, n1 = 0.0, n2 = 0.0, n3 = 0.0;
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  for (size_t f = 0; f < padded_dim; f += kSoaLaneWidth) {
    n0 += std::min(a[f], b[f]);
    n1 += std::min(a[f + 1], b[f + 1]);
    n2 += std::min(a[f + 2], b[f + 2]);
    n3 += std::min(a[f + 3], b[f + 3]);
    d0 += std::max(a[f], b[f]);
    d1 += std::max(a[f + 1], b[f + 1]);
    d2 += std::max(a[f + 2], b[f + 2]);
    d3 += std::max(a[f + 3], b[f + 3]);
  }
  const double num = (n0 + n1) + (n2 + n3);
  const double den = (d0 + d1) + (d2 + d3);
  return den > 0.0 ? num / den : 1.0;
}

double SoaHamming(const double* a, const double* b, size_t dim,
                  size_t padded_dim) {
  if (dim == 0) return 1.0;
  // Integer counting: exact, so lane order is irrelevant here. Zero padding
  // never mismatches (both sides outside the support).
  int m0 = 0, m1 = 0, m2 = 0, m3 = 0;
  for (size_t f = 0; f < padded_dim; f += kSoaLaneWidth) {
    m0 += (a[f] > 0.0) != (b[f] > 0.0);
    m1 += (a[f + 1] > 0.0) != (b[f + 1] > 0.0);
    m2 += (a[f + 2] > 0.0) != (b[f + 2] > 0.0);
    m3 += (a[f + 3] > 0.0) != (b[f + 3] > 0.0);
  }
  const int mismatches = (m0 + m1) + (m2 + m3);
  return 1.0 - static_cast<double>(mismatches) / static_cast<double>(dim);
}

double SoaSimilarity(InterestMetric metric, const double* a, const double* b,
                     size_t dim, size_t padded_dim) {
  switch (metric) {
    case InterestMetric::kDotProduct:
      return SoaDot(a, b, padded_dim);
    case InterestMetric::kJaccard:
      return SoaJaccard(a, b, padded_dim);
    case InterestMetric::kHamming:
      return SoaHamming(a, b, dim, padded_dim);
  }
  return 0.0;
}

void SoaSimilarityOneToMany(InterestMetric metric, const double* q,
                            const double* rows, size_t dim, size_t padded_dim,
                            size_t n, double* out) {
  switch (metric) {
    case InterestMetric::kDotProduct:
      for (size_t i = 0; i < n; ++i) {
        out[i] = SoaDot(q, rows + i * padded_dim, padded_dim);
      }
      return;
    case InterestMetric::kJaccard:
      for (size_t i = 0; i < n; ++i) {
        out[i] = SoaJaccard(q, rows + i * padded_dim, padded_dim);
      }
      return;
    case InterestMetric::kHamming:
      for (size_t i = 0; i < n; ++i) {
        out[i] = SoaHamming(q, rows + i * padded_dim, dim, padded_dim);
      }
      return;
  }
}

double MaskedMatchScore(const double* interests,
                        std::span<const uint64_t> mask_words) {
  // Ascending set-bit iteration reproduces MatchScore's sorted-unique
  // keyword walk addition-for-addition (bit-identical sums).
  double s = 0.0;
  for (size_t w = 0; w < mask_words.size(); ++w) {
    uint64_t bits = mask_words[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      s += interests[w * 64 + static_cast<size_t>(b)];
      bits &= bits - 1;
    }
  }
  return s;
}

std::vector<KeywordId> UnionKeywords(const SpatialSocialNetwork& ssn,
                                     const std::vector<PoiId>& pois) {
  std::vector<KeywordId> out;
  for (PoiId id : pois) {
    const auto& kws = ssn.poi(id).keywords;
    out.insert(out.end(), kws.begin(), kws.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace gpssn
