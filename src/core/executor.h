// Copyright 2026 The gpssn Authors.
//
// GpssnBatchExecutor: the concurrent batch-query entry point. A
// work-stealing TaskScheduler (common/task_scheduler.h) in which every
// worker owns one pooled GpssnProcessor — reusing its Dijkstra/BFS arenas
// across queries — over the shared immutable PoiIndex/SocialIndex. Query
// root tasks enter the scheduler's deadline-aware injector (earliest
// deadline first), so under overload the queries that can still make their
// deadline run first. Supports submit-many/wait-all, per-query completion
// callbacks, per-query deadlines with cooperative cancellation
// (QueryOptions::deadline, polled inside the processor's descent loops),
// batch-wide cancellation, and aggregation of per-query QueryStats into a
// BatchStats (latency percentiles, throughput, pruning-counter totals).
//
// Threading model: the indexes are immutable after construction, so workers
// share them without synchronization. Each worker aggregates into its own
// cache-line-padded lane — no locks or atomics on the hot path; lanes are
// merged on Wait(), after the scheduler's drain barrier has published them.
// The executor therefore owns no mutex of its own: every lock it relies on
// lives inside TaskScheduler, behind the capability-annotated wrappers of
// common/sync.h (checked by Clang TSA under GPSSN_THREAD_SAFETY). The only
// shared mutable executor state is the cancel_ flag, a plain relaxed
// atomic: it is a cooperative latency hint, and the scheduler's WaitAll
// drain is the ordering barrier for everything the workers wrote.

#ifndef GPSSN_CORE_EXECUTOR_H_
#define GPSSN_CORE_EXECUTOR_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/task_scheduler.h"
#include "common/timer.h"
#include "core/query.h"

namespace gpssn {

struct BatchExecutorOptions {
  /// Worker-pool size (= number of pooled processors).
  int num_workers = 4;
  /// Base processor options applied to every query (per-query deadlines
  /// and the batch cancel flag are layered on top).
  QueryOptions query;
  /// Deadline applied to queries submitted without an explicit one;
  /// <= 0 means no deadline. Deadlines are armed at SUBMIT time, so queue
  /// waiting counts against them.
  double default_deadline_seconds = 0.0;
  /// Lets each query publish its refinement centers as stealable morsels
  /// on the SAME scheduler (QueryOptions::scheduler = the executor's
  /// scheduler). Workers prefer queued query root tasks over morsels, so a
  /// saturated batch runs exactly like sharing-off (one publish/retire per
  /// query, zero queued helper tasks); only genuinely idle workers — the
  /// batch tail, or a small batch on a big box — steal morsels and cut
  /// per-query latency. Answers stay byte-identical either way.
  bool intra_query_sharing = false;
};

/// Outcome of one query of a batch, in submission order.
struct BatchQueryResult {
  GpssnQuery query;
  /// OK, InvalidArgument, DeadlineExceeded, or Cancelled.
  Status status;
  /// Meaningful only when status.ok().
  GpssnAnswer answer;
  QueryStats stats;
  /// Submit-to-completion wall time (includes queue waiting).
  double latency_seconds = 0.0;
  /// Index of the worker that ran the query.
  int worker = -1;
};

/// Batch-level aggregate: counts by outcome, wall-clock throughput,
/// latency percentiles, and the sum of every per-query pruning counter.
struct BatchStats {
  uint64_t queries = 0;
  uint64_t succeeded = 0;          // status.ok().
  uint64_t answers_found = 0;      // answer.found among the succeeded.
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;             // Any other non-OK status.

  /// First-submit-to-Wait wall time and the derived aggregate throughput.
  double wall_seconds = 0.0;
  double throughput_qps = 0.0;

  /// Submit-to-completion latency distribution (seconds).
  double latency_mean_seconds = 0.0;
  double latency_p50_seconds = 0.0;
  double latency_p95_seconds = 0.0;
  double latency_p99_seconds = 0.0;
  double latency_max_seconds = 0.0;

  /// Per-query QueryStats summed across the batch (cpu_seconds is the sum
  /// of per-query CPU times, i.e. aggregate work, not wall time).
  QueryStats totals;

  /// Scheduler activity during this batch (deltas of the scheduler's
  /// cumulative counters between the first Submit and Wait): work-stealing
  /// traffic and intra-query morsel sharing.
  uint64_t scheduler_tasks_stolen = 0;
  uint64_t scheduler_morsel_visits = 0;
  uint64_t scheduler_sources_published = 0;

  std::string ToString() const;
};

/// Concurrent batch executor over one pair of immutable indexes. Not
/// itself thread-safe: one thread drives Submit/Wait (the workers are
/// internal). Reusable: Wait() ends one batch and the next Submit starts
/// another.
class GpssnBatchExecutor {
 public:
  /// Completion callback, invoked on the worker thread right after the
  /// result slot is filled. Must be thread-safe against other callbacks.
  using Callback = std::function<void(const BatchQueryResult&)>;

  /// Both indexes must be built over the same SpatialSocialNetwork and
  /// must outlive the executor.
  GpssnBatchExecutor(const PoiIndex* poi_index,
                     const SocialIndex* social_index,
                     const BatchExecutorOptions& options = {});
  ~GpssnBatchExecutor();

  GPSSN_DISALLOW_COPY_AND_MOVE(GpssnBatchExecutor);

  int num_workers() const { return scheduler_.num_threads(); }

  /// Enqueues one query under the default deadline; returns its index in
  /// the batch result vector.
  size_t Submit(const GpssnQuery& query);
  /// Enqueues one query with an explicit deadline (seconds from now;
  /// <= 0 = none) and an optional completion callback.
  size_t Submit(const GpssnQuery& query, double deadline_seconds,
                Callback callback = nullptr);

  /// Blocks until every submitted query has finished; returns the results
  /// in submission order and (optionally) the batch aggregate, then resets
  /// for the next batch.
  std::vector<BatchQueryResult> Wait(BatchStats* stats = nullptr);

  /// Submit() every query, then Wait().
  std::vector<BatchQueryResult> ExecuteAll(std::span<const GpssnQuery> queries,
                                           BatchStats* stats = nullptr);

  /// Raises the batch cancel flag: queued and in-flight queries finish
  /// with a Cancelled status (in-flight ones at their next cooperative
  /// poll). Wait() clears the flag for the next batch.
  void CancelAll() { cancel_.store(true, std::memory_order_relaxed); }  // gpssn-lint: relaxed(cooperative cancel flag; latency not ordering)

 private:
  // Per-worker aggregation lane. Each worker writes only its own lane
  // while the batch runs (lock-free by partitioning); Wait() reads them
  // after the pool barrier.
  struct alignas(64) WorkerLane {
    QueryStats totals;
    std::vector<double> latencies;
    uint64_t succeeded = 0;
    uint64_t answers_found = 0;
    uint64_t deadline_exceeded = 0;
    uint64_t cancelled = 0;
    uint64_t failed = 0;
    void Reset();
  };

  void RunOne(int worker, BatchQueryResult* slot, QueryDeadline deadline,
              WallTimer submit_timer, const Callback& callback);

  const BatchExecutorOptions options_;
  std::vector<std::unique_ptr<GpssnProcessor>> processors_;  // One per worker.
  std::vector<WorkerLane> lanes_;
  std::atomic<bool> cancel_{false};

  // Current batch (owned by the driving thread; workers only touch the
  // stable slots handed to them — deque growth never invalidates those).
  std::deque<BatchQueryResult> results_;
  WallTimer batch_timer_;
  // Scheduler-counter snapshot at the first Submit of the batch; Wait()
  // diffs against it for BatchStats::scheduler_*.
  TaskScheduler::Stats sched_base_;

  TaskScheduler scheduler_;  // Last member: joins before the state above.
};

}  // namespace gpssn

#endif  // GPSSN_CORE_EXECUTOR_H_
