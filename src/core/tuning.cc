#include "core/tuning.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/macros.h"
#include "core/scores.h"

namespace gpssn {

namespace {

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const double rank = p * (values->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values->size() - 1);
  const double frac = rank - lo;
  return (*values)[lo] * (1.0 - frac) + (*values)[hi] * frac;
}

}  // namespace

ParameterSuggestion SuggestParameters(const SpatialSocialNetwork& ssn,
                                      const TuningOptions& options) {
  GPSSN_CHECK(options.percentile > 0.0 && options.percentile < 1.0);
  GPSSN_CHECK(ssn.num_users() > 1 && ssn.num_pois() > 0);
  Rng rng(options.seed);
  ParameterSuggestion suggestion;
  const SocialNetwork& social = ssn.social();

  // --- γ: percentile of pairwise interest scores over friend pairs.
  // Qualifying groups are connected, so friend pairs are the population the
  // threshold actually gates. We want the x-percentile as the value BELOW
  // which x of pairs fall — picking the (1-x) percentile makes a fraction x
  // of friend pairs qualify.
  {
    std::vector<double> scores;
    scores.reserve(options.score_samples);
    int guard = 0;
    while (static_cast<int>(scores.size()) < options.score_samples &&
           guard++ < 20 * options.score_samples) {
      const UserId u = static_cast<UserId>(rng.NextBounded(ssn.num_users()));
      const auto friends = social.Friends(u);
      if (friends.empty()) continue;
      const UserId v = friends[rng.NextBounded(friends.size())];
      scores.push_back(InterestScore(social.Interests(u), social.Interests(v)));
    }
    suggestion.gamma = Percentile(&scores, 1.0 - options.percentile);
  }

  // --- r: percentile of the radius needed to gather target_ball_size POIs
  // around a random POI (a stand-in for the trip-length distribution of a
  // query log).
  std::unique_ptr<DistanceBackend> own_backend;
  const DistanceBackend* backend = options.distance_backend;
  if (backend == nullptr) {
    own_backend = MakeDijkstraBackend(&ssn.road(), &ssn.pois());
    backend = own_backend.get();
  }
  std::unique_ptr<DistanceEngine> engine = backend->CreateEngine();
  {
    std::vector<double> radii;
    for (int s = 0; s < options.radius_samples; ++s) {
      const PoiId center =
          static_cast<PoiId>(rng.NextBounded(ssn.num_pois()));
      // Grow the probe radius geometrically until enough POIs fall in.
      double probe = 0.25;
      for (int iter = 0; iter < 12; ++iter) {
        const auto ball =
            engine->BallWithDistances(ssn.poi(center).position, probe);
        if (static_cast<int>(ball.size()) >= options.target_ball_size) {
          double max_d = 0.0;
          for (const auto& [id, d] : ball) max_d = std::max(max_d, d);
          radii.push_back(max_d);
          break;
        }
        probe *= 2.0;
      }
    }
    suggestion.radius = std::max(1e-6, Percentile(&radii, options.percentile));
  }

  // --- θ: percentile of matching scores between random users and the balls
  // the suggested radius produces.
  {
    std::vector<double> scores;
    scores.reserve(options.score_samples);
    for (int s = 0; s < options.score_samples; ++s) {
      const UserId u = static_cast<UserId>(rng.NextBounded(ssn.num_users()));
      const PoiId center =
          static_cast<PoiId>(rng.NextBounded(ssn.num_pois()));
      const auto ball_dists =
          engine->BallWithDistances(ssn.poi(center).position,
                                    suggestion.radius);
      if (ball_dists.empty()) continue;
      std::vector<PoiId> ball;
      ball.reserve(ball_dists.size());
      for (const auto& [id, d] : ball_dists) ball.push_back(id);
      scores.push_back(
          MatchScore(social.Interests(u), UnionKeywords(ssn, ball)));
    }
    suggestion.theta = Percentile(&scores, 1.0 - options.percentile);
  }

  return suggestion;
}

}  // namespace gpssn
