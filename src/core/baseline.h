// Copyright 2026 The gpssn Authors.
//
// The Baseline competitor of Section 6.3: enumerate all user sets S of size
// τ containing u_q that satisfy γ, all POI ball sets R, and return the pair
// with the smallest maximum distance. Running it to completion is
// infeasible at realistic scale (the paper estimates ~1.9e13 days), so —
// exactly as the paper does — its cost is ESTIMATED by sampling: average
// the per-pair cost over `samples` random pairs (S, R) and multiply by the
// number of candidate pairs.
//
// A genuinely exhaustive oracle (BruteForceGpssn) is also provided for
// small networks; the test suite uses it to verify the indexed processor's
// answers.

#ifndef GPSSN_CORE_BASELINE_H_
#define GPSSN_CORE_BASELINE_H_

#include "core/options.h"
#include "core/query.h"
#include "core/stats.h"
#include "roadnet/distance_backend.h"
#include "ssn/spatial_social_network.h"

namespace gpssn {

/// Exhaustive exact GP-SSN evaluation (no indexes, no pruning). Exponential
/// in τ — only usable on small networks; `max_groups` caps the enumeration
/// as a safety net (sets `truncated` in stats when hit). `backend`
/// (optional) selects the exact-distance backend; null = bounded Dijkstra.
GpssnAnswer BruteForceGpssn(const SpatialSocialNetwork& ssn,
                            const GpssnQuery& query,
                            int64_t max_groups = 5000000,
                            QueryStats* stats = nullptr,
                            const DistanceBackend* backend = nullptr);

/// Sampling-based cost estimate of the full Baseline run (Section 6.3).
struct BaselineEstimate {
  /// log10 of the number of candidate (S, R) pairs
  /// (= C(m−1, τ−1) · n; stored as log10 because the value overflows).
  double log10_candidate_pairs = 0.0;
  double avg_pair_cpu_seconds = 0.0;  // Measured over the samples.
  double avg_pair_ios = 0.0;
  /// avg_pair_cpu_seconds · pairs, in seconds (may be +inf).
  double estimated_total_cpu_seconds = 0.0;
  double estimated_total_ios = 0.0;
  /// Convenience: estimated total CPU in days.
  double estimated_total_days = 0.0;
};

BaselineEstimate EstimateBaselineCost(const SpatialSocialNetwork& ssn,
                                      const GpssnQuery& query,
                                      int samples = 100, uint64_t seed = 1);

/// log10 of the binomial coefficient C(n, k) (exact via lgamma).
double Log10Binomial(int64_t n, int64_t k);

}  // namespace gpssn

#endif  // GPSSN_CORE_BASELINE_H_
