#include "core/database.h"

#include "common/macros.h"

namespace gpssn {

GpssnDatabase::GpssnDatabase(SpatialSocialNetwork ssn)
    : GpssnDatabase(std::move(ssn), GpssnBuildOptions{}) {}

GpssnDatabase::GpssnDatabase(SpatialSocialNetwork ssn,
                             const GpssnBuildOptions& options)
    : ssn_(std::move(ssn)) {
  GPSSN_CHECK_OK(ssn_.Validate());
  GPSSN_CHECK(options.num_road_pivots >= 1);
  GPSSN_CHECK(options.num_social_pivots >= 1);

  PivotSelectOptions select = options.pivot_select;
  select.seed = options.seed;
  std::vector<VertexId> road_pivot_ids;
  std::vector<UserId> social_pivot_ids;
  if (options.optimize_pivots) {
    road_pivot_ids =
        SelectRoadPivots(ssn_.road(), options.num_road_pivots, select);
    social_pivot_ids =
        SelectSocialPivots(ssn_.social(), options.num_social_pivots, select);
  } else {
    road_pivot_ids =
        RandomRoadPivots(ssn_.road(), options.num_road_pivots, options.seed);
    social_pivot_ids = RandomSocialPivots(
        ssn_.social(), options.num_social_pivots, options.seed);
  }
  road_pivots_ = RoadPivotTable(ssn_.road(), std::move(road_pivot_ids));
  social_pivots_ = SocialPivotTable(ssn_.social(), std::move(social_pivot_ids));

  PoiIndexOptions poi_options = options.poi_index;
  poi_options.seed = options.seed;
  poi_index_ = std::make_unique<PoiIndex>(&ssn_, &road_pivots_, poi_options);

  SocialIndexOptions social_options = options.social_index;
  social_options.seed = options.seed;
  social_index_ = std::make_unique<SocialIndex>(&ssn_, &social_pivots_,
                                                &road_pivots_, social_options);

  if (options.distance_backend == DistanceBackendKind::kContractionHierarchy) {
    backend_ = MakeChBackend(&ssn_.road(), &ssn_.pois(), options.ch,
                             options.ch_index_path);
  }
  if (options.distance_cache_entries > 0) {
    DistanceCacheOptions cache_options;
    cache_options.max_entries = options.distance_cache_entries;
    distance_cache_ = std::make_unique<DistanceCache>(cache_options);
  }

  processor_ =
      std::make_unique<GpssnProcessor>(poi_index_.get(), social_index_.get());
}

GpssnDatabase::GpssnDatabase(SpatialSocialNetwork ssn,
                             const GpssnBuildOptions& options,
                             std::vector<VertexId> road_pivot_ids,
                             std::vector<UserId> social_pivot_ids,
                             std::vector<PoiAug> poi_augs)
    : ssn_(std::move(ssn)) {
  GPSSN_CHECK_OK(ssn_.Validate());
  road_pivots_ = RoadPivotTable(ssn_.road(), std::move(road_pivot_ids));
  social_pivots_ =
      SocialPivotTable(ssn_.social(), std::move(social_pivot_ids));

  PoiIndexOptions poi_options = options.poi_index;
  poi_options.seed = options.seed;
  poi_index_ = std::make_unique<PoiIndex>(&ssn_, &road_pivots_, poi_options,
                                          std::move(poi_augs));

  SocialIndexOptions social_options = options.social_index;
  social_options.seed = options.seed;
  social_index_ = std::make_unique<SocialIndex>(&ssn_, &social_pivots_,
                                                &road_pivots_, social_options);

  if (options.distance_backend == DistanceBackendKind::kContractionHierarchy) {
    backend_ = MakeChBackend(&ssn_.road(), &ssn_.pois(), options.ch,
                             options.ch_index_path);
  }
  if (options.distance_cache_entries > 0) {
    DistanceCacheOptions cache_options;
    cache_options.max_entries = options.distance_cache_entries;
    distance_cache_ = std::make_unique<DistanceCache>(cache_options);
  }

  processor_ =
      std::make_unique<GpssnProcessor>(poi_index_.get(), social_index_.get());
}

QueryOptions GpssnDatabase::WithDatabaseDefaults(QueryOptions options) {
  if (options.distance_backend == nullptr) {
    options.distance_backend = backend_.get();
  }
  if (options.distance_cache == nullptr) {
    options.distance_cache = distance_cache_.get();
  }
  return options;
}

Result<GpssnAnswer> GpssnDatabase::Query(const GpssnQuery& query,
                                         const QueryOptions& options,
                                         QueryStats* stats) {
  return processor_->Execute(query, WithDatabaseDefaults(options), stats);
}

Result<GpssnAnswer> GpssnDatabase::Query(const GpssnQuery& query,
                                         QueryStats* stats) {
  return processor_->Execute(query, WithDatabaseDefaults(QueryOptions{}),
                             stats);
}

Result<std::vector<GpssnAnswer>> GpssnDatabase::QueryTopK(
    const GpssnQuery& query, int k, const QueryOptions& options,
    QueryStats* stats) {
  return processor_->ExecuteTopK(query, k, WithDatabaseDefaults(options),
                                 stats);
}

std::vector<BatchQueryResult> GpssnDatabase::QueryBatch(
    std::span<const GpssnQuery> queries, const BatchExecutorOptions& options,
    BatchStats* stats) {
  BatchExecutorOptions batch_options = options;
  batch_options.query = WithDatabaseDefaults(batch_options.query);
  GpssnBatchExecutor executor(poi_index_.get(), social_index_.get(),
                              batch_options);
  return executor.ExecuteAll(queries, stats);
}

Status GpssnDatabase::UpdateUserInterests(UserId u,
                                          std::span<const double> interests) {
  MutexLock lock(maintenance_mu_);
  GPSSN_RETURN_NOT_OK(ssn_.UpdateUserInterests(u, interests));
  return social_index_->UpdateUserInterests(u);
}

Result<PoiId> GpssnDatabase::AddPoi(const EdgePosition& position,
                                    std::vector<KeywordId> keywords) {
  MutexLock lock(maintenance_mu_);
  GPSSN_ASSIGN_OR_RETURN(const PoiId id,
                         ssn_.AddPoi(position, std::move(keywords)));
  GPSSN_RETURN_NOT_OK(poi_index_->InsertPoi(id));
  // Fold the new POI into the backend (the CH backend's ball index grows
  // delta buckets) and bump its generation so every cached engine —
  // processor-plugged or batch-lane — is recreated before its next use.
  if (backend_ != nullptr) backend_->NotifyPoisMutated();
  // The processor caches a POI locator; rebuild it over the grown set.
  processor_ =
      std::make_unique<GpssnProcessor>(poi_index_.get(), social_index_.get());
  // Cached (user, poi) distances to OTHER POIs stay valid (the road graph
  // is unchanged — the new POI only lands on an existing edge), so a
  // wholesale Clear() would throw away every hit the batch workers have
  // paid for. Invalidate surgically instead: bump the new id's generation
  // bucket so any stale column under a recycled or colliding id can never
  // serve, and let everything else keep hitting.
  if (distance_cache_ != nullptr) distance_cache_->InvalidatePoi(id);
  return id;
}

}  // namespace gpssn
