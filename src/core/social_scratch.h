// Copyright 2026 The gpssn Authors.
//
// Per-query social scoring scratch: a flat structure-of-arrays view of the
// surviving candidate users' interest vectors plus candidate-local
// adjacency bitsets and a triangular pairwise Interest_Score memo. Built
// once per query from the post-filter candidate set (QueryOptions::
// vectorized_social_kernels), then shared by ApplyCorollary2, the ESU
// group enumerator, and the refinement matching-score checks, so:
//
//   - every pairwise Interest_Score (Eq. 1) is evaluated at most once per
//     query, through the auto-vectorizable SoA kernels of core/scores.h
//     (64-byte-aligned rows, zero-padded to a multiple of kSoaLaneWidth);
//   - ESU connectivity / extension tests become word-parallel
//     AND / ANDNOT loops over candidate-local adjacency bitsets instead of
//     per-edge hash or CSR probes;
//   - MatchScore against a ball's union keywords becomes a masked row sum
//     (bit-identical to the scalar MatchScore — see MaskedMatchScore).
//
// Candidates are held sorted by user id, so ascending bitset iteration
// reproduces the CSR Friends() visit order and group enumeration emits the
// exact same group sequence as the scalar path.
//
// Not thread-safe: Build and PairPasses mutate state and must run on one
// thread (the query's serial sections). The read-only accessors (Row,
// MatchRow, adjacency words) are safe to call concurrently from the
// intra-query refinement lanes once building is done.

#ifndef GPSSN_CORE_SOCIAL_SCRATCH_H_
#define GPSSN_CORE_SOCIAL_SCRATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvector.h"
#include "core/options.h"
#include "socialnet/social_graph.h"

namespace gpssn {

class SocialScratch {
 public:
  SocialScratch() = default;

  /// Rebuilds the scratch for one query over `candidates` (unique user
  /// ids; any order — they are sorted internally). Reuses buffers across
  /// queries. Records social.interests_version() for staleness checks.
  void Build(const SocialNetwork& social, const GpssnQuery& query,
             std::span<const UserId> candidates);

  bool built() const { return built_; }
  void Invalidate() { built_ = false; }

  /// True when the underlying network's interest vectors changed after
  /// Build (SetInterests / WithInterests bump interests_version). A stale
  /// scratch must not serve another query.
  bool StaleFor(const SocialNetwork& social) const {
    return !built_ || &social != social_ ||
           social.interests_version() != built_version_;
  }

  int size() const { return static_cast<int>(users_.size()); }
  UserId UserAt(int i) const { return users_[i]; }
  /// Candidate index of user `u`, or -1 when u is not a candidate.
  int IndexOf(UserId u) const {
    return index_stamp_[u] == generation_ ? index_of_[u] : -1;
  }

  size_t dim() const { return dim_; }
  size_t padded_dim() const { return padded_dim_; }
  /// 64-byte-aligned interest row of candidate `i`, zero-padded to
  /// padded_dim().
  const double* Row(int i) const {
    return rows_ + static_cast<size_t>(i) * padded_dim_;
  }

  /// Memoized pairwise predicate Interest_Score(i, j) >= γ under the
  /// query's metric. Each unordered pair is scored at most once per query.
  bool PairPasses(int i, int j);

  /// Fresh (non-memoized) pair evaluations since Build.
  uint64_t pairs_scored() const { return pairs_scored_; }

  // --- Candidate-local adjacency (one n-bit row per candidate).
  size_t adj_words() const { return adj_words_; }
  const uint64_t* AdjacencyRow(int i) const {
    return adj_.data() + static_cast<size_t>(i) * adj_words_;
  }
  bool Adjacent(int i, int j) const {
    return (AdjacencyRow(i)[static_cast<size_t>(j) >> 6] >>
            (static_cast<size_t>(j) & 63)) &
           1ULL;
  }

  /// Fills `mask` (padded_dim() bits) with the keyword ids of `keywords`
  /// that fall inside [0, dim()). With sorted unique keywords the masked
  /// row sum MatchRow() is then bit-identical to MatchScore.
  void BuildKeywordMask(const std::vector<KeywordId>& keywords,
                        DynamicBitset* mask) const;

  /// Eq. 2 for candidate `i` against a keyword mask.
  double MatchRow(int i, const DynamicBitset& mask) const {
    return MaskedMatchScoreRow(Row(i), mask);
  }

  static double MaskedMatchScoreRow(const double* row,
                                    const DynamicBitset& mask);

 private:
  size_t TriIndex(int i, int j) const;  // Requires i < j.

  bool built_ = false;
  const SocialNetwork* social_ = nullptr;
  uint64_t built_version_ = 0;
  InterestMetric metric_ = InterestMetric::kDotProduct;
  double gamma_ = 0.0;

  std::vector<UserId> users_;  // Sorted ascending.
  // User id -> candidate index, generation-stamped (O(1) invalidation).
  uint32_t generation_ = 0;
  std::vector<uint32_t> index_stamp_;
  std::vector<int32_t> index_of_;

  size_t dim_ = 0;
  size_t padded_dim_ = 0;
  std::vector<double> rows_storage_;  // Over-allocated for alignment.
  double* rows_ = nullptr;            // 64-byte-aligned view.

  size_t adj_words_ = 0;
  std::vector<uint64_t> adj_;  // n rows of adj_words_ words.

  // Triangular pair memo: 0 = unknown, 1 = pass, 2 = fail.
  std::vector<uint8_t> memo_;
  uint64_t pairs_scored_ = 0;
};

}  // namespace gpssn

#endif  // GPSSN_CORE_SOCIAL_SCRATCH_H_
