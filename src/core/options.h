// Copyright 2026 The gpssn Authors.
//
// Query parameters (Definition 5 / Table 3) and processor options,
// including per-rule pruning switches used by the ablation benchmarks.

#ifndef GPSSN_CORE_OPTIONS_H_
#define GPSSN_CORE_OPTIONS_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "roadnet/types.h"

namespace gpssn {

class PruningAuditor;   // core/audit.h
class DistanceBackend;  // roadnet/distance_backend.h
class DistanceCache;    // roadnet/distance_cache.h
class TaskScheduler;    // common/task_scheduler.h

/// Cooperative per-query deadline. The processor polls Expired() at its
/// descent-loop, heap-round, and refinement boundaries and abandons the
/// query with a DeadlineExceeded status once it fires. Default-constructed
/// deadlines never expire; cheap to copy.
class QueryDeadline {
 public:
  QueryDeadline() = default;

  /// A deadline `seconds` from now (wall clock, monotonic).
  static QueryDeadline After(double seconds) {
    QueryDeadline d;
    d.armed_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  bool armed() const { return armed_; }
  bool Expired() const {
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }
  /// The absolute expiry instant (meaningful only when armed); feeds the
  /// scheduler's earliest-deadline-first task priority.
  std::chrono::steady_clock::time_point at() const { return at_; }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// How the common-interest score between two users is computed. The paper
/// uses the dot product (Eq. 1) and names Jaccard similarity and Hamming
/// distance as future work; all three are supported:
///   kDotProduct — Eq. 1;
///   kJaccard    — weighted Jaccard Σ_f min(w_f) / Σ_f max(w_f), in [0, 1];
///   kHamming    — 1 − hamming(supp(a), supp(b)) / d over the topic
///                 supports, in [0, 1] (similarity form, so the γ "at
///                 least" predicate applies uniformly).
enum class InterestMetric {
  kDotProduct,
  kJaccard,
  kHamming,
};

/// One GP-SSN query (Definition 5).
struct GpssnQuery {
  /// The query issuer u_q; always a member of the answer set S.
  UserId issuer = kInvalidUser;
  /// Group size τ (number of users in S, issuer included).
  int tau = 5;
  /// Interest-score threshold γ between any two users of S.
  double gamma = 0.3;
  /// Metric behind γ. Note Jaccard scores live in [0, 1].
  InterestMetric metric = InterestMetric::kDotProduct;
  /// Matching-score threshold θ between each user of S and the POI set R.
  double theta = 0.3;
  /// Spatial radius r: answer POI sets are road-network balls B(o_i, r)
  /// (pairwise distance < 2r by the triangle inequality, per Def. 5).
  double radius = 2.0;
};

/// Individual pruning rules, switchable for ablation studies. All default
/// on; disabling a rule never changes answers, only cost.
struct PruningFlags {
  bool interest_score = true;   // Lemma 3 / Corollary 1 / Lemma 8.
  bool social_distance = true;  // Lemma 4 / Lemma 9.
  bool match_score = true;      // Lemma 1 / Lemma 6.
  bool road_distance = true;    // Lemma 5 / Lemma 7 / δ-based heap cut.
};

/// Processor knobs.
struct QueryOptions {
  PruningFlags pruning;
  /// LRU buffer pool capacity (pages) for the I/O metric.
  uint32_t buffer_pool_pages = 64;
  /// Refinement safety caps (exact answers are unaffected unless a cap is
  /// hit, which is reported in QueryStats::truncated).
  int64_t max_groups = 100000;
  /// Caps the number of EXACT distance evaluations in refinement.
  int64_t max_refine_pairs = 100000;
  /// Optional subset-sampling refinement (the paper's future-work
  /// extension): sample connected groups instead of exhaustive enumeration.
  bool subset_sampling = false;
  int subset_samples = 4000;
  uint64_t seed = 1;
  /// Cooperative deadline (see QueryDeadline). Unarmed by default.
  QueryDeadline deadline;
  /// Optional external cancel flag (e.g. batch shutdown), polled at the
  /// same loop boundaries as the deadline; fires a Cancelled status. The
  /// pointee must outlive the query.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional exact-distance backend (roadnet/distance_backend.h). Null
  /// selects the processor's built-in bounded Dijkstra (bit-exact seed
  /// behaviour); a CH backend accelerates refinement's user→ball-member
  /// distance evaluations on large road networks. The backend is shared
  /// and immutable (the processor creates a private engine from it); the
  /// pointee must outlive every query using it.
  const DistanceBackend* distance_backend = nullptr;
  /// Optional shared cross-query (user, poi) → distance cache
  /// (roadnet/distance_cache.h). Thread-safe: one cache may be shared by
  /// all workers of a batch executor. Null disables caching. The pointee
  /// must outlive the query; dynamic maintenance invalidates per POI
  /// column (GpssnDatabase::AddPoi calls InvalidatePoi, and stale entries
  /// are dropped lazily on lookup), so unrelated rows survive inserts.
  DistanceCache* distance_cache = nullptr;
  /// Optional pruning-soundness auditor (core/audit.h): the processor
  /// notifies it on every pruned candidate and it re-tests a sample against
  /// the brute-force predicates. Null disables auditing; GPSSN_AUDIT builds
  /// install a per-processor default when this is null. Not thread-safe —
  /// do not share one auditor across concurrent queries (the intra-query
  /// refinement lanes serialize their notifications behind a mutex). The
  /// pointee must outlive the query.
  PruningAuditor* auditor = nullptr;
  /// Intra-query parallel refinement: when non-null, the refinement center
  /// loop publishes its centers as stealable morsels on this scheduler
  /// (common/task_scheduler.h). The calling thread always runs lane 0;
  /// scheduler workers with nothing better to do steal morsels as extra
  /// lanes, and a fully busy scheduler costs the query exactly one
  /// publish/retire registry operation — no queued helper tasks, no
  /// oversubscription, no deadlock. Deterministic: the reported answers
  /// are byte-identical to the serial path at any worker count (see
  /// DESIGN.md §10). Null (default) keeps the seed-exact serial loop. On a
  /// single-core host (hardware_concurrency <= 1) the query automatically
  /// degenerates to the serial path — lanes could only timeshare the one
  /// core — unless intra_query_workers explicitly requests them. The
  /// scheduler must outlive the query.
  TaskScheduler* scheduler = nullptr;
  /// Caps the refinement lanes (claiming caller + morsel thieves) when
  /// `scheduler` is set; 0 means scheduler size + 1 (and serial on a
  /// single-core host); an explicit value also forces the morsel path on a
  /// single-core host (used by the determinism/TSAN suites).
  int intra_query_workers = 0;
  /// Vectorized social kernels: build a per-query SocialScratch (SoA
  /// interest matrix + pairwise-score memo + adjacency bitsets) and route
  /// ApplyCorollary2 / EnumerateGroups / MatchScore through it. The
  /// matching-score path is bit-identical to the scalar kernels; pairwise
  /// Interest_Score sums may differ by final-ULP rounding (different
  /// summation order), which can flip exact-threshold ties. Default off =
  /// seed-exact scalar kernels.
  bool vectorized_social_kernels = false;
  /// Candidate-count ceiling for the SocialScratch (its pair memo is
  /// O(n²/2) bytes); above it the query falls back to the scalar kernels.
  int social_scratch_max_candidates = 4096;
};

}  // namespace gpssn

#endif  // GPSSN_CORE_OPTIONS_H_
