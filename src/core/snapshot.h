// Copyright 2026 The gpssn Authors.
//
// Database snapshots: persist a built GpssnDatabase so a process restart
// skips the expensive parts of the offline build. The snapshot stores the
// network (gpssn-v1 body), the selected pivot ids, the build options that
// shape the indexes, and the per-POI sup_K / sub_K keyword sets (the n
// bounded ball queries that dominate build time). On load, pivot tables,
// tree shapes, and node aggregates are recomputed deterministically from
// the stored seed.

#ifndef GPSSN_CORE_SNAPSHOT_H_
#define GPSSN_CORE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/database.h"

namespace gpssn {

/// Writes a snapshot of `db` to `path`.
Status SaveSnapshot(const GpssnDatabase& db, const std::string& path);

/// Restores a database from a snapshot written by SaveSnapshot. Queries
/// against the restored database are identical to the original's.
Result<std::unique_ptr<GpssnDatabase>> LoadSnapshot(const std::string& path);

}  // namespace gpssn

#endif  // GPSSN_CORE_SNAPSHOT_H_
