#include "core/refinement.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "common/rng.h"
#include "core/scores.h"

namespace gpssn {

namespace {

// Sparse view of an interest vector: the nonzero (topic, weight) entries
// plus the total weight. Real interest vectors hold a handful of topics, so
// pairwise scores via sorted-merge are ~25x cheaper than dense loops.
struct SparseInterests {
  std::vector<std::pair<int, double>> entries;  // Sorted by topic.
  double total = 0.0;
  int dim = 0;

  static SparseInterests From(std::span<const double> w) {
    SparseInterests out;
    out.dim = static_cast<int>(w.size());
    for (size_t f = 0; f < w.size(); ++f) {
      if (w[f] > 0.0) {
        out.entries.emplace_back(static_cast<int>(f), w[f]);
        out.total += w[f];
      }
    }
    return out;
  }
};

double SparseSimilarity(InterestMetric metric, const SparseInterests& a,
                        const SparseInterests& b) {
  double dot = 0.0, min_sum = 0.0;
  int common_support = 0;
  size_t i = 0, j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    if (a.entries[i].first < b.entries[j].first) {
      ++i;
    } else if (a.entries[i].first > b.entries[j].first) {
      ++j;
    } else {
      dot += a.entries[i].second * b.entries[j].second;
      min_sum += std::min(a.entries[i].second, b.entries[j].second);
      ++common_support;
      ++i;
      ++j;
    }
  }
  switch (metric) {
    case InterestMetric::kDotProduct:
      return dot;
    case InterestMetric::kJaccard: {
      // Weighted Jaccard via Σmax = Σa + Σb − Σmin (non-negative entries).
      const double max_sum = a.total + b.total - min_sum;
      return max_sum > 0.0 ? min_sum / max_sum : 1.0;
    }
    case InterestMetric::kHamming: {
      if (a.dim == 0) return 1.0;
      const int mismatches = static_cast<int>(a.entries.size()) +
                             static_cast<int>(b.entries.size()) -
                             2 * common_support;
      return 1.0 - static_cast<double>(mismatches) / a.dim;
    }
  }
  return 0.0;
}

}  // namespace

void ApplyCorollary2(const SocialNetwork& social, const GpssnQuery& query,
                     std::vector<UserId>* candidates, QueryStats* stats) {
  const size_t count = candidates->size();
  if (count == 0) return;
  // fail_threshold = |S'| − τ + 1 (Corollary 2).
  const int64_t fail_threshold =
      static_cast<int64_t>(count) - query.tau + 1;
  if (fail_threshold <= 0) return;
  std::vector<SparseInterests> sparse(count);
  for (size_t i = 0; i < count; ++i) {
    sparse[i] = SparseInterests::From(social.Interests((*candidates)[i]));
  }
  std::vector<bool> pruned(count, false);
  std::vector<int64_t> failures(count, 0);
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      if (SparseSimilarity(query.metric, sparse[i], sparse[j]) <
          query.gamma) {
        ++failures[i];
        ++failures[j];
      }
    }
  }
  std::vector<UserId> kept;
  kept.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const UserId u = (*candidates)[i];
    if (u != query.issuer && failures[i] >= fail_threshold) {
      pruned[i] = true;
      if (stats != nullptr) ++stats->users_pruned_corollary2;
      continue;
    }
    kept.push_back(u);
  }
  *candidates = std::move(kept);
}

namespace {

/// Shared state of the ESU-style enumeration.
class GroupEnumerator {
 public:
  GroupEnumerator(const SocialNetwork& social, const GpssnQuery& query,
                  const std::vector<UserId>& candidates, int64_t max_groups,
                  std::vector<std::vector<UserId>>* out)
      : social_(social),
        query_(query),
        max_groups_(max_groups),
        out_(out),
        in_candidates_(social.num_users(), false),
        seen_(social.num_users(), false),
        sparse_(social.num_users()) {
    for (UserId u : candidates) in_candidates_[u] = true;
    in_candidates_[query.issuer] = true;
    for (UserId u = 0; u < social.num_users(); ++u) {
      if (in_candidates_[u]) {
        sparse_[u] = SparseInterests::From(social.Interests(u));
      }
    }
  }

  /// Returns false when truncated by max_groups.
  bool Run() {
    sub_.push_back(query_.issuer);
    seen_[query_.issuer] = true;
    std::vector<UserId> ext;
    for (UserId v : social_.Friends(query_.issuer)) {
      if (in_candidates_[v] && !seen_[v]) {
        seen_[v] = true;
        ext.push_back(v);
        rollback_.push_back(v);
      }
    }
    const bool complete = Extend(&ext);
    return complete;
  }

 private:
  bool Extend(std::vector<UserId>* ext) {
    if (static_cast<int>(sub_.size()) == query_.tau) {
      std::vector<UserId> group = sub_;
      std::sort(group.begin(), group.end());
      out_->push_back(std::move(group));
      return static_cast<int64_t>(out_->size()) < max_groups_;
    }
    // ESU: repeatedly take one extension vertex; sibling branches never see
    // it again (uniqueness), and its exclusive neighbors join the extension.
    std::vector<UserId> local = *ext;
    while (!local.empty()) {
      const UserId w = local.back();
      local.pop_back();
      // Pairwise interest predicate: any group containing w must pass γ
      // against every current member.
      bool compatible = true;
      for (UserId member : sub_) {
        if (SparseSimilarity(query_.metric, sparse_[w], sparse_[member]) <
            query_.gamma) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;

      // Exclusive neighbors of w (never seen along this path).
      const size_t rollback_mark = rollback_.size();
      std::vector<UserId> next = local;
      for (UserId v : social_.Friends(w)) {
        if (in_candidates_[v] && !seen_[v]) {
          seen_[v] = true;
          rollback_.push_back(v);
          next.push_back(v);
        }
      }
      sub_.push_back(w);
      const bool keep_going = Extend(&next);
      sub_.pop_back();
      // Un-see the vertices this branch introduced (w itself stays seen for
      // the remaining siblings — ESU uniqueness).
      while (rollback_.size() > rollback_mark) {
        seen_[rollback_.back()] = false;
        rollback_.pop_back();
      }
      if (!keep_going) return false;
    }
    return true;
  }

  const SocialNetwork& social_;
  const GpssnQuery& query_;
  int64_t max_groups_;
  std::vector<std::vector<UserId>>* out_;
  std::vector<bool> in_candidates_;
  std::vector<bool> seen_;
  std::vector<SparseInterests> sparse_;
  std::vector<UserId> sub_;
  std::vector<UserId> rollback_;
};

}  // namespace

bool EnumerateGroups(const SocialNetwork& social, const GpssnQuery& query,
                     const std::vector<UserId>& candidates, int64_t max_groups,
                     std::vector<std::vector<UserId>>* out) {
  GPSSN_CHECK(out != nullptr);
  out->clear();
  if (query.tau == 1) {
    out->push_back({query.issuer});
    return true;
  }
  GroupEnumerator enumerator(social, query, candidates, max_groups, out);
  return enumerator.Run();
}

void SampleGroups(const SocialNetwork& social, const GpssnQuery& query,
                  const std::vector<UserId>& candidates, int samples,
                  uint64_t seed, std::vector<std::vector<UserId>>* out) {
  GPSSN_CHECK(out != nullptr);
  out->clear();
  if (query.tau == 1) {
    out->push_back({query.issuer});
    return;
  }
  std::vector<bool> in_candidates(social.num_users(), false);
  for (UserId u : candidates) in_candidates[u] = true;
  in_candidates[query.issuer] = true;

  Rng rng(seed);
  std::set<std::vector<UserId>> unique;
  for (int s = 0; s < samples; ++s) {
    std::vector<UserId> group = {query.issuer};
    std::vector<UserId> frontier;
    auto add_frontier = [&](UserId u) {
      for (UserId v : social.Friends(u)) {
        if (!in_candidates[v]) continue;
        if (std::find(group.begin(), group.end(), v) != group.end()) continue;
        frontier.push_back(v);
      }
    };
    add_frontier(query.issuer);
    while (static_cast<int>(group.size()) < query.tau && !frontier.empty()) {
      const size_t pick = rng.NextBounded(frontier.size());
      const UserId w = frontier[pick];
      frontier.erase(frontier.begin() + pick);
      if (std::find(group.begin(), group.end(), w) != group.end()) continue;
      bool compatible = true;
      const auto ww = social.Interests(w);
      for (UserId member : group) {
        if (UserSimilarity(query.metric, ww, social.Interests(member)) < query.gamma) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      group.push_back(w);
      add_frontier(w);
    }
    if (static_cast<int>(group.size()) == query.tau) {
      std::sort(group.begin(), group.end());
      unique.insert(std::move(group));
    }
  }
  out->assign(unique.begin(), unique.end());
}

}  // namespace gpssn
