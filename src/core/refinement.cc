#include "core/refinement.h"

#include <algorithm>
#include <bit>
#include <set>

#include "common/macros.h"
#include "common/rng.h"
#include "core/scores.h"

namespace gpssn {

namespace {

// Sparse view of an interest vector: the nonzero (topic, weight) entries
// plus the total weight. Real interest vectors hold a handful of topics, so
// pairwise scores via sorted-merge are ~25x cheaper than dense loops.
struct SparseInterests {
  std::vector<std::pair<int, double>> entries;  // Sorted by topic.
  double total = 0.0;
  int dim = 0;

  static SparseInterests From(std::span<const double> w) {
    SparseInterests out;
    out.dim = static_cast<int>(w.size());
    for (size_t f = 0; f < w.size(); ++f) {
      if (w[f] > 0.0) {
        out.entries.emplace_back(static_cast<int>(f), w[f]);
        out.total += w[f];
      }
    }
    return out;
  }
};

double SparseSimilarity(InterestMetric metric, const SparseInterests& a,
                        const SparseInterests& b) {
  double dot = 0.0, min_sum = 0.0;
  int common_support = 0;
  size_t i = 0, j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    if (a.entries[i].first < b.entries[j].first) {
      ++i;
    } else if (a.entries[i].first > b.entries[j].first) {
      ++j;
    } else {
      dot += a.entries[i].second * b.entries[j].second;
      min_sum += std::min(a.entries[i].second, b.entries[j].second);
      ++common_support;
      ++i;
      ++j;
    }
  }
  switch (metric) {
    case InterestMetric::kDotProduct:
      return dot;
    case InterestMetric::kJaccard: {
      // Weighted Jaccard via Σmax = Σa + Σb − Σmin (non-negative entries).
      const double max_sum = a.total + b.total - min_sum;
      return max_sum > 0.0 ? min_sum / max_sum : 1.0;
    }
    case InterestMetric::kHamming: {
      if (a.dim == 0) return 1.0;
      const int mismatches = static_cast<int>(a.entries.size()) +
                             static_cast<int>(b.entries.size()) -
                             2 * common_support;
      return 1.0 - static_cast<double>(mismatches) / a.dim;
    }
  }
  return 0.0;
}

// The count-based core of Corollary 2 with per-user early termination.
// `fails(i, j)` evaluates the pairwise predicate for candidate positions
// i < j. A user's decision is FINAL as soon as its failure count reaches
// the threshold (removal certain) or cannot reach it with the pairs still
// pending (kept certain); the issuer's decision (kept) is final from the
// start. A pair is skipped only when BOTH endpoints are final, so every
// still-open user sees every one of its pairs — the resulting removed set
// is exactly the one full evaluation produces, at a fraction of the pair
// evaluations.
template <typename FailFn>
void Corollary2Counts(const GpssnQuery& query,
                      const std::vector<UserId>& candidates,
                      int64_t fail_threshold, FailFn&& fails,
                      std::vector<int64_t>* failures) {
  const size_t count = candidates.size();
  std::vector<int64_t> pending(count, static_cast<int64_t>(count) - 1);
  std::vector<char> decided(count, 0);
  size_t undecided = count;
  auto update = [&](size_t k) {
    if (decided[k]) return;
    if (candidates[k] == query.issuer ||
        (*failures)[k] >= fail_threshold ||
        (*failures)[k] + pending[k] < fail_threshold) {
      decided[k] = 1;
      --undecided;
    }
  };
  for (size_t k = 0; k < count; ++k) update(k);
  for (size_t i = 0; i < count && undecided > 0; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      if (decided[i] && decided[j]) continue;
      if (fails(i, j)) {
        ++(*failures)[i];
        ++(*failures)[j];
      }
      --pending[i];
      --pending[j];
      update(i);
      update(j);
      if (undecided == 0) break;
    }
  }
}

}  // namespace

void ApplyCorollary2(const SocialNetwork& social, const GpssnQuery& query,
                     std::vector<UserId>* candidates, QueryStats* stats,
                     SocialScratch* scratch) {
  const size_t count = candidates->size();
  if (count == 0) return;
  // fail_threshold = |S'| − τ + 1 (Corollary 2).
  const int64_t fail_threshold =
      static_cast<int64_t>(count) - query.tau + 1;
  if (fail_threshold <= 0) return;
  std::vector<int64_t> failures(count, 0);
  if (scratch != nullptr && scratch->built()) {
    std::vector<int> sidx(count);
    for (size_t i = 0; i < count; ++i) {
      sidx[i] = scratch->IndexOf((*candidates)[i]);
      GPSSN_CHECK(sidx[i] >= 0);
    }
    Corollary2Counts(
        query, *candidates, fail_threshold,
        [&](size_t i, size_t j) {
          return !scratch->PairPasses(sidx[i], sidx[j]);
        },
        &failures);
  } else {
    std::vector<SparseInterests> sparse(count);
    for (size_t i = 0; i < count; ++i) {
      sparse[i] = SparseInterests::From(social.Interests((*candidates)[i]));
    }
    Corollary2Counts(
        query, *candidates, fail_threshold,
        [&](size_t i, size_t j) {
          return SparseSimilarity(query.metric, sparse[i], sparse[j]) <
                 query.gamma;
        },
        &failures);
  }
  std::vector<UserId> kept;
  kept.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const UserId u = (*candidates)[i];
    if (u != query.issuer && failures[i] >= fail_threshold) {
      if (stats != nullptr) ++stats->users_pruned_corollary2;
      continue;
    }
    kept.push_back(u);
  }
  *candidates = std::move(kept);
}

namespace {

/// Shared state of the ESU-style enumeration.
class GroupEnumerator {
 public:
  GroupEnumerator(const SocialNetwork& social, const GpssnQuery& query,
                  const std::vector<UserId>& candidates, int64_t max_groups,
                  std::vector<std::vector<UserId>>* out)
      : social_(social),
        query_(query),
        max_groups_(max_groups),
        out_(out),
        in_candidates_(social.num_users(), false),
        seen_(social.num_users(), false),
        sparse_(social.num_users()) {
    for (UserId u : candidates) in_candidates_[u] = true;
    in_candidates_[query.issuer] = true;
    for (UserId u = 0; u < social.num_users(); ++u) {
      if (in_candidates_[u]) {
        sparse_[u] = SparseInterests::From(social.Interests(u));
      }
    }
  }

  /// Returns false when truncated by max_groups.
  bool Run() {
    sub_.push_back(query_.issuer);
    seen_[query_.issuer] = true;
    std::vector<UserId> ext;
    for (UserId v : social_.Friends(query_.issuer)) {
      if (in_candidates_[v] && !seen_[v]) {
        seen_[v] = true;
        ext.push_back(v);
        rollback_.push_back(v);
      }
    }
    const bool complete = Extend(&ext);
    return complete;
  }

 private:
  bool Extend(std::vector<UserId>* ext) {
    if (static_cast<int>(sub_.size()) == query_.tau) {
      std::vector<UserId> group = sub_;
      std::sort(group.begin(), group.end());
      out_->push_back(std::move(group));
      return static_cast<int64_t>(out_->size()) < max_groups_;
    }
    // ESU: repeatedly take one extension vertex; sibling branches never see
    // it again (uniqueness), and its exclusive neighbors join the extension.
    std::vector<UserId> local = *ext;
    while (!local.empty()) {
      const UserId w = local.back();
      local.pop_back();
      // Pairwise interest predicate: any group containing w must pass γ
      // against every current member.
      bool compatible = true;
      for (UserId member : sub_) {
        if (SparseSimilarity(query_.metric, sparse_[w], sparse_[member]) <
            query_.gamma) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;

      // Exclusive neighbors of w (never seen along this path).
      const size_t rollback_mark = rollback_.size();
      std::vector<UserId> next = local;
      for (UserId v : social_.Friends(w)) {
        if (in_candidates_[v] && !seen_[v]) {
          seen_[v] = true;
          rollback_.push_back(v);
          next.push_back(v);
        }
      }
      sub_.push_back(w);
      const bool keep_going = Extend(&next);
      sub_.pop_back();
      // Un-see the vertices this branch introduced (w itself stays seen for
      // the remaining siblings — ESU uniqueness).
      while (rollback_.size() > rollback_mark) {
        seen_[rollback_.back()] = false;
        rollback_.pop_back();
      }
      if (!keep_going) return false;
    }
    return true;
  }

  const SocialNetwork& social_;
  const GpssnQuery& query_;
  int64_t max_groups_;
  std::vector<std::vector<UserId>>* out_;
  std::vector<bool> in_candidates_;
  std::vector<bool> seen_;
  std::vector<SparseInterests> sparse_;
  std::vector<UserId> sub_;
  std::vector<UserId> rollback_;
};

/// Bitset variant of the ESU enumeration over a SocialScratch: everything
/// is candidate-local (indices, not user ids), extension candidates come
/// from word-parallel adjacency ∧ active ∧ ¬seen sweeps, and the pairwise
/// predicate hits the memo. Scratch candidates are id-sorted, so ascending
/// bit iteration appends extension vertices in exactly the order the
/// scalar enumerator reads them off the CSR friend lists — the emitted
/// group sequence is identical.
class ScratchGroupEnumerator {
 public:
  ScratchGroupEnumerator(const GpssnQuery& query, SocialScratch* scratch,
                         const std::vector<UserId>& candidates,
                         int64_t max_groups,
                         std::vector<std::vector<UserId>>* out)
      : query_(query),
        scratch_(scratch),
        max_groups_(max_groups),
        out_(out),
        active_(scratch->size()),
        seen_(scratch->size()) {
    for (UserId u : candidates) {
      const int i = scratch->IndexOf(u);
      GPSSN_CHECK(i >= 0);
      active_.Set(static_cast<size_t>(i));
    }
    issuer_ = scratch->IndexOf(query.issuer);
    GPSSN_CHECK(issuer_ >= 0);
    active_.Set(static_cast<size_t>(issuer_));
  }

  bool Run() {
    sub_.push_back(issuer_);
    seen_.Set(static_cast<size_t>(issuer_));
    std::vector<int> ext;
    AppendExclusiveNeighbors(issuer_, &ext);
    return Extend(&ext);
  }

 private:
  // Appends (adjacency[w] ∧ active ∧ ¬seen) to *ext in ascending index
  // order, marking each appended vertex seen and recording it for
  // rollback.
  void AppendExclusiveNeighbors(int w, std::vector<int>* ext) {
    const uint64_t* adj = scratch_->AdjacencyRow(w);
    for (size_t word = 0; word < scratch_->adj_words(); ++word) {
      uint64_t bits = adj[word] & active_.Word(word) & ~seen_.Word(word);
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const int v = static_cast<int>(word * 64) + b;
        seen_.Set(static_cast<size_t>(v));
        rollback_.push_back(v);
        ext->push_back(v);
      }
    }
  }

  bool Extend(std::vector<int>* ext) {
    if (static_cast<int>(sub_.size()) == query_.tau) {
      std::vector<UserId> group;
      group.reserve(sub_.size());
      for (int i : sub_) group.push_back(scratch_->UserAt(i));
      std::sort(group.begin(), group.end());
      out_->push_back(std::move(group));
      return static_cast<int64_t>(out_->size()) < max_groups_;
    }
    std::vector<int> local = *ext;
    while (!local.empty()) {
      const int w = local.back();
      local.pop_back();
      bool compatible = true;
      for (int member : sub_) {
        if (!scratch_->PairPasses(w, member)) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;

      const size_t rollback_mark = rollback_.size();
      std::vector<int> next = local;
      AppendExclusiveNeighbors(w, &next);
      sub_.push_back(w);
      const bool keep_going = Extend(&next);
      sub_.pop_back();
      while (rollback_.size() > rollback_mark) {
        seen_.Clear(static_cast<size_t>(rollback_.back()));
        rollback_.pop_back();
      }
      if (!keep_going) return false;
    }
    return true;
  }

  const GpssnQuery& query_;
  SocialScratch* scratch_;
  int64_t max_groups_;
  std::vector<std::vector<UserId>>* out_;
  DynamicBitset active_;
  DynamicBitset seen_;
  int issuer_ = -1;
  std::vector<int> sub_;
  std::vector<int> rollback_;
};

}  // namespace

bool EnumerateGroups(const SocialNetwork& social, const GpssnQuery& query,
                     const std::vector<UserId>& candidates, int64_t max_groups,
                     std::vector<std::vector<UserId>>* out,
                     SocialScratch* scratch) {
  GPSSN_CHECK(out != nullptr);
  out->clear();
  if (query.tau == 1) {
    out->push_back({query.issuer});
    return true;
  }
  if (scratch != nullptr && scratch->built() &&
      scratch->IndexOf(query.issuer) >= 0) {
    ScratchGroupEnumerator enumerator(query, scratch, candidates, max_groups,
                                      out);
    return enumerator.Run();
  }
  GroupEnumerator enumerator(social, query, candidates, max_groups, out);
  return enumerator.Run();
}

void SampleGroups(const SocialNetwork& social, const GpssnQuery& query,
                  const std::vector<UserId>& candidates, int samples,
                  uint64_t seed, std::vector<std::vector<UserId>>* out) {
  GPSSN_CHECK(out != nullptr);
  out->clear();
  if (query.tau == 1) {
    out->push_back({query.issuer});
    return;
  }
  std::vector<bool> in_candidates(social.num_users(), false);
  for (UserId u : candidates) in_candidates[u] = true;
  in_candidates[query.issuer] = true;

  Rng rng(seed);
  std::set<std::vector<UserId>> unique;
  for (int s = 0; s < samples; ++s) {
    std::vector<UserId> group = {query.issuer};
    std::vector<UserId> frontier;
    auto add_frontier = [&](UserId u) {
      for (UserId v : social.Friends(u)) {
        if (!in_candidates[v]) continue;
        if (std::find(group.begin(), group.end(), v) != group.end()) continue;
        frontier.push_back(v);
      }
    };
    add_frontier(query.issuer);
    while (static_cast<int>(group.size()) < query.tau && !frontier.empty()) {
      const size_t pick = rng.NextBounded(frontier.size());
      const UserId w = frontier[pick];
      frontier.erase(frontier.begin() + pick);
      if (std::find(group.begin(), group.end(), w) != group.end()) continue;
      bool compatible = true;
      const auto ww = social.Interests(w);
      for (UserId member : group) {
        if (UserSimilarity(query.metric, ww, social.Interests(member)) < query.gamma) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      group.push_back(w);
      add_frontier(w);
    }
    if (static_cast<int>(group.size()) == query.tau) {
      std::sort(group.begin(), group.end());
      unique.insert(std::move(group));
    }
  }
  out->assign(unique.begin(), unique.end());
}

}  // namespace gpssn
