#include "core/audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/macros.h"
#include "core/scores.h"

namespace gpssn {

namespace {

// Relative slack for comparing a recomputed exact road distance against a
// pivot bound: both sides are sums of the same edge weights, so anything
// beyond accumulated rounding is a genuine violation.
double DistanceSlack(double reference) {
  return 1e-9 * std::max(1.0, std::abs(reference));
}

void AddIssue(AuditReport* report, std::string check, int32_t node,
              std::string detail) {
  report->issues.push_back(
      AuditIssue{std::move(check), node, std::move(detail)});
}

std::string FormatIssue(const AuditIssue& issue) {
  std::ostringstream os;
  os << issue.check;
  if (issue.node >= 0) os << " @node " << issue.node;
  os << ": " << issue.detail;
  return os.str();
}

// Evenly-strided deterministic sample of [0, n): indices 0, s, 2s, ...
// covering at most `limit` elements.
template <typename Fn>
void ForSampledIndices(size_t n, int limit, Fn&& fn) {
  if (n == 0 || limit <= 0) return;
  const size_t stride =
      std::max<size_t>(1, n / static_cast<size_t>(limit));
  int taken = 0;
  for (size_t i = 0; i < n && taken < limit; i += stride, ++taken) {
    fn(i);
  }
}

}  // namespace

std::string AuditReport::ToString() const {
  if (ok()) return "ok";
  std::ostringstream os;
  for (size_t i = 0; i < issues.size(); ++i) {
    if (i > 0) os << '\n';
    os << FormatIssue(issues[i]);
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Structural validators.
// ---------------------------------------------------------------------------

AuditReport AuditRStarTree(const RStarTree& tree) {
  AuditReport report;
  if (tree.size() == 0) return report;

  const int max_entries = tree.options().max_entries;
  // Mirrors RStarTree::min_entries(): 40% of the maximum, the R*-tree
  // paper's recommendation.
  const int min_entries = std::max(2, max_entries * 2 / 5);

  std::vector<char> seen(tree.num_nodes(), 0);
  std::vector<RNodeId> stack = {tree.root()};
  const int root_level = tree.node(tree.root()).level;
  int64_t leaf_objects = 0;
  seen[tree.root()] = 1;

  while (!stack.empty()) {
    const RNodeId id = stack.back();
    stack.pop_back();
    const RTreeNode& node = tree.node(id);

    const int count = static_cast<int>(node.entries.size());
    if (count > max_entries) {
      AddIssue(&report, "rtree-fanout-max", id,
               "holds " + std::to_string(count) + " entries, max is " +
                   std::to_string(max_entries));
    }
    if (id != tree.root() && count < min_entries) {
      AddIssue(&report, "rtree-fanout-min", id,
               "holds " + std::to_string(count) + " entries, min fill is " +
                   std::to_string(min_entries));
    }
    if (id == tree.root() && !node.is_leaf() && count < 2) {
      AddIssue(&report, "rtree-root-fanout", id,
               "non-leaf root with " + std::to_string(count) + " children");
    }
    if (node.level < 0 || node.level > root_level) {
      AddIssue(&report, "rtree-level-range", id,
               "level " + std::to_string(node.level) + " outside [0, " +
                   std::to_string(root_level) + "]");
    }

    if (node.is_leaf()) {
      leaf_objects += count;
      continue;
    }
    for (const RTreeEntry& entry : node.entries) {
      if (entry.id < 0 || entry.id >= tree.num_nodes()) {
        AddIssue(&report, "rtree-child-id", id,
                 "child id " + std::to_string(entry.id) + " out of range");
        continue;
      }
      const RTreeNode& child = tree.node(entry.id);
      // Uniform leaf depth follows inductively from every child sitting
      // exactly one level below its parent.
      if (child.level != node.level - 1) {
        AddIssue(&report, "rtree-level-coherence", entry.id,
                 "child level " + std::to_string(child.level) +
                     " under parent level " + std::to_string(node.level));
      }
      if (seen[entry.id]) {
        AddIssue(&report, "rtree-shared-child", entry.id,
                 "node reachable through more than one parent");
        continue;
      }
      seen[entry.id] = 1;
      // The parent entry's MBR must contain every entry of the child
      // (AdjustPath keeps it exactly tight, but containment is the
      // invariant traversal correctness rests on).
      Rect child_union;
      for (const RTreeEntry& ce : child.entries) {
        child_union.ExtendRect(ce.mbr);
      }
      if (!child.entries.empty() && !entry.mbr.ContainsRect(child_union)) {
        std::ostringstream os;
        os << "parent entry MBR [" << entry.mbr.min_x << "," << entry.mbr.min_y
           << "," << entry.mbr.max_x << "," << entry.mbr.max_y
           << "] does not contain child union [" << child_union.min_x << ","
           << child_union.min_y << "," << child_union.max_x << ","
           << child_union.max_y << "]";
        AddIssue(&report, "rtree-mbr-containment", entry.id, os.str());
      }
      stack.push_back(entry.id);
    }
  }

  if (leaf_objects != tree.size()) {
    AddIssue(&report, "rtree-object-count", tree.root(),
             "leaves hold " + std::to_string(leaf_objects) +
                 " objects, tree reports " + std::to_string(tree.size()));
  }
  return report;
}

AuditReport AuditPoiIndex(const PoiIndex& index) {
  AuditReport report = AuditRStarTree(index.tree());
  const RStarTree& tree = index.tree();
  if (tree.size() == 0) return report;
  const int h = index.pivots().num_pivots();

  // Per-POI invariants: sub_K ⊆ sup_K, pivot vector arity.
  const int num_pois = index.ssn().num_pois();
  for (PoiId id = 0; id < num_pois; ++id) {
    const PoiAug& aug = index.poi_aug(id);
    if (static_cast<int>(aug.pivot_dist.size()) != h) {
      AddIssue(&report, "poi-pivot-arity", -1,
               "poi " + std::to_string(id) + " carries " +
                   std::to_string(aug.pivot_dist.size()) + " pivot distances, " +
                   std::to_string(h) + " pivots exist");
      continue;
    }
    if (!std::includes(aug.sup_keywords.begin(), aug.sup_keywords.end(),
                       aug.sub_keywords.begin(), aug.sub_keywords.end())) {
      AddIssue(&report, "poi-sub-in-sup", -1,
               "poi " + std::to_string(id) +
                   ": sub_K is not a subset of sup_K");
    }
  }

  // Node aggregates, bottom-up via DFS: pivot boxes contain member POI
  // distances, signatures cover member keywords, counts add up.
  struct Frame {
    RNodeId id;
    bool expanded;
  };
  std::vector<Frame> stack = {{tree.root(), false}};
  std::vector<int64_t> subtree_count(tree.num_nodes(), 0);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const RTreeNode& node = tree.node(frame.id);
    if (!frame.expanded && !node.is_leaf()) {
      frame.expanded = true;
      for (const RTreeEntry& entry : node.entries) {
        if (entry.id >= 0 && entry.id < tree.num_nodes()) {
          stack.push_back({entry.id, false});
        }
      }
      continue;
    }
    const RNodeId id = frame.id;
    stack.pop_back();
    const PoiNodeAug& aug = index.node_aug(id);
    if (static_cast<int>(aug.lb_pivot.size()) != h ||
        static_cast<int>(aug.ub_pivot.size()) != h) {
      AddIssue(&report, "poi-node-pivot-arity", id, "pivot bound arity wrong");
      continue;
    }
    int64_t count = 0;
    if (node.is_leaf()) {
      count = static_cast<int64_t>(node.entries.size());
      for (const RTreeEntry& entry : node.entries) {
        const PoiAug& poi = index.poi_aug(entry.id);
        for (int k = 0; k < h; ++k) {
          const double d = poi.pivot_dist[k];
          if (!std::isfinite(d)) continue;
          if (d < aug.lb_pivot[k] - DistanceSlack(d) ||
              d > aug.ub_pivot[k] + DistanceSlack(d)) {
            std::ostringstream os;
            os << "poi " << entry.id << " pivot " << k << " distance " << d
               << " outside node box [" << aug.lb_pivot[k] << ", "
               << aug.ub_pivot[k] << "]";
            AddIssue(&report, "poi-node-pivot-box", id, os.str());
          }
        }
        for (KeywordId kw : poi.sup_keywords) {
          if (!aug.v_sup.MayContain(kw)) {
            AddIssue(&report, "poi-node-signature", id,
                     "node signature misses keyword " + std::to_string(kw) +
                         " of poi " + std::to_string(entry.id));
            break;
          }
        }
      }
    } else {
      for (const RTreeEntry& entry : node.entries) {
        count += subtree_count[entry.id];
        const PoiNodeAug& child = index.node_aug(entry.id);
        for (int k = 0; k < h; ++k) {
          if (child.lb_pivot[k] < aug.lb_pivot[k] - DistanceSlack(1.0) ||
              child.ub_pivot[k] > aug.ub_pivot[k] + DistanceSlack(1.0)) {
            AddIssue(&report, "poi-node-pivot-nesting", id,
                     "child " + std::to_string(entry.id) + " pivot " +
                         std::to_string(k) + " box not nested in parent");
          }
        }
      }
    }
    subtree_count[id] = count;
    if (aug.subtree_pois != count) {
      AddIssue(&report, "poi-node-subtree-count", id,
               "subtree_pois = " + std::to_string(aug.subtree_pois) +
                   ", actual = " + std::to_string(count));
    }
  }
  return report;
}

AuditReport AuditSocialIndex(const SocialIndex& index) {
  AuditReport report;
  const SpatialSocialNetwork& ssn = index.ssn();
  const SocialNetwork& social = ssn.social();
  const int m = social.num_users();
  const int d = social.num_topics();
  const int l = index.social_pivots().num_pivots();
  const int h = index.road_pivots().num_pivots();

  // --- Partition disjointness / completeness over the leaf user lists.
  std::vector<SNodeId> owner(m, -1);
  std::vector<char> reachable(index.num_nodes(), 0);
  std::vector<SNodeId> stack = {index.root()};
  reachable[index.root()] = 1;
  while (!stack.empty()) {
    const SNodeId id = stack.back();
    stack.pop_back();
    const SocialIndexNode& node = index.node(id);
    if (node.is_leaf()) {
      if (!node.children.empty()) {
        AddIssue(&report, "social-leaf-children", id,
                 "leaf carries " + std::to_string(node.children.size()) +
                     " children");
      }
      for (UserId u : node.users) {
        if (u < 0 || u >= m) {
          AddIssue(&report, "social-user-range", id,
                   "user id " + std::to_string(u) + " out of range");
          continue;
        }
        if (owner[u] != -1) {
          AddIssue(&report, "social-partition-disjoint", id,
                   "user " + std::to_string(u) + " already owned by leaf " +
                       std::to_string(owner[u]));
          continue;
        }
        owner[u] = id;
        if (index.leaf_of_user(u) != id) {
          AddIssue(&report, "social-leaf-of-user", id,
                   "leaf_of_user(" + std::to_string(u) + ") = " +
                       std::to_string(index.leaf_of_user(u)) +
                       " but the user sits in this leaf");
        }
      }
    } else {
      if (!node.users.empty()) {
        AddIssue(&report, "social-internal-users", id,
                 "internal node carries a user list");
      }
      for (SNodeId child : node.children) {
        if (child < 0 || child >= index.num_nodes()) {
          AddIssue(&report, "social-child-id", id,
                   "child id " + std::to_string(child) + " out of range");
          continue;
        }
        if (index.node(child).level != node.level - 1) {
          AddIssue(&report, "social-level-coherence", child,
                   "child level " + std::to_string(index.node(child).level) +
                       " under parent level " + std::to_string(node.level));
        }
        if (reachable[child]) {
          AddIssue(&report, "social-shared-child", child,
                   "node reachable through more than one parent");
          continue;
        }
        reachable[child] = 1;
        stack.push_back(child);
      }
    }
  }
  for (UserId u = 0; u < m; ++u) {
    if (owner[u] == -1) {
      AddIssue(&report, "social-partition-complete", -1,
               "user " + std::to_string(u) + " reachable from no leaf");
    }
  }

  // --- Per-node aggregate bounds, checked directly against the members
  // (DFS user collection per node is O(height · m) total: fine for audits).
  std::vector<UserId> members;
  for (SNodeId id = 0; id < index.num_nodes(); ++id) {
    if (!reachable[id]) continue;
    const SocialIndexNode& node = index.node(id);
    if (static_cast<int>(node.lb_w.size()) != d ||
        static_cast<int>(node.ub_w.size()) != d ||
        static_cast<int>(node.lb_sp.size()) != l ||
        static_cast<int>(node.ub_sp.size()) != l ||
        static_cast<int>(node.lb_rp.size()) != h ||
        static_cast<int>(node.ub_rp.size()) != h) {
      AddIssue(&report, "social-bound-arity", id,
               "lb/ub vector arity does not match (d, l, h)");
      continue;
    }
    members.clear();
    std::vector<SNodeId> dfs = {id};
    while (!dfs.empty()) {
      const SocialIndexNode& cur = index.node(dfs.back());
      dfs.pop_back();
      if (cur.is_leaf()) {
        members.insert(members.end(), cur.users.begin(), cur.users.end());
      } else {
        dfs.insert(dfs.end(), cur.children.begin(), cur.children.end());
      }
    }
    if (node.subtree_users != static_cast<int>(members.size())) {
      AddIssue(&report, "social-subtree-count", id,
               "subtree_users = " + std::to_string(node.subtree_users) +
                   ", actual = " + std::to_string(members.size()));
    }
    for (UserId u : members) {
      if (u < 0 || u >= m) continue;  // Reported above.
      const auto w = social.Interests(u);
      for (int f = 0; f < d; ++f) {
        if (w[f] < node.lb_w[f] || w[f] > node.ub_w[f]) {
          std::ostringstream os;
          os << "user " << u << " topic " << f << " weight " << w[f]
             << " outside box [" << node.lb_w[f] << ", " << node.ub_w[f]
             << "] (Eqs. 9-10)";
          AddIssue(&report, "social-interest-box", id, os.str());
          f = d;  // One report per (node, user) pair is enough.
        }
      }
      for (int k = 0; k < l; ++k) {
        const int hops = index.social_pivots().UserToPivot(u, k);
        if (hops < node.lb_sp[k] || hops > node.ub_sp[k]) {
          AddIssue(&report, "social-pivot-hop-box", id,
                   "user " + std::to_string(u) + " pivot " +
                       std::to_string(k) + " hops outside box (Eqs. 11-12)");
          break;
        }
      }
      const std::vector<double>& rp = index.user_road_pivot_dists(u);
      for (int k = 0; k < h; ++k) {
        if (!std::isfinite(rp[k])) continue;
        if (rp[k] < node.lb_rp[k] - DistanceSlack(rp[k]) ||
            rp[k] > node.ub_rp[k] + DistanceSlack(rp[k])) {
          AddIssue(&report, "social-road-pivot-box", id,
                   "user " + std::to_string(u) + " road pivot " +
                       std::to_string(k) + " distance outside box "
                       "(Eqs. 13-14)");
          break;
        }
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// PruningAuditor.
// ---------------------------------------------------------------------------

const char* PruneRuleName(PruneRule rule) {
  switch (rule) {
    case PruneRule::kUserInterest:
      return "user-interest (Lemma 3)";
    case PruneRule::kUserSocialDistance:
      return "user-social-distance (Lemma 4)";
    case PruneRule::kSocialNodeInterest:
      return "social-node-interest (Lemma 8)";
    case PruneRule::kSocialNodeDistance:
      return "social-node-distance (Lemma 9)";
    case PruneRule::kPoiMatch:
      return "poi-match (Lemma 1)";
    case PruneRule::kRoadNodeMatch:
      return "road-node-match (Lemma 6)";
    case PruneRule::kPoiDistanceBound:
      return "poi-distance-bound (Eq. 17)";
    case PruneRule::kPairDistanceBound:
      return "pair-distance-bound (Lemma 5)";
    case PruneRule::kNumRules:
      break;
  }
  return "unknown";
}

PruningAuditor::PruningAuditor(const PoiIndex* poi_index,
                               const SocialIndex* social_index,
                               const PruningAuditorOptions& options)
    : poi_index_(poi_index),
      social_index_(social_index),
      options_(options),
      bfs_(&social_index->ssn().social()),
      engine_(&poi_index->ssn().road()),
      locator_(&poi_index->ssn().road(), &poi_index->ssn().pois()) {
  GPSSN_CHECK(poi_index != nullptr && social_index != nullptr);
  GPSSN_CHECK(&poi_index->ssn() == &social_index->ssn());
  GPSSN_CHECK(options_.sample_period >= 1);
}

bool PruningAuditor::Sample(PruneRule rule) {
  ++events_;
  const uint64_t n = counters_[static_cast<size_t>(rule)]++;
  if (n % options_.sample_period != 0) return false;
  ++samples_;
  return true;
}

void PruningAuditor::Report(PruneRule rule, int32_t node, std::string detail) {
  AuditIssue issue{PruneRuleName(rule), node, std::move(detail)};
  if (options_.abort_on_violation) {
    std::fprintf(stderr, "UNSOUND PRUNE — %s\n", FormatIssue(issue).c_str());
    std::abort();
  }
  issues_.push_back(std::move(issue));
}

void PruningAuditor::EnsureIssuerBfs(const QueryUserContext& ctx) {
  const UserId issuer = ctx.query.issuer;
  const int bound = ctx.query.tau - 1;
  if (bfs_issuer_ == issuer && bfs_bound_ == bound) return;
  bfs_.Run(issuer, bound);
  bfs_issuer_ = issuer;
  bfs_bound_ = bound;
}

void PruningAuditor::CollectSubtreeUsers(SNodeId node,
                                         std::vector<UserId>* out) const {
  std::vector<SNodeId> stack = {node};
  while (!stack.empty()) {
    const SocialIndexNode& cur = social_index_->node(stack.back());
    stack.pop_back();
    if (cur.is_leaf()) {
      out->insert(out->end(), cur.users.begin(), cur.users.end());
    } else {
      stack.insert(stack.end(), cur.children.begin(), cur.children.end());
    }
  }
}

void PruningAuditor::CollectSubtreePois(RNodeId node,
                                        std::vector<PoiId>* out) const {
  const RStarTree& tree = poi_index_->tree();
  std::vector<RNodeId> stack = {node};
  while (!stack.empty()) {
    const RTreeNode& cur = tree.node(stack.back());
    stack.pop_back();
    for (const RTreeEntry& entry : cur.entries) {
      if (cur.is_leaf()) {
        out->push_back(entry.id);
      } else {
        stack.push_back(entry.id);
      }
    }
  }
}

void PruningAuditor::OnUserPruned(const QueryUserContext& ctx, UserId u,
                                  PruneRule rule) {
  if (!Sample(rule)) return;
  const SocialNetwork& social = social_index_->ssn().social();
  switch (rule) {
    case PruneRule::kUserInterest: {
      // Lemma 3 claims Interest_Score(u_q, u) < γ; recompute it exactly.
      const double score =
          UserSimilarity(ctx.query.metric, ctx.w_q, social.Interests(u));
      if (score >= ctx.query.gamma) {
        std::ostringstream os;
        os << "user " << u << " pruned by interest but exact score " << score
           << " >= gamma " << ctx.query.gamma;
        Report(rule, -1, os.str());
      }
      break;
    }
    case PruneRule::kUserSocialDistance: {
      // Lemma 4 claims dist_SN(u_q, u) >= τ; BFS gives the exact hops.
      EnsureIssuerBfs(ctx);
      const int hops = bfs_.Hops(u);
      if (hops < ctx.query.tau) {
        std::ostringstream os;
        os << "user " << u << " pruned by social distance but is " << hops
           << " hops from the issuer, tau = " << ctx.query.tau;
        Report(rule, -1, os.str());
      }
      break;
    }
    default:
      GPSSN_CHECK(false);
  }
}

void PruningAuditor::OnSocialNodePruned(const QueryUserContext& ctx,
                                        SNodeId node, PruneRule rule) {
  if (!Sample(rule)) return;
  const SocialNetwork& social = social_index_->ssn().social();
  std::vector<UserId> members;
  CollectSubtreeUsers(node, &members);
  switch (rule) {
    case PruneRule::kSocialNodeInterest:
      // Lemma 8: a pruned node may contain NO user with score >= γ.
      ForSampledIndices(
          members.size(), options_.max_members_checked, [&](size_t i) {
            const UserId u = members[i];
            const double score = UserSimilarity(ctx.query.metric, ctx.w_q,
                                                social.Interests(u));
            if (score >= ctx.query.gamma) {
              std::ostringstream os;
              os << "node pruned by interest box but member user " << u
                 << " has exact score " << score << " >= gamma "
                 << ctx.query.gamma;
              Report(rule, node, os.str());
            }
          });
      break;
    case PruneRule::kSocialNodeDistance:
      // Lemma 9: no member may be within τ−1 hops of the issuer.
      EnsureIssuerBfs(ctx);
      ForSampledIndices(
          members.size(), options_.max_members_checked, [&](size_t i) {
            const UserId u = members[i];
            const int hops = bfs_.Hops(u);
            if (hops < ctx.query.tau) {
              std::ostringstream os;
              os << "node pruned by hop bound but member user " << u << " is "
                 << hops << " hops from the issuer, tau = " << ctx.query.tau;
              Report(rule, node, os.str());
            }
          });
      break;
    default:
      GPSSN_CHECK(false);
  }
}

void PruningAuditor::OnPoiMatchPruned(const QueryUserContext& ctx, PoiId poi) {
  if (!Sample(PruneRule::kPoiMatch)) return;
  // Lemma 1: recompute the 2·r_max candidate superset from scratch — the
  // stored sup_K must cover it, and the issuer's match score against it
  // must be below θ for the prune to be sound.
  const SpatialSocialNetwork& ssn = poi_index_->ssn();
  const double sup_radius = 2.0 * poi_index_->options().r_max;
  std::vector<PoiId> ball =
      locator_.Ball(ssn.poi(poi).position, sup_radius, &engine_);
  const std::vector<KeywordId> sup = UnionKeywords(ssn, ball);
  const double score = MatchScore(ctx.w_q, sup);
  if (score >= ctx.query.theta) {
    std::ostringstream os;
    os << "poi " << poi << " pruned by match score but the recomputed "
       << "B(o, 2 r_max) keyword union scores " << score << " >= theta "
       << ctx.query.theta;
    Report(PruneRule::kPoiMatch, -1, os.str());
  }
}

void PruningAuditor::OnRoadNodeMatchPruned(const QueryUserContext& ctx,
                                           RNodeId node) {
  if (!Sample(PruneRule::kRoadNodeMatch)) return;
  // Lemma 6: if the node's bit-vector upper bound is below θ, then every
  // POI underneath must have an exact sup_K match score below θ.
  std::vector<PoiId> members;
  CollectSubtreePois(node, &members);
  ForSampledIndices(
      members.size(), options_.max_members_checked, [&](size_t i) {
        const PoiId o = members[i];
        const double score =
            MatchScore(ctx.w_q, poi_index_->poi_aug(o).sup_keywords);
        if (score >= ctx.query.theta) {
          std::ostringstream os;
          os << "node pruned by signature bound but member poi " << o
             << " has exact sup_K score " << score << " >= theta "
             << ctx.query.theta;
          Report(PruneRule::kRoadNodeMatch, node, os.str());
        }
      });
}

void PruningAuditor::OnPoiDistanceBound(const QueryUserContext& ctx, PoiId poi,
                                        double lb) {
  if (!Sample(PruneRule::kPoiDistanceBound)) return;
  if (lb <= 0.0) return;
  // Eq. 17 claims dist_RN(u_q, o) >= lb. A Dijkstra bounded by lb either
  // proves the claim (no path within the bound) or produces the violating
  // exact distance.
  const SpatialSocialNetwork& ssn = poi_index_->ssn();
  const double exact = engine_.PositionToPosition(
      ssn.user_home(ctx.query.issuer), ssn.poi(poi).position, lb);
  if (exact < lb - DistanceSlack(lb)) {
    std::ostringstream os;
    os << "poi " << poi << " distance lower bound " << lb
       << " exceeds the exact issuer distance " << exact;
    Report(PruneRule::kPoiDistanceBound, -1, os.str());
  }
}

void PruningAuditor::OnPairDistanceBound(const QueryUserContext& /*ctx*/,
                                         UserId user, PoiId center,
                                         double lb) {
  if (!Sample(PruneRule::kPairDistanceBound)) return;
  if (lb <= 0.0) return;
  // Lemma 5 claims dist_RN(user, center) >= lb for the pivot bound used by
  // the refinement skip.
  const SpatialSocialNetwork& ssn = poi_index_->ssn();
  const double exact = engine_.PositionToPosition(
      ssn.user_home(user), ssn.poi(center).position, lb);
  if (exact < lb - DistanceSlack(lb)) {
    std::ostringstream os;
    os << "pair (user " << user << ", poi " << center << ") lower bound "
       << lb << " exceeds the exact distance " << exact;
    Report(PruneRule::kPairDistanceBound, -1, os.str());
  }
}


void SerializedPruningAuditor::OnUserPruned(const QueryUserContext& ctx,
                                            UserId u, PruneRule rule) {
  if (auditor_ == nullptr) return;
  MutexLock lock(mu_);
  auditor_->OnUserPruned(ctx, u, rule);
}

void SerializedPruningAuditor::OnSocialNodePruned(const QueryUserContext& ctx,
                                                  SNodeId node,
                                                  PruneRule rule) {
  if (auditor_ == nullptr) return;
  MutexLock lock(mu_);
  auditor_->OnSocialNodePruned(ctx, node, rule);
}

void SerializedPruningAuditor::OnPoiMatchPruned(const QueryUserContext& ctx,
                                                PoiId poi) {
  if (auditor_ == nullptr) return;
  MutexLock lock(mu_);
  auditor_->OnPoiMatchPruned(ctx, poi);
}

void SerializedPruningAuditor::OnRoadNodeMatchPruned(
    const QueryUserContext& ctx, RNodeId node) {
  if (auditor_ == nullptr) return;
  MutexLock lock(mu_);
  auditor_->OnRoadNodeMatchPruned(ctx, node);
}

void SerializedPruningAuditor::OnPoiDistanceBound(const QueryUserContext& ctx,
                                                  PoiId poi, double lb) {
  if (auditor_ == nullptr) return;
  MutexLock lock(mu_);
  auditor_->OnPoiDistanceBound(ctx, poi, lb);
}

void SerializedPruningAuditor::OnPairDistanceBound(const QueryUserContext& ctx,
                                                   UserId user, PoiId center,
                                                   double lb) {
  if (auditor_ == nullptr) return;
  MutexLock lock(mu_);
  auditor_->OnPairDistanceBound(ctx, user, center, lb);
}

}  // namespace gpssn
