// Copyright 2026 The gpssn Authors.
//
// The pruning rules of Sections 3 and 4.2, expressed as pure predicates
// over the query context and index structures:
//
//   object level                      index level
//   ------------                      -----------
//   Lemma 1  match-score (POI)        Lemma 6  match-score (I_R node)
//   Lemma 3  interest-score (user)    Lemma 8  interest-score (I_S node)
//   Corollary 1 pruning region        Lemma 9  social-distance (I_S node)
//   Corollary 2 count-based           Lemma 7 / δ  road-distance (I_R node)
//   Lemma 4  social-distance (user)
//   Lemma 5  road-distance (pair)
//
// All predicates answer "can this candidate be SAFELY discarded for the
// given query user u_q?".

#ifndef GPSSN_CORE_PRUNING_H_
#define GPSSN_CORE_PRUNING_H_

#include <vector>

#include "core/options.h"
#include "geom/pruning_region.h"
#include "index/poi_index.h"
#include "index/social_index.h"

namespace gpssn {

/// Facts about the query issuer u_q, precomputed once per query.
struct QueryUserContext {
  GpssnQuery query;
  std::vector<double> w_q;        // u_q's interest vector.
  PruningRegion region;           // PR(u_q, γ) of Section 3.2.
  std::vector<int> sp_hops;       // dist_SN(u_q, sp_k), k = 1..l.
  std::vector<double> rp_dist;    // dist_RN(u_q's home, rp_k), k = 1..h.

  QueryUserContext(const GpssnQuery& q, const SocialIndex& is);
};

// ----- Social side -----

/// Lemma 3 / Corollary 1: prune candidate u_k when
/// Interest_Score(u_q, u_k) < γ (equivalently u_k.w ∈ PR(u_q)).
bool PruneUserInterest(const QueryUserContext& ctx,
                       std::span<const double> w_k);

/// Lemma 4: prune u_k when the pivot lower bound of dist_SN(u_k, u_q) is
/// >= τ (a connected τ-group containing both cannot exist).
bool PruneUserSocialDistance(const QueryUserContext& ctx,
                             const SocialPivotTable& pivots, UserId u_k);

/// Lemma 8: prune node e_S when every interest vector in its lb/ub box is
/// inside PR(u_q).
bool PruneSocialNodeInterest(const QueryUserContext& ctx,
                             const SocialIndexNode& node);

/// Eq. 19: pivot lower bound of dist_SN(u_q, e_S).
int LbHopsToSocialNode(const QueryUserContext& ctx,
                       const SocialIndexNode& node);

/// Lemma 9: prune node e_S when lb_dist_SN(u_q, e_S) >= τ.
bool PruneSocialNodeDistance(const QueryUserContext& ctx,
                             const SocialIndexNode& node);

// ----- Road side -----

/// Lemma 1 (object level, exact sup_K set): prune POI o_i as a ball center
/// when Match_Score(u_q, sup_K(o_i)) < θ. sup_K covers B(o_i, 2·r_max) ⊇
/// any answer ball containing o_i, so this never discards a feasible
/// center.
bool PrunePoiMatch(const QueryUserContext& ctx, const PoiAug& aug);

/// Lemma 6 / Eq. 15: prune I_R node e_R when the bit-vector upper bound of
/// the matching score w.r.t. u_q is below θ.
bool PruneRoadNodeMatch(const QueryUserContext& ctx, const PoiNodeAug& aug);

/// Eq. 17 (node form): pivot lower bound of max-distance between u_q and
/// any POI under a node with per-pivot bounds [lb_pivot, ub_pivot].
double LbMaxDistToRoadNode(const QueryUserContext& ctx,
                           const std::vector<double>& lb_pivot,
                           const std::vector<double>& ub_pivot);

/// Eq. 17 (object form): pivot lower bound of dist_RN(u_q, o_i).
double LbDistToPoi(const QueryUserContext& ctx, const PoiAug& aug);

/// Eq. 16 (object form): pivot upper bound of maxdist(S, B(o_i, radius)),
/// where `s_ub_rp[k]` upper-bounds the distance of every candidate user to
/// pivot k.
double UbMaxDistViaCenter(const std::vector<double>& s_ub_rp,
                          const PoiAug& aug, double radius);

/// Exact-table pair bounds (Lemma 5 helpers used in refinement):
/// lower/upper bounds of dist_RN(user, o_i) via pivots.
double LbUserPoiDist(const std::vector<double>& user_rp, const PoiAug& aug);
double UbUserPoiDist(const std::vector<double>& user_rp, const PoiAug& aug);

}  // namespace gpssn

#endif  // GPSSN_CORE_PRUNING_H_
