// Copyright 2026 The gpssn Authors.
//
// The two scores of Definition 5: the common-interest score between users
// (Eq. 1) and the user-vs-POI-set matching score (Eq. 2), plus the
// bit-vector upper bound of Eq. 15.

#ifndef GPSSN_CORE_SCORES_H_
#define GPSSN_CORE_SCORES_H_

#include <span>
#include <vector>

#include "common/bitvector.h"
#include "core/options.h"
#include "roadnet/types.h"
#include "ssn/spatial_social_network.h"

namespace gpssn {

/// Eq. 1: Interest_Score(u_j, u_k) = Σ_f w_f(j) · w_f(k).
double InterestScore(std::span<const double> a, std::span<const double> b);

/// Weighted Jaccard similarity: Σ_f min(a_f, b_f) / Σ_f max(a_f, b_f)
/// (1.0 when both vectors are all-zero). The paper's "future work" metric.
double WeightedJaccard(std::span<const double> a, std::span<const double> b);

/// Hamming similarity over topic supports: 1 − |supp(a) Δ supp(b)| / d.
double HammingSimilarity(std::span<const double> a, std::span<const double> b);

/// Dispatches on the query's interest metric.
double UserSimilarity(InterestMetric metric, std::span<const double> a,
                      std::span<const double> b);

/// Upper bound of the weighted Jaccard between `q` and ANY vector inside
/// the box [lb, ub]: Σ min(q, ub) / Σ max(q, lb). Used for node-level
/// pruning under the Jaccard metric (the half-space region of Section 3.2
/// only applies to the dot product).
double UbJaccardBox(std::span<const double> q, std::span<const double> lb,
                    std::span<const double> ub);

/// Upper bound of the Hamming similarity between `q` and ANY vector in the
/// box [lb, ub]: a topic can avoid a support mismatch unless the box forces
/// one (q_f in the support but ub_f == 0, or q_f outside but lb_f > 0).
double UbHammingBox(std::span<const double> q, std::span<const double> lb,
                    std::span<const double> ub);

/// Eq. 2: Match_Score(u_j, R) = Σ_f w_f(j) · χ(f ∈ keywords). `keywords`
/// must be sorted unique keyword ids (the union over the POI set R).
double MatchScore(std::span<const double> interests,
                  const std::vector<KeywordId>& keywords);

/// Eq. 15: upper bound of the matching score via a hashed keyword
/// signature. Never smaller than MatchScore against the summarized set.
double UbMatchScore(std::span<const double> interests,
                    const KeywordBitVector& signature);

/// Union of the keyword sets of the given POIs, sorted unique.
std::vector<KeywordId> UnionKeywords(const SpatialSocialNetwork& ssn,
                                     const std::vector<PoiId>& pois);

}  // namespace gpssn

#endif  // GPSSN_CORE_SCORES_H_
