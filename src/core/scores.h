// Copyright 2026 The gpssn Authors.
//
// The two scores of Definition 5: the common-interest score between users
// (Eq. 1) and the user-vs-POI-set matching score (Eq. 2), plus the
// bit-vector upper bound of Eq. 15.

#ifndef GPSSN_CORE_SCORES_H_
#define GPSSN_CORE_SCORES_H_

#include <span>
#include <vector>

#include "common/bitvector.h"
#include "core/options.h"
#include "roadnet/types.h"
#include "ssn/spatial_social_network.h"

namespace gpssn {

/// Eq. 1: Interest_Score(u_j, u_k) = Σ_f w_f(j) · w_f(k).
double InterestScore(std::span<const double> a, std::span<const double> b);

/// Weighted Jaccard similarity: Σ_f min(a_f, b_f) / Σ_f max(a_f, b_f)
/// (1.0 when both vectors are all-zero). The paper's "future work" metric.
double WeightedJaccard(std::span<const double> a, std::span<const double> b);

/// Hamming similarity over topic supports: 1 − |supp(a) Δ supp(b)| / d.
double HammingSimilarity(std::span<const double> a, std::span<const double> b);

/// Dispatches on the query's interest metric.
double UserSimilarity(InterestMetric metric, std::span<const double> a,
                      std::span<const double> b);

/// Upper bound of the weighted Jaccard between `q` and ANY vector inside
/// the box [lb, ub]: Σ min(q, ub) / Σ max(q, lb). Used for node-level
/// pruning under the Jaccard metric (the half-space region of Section 3.2
/// only applies to the dot product).
double UbJaccardBox(std::span<const double> q, std::span<const double> lb,
                    std::span<const double> ub);

/// Upper bound of the Hamming similarity between `q` and ANY vector in the
/// box [lb, ub]: a topic can avoid a support mismatch unless the box forces
/// one (q_f in the support but ub_f == 0, or q_f outside but lb_f > 0).
double UbHammingBox(std::span<const double> q, std::span<const double> lb,
                    std::span<const double> ub);

/// Eq. 2: Match_Score(u_j, R) = Σ_f w_f(j) · χ(f ∈ keywords). `keywords`
/// must be sorted unique keyword ids (the union over the POI set R).
double MatchScore(std::span<const double> interests,
                  const std::vector<KeywordId>& keywords);

/// Eq. 15: upper bound of the matching score via a hashed keyword
/// signature. Never smaller than MatchScore against the summarized set.
double UbMatchScore(std::span<const double> interests,
                    const KeywordBitVector& signature);

/// Union of the keyword sets of the given POIs, sorted unique.
std::vector<KeywordId> UnionKeywords(const SpatialSocialNetwork& ssn,
                                     const std::vector<PoiId>& pois);

// ----- Structure-of-arrays kernels (SocialScratch fast path) -----
//
// The Soa* kernels operate on flat interest rows padded with zeros to
// `padded_dim` (a multiple of kSoaLaneWidth doubles, 64-byte aligned — see
// core/social_scratch.h). Each reduction runs in kSoaLaneWidth independent
// accumulator lanes combined as (l0 + l1) + (l2 + l3), so the compiler can
// keep them in one vector register; the summation order therefore differs
// from the sequential scalar kernels above by design. The differential
// tests pin them 0-ULP against ScalarReference* implementations that spell
// out the same lane split, and the query-level tests cover the (measure-
// zero) threshold-tie divergence against the sequential kernels.

/// Accumulator-lane count of the unrolled reductions (doubles per 64-byte
/// SIMD-width stripe; also the row padding granularity).
inline constexpr size_t kSoaLaneWidth = 4;

/// Eq. 1 over padded rows: 4-lane unrolled dot product.
double SoaDot(const double* a, const double* b, size_t padded_dim);

/// Weighted Jaccard over padded rows (zero padding contributes min=max=0).
double SoaJaccard(const double* a, const double* b, size_t padded_dim);

/// Hamming similarity over padded rows; `dim` is the true dimensionality
/// (the denominator — padding lanes agree on zero so they add nothing).
double SoaHamming(const double* a, const double* b, size_t dim,
                  size_t padded_dim);

/// Dispatches on the metric, like UserSimilarity.
double SoaSimilarity(InterestMetric metric, const double* a, const double* b,
                     size_t dim, size_t padded_dim);

/// One-to-many row variant: out[i] = SoaSimilarity(q, rows + i*padded_dim)
/// for i in [0, n). Row-major `rows` as produced by SocialScratch.
void SoaSimilarityOneToMany(InterestMetric metric, const double* q,
                            const double* rows, size_t dim, size_t padded_dim,
                            size_t n, double* out);

/// Eq. 2 as a masked row sum: Σ interests[i] over the set bits of
/// `mask_words` (covering `padded_dim` bits, no bits ≥ the true dim).
/// Iterates set bits ascending, so against a mask built from sorted unique
/// union keywords this is bit-identical to MatchScore.
double MaskedMatchScore(const double* interests,
                        std::span<const uint64_t> mask_words);

}  // namespace gpssn

#endif  // GPSSN_CORE_SCORES_H_
