// Copyright 2026 The gpssn Authors.
//
// The invariant-audit layer: machine checks that the structures and pruning
// rules the paper's speedups rest on are actually sound, not just fast.
//
// Two halves:
//
//  1. Structural validators — pure functions that walk an index and report
//     every broken invariant with the exact offending node:
//       * R*-tree: MBR containment, fan-out / minimum-fill bounds, level
//         coherence (uniform leaf depth), object count.
//       * I_R augmentations: pivot lb/ub boxes contain every member POI's
//         exact pivot distances, node signatures cover member signatures,
//         subtree POI counts add up.
//       * I_S partition tree: leaves partition the user set (disjoint,
//         complete, consistent with leaf_of_user), interest / social-pivot /
//         road-pivot lb/ub boxes contain every member, subtree counts and
//         levels are coherent.
//
//  2. PruningAuditor — a sampling recorder the query processor notifies on
//     every pruned candidate. Sampled events are re-tested against the
//     brute-force predicate the pruning lemma claims to subsume (exact
//     interest scores, exact BFS hop distances, exact Dijkstra road
//     distances, exact keyword-union match scores). An over-eager prune is
//     invisible to answer-checking tests unless the optimum happens to be
//     pruned; the auditor catches it at the moment it happens and names the
//     lemma, the candidate, and both sides of the violated inequality.
//
// In GPSSN_AUDIT builds (cmake -DGPSSN_AUDIT=ON, preset "audit") every
// GpssnProcessor validates both indexes at construction and installs a
// default auditor that aborts on the first unsound prune. In normal builds
// the layer compiles but costs one null-pointer test per prune event;
// tests can install an auditor explicitly via QueryOptions::auditor.

#ifndef GPSSN_CORE_AUDIT_H_
#define GPSSN_CORE_AUDIT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"
#include "core/pruning.h"
#include "index/poi_index.h"
#include "index/social_index.h"
#include "roadnet/shortest_path.h"
#include "socialnet/bfs.h"

namespace gpssn {

/// One broken invariant, localized to the node / object that violates it.
struct AuditIssue {
  std::string check;   // Stable identifier, e.g. "rtree-mbr-containment".
  int32_t node = -1;   // Offending RNodeId / SNodeId (-1: not node-scoped).
  std::string detail;  // Human-readable diagnostic with both inequality sides.
};

/// Result of a structural validation pass.
struct AuditReport {
  std::vector<AuditIssue> issues;

  bool ok() const { return issues.empty(); }
  /// "ok" or one line per issue.
  std::string ToString() const;
};

/// Validates the raw R*-tree structure: every internal entry's MBR contains
/// its child's entries, levels decrease by one toward the leaves (uniform
/// leaf depth), node fan-out respects [min_entries, max_entries] (root
/// exempt from the minimum), no node is reachable twice, and the leaf
/// entries add up to tree.size().
AuditReport AuditRStarTree(const RStarTree& tree);

/// AuditRStarTree plus the I_R augmentation invariants: per-node pivot
/// lb/ub boxes contain the exact pivot distances of every POI underneath,
/// node keyword signatures cover member signatures (sup_K ⊇ sub_K per POI),
/// and subtree_pois counts are exact.
AuditReport AuditPoiIndex(const PoiIndex& index);

/// Validates the I_S partition tree: leaf user lists are disjoint and cover
/// every user exactly once (consistent with leaf_of_user), levels decrease
/// by one toward the leaves, subtree_users counts are exact, and the
/// interest (Eqs. 9-10), social-pivot (Eqs. 11-12) and road-pivot
/// (Eqs. 13-14) lb/ub boxes contain every member user.
AuditReport AuditSocialIndex(const SocialIndex& index);

/// The pruning rule behind an audited event (names match the lemmas of
/// Sections 3-4, see core/pruning.h).
enum class PruneRule : int {
  kUserInterest = 0,       // Lemma 3 / Corollary 1.
  kUserSocialDistance,     // Lemma 4 (pivot lower bound).
  kSocialNodeInterest,     // Lemma 8.
  kSocialNodeDistance,     // Lemma 9 / Eq. 19.
  kPoiMatch,               // Lemma 1 (sup_K superset).
  kRoadNodeMatch,          // Lemma 6 / Eq. 15.
  kPoiDistanceBound,       // Eq. 17 object form (lb of dist_RN(u_q, o_i)).
  kPairDistanceBound,      // Lemma 5 (lb of dist_RN(u, o_i) via pivots).
  kNumRules,               // Sentinel.
};

const char* PruneRuleName(PruneRule rule);

struct PruningAuditorOptions {
  /// Re-test every Nth event per rule (1 = every event). Brute-force
  /// re-tests run BFS / Dijkstra, so production-shaped audit runs want a
  /// stride; tests use 1 for determinism.
  uint32_t sample_period = 17;
  /// Node-level events re-test at most this many members of the pruned
  /// subtree (evenly strided, deterministic).
  int max_members_checked = 8;
  /// Abort with a diagnostic on the first violation (the GPSSN_AUDIT
  /// default). Tests set false and assert on violations() instead.
  bool abort_on_violation = true;
};

/// Sampling pruning-soundness recorder. Owns its own BFS / Dijkstra arenas;
/// not thread-safe — use one per processor, like the processor itself.
class PruningAuditor {
 public:
  /// Both indexes must be built over the same network and outlive the
  /// auditor.
  PruningAuditor(const PoiIndex* poi_index, const SocialIndex* social_index,
                 const PruningAuditorOptions& options = {});

  // --- Event hooks (called by GpssnProcessor at its prune sites). ---

  /// Object-level user prune (kUserInterest | kUserSocialDistance).
  void OnUserPruned(const QueryUserContext& ctx, UserId u, PruneRule rule);
  /// Node-level I_S prune (kSocialNodeInterest | kSocialNodeDistance).
  void OnSocialNodePruned(const QueryUserContext& ctx, SNodeId node,
                          PruneRule rule);
  /// Lemma 1: POI discarded as a ball center by the sup_K match score.
  void OnPoiMatchPruned(const QueryUserContext& ctx, PoiId poi);
  /// Lemma 6: I_R node discarded by the bit-vector match upper bound.
  void OnRoadNodeMatchPruned(const QueryUserContext& ctx, RNodeId node);
  /// Eq. 17 object form: the traversal claimed dist_RN(u_q, poi) >= lb.
  void OnPoiDistanceBound(const QueryUserContext& ctx, PoiId poi, double lb);
  /// Lemma 5: refinement claimed dist_RN(user, center) >= lb.
  void OnPairDistanceBound(const QueryUserContext& ctx, UserId user,
                           PoiId center, double lb);

  // --- Outcome. ---

  int64_t events() const { return events_; }
  int64_t samples() const { return samples_; }
  int64_t violations() const {
    return static_cast<int64_t>(issues_.size());
  }
  const std::vector<AuditIssue>& issues() const { return issues_; }
  const PruningAuditorOptions& options() const { return options_; }

 private:
  /// Counts the event; true when this one is sampled for re-testing.
  bool Sample(PruneRule rule);
  /// Records (and, per options, aborts on) one unsound prune.
  void Report(PruneRule rule, int32_t node, std::string detail);
  /// Exact hop labels around ctx's issuer, bounded by τ−1 (cached across
  /// events of the same query).
  void EnsureIssuerBfs(const QueryUserContext& ctx);
  /// Users under an I_S node, via DFS.
  void CollectSubtreeUsers(SNodeId node, std::vector<UserId>* out) const;
  /// POIs under an I_R node, via DFS.
  void CollectSubtreePois(RNodeId node, std::vector<PoiId>* out) const;

  const PoiIndex* poi_index_;
  const SocialIndex* social_index_;
  PruningAuditorOptions options_;
  BfsEngine bfs_;
  DijkstraEngine engine_;
  PoiLocator locator_;
  UserId bfs_issuer_ = kInvalidUser;
  int bfs_bound_ = -1;
  std::array<uint64_t, static_cast<size_t>(PruneRule::kNumRules)> counters_{};
  int64_t events_ = 0;
  int64_t samples_ = 0;
  std::vector<AuditIssue> issues_;
};

/// Thread-safe adapter for prune sites reached from parallel lanes: every
/// hook serializes on an internal Mutex before touching the wrapped (not
/// thread-safe) PruningAuditor, so concurrently stolen refinement lanes may
/// all notify the same auditor. A null wrapped auditor makes every hook a
/// cheap no-op (the pointer itself is read without the lock; only the
/// POINTEE is guarded).
class SerializedPruningAuditor {
 public:
  explicit SerializedPruningAuditor(PruningAuditor* auditor)
      : auditor_(auditor) {}

  GPSSN_DISALLOW_COPY_AND_MOVE(SerializedPruningAuditor);

  bool enabled() const { return auditor_ != nullptr; }

  void OnUserPruned(const QueryUserContext& ctx, UserId u, PruneRule rule)
      GPSSN_EXCLUDES(mu_);
  void OnSocialNodePruned(const QueryUserContext& ctx, SNodeId node,
                          PruneRule rule) GPSSN_EXCLUDES(mu_);
  void OnPoiMatchPruned(const QueryUserContext& ctx, PoiId poi)
      GPSSN_EXCLUDES(mu_);
  void OnRoadNodeMatchPruned(const QueryUserContext& ctx, RNodeId node)
      GPSSN_EXCLUDES(mu_);
  void OnPoiDistanceBound(const QueryUserContext& ctx, PoiId poi, double lb)
      GPSSN_EXCLUDES(mu_);
  void OnPairDistanceBound(const QueryUserContext& ctx, UserId user,
                           PoiId center, double lb) GPSSN_EXCLUDES(mu_);

 private:
  Mutex mu_;
  PruningAuditor* const auditor_ GPSSN_PT_GUARDED_BY(mu_);
};

}  // namespace gpssn

#endif  // GPSSN_CORE_AUDIT_H_
