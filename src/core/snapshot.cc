#include "core/snapshot.h"
#include <algorithm>

#include <fstream>

#include "ssn/serialize.h"

namespace gpssn {

namespace {
constexpr char kSnapshotMagic[] = "gpssn-snapshot-v1";
constexpr size_t kMaxKeywords = 1u << 20;
}  // namespace

Status SaveSnapshot(const GpssnDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << kSnapshotMagic << "\n";
  GPSSN_RETURN_NOT_OK(WriteSsnBody(out, db.ssn()));

  const PoiIndexOptions& poi_options = db.poi_index().options();
  const SocialIndexOptions& social_options = db.social_index().options();
  out << "build " << poi_options.r_min << " " << poi_options.r_max << " "
      << poi_options.sub_samples_per_node << " " << poi_options.page_size
      << " " << poi_options.rtree.max_entries << " "
      << poi_options.rtree.reinsert_fraction << " "
      << social_options.leaf_cell_size << " " << social_options.fanout << " "
      << social_options.page_size << " " << poi_options.seed << "\n";

  const auto& road_pivots = db.road_pivots().pivots();
  const auto& social_pivots = db.social_pivots().pivots();
  out << "pivots " << road_pivots.size() << " " << social_pivots.size();
  for (VertexId v : road_pivots) out << " " << v;
  for (UserId u : social_pivots) out << " " << u;
  out << "\n";

  out << "poiaug " << db.ssn().num_pois() << "\n";
  for (PoiId id = 0; id < db.ssn().num_pois(); ++id) {
    const PoiAug& aug = db.poi_index().poi_aug(id);
    out << aug.sup_keywords.size();
    for (KeywordId kw : aug.sup_keywords) out << " " << kw;
    out << " " << aug.sub_keywords.size();
    for (KeywordId kw : aug.sub_keywords) out << " " << kw;
    out << "\n";
  }
  out << "end\n";
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::unique_ptr<GpssnDatabase>> LoadSnapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string magic;
  if (!(in >> magic) || magic != kSnapshotMagic) {
    return Status::IoError("bad snapshot magic in " + path);
  }
  GPSSN_ASSIGN_OR_RETURN(SpatialSocialNetwork ssn, ReadSsnBody(in));

  std::string section;
  GpssnBuildOptions build;
  if (!(in >> section >> build.poi_index.r_min >> build.poi_index.r_max >>
        build.poi_index.sub_samples_per_node >> build.poi_index.page_size >>
        build.poi_index.rtree.max_entries >>
        build.poi_index.rtree.reinsert_fraction >>
        build.social_index.leaf_cell_size >> build.social_index.fanout >>
        build.social_index.page_size >> build.seed) ||
      section != "build") {
    return Status::IoError("malformed snapshot build section");
  }

  size_t num_road_pivots = 0, num_social_pivots = 0;
  if (!(in >> section >> num_road_pivots >> num_social_pivots) ||
      section != "pivots" || num_road_pivots == 0 || num_social_pivots == 0 ||
      num_road_pivots > static_cast<size_t>(ssn.road().num_vertices()) ||
      num_social_pivots > static_cast<size_t>(ssn.num_users())) {
    return Status::IoError("malformed snapshot pivots section");
  }
  build.num_road_pivots = static_cast<int>(num_road_pivots);
  build.num_social_pivots = static_cast<int>(num_social_pivots);
  std::vector<VertexId> road_pivots(num_road_pivots);
  for (auto& v : road_pivots) {
    if (!(in >> v) || v < 0 || v >= ssn.road().num_vertices()) {
      return Status::IoError("bad road pivot id");
    }
  }
  std::vector<UserId> social_pivots(num_social_pivots);
  for (auto& u : social_pivots) {
    if (!(in >> u) || u < 0 || u >= ssn.num_users()) {
      return Status::IoError("bad social pivot id");
    }
  }

  int num_pois = 0;
  if (!(in >> section >> num_pois) || section != "poiaug" ||
      num_pois != ssn.num_pois()) {
    return Status::IoError("malformed snapshot poiaug section");
  }
  std::vector<PoiAug> augs(num_pois);
  auto read_keywords = [&](std::vector<KeywordId>* out_kws) -> Status {
    size_t count = 0;
    if (!(in >> count) || count > kMaxKeywords) {
      return Status::IoError("bad keyword count in snapshot");
    }
    out_kws->resize(count);
    for (auto& kw : *out_kws) {
      if (!(in >> kw) || kw < 0 || kw >= ssn.num_topics()) {
        return Status::IoError("bad keyword id in snapshot");
      }
    }
    if (!std::is_sorted(out_kws->begin(), out_kws->end())) {
      return Status::IoError("snapshot keyword sets must be sorted");
    }
    return Status::OK();
  };
  for (PoiId id = 0; id < num_pois; ++id) {
    GPSSN_RETURN_NOT_OK(read_keywords(&augs[id].sup_keywords));
    GPSSN_RETURN_NOT_OK(read_keywords(&augs[id].sub_keywords));
  }
  if (!(in >> section) || section != "end") {
    return Status::IoError("missing snapshot trailer");
  }

  return std::make_unique<GpssnDatabase>(std::move(ssn), build,
                                         std::move(road_pivots),
                                         std::move(social_pivots),
                                         std::move(augs));
}

}  // namespace gpssn
