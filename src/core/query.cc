#include "core/query.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <queue>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "common/macros.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "core/audit.h"
#include "core/pruning.h"
#include "core/refinement.h"
#include "core/scores.h"
#include "roadnet/distance_cache.h"

namespace gpssn {

// One lane of the intra-query parallel refinement. Lane 0 is the calling
// thread (it reuses the processor's main distance engine); helper lanes own
// a private engine because engine arenas are not thread-safe. The row cache
// mirrors RefineScratch's stamped layout but is lane-private: during the
// parallel region the shared scratch is read-only (only rows computed
// BEFORE the fan-out — the issuer's — live there), so lanes never race on
// it. Reused across queries; declared in query.h.
struct IntraLane {
  const DistanceBackend* source = nullptr;  // Backend `engine` came from.
  uint64_t source_generation = 0;  // Backend POI generation at creation.
  std::unique_ptr<DistanceEngine> engine;   // Null for lane 0.
  uint32_t generation = 0;
  std::vector<uint32_t> user_stamp;
  std::vector<int32_t> user_row;
  std::vector<double> rows;
  std::unordered_map<uint64_t, bool> match_memo;  // (user, center) -> ok.
};

namespace {

// Min-heap entry of the I_R traversal: (key, node), key = lb of the
// maximum distance (Eq. 17).
using HeapEntry = std::pair<double, RNodeId>;
struct HeapGreater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.first > b.first;
  }
};
using RoadHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater>;

// Cached per-center refinement data.
struct CenterInfo {
  std::vector<PoiId> ball;                 // R = B(o_i, r), sorted.
  std::vector<std::pair<PoiId, double>> ball_dists;  // From the center.
  std::vector<KeywordId> union_keywords;   // ∪_{o∈R} o.K.
  bool issuer_matches = false;
  // Bitset form of union_keywords, built only when the SoA social scratch
  // is live; MaskedMatchScore over it is bit-identical to MatchScore.
  DynamicBitset keyword_mask;
  bool has_mask = false;
};

// Accrues elapsed wall time into *out on destruction; attributes phase
// time across the multiple exit paths of ExecuteImpl.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(double* out) : out_(out) {}
  ~ScopedPhaseTimer() { *out_ += timer_.ElapsedSeconds(); }
  GPSSN_DISALLOW_COPY_AND_MOVE(ScopedPhaseTimer);

 private:
  WallTimer timer_;
  double* out_;
};

}  // namespace

GpssnProcessor::GpssnProcessor(const PoiIndex* poi_index,
                               const SocialIndex* social_index)
    : poi_index_(poi_index),
      social_index_(social_index),
      bfs_(&poi_index->ssn().social()),
      default_backend_(MakeDijkstraBackend(&poi_index->ssn().road(),
                                           &poi_index->ssn().pois())) {
  GPSSN_CHECK(poi_index != nullptr && social_index != nullptr);
  GPSSN_CHECK(&poi_index->ssn() == &social_index->ssn());
  default_engine_ = default_backend_->CreateEngine();
#ifdef GPSSN_AUDIT
  // Audit builds: refuse to run queries over structurally corrupt indexes,
  // and default every query to the abort-on-violation soundness sampler.
  const AuditReport poi_report = AuditPoiIndex(*poi_index);
  if (!poi_report.ok()) {
    std::fprintf(stderr, "I_R audit failed:\n%s\n",
                 poi_report.ToString().c_str());
    std::abort();
  }
  const AuditReport social_report = AuditSocialIndex(*social_index);
  if (!social_report.ok()) {
    std::fprintf(stderr, "I_S audit failed:\n%s\n",
                 social_report.ToString().c_str());
    std::abort();
  }
  default_auditor_ =
      std::make_unique<PruningAuditor>(poi_index, social_index);
#endif
}

GpssnProcessor::~GpssnProcessor() = default;

DistanceEngine* GpssnProcessor::EngineFor(const QueryOptions& options) {
  if (options.distance_backend == nullptr) return default_engine_.get();
  const uint64_t generation = options.distance_backend->poi_generation();
  if (plugged_source_ != options.distance_backend ||
      plugged_generation_ != generation) {
    plugged_engine_ = options.distance_backend->CreateEngine();
    plugged_source_ = options.distance_backend;
    plugged_generation_ = generation;
  }
  return plugged_engine_.get();
}

void GpssnProcessor::RefineScratch::BeginQuery(size_t num_users,
                                               size_t num_pois) {
  if (poi_stamp.size() < num_pois) {
    poi_stamp.resize(num_pois, 0);
    poi_slot.resize(num_pois, 0);
  }
  if (user_stamp.size() < num_users) {
    user_stamp.resize(num_users, 0);
    user_row.resize(num_users, 0);
  }
  ++generation;
  if (generation == 0) {  // Stamp wrap-around: hard reset.
    std::fill(poi_stamp.begin(), poi_stamp.end(), 0);
    std::fill(user_stamp.begin(), user_stamp.end(), 0);
    generation = 1;
  }
  needed.clear();
  needed_positions.clear();
  rows.clear();
}

Result<GpssnAnswer> GpssnProcessor::Execute(const GpssnQuery& query,
                                            const QueryOptions& options,
                                            QueryStats* stats) {
  const SpatialSocialNetwork& ssn = poi_index_->ssn();
  if (query.issuer < 0 || query.issuer >= ssn.num_users()) {
    return Status::InvalidArgument("query issuer out of range");
  }
  if (query.tau < 1 || query.tau > ssn.num_users()) {
    return Status::InvalidArgument("group size tau out of range");
  }
  if (query.gamma < 0.0 || query.theta < 0.0) {
    return Status::InvalidArgument("negative score threshold");
  }
  if (query.radius < poi_index_->options().r_min ||
      query.radius > poi_index_->options().r_max) {
    return Status::InvalidArgument(
        "radius outside the index's [r_min, r_max] envelope");
  }

  QueryStats local;
  QueryStats* out = stats != nullptr ? stats : &local;
  *out = QueryStats();
  WallTimer timer;

  // Distinguishes the two cooperative-interruption causes once ExecuteImpl
  // reports one (external cancel wins: it implies the caller no longer
  // wants the answer regardless of the deadline).
  auto interrupted_status = [&options]() {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {  // gpssn-lint: relaxed(cooperative cancel flag; latency not ordering)
      return Status::Cancelled("query cancelled");
    }
    return Status::DeadlineExceeded("query deadline exceeded");
  };

  double final_delta = kInfDistance;
  bool interrupted = false;
  std::vector<GpssnAnswer> top =
      ExecuteImpl(query, options, /*top_k=*/1, out, &final_delta, &interrupted);
  if (interrupted) {
    out->cpu_seconds = timer.ElapsedSeconds();
    return interrupted_status();
  }
  GpssnAnswer answer = top.empty() ? GpssnAnswer() : std::move(top.front());

  // δ-cut exactness check (see the header comment): if the best found
  // objective exceeds the final δ — or nothing was found although the cut
  // pruned candidates — re-run without the cut.
  const bool delta_was_used =
      options.pruning.road_distance &&
      (out->road_nodes_pruned_distance > 0 || out->pois_pruned_distance > 0);
  if (delta_was_used &&
      (!answer.found || answer.max_dist > final_delta + 1e-12)) {
    QueryOptions relaxed = options;
    relaxed.pruning.road_distance = false;
    QueryStats rerun_stats;
    double unused = kInfDistance;
    std::vector<GpssnAnswer> rerun = ExecuteImpl(
        query, relaxed, /*top_k=*/1, &rerun_stats, &unused, &interrupted);
    if (interrupted) {
      out->cpu_seconds = timer.ElapsedSeconds();
      return interrupted_status();
    }
    GpssnAnswer exact = rerun.empty() ? GpssnAnswer() : std::move(rerun.front());
    // Keep the first run's pruning counters (they describe the indexed
    // fast path) but charge the extra I/O and refinement work.
    out->io.logical_accesses += rerun_stats.io.logical_accesses;
    out->io.page_misses += rerun_stats.io.page_misses;
    out->pairs_examined += rerun_stats.pairs_examined;
    out->exact_distance_evals += rerun_stats.exact_distance_evals;
    out->truncated = out->truncated || rerun_stats.truncated;
    out->descent_seconds += rerun_stats.descent_seconds;
    out->ball_seconds += rerun_stats.ball_seconds;
    out->refine_seconds += rerun_stats.refine_seconds;
    out->exact_dist_seconds += rerun_stats.exact_dist_seconds;
    out->dist_cache_row_hits += rerun_stats.dist_cache_row_hits;
    out->dist_cache_row_misses += rerun_stats.dist_cache_row_misses;
    // Non-strict: on an exact objective tie the rerun's answer wins — it is
    // the discovery-order winner over the FULL (δ-free) candidate set, the
    // same set the sharded serving path evaluates, keeping the two paths'
    // answers identical in the (measure-zero) tie-at-fallback case.
    if (exact.found &&
        (!answer.found || exact.max_dist <= answer.max_dist)) {
      answer = std::move(exact);
    }
  }

  out->cpu_seconds = timer.ElapsedSeconds();
  return answer;
}

Result<std::vector<GpssnAnswer>> GpssnProcessor::ExecuteTopK(
    const GpssnQuery& query, int k, const QueryOptions& options,
    QueryStats* stats) {
  if (k < 1) return Status::InvalidArgument("top-k requires k >= 1");
  if (k == 1) {
    GPSSN_ASSIGN_OR_RETURN(GpssnAnswer answer,
                           Execute(query, options, stats));
    std::vector<GpssnAnswer> out;
    if (answer.found) out.push_back(std::move(answer));
    return out;
  }
  // Validate through the single-answer path's checks by reusing Execute's
  // precondition tests.
  const SpatialSocialNetwork& ssn = poi_index_->ssn();
  if (query.issuer < 0 || query.issuer >= ssn.num_users() || query.tau < 1 ||
      query.gamma < 0.0 || query.theta < 0.0 ||
      query.radius < poi_index_->options().r_min ||
      query.radius > poi_index_->options().r_max) {
    return Status::InvalidArgument("malformed GP-SSN query");
  }
  QueryStats local;
  QueryStats* out = stats != nullptr ? stats : &local;
  *out = QueryStats();
  WallTimer timer;
  // The δ cut is only safe for the single optimum; disable it for k > 1.
  QueryOptions relaxed = options;
  relaxed.pruning.road_distance = false;
  double unused = kInfDistance;
  bool interrupted = false;
  std::vector<GpssnAnswer> results =
      ExecuteImpl(query, relaxed, k, out, &unused, &interrupted);
  out->cpu_seconds = timer.ElapsedSeconds();
  if (interrupted) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {  // gpssn-lint: relaxed(cooperative cancel flag; latency not ordering)
      return Status::Cancelled("query cancelled");
    }
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return results;
}

std::vector<GpssnAnswer> GpssnProcessor::ExecuteImpl(const GpssnQuery& query,
                                                     const QueryOptions& options,
                                                     int top_k,
                                                     QueryStats* stats,
                                                     double* final_delta,
                                                     bool* interrupted) {
  // Cooperative interruption (deadline / external cancel). Polled at every
  // loop boundary below; `aborted` lets the nested traversal lambdas
  // unwind without partial-answer leakage. The longest unpolled stretch is
  // one bounded Dijkstra inside get_user_dists, which bounds the latency
  // overshoot past a deadline.
  *interrupted = false;
  bool aborted = false;
  auto interrupted_now = [&options]() {
    return (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed)) ||  // gpssn-lint: relaxed(cooperative cancel flag; latency not ordering)
           options.deadline.Expired();
  };
  if (interrupted_now()) {
    *interrupted = true;
    return {};
  }

  const SpatialSocialNetwork& ssn = poi_index_->ssn();
  const SocialNetwork& social = ssn.social();
  const PruningFlags& flags = options.pruning;
  BufferPool pool(options.buffer_pool_pages);
  QueryUserContext ctx(query, *social_index_);
  DistanceEngine& dist_engine = *EngineFor(options);
  WallTimer descent_timer;

  // Pruning-soundness auditor (core/audit.h): caller-supplied, or the
  // processor default in GPSSN_AUDIT builds, or null (one pointer test per
  // prune event — negligible).
  PruningAuditor* auditor =
      options.auditor != nullptr ? options.auditor : default_auditor_.get();

  // Exact hop labels around u_q (Lemma 4 with exact distances): any member
  // of a connected τ-group containing u_q is within τ−1 hops of u_q, so a
  // bounded BFS gives an exact object-level social-distance filter. It runs
  // against the in-memory friendship adjacency (social graphs fit in RAM;
  // the paper's disk-resident structures are the two indexes), so it does
  // not charge page I/O.
  if (flags.social_distance) {
    bfs_.Run(query.issuer, query.tau - 1);
  }

  // ---------------------------------------------------------------- Phase 1
  // Algorithm 2 lines 1-28: synchronized index traversal.
  std::vector<SNodeId> s_frontier = {social_index_->root()};
  std::vector<UserId> user_cands;
  std::vector<PoiId> r_cand;
  double delta = kInfDistance;

  // Upper bound of dist(candidate user, rp_k) over the current S-side
  // frontier (used by Eq. 16 / δ updates). Always covers u_q.
  const int h = poi_index_->pivots().num_pivots();
  std::vector<double> s_ub_rp = ctx.rp_dist;
  auto refresh_s_ub = [&]() {
    s_ub_rp = ctx.rp_dist;
    for (SNodeId id : s_frontier) {
      const SocialIndexNode& node = social_index_->node(id);
      for (int k = 0; k < h; ++k) {
        s_ub_rp[k] = std::max(s_ub_rp[k], node.ub_rp[k]);
      }
    }
  };
  refresh_s_ub();

  RoadHeap heap;
  heap.push({0.0, poi_index_->tree().root()});

  // One "round" of the I_R traversal: drains the heap into the next-level
  // heap (Algorithm 2 lines 11-26), pruning with the CURRENT S-side bounds.
  auto process_ir_round = [&]() {
    RoadHeap next;
    while (!heap.empty()) {
      if (interrupted_now()) {
        aborted = true;
        return;
      }
      const auto [key, node_id] = heap.top();
      heap.pop();
      if (flags.road_distance && key > delta) {
        // Line 14: every remaining entry has key >= this one.
        const PoiNodeAug& aug = poi_index_->node_aug(node_id);
        ++stats->road_nodes_pruned_distance;
        stats->pois_pruned_at_index_level += aug.subtree_pois;
        while (!heap.empty()) {
          ++stats->road_nodes_pruned_distance;
          stats->pois_pruned_at_index_level +=
              poi_index_->node_aug(heap.top().second).subtree_pois;
          heap.pop();
        }
        break;
      }
      const RTreeNode& node = poi_index_->tree().node(node_id);
      ++stats->road_nodes_visited;
      pool.Access(poi_index_->node_aug(node_id).page);
      if (node.is_leaf()) {
        for (const RTreeEntry& e : node.entries) {
          ++stats->pois_seen;
          pool.Access(poi_index_->poi_page(e.id));
          const PoiAug& aug = poi_index_->poi_aug(e.id);
          if (flags.match_score && PrunePoiMatch(ctx, aug)) {
            ++stats->pois_pruned_match;
            if (auditor != nullptr) auditor->OnPoiMatchPruned(ctx, e.id);
            continue;
          }
          const double lb = LbDistToPoi(ctx, aug);
          if (flags.road_distance && lb > delta) {
            ++stats->pois_pruned_distance;
            if (auditor != nullptr) auditor->OnPoiDistanceBound(ctx, e.id, lb);
            continue;
          }
          r_cand.push_back(e.id);
          // δ update (line 20), guarded by the Eq. 18-style lower-bound
          // feasibility check: u_q must already match the inner ball.
          if (MatchScore(ctx.w_q, aug.sub_keywords) >= query.theta) {
            delta = std::min(
                delta, UbMaxDistViaCenter(s_ub_rp, aug, query.radius));
          }
        }
      } else {
        for (const RTreeEntry& e : node.entries) {
          const PoiNodeAug& child = poi_index_->node_aug(e.id);
          if (flags.match_score && PruneRoadNodeMatch(ctx, child)) {
            ++stats->road_nodes_pruned_match;
            stats->pois_pruned_at_index_level += child.subtree_pois;
            if (auditor != nullptr) auditor->OnRoadNodeMatchPruned(ctx, e.id);
            continue;
          }
          const double lb =
              LbMaxDistToRoadNode(ctx, child.lb_pivot, child.ub_pivot);
          if (flags.road_distance && lb > delta) {
            ++stats->road_nodes_pruned_distance;
            stats->pois_pruned_at_index_level += child.subtree_pois;
            continue;
          }
          next.push({lb, e.id});
        }
      }
    }
    heap = std::move(next);
  };

  // Descend I_S level by level (lines 4-10), one I_R round per level.
  {
    // The root itself is visited unconditionally.
    ++stats->social_nodes_visited;
    pool.Access(social_index_->node(social_index_->root()).page);
  }
  for (int level = social_index_->height() - 1; level >= 1 && !aborted;
       --level) {
    if (interrupted_now()) {
      aborted = true;
      break;
    }
    std::vector<SNodeId> next_frontier;
    for (SNodeId id : s_frontier) {
      const SocialIndexNode& node = social_index_->node(id);
      for (SNodeId child_id : node.children) {
        const SocialIndexNode& child = social_index_->node(child_id);
        ++stats->social_nodes_visited;
        pool.Access(child.page);
        if (flags.interest_score && PruneSocialNodeInterest(ctx, child)) {
          ++stats->social_nodes_pruned_interest;
          stats->users_pruned_at_index_level += child.subtree_users;
          if (auditor != nullptr) {
            auditor->OnSocialNodePruned(ctx, child_id,
                                        PruneRule::kSocialNodeInterest);
          }
          continue;
        }
        if (flags.social_distance && PruneSocialNodeDistance(ctx, child)) {
          ++stats->social_nodes_pruned_distance;
          stats->users_pruned_at_index_level += child.subtree_users;
          if (auditor != nullptr) {
            auditor->OnSocialNodePruned(ctx, child_id,
                                        PruneRule::kSocialNodeDistance);
          }
          continue;
        }
        next_frontier.push_back(child_id);
      }
    }
    s_frontier = std::move(next_frontier);
    refresh_s_ub();
    process_ir_round();
  }

  // I_S leaf level: object-level user pruning (Section 3.2).
  uint32_t poll_stride = 0;
  for (SNodeId id : s_frontier) {
    if (aborted) break;
    const SocialIndexNode& leaf = social_index_->node(id);
    for (UserId u : leaf.users) {
      if ((++poll_stride & 255u) == 0 && interrupted_now()) {
        aborted = true;
        break;
      }
      ++stats->users_seen;
      pool.Access(social_index_->user_page(u));
      if (u == query.issuer) {
        user_cands.push_back(u);
        continue;
      }
      // The hop filter is cheaper (two array lookups) than the interest dot
      // product, so it runs first. Only the pivot lower bound (Lemma 4) is
      // audit-relevant; the BFS labels are exact by construction.
      if (flags.social_distance) {
        const bool pivot_pruned =
            PruneUserSocialDistance(ctx, social_index_->social_pivots(), u);
        if (pivot_pruned || bfs_.Hops(u) >= query.tau) {
          ++stats->users_pruned_distance;
          if (pivot_pruned && auditor != nullptr) {
            auditor->OnUserPruned(ctx, u, PruneRule::kUserSocialDistance);
          }
          continue;
        }
      }
      if (flags.interest_score &&
          PruneUserInterest(ctx, social.Interests(u))) {
        ++stats->users_pruned_interest;
        if (auditor != nullptr) {
          auditor->OnUserPruned(ctx, u, PruneRule::kUserInterest);
        }
        continue;
      }
      user_cands.push_back(u);
    }
  }
  // Ensure the issuer survives even if its leaf was (incorrectly
  // aggressively) pruned at node level — u_q is in S by definition.
  if (std::find(user_cands.begin(), user_cands.end(), query.issuer) ==
      user_cands.end()) {
    user_cands.push_back(query.issuer);
  }

  // Remaining I_R levels (lines 27-28).
  int guard = poi_index_->height() + 2;
  while (!heap.empty() && guard-- > 0 && !aborted) process_ir_round();
  if (aborted) {
    *interrupted = true;
    return {};
  }

  stats->users_candidates = user_cands.size();
  stats->pois_candidates = r_cand.size();
  stats->descent_seconds += descent_timer.ElapsedSeconds();

  // ---------------------------------------------------------------- Phase 2
  // Refinement (lines 29-31).
  const ScopedPhaseTimer refine_phase(&stats->refine_seconds);

  // δ-based user filter (Lemma 5 applied user-side): any member u of a
  // group achieving objective <= δ satisfies dist(u, center) <= δ for the
  // answer's center (the center lies in its own ball), so users whose
  // pivot lower bound exceeds δ against EVERY candidate center cannot
  // appear in a δ-beating answer. Safe under the same a-posteriori δ check
  // as the traversal cut (Execute re-runs without road-distance pruning
  // when the check fails).
  if (flags.road_distance && std::isfinite(delta) && !r_cand.empty()) {
    std::vector<UserId> kept;
    kept.reserve(user_cands.size());
    for (UserId u : user_cands) {
      if (u == query.issuer) {
        kept.push_back(u);
        continue;
      }
      const auto& rp = social_index_->user_road_pivot_dists(u);
      bool reachable = false;
      for (PoiId c : r_cand) {
        const double lb = LbUserPoiDist(rp, poi_index_->poi_aug(c));
        if (auditor != nullptr) auditor->OnPairDistanceBound(ctx, u, c, lb);
        if (lb <= delta) {
          reachable = true;
          break;
        }
      }
      if (reachable) {
        kept.push_back(u);
      } else {
        ++stats->users_pruned_distance;
      }
    }
    user_cands = std::move(kept);
  }

  // SoA social scratch: built once from the surviving candidates;
  // Corollary 2, the ESU enumerator, and the matching-score checks below
  // all share its aligned interest matrix, adjacency bitsets, and pairwise
  // memo. The memo is O(n²/2) bytes, so very large candidate sets fall
  // back to the scalar kernels.
  SocialScratch* social_scratch = nullptr;
  if (options.vectorized_social_kernels &&
      user_cands.size() <=
          static_cast<size_t>(options.social_scratch_max_candidates)) {
    social_scratch_.Build(social, query, user_cands);
    social_scratch = &social_scratch_;
  }

  if (flags.interest_score) {
    ApplyCorollary2(social, query, &user_cands, stats, social_scratch);
  }

  std::vector<std::vector<UserId>> groups;
  if (options.subset_sampling) {
    SampleGroups(social, query, user_cands, options.subset_samples,
                 options.seed, &groups);
  } else {
    if (!EnumerateGroups(social, query, user_cands, options.max_groups,
                         &groups, social_scratch)) {
      stats->truncated = true;
    }
  }
  stats->groups_enumerated = groups.size();
  if (social_scratch != nullptr) {
    stats->interest_pairs_scored += social_scratch->pairs_scored();
  }

  // Up to top_k answers, kept sorted by ascending objective.
  std::vector<GpssnAnswer> best;
  auto bound = [&]() {
    return static_cast<int>(best.size()) < top_k ? kInfDistance
                                                 : best.back().max_dist;
  };
  if (groups.empty() || r_cand.empty()) {
    stats->io.logical_accesses += pool.stats().logical_accesses;
    stats->io.page_misses += pool.stats().page_misses;
    *final_delta = delta;
    return best;
  }

  // Candidate centers, initially ordered by the issuer's pivot lower bound
  // (re-ordered by EXACT issuer distances below, once balls materialize).
  std::vector<std::pair<double, PoiId>> centers;
  centers.reserve(r_cand.size());
  for (PoiId id : r_cand) {
    centers.emplace_back(LbDistToPoi(ctx, poi_index_->poi_aug(id)), id);
  }
  std::sort(centers.begin(), centers.end());

  // Per-user exact distances to ball-member POIs, computed lazily with one
  // bounded search per user (bound = best objective at compute time; a
  // kInfDistance row entry therefore proves the pair cannot beat the
  // best). Backed by processor-owned flat stamped scratch (RefineScratch)
  // instead of per-query hash maps, and optionally by the shared
  // cross-query distance cache.
  scratch_.BeginQuery(static_cast<size_t>(ssn.num_users()),
                      static_cast<size_t>(ssn.num_pois()));
  RefineScratch& scr = scratch_;
  std::unordered_map<PoiId, CenterInfo> center_cache;
  // (user, center) match memo: 1 = matches, 0 = fails, absent = unknown.
  std::unordered_map<uint64_t, bool> match_memo;

  // Materialize every candidate center's ball up front (loop further down)
  // so the needed-POI slot table is complete before the first per-user
  // distance row is computed: a row covers every needed POI, and an
  // infinite entry is a proof, not a gap.
  auto get_center = [&](PoiId c) -> const CenterInfo& {
    auto it = center_cache.find(c);
    if (it != center_cache.end()) return it->second;
    const ScopedPhaseTimer ball_phase(&stats->ball_seconds);
    CenterInfo info;
    ++stats->ball_queries;
    if (dist_engine.BallUsesRangeEngine(query.radius)) {
      ++stats->ball_range_engine_queries;
    }
    info.ball_dists =
        dist_engine.BallWithDistances(ssn.poi(c).position, query.radius);
    for (const auto& [id, dist] : info.ball_dists) {
      info.ball.push_back(id);
      if (scr.poi_stamp[id] != scr.generation) {
        scr.poi_stamp[id] = scr.generation;
        scr.poi_slot[id] = static_cast<int32_t>(scr.needed.size());
        scr.needed.push_back(id);
        scr.needed_positions.push_back(ssn.poi(id).position);
      }
      pool.Access(poi_index_->poi_page(id));
    }
    std::sort(info.ball.begin(), info.ball.end());
    info.union_keywords = UnionKeywords(ssn, info.ball);
    info.issuer_matches =
        MatchScore(ctx.w_q, info.union_keywords) >= query.theta;
    if (social_scratch != nullptr) {
      social_scratch->BuildKeywordMask(info.union_keywords,
                                       &info.keyword_mask);
      info.has_mask = true;
    }
    return center_cache.emplace(c, std::move(info)).first->second;
  };

  // Registers the needed-POI targets with the engine exactly once, after
  // every candidate ball has materialized, and pre-sizes the row table so
  // row pointers stay valid for the rest of the query (at most one row per
  // candidate user plus the issuer).
  bool targets_set = false;
  auto ensure_targets = [&]() {
    if (targets_set) return;
    dist_engine.SetTargets(scr.needed_positions);
    scr.rows.reserve((user_cands.size() + 1) * scr.needed.size());
    targets_set = true;
  };

  // Row of exact distances indexed by scr.poi_slot[]; kInfDistance marks
  // "beyond the bound the row was computed with".
  auto get_user_dists = [&](UserId u, double bound) -> const double* {
    const size_t width = scr.needed.size();
    if (scr.user_stamp[u] == scr.generation) {
      return scr.rows.data() + static_cast<size_t>(scr.user_row[u]) * width;
    }
    ensure_targets();
    const int32_t row_index =
        width == 0 ? 0 : static_cast<int32_t>(scr.rows.size() / width);
    scr.rows.resize(scr.rows.size() + width);
    double* row = scr.rows.data() + static_cast<size_t>(row_index) * width;
    bool have_row = false;
    if (options.distance_cache != nullptr && width > 0) {
      bool all_hit = true;
      for (size_t i = 0; i < width; ++i) {
        if (!options.distance_cache->Lookup(u, scr.needed[i], bound,
                                            &row[i])) {
          all_hit = false;
          break;
        }
      }
      if (all_hit) {
        ++stats->dist_cache_row_hits;
        have_row = true;
      } else {
        ++stats->dist_cache_row_misses;
      }
    }
    if (!have_row) {
      const ScopedPhaseTimer exact_phase(&stats->exact_dist_seconds);
      dist_engine.SourceToTargets(ssn.user_home(u), bound, row);
      ++stats->exact_distance_evals;
      if (options.distance_cache != nullptr) {
        for (size_t i = 0; i < width; ++i) {
          options.distance_cache->Insert(u, scr.needed[i], bound, row[i]);
        }
      }
    }
    // Charge the traversal of the user's neighbourhood (adjacency pages).
    pool.Access(social_index_->user_page(u));
    scr.user_stamp[u] = scr.generation;
    scr.user_row[u] = row_index;
    return row;
  };

  for (const auto& [center_lb, c] : centers) {
    if (interrupted_now()) {
      *interrupted = true;
      return {};
    }
    get_center(c);
  }

  // One exact Dijkstra from the issuer (bounded by δ) upgrades the center
  // ordering from pivot lower bounds to the exact issuer-side objective
  // contribution max_{o∈ball} dist(u_q, o): the objective of any pair at
  // center c is at least that, since u_q ∈ S. Centers beyond the bound are
  // dropped outright (covered by the δ a-posteriori check / fallback).
  {
    const double* issuer_dists = get_user_dists(query.issuer, delta);
    std::vector<std::pair<double, PoiId>> exact_centers;
    exact_centers.reserve(centers.size());
    for (const auto& [center_lb, c] : centers) {
      const CenterInfo& info = get_center(c);
      double worst = 0.0;
      bool in_range = !info.ball.empty();
      for (PoiId o : info.ball) {
        const double d = issuer_dists[scr.poi_slot[o]];
        if (d >= kInfDistance) {
          in_range = false;  // Beyond δ (or unreachable): cannot beat it.
          break;
        }
        worst = std::max(worst, d);
      }
      if (in_range) exact_centers.emplace_back(worst, c);
    }
    std::sort(exact_centers.begin(), exact_centers.end());
    centers = std::move(exact_centers);
  }

  // Matching-score predicate of one member against a ball's union
  // keywords. The SoA masked row sum adds the same interest weights in
  // the same (keyword-ascending) order as the scalar MatchScore, so the
  // two paths are bit-identical.
  auto compute_match = [&](UserId u, const CenterInfo& info) {
    if (info.has_mask) {
      const int idx = social_scratch->IndexOf(u);
      if (idx >= 0) {
        return social_scratch->MatchRow(idx, info.keyword_mask) >=
               query.theta;
      }
    }
    return MatchScore(social.Interests(u), info.union_keywords) >=
           query.theta;
  };

  int64_t pair_budget = options.max_refine_pairs;
  // Lane ceiling of the intra-query parallel refinement: the claiming
  // caller plus at most one stolen lane per scheduler worker (never more
  // lanes than centers). How many lanes actually run depends on how many
  // workers are idle when the morsel source is published — a saturated
  // scheduler leaves lane 0 alone, which IS the serial loop plus one
  // publish/retire registry operation. 1 lane = the seed-exact serial path.
  int max_lanes = 1;
  if (options.scheduler != nullptr && !centers.empty()) {
    max_lanes = options.scheduler->num_threads() + 1;
    if (options.intra_query_workers > 0) {
      max_lanes = std::min(max_lanes, options.intra_query_workers);
    } else if (std::thread::hardware_concurrency() <= 1) {
      // A single-core box cannot win from intra-query lanes — thieves only
      // duplicate row computations while timesharing the one core — so the
      // query degenerates to the seed-exact serial loop automatically (no
      // publish, no lane setup). An explicit intra_query_workers overrides
      // this (tests force the morsel path to keep its races covered).
      max_lanes = 1;
    }
    max_lanes =
        std::min(max_lanes, static_cast<int>(centers.size()));
    max_lanes = std::max(max_lanes, 1);
  }

  if (max_lanes <= 1) {
    poll_stride = 0;
    for (const auto& [center_lb, c] : centers) {
      if (interrupted_now()) {
        *interrupted = true;
        return {};
      }
      if (center_lb >= bound()) break;
      const CenterInfo& info = get_center(c);
      if (info.ball.empty()) continue;
      if (!info.issuer_matches) continue;
      const PoiAug& center_aug = poi_index_->poi_aug(c);

      for (const auto& group : groups) {
        if ((++poll_stride & 63u) == 0 && interrupted_now()) {
          *interrupted = true;
          return {};
        }
        // Pivot lower bound of the pair objective (Lemma 5).
        double pair_lb = center_lb;
        for (UserId u : group) {
          const double user_lb = LbUserPoiDist(
              social_index_->user_road_pivot_dists(u), center_aug);
          if (auditor != nullptr) {
            auditor->OnPairDistanceBound(ctx, u, c, user_lb);
          }
          pair_lb = std::max(pair_lb, user_lb);
        }
        if (pair_lb >= bound()) continue;

        // Matching-score predicate for every member (memoized).
        bool all_match = true;
        for (UserId u : group) {
          const uint64_t key =
              (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(c);
          auto mit = match_memo.find(key);
          bool ok;
          if (mit != match_memo.end()) {
            ok = mit->second;
          } else {
            ok = compute_match(u, info);
            match_memo.emplace(key, ok);
          }
          if (!ok) {
            all_match = false;
            break;
          }
        }
        if (!all_match) continue;

        // Exact objective: maxdist_RN(S, B(c, r)). The budget caps only
        // these expensive evaluations; lower-bound skips above are O(h)
        // and free.
        if (--pair_budget < 0) {
          stats->truncated = true;
          break;
        }
        ++stats->pairs_examined;
        double obj = 0.0;
        bool feasible = true;
        for (UserId u : group) {
          const double* dists = get_user_dists(u, bound());
          for (PoiId o : info.ball) {
            const double d = dists[scr.poi_slot[o]];
            if (d >= kInfDistance) {
              feasible = false;  // Distance beyond the bound: cannot win.
              break;
            }
            obj = std::max(obj, d);
          }
          if (!feasible || obj >= bound()) {
            feasible = false;
            break;
          }
        }
        if (!feasible) continue;
        GpssnAnswer answer;
        answer.found = true;
        answer.users = group;
        answer.center = c;
        answer.pois = info.ball;
        answer.max_dist = obj;
        auto it = std::upper_bound(
            best.begin(), best.end(), obj,
            [](double v, const GpssnAnswer& a) { return v < a.max_dist; });
        best.insert(it, std::move(answer));
        if (static_cast<int>(best.size()) > top_k) best.pop_back();
      }
      if (pair_budget < 0) break;
    }
  } else {
    // ------------------------------------------------- Parallel refinement
    // Deterministic parallel-for over the sorted centers. Lanes claim
    // center indices off an atomic cursor and keep private top-k lists
    // keyed by (objective, center position, group index). The serial loop
    // reports exactly the key-minimal k feasible candidates (its
    // upper_bound insert keeps the first-encountered — i.e. key-minimal —
    // answer among equal objectives), so merging the lane lists by key and
    // truncating to k reproduces the serial answers byte for byte at any
    // lane count. Lane-side pruning uses STRICT comparisons against a
    // monotone-decreasing bound (a shared CAS-min incumbent for k = 1, the
    // lane-local k-th objective otherwise): a candidate equal to the bound
    // may still win the key tie-break, so only strictly-worse ones are
    // dropped — never more than the serial loop drops. See DESIGN.md §10.
    struct LaneBest {
      double obj;
      size_t center_pos;
      size_t group_idx;
      GpssnAnswer answer;
    };
    auto lane_key_less = [](const LaneBest& a, const LaneBest& b) {
      return std::tie(a.obj, a.center_pos, a.group_idx) <
             std::tie(b.obj, b.center_pos, b.group_idx);
    };
    struct LaneData {
      std::vector<LaneBest> best;
      QueryStats stats;
      uint64_t claimed = 0;  // Centers this lane actually processed.
    };

    while (intra_lanes_.size() < static_cast<size_t>(max_lanes)) {
      intra_lanes_.push_back(std::make_unique<IntraLane>());
    }
    const DistanceBackend* lane_backend = options.distance_backend != nullptr
                                              ? options.distance_backend
                                              : default_backend_.get();
    const size_t num_users = static_cast<size_t>(ssn.num_users());
    std::vector<DistanceEngine*> lane_engine(max_lanes);
    lane_engine[0] = &dist_engine;
    // Lane pools charge the same logical accesses the serial loop would;
    // lane 0 reuses the main pool (it is the only thread touching it).
    std::vector<std::unique_ptr<BufferPool>> lane_pools(max_lanes);
    std::vector<uint8_t> lane_targets_ready(max_lanes, 0);
    lane_targets_ready[0] = targets_set ? 1 : 0;
    for (int lane = 0; lane < max_lanes; ++lane) {
      IntraLane& ln = *intra_lanes_[lane];
      if (lane > 0) {
        const uint64_t backend_generation = lane_backend->poi_generation();
        if (ln.source != lane_backend || ln.engine == nullptr ||
            ln.source_generation != backend_generation) {
          ln.engine = lane_backend->CreateEngine();
          ln.source = lane_backend;
          ln.source_generation = backend_generation;
        }
        lane_engine[lane] = ln.engine.get();
        lane_pools[lane] =
            std::make_unique<BufferPool>(options.buffer_pool_pages);
      }
      if (ln.user_stamp.size() < num_users) {
        ln.user_stamp.resize(num_users, 0);
        ln.user_row.resize(num_users, 0);
      }
      ++ln.generation;
      if (ln.generation == 0) {  // Stamp wrap-around: hard reset.
        std::fill(ln.user_stamp.begin(), ln.user_stamp.end(), 0);
        ln.generation = 1;
      }
      ln.rows.clear();
      ln.match_memo.clear();
    }

    std::vector<LaneData> lanes(max_lanes);
    std::atomic<size_t> cursor{0};
    std::atomic<bool> par_stop{false};
    std::atomic<bool> par_interrupted{false};
    std::atomic<int64_t> par_budget{pair_budget};
    std::atomic<double> shared_bound{kInfDistance};
    // Hooks on the raw auditor are not thread-safe; every lane notifies
    // through this serializing adapter instead (core/audit.h).
    SerializedPruningAuditor shared_auditor(auditor);

    auto publish_bound = [&](double v) {
      double cur = shared_bound.load(std::memory_order_relaxed);  // gpssn-lint: relaxed(bound is a monotone pruning hint)
      while (v < cur && !shared_bound.compare_exchange_weak(
                            cur, v, std::memory_order_relaxed)) {  // gpssn-lint: relaxed(bound is a monotone pruning hint)
      }
    };

    // Lane-private row of exact distances, same layout and bound-tagging
    // as get_user_dists. The shared scratch is consulted read-only (only
    // pre-fan-out rows — the issuer's — are stamped there); rows computed
    // under an earlier, looser bound stay sound because bounds only
    // decrease (a kInfDistance entry proves d > bound-at-compute >= any
    // later bound).
    auto lane_user_dists = [&](int lane, LaneData& ld, UserId u,
                               double bnd) -> const double* {
      const size_t width = scr.needed.size();
      if (scr.user_stamp[u] == scr.generation) {
        return scr.rows.data() + static_cast<size_t>(scr.user_row[u]) * width;
      }
      IntraLane& ln = *intra_lanes_[lane];
      if (ln.user_stamp[u] == ln.generation) {
        return ln.rows.data() + static_cast<size_t>(ln.user_row[u]) * width;
      }
      if (!lane_targets_ready[lane]) {
        lane_engine[lane]->SetTargets(scr.needed_positions);
        lane_targets_ready[lane] = 1;
      }
      const int32_t row_index =
          width == 0 ? 0 : static_cast<int32_t>(ln.rows.size() / width);
      ln.rows.resize(ln.rows.size() + width);
      double* row = ln.rows.data() + static_cast<size_t>(row_index) * width;
      bool have_row = false;
      if (options.distance_cache != nullptr && width > 0) {
        bool all_hit = true;
        for (size_t i = 0; i < width; ++i) {
          if (!options.distance_cache->Lookup(u, scr.needed[i], bnd,
                                              &row[i])) {
            all_hit = false;
            break;
          }
        }
        if (all_hit) {
          ++ld.stats.dist_cache_row_hits;
          have_row = true;
        } else {
          ++ld.stats.dist_cache_row_misses;
        }
      }
      if (!have_row) {
        const ScopedPhaseTimer exact_phase(&ld.stats.exact_dist_seconds);
        lane_engine[lane]->SourceToTargets(ssn.user_home(u), bnd, row);
        ++ld.stats.exact_distance_evals;
        if (options.distance_cache != nullptr) {
          for (size_t i = 0; i < width; ++i) {
            options.distance_cache->Insert(u, scr.needed[i], bnd, row[i]);
          }
        }
      }
      (lane == 0 ? pool : *lane_pools[lane])
          .Access(social_index_->user_page(u));
      ln.user_stamp[u] = ln.generation;
      ln.user_row[u] = row_index;
      return row;
    };

    auto run_lane = [&](int lane) {
      LaneData& ld = lanes[lane];
      IntraLane& ln = *intra_lanes_[lane];
      auto lane_bound = [&]() {
        if (top_k == 1) return shared_bound.load(std::memory_order_relaxed);  // gpssn-lint: relaxed(bound is a monotone pruning hint)
        return static_cast<int>(ld.best.size()) < top_k
                   ? kInfDistance
                   : ld.best.back().obj;
      };
      uint32_t stride = 0;
      for (;;) {
        if (par_stop.load(std::memory_order_relaxed)) break;  // gpssn-lint: relaxed(lane stop flag; Retire is the barrier)
        // Stolen lanes hand their worker back as soon as a query root task
        // is queued (admission beats help); lane 0 drains whatever remains.
        // Any lane may process any center, so answers are unaffected.
        if (lane != 0 && options.scheduler->HasQueuedTasks()) break;
        const size_t ci = cursor.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(claim counter; each index taken once)
        if (ci >= centers.size()) break;
        if (interrupted_now()) {
          par_interrupted.store(true, std::memory_order_relaxed);  // gpssn-lint: relaxed(lane stop flag; Retire is the barrier)
          par_stop.store(true, std::memory_order_relaxed);  // gpssn-lint: relaxed(lane stop flag; Retire is the barrier)
          break;
        }
        const auto& [center_lb, c] = centers[ci];
        // Centers are sorted by lb and the bound only decreases, so every
        // unclaimed center is strictly worse too: stop claiming.
        if (center_lb > lane_bound()) break;
        ++ld.claimed;
        const CenterInfo& info = center_cache.find(c)->second;
        if (info.ball.empty()) continue;
        if (!info.issuer_matches) continue;
        const PoiAug& center_aug = poi_index_->poi_aug(c);

        for (size_t gi = 0; gi < groups.size(); ++gi) {
          if ((++stride & 63u) == 0) {
            if (par_stop.load(std::memory_order_relaxed)) break;  // gpssn-lint: relaxed(lane stop flag; Retire is the barrier)
            if (interrupted_now()) {
              par_interrupted.store(true, std::memory_order_relaxed);  // gpssn-lint: relaxed(lane stop flag; Retire is the barrier)
              par_stop.store(true, std::memory_order_relaxed);  // gpssn-lint: relaxed(lane stop flag; Retire is the barrier)
              break;
            }
          }
          const auto& group = groups[gi];
          double pair_lb = center_lb;
          for (UserId u : group) {
            const double user_lb = LbUserPoiDist(
                social_index_->user_road_pivot_dists(u), center_aug);
            if (shared_auditor.enabled()) {
              shared_auditor.OnPairDistanceBound(ctx, u, c, user_lb);
            }
            pair_lb = std::max(pair_lb, user_lb);
          }
          if (pair_lb > lane_bound()) continue;

          bool all_match = true;
          for (UserId u : group) {
            const uint64_t key =
                (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(c);
            auto mit = ln.match_memo.find(key);
            bool ok;
            if (mit != ln.match_memo.end()) {
              ok = mit->second;
            } else {
              ok = compute_match(u, info);
              ln.match_memo.emplace(key, ok);
            }
            if (!ok) {
              all_match = false;
              break;
            }
          }
          if (!all_match) continue;

          if (par_budget.fetch_sub(1, std::memory_order_relaxed) <= 0) {  // gpssn-lint: relaxed(budget counter; exactness not required)
            ld.stats.truncated = true;
            par_stop.store(true, std::memory_order_relaxed);  // gpssn-lint: relaxed(lane stop flag; Retire is the barrier)
            break;
          }
          ++ld.stats.pairs_examined;
          double obj = 0.0;
          bool feasible = true;
          for (UserId u : group) {
            const double* dists = lane_user_dists(lane, ld, u, lane_bound());
            for (PoiId o : info.ball) {
              const double d = dists[scr.poi_slot[o]];
              if (d >= kInfDistance) {
                feasible = false;
                break;
              }
              obj = std::max(obj, d);
            }
            if (!feasible || obj > lane_bound()) {
              feasible = false;
              break;
            }
          }
          if (!feasible) continue;
          LaneBest entry;
          entry.obj = obj;
          entry.center_pos = ci;
          entry.group_idx = gi;
          entry.answer.found = true;
          entry.answer.users = group;
          entry.answer.center = c;
          entry.answer.pois = info.ball;
          entry.answer.max_dist = obj;
          auto pos = std::upper_bound(ld.best.begin(), ld.best.end(), entry,
                                      lane_key_less);
          ld.best.insert(pos, std::move(entry));
          if (static_cast<int>(ld.best.size()) > top_k) ld.best.pop_back();
          if (top_k == 1 && !ld.best.empty()) {
            publish_bound(ld.best.front().obj);
          }
        }
      }
    };

    // Fan out by PUBLISHING rather than pushing: the centers become a
    // morsel source on the unified scheduler, the caller runs lane 0
    // itself, and only scheduler workers with nothing better to do steal
    // extra lanes off it. A saturated scheduler therefore costs this query
    // exactly one Publish + Retire registry operation — no queued no-op
    // helper tasks (the PR 5 lend/close handshake, and its QPS
    // regression). Retire() blocks until every in-flight RunMorsels() has
    // returned, so everything the lanes reference — run_lane, the cursor,
    // the LaneData vector, all of it stack-held — is exclusively owned
    // again before this frame unwinds or reads lane results: the morsel
    // descriptor is fully owned, with no use-after-free window.
    struct RefineSource : TaskScheduler::MorselSource {
      std::function<void(int)>* run = nullptr;
      std::atomic<int> next_lane{1};  // Lane 0 is the calling thread.
      int lane_cap = 1;
      bool RunMorsels(int /*worker*/) override {
        const int lane = next_lane.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(lane claim counter; each lane runs once)
        if (lane >= lane_cap) return false;
        (*run)(lane);
        return true;
      }
    };
    std::function<void(int)> run_fn = run_lane;
    RefineSource source;
    source.run = &run_fn;
    source.lane_cap = max_lanes;
    options.scheduler->Publish(&source);
    run_lane(0);
    options.scheduler->Retire(&source);

    if (par_interrupted.load(std::memory_order_relaxed)) {  // gpssn-lint: relaxed(read after the Retire barrier)
      *interrupted = true;
      return {};
    }

    // Merge: min-k of the keyed union == the serial loop's answer list.
    std::vector<LaneBest> merged;
    uint32_t lanes_used = 0;
    uint64_t morsels = 0;
    uint64_t morsels_stolen = 0;
    for (int lane = 0; lane < max_lanes; ++lane) {
      LaneData& ld = lanes[lane];
      if (ld.claimed > 0) ++lanes_used;
      morsels += ld.claimed;
      if (lane > 0) morsels_stolen += ld.claimed;
      for (LaneBest& e : ld.best) merged.push_back(std::move(e));
    }
    std::sort(merged.begin(), merged.end(), lane_key_less);
    if (static_cast<int>(merged.size()) > top_k) merged.resize(top_k);
    best.clear();
    for (LaneBest& e : merged) best.push_back(std::move(e.answer));
    stats->intra_lanes_used = std::max(stats->intra_lanes_used, lanes_used);
    stats->refine_morsels += morsels;
    stats->refine_morsels_stolen += morsels_stolen;
    for (int lane = 0; lane < max_lanes; ++lane) {
      LaneData& ld = lanes[lane];
      if (lane > 0) {
        ld.stats.io.logical_accesses +=
            lane_pools[lane]->stats().logical_accesses;
        ld.stats.io.page_misses += lane_pools[lane]->stats().page_misses;
      }
      stats->MergeFrom(ld.stats);
    }
  }

  stats->io.logical_accesses += pool.stats().logical_accesses;
  stats->io.page_misses += pool.stats().page_misses;
  *final_delta = delta;
  return best;
}

Result<ShardCandidates> GpssnProcessor::GatherCandidates(
    const GpssnQuery& query, const QueryOptions& options,
    const ShardScope& scope, QueryStats* stats) {
  const SpatialSocialNetwork& ssn = poi_index_->ssn();
  if (query.issuer < 0 || query.issuer >= ssn.num_users()) {
    return Status::InvalidArgument("query issuer out of range");
  }
  if (query.tau < 1 || query.tau > ssn.num_users()) {
    return Status::InvalidArgument("group size tau out of range");
  }
  if (query.gamma < 0.0 || query.theta < 0.0) {
    return Status::InvalidArgument("negative score threshold");
  }
  if (query.radius < poi_index_->options().r_min ||
      query.radius > poi_index_->options().r_max) {
    return Status::InvalidArgument(
        "radius outside the index's [r_min, r_max] envelope");
  }

  QueryStats local;
  QueryStats* out = stats != nullptr ? stats : &local;
  *out = QueryStats();
  WallTimer timer;

  auto interrupted_status = [&options]() {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {  // gpssn-lint: relaxed(cooperative cancel flag; latency not ordering)
      return Status::Cancelled("query cancelled");
    }
    return Status::DeadlineExceeded("query deadline exceeded");
  };
  auto interrupted_now = [&options]() {
    return (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed)) ||  // gpssn-lint: relaxed(cooperative cancel flag; latency not ordering)
           options.deadline.Expired();
  };
  if (interrupted_now()) return interrupted_status();

  const SocialNetwork& social = ssn.social();
  const PruningFlags& flags = options.pruning;
  BufferPool pool(options.buffer_pool_pages);
  QueryUserContext ctx(query, *social_index_);
  PruningAuditor* auditor =
      options.auditor != nullptr ? options.auditor : default_auditor_.get();
  WallTimer descent_timer;

  if (flags.social_distance) {
    bfs_.Run(query.issuer, query.tau - 1);
  }

  ShardCandidates result;

  // --- Social side: descend only the scoped subtrees, level-synchronized
  // (BFS) exactly like ExecuteImpl so surviving leaves — and hence users —
  // come out in the same left-to-right order the single-node descent
  // produces. Without δ there is no coupling to the I_R traversal; the
  // node-level interest/social-distance prunes and the object-level leaf
  // filters are exactly ExecuteImpl's, so the concatenation of all
  // shards' survivors (in partition order) equals the single-node
  // candidate list (node prunes are subsumed by the object-level tests).
  uint32_t poll_stride = 0;
  std::vector<SNodeId> s_frontier;
  auto admit_social = [&](SNodeId id) {
    const SocialIndexNode& node = social_index_->node(id);
    ++out->social_nodes_visited;
    pool.Access(node.page);
    if (flags.interest_score && PruneSocialNodeInterest(ctx, node)) {
      ++out->social_nodes_pruned_interest;
      out->users_pruned_at_index_level += node.subtree_users;
      if (auditor != nullptr) {
        auditor->OnSocialNodePruned(ctx, id, PruneRule::kSocialNodeInterest);
      }
      return;
    }
    if (flags.social_distance && PruneSocialNodeDistance(ctx, node)) {
      ++out->social_nodes_pruned_distance;
      out->users_pruned_at_index_level += node.subtree_users;
      if (auditor != nullptr) {
        auditor->OnSocialNodePruned(ctx, id, PruneRule::kSocialNodeDistance);
      }
      return;
    }
    s_frontier.push_back(id);
  };
  for (SNodeId id : scope.social_roots) admit_social(id);
  bool aborted = false;
  for (;;) {
    bool any_internal = false;
    for (SNodeId id : s_frontier) {
      if (!social_index_->node(id).is_leaf()) {
        any_internal = true;
        break;
      }
    }
    if (!any_internal) break;
    if (interrupted_now()) {
      aborted = true;
      break;
    }
    std::vector<SNodeId> prev = std::move(s_frontier);
    s_frontier.clear();
    for (SNodeId id : prev) {
      const SocialIndexNode& node = social_index_->node(id);
      if (node.is_leaf()) {
        s_frontier.push_back(id);  // Already at object level; keep place.
        continue;
      }
      for (SNodeId child_id : node.children) admit_social(child_id);
    }
  }
  for (SNodeId id : s_frontier) {
    if (aborted) break;
    const SocialIndexNode& leaf = social_index_->node(id);
    for (UserId u : leaf.users) {
      if ((++poll_stride & 255u) == 0 && interrupted_now()) {
        aborted = true;
        break;
      }
      ++out->users_seen;
      pool.Access(social_index_->user_page(u));
      if (u == query.issuer) {
        result.users.push_back(u);
        continue;
      }
      if (flags.social_distance) {
        const bool pivot_pruned =
            PruneUserSocialDistance(ctx, social_index_->social_pivots(), u);
        if (pivot_pruned || bfs_.Hops(u) >= query.tau) {
          ++out->users_pruned_distance;
          if (pivot_pruned && auditor != nullptr) {
            auditor->OnUserPruned(ctx, u, PruneRule::kUserSocialDistance);
          }
          continue;
        }
      }
      if (flags.interest_score &&
          PruneUserInterest(ctx, social.Interests(u))) {
        ++out->users_pruned_interest;
        if (auditor != nullptr) {
          auditor->OnUserPruned(ctx, u, PruneRule::kUserInterest);
        }
        continue;
      }
      result.users.push_back(u);
    }
  }

  // --- POI side: match prunes only. The δ road-distance cut is a global
  // incumbent property and is NEVER applied on the sharded path (so the
  // a-posteriori δ fallback is structurally unnecessary here); the
  // cross-shard analogue is the coordinator's incumbent skip, applied at
  // whole-shard granularity from `lower_bound`.
  std::vector<RNodeId> r_stack;
  for (RNodeId id : scope.road_roots) {
    const PoiNodeAug& aug = poi_index_->node_aug(id);
    if (flags.match_score && PruneRoadNodeMatch(ctx, aug)) {
      ++out->road_nodes_pruned_match;
      out->pois_pruned_at_index_level += aug.subtree_pois;
      if (auditor != nullptr) auditor->OnRoadNodeMatchPruned(ctx, id);
      continue;
    }
    r_stack.push_back(id);
  }
  while (!r_stack.empty() && !aborted) {
    if (interrupted_now()) {
      aborted = true;
      break;
    }
    const RNodeId node_id = r_stack.back();
    r_stack.pop_back();
    const RTreeNode& node = poi_index_->tree().node(node_id);
    ++out->road_nodes_visited;
    pool.Access(poi_index_->node_aug(node_id).page);
    if (node.is_leaf()) {
      for (const RTreeEntry& e : node.entries) {
        ++out->pois_seen;
        pool.Access(poi_index_->poi_page(e.id));
        const PoiAug& aug = poi_index_->poi_aug(e.id);
        if (flags.match_score && PrunePoiMatch(ctx, aug)) {
          ++out->pois_pruned_match;
          if (auditor != nullptr) auditor->OnPoiMatchPruned(ctx, e.id);
          continue;
        }
        result.pois.push_back(e.id);
        result.lower_bound =
            std::min(result.lower_bound, LbDistToPoi(ctx, aug));
      }
    } else {
      for (const RTreeEntry& e : node.entries) {
        const PoiNodeAug& child = poi_index_->node_aug(e.id);
        if (flags.match_score && PruneRoadNodeMatch(ctx, child)) {
          ++out->road_nodes_pruned_match;
          out->pois_pruned_at_index_level += child.subtree_pois;
          if (auditor != nullptr) auditor->OnRoadNodeMatchPruned(ctx, e.id);
          continue;
        }
        r_stack.push_back(e.id);
      }
    }
  }
  if (aborted) {
    out->cpu_seconds = timer.ElapsedSeconds();
    return interrupted_status();
  }

  std::sort(result.pois.begin(), result.pois.end());
  out->users_candidates = result.users.size();
  out->pois_candidates = result.pois.size();
  out->descent_seconds += descent_timer.ElapsedSeconds();
  out->io.logical_accesses += pool.stats().logical_accesses;
  out->io.page_misses += pool.stats().page_misses;
  out->cpu_seconds = timer.ElapsedSeconds();
  return result;
}

Result<ShardRefineResult> GpssnProcessor::RefineCandidates(
    const GpssnQuery& query, const QueryOptions& options,
    const std::vector<PoiId>& centers_in,
    const std::vector<std::vector<UserId>>& groups, double incumbent,
    QueryStats* stats) {
  const SpatialSocialNetwork& ssn = poi_index_->ssn();
  if (query.issuer < 0 || query.issuer >= ssn.num_users()) {
    return Status::InvalidArgument("query issuer out of range");
  }

  QueryStats local;
  QueryStats* out = stats != nullptr ? stats : &local;
  *out = QueryStats();
  WallTimer timer;

  auto interrupted_status = [&options]() {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {  // gpssn-lint: relaxed(cooperative cancel flag; latency not ordering)
      return Status::Cancelled("query cancelled");
    }
    return Status::DeadlineExceeded("query deadline exceeded");
  };
  auto interrupted_now = [&options]() {
    return (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed)) ||  // gpssn-lint: relaxed(cooperative cancel flag; latency not ordering)
           options.deadline.Expired();
  };
  if (interrupted_now()) return interrupted_status();

  const SocialNetwork& social = ssn.social();
  const ScopedPhaseTimer refine_phase(&out->refine_seconds);
  BufferPool pool(options.buffer_pool_pages);
  QueryUserContext ctx(query, *social_index_);
  DistanceEngine& dist_engine = *EngineFor(options);
  PruningAuditor* auditor =
      options.auditor != nullptr ? options.auditor : default_auditor_.get();

  ShardRefineResult result;
  GpssnAnswer& best = result.answer;  // found=false until one qualifies.
  // Rejection threshold: NON-STRICT against the shard's own running best
  // (within the shard, later discovery rank loses ties — exactly the
  // serial loop's `>= bound()` rejects) but STRICT against the incumbent
  // (an answer TYING the incumbent may still win the global discovery-rank
  // comparison at the coordinator, so it must be reported, not dropped).
  auto reject = [&](double v) {
    return best.found ? v >= best.max_dist : v > incumbent;
  };
  // Distance-row bound: d == bound stays finite (the engines keep
  // settled-at-bound vertices), so an obj tying `incumbent` is still
  // representable; once a best exists only strictly-better survives.
  auto bound = [&]() { return best.found ? best.max_dist : incumbent; };
  if (groups.empty() || centers_in.empty()) {
    out->cpu_seconds = timer.ElapsedSeconds();
    return result;
  }

  // The refinement below mirrors ExecuteImpl's serial loop exactly (same
  // arithmetic, same center ordering, same first-encountered-minimum
  // acceptance) restricted to this shard's centers. Per-pair objectives
  // depend only on (group, center) — rows are bound-tagged and a
  // kInfDistance entry proves the pair cannot beat the bound it was
  // computed under — so evaluating a subset of the single-node candidate
  // pairs yields bit-identical objective values.
  scratch_.BeginQuery(static_cast<size_t>(ssn.num_users()),
                      static_cast<size_t>(ssn.num_pois()));
  RefineScratch& scr = scratch_;
  std::unordered_map<PoiId, CenterInfo> center_cache;
  std::unordered_map<uint64_t, bool> match_memo;

  auto get_center = [&](PoiId c) -> const CenterInfo& {
    auto it = center_cache.find(c);
    if (it != center_cache.end()) return it->second;
    const ScopedPhaseTimer ball_phase(&out->ball_seconds);
    CenterInfo info;
    ++out->ball_queries;
    if (dist_engine.BallUsesRangeEngine(query.radius)) {
      ++out->ball_range_engine_queries;
    }
    info.ball_dists =
        dist_engine.BallWithDistances(ssn.poi(c).position, query.radius);
    for (const auto& [id, dist] : info.ball_dists) {
      info.ball.push_back(id);
      if (scr.poi_stamp[id] != scr.generation) {
        scr.poi_stamp[id] = scr.generation;
        scr.poi_slot[id] = static_cast<int32_t>(scr.needed.size());
        scr.needed.push_back(id);
        scr.needed_positions.push_back(ssn.poi(id).position);
      }
      pool.Access(poi_index_->poi_page(id));
    }
    std::sort(info.ball.begin(), info.ball.end());
    info.union_keywords = UnionKeywords(ssn, info.ball);
    info.issuer_matches =
        MatchScore(ctx.w_q, info.union_keywords) >= query.theta;
    return center_cache.emplace(c, std::move(info)).first->second;
  };

  bool targets_set = false;
  auto ensure_targets = [&]() {
    if (targets_set) return;
    dist_engine.SetTargets(scr.needed_positions);
    scr.rows.reserve((static_cast<size_t>(ssn.num_users()) < 256
                          ? static_cast<size_t>(ssn.num_users())
                          : size_t{256}) *
                     scr.needed.size());
    targets_set = true;
  };

  auto get_user_dists = [&](UserId u, double bnd) -> const double* {
    const size_t width = scr.needed.size();
    if (scr.user_stamp[u] == scr.generation) {
      return scr.rows.data() + static_cast<size_t>(scr.user_row[u]) * width;
    }
    ensure_targets();
    const int32_t row_index =
        width == 0 ? 0 : static_cast<int32_t>(scr.rows.size() / width);
    scr.rows.resize(scr.rows.size() + width);
    double* row = scr.rows.data() + static_cast<size_t>(row_index) * width;
    bool have_row = false;
    if (options.distance_cache != nullptr && width > 0) {
      bool all_hit = true;
      for (size_t i = 0; i < width; ++i) {
        if (!options.distance_cache->Lookup(u, scr.needed[i], bnd, &row[i])) {
          all_hit = false;
          break;
        }
      }
      if (all_hit) {
        ++out->dist_cache_row_hits;
        have_row = true;
      } else {
        ++out->dist_cache_row_misses;
      }
    }
    if (!have_row) {
      const ScopedPhaseTimer exact_phase(&out->exact_dist_seconds);
      dist_engine.SourceToTargets(ssn.user_home(u), bnd, row);
      ++out->exact_distance_evals;
      if (options.distance_cache != nullptr) {
        for (size_t i = 0; i < width; ++i) {
          options.distance_cache->Insert(u, scr.needed[i], bnd, row[i]);
        }
      }
    }
    pool.Access(social_index_->user_page(u));
    scr.user_stamp[u] = scr.generation;
    scr.user_row[u] = row_index;
    return row;
  };

  for (PoiId c : centers_in) {
    if (interrupted_now()) {
      out->cpu_seconds = timer.ElapsedSeconds();
      return interrupted_status();
    }
    get_center(c);
  }

  // Exact issuer-side ordering, as in ExecuteImpl: one bounded search from
  // the issuer upgrades center order to the exact objective contribution
  // max_{o∈ball} dist(u_q, o); centers beyond the incumbent cannot beat it
  // (u_q ∈ S) and are dropped.
  std::vector<std::pair<double, PoiId>> centers;
  {
    const double* issuer_dists = get_user_dists(query.issuer, incumbent);
    centers.reserve(centers_in.size());
    for (PoiId c : centers_in) {
      const CenterInfo& info = get_center(c);
      double worst = 0.0;
      bool in_range = !info.ball.empty();
      for (PoiId o : info.ball) {
        const double d = issuer_dists[scr.poi_slot[o]];
        if (d >= kInfDistance) {
          in_range = false;
          break;
        }
        worst = std::max(worst, d);
      }
      if (in_range) centers.emplace_back(worst, c);
    }
    std::sort(centers.begin(), centers.end());
  }

  auto compute_match = [&](UserId u, const CenterInfo& info) {
    return MatchScore(social.Interests(u), info.union_keywords) >=
           query.theta;
  };

  int64_t pair_budget = options.max_refine_pairs;
  uint32_t poll_stride = 0;
  for (const auto& [center_lb, c] : centers) {
    if (interrupted_now()) {
      out->cpu_seconds = timer.ElapsedSeconds();
      return interrupted_status();
    }
    // Centers are sorted by (center_lb, id) and the threshold only
    // decreases, so every unvisited center is rejected too.
    if (reject(center_lb)) break;
    const CenterInfo& info = get_center(c);
    if (info.ball.empty()) continue;
    if (!info.issuer_matches) continue;
    const PoiAug& center_aug = poi_index_->poi_aug(c);

    for (size_t gi = 0; gi < groups.size(); ++gi) {
      const auto& group = groups[gi];
      if ((++poll_stride & 63u) == 0 && interrupted_now()) {
        out->cpu_seconds = timer.ElapsedSeconds();
        return interrupted_status();
      }
      double pair_lb = center_lb;
      for (UserId u : group) {
        const double user_lb = LbUserPoiDist(
            social_index_->user_road_pivot_dists(u), center_aug);
        if (auditor != nullptr) {
          auditor->OnPairDistanceBound(ctx, u, c, user_lb);
        }
        pair_lb = std::max(pair_lb, user_lb);
      }
      if (reject(pair_lb)) continue;

      bool all_match = true;
      for (UserId u : group) {
        const uint64_t key =
            (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(c);
        auto mit = match_memo.find(key);
        bool ok;
        if (mit != match_memo.end()) {
          ok = mit->second;
        } else {
          ok = compute_match(u, info);
          match_memo.emplace(key, ok);
        }
        if (!ok) {
          all_match = false;
          break;
        }
      }
      if (!all_match) continue;

      if (--pair_budget < 0) {
        out->truncated = true;
        break;
      }
      ++out->pairs_examined;
      double obj = 0.0;
      bool feasible = true;
      for (UserId u : group) {
        const double* dists = get_user_dists(u, bound());
        for (PoiId o : info.ball) {
          const double d = dists[scr.poi_slot[o]];
          if (d >= kInfDistance) {
            feasible = false;
            break;
          }
          obj = std::max(obj, d);
        }
        if (!feasible || reject(obj)) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      // First-encountered minimum within the shard (the rejects above make
      // any survivor strictly better than the running best).
      best.found = true;
      best.users = group;
      best.center = c;
      best.pois = info.ball;
      best.max_dist = obj;
      result.center_worst = center_lb;
      result.group_index = static_cast<int64_t>(gi);
    }
    if (pair_budget < 0) break;
  }

  // users/pois/groups counters stay 0 here: the coordinator owns the
  // candidate-level counters (the gather stats already carry them), so the
  // merged per-query stats count each candidate exactly once.
  out->io.logical_accesses += pool.stats().logical_accesses;
  out->io.page_misses += pool.stats().page_misses;
  out->cpu_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace gpssn
