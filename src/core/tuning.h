// Copyright 2026 The gpssn Authors.
//
// Data-driven tuning of the GP-SSN system parameters, implementing the
// paper's "Discussions on the Parameter Tuning" (Section 2.2): γ, θ, and r
// are system parameters "tuned from historical query logs or data
// distributions of users/POIs" — specifically the x-th percentile of
//   * pairwise common-interest scores (for γ; sampled over FRIEND pairs,
//     since answer groups are connected),
//   * user-vs-POI-ball matching scores (for θ),
//   * the ball radius needed to gather a typical handful of POIs (for r,
//     standing in for "the maximum distance a user travels between POIs"
//     when no query history exists).

#ifndef GPSSN_CORE_TUNING_H_
#define GPSSN_CORE_TUNING_H_

#include "common/rng.h"
#include "core/options.h"
#include "roadnet/distance_backend.h"
#include "ssn/spatial_social_network.h"

namespace gpssn {

struct TuningOptions {
  /// The x-th percentile used for every distribution, in (0, 1). 0.5 =
  /// median: half of friend pairs / user-ball pairs qualify.
  double percentile = 0.5;
  /// Sample sizes for each distribution.
  int score_samples = 800;
  int radius_samples = 200;
  /// Ball size the radius suggestion should typically gather.
  int target_ball_size = 8;
  uint64_t seed = 1;
  /// Optional distance backend (roadnet/distance_backend.h) for the
  /// ball probes of the r / θ estimators. Null = a private bounded
  /// Dijkstra over ssn.road(). Must outlive the call.
  const DistanceBackend* distance_backend = nullptr;
};

struct ParameterSuggestion {
  double gamma = 0.0;
  double theta = 0.0;
  double radius = 0.0;
};

/// Suggests (γ, θ, r) for `ssn` from its own data distributions. The
/// returned radius is clamped to be strictly positive.
ParameterSuggestion SuggestParameters(const SpatialSocialNetwork& ssn,
                                      const TuningOptions& options);

/// Fills a GpssnQuery's thresholds from a suggestion (issuer/τ untouched).
inline void ApplySuggestion(const ParameterSuggestion& s, GpssnQuery* query) {
  query->gamma = s.gamma;
  query->theta = s.theta;
  query->radius = s.radius;
}

}  // namespace gpssn

#endif  // GPSSN_CORE_TUNING_H_
