#include "core/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace gpssn {

namespace {

// Nearest-rank percentile over an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const size_t idx =
      static_cast<size_t>(std::max(1.0, rank)) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

std::string BatchStats::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "queries=%llu ok=%llu found=%llu deadline=%llu cancelled=%llu "
      "failed=%llu wall=%.4fs qps=%.1f "
      "latency(ms) mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f "
      "cpu-total=%.4fs pairs=%llu page-ios=%llu "
      "phases(s) descent=%.4f ball=%.4f refine=%.4f exact-dist=%.4f "
      "dist-cache rows hit=%llu miss=%llu "
      "sched stolen=%llu morsel-visits=%llu sources=%llu",
      static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(succeeded),
      static_cast<unsigned long long>(answers_found),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(failed), wall_seconds, throughput_qps,
      latency_mean_seconds * 1e3, latency_p50_seconds * 1e3,
      latency_p95_seconds * 1e3, latency_p99_seconds * 1e3,
      latency_max_seconds * 1e3, totals.cpu_seconds,
      static_cast<unsigned long long>(totals.pairs_examined),
      static_cast<unsigned long long>(totals.PageAccesses()),
      totals.descent_seconds, totals.ball_seconds, totals.refine_seconds,
      totals.exact_dist_seconds,
      static_cast<unsigned long long>(totals.dist_cache_row_hits),
      static_cast<unsigned long long>(totals.dist_cache_row_misses),
      static_cast<unsigned long long>(scheduler_tasks_stolen),
      static_cast<unsigned long long>(scheduler_morsel_visits),
      static_cast<unsigned long long>(scheduler_sources_published));
  return buf;
}

void GpssnBatchExecutor::WorkerLane::Reset() {
  totals = QueryStats();
  latencies.clear();
  succeeded = answers_found = deadline_exceeded = cancelled = failed = 0;
}

GpssnBatchExecutor::GpssnBatchExecutor(const PoiIndex* poi_index,
                                       const SocialIndex* social_index,
                                       const BatchExecutorOptions& options)
    : options_(options),
      lanes_(std::max(options.num_workers, 1)),
      scheduler_(options.num_workers) {
  processors_.reserve(scheduler_.num_threads());
  for (int w = 0; w < scheduler_.num_threads(); ++w) {
    processors_.push_back(
        std::make_unique<GpssnProcessor>(poi_index, social_index));
  }
}

GpssnBatchExecutor::~GpssnBatchExecutor() {
  // The scheduler destructor drains remaining tasks; they only touch the
  // processors/lanes/slots, all of which outlive `scheduler_` (last
  // member).
}

size_t GpssnBatchExecutor::Submit(const GpssnQuery& query) {
  return Submit(query, options_.default_deadline_seconds);
}

size_t GpssnBatchExecutor::Submit(const GpssnQuery& query,
                                  double deadline_seconds, Callback callback) {
  if (results_.empty()) {
    batch_timer_.Restart();
    sched_base_ = scheduler_.GetStats();
  }
  const size_t index = results_.size();
  results_.push_back(BatchQueryResult{});
  BatchQueryResult* slot = &results_.back();
  slot->query = query;

  QueryDeadline deadline;  // Armed at submit time: queueing counts.
  if (deadline_seconds > 0.0) deadline = QueryDeadline::After(deadline_seconds);
  WallTimer submit_timer;
  // Deadline-armed queries enter the injector earliest-deadline-first.
  const TaskPriority priority = deadline.armed()
                                    ? TaskPriority::DeadlineAt(deadline.at())
                                    : TaskPriority::None();
  scheduler_.Submit(
      [this, slot, deadline, submit_timer,
       callback = std::move(callback)](int worker) {
        RunOne(worker, slot, deadline, submit_timer, callback);
      },
      priority);
  return index;
}

void GpssnBatchExecutor::RunOne(int worker, BatchQueryResult* slot,
                                QueryDeadline deadline, WallTimer submit_timer,
                                const Callback& callback) {
  QueryOptions options = options_.query;
  options.deadline = deadline;
  options.cancel = &cancel_;
  if (options_.intra_query_sharing) options.scheduler = &scheduler_;

  Result<GpssnAnswer> result =
      processors_[worker]->Execute(slot->query, options, &slot->stats);
  slot->worker = worker;
  if (result.ok()) {
    slot->answer = *std::move(result);
    slot->status = Status::OK();
  } else {
    slot->status = result.status();
  }
  slot->latency_seconds = submit_timer.ElapsedSeconds();

  WorkerLane& lane = lanes_[worker];
  lane.totals.MergeFrom(slot->stats);
  lane.latencies.push_back(slot->latency_seconds);
  if (slot->status.ok()) {
    ++lane.succeeded;
    if (slot->answer.found) ++lane.answers_found;
  } else if (slot->status.IsDeadlineExceeded()) {
    ++lane.deadline_exceeded;
  } else if (slot->status.IsCancelled()) {
    ++lane.cancelled;
  } else {
    ++lane.failed;
  }
  if (callback) callback(*slot);
}

std::vector<BatchQueryResult> GpssnBatchExecutor::Wait(BatchStats* stats) {
  scheduler_.WaitAll();
  const double wall = results_.empty() ? 0.0 : batch_timer_.ElapsedSeconds();

  if (stats != nullptr) {
    *stats = BatchStats();
    stats->queries = results_.size();
    stats->wall_seconds = wall;
    const TaskScheduler::Stats sched = scheduler_.GetStats();
    stats->scheduler_tasks_stolen = sched.tasks_stolen - sched_base_.tasks_stolen;
    stats->scheduler_morsel_visits =
        sched.morsel_visits - sched_base_.morsel_visits;
    stats->scheduler_sources_published =
        sched.sources_published - sched_base_.sources_published;
    std::vector<double> latencies;
    for (WorkerLane& lane : lanes_) {
      stats->totals.MergeFrom(lane.totals);
      stats->succeeded += lane.succeeded;
      stats->answers_found += lane.answers_found;
      stats->deadline_exceeded += lane.deadline_exceeded;
      stats->cancelled += lane.cancelled;
      stats->failed += lane.failed;
      latencies.insert(latencies.end(), lane.latencies.begin(),
                       lane.latencies.end());
    }
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      double sum = 0.0;
      for (double v : latencies) sum += v;
      stats->latency_mean_seconds = sum / static_cast<double>(latencies.size());
      stats->latency_p50_seconds = Percentile(latencies, 0.50);
      stats->latency_p95_seconds = Percentile(latencies, 0.95);
      stats->latency_p99_seconds = Percentile(latencies, 0.99);
      stats->latency_max_seconds = latencies.back();
    }
    if (wall > 0.0) {
      stats->throughput_qps = static_cast<double>(stats->queries) / wall;
    }
  }

  std::vector<BatchQueryResult> out;
  out.reserve(results_.size());
  for (BatchQueryResult& r : results_) out.push_back(std::move(r));
  results_.clear();
  for (WorkerLane& lane : lanes_) lane.Reset();
  cancel_.store(false, std::memory_order_relaxed);  // gpssn-lint: relaxed(flag reset before workers observe the batch)
  return out;
}

std::vector<BatchQueryResult> GpssnBatchExecutor::ExecuteAll(
    std::span<const GpssnQuery> queries, BatchStats* stats) {
  for (const GpssnQuery& query : queries) Submit(query);
  return Wait(stats);
}

}  // namespace gpssn
