#include "core/social_scratch.h"

#include <algorithm>
#include <cstdint>

#include "common/macros.h"
#include "core/scores.h"

namespace gpssn {

namespace {
// Rows are padded to a multiple of 8 doubles so every row starts on a
// 64-byte boundary once the base pointer is aligned.
constexpr size_t kAlignDoubles = 8;
static_assert(kAlignDoubles % kSoaLaneWidth == 0);
}  // namespace

void SocialScratch::Build(const SocialNetwork& social, const GpssnQuery& query,
                          std::span<const UserId> candidates) {
  social_ = &social;
  built_version_ = social.interests_version();
  metric_ = query.metric;
  gamma_ = query.gamma;

  users_.assign(candidates.begin(), candidates.end());
  std::sort(users_.begin(), users_.end());
  const size_t n = users_.size();

  const size_t num_users = static_cast<size_t>(social.num_users());
  if (index_stamp_.size() < num_users) {
    index_stamp_.resize(num_users, 0);
    index_of_.resize(num_users, 0);
  }
  ++generation_;
  if (generation_ == 0) {  // Stamp wrap-around: hard reset.
    std::fill(index_stamp_.begin(), index_stamp_.end(), 0);
    generation_ = 1;
  }
  for (size_t i = 0; i < n; ++i) {
    index_stamp_[users_[i]] = generation_;
    index_of_[users_[i]] = static_cast<int32_t>(i);
  }

  // SoA interest matrix: one zero-padded, 64-byte-aligned row per
  // candidate. Interests are probabilities (non-negative), so zero padding
  // is value-preserving for every kernel.
  dim_ = static_cast<size_t>(social.num_topics());
  padded_dim_ = (dim_ + kAlignDoubles - 1) / kAlignDoubles * kAlignDoubles;
  rows_storage_.assign(n * padded_dim_ + kAlignDoubles, 0.0);
  const auto base = reinterpret_cast<uintptr_t>(rows_storage_.data());
  rows_ = rows_storage_.data() + ((64 - base % 64) % 64) / sizeof(double);
  for (size_t i = 0; i < n; ++i) {
    const auto w = social.Interests(users_[i]);
    std::copy(w.begin(), w.end(), rows_ + i * padded_dim_);
  }

  // Candidate-local adjacency bitsets from the CSR friend lists. Candidate
  // indices are id-ascending, so ascending bit iteration visits friends in
  // the same order as Friends().
  adj_words_ = (n + 63) / 64;
  adj_.assign(n * adj_words_, 0);
  for (size_t i = 0; i < n; ++i) {
    uint64_t* row = adj_.data() + i * adj_words_;
    for (UserId v : social.Friends(users_[i])) {
      const int j = IndexOf(v);
      if (j >= 0) row[static_cast<size_t>(j) >> 6] |= 1ULL << (j & 63);
    }
  }

  memo_.assign(n >= 2 ? n * (n - 1) / 2 : 0, 0);
  pairs_scored_ = 0;
  built_ = true;
}

size_t SocialScratch::TriIndex(int i, int j) const {
  // Row-major upper triangle (i < j): row i starts after the i rows above
  // it, which hold (n-1) + (n-2) + ... + (n-i) entries.
  const size_t n = users_.size();
  const size_t si = static_cast<size_t>(i);
  return si * (2 * n - si - 1) / 2 + static_cast<size_t>(j - i - 1);
}

bool SocialScratch::PairPasses(int i, int j) {
  if (i == j) return true;
  if (i > j) std::swap(i, j);
  uint8_t& state = memo_[TriIndex(i, j)];
  if (state == 0) {
    ++pairs_scored_;
    const double s =
        SoaSimilarity(metric_, Row(i), Row(j), dim_, padded_dim_);
    state = s >= gamma_ ? 1 : 2;
  }
  return state == 1;
}

void SocialScratch::BuildKeywordMask(const std::vector<KeywordId>& keywords,
                                     DynamicBitset* mask) const {
  mask->Reset(padded_dim_);
  for (KeywordId kw : keywords) {
    if (kw >= 0 && static_cast<size_t>(kw) < dim_) {
      mask->Set(static_cast<size_t>(kw));
    }
  }
}

double SocialScratch::MaskedMatchScoreRow(const double* row,
                                          const DynamicBitset& mask) {
  return MaskedMatchScore(
      row, std::span<const uint64_t>(mask.words(), mask.num_words()));
}

}  // namespace gpssn
