#include "core/stats.h"

#include <algorithm>
#include <cstdio>

namespace gpssn {

void QueryStats::MergeFrom(const QueryStats& other) {
  cpu_seconds += other.cpu_seconds;
  io.logical_accesses += other.io.logical_accesses;
  io.page_misses += other.io.page_misses;
  social_nodes_visited += other.social_nodes_visited;
  social_nodes_pruned_interest += other.social_nodes_pruned_interest;
  social_nodes_pruned_distance += other.social_nodes_pruned_distance;
  users_seen += other.users_seen;
  users_pruned_interest += other.users_pruned_interest;
  users_pruned_distance += other.users_pruned_distance;
  users_pruned_corollary2 += other.users_pruned_corollary2;
  users_candidates += other.users_candidates;
  users_pruned_at_index_level += other.users_pruned_at_index_level;
  road_nodes_visited += other.road_nodes_visited;
  road_nodes_pruned_match += other.road_nodes_pruned_match;
  road_nodes_pruned_distance += other.road_nodes_pruned_distance;
  pois_seen += other.pois_seen;
  pois_pruned_match += other.pois_pruned_match;
  pois_pruned_distance += other.pois_pruned_distance;
  pois_candidates += other.pois_candidates;
  pois_pruned_at_index_level += other.pois_pruned_at_index_level;
  groups_enumerated += other.groups_enumerated;
  pairs_examined += other.pairs_examined;
  exact_distance_evals += other.exact_distance_evals;
  truncated = truncated || other.truncated;
  descent_seconds += other.descent_seconds;
  ball_seconds += other.ball_seconds;
  refine_seconds += other.refine_seconds;
  exact_dist_seconds += other.exact_dist_seconds;
  dist_cache_row_hits += other.dist_cache_row_hits;
  dist_cache_row_misses += other.dist_cache_row_misses;
  intra_lanes_used = std::max(intra_lanes_used, other.intra_lanes_used);
  refine_morsels += other.refine_morsels;
  refine_morsels_stolen += other.refine_morsels_stolen;
  interest_pairs_scored += other.interest_pairs_scored;
  ball_queries += other.ball_queries;
  ball_range_engine_queries += other.ball_range_engine_queries;
  skipped_shards += other.skipped_shards;
  refined_shards += other.refined_shards;
  shard_msgs += other.shard_msgs;
  serve_gather_seconds += other.serve_gather_seconds;
  serve_plan_seconds += other.serve_plan_seconds;
  serve_refine_seconds += other.serve_refine_seconds;
}

std::string QueryStats::ToString() const {
  char buf[1280];
  std::snprintf(
      buf, sizeof(buf),
      "cpu=%.6fs io=%llu (logical=%llu)\n"
      "social: nodes visited=%llu pruned(interest=%llu, distance=%llu); "
      "users seen=%llu pruned(interest=%llu, distance=%llu, cor2=%llu) "
      "candidates=%llu index-pruned-users=%llu\n"
      "road: nodes visited=%llu pruned(match=%llu, distance=%llu); "
      "pois seen=%llu pruned(match=%llu, distance=%llu) candidates=%llu "
      "index-pruned-pois=%llu\n"
      "refine: groups=%llu pairs=%llu exact-dist=%llu truncated=%d "
      "lanes=%u morsels=%llu (stolen=%llu) interest-pairs=%llu "
      "balls=%llu (range-engine=%llu)\n"
      "phases: descent=%.6fs ball=%.6fs refine=%.6fs exact-dist=%.6fs; "
      "dist-cache rows hit=%llu miss=%llu\n"
      "serving: shards refined=%llu skipped=%llu msgs=%llu "
      "gather=%.6fs plan=%.6fs refine=%.6fs",
      cpu_seconds, static_cast<unsigned long long>(io.page_misses),
      static_cast<unsigned long long>(io.logical_accesses),
      static_cast<unsigned long long>(social_nodes_visited),
      static_cast<unsigned long long>(social_nodes_pruned_interest),
      static_cast<unsigned long long>(social_nodes_pruned_distance),
      static_cast<unsigned long long>(users_seen),
      static_cast<unsigned long long>(users_pruned_interest),
      static_cast<unsigned long long>(users_pruned_distance),
      static_cast<unsigned long long>(users_pruned_corollary2),
      static_cast<unsigned long long>(users_candidates),
      static_cast<unsigned long long>(users_pruned_at_index_level),
      static_cast<unsigned long long>(road_nodes_visited),
      static_cast<unsigned long long>(road_nodes_pruned_match),
      static_cast<unsigned long long>(road_nodes_pruned_distance),
      static_cast<unsigned long long>(pois_seen),
      static_cast<unsigned long long>(pois_pruned_match),
      static_cast<unsigned long long>(pois_pruned_distance),
      static_cast<unsigned long long>(pois_candidates),
      static_cast<unsigned long long>(pois_pruned_at_index_level),
      static_cast<unsigned long long>(groups_enumerated),
      static_cast<unsigned long long>(pairs_examined),
      static_cast<unsigned long long>(exact_distance_evals),
      truncated ? 1 : 0, intra_lanes_used,
      static_cast<unsigned long long>(refine_morsels),
      static_cast<unsigned long long>(refine_morsels_stolen),
      static_cast<unsigned long long>(interest_pairs_scored),
      static_cast<unsigned long long>(ball_queries),
      static_cast<unsigned long long>(ball_range_engine_queries),
      descent_seconds, ball_seconds, refine_seconds,
      exact_dist_seconds, static_cast<unsigned long long>(dist_cache_row_hits),
      static_cast<unsigned long long>(dist_cache_row_misses),
      static_cast<unsigned long long>(refined_shards),
      static_cast<unsigned long long>(skipped_shards),
      static_cast<unsigned long long>(shard_msgs),
      serve_gather_seconds, serve_plan_seconds, serve_refine_seconds);
  return buf;
}

}  // namespace gpssn
