#include "core/stats.h"

#include <cstdio>

namespace gpssn {

std::string QueryStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "cpu=%.6fs io=%llu (logical=%llu)\n"
      "social: nodes visited=%llu pruned(interest=%llu, distance=%llu); "
      "users seen=%llu pruned(interest=%llu, distance=%llu, cor2=%llu) "
      "candidates=%llu index-pruned-users=%llu\n"
      "road: nodes visited=%llu pruned(match=%llu, distance=%llu); "
      "pois seen=%llu pruned(match=%llu, distance=%llu) candidates=%llu "
      "index-pruned-pois=%llu\n"
      "refine: groups=%llu pairs=%llu exact-dist=%llu truncated=%d",
      cpu_seconds, static_cast<unsigned long long>(io.page_misses),
      static_cast<unsigned long long>(io.logical_accesses),
      static_cast<unsigned long long>(social_nodes_visited),
      static_cast<unsigned long long>(social_nodes_pruned_interest),
      static_cast<unsigned long long>(social_nodes_pruned_distance),
      static_cast<unsigned long long>(users_seen),
      static_cast<unsigned long long>(users_pruned_interest),
      static_cast<unsigned long long>(users_pruned_distance),
      static_cast<unsigned long long>(users_pruned_corollary2),
      static_cast<unsigned long long>(users_candidates),
      static_cast<unsigned long long>(users_pruned_at_index_level),
      static_cast<unsigned long long>(road_nodes_visited),
      static_cast<unsigned long long>(road_nodes_pruned_match),
      static_cast<unsigned long long>(road_nodes_pruned_distance),
      static_cast<unsigned long long>(pois_seen),
      static_cast<unsigned long long>(pois_pruned_match),
      static_cast<unsigned long long>(pois_pruned_distance),
      static_cast<unsigned long long>(pois_candidates),
      static_cast<unsigned long long>(pois_pruned_at_index_level),
      static_cast<unsigned long long>(groups_enumerated),
      static_cast<unsigned long long>(pairs_examined),
      static_cast<unsigned long long>(exact_distance_evals),
      truncated ? 1 : 0);
  return buf;
}

}  // namespace gpssn
