#include "core/pruning.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "core/scores.h"

namespace gpssn {

namespace {

// Distance from a point value to a closed interval [lo, hi] (0 inside).
double GapToRange(double v, double lo, double hi) {
  if (v < lo) return lo - v;
  if (v > hi) return v - hi;
  return 0.0;
}

int GapToRangeInt(int v, int lo, int hi) {
  if (v < lo) return lo - v;
  if (v > hi) return v - hi;
  return 0;
}

}  // namespace

QueryUserContext::QueryUserContext(const GpssnQuery& q, const SocialIndex& is)
    : query(q),
      w_q(is.ssn().social().Interests(q.issuer).begin(),
          is.ssn().social().Interests(q.issuer).end()),
      region(w_q, q.gamma),
      rp_dist(is.user_road_pivot_dists(q.issuer)) {
  const SocialPivotTable& sp = is.social_pivots();
  sp_hops.resize(sp.num_pivots());
  for (int k = 0; k < sp.num_pivots(); ++k) {
    sp_hops[k] = sp.UserToPivot(q.issuer, k);
  }
}

bool PruneUserInterest(const QueryUserContext& ctx,
                       std::span<const double> w_k) {
  return UserSimilarity(ctx.query.metric, ctx.w_q, w_k) < ctx.query.gamma;
}

bool PruneUserSocialDistance(const QueryUserContext& ctx,
                             const SocialPivotTable& pivots, UserId u_k) {
  if (u_k == ctx.query.issuer) return false;
  int lb = 0;
  for (int k = 0; k < pivots.num_pivots(); ++k) {
    const int dq = ctx.sp_hops[k];
    const int dk = pivots.UserToPivot(u_k, k);
    const bool rq = dq != kUnreachableHops;
    const bool rk = dk != kUnreachableHops;
    if (rq != rk) return true;  // Different components: unreachable.
    if (!rq) continue;
    lb = std::max(lb, std::abs(dq - dk));
  }
  return lb >= ctx.query.tau;
}

bool PruneSocialNodeInterest(const QueryUserContext& ctx,
                             const SocialIndexNode& node) {
  switch (ctx.query.metric) {
    case InterestMetric::kDotProduct:
      // The half-space pruning region of Section 3.2 (Lemma 8).
      return ctx.region.PrunesBox(node.lb_w, node.ub_w);
    case InterestMetric::kJaccard:
      return UbJaccardBox(ctx.w_q, node.lb_w, node.ub_w) < ctx.query.gamma;
    case InterestMetric::kHamming:
      return UbHammingBox(ctx.w_q, node.lb_w, node.ub_w) < ctx.query.gamma;
  }
  return false;
}

int LbHopsToSocialNode(const QueryUserContext& ctx,
                       const SocialIndexNode& node) {
  int lb = 0;
  for (size_t k = 0; k < ctx.sp_hops.size(); ++k) {
    const int dq = ctx.sp_hops[k];
    if (dq == kUnreachableHops) continue;
    if (node.lb_sp[k] == kUnreachableHops) continue;
    // ub may be unreachable while lb is not (mixed node); the gap to the
    // reachable part of the range is still a valid lower bound only against
    // lb (treat ub as unbounded then).
    const int hi = node.ub_sp[k] == kUnreachableHops
                       ? std::numeric_limits<int>::max()
                       : node.ub_sp[k];
    lb = std::max(lb, GapToRangeInt(dq, node.lb_sp[k], hi));
  }
  return lb;
}

bool PruneSocialNodeDistance(const QueryUserContext& ctx,
                             const SocialIndexNode& node) {
  return LbHopsToSocialNode(ctx, node) >= ctx.query.tau;
}

bool PrunePoiMatch(const QueryUserContext& ctx, const PoiAug& aug) {
  return MatchScore(ctx.w_q, aug.sup_keywords) < ctx.query.theta;
}

bool PruneRoadNodeMatch(const QueryUserContext& ctx, const PoiNodeAug& aug) {
  return UbMatchScore(ctx.w_q, aug.v_sup) < ctx.query.theta;
}

double LbMaxDistToRoadNode(const QueryUserContext& ctx,
                           const std::vector<double>& lb_pivot,
                           const std::vector<double>& ub_pivot) {
  double lb = 0.0;
  for (size_t k = 0; k < ctx.rp_dist.size(); ++k) {
    if (!std::isfinite(ctx.rp_dist[k]) || !std::isfinite(lb_pivot[k])) {
      continue;
    }
    lb = std::max(lb, GapToRange(ctx.rp_dist[k], lb_pivot[k], ub_pivot[k]));
  }
  return lb;
}

double LbDistToPoi(const QueryUserContext& ctx, const PoiAug& aug) {
  double lb = 0.0;
  for (size_t k = 0; k < ctx.rp_dist.size(); ++k) {
    if (!std::isfinite(ctx.rp_dist[k]) || !std::isfinite(aug.pivot_dist[k])) {
      continue;
    }
    lb = std::max(lb, std::abs(ctx.rp_dist[k] - aug.pivot_dist[k]));
  }
  return lb;
}

double UbMaxDistViaCenter(const std::vector<double>& s_ub_rp,
                          const PoiAug& aug, double radius) {
  GPSSN_CHECK(s_ub_rp.size() == aug.pivot_dist.size());
  double best = kInfDistance;
  for (size_t k = 0; k < s_ub_rp.size(); ++k) {
    best = std::min(best, s_ub_rp[k] + aug.pivot_dist[k]);
  }
  return best + radius;
}

double LbUserPoiDist(const std::vector<double>& user_rp, const PoiAug& aug) {
  double lb = 0.0;
  for (size_t k = 0; k < user_rp.size(); ++k) {
    if (!std::isfinite(user_rp[k]) || !std::isfinite(aug.pivot_dist[k])) {
      continue;
    }
    lb = std::max(lb, std::abs(user_rp[k] - aug.pivot_dist[k]));
  }
  return lb;
}

double UbUserPoiDist(const std::vector<double>& user_rp, const PoiAug& aug) {
  double ub = kInfDistance;
  for (size_t k = 0; k < user_rp.size(); ++k) {
    ub = std::min(ub, user_rp[k] + aug.pivot_dist[k]);
  }
  return ub;
}

}  // namespace gpssn
