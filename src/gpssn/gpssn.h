// Copyright 2026 The gpssn Authors.
//
// Umbrella header: include this to get the whole public GP-SSN API.
//
//   #include "gpssn/gpssn.h"
//
//   gpssn::SyntheticSsnOptions data;
//   gpssn::GpssnDatabase db(gpssn::MakeSynthetic(data));
//   gpssn::GpssnQuery query{.issuer = 0, .tau = 5};
//   auto answer = db.Query(query);

#ifndef GPSSN_GPSSN_GPSSN_H_
#define GPSSN_GPSSN_GPSSN_H_

#include "common/result.h"
#include "common/status.h"
#include "core/baseline.h"
#include "core/database.h"
#include "core/executor.h"
#include "core/options.h"
#include "core/query.h"
#include "core/scores.h"
#include "core/snapshot.h"
#include "core/stats.h"
#include "core/tuning.h"
#include "ssn/dataset.h"
#include "ssn/serialize.h"
#include "ssn/spatial_social_network.h"

#endif  // GPSSN_GPSSN_GPSSN_H_
