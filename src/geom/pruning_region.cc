#include "geom/pruning_region.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace gpssn {

double Dot(std::span<const double> a, std::span<const double> b) {
  GPSSN_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

namespace {

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

// Squared min/max distance from the box [lb, ub] to point p.
double BoxMinSq(std::span<const double> lb, std::span<const double> ub,
                std::span<const double> p) {
  double s = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    double d = 0.0;
    if (p[i] < lb[i]) d = lb[i] - p[i];
    else if (p[i] > ub[i]) d = p[i] - ub[i];
    s += d * d;
  }
  return s;
}

double BoxMaxSq(std::span<const double> lb, std::span<const double> ub,
                std::span<const double> p) {
  double s = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double d = std::max(std::abs(p[i] - lb[i]), std::abs(p[i] - ub[i]));
    s += d * d;
  }
  return s;
}

}  // namespace

PruningRegion::PruningRegion(std::span<const double> anchor, double gamma)
    : b_(anchor.begin(), anchor.end()), gamma_(gamma) {
  norm2_ = Dot(anchor, anchor);
  case1_ = norm2_ >= gamma_;
  b_prime_.resize(b_.size());
  if (norm2_ > 0.0) {
    // B' = B * (2γ − ||w||²) / ||w||², the reflection of B across the
    // pruning hyperplane (dist(A,B) == dist(A,B')).
    const double scale = (2.0 * gamma_ - norm2_) / norm2_;
    for (size_t i = 0; i < b_.size(); ++i) b_prime_[i] = b_[i] * scale;
  }
}

bool PruningRegion::PrunesVector(std::span<const double> x) const {
  return Dot(x, b_) < gamma_;
}

bool PruningRegion::PrunesVectorMirror(std::span<const double> x) const {
  if (norm2_ == 0.0) {
    // Degenerate anchor: the score is identically 0.
    return gamma_ > 0.0;
  }
  const double to_bprime = SquaredDistance(x, b_prime_);
  const double to_b = SquaredDistance(x, b_);
  return case1_ ? (to_bprime < to_b) : (to_bprime > to_b);
}

bool PruningRegion::PrunesBox(std::span<const double> lb,
                              std::span<const double> ub) const {
  GPSSN_CHECK(lb.size() == b_.size() && ub.size() == b_.size());
  // Anchor entries are non-negative, so the box corner with the largest dot
  // product is ub.
  return Dot(ub, b_) < gamma_;
}

bool PruningRegion::PrunesBoxMirror(std::span<const double> lb,
                                    std::span<const double> ub) const {
  GPSSN_CHECK(lb.size() == b_.size() && ub.size() == b_.size());
  if (norm2_ == 0.0) return gamma_ > 0.0;
  if (case1_) {
    return BoxMaxSq(lb, ub, b_prime_) < BoxMinSq(lb, ub, b_);
  }
  return BoxMinSq(lb, ub, b_prime_) > BoxMaxSq(lb, ub, b_);
}

}  // namespace gpssn
