// Copyright 2026 The gpssn Authors.
//
// 2D point type used for road-network vertex coordinates, POI locations,
// and user home locations.

#ifndef GPSSN_GEOM_POINT_H_
#define GPSSN_GEOM_POINT_H_

#include <cmath>
#include <type_traits>

namespace gpssn {

/// A point in the 2D data space of the spatial road network. Stored
/// verbatim in road-index files and read back through mmap (see
/// roadnet/index_io.h), so the layout is fixed.
// gpssn-serialized(bytes=16)
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

static_assert(std::is_trivially_copyable_v<Point>,
              "Point is stored verbatim in index files");
static_assert(sizeof(Point) == 16, "Point file layout is fixed at 16 bytes");

inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance between two points.
inline double EuclideanDistance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// Linear interpolation: Lerp(a, b, 0) == a, Lerp(a, b, 1) == b.
inline Point Lerp(const Point& a, const Point& b, double t) {
  return Point{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

}  // namespace gpssn

#endif  // GPSSN_GEOM_POINT_H_
