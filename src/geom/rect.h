// Copyright 2026 The gpssn Authors.
//
// Axis-aligned rectangles (minimum bounding rectangles) for the R*-tree and
// the index-level distance pruning of Lemma 7.

#ifndef GPSSN_GEOM_RECT_H_
#define GPSSN_GEOM_RECT_H_

#include <algorithm>
#include <limits>

#include "geom/point.h"

namespace gpssn {

/// Axis-aligned MBR. An empty rectangle (default constructed) has inverted
/// bounds and absorbs any point/rect it is extended with.
struct Rect {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  static Rect FromPoint(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }

  bool empty() const { return min_x > max_x || min_y > max_y; }

  void ExtendPoint(const Point& p);
  void ExtendRect(const Rect& r);

  bool ContainsPoint(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  bool ContainsRect(const Rect& r) const {
    return r.min_x >= min_x && r.max_x <= max_x && r.min_y >= min_y &&
           r.max_y <= max_y;
  }
  bool Intersects(const Rect& r) const {
    return !(r.min_x > max_x || r.max_x < min_x || r.min_y > max_y ||
             r.max_y < min_y);
  }

  double Area() const {
    return empty() ? 0.0 : (max_x - min_x) * (max_y - min_y);
  }
  double Margin() const {
    return empty() ? 0.0 : 2.0 * ((max_x - min_x) + (max_y - min_y));
  }
  Point Center() const {
    return Point{(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }

  /// Area of intersection with `r` (0 when disjoint).
  double OverlapArea(const Rect& r) const;

  /// Area increase caused by extending this rect to include `r`.
  double Enlargement(const Rect& r) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

/// Smallest Euclidean distance from point `p` to rect `r` (0 when inside).
double MinDist(const Point& p, const Rect& r);

/// Largest Euclidean distance from point `p` to any point of `r`.
double MaxDist(const Point& p, const Rect& r);

/// Smallest Euclidean distance between any two points of `a` and `b`
/// (0 when intersecting). This is the mindist(e_Ri, e_Rj) of Lemma 7.
double MinDist(const Rect& a, const Rect& b);

/// Largest Euclidean distance between any two points of `a` and `b`.
double MaxDist(const Rect& a, const Rect& b);

}  // namespace gpssn

#endif  // GPSSN_GEOM_RECT_H_
