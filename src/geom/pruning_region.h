// Copyright 2026 The gpssn Authors.
//
// The user pruning region PR(u) of Section 3.2. Given an anchor user with
// interest vector w and the interest-score threshold γ, a candidate vector x
// can be pruned iff Interest_Score = x·w < γ — geometrically, iff x lies in
// the half-space on the origin side of the hyperplane perpendicular to w at
// the point A with dist(O, A) = γ / ||w||.
//
// The paper operationalizes the test via the point B = w and its mirror
// point B' = w · (2γ − ||w||²) / ||w||² (so that A is the midpoint of BB'):
//   Case 1 (||w||² ≥ γ):  prune x iff dist(x, B') <  dist(x, B)
//   Case 2 (||w||² <  γ):  prune x iff dist(x, B') >  dist(x, B)
// Both are implemented here (and property-tested to coincide with the dot-
// product condition). For index nodes (Lemma 8) the interest-vector MBR
// [lb_w, ub_w] is tested: the exact test uses the box corner maximizing the
// dot product; the paper-literal mirror test compares maxdist/mindist of the
// box against B and B' and is conservative (never prunes a non-prunable box).

#ifndef GPSSN_GEOM_PRUNING_REGION_H_
#define GPSSN_GEOM_PRUNING_REGION_H_

#include <span>
#include <vector>

namespace gpssn {

/// Half-space pruning region for the interest-score threshold test.
class PruningRegion {
 public:
  /// Builds PR(anchor) for threshold `gamma`. `anchor` entries must be
  /// non-negative (interest probabilities). A zero anchor vector yields a
  /// region that prunes everything when gamma > 0.
  PruningRegion(std::span<const double> anchor, double gamma);

  /// Exact condition: x·w < γ (Lemma 3 / Corollary 1).
  bool PrunesVector(std::span<const double> x) const;

  /// Paper-literal mirror-point condition (Case 1 / Case 2). Equivalent to
  /// PrunesVector for every x; exposed for validation and fidelity tests.
  bool PrunesVectorMirror(std::span<const double> x) const;

  /// Exact node test for Lemma 8: true iff EVERY vector in the box
  /// [lb, ub] is pruned, i.e. max over the box of x·w is < γ. Since w >= 0
  /// the maximizing corner is `ub`.
  bool PrunesBox(std::span<const double> lb, std::span<const double> ub) const;

  /// Paper-literal node test: maxdist(box, B') < mindist(box, B) in Case 1
  /// (or with roles swapped in Case 2). Sufficient but not necessary;
  /// PrunesBoxMirror(...) implies PrunesBox(...).
  bool PrunesBoxMirror(std::span<const double> lb,
                       std::span<const double> ub) const;

  double gamma() const { return gamma_; }
  bool is_case1() const { return case1_; }
  const std::vector<double>& b() const { return b_; }
  const std::vector<double>& b_prime() const { return b_prime_; }

 private:
  std::vector<double> b_;        // == anchor vector w.
  std::vector<double> b_prime_;  // Mirror point across the hyperplane.
  double gamma_;
  double norm2_;  // ||w||^2
  bool case1_;    // ||w||^2 >= gamma
};

/// Dot product of two equal-length vectors.
double Dot(std::span<const double> a, std::span<const double> b);

}  // namespace gpssn

#endif  // GPSSN_GEOM_PRUNING_REGION_H_
