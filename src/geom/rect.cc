#include "geom/rect.h"

#include <cmath>

namespace gpssn {

void Rect::ExtendPoint(const Point& p) {
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void Rect::ExtendRect(const Rect& r) {
  if (r.empty()) return;
  min_x = std::min(min_x, r.min_x);
  min_y = std::min(min_y, r.min_y);
  max_x = std::max(max_x, r.max_x);
  max_y = std::max(max_y, r.max_y);
}

double Rect::OverlapArea(const Rect& r) const {
  const double w = std::min(max_x, r.max_x) - std::max(min_x, r.min_x);
  if (w <= 0) return 0.0;
  const double h = std::min(max_y, r.max_y) - std::max(min_y, r.min_y);
  if (h <= 0) return 0.0;
  return w * h;
}

double Rect::Enlargement(const Rect& r) const {
  Rect u = *this;
  u.ExtendRect(r);
  return u.Area() - Area();
}

namespace {
double AxisGap(double v, double lo, double hi) {
  if (v < lo) return lo - v;
  if (v > hi) return v - hi;
  return 0.0;
}
double AxisFar(double v, double lo, double hi) {
  return std::max(std::abs(v - lo), std::abs(v - hi));
}
}  // namespace

double MinDist(const Point& p, const Rect& r) {
  const double dx = AxisGap(p.x, r.min_x, r.max_x);
  const double dy = AxisGap(p.y, r.min_y, r.max_y);
  return std::sqrt(dx * dx + dy * dy);
}

double MaxDist(const Point& p, const Rect& r) {
  if (r.empty()) return 0.0;
  const double dx = AxisFar(p.x, r.min_x, r.max_x);
  const double dy = AxisFar(p.y, r.min_y, r.max_y);
  return std::sqrt(dx * dx + dy * dy);
}

double MinDist(const Rect& a, const Rect& b) {
  const double dx =
      std::max({0.0, b.min_x - a.max_x, a.min_x - b.max_x});
  const double dy =
      std::max({0.0, b.min_y - a.max_y, a.min_y - b.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

double MaxDist(const Rect& a, const Rect& b) {
  if (a.empty() || b.empty()) return 0.0;
  const double dx =
      std::max(std::abs(a.max_x - b.min_x), std::abs(b.max_x - a.min_x));
  const double dy =
      std::max(std::abs(a.max_y - b.min_y), std::abs(b.max_y - a.min_y));
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace gpssn
