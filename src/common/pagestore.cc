#include "common/pagestore.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gpssn {

PageAllocator::PageAllocator(uint32_t page_size) : page_size_(page_size) {
  GPSSN_CHECK(page_size > 0);
}

PageId PageAllocator::Place(uint32_t nbytes) {
  if (nbytes == 0) nbytes = 1;
  if (nbytes > page_size_) {
    // Large object: give it dedicated pages starting on a fresh page.
    if (used_ > 0) {
      ++next_page_;
      used_ = 0;
    }
    const PageId first = next_page_;
    next_page_ += (nbytes + page_size_ - 1) / page_size_;
    return first;
  }
  if (used_ + nbytes > page_size_) {
    ++next_page_;
    used_ = 0;
  }
  const PageId page = next_page_;
  used_ += nbytes;
  return page;
}

uint32_t PageAllocator::PagesSpanned(uint32_t nbytes) const {
  if (nbytes <= page_size_) return 1;
  return (nbytes + page_size_ - 1) / page_size_;
}

BufferPool::BufferPool(uint32_t capacity_pages) : capacity_(capacity_pages) {}

void BufferPool::Access(PageId page) {
  ++stats_.logical_accesses;
  if (capacity_ == 0) {
    ++stats_.page_misses;
    return;
  }
  auto it = table_.find(page);
  if (it != table_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++stats_.page_misses;
  lru_.push_front(page);
  table_[page] = lru_.begin();
  if (table_.size() > capacity_) {
    const PageId victim = lru_.back();
    lru_.pop_back();
    table_.erase(victim);
  }
}

void BufferPool::AccessRun(PageId page, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) Access(page + i);
}

void BufferPool::Clear() {
  lru_.clear();
  table_.clear();
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(other.addr_), size_(other.size_) {
  other.addr_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = other.addr_;
    size_ = other.size_;
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct ::stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + err);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::IoError("empty file: " + path);
  }
  const size_t bytes = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor can go.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IoError("cannot mmap " + path + ": " +
                           std::strerror(errno));
  }
  MappedFile mapped;
  mapped.addr_ = addr;
  mapped.size_ = bytes;
  return mapped;
}

}  // namespace gpssn
