// Copyright 2026 The gpssn Authors.
//
// Small aligned-table printer used by the benchmark harness to emit the
// same rows/series the paper's tables and figures report.

#ifndef GPSSN_COMMON_TABLE_PRINTER_H_
#define GPSSN_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace gpssn {

/// Collects rows of string cells and prints them with aligned columns and a
/// header rule, e.g.
///
///   dataset    CPU (s)   I/Os
///   ---------  --------  -----
///   UNI        0.0021    212
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Formats a double with `precision` significant decimal digits.
  static std::string Num(double v, int precision = 4);

  /// Renders the table to a string (trailing newline included).
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_TABLE_PRINTER_H_
