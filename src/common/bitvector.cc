#include "common/bitvector.h"

#include <bit>

namespace gpssn {

namespace {
// 64-bit FNV-1a over the 4 bytes of the keyword id.
uint64_t HashKeyword(int kw) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto v = static_cast<uint32_t>(kw);
  for (int i = 0; i < 4; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

KeywordBitVector KeywordBitVector::FromKeywords(const std::vector<int>& keywords) {
  KeywordBitVector v;
  for (int kw : keywords) v.Add(kw);
  return v;
}

int KeywordBitVector::BitFor(int kw) {
  return static_cast<int>(HashKeyword(kw) % kBits);
}

void KeywordBitVector::Add(int kw) {
  const int bit = BitFor(kw);
  words_[bit >> 6] |= (1ULL << (bit & 63));
}

bool KeywordBitVector::MayContain(int kw) const {
  const int bit = BitFor(kw);
  return (words_[bit >> 6] >> (bit & 63)) & 1ULL;
}

void KeywordBitVector::UnionWith(const KeywordBitVector& other) {
  for (int i = 0; i < kWords; ++i) words_[i] |= other.words_[i];
}

bool KeywordBitVector::empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

int KeywordBitVector::PopCount() const {
  int count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

}  // namespace gpssn
