// Copyright 2026 The gpssn Authors.
//
// Simulated disk-resident storage. The paper's efficiency metric is the
// number of page accesses during query answering; to reproduce it without a
// real disk we model index nodes (and graph adjacency blocks consulted at
// query time) as objects placed on fixed-size pages, fronted by a small LRU
// buffer pool. Every logical object access charges the buffer pool; misses
// count as page I/Os.

#ifndef GPSSN_COMMON_PAGESTORE_H_
#define GPSSN_COMMON_PAGESTORE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"

namespace gpssn {

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = ~0u;

/// Counts logical and physical accesses observed through a buffer pool.
struct IoStats {
  uint64_t logical_accesses = 0;  // Object fetches requested.
  uint64_t page_misses = 0;       // Pages actually "read from disk".

  void Reset() { *this = IoStats(); }
};

/// Assigns variable-size objects to sequential fixed-size pages (a simple
/// first-fit append allocator — objects created together are co-located,
/// mimicking how a bulk-loaded index is laid out on disk).
class PageAllocator {
 public:
  /// `page_size` is the usable bytes per page; must be positive.
  explicit PageAllocator(uint32_t page_size = 4096);

  /// Places an object of `nbytes` bytes and returns its page. Objects larger
  /// than one page occupy ceil(nbytes / page_size) pages and return the
  /// first one (subsequent reads charge all spanned pages).
  PageId Place(uint32_t nbytes);

  /// Number of pages spanned by the object placed at `page` with `nbytes`.
  uint32_t PagesSpanned(uint32_t nbytes) const;

  uint32_t page_size() const { return page_size_; }
  PageId num_pages() const { return next_page_ + (used_ > 0 ? 1 : 0); }

 private:
  uint32_t page_size_;
  PageId next_page_ = 0;  // Page currently being filled.
  uint32_t used_ = 0;     // Bytes used on the current page.
};

/// LRU buffer pool over simulated pages. Thread-compatible (external
/// synchronization required if shared), like a per-query scratch structure.
/// Deliberately NOT a capability of common/sync.h: every pool is owned by
/// exactly one lane (the parallel refinement path allocates one pool per
/// stolen lane precisely so this stays single-threaded), so a mutex here
/// would be pure hot-path overhead with nothing to guard.
class BufferPool {
 public:
  /// `capacity_pages` == 0 disables caching (every access is a miss).
  explicit BufferPool(uint32_t capacity_pages = 64);

  /// Touches `page`; updates stats and LRU state.
  void Access(PageId page);

  /// Touches `count` consecutive pages starting at `page`.
  void AccessRun(PageId page, uint32_t count);

  /// Drops all cached pages (stats are preserved).
  void Clear();

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }
  void ResetStats() { stats_.Reset(); }

  uint32_t capacity() const { return capacity_; }

 private:
  uint32_t capacity_;
  IoStats stats_;
  std::list<PageId> lru_;  // Front = most recently used.
  std::unordered_map<PageId, std::list<PageId>::iterator> table_;
};

/// Read-only memory mapping of a whole file — the real-disk counterpart of
/// the simulated page store above. Index loaders (roadnet/index_io) map a
/// preprocessed index file and hand out zero-copy spans into it, so a
/// multi-million-vertex network cold-starts without materializing the
/// hierarchy in anonymous memory and can stay partially out-of-core (pages
/// fault in on first touch). Move-only RAII; the mapping lives until
/// destruction.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Fails with IoError for missing, unreadable, or
  /// empty files.
  static Result<MappedFile> Open(const std::string& path);

  bool valid() const { return addr_ != nullptr; }
  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_PAGESTORE_H_
