// Copyright 2026 The gpssn Authors.
//
// Deterministic random number generation for data synthesis and sampling.
// All randomness in the library flows through Rng instances seeded
// explicitly, so datasets, tests, and benchmarks are reproducible bit-for-bit.

#ifndef GPSSN_COMMON_RNG_H_
#define GPSSN_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace gpssn {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, 256-bit state, suitable for
/// everything in this library (no cryptographic use).
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64, which
  /// guarantees a non-zero, well-mixed state for any seed.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// nearly-divisionless method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double Normal();

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  // Cached second value of the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf-distributed integer sampler over {0, 1, ..., n-1} with exponent s
/// (probability of rank i proportional to 1/(i+1)^s). Precomputes the CDF
/// once; each draw is a binary search.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_RNG_H_
