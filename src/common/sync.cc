#include "common/sync.h"

namespace gpssn {

void CondVar::Wait(Mutex& mu) {
  // Adopt the std::mutex the caller already holds (the REQUIRES contract),
  // let the condition variable release/reacquire it around the block, and
  // release the unique_lock WITHOUT unlocking so the caller still holds the
  // capability on return.
  std::unique_lock<std::mutex> lock(  // gpssn-lint: allow(naked-mutex)
      mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

}  // namespace gpssn
