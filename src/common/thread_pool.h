// Copyright 2026 The gpssn Authors.
//
// A fixed-size worker pool with worker-indexed tasks. Built for the batch
// query executor (core/executor.h): each task receives the index of the
// worker running it, so callers can give every worker exclusive ownership
// of per-thread state (query processors, stat accumulators) and skip all
// synchronization on it — anything published by a task before WaitAll()
// returns is visible to the waiting thread (release/acquire on the pool's
// mutex).

#ifndef GPSSN_COMMON_THREAD_POOL_H_
#define GPSSN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace gpssn {

/// Fixed-size FIFO thread pool. Tasks are `void(int worker)` callables;
/// `worker` ∈ [0, num_threads) identifies the executing worker and is
/// stable for that thread's lifetime. Destruction drains the queue first
/// (every submitted task runs exactly once).
class ThreadPool {
 public:
  using Task = std::function<void(int)>;

  /// Spawns `num_threads` (≥ 1) workers immediately.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  GPSSN_DISALLOW_COPY_AND_MOVE(ThreadPool);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Never blocks (unbounded queue).
  void Submit(Task task);

  /// Blocks until the queue is empty AND every popped task has finished.
  /// Tasks submitted concurrently with WaitAll (e.g. from inside a task)
  /// are waited on too.
  void WaitAll();

 private:
  void WorkerLoop(int worker);

  std::mutex mu_;
  std::condition_variable task_cv_;  // Signals workers: work or shutdown.
  std::condition_variable idle_cv_;  // Signals WaitAll: pool drained.
  std::deque<Task> queue_;
  int in_flight_ = 0;  // Tasks popped but not yet finished.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_THREAD_POOL_H_
