// Copyright 2026 The gpssn Authors.
//
// Compatibility shim: the fixed-size FIFO ThreadPool of PR 2 is now a thin
// wrapper over the unified work-stealing TaskScheduler
// (common/task_scheduler.h), which is the single execution substrate for
// both inter-query and intra-query parallelism. New code should use
// TaskScheduler directly (deadline-aware priorities, Spawn, morsel
// sources); this wrapper only preserves the Submit/WaitAll surface for
// callers that still think in plain pools.

#ifndef GPSSN_COMMON_THREAD_POOL_H_
#define GPSSN_COMMON_THREAD_POOL_H_

#include <functional>
#include <utility>

#include "common/macros.h"
#include "common/task_scheduler.h"

namespace gpssn {

/// Fixed-size pool facade over TaskScheduler. Tasks are `void(int worker)`
/// callables; `worker` ∈ [0, num_threads) identifies the executing worker.
/// Destruction drains the queue first (every submitted task runs).
class ThreadPool {
 public:
  using Task = std::function<void(int)>;

  /// Spawns `num_threads` (>= 1) workers immediately.
  explicit ThreadPool(int num_threads) : scheduler_(num_threads) {}

  GPSSN_DISALLOW_COPY_AND_MOVE(ThreadPool);

  int num_threads() const { return scheduler_.num_threads(); }

  /// Enqueues one task. Never blocks (unbounded queue).
  void Submit(Task task) { scheduler_.Submit(std::move(task)); }

  /// Blocks until the queue is empty AND every popped task has finished.
  void WaitAll() { scheduler_.WaitAll(); }

  /// The underlying scheduler (e.g. to pass as QueryOptions::scheduler).
  TaskScheduler& scheduler() { return scheduler_; }

 private:
  TaskScheduler scheduler_;
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_THREAD_POOL_H_
