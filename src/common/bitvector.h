// Copyright 2026 The gpssn Authors.
//
// Fixed-width keyword bit vectors (Section 4.1 of the paper): each keyword
// of a POI's sup_K / sub_K set is hashed into a position of a bit vector so
// index nodes can summarize keyword sets in constant space. A set bit may be
// a hash collision, so membership tests only ever *over*-estimate — which is
// exactly what the matching-score *upper* bounds (Lemmas 1 and 6) need.
// Lower bounds (Eq. 18) must not use these vectors; they use exact keyword
// sets of sampled objects instead.
//
// DynamicBitset is the exact (collision-free) sibling: a plain variable-
// width bitset over small integer ids, used for candidate-local adjacency
// and keyword-union masks in the refinement phase, where set operations
// become word-parallel AND / ANDNOT loops.

#ifndef GPSSN_COMMON_BITVECTOR_H_
#define GPSSN_COMMON_BITVECTOR_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpssn {

/// 256-bit keyword signature. Keywords are small integer ids (positions in
/// the global topic vocabulary); each id is hashed to one bit position.
class KeywordBitVector {
 public:
  static constexpr int kBits = 256;
  static constexpr int kWords = kBits / 64;

  KeywordBitVector() : words_{} {}

  /// Builds a signature covering every keyword in `keywords`.
  static KeywordBitVector FromKeywords(const std::vector<int>& keywords);

  /// Hash position of keyword id `kw` (stable across runs).
  static int BitFor(int kw);

  void Add(int kw);

  /// True when keyword `kw` MAY be present (false positives possible,
  /// false negatives impossible).
  bool MayContain(int kw) const;

  /// Bitwise OR (union of summarized sets), used to aggregate child
  /// signatures into non-leaf index entries.
  void UnionWith(const KeywordBitVector& other);

  bool empty() const;
  int PopCount() const;

  friend bool operator==(const KeywordBitVector& a, const KeywordBitVector& b) {
    return a.words_ == b.words_;
  }

 private:
  std::array<uint64_t, kWords> words_;
};

/// Exact variable-width bitset over ids in [0, size). Unlike
/// KeywordBitVector there is no hashing: bit i means exactly "i is in the
/// set". Word-level access is exposed so callers can fuse set algebra with
/// iteration (adjacency ∧ active ∧ ¬seen in the ESU enumerator, masked row
/// sums in MatchScore).
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t size) { Reset(size); }

  /// Resizes to `size` bits, all clear. Keeps word capacity.
  void Reset(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  size_t size() const { return size_; }
  size_t num_words() const { return words_.size(); }

  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  uint64_t Word(size_t w) const { return words_[w]; }
  const uint64_t* words() const { return words_.data(); }

  size_t PopCount() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  /// Calls `fn(i)` for every set bit, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        fn(w * 64 + static_cast<size_t>(b));
        bits &= bits - 1;
      }
    }
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_BITVECTOR_H_
