// Copyright 2026 The gpssn Authors.
//
// Fixed-width keyword bit vectors (Section 4.1 of the paper): each keyword
// of a POI's sup_K / sub_K set is hashed into a position of a bit vector so
// index nodes can summarize keyword sets in constant space. A set bit may be
// a hash collision, so membership tests only ever *over*-estimate — which is
// exactly what the matching-score *upper* bounds (Lemmas 1 and 6) need.
// Lower bounds (Eq. 18) must not use these vectors; they use exact keyword
// sets of sampled objects instead.

#ifndef GPSSN_COMMON_BITVECTOR_H_
#define GPSSN_COMMON_BITVECTOR_H_

#include <array>
#include <cstdint>
#include <vector>

namespace gpssn {

/// 256-bit keyword signature. Keywords are small integer ids (positions in
/// the global topic vocabulary); each id is hashed to one bit position.
class KeywordBitVector {
 public:
  static constexpr int kBits = 256;
  static constexpr int kWords = kBits / 64;

  KeywordBitVector() : words_{} {}

  /// Builds a signature covering every keyword in `keywords`.
  static KeywordBitVector FromKeywords(const std::vector<int>& keywords);

  /// Hash position of keyword id `kw` (stable across runs).
  static int BitFor(int kw);

  void Add(int kw);

  /// True when keyword `kw` MAY be present (false positives possible,
  /// false negatives impossible).
  bool MayContain(int kw) const;

  /// Bitwise OR (union of summarized sets), used to aggregate child
  /// signatures into non-leaf index entries.
  void UnionWith(const KeywordBitVector& other);

  bool empty() const;
  int PopCount() const;

  friend bool operator==(const KeywordBitVector& a, const KeywordBitVector& b) {
    return a.words_ == b.words_;
  }

 private:
  std::array<uint64_t, kWords> words_;
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_BITVECTOR_H_
