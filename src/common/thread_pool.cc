#include "common/thread_pool.h"

#include <utility>

namespace gpssn {

ThreadPool::ThreadPool(int num_threads) {
  GPSSN_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    workers_.emplace_back([this, w]() { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Drain-then-stop: workers only exit once the queue is empty, so every
    // submitted task runs.
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(Task task) {
  GPSSN_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    GPSSN_CHECK(!stop_);
    queue_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(int worker) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task(worker);
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace gpssn
