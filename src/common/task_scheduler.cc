#include "common/task_scheduler.h"

#include <algorithm>
#include <utility>

namespace gpssn {

namespace {

// Identifies the scheduler (and worker index) owning the current thread so
// Spawn() can target the caller's own deque. Thread-local instead of a
// member because several schedulers may coexist (tests, nested tools).
thread_local TaskScheduler* tls_scheduler = nullptr;
thread_local int tls_worker = -1;

}  // namespace

bool TaskScheduler::RunsBefore(const Injected& a, const Injected& b) {
  if (a.priority.armed != b.priority.armed) return a.priority.armed;
  if (a.priority.armed && a.priority.deadline != b.priority.deadline) {
    return a.priority.deadline < b.priority.deadline;
  }
  return a.seq < b.seq;
}

TaskScheduler::TaskScheduler(int num_threads) : num_threads_(num_threads) {
  GPSSN_CHECK(num_threads >= 1);
  deques_.reserve(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    workers_.emplace_back([this, w]() { WorkerLoop(w); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    MutexLock lock(mu_);
    // Drain-then-stop: workers only exit once every queue is empty, so
    // every submitted task runs.
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void TaskScheduler::Submit(Task task, TaskPriority priority) {
  GPSSN_CHECK(task != nullptr);
  {
    MutexLock lock(mu_);
    GPSSN_CHECK(!stop_);
    Injected entry;
    entry.seq = next_seq_++;
    entry.priority = priority;
    entry.task = std::move(task);
    injector_.push_back(std::move(entry));
    std::push_heap(injector_.begin(), injector_.end(),
                   [](const Injected& a, const Injected& b) {
                     return RunsBefore(b, a);
                   });
    injector_size_.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(queue-size hint; mu_ orders the queue)
    queued_.fetch_add(1);
    work_cv_.NotifyOne();
  }
}

void TaskScheduler::Spawn(Task task) {
  GPSSN_CHECK(task != nullptr);
  if (tls_scheduler != this) {
    Submit(std::move(task));
    return;
  }
  WorkerDeque& dq = *deques_[tls_worker];
  {
    MutexLock lock(dq.mu);
    dq.tasks.push_back(std::move(task));
  }
  // Safe outside dq.mu: the spawning task itself still counts in running_,
  // so WaitAll cannot observe an all-idle scheduler in this window.
  queued_.fetch_add(1);
  WakeWorkers(/*all=*/false);
}

void TaskScheduler::WaitAll() {
  MutexLock lock(mu_);
  // Order matters: queued_ first. A pop increments running_ BEFORE
  // decrementing queued_ (both seq_cst), so reading queued_ == 0 here
  // guarantees the later running_ read sees every in-flight task. An
  // explicit predicate loop (not a wait-lambda) keeps the guarded
  // protocol inside this annotated function body.
  while (!(queued_.load() == 0 && running_.load() == 0)) {
    idle_cv_.Wait(mu_);
  }
}

void TaskScheduler::Publish(MorselSource* source) {
  GPSSN_CHECK(source != nullptr);
  {
    WriterMutexLock lock(sources_mu_);
    auto slot = std::make_shared<SourceSlot>();
    slot->source = source;
    sources_.push_back(std::move(slot));
    source_epoch_.fetch_add(1, std::memory_order_release);
    stat_sources_published_.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
  }
  WakeWorkers(/*all=*/true);
}

void TaskScheduler::Retire(MorselSource* source) {
  std::shared_ptr<SourceSlot> slot;
  {
    WriterMutexLock lock(sources_mu_);
    for (auto it = sources_.begin(); it != sources_.end(); ++it) {
      if ((*it)->source == source) {
        slot = *it;
        sources_.erase(it);
        break;
      }
    }
  }
  GPSSN_CHECK(slot != nullptr);  // Publish/Retire must pair up.
  MutexLock lock(slot->mu);
  slot->retired = true;
  while (slot->active != 0) slot->cv.Wait(slot->mu);
  // No worker is inside the source and none can enter (retired): the
  // caller again exclusively owns everything the source references.
}

TaskScheduler::Stats TaskScheduler::GetStats() const {
  Stats stats;
  // Independent monotone counters; a snapshot need not be mutually
  // consistent (callers diff two snapshots taken around a batch).
  stats.tasks_run = stat_tasks_run_.load(std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
  stats.spawned_run = stat_spawned_run_.load(std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
  stats.tasks_stolen = stat_tasks_stolen_.load(std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
  stats.morsel_visits = stat_morsel_visits_.load(std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
  stats.sources_published =
      stat_sources_published_.load(std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
  return stats;
}

bool TaskScheduler::PopLocal(int worker, Task* task) {
  WorkerDeque& dq = *deques_[worker];
  {
    MutexLock lock(dq.mu);
    if (dq.tasks.empty()) return false;
    *task = std::move(dq.tasks.back());  // LIFO: newest stays cache-hot.
    dq.tasks.pop_back();
  }
  running_.fetch_add(1);
  queued_.fetch_sub(1);
  stat_spawned_run_.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
  return true;
}

bool TaskScheduler::PopInjector(Task* task) {
  {
    MutexLock lock(mu_);
    if (injector_.empty()) return false;
    std::pop_heap(injector_.begin(), injector_.end(),
                  [](const Injected& a, const Injected& b) {
                    return RunsBefore(b, a);
                  });
    *task = std::move(injector_.back().task);
    injector_.pop_back();
    injector_size_.fetch_sub(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(queue-size hint; mu_ orders the queue)
  }
  running_.fetch_add(1);
  queued_.fetch_sub(1);
  stat_tasks_run_.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
  return true;
}

bool TaskScheduler::StealTask(int worker, Task* task) {
  const int n = num_threads();
  for (int i = 1; i < n; ++i) {
    WorkerDeque& victim = *deques_[(worker + i) % n];
    {
      MutexLock lock(victim.mu);
      if (victim.tasks.empty()) continue;
      *task = std::move(victim.tasks.front());  // FIFO end: oldest first.
      victim.tasks.pop_front();
    }
    running_.fetch_add(1);
    queued_.fetch_sub(1);
    stat_spawned_run_.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
    stat_tasks_stolen_.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
    return true;
  }
  return false;
}

bool TaskScheduler::VisitSources(int worker) {
  std::vector<std::shared_ptr<SourceSlot>> snapshot;
  {
    // Shared hold: the scan only reads the registry; Publish/Retire are
    // the writers.
    ReaderMutexLock lock(sources_mu_);
    if (sources_.empty()) return false;
    snapshot = sources_;
  }
  // Round-robin start so concurrent idle workers spread over the sources
  // instead of ganging up on the first.
  const size_t start =
      next_source_.fetch_add(1, std::memory_order_relaxed) % snapshot.size();  // gpssn-lint: relaxed(round-robin cursor; any start index works)
  for (size_t i = 0; i < snapshot.size(); ++i) {
    SourceSlot& slot = *snapshot[(start + i) % snapshot.size()];
    {
      MutexLock lock(slot.mu);
      if (slot.retired) continue;
      ++slot.active;
    }
    const bool contributed = slot.source->RunMorsels(worker);
    {
      MutexLock lock(slot.mu);
      if (--slot.active == 0 && slot.retired) slot.cv.NotifyAll();
    }
    if (contributed) {
      stat_morsel_visits_.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stats counter)
      return true;
    }
  }
  return false;
}

void TaskScheduler::WakeWorkers(bool all) {
  MutexLock lock(mu_);
  if (all) {
    work_cv_.NotifyAll();
  } else {
    work_cv_.NotifyOne();
  }
}

void TaskScheduler::RunTask(Task task, int worker) {
  task(worker);
  running_.fetch_sub(1);
  if (queued_.load() == 0 && running_.load() == 0) {
    MutexLock lock(mu_);
    idle_cv_.NotifyAll();
  }
}

void TaskScheduler::WorkerLoop(int worker) {
  tls_scheduler = this;
  tls_worker = worker;
  for (;;) {
    Task task;
    if (PopLocal(worker, &task) || PopInjector(&task) ||
        StealTask(worker, &task)) {
      RunTask(std::move(task), worker);
      continue;
    }
    // Sample the publish epoch BEFORE the scan: a source published after a
    // fruitless scan flips the wait predicate, so the wakeup cannot be
    // lost between scan and sleep.
    const uint64_t epoch = source_epoch_.load(std::memory_order_acquire);
    if (VisitSources(worker)) continue;
    MutexLock lock(mu_);
    // Explicit predicate loop: the guarded read of stop_ stays inside this
    // annotated body, under the capability the notifier holds.
    while (!(stop_ || queued_.load(std::memory_order_relaxed) > 0 ||  // gpssn-lint: relaxed(sleep hint; mu_ pairs the wakeup)
             source_epoch_.load(std::memory_order_relaxed) != epoch)) {  // gpssn-lint: relaxed(sleep hint; mu_ pairs the wakeup)
      work_cv_.Wait(mu_);
    }
    if (stop_ && queued_.load(std::memory_order_relaxed) == 0) return;  // gpssn-lint: relaxed(sleep hint; mu_ pairs the wakeup)
  }
}

}  // namespace gpssn
