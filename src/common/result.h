// Copyright 2026 The gpssn Authors.
//
// Result<T>: value-or-Status, the fallible-return companion of status.h.

#ifndef GPSSN_COMMON_RESULT_H_
#define GPSSN_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace gpssn {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced. Constructing from an OK status is a
/// programming error (there would be no value to return).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value, mirroring absl::StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    GPSSN_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    GPSSN_CHECK(ok());
    return *value_;
  }
  T& value() & {
    GPSSN_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    GPSSN_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates the error of a Result-producing expression, otherwise binds the
// value to `lhs`.
#define GPSSN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define GPSSN_ASSIGN_OR_RETURN(lhs, expr) \
  GPSSN_ASSIGN_OR_RETURN_IMPL(            \
      GPSSN_CONCAT_NAME(_gpssn_result_, __LINE__), lhs, expr)

#define GPSSN_CONCAT_NAME_INNER(x, y) x##y
#define GPSSN_CONCAT_NAME(x, y) GPSSN_CONCAT_NAME_INNER(x, y)

}  // namespace gpssn

#endif  // GPSSN_COMMON_RESULT_H_
