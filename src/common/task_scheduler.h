// Copyright 2026 The gpssn Authors.
//
// TaskScheduler: the single execution substrate for inter-query AND
// intra-query parallelism — a work-stealing morsel scheduler in the style
// of the SIGMOD'14 AWFY solution / HyPer-style morsel-driven engines.
//
// Three ways work enters the scheduler, in the order an idle worker
// consumes them:
//
//   1. Its OWN DEQUE (LIFO): tasks Spawn()ed by a task running on that
//      worker (DAG children stay hot in cache).
//   2. The GLOBAL INJECTOR (deadline-aware priority queue): tasks
//      Submit()ted from outside, e.g. query root tasks from the batch
//      executor. Earliest-deadline-first; unarmed tasks follow every armed
//      one in FIFO submission order — under overload this is admission
//      control: the queries that can still make their deadline run first.
//   3. STEALING: the FIFO end of a sibling's deque (round-robin victim
//      scan), oldest task first — classic work stealing.
//   4. MORSEL SOURCES: transient suppliers of fine-grained stealable work
//      (e.g. one query's refinement centers) published by a RUNNING task
//      via Publish(). Only a worker with nothing else to do visits one, so
//      a saturated scheduler costs a running query exactly one registry
//      insert + remove — no queued helper tasks, no no-op handshake. This
//      is what fixes the BENCH_PR5 intra-query-sharing QPS regression
//      (227 -> 180 with the old lend/close ThreadPool protocol).
//
// Lifetime contract for morsel sources: Publish(src) makes `src` visible
// to idle workers; Retire(src) removes it and BLOCKS until every
// in-flight RunMorsels() call has returned. After Retire() no worker
// touches `src` again, so a source may live on the publishing task's
// stack frame and reference stack state — the Retire barrier is what
// makes the morsel descriptors fully owned by the query (the PR 5 helper
// lambdas captured stack references guarded only by a close flag; one
// reordering away from use-after-free).
//
// Every queue mutation happens under a mutex and every sleeper re-checks
// its predicate under the same mutex the notifier holds, so there are no
// lost wakeups (tests/common/task_scheduler_test.cc hammers shutdown and
// publish races; the TSAN preset runs it). The lock protocols are
// additionally PROVED at compile time: every mutex is a capability from
// common/sync.h with GUARDED_BY annotations on the protected state, checked
// by Clang Thread-Safety Analysis under -DGPSSN_THREAD_SAFETY=ON.
//
// Declared acquisition order (checked by scripts/lint.py rule lock-order;
// in practice no two of these are ever held at once — the declaration
// pins the safe direction should a nesting ever appear):
// gpssn-lock-order: sources_mu_ -> mu -> mu_

#ifndef GPSSN_COMMON_TASK_SCHEDULER_H_
#define GPSSN_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/sync.h"

namespace gpssn {

/// Injector ordering: earliest armed deadline first, then FIFO. Unarmed
/// tasks run after every armed one (they cannot miss anything by waiting).
struct TaskPriority {
  bool armed = false;
  std::chrono::steady_clock::time_point deadline{};

  static TaskPriority None() { return {}; }
  static TaskPriority DeadlineAt(std::chrono::steady_clock::time_point at) {
    TaskPriority p;
    p.armed = true;
    p.deadline = at;
    return p;
  }
};

/// Fixed-size work-stealing scheduler. Tasks are `void(int worker)`
/// callables; `worker` ∈ [0, num_threads) identifies the executing worker
/// and is stable for that thread's lifetime. Destruction drains every
/// queued task first (each submitted task runs exactly once).
class TaskScheduler {
 public:
  using Task = std::function<void(int)>;

  /// A transient supply of stealable morsels, published by a running task.
  /// RunMorsels() is called on idle workers, possibly on several
  /// concurrently; implementations must be thread-safe. Return true if any
  /// morsel work was done (the scheduler may offer the source again),
  /// false if the source had nothing for this worker.
  class MorselSource {
   public:
    virtual ~MorselSource() = default;
    virtual bool RunMorsels(int worker) = 0;
  };

  /// Cumulative counters since construction (monotone; diff two snapshots
  /// to meter one batch).
  struct Stats {
    uint64_t tasks_run = 0;       // Injector tasks executed.
    uint64_t spawned_run = 0;     // Deque tasks executed (spawner or thief).
    uint64_t tasks_stolen = 0;    // Deque tasks taken from ANOTHER worker.
    uint64_t morsel_visits = 0;   // RunMorsels calls that reported work.
    uint64_t sources_published = 0;
  };

  /// Spawns `num_threads` (>= 1) workers immediately.
  explicit TaskScheduler(int num_threads);
  ~TaskScheduler();

  GPSSN_DISALLOW_COPY_AND_MOVE(TaskScheduler);

  int num_threads() const { return num_threads_; }

  /// Enqueues one task on the global injector. Never blocks.
  void Submit(Task task) { Submit(std::move(task), TaskPriority::None()); }
  void Submit(Task task, TaskPriority priority) GPSSN_EXCLUDES(mu_);

  /// Enqueues one task on the calling worker's own deque (LIFO for the
  /// owner, stealable FIFO for siblings). Falls back to Submit() when the
  /// caller is not a scheduler worker.
  void Spawn(Task task) GPSSN_EXCLUDES(mu_);

  /// Blocks until every queued task has been popped AND finished. Tasks
  /// submitted concurrently (e.g. from inside a task) are waited on too.
  void WaitAll() GPSSN_EXCLUDES(mu_);

  /// Publishes `source` for idle workers to steal morsels from.
  void Publish(MorselSource* source) GPSSN_EXCLUDES(sources_mu_, mu_);
  /// Unpublishes `source` and blocks until every in-flight RunMorsels()
  /// call on it has returned. Must be called exactly once per Publish(),
  /// before the source is destroyed.
  void Retire(MorselSource* source) GPSSN_EXCLUDES(sources_mu_);

  /// True when the injector holds a ready task. Morsel loops poll this to
  /// hand their worker back to queued queries (admission over help).
  bool HasQueuedTasks() const {
    // A stale read only delays the lane handback by one morsel.
    return injector_size_.load(std::memory_order_relaxed) > 0;  // gpssn-lint: relaxed(queue-size hint; a stale read is benign)
  }

  Stats GetStats() const;

 private:
  struct Injected {
    uint64_t seq = 0;
    TaskPriority priority;
    Task task;
  };
  // True when `a` should run strictly before `b`.
  static bool RunsBefore(const Injected& a, const Injected& b);

  struct alignas(64) WorkerDeque {
    Mutex mu;
    std::deque<Task> tasks GPSSN_GUARDED_BY(mu);
  };

  // One published source. Slots are shared_ptr so a worker holding one
  // across a RunMorsels call never races slot destruction; `retired`
  // blocks new entries and `active` lets Retire wait for current ones.
  // `source` is written once before the slot becomes visible (under
  // sources_mu_) and read-only afterwards, so it carries no guard.
  struct SourceSlot {
    Mutex mu;
    CondVar cv;  // Pairs mu: Retire waits for active == 0.
    MorselSource* source = nullptr;
    int active GPSSN_GUARDED_BY(mu) = 0;
    bool retired GPSSN_GUARDED_BY(mu) = false;
  };

  void WorkerLoop(int worker) GPSSN_EXCLUDES(mu_);
  bool PopLocal(int worker, Task* task);
  bool PopInjector(Task* task) GPSSN_EXCLUDES(mu_);
  bool StealTask(int worker, Task* task);
  bool VisitSources(int worker) GPSSN_EXCLUDES(sources_mu_);
  // Wakes one sleeper (all = every sleeper) after new work was made
  // visible; locks mu_ so a concurrent sleeper cannot miss the signal.
  void WakeWorkers(bool all) GPSSN_EXCLUDES(mu_);
  void RunTask(Task task, int worker) GPSSN_EXCLUDES(mu_);

  // Immutable after construction; workers read it while the constructor
  // is still emplacing into workers_, so it must not alias that vector.
  const int num_threads_;

  mutable Mutex mu_;        // Guards the injector + the sleep/idle protocol.
  CondVar work_cv_;         // Signals workers: work or shutdown. Pairs mu_.
  CondVar idle_cv_;         // Signals WaitAll: fully drained. Pairs mu_.
  // Binary heap ordered by RunsBefore.
  std::vector<Injected> injector_ GPSSN_GUARDED_BY(mu_);
  uint64_t next_seq_ GPSSN_GUARDED_BY(mu_) = 0;
  bool stop_ GPSSN_GUARDED_BY(mu_) = false;

  std::vector<std::unique_ptr<WorkerDeque>> deques_;  // One per worker.

  SharedMutex sources_mu_;  // Registry lock: writers publish/retire,
                            // readers snapshot for a morsel scan.
  std::vector<std::shared_ptr<SourceSlot>> sources_
      GPSSN_GUARDED_BY(sources_mu_);
  std::atomic<uint64_t> source_epoch_{0};  // Bumped on Publish.
  std::atomic<size_t> next_source_{0};     // Round-robin pick cursor.

  // queued_ counts tasks in the injector + every deque; running_ counts
  // popped-but-unfinished tasks. WaitAll waits for both to hit zero.
  std::atomic<int64_t> queued_{0};
  std::atomic<int64_t> running_{0};
  std::atomic<int64_t> injector_size_{0};

  std::atomic<uint64_t> stat_tasks_run_{0};
  std::atomic<uint64_t> stat_spawned_run_{0};
  std::atomic<uint64_t> stat_tasks_stolen_{0};
  std::atomic<uint64_t> stat_morsel_visits_{0};
  std::atomic<uint64_t> stat_sources_published_{0};

  std::vector<std::thread> workers_;
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_TASK_SCHEDULER_H_
