#include "common/table_printer.h"

#include <cstdio>

#include "common/macros.h"

namespace gpssn {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  GPSSN_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  GPSSN_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto append_row = [&](std::string* out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out->append(row[c]);
      if (c + 1 < row.size()) {
        out->append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out->push_back('\n');
  };
  std::string out;
  append_row(&out, header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out.append(widths[c], '-');
    if (c + 1 < header_.size()) out.append(2, ' ');
  }
  out.push_back('\n');
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace gpssn
