#include "common/status.h"

namespace gpssn {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kNotImplemented:
      return "not-implemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ == nullptr ? EmptyString() : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace gpssn
