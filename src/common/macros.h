// Copyright 2026 The gpssn Authors.
//
// Project-wide helper macros: checked assertions and class decorations.

#ifndef GPSSN_COMMON_MACROS_H_
#define GPSSN_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// GPSSN_CHECK(cond): aborts with a diagnostic when `cond` is false. Used for
// programming errors (broken invariants), never for recoverable conditions —
// those go through Status/Result (see status.h).
#define GPSSN_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "GPSSN_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Materializes a copy: binding a reference here would dangle when `expr` is
// `result.status()` of a temporary Result (the temporary dies at the end of
// the declaration statement, before the ok() test below).
#define GPSSN_CHECK_OK(expr)                                                 \
  do {                                                                       \
    const ::gpssn::Status _gpssn_st = (expr);                                \
    if (!_gpssn_st.ok()) {                                                   \
      std::fprintf(stderr, "GPSSN_CHECK_OK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, _gpssn_st.ToString().c_str());                  \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Declares a class non-copyable and non-movable.
#define GPSSN_DISALLOW_COPY_AND_MOVE(TypeName)       \
  TypeName(const TypeName&) = delete;                \
  TypeName& operator=(const TypeName&) = delete;     \
  TypeName(TypeName&&) = delete;                     \
  TypeName& operator=(TypeName&&) = delete

// Propagates a non-OK Status from an expression (Arrow-style).
#define GPSSN_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::gpssn::Status _gpssn_st = (expr);        \
    if (!_gpssn_st.ok()) return _gpssn_st;     \
  } while (0)

#endif  // GPSSN_COMMON_MACROS_H_
