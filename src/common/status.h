// Copyright 2026 The gpssn Authors.
//
// Arrow-style Status/Result error model. Public APIs that can fail for
// data-dependent reasons return Status (or Result<T>, see result.h) instead
// of throwing: the database C++ guides followed by this project disallow
// exceptions across API boundaries.

#ifndef GPSSN_COMMON_STATUS_H_
#define GPSSN_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace gpssn {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIoError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
  kCancelled = 9,
};

/// Returns the canonical lowercase name of `code` ("ok", "invalid-argument"...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: either OK (cheap, no allocation) or a
/// code plus message. Copyable and movable; moved-from Status is OK.
/// [[nodiscard]]: silently dropping a Status hides failures — callers must
/// test it, propagate it (GPSSN_RETURN_NOT_OK), or assert it
/// (GPSSN_CHECK_OK).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  /// The human-readable message; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "ok" or "invalid-argument: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK: keeps the success path allocation-free.
  std::unique_ptr<Rep> rep_;
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_STATUS_H_
