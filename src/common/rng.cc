#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace gpssn {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  GPSSN_CHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased fringe.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GPSSN_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * mul;
  has_cached_normal_ = true;
  return u * mul;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  GPSSN_CHECK(k <= n);
  if (k == 0) return {};
  // For dense samples do a partial Fisher-Yates; for sparse ones use
  // rejection against a hash set.
  if (k * 3 >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(NextBounded(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t candidate = static_cast<size_t>(NextBounded(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  GPSSN_CHECK(n >= 1);
  GPSSN_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace gpssn
