// Copyright 2026 The gpssn Authors.
//
// Lightweight wall-clock timer used by query statistics and benchmarks.

#ifndef GPSSN_COMMON_TIMER_H_
#define GPSSN_COMMON_TIMER_H_

#include <chrono>

namespace gpssn {

/// Monotonic stopwatch. Started on construction; ElapsedSeconds() may be
/// sampled repeatedly.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_TIMER_H_
