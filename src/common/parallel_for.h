// Copyright 2026 The gpssn Authors.
//
// Morselized parallel-for on top of TaskScheduler. Index preprocessing
// (parallel CH contraction rounds, ball-index bucket builds) needs a
// deterministic data-parallel loop: split [0, count) into fixed chunks,
// let idle scheduler workers claim chunks through the morsel-source
// registry, and have the CALLER run chunks too so a saturated (or 1-core)
// scheduler degrades to the serial loop with no queued helper tasks.
//
// Lane discipline mirrors the query path's RefineSource: each participant
// claims a unique lane id (caller = lane 0, workers = 1..max_lanes-1) so
// the body can use per-lane scratch arenas without locking. The chunk
// cursor is the only shared state; bodies must write only lane-private or
// per-index data. ParallelFor returns only after every chunk has finished
// (Retire barrier), so the helper may live on the caller's stack.

#ifndef GPSSN_COMMON_PARALLEL_FOR_H_
#define GPSSN_COMMON_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <utility>

#include "common/task_scheduler.h"

namespace gpssn {

/// Runs `fn(lane, begin, end)` over chunk subranges of [0, count).
/// `scheduler == nullptr` (or max_lanes <= 1, or a single-chunk range)
/// runs everything inline on lane 0 — the parallel and serial paths claim
/// chunks in the same granularity, so a body that writes only per-index
/// outputs produces identical results at every worker count.
class ParallelFor final : public TaskScheduler::MorselSource {
 public:
  using ChunkFn = std::function<void(int lane, size_t begin, size_t end)>;

  ParallelFor(TaskScheduler* scheduler, int max_lanes, size_t count,
              size_t chunk, ChunkFn fn)
      : scheduler_(scheduler),
        max_lanes_(std::max(max_lanes, 1)),
        count_(count),
        chunk_(std::max<size_t>(chunk, 1)),
        fn_(std::move(fn)) {}

  GPSSN_DISALLOW_COPY_AND_MOVE(ParallelFor);

  /// Blocks until all chunks have run.
  void Run() {
    if (scheduler_ == nullptr || max_lanes_ <= 1 || count_ <= chunk_) {
      RunLane(0);
      return;
    }
    scheduler_->Publish(this);
    RunLane(0);
    scheduler_->Retire(this);
  }

  bool RunMorsels(int) override {
    const int lane = next_lane_.fetch_add(1, std::memory_order_relaxed);  // gpssn-lint: relaxed(lane ids only need uniqueness, no ordering)
    if (lane >= max_lanes_) return false;
    RunLane(lane);
    return true;
  }

 private:
  void RunLane(int lane) {
    for (;;) {
      const size_t begin = cursor_.fetch_add(chunk_, std::memory_order_relaxed);  // gpssn-lint: relaxed(chunk claim needs atomicity only; Retire is the barrier)
      if (begin >= count_) return;
      fn_(lane, begin, std::min(begin + chunk_, count_));
    }
  }

  TaskScheduler* scheduler_;
  const int max_lanes_;
  const size_t count_;
  const size_t chunk_;
  ChunkFn fn_;
  std::atomic<size_t> cursor_{0};
  std::atomic<int> next_lane_{1};  // Lane 0 is reserved for the caller.
};

/// Lane cap for a preprocessing ParallelFor: scheduler workers plus the
/// calling thread, optionally clamped by an options knob (0 = no clamp).
inline int PreprocessLaneCap(const TaskScheduler* scheduler, int clamp) {
  const int lanes = scheduler == nullptr ? 1 : scheduler->num_threads() + 1;
  return clamp > 0 ? std::min(lanes, clamp) : lanes;
}

}  // namespace gpssn

#endif  // GPSSN_COMMON_PARALLEL_FOR_H_
