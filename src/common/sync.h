// Copyright 2026 The gpssn Authors.
//
// The capability-annotated synchronization layer: every mutex and condition
// variable in the library lives behind these wrappers, which carry Clang
// Thread-Safety-Analysis attributes so a wrong lock discipline is a BUILD
// ERROR under -Wthread-safety (cmake -DGPSSN_THREAD_SAFETY=ON, preset
// "tsa"), not a flaky TSAN stress failure. On non-Clang compilers every
// attribute expands to nothing and the wrappers compile down to the plain
// std primitives they hold — zero runtime cost either way.
//
// Vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   * Mutex            — an exclusive capability (wraps std::mutex).
//   * SharedMutex      — a reader/writer capability (wraps std::shared_mutex).
//   * MutexLock        — scoped exclusive hold of a Mutex.
//   * WriterMutexLock  — scoped exclusive hold of a SharedMutex.
//   * ReaderMutexLock  — scoped shared hold of a SharedMutex.
//   * CondVar          — condition variable whose Wait() REQUIRES the Mutex.
//
// Annotate the protected state, not the call sites:
//
//   Mutex mu_;
//   std::vector<Task> queue_ GPSSN_GUARDED_BY(mu_);
//   void Push(Task t) GPSSN_EXCLUDES(mu_) {
//     MutexLock lock(mu_);
//     queue_.push_back(std::move(t));   // OK: mu_ held.
//   }
//
// Waiting on a predicate over guarded state must be an explicit loop in the
// annotated function body (a predicate lambda is analyzed as a separate
// unannotated function and would trip the analysis):
//
//   MutexLock lock(mu_);
//   while (queue_.empty()) cv_.Wait(mu_);
//
// The repo-wide lint (scripts/lint.py, rule `naked-mutex`) confines the raw
// std primitives to this file; lock-acquisition order across named mutexes
// is declared with `gpssn-lock-order:` comments (rule `lock-order`).

#ifndef GPSSN_COMMON_SYNC_H_
#define GPSSN_COMMON_SYNC_H_

#include <condition_variable>  // gpssn-lint: allow(naked-mutex)
#include <mutex>               // gpssn-lint: allow(naked-mutex)
#include <shared_mutex>        // gpssn-lint: allow(naked-mutex)

#include "common/macros.h"

// ---------------------------------------------------------------------------
// Attribute macros. Clang-only; no-ops elsewhere (GCC parses but does not
// understand the capability attribute family).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define GPSSN_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GPSSN_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Declares a class to be a capability (lockable resource); `x` names it in
/// diagnostics, e.g. GPSSN_CAPABILITY("mutex").
#define GPSSN_CAPABILITY(x) GPSSN_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability.
#define GPSSN_SCOPED_CAPABILITY GPSSN_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while `x` is held (shared hold is
/// enough to read, exclusive hold is required to write).
#define GPSSN_GUARDED_BY(x) GPSSN_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose POINTEE is protected by `x` (the pointer itself may
/// be read freely).
#define GPSSN_PT_GUARDED_BY(x) GPSSN_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declared acquisition order between capabilities (deadlock detection).
#define GPSSN_ACQUIRED_BEFORE(...) \
  GPSSN_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define GPSSN_ACQUIRED_AFTER(...) \
  GPSSN_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the capabilities
/// (exclusively / shared); it does not acquire or release them.
#define GPSSN_REQUIRES(...) \
  GPSSN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define GPSSN_REQUIRES_SHARED(...) \
  GPSSN_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires (and holds past return) / releases the capability.
#define GPSSN_ACQUIRE(...) \
  GPSSN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define GPSSN_ACQUIRE_SHARED(...) \
  GPSSN_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define GPSSN_RELEASE(...) \
  GPSSN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define GPSSN_RELEASE_SHARED(...) \
  GPSSN_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define GPSSN_RELEASE_GENERIC(...) \
  GPSSN_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the first argument
/// (a bool literal), e.g. GPSSN_TRY_ACQUIRE(true).
#define GPSSN_TRY_ACQUIRE(...) \
  GPSSN_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called while holding the capabilities (it will
/// acquire them itself; catches self-deadlock).
#define GPSSN_EXCLUDES(...) \
  GPSSN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis that the capability is held.
#define GPSSN_ASSERT_CAPABILITY(x) \
  GPSSN_THREAD_ANNOTATION__(assert_capability(x))

/// The function returns a reference to the capability guarding its result.
#define GPSSN_RETURN_CAPABILITY(x) GPSSN_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Use only with a comment
/// explaining why the analysis cannot see the invariant.
#define GPSSN_NO_THREAD_SAFETY_ANALYSIS \
  GPSSN_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace gpssn {

class CondVar;

/// Exclusive capability over std::mutex. Prefer the scoped MutexLock; the
/// raw Lock/Unlock surface exists for the analysis annotations themselves
/// and for adapters (CondVar).
class GPSSN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  GPSSN_DISALLOW_COPY_AND_MOVE(Mutex);

  void Lock() GPSSN_ACQUIRE() { mu_.lock(); }
  void Unlock() GPSSN_RELEASE() { mu_.unlock(); }
  bool TryLock() GPSSN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // gpssn-lint: allow(naked-mutex)
};

/// Reader/writer capability over std::shared_mutex. Readers share; writers
/// exclude everyone.
class GPSSN_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  GPSSN_DISALLOW_COPY_AND_MOVE(SharedMutex);

  void Lock() GPSSN_ACQUIRE() { mu_.lock(); }
  void Unlock() GPSSN_RELEASE() { mu_.unlock(); }
  void ReaderLock() GPSSN_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() GPSSN_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;  // gpssn-lint: allow(naked-mutex)
};

/// Scoped exclusive hold of a Mutex (the std::lock_guard of this layer).
class GPSSN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GPSSN_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() GPSSN_RELEASE() { mu_.Unlock(); }

  GPSSN_DISALLOW_COPY_AND_MOVE(MutexLock);

 private:
  Mutex& mu_;
};

/// Scoped exclusive hold of a SharedMutex.
class GPSSN_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) GPSSN_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() GPSSN_RELEASE() { mu_.Unlock(); }

  GPSSN_DISALLOW_COPY_AND_MOVE(WriterMutexLock);

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) hold of a SharedMutex.
class GPSSN_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) GPSSN_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() GPSSN_RELEASE_GENERIC() { mu_.ReaderUnlock(); }

  GPSSN_DISALLOW_COPY_AND_MOVE(ReaderMutexLock);

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to Mutex. Wait() atomically releases the held
/// Mutex and reacquires it before returning, exactly like
/// std::condition_variable over the wrapped std::mutex. Predicate re-checks
/// must be explicit loops in the caller so the analysis sees the guarded
/// reads under the capability (see the header comment).
class CondVar {
 public:
  CondVar() = default;
  GPSSN_DISALLOW_COPY_AND_MOVE(CondVar);

  /// Blocks until notified (spurious wakeups possible — always loop).
  /// The caller must hold `mu`; it is released while blocked and held
  /// again on return.
  void Wait(Mutex& mu) GPSSN_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // gpssn-lint: allow(naked-mutex)
};

}  // namespace gpssn

#endif  // GPSSN_COMMON_SYNC_H_
