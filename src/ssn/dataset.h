// Copyright 2026 The gpssn Authors.
//
// Dataset builders for the four evaluation networks of Section 6.1:
//   * UNI / ZIPF — fully synthetic spatial-social networks, generated
//     exactly per the paper's recipe (random planar-ish road network, POIs
//     on random edges with Uniform/Zipf keyword values, social network with
//     Uniform/Zipf degrees in [1, 10] and interest probabilities, users
//     mapped to random road locations).
//   * BriCal / GowCol — substitutes for the real Brightkite+California and
//     Gowalla+Colorado data (not available offline): power-law social
//     graphs matched to Table 2's sizes/degrees, road networks with Table
//     2's sizes/degrees, and interest vectors + home locations derived from
//     a simulated check-in history, mirroring how the paper derives them
//     from real check-ins (interest w_f = fraction of visits to POIs
//     carrying keyword f; home = centroid of checked-in POIs snapped to the
//     nearest road edge).

#ifndef GPSSN_SSN_DATASET_H_
#define GPSSN_SSN_DATASET_H_

#include <string>

#include "socialnet/social_generator.h"
#include "ssn/spatial_social_network.h"

namespace gpssn {

/// Parameters of the synthetic UNI/ZIPF generator. Defaults are the bold
/// values of Table 3.
struct SyntheticSsnOptions {
  Distribution distribution = Distribution::kUniform;
  int num_road_vertices = 20000;
  double road_avg_degree = 2.2;
  double space_size = 100.0;
  int num_pois = 10000;
  int num_users = 30000;
  /// Vocabulary size d shared by user topics and POI keywords. 100 keeps the
  /// default thresholds (γ = θ = 0.3) selective, giving pruning powers in
  /// the bands Figure 7 reports.
  int num_topics = 100;
  /// POIs per selected edge drawn from [0, max_pois_per_edge].
  int max_pois_per_edge = 5;
  /// Keywords per POI drawn from [1, max_keywords_per_poi].
  int max_keywords_per_poi = 2;
  double zipf_exponent = 1.0;
  /// Community/homophily structure of the social side (see
  /// SocialGenOptions); community_size = 0 disables it.
  int community_size = 150;
  uint64_t seed = 1;
};

/// Builds a synthetic spatial-social network (UNI when distribution is
/// kUniform, ZIPF when kZipf).
SpatialSocialNetwork MakeSynthetic(const SyntheticSsnOptions& options);

/// Parameters of the real-data substitutes.
struct RealLikeSsnOptions {
  std::string name = "BriCal";
  int num_users = 40000;
  double social_avg_degree = 10.3;
  double power_law_exponent = 2.5;
  int num_road_vertices = 21000;
  double road_avg_degree = 2.1;
  double space_size = 100.0;
  int num_pois = 10000;
  int num_topics = 100;
  int min_checkins = 10;
  int max_checkins = 60;
  int max_keywords_per_poi = 2;
  /// Community size for the social graph; communities also share a home
  /// neighbourhood (check-in anchor region), as real LBSN friends do.
  int community_size = 200;
  uint64_t seed = 7;
};

/// Table 2 presets. `scale` in (0, 1] shrinks every size proportionally
/// (used by the reduced-scale benchmark runs).
RealLikeSsnOptions BriCalOptions(double scale = 1.0, uint64_t seed = 7);
RealLikeSsnOptions GowColOptions(double scale = 1.0, uint64_t seed = 8);

/// Builds a check-in-driven real-data substitute.
SpatialSocialNetwork MakeRealLike(const RealLikeSsnOptions& options);

}  // namespace gpssn

#endif  // GPSSN_SSN_DATASET_H_
