#include "ssn/serialize.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace gpssn {

namespace {
constexpr char kMagic[] = "gpssn-v1";
}  // namespace

Status WriteSsnBody(std::ostream& out, const SpatialSocialNetwork& ssn) {
  out.precision(17);

  const RoadNetwork& road = ssn.road();
  const SocialNetwork& social = ssn.social();

  out << "road " << road.num_vertices() << " " << road.num_edges() << "\n";
  for (VertexId v = 0; v < road.num_vertices(); ++v) {
    const Point& p = road.vertex_point(v);
    out << p.x << " " << p.y << "\n";
  }
  for (EdgeId e = 0; e < road.num_edges(); ++e) {
    out << road.edge_u(e) << " " << road.edge_v(e) << " " << road.edge_weight(e)
        << "\n";
  }

  out << "pois " << ssn.num_pois() << "\n";
  for (const Poi& poi : ssn.pois()) {
    out << poi.position.edge << " " << poi.position.t << " "
        << poi.keywords.size();
    for (KeywordId kw : poi.keywords) out << " " << kw;
    out << "\n";
  }

  out << "social " << social.num_users() << " " << social.num_friendships()
      << " " << social.num_topics() << "\n";
  for (UserId u = 0; u < social.num_users(); ++u) {
    const auto w = social.Interests(u);
    for (size_t f = 0; f < w.size(); ++f) {
      out << (f == 0 ? "" : " ") << w[f];
    }
    out << "\n";
  }
  for (UserId u = 0; u < social.num_users(); ++u) {
    for (UserId v : social.Friends(u)) {
      if (u < v) out << u << " " << v << "\n";
    }
  }

  out << "homes\n";
  for (UserId u = 0; u < social.num_users(); ++u) {
    const EdgePosition& home = ssn.user_home(u);
    out << home.edge << " " << home.t << "\n";
  }

  out.flush();
  if (!out) return Status::IoError("write failed");
  return Status::OK();
}

Status SaveSsn(const SpatialSocialNetwork& ssn, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << kMagic << "\n";
  return WriteSsnBody(out, ssn);
}

Result<SpatialSocialNetwork> ReadSsnBody(std::istream& in) {
  std::string section;
  int num_vertices = 0, num_edges = 0;
  if (!(in >> section >> num_vertices >> num_edges) || section != "road") {
    return Status::IoError("malformed road header");
  }
  if (num_vertices < 0 || num_edges < 0) {
    return Status::IoError("negative road sizes");
  }
  RoadNetworkBuilder road_builder;
  for (int v = 0; v < num_vertices; ++v) {
    Point p;
    if (!(in >> p.x >> p.y)) return Status::IoError("truncated vertex list");
    road_builder.AddVertex(p);
  }
  for (int e = 0; e < num_edges; ++e) {
    VertexId a, b;
    double w;
    if (!(in >> a >> b >> w)) return Status::IoError("truncated edge list");
    auto added = road_builder.AddEdge(a, b, w);
    if (!added.ok()) return added.status();
  }
  RoadNetwork road = road_builder.Build();

  int num_pois = 0;
  if (!(in >> section >> num_pois) || section != "pois" || num_pois < 0) {
    return Status::IoError("malformed pois header");
  }
  std::vector<Poi> pois;
  pois.reserve(num_pois);
  for (int i = 0; i < num_pois; ++i) {
    Poi poi;
    poi.id = static_cast<PoiId>(i);
    size_t kw_count = 0;
    if (!(in >> poi.position.edge >> poi.position.t >> kw_count)) {
      return Status::IoError("truncated POI list");
    }
    if (kw_count > (1u << 20)) {
      return Status::IoError("implausible POI keyword count");
    }
    poi.keywords.resize(kw_count);
    for (auto& kw : poi.keywords) {
      if (!(in >> kw)) return Status::IoError("truncated POI keywords");
    }
    if (poi.position.edge < 0 || poi.position.edge >= road.num_edges()) {
      return Status::IoError("POI on invalid edge");
    }
    poi.location = road.PositionPoint(poi.position);
    pois.push_back(std::move(poi));
  }

  int num_users = 0, num_friendships = 0, num_topics = 0;
  if (!(in >> section >> num_users >> num_friendships >> num_topics) ||
      section != "social") {
    return Status::IoError("malformed social header");
  }
  if (num_users < 0 || num_friendships < 0 || num_topics < 1) {
    return Status::IoError("bad social sizes");
  }
  SocialNetworkBuilder social_builder(num_topics);
  std::vector<double> w(num_topics);
  for (int u = 0; u < num_users; ++u) {
    for (double& p : w) {
      if (!(in >> p)) return Status::IoError("truncated interest vectors");
    }
    auto added = social_builder.AddUser(w);
    if (!added.ok()) return added.status();
  }
  for (int f = 0; f < num_friendships; ++f) {
    UserId a, b;
    if (!(in >> a >> b)) return Status::IoError("truncated friendships");
    GPSSN_RETURN_NOT_OK(social_builder.AddFriendship(a, b));
  }
  SocialNetwork social = social_builder.Build();

  if (!(in >> section) || section != "homes") {
    return Status::IoError("malformed homes header");
  }
  std::vector<EdgePosition> homes(num_users);
  for (auto& home : homes) {
    if (!(in >> home.edge >> home.t)) return Status::IoError("truncated homes");
  }

  SpatialSocialNetwork ssn(std::move(road), std::move(social),
                           std::move(homes), std::move(pois));
  GPSSN_RETURN_NOT_OK(ssn.Validate());
  return ssn;
}

Result<SpatialSocialNetwork> LoadSsn(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string magic;
  if (!(in >> magic) || magic != kMagic) {
    return Status::IoError("bad magic in " + path);
  }
  return ReadSsnBody(in);
}

}  // namespace gpssn
