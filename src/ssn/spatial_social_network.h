// Copyright 2026 The gpssn Authors.
//
// The spatial-social network G_rs (Definition 4): the integration of a
// spatial road network G_r (with POIs on its edges) and a social network G_s
// whose users live at positions on G_r's edges.

#ifndef GPSSN_SSN_SPATIAL_SOCIAL_NETWORK_H_
#define GPSSN_SSN_SPATIAL_SOCIAL_NETWORK_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "roadnet/poi.h"
#include "roadnet/road_graph.h"
#include "socialnet/social_graph.h"

namespace gpssn {

/// Immutable combined network. Move-only aggregate of the two substrates
/// plus the user→location links and the POI set O.
class SpatialSocialNetwork {
 public:
  SpatialSocialNetwork() = default;
  SpatialSocialNetwork(RoadNetwork road, SocialNetwork social,
                       std::vector<EdgePosition> user_homes,
                       std::vector<Poi> pois);

  SpatialSocialNetwork(SpatialSocialNetwork&&) = default;
  SpatialSocialNetwork& operator=(SpatialSocialNetwork&&) = default;
  SpatialSocialNetwork(const SpatialSocialNetwork&) = delete;
  SpatialSocialNetwork& operator=(const SpatialSocialNetwork&) = delete;

  const RoadNetwork& road() const { return road_; }
  const SocialNetwork& social() const { return social_; }

  int num_users() const { return social_.num_users(); }
  int num_pois() const { return static_cast<int>(pois_.size()); }
  /// Dimensionality d of the topic/keyword vocabulary shared by user
  /// interest vectors and POI keyword sets.
  int num_topics() const { return social_.num_topics(); }

  const EdgePosition& user_home(UserId u) const { return user_homes_[u]; }
  Point user_point(UserId u) const { return road_.PositionPoint(user_homes_[u]); }

  const std::vector<Poi>& pois() const { return pois_; }
  const Poi& poi(PoiId id) const { return pois_[id]; }

  /// Structural consistency checks: home/POI edges in range, POI ids dense,
  /// keyword ids within the vocabulary, offsets in [0, 1].
  Status Validate() const;

  /// Dynamic maintenance: appends a new POI (a facility opening on an
  /// existing road edge). The road/social topology stays immutable; only
  /// the POI set O grows. Returns the new dense id. Indexes built over
  /// this network must be informed (see PoiIndex::InsertPoi).
  Result<PoiId> AddPoi(const EdgePosition& position,
                       std::vector<KeywordId> keywords);

  /// Dynamic maintenance: replaces one user's interest vector (see
  /// SocialNetwork::SetInterests).
  Status UpdateUserInterests(UserId u, std::span<const double> interests) {
    return social_.SetInterests(u, interests);
  }

 private:
  RoadNetwork road_;
  SocialNetwork social_;
  std::vector<EdgePosition> user_homes_;
  std::vector<Poi> pois_;
};

/// Summary statistics (reproduces the columns of Table 2).
struct SsnStats {
  int social_vertices = 0;
  double social_avg_degree = 0.0;
  int road_vertices = 0;
  double road_avg_degree = 0.0;
  int num_pois = 0;
  int num_topics = 0;
};

SsnStats ComputeStats(const SpatialSocialNetwork& ssn);

}  // namespace gpssn

#endif  // GPSSN_SSN_SPATIAL_SOCIAL_NETWORK_H_
