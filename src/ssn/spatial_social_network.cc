#include "ssn/spatial_social_network.h"

#include <algorithm>

#include "common/macros.h"

namespace gpssn {

SpatialSocialNetwork::SpatialSocialNetwork(RoadNetwork road,
                                           SocialNetwork social,
                                           std::vector<EdgePosition> user_homes,
                                           std::vector<Poi> pois)
    : road_(std::move(road)),
      social_(std::move(social)),
      user_homes_(std::move(user_homes)),
      pois_(std::move(pois)) {
  GPSSN_CHECK(static_cast<int>(user_homes_.size()) == social_.num_users());
}

Status SpatialSocialNetwork::Validate() const {
  if (static_cast<int>(user_homes_.size()) != social_.num_users()) {
    return Status::Internal("user home count does not match user count");
  }
  for (const EdgePosition& home : user_homes_) {
    if (home.edge < 0 || home.edge >= road_.num_edges()) {
      return Status::Internal("user home on invalid edge");
    }
    if (home.t < 0.0 || home.t > 1.0) {
      return Status::Internal("user home offset outside [0, 1]");
    }
  }
  for (size_t i = 0; i < pois_.size(); ++i) {
    const Poi& poi = pois_[i];
    if (poi.id != static_cast<PoiId>(i)) {
      return Status::Internal("POI ids must be dense and ordered");
    }
    if (poi.position.edge < 0 || poi.position.edge >= road_.num_edges()) {
      return Status::Internal("POI on invalid edge");
    }
    if (poi.position.t < 0.0 || poi.position.t > 1.0) {
      return Status::Internal("POI offset outside [0, 1]");
    }
    for (KeywordId kw : poi.keywords) {
      if (kw < 0 || kw >= num_topics()) {
        return Status::Internal("POI keyword outside the vocabulary");
      }
    }
    if (!std::is_sorted(poi.keywords.begin(), poi.keywords.end())) {
      return Status::Internal("POI keywords must be sorted");
    }
  }
  return Status::OK();
}

Result<PoiId> SpatialSocialNetwork::AddPoi(const EdgePosition& position,
                                           std::vector<KeywordId> keywords) {
  if (position.edge < 0 || position.edge >= road_.num_edges()) {
    return Status::InvalidArgument("POI edge out of range");
  }
  if (position.t < 0.0 || position.t > 1.0) {
    return Status::InvalidArgument("POI offset outside [0, 1]");
  }
  std::sort(keywords.begin(), keywords.end());
  keywords.erase(std::unique(keywords.begin(), keywords.end()),
                 keywords.end());
  for (KeywordId kw : keywords) {
    if (kw < 0 || kw >= num_topics()) {
      return Status::InvalidArgument("POI keyword outside the vocabulary");
    }
  }
  Poi poi;
  poi.id = static_cast<PoiId>(pois_.size());
  poi.position = position;
  poi.location = road_.PositionPoint(position);
  poi.keywords = std::move(keywords);
  pois_.push_back(std::move(poi));
  return pois_.back().id;
}

SsnStats ComputeStats(const SpatialSocialNetwork& ssn) {
  SsnStats stats;
  stats.social_vertices = ssn.social().num_users();
  stats.social_avg_degree = ssn.social().AverageDegree();
  stats.road_vertices = ssn.road().num_vertices();
  stats.road_avg_degree = ssn.road().AverageDegree();
  stats.num_pois = ssn.num_pois();
  stats.num_topics = ssn.num_topics();
  return stats;
}

}  // namespace gpssn
