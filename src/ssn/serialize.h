// Copyright 2026 The gpssn Authors.
//
// Text (de)serialization of spatial-social networks, so generated datasets
// can be saved, inspected, and reloaded by tools and experiments.

#ifndef GPSSN_SSN_SERIALIZE_H_
#define GPSSN_SSN_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "ssn/spatial_social_network.h"

namespace gpssn {

/// Writes `ssn` to `path` in the gpssn-v1 text format.
Status SaveSsn(const SpatialSocialNetwork& ssn, const std::string& path);

/// Reads a network previously written by SaveSsn. Validates the result.
Result<SpatialSocialNetwork> LoadSsn(const std::string& path);

/// Stream variants (used by the database-snapshot format, which embeds a
/// network section): WriteSsnBody emits everything after the magic line;
/// ReadSsnBody consumes exactly that.
Status WriteSsnBody(std::ostream& out, const SpatialSocialNetwork& ssn);
Result<SpatialSocialNetwork> ReadSsnBody(std::istream& in);

}  // namespace gpssn

#endif  // GPSSN_SSN_SERIALIZE_H_
