#include "ssn/dataset.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "roadnet/road_generator.h"
#include "roadnet/road_locator.h"

namespace gpssn {

namespace {

// Draws a sorted, unique keyword set of size in [1, max_keywords] from the
// vocabulary [0, num_topics) with the given distribution (Zipf skews toward
// low keyword ids, making some topics far more common than others).
std::vector<KeywordId> DrawKeywords(int num_topics, int max_keywords,
                                    Distribution dist, double zipf_exponent,
                                    Rng* rng) {
  const int want = static_cast<int>(rng->UniformInt(1, max_keywords));
  std::vector<KeywordId> kws;
  if (dist == Distribution::kUniform) {
    for (size_t idx : rng->SampleWithoutReplacement(
             num_topics, std::min(want, num_topics))) {
      kws.push_back(static_cast<KeywordId>(idx));
    }
  } else {
    ZipfSampler sampler(num_topics, zipf_exponent);
    int guard = 0;
    while (static_cast<int>(kws.size()) < std::min(want, num_topics) &&
           guard++ < 20 * want) {
      const KeywordId kw = static_cast<KeywordId>(sampler.Sample(rng));
      if (std::find(kws.begin(), kws.end(), kw) == kws.end()) kws.push_back(kw);
    }
  }
  std::sort(kws.begin(), kws.end());
  return kws;
}

// Places `num_pois` POIs on the road network: random edges are selected and
// each receives a batch of w POIs (w in [0, max_per_edge], Uniform or Zipf),
// per the paper's synthetic recipe.
std::vector<Poi> PlacePois(const RoadNetwork& road, int num_pois,
                           int max_per_edge, int num_topics, int max_keywords,
                           Distribution dist, double zipf_exponent, Rng* rng) {
  std::vector<Poi> pois;
  pois.reserve(num_pois);
  ZipfSampler batch_sampler(max_per_edge + 1, zipf_exponent);
  while (static_cast<int>(pois.size()) < num_pois) {
    const EdgeId e = static_cast<EdgeId>(rng->NextBounded(road.num_edges()));
    int batch;
    if (dist == Distribution::kUniform) {
      batch = static_cast<int>(rng->UniformInt(0, max_per_edge));
    } else {
      batch = static_cast<int>(batch_sampler.Sample(rng));
    }
    for (int b = 0; b < batch && static_cast<int>(pois.size()) < num_pois; ++b) {
      Poi poi;
      poi.id = static_cast<PoiId>(pois.size());
      poi.position = EdgePosition{e, rng->UniformDouble()};
      poi.location = road.PositionPoint(poi.position);
      poi.keywords =
          DrawKeywords(num_topics, max_keywords, dist, zipf_exponent, rng);
      pois.push_back(std::move(poi));
    }
  }
  return pois;
}

}  // namespace

SpatialSocialNetwork MakeSynthetic(const SyntheticSsnOptions& options) {
  Rng rng(options.seed);

  RoadGenOptions road_options;
  road_options.num_vertices = options.num_road_vertices;
  road_options.avg_degree = options.road_avg_degree;
  road_options.space_size = options.space_size;
  road_options.seed = rng.Next();
  RoadNetwork road = GenerateRoadNetwork(road_options);

  std::vector<Poi> pois = PlacePois(
      road, options.num_pois, options.max_pois_per_edge, options.num_topics,
      options.max_keywords_per_poi, options.distribution,
      options.zipf_exponent, &rng);

  SocialGenOptions social_options;
  social_options.num_users = options.num_users;
  social_options.num_topics = options.num_topics;
  social_options.degree_distribution = options.distribution;
  social_options.interest_distribution = options.distribution;
  social_options.zipf_exponent = options.zipf_exponent;
  social_options.community_size = options.community_size;
  social_options.seed = rng.Next();
  SocialNetwork social = GenerateSocialNetwork(social_options);

  // "Randomly mapping social-network users to a 2D spatial location on the
  // road network."
  std::vector<EdgePosition> homes(options.num_users);
  for (auto& home : homes) {
    home = EdgePosition{static_cast<EdgeId>(rng.NextBounded(road.num_edges())),
                        rng.UniformDouble()};
  }

  SpatialSocialNetwork ssn(std::move(road), std::move(social),
                           std::move(homes), std::move(pois));
  GPSSN_CHECK_OK(ssn.Validate());
  return ssn;
}

RealLikeSsnOptions BriCalOptions(double scale, uint64_t seed) {
  GPSSN_CHECK(scale > 0.0 && scale <= 1.0);
  RealLikeSsnOptions o;
  o.name = "BriCal";
  o.num_users = std::max(64, static_cast<int>(40000 * scale));
  o.social_avg_degree = 10.3;
  o.power_law_exponent = 2.5;
  o.num_road_vertices = std::max(64, static_cast<int>(21000 * scale));
  o.road_avg_degree = 2.1;
  o.num_pois = std::max(32, static_cast<int>(10000 * scale));
  o.seed = seed;
  return o;
}

RealLikeSsnOptions GowColOptions(double scale, uint64_t seed) {
  GPSSN_CHECK(scale > 0.0 && scale <= 1.0);
  RealLikeSsnOptions o;
  o.name = "GowCol";
  o.num_users = std::max(64, static_cast<int>(40000 * scale));
  o.social_avg_degree = 32.1;
  o.power_law_exponent = 2.3;
  o.num_road_vertices = std::max(64, static_cast<int>(30000 * scale));
  o.road_avg_degree = 2.4;
  o.num_pois = std::max(32, static_cast<int>(10000 * scale));
  o.seed = seed;
  return o;
}

SpatialSocialNetwork MakeRealLike(const RealLikeSsnOptions& options) {
  Rng rng(options.seed);

  RoadGenOptions road_options;
  road_options.num_vertices = options.num_road_vertices;
  road_options.avg_degree = options.road_avg_degree;
  road_options.space_size = options.space_size;
  road_options.seed = rng.Next();
  RoadNetwork road = GenerateRoadNetwork(road_options);

  // Keyword popularity is Zipf-skewed (real POI categories are: many
  // restaurants, few observatories).
  std::vector<Poi> pois =
      PlacePois(road, options.num_pois, /*max_per_edge=*/5, options.num_topics,
                options.max_keywords_per_poi, Distribution::kZipf,
                /*zipf_exponent=*/0.35, &rng);

  PowerLawSocialOptions social_options;
  social_options.num_users = options.num_users;
  social_options.num_topics = options.num_topics;
  social_options.avg_degree = options.social_avg_degree;
  social_options.power_law_exponent = options.power_law_exponent;
  social_options.community_size = options.community_size;
  social_options.seed = rng.Next();
  std::vector<int> community;
  SocialNetwork social =
      GeneratePowerLawSocialNetwork(social_options, &community);

  // --- Simulated check-in history (substitute for Brightkite/Gowalla
  // check-ins). Each community shares a home neighbourhood (anchor region
  // of the map) and a topic profile; each user has a latent preference
  // mixture concentrated on the profile. Check-ins favor nearby POIs whose
  // keywords match the preference.
  const int m = options.num_users;
  const int d = options.num_topics;
  const int n = static_cast<int>(pois.size());
  std::vector<double> interests(static_cast<size_t>(m) * d, 0.0);
  std::vector<EdgePosition> homes(m);
  RoadLocator locator(&road);

  // Spatial bucket of POIs for locality-biased sampling: sort POI ids by a
  // coarse grid cell so a contiguous slice ~ one neighbourhood.
  std::vector<PoiId> poi_by_cell(n);
  for (int i = 0; i < n; ++i) poi_by_cell[i] = i;
  const int grid = std::max(1, static_cast<int>(std::sqrt(n / 16.0)));
  auto cell_of = [&](const Poi& poi) {
    const int cx = std::clamp(
        static_cast<int>(poi.location.x / options.space_size * grid), 0, grid - 1);
    const int cy = std::clamp(
        static_cast<int>(poi.location.y / options.space_size * grid), 0, grid - 1);
    return cy * grid + cx;
  };
  std::sort(poi_by_cell.begin(), poi_by_cell.end(), [&](PoiId a, PoiId b) {
    return cell_of(pois[a]) < cell_of(pois[b]);
  });

  // Per-community anchors (shared home neighbourhood) and topic profiles.
  int num_communities = 1;
  for (int c : community) num_communities = std::max(num_communities, c + 1);
  const int window = std::max(16, n / 50);
  std::vector<int> community_anchor(num_communities);
  for (int& a : community_anchor) {
    a = static_cast<int>(rng.NextBounded(std::max(1, n - window)));
  }
  ZipfSampler topic_popularity(d, 0.0);  // Near-uniform: communities differ.
  std::vector<std::vector<KeywordId>> community_profile(num_communities);
  for (auto& profile : community_profile) {
    int guard = 0;
    while (static_cast<int>(profile.size()) < std::min(6, d) && guard++ < 200) {
      const KeywordId t = static_cast<KeywordId>(topic_popularity.Sample(&rng));
      if (std::find(profile.begin(), profile.end(), t) == profile.end()) {
        profile.push_back(t);
      }
    }
  }

  for (UserId u = 0; u < m; ++u) {
    // Latent preference mixture concentrated on the community profile.
    std::vector<double> pref(d, 0.0);
    double pref_sum = 0.0;
    for (KeywordId t : community_profile[community[u]]) {
      pref[t] = -std::log(std::max(rng.UniformDouble(), 1e-12));  // Exp(1).
      pref_sum += pref[t];
    }
    // A pinch of idiosyncratic taste outside the profile.
    for (int extra = 0; extra < 2; ++extra) {
      const KeywordId t = static_cast<KeywordId>(topic_popularity.Sample(&rng));
      const double wgt =
          0.3 * -std::log(std::max(rng.UniformDouble(), 1e-12));
      pref[t] += wgt;
      pref_sum += wgt;
    }
    if (pref_sum > 0) {
      for (double& p : pref) p /= pref_sum;
    }

    // Anchor neighbourhood: the community's window of co-located POIs.
    const int start = community_anchor[community[u]];

    const int checkins = static_cast<int>(
        rng.UniformInt(options.min_checkins, options.max_checkins));
    double cx = 0.0, cy = 0.0;
    int accepted = 0;
    std::vector<int> visits(d, 0);
    int guard = 0;
    while (accepted < checkins && guard++ < 50 * checkins) {
      // 80% of check-ins near the anchor, 20% anywhere (travel).
      PoiId pid;
      if (rng.UniformDouble() < 0.8) {
        pid = poi_by_cell[start + static_cast<int>(rng.NextBounded(
                              std::min(window, n - start)))];
      } else {
        pid = static_cast<PoiId>(rng.NextBounded(n));
      }
      const Poi& poi = pois[pid];
      // Accept with probability proportional to topical affinity (the
      // constant keeps profile-matching POIs near-certain and off-topic
      // visits occasional, independent of the vocabulary size).
      double affinity = 0.02;  // Base rate: people visit off-topic places too.
      for (KeywordId kw : poi.keywords) affinity += pref[kw];
      if (rng.UniformDouble() >= std::min(1.0, affinity * 5.0)) continue;
      ++accepted;
      cx += poi.location.x;
      cy += poi.location.y;
      for (KeywordId kw : poi.keywords) ++visits[kw];
    }
    if (accepted == 0) {
      // Degenerate: fall back to one uniformly random check-in.
      const Poi& poi = pois[rng.NextBounded(n)];
      accepted = 1;
      cx = poi.location.x;
      cy = poi.location.y;
      for (KeywordId kw : poi.keywords) ++visits[kw];
    }
    // Interest vector: relative visit frequency of each keyword
    // ("percentage of times user u_j visits locations with keyword w_f"),
    // max-normalized so the favourite topic scores 1.0 — matching the
    // magnitudes of the paper's Table 1 example independent of the
    // vocabulary size. A text-based topic-discovery step keeps only the
    // handful of genuinely frequented topics: the top few keywords by
    // visit count, and only those visited at least 40% as often as the
    // favourite.
    constexpr int kKeptTopics = 4;
    std::vector<int> by_count(d);
    for (int f = 0; f < d; ++f) by_count[f] = f;
    std::partial_sort(by_count.begin(), by_count.begin() + kKeptTopics,
                      by_count.end(), [&](int a, int b) {
                        if (visits[a] != visits[b]) return visits[a] > visits[b];
                        return a < b;
                      });
    const int top = visits[by_count[0]];
    for (int rank = 0; rank < kKeptTopics && top > 0; ++rank) {
      const int f = by_count[rank];
      const double w = static_cast<double>(visits[f]) / top;
      if (w >= 0.4) interests[static_cast<size_t>(u) * d + f] = w;
    }
    // Home: centroid of check-ins snapped onto the road network.
    homes[u] = locator.NearestEdgePosition(
        Point{cx / accepted, cy / accepted});
  }

  social = WithInterests(social, std::move(interests), d);
  SpatialSocialNetwork ssn(std::move(road), std::move(social),
                           std::move(homes), std::move(pois));
  GPSSN_CHECK_OK(ssn.Validate());
  return ssn;
}

}  // namespace gpssn
