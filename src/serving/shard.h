// Copyright 2026 The gpssn Authors.
//
// ShardProcess: one serving shard (DESIGN.md §12). Owns its slice of the
// candidate space (a ShardScope from the partitioner), its own
// TaskScheduler with a pooled GpssnProcessor per worker, and its own
// DistanceCache — the same per-node resources a standalone GpssnDatabase
// instance would own — over the shared immutable indexes and distance
// backend. A pump thread drains the shard's transport inbox and submits
// each request as a scheduler task, so one shard serves multiple in-flight
// queries concurrently (the coordinator pipelines a batch).
//
// Liveness contract: a shard ALWAYS replies — success payload or error
// status (deadline, cancel, malformed request) — so the coordinator may
// block on its inbox without timeouts. The pump exits when the transport
// closes; destruction joins the pump and drains the scheduler.

#ifndef GPSSN_SERVING_SHARD_H_
#define GPSSN_SERVING_SHARD_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/task_scheduler.h"
#include "core/query.h"
#include "roadnet/distance_cache.h"
#include "serving/transport.h"
#include "serving/wire.h"

namespace gpssn::serving {

struct ShardConfig {
  int shard_id = 0;
  /// The index subtrees this shard owns (from MakeServingPartition).
  ShardScope scope;
  /// Base processor options; the shard layers per-request deadline/cancel
  /// and its own distance cache on top. `distance_backend` selects the
  /// shared engine (CH or built-in Dijkstra) exactly as on the single-node
  /// path.
  QueryOptions query;
  /// Scheduler worker count (= pooled processors); >= 1.
  int num_workers = 1;
  /// Entry budget of the shard-private DistanceCache; 0 disables caching.
  size_t distance_cache_entries = 1u << 18;
  /// Shared immutable indexes (must outlive the shard).
  const PoiIndex* poi_index = nullptr;
  const SocialIndex* social_index = nullptr;
  /// Cluster-level cancel flag (ServingCluster::CancelAll); may be null.
  const std::atomic<bool>* cancel = nullptr;
};

class ShardProcess {
 public:
  /// Starts the pump thread immediately. `transport` must outlive the
  /// shard and must be Close()d before the shard is destroyed (that is
  /// what makes the pump exit).
  ShardProcess(const ShardConfig& config, InProcessTransport* transport);
  ~ShardProcess();

  GPSSN_DISALLOW_COPY_AND_MOVE(ShardProcess);

 private:
  void PumpLoop();
  void Handle(int worker, const TransportMessage& message);
  void Reply(MessageKind kind, uint64_t query_id, const Status& status,
             std::vector<uint8_t> payload);

  const ShardConfig config_;
  InProcessTransport* const transport_;
  std::unique_ptr<DistanceCache> distance_cache_;
  std::vector<std::unique_ptr<GpssnProcessor>> processors_;  // One per worker.
  TaskScheduler scheduler_;
  std::thread pump_;  // Last member: joined before the state above dies.
};

}  // namespace gpssn::serving

#endif  // GPSSN_SERVING_SHARD_H_
