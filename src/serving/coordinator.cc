#include "serving/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <tuple>
#include <utility>

#include "core/refinement.h"

namespace gpssn::serving {
namespace {

// Nearest-rank percentile over an ascending-sorted sample (same estimator
// as the batch executor's, so serving and single-node BatchStats compare).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const size_t idx = static_cast<size_t>(std::max(1.0, rank)) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

Result<std::unique_ptr<ServingCluster>> ServingCluster::Create(
    const GpssnDatabase& db, const ServingOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.max_inflight < 1) {
    return Status::InvalidArgument("max_inflight must be >= 1");
  }
  if (options.query.subset_sampling) {
    return Status::InvalidArgument(
        "subset sampling is not supported by the sharded serving path");
  }
  auto partition = MakeServingPartition(db.social_index(), db.poi_index(),
                                        options.num_shards);
  if (!partition.ok()) return partition.status();
  return std::unique_ptr<ServingCluster>(
      // Private ctor keeps construction behind the validating factory, so
      // std::make_unique cannot reach it.
      new ServingCluster(db, options, std::move(*partition)));  // gpssn-lint: allow(raw-new-delete)
}

ServingCluster::ServingCluster(const GpssnDatabase& db,
                               const ServingOptions& options,
                               ServingPartition partition)
    : options_(options), db_(db), partition_(std::move(partition)) {
  shard_query_options_ = options_.query;
  if (shard_query_options_.distance_backend == nullptr) {
    shard_query_options_.distance_backend = db_.distance_backend();
  }
  // Shards own their caches and schedulers; never inherit the database's.
  shard_query_options_.distance_cache = nullptr;
  shard_query_options_.scheduler = nullptr;

  transport_ = std::make_unique<InProcessTransport>(options_.num_shards,
                                                    options_.mailbox_capacity);
  shards_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    ShardConfig config;
    config.shard_id = s;
    config.scope = partition_.scopes[s];
    config.query = shard_query_options_;
    config.num_workers = options_.shard_num_workers;
    config.distance_cache_entries = options_.shard_distance_cache_entries;
    config.poi_index = &db_.poi_index();
    config.social_index = &db_.social_index();
    config.cancel = &cancel_;
    shards_.push_back(std::make_unique<ShardProcess>(config, transport_.get()));
  }
}

ServingCluster::~ServingCluster() {
  // Close the fabric first: shard pumps exit, then the shard destructors
  // join them and drain their schedulers.
  transport_->Close();
}

double ServingCluster::DeadlineSecondsRemaining(const QueryState& state) const {
  if (!state.deadline.armed()) return -1.0;
  // May be <= 0 (already expired): the shard arms an expired deadline and
  // replies DeadlineExceeded at its first poll.
  return std::chrono::duration<double>(state.deadline.at() -
                                       std::chrono::steady_clock::now())
      .count();
}

bool ServingCluster::SendGather(QueryState* state, uint64_t query_id,
                                int shard) {
  GatherRequest request;
  request.query = state->query;
  request.deadline_seconds = DeadlineSecondsRemaining(*state);
  TransportMessage message;
  message.header.kind = static_cast<uint32_t>(MessageKind::kGatherRequest);
  message.header.shard = shard;
  message.header.query_id = query_id;
  message.payload = EncodeGatherRequest(request);
  message.header.payload_bytes = message.payload.size();
  ++state->stats.shard_msgs;
  return transport_->SendToShard(shard, std::move(message));
}

bool ServingCluster::SendRefine(QueryState* state, uint64_t query_id,
                                int shard, double incumbent) {
  RefineRequest request;
  request.query = state->query;
  request.deadline_seconds = DeadlineSecondsRemaining(*state);
  request.incumbent = incumbent;
  request.centers = state->per_shard[shard].pois;
  request.groups = state->groups;
  TransportMessage message;
  message.header.kind = static_cast<uint32_t>(MessageKind::kRefineRequest);
  message.header.shard = shard;
  message.header.query_id = query_id;
  message.payload = EncodeRefineRequest(request);
  message.header.payload_bytes = message.payload.size();
  ++state->stats.shard_msgs;
  return transport_->SendToShard(shard, std::move(message));
}

void ServingCluster::StartQuery(uint64_t query_id, size_t slot,
                                const GpssnQuery& query,
                                std::vector<BatchQueryResult>* results) {
  QueryState& state = inflight_[query_id];
  state.slot = slot;
  state.query = query;
  if (options_.default_deadline_seconds > 0.0) {
    state.deadline = QueryDeadline::After(options_.default_deadline_seconds);
  }
  state.phase = Phase::kGather;
  state.per_shard.resize(options_.num_shards);
  state.outstanding = options_.num_shards;
  state.submit_timer.Restart();
  state.phase_timer.Restart();
  for (int s = 0; s < options_.num_shards; ++s) {
    if (!SendGather(&state, query_id, s)) {
      Complete(&state, Status::Internal("transport closed during gather"),
               results);
      inflight_.erase(query_id);
      return;
    }
  }
}

void ServingCluster::Complete(QueryState* state, Status status,
                              std::vector<BatchQueryResult>* results) {
  BatchQueryResult& slot = (*results)[state->slot];
  slot.query = state->query;
  slot.status = std::move(status);
  if (slot.status.ok()) slot.answer = std::move(state->best);
  slot.stats = state->stats;
  slot.latency_seconds = state->submit_timer.ElapsedSeconds();
  slot.worker = state->wave1_shard;
}

void ServingCluster::Plan(QueryState* state) {
  state->stats.serve_gather_seconds = state->phase_timer.ElapsedSeconds();
  state->phase_timer.Restart();

  // Concatenating the shard lists in shard order reproduces the
  // single-node I_S leaf-traversal candidate order (partition invariant
  // ORDER); the issuer lands at its traversal position inside its own
  // shard's list, or at the end if its leaf was node-pruned — exactly as
  // in Execute().
  std::vector<UserId> candidates;
  for (const ShardCandidates& sc : state->per_shard) {
    candidates.insert(candidates.end(), sc.users.begin(), sc.users.end());
  }
  if (std::find(candidates.begin(), candidates.end(), state->query.issuer) ==
      candidates.end()) {
    candidates.push_back(state->query.issuer);
  }

  const SocialNetwork& social = db_.ssn().social();
  if (shard_query_options_.pruning.interest_score) {
    ApplyCorollary2(social, state->query, &candidates, &state->stats);
  }
  if (!EnumerateGroups(social, state->query, candidates,
                       shard_query_options_.max_groups, &state->groups)) {
    state->stats.truncated = true;
  }
  state->stats.groups_enumerated = state->groups.size();
  state->stats.serve_plan_seconds = state->phase_timer.ElapsedSeconds();
  state->phase_timer.Restart();
}

bool ServingCluster::HandleReply(QueryState* state,
                                 const TransportMessage& message,
                                 std::vector<BatchQueryResult>* results) {
  const uint64_t query_id = message.header.query_id;
  const Status shard_status = StatusFromWire(message.header.status_code);
  if (!shard_status.ok()) {
    // Error short-circuit: the query completes now; replies still
    // outstanding from other shards arrive stale and are dropped by
    // query_id.
    Complete(state, shard_status, results);
    return true;
  }

  switch (state->phase) {
    case Phase::kGather: {
      auto reply = DecodeCandidatesReply(message.payload);
      if (!reply.ok()) {
        Complete(state, reply.status(), results);
        return true;
      }
      ++state->stats.shard_msgs;
      state->stats.MergeFrom(reply->stats);
      state->per_shard[message.header.shard] = std::move(reply->candidates);
      if (--state->outstanding > 0) return false;

      Plan(state);

      // Wave 1: the shard with the smallest objective lower bound refines
      // unbounded and establishes the incumbent. No candidate centers or
      // no groups anywhere = no feasible answer (found=false, OK status),
      // matching Execute().
      int wave1 = -1;
      for (int s = 0; s < options_.num_shards; ++s) {
        if (state->per_shard[s].pois.empty()) continue;
        if (wave1 == -1 || state->per_shard[s].lower_bound <
                               state->per_shard[wave1].lower_bound) {
          wave1 = s;
        }
      }
      if (wave1 == -1 || state->groups.empty()) {
        state->stats.serve_refine_seconds = state->phase_timer.ElapsedSeconds();
        Complete(state, Status::OK(), results);
        return true;
      }
      state->wave1_shard = wave1;
      state->phase = Phase::kRefineWave1;
      state->outstanding = 1;
      ++state->stats.refined_shards;
      if (!SendRefine(state, query_id, wave1, kInfDistance)) {
        Complete(state, Status::Internal("transport closed during refine"),
                 results);
        return true;
      }
      return false;
    }

    case Phase::kRefineWave1: {
      auto reply = DecodeAnswerReply(message.payload);
      if (!reply.ok()) {
        Complete(state, reply.status(), results);
        return true;
      }
      ++state->stats.shard_msgs;
      state->stats.MergeFrom(reply->stats);
      if (reply->result.answer.found) {
        state->incumbent = reply->result.answer.max_dist;
        state->best = std::move(reply->result.answer);
        state->best_rank = {state->best.max_dist, reply->result.center_worst,
                            state->best.center, reply->result.group_index};
      }

      // Wave 2: broadcast the incumbent; skip any shard whose lower bound
      // already exceeds it (it cannot beat, or tie-and-win against, the
      // incumbent: its objectives are all > incumbent >= optimum). This is
      // the cross-shard incumbent prune.
      state->phase = Phase::kRefineWave2;
      state->outstanding = 0;
      for (int s = 0; s < options_.num_shards; ++s) {
        if (s == state->wave1_shard || state->per_shard[s].pois.empty()) {
          continue;
        }
        if (state->per_shard[s].lower_bound > state->incumbent) {
          ++state->stats.skipped_shards;
          continue;
        }
        ++state->stats.refined_shards;
        ++state->outstanding;
        if (!SendRefine(state, query_id, s, state->incumbent)) {
          Complete(state, Status::Internal("transport closed during refine"),
                   results);
          return true;
        }
      }
      if (state->outstanding == 0) {
        state->stats.serve_refine_seconds = state->phase_timer.ElapsedSeconds();
        Complete(state, Status::OK(), results);
        return true;
      }
      return false;
    }

    case Phase::kRefineWave2: {
      auto reply = DecodeAnswerReply(message.payload);
      if (!reply.ok()) {
        Complete(state, reply.status(), results);
        return true;
      }
      ++state->stats.shard_msgs;
      state->stats.MergeFrom(reply->stats);
      if (reply->result.answer.found) {
        // Discovery-rank merge: the lexicographically least key wins —
        // exactly the first-encountered minimum of the single-node serial
        // loop. Wave-2 shards report ties with the incumbent (their reject
        // is strict against it) precisely so this comparison can decide
        // them by rank.
        const RankKey rank{reply->result.answer.max_dist,
                           reply->result.center_worst,
                           reply->result.answer.center,
                           reply->result.group_index};
        const bool better =
            !state->best.found ||
            std::tie(rank.max_dist, rank.center_worst, rank.center,
                     rank.group_index) <
                std::tie(state->best_rank.max_dist,
                         state->best_rank.center_worst, state->best_rank.center,
                         state->best_rank.group_index);
        if (better) {
          state->best = std::move(reply->result.answer);
          state->best_rank = rank;
          state->incumbent = state->best.max_dist;
        }
      }
      if (--state->outstanding > 0) return false;
      state->stats.serve_refine_seconds = state->phase_timer.ElapsedSeconds();
      Complete(state, Status::OK(), results);
      return true;
    }
  }
  return false;
}

std::vector<BatchQueryResult> ServingCluster::QueryBatch(
    std::span<const GpssnQuery> queries, BatchStats* stats) {
  cancel_.store(false, std::memory_order_relaxed);  // gpssn-lint: relaxed(cooperative cancel flag; latency not ordering)
  const uint64_t msgs_base = transport_->messages_sent();
  WallTimer batch_timer;

  std::vector<BatchQueryResult> results(queries.size());
  size_t next_submit = 0;
  size_t completed = 0;

  while (completed < queries.size()) {
    while (next_submit < queries.size() &&
           inflight_.size() < static_cast<size_t>(options_.max_inflight)) {
      const uint64_t query_id = next_query_id_++;
      StartQuery(query_id, next_submit, queries[next_submit], &results);
      ++next_submit;
      if (inflight_.find(query_id) == inflight_.end()) ++completed;
    }
    if (inflight_.empty()) continue;

    TransportMessage message;
    if (!transport_->RecvAtCoordinator(&message)) {
      // Fabric closed under us: fail everything still in flight.
      for (auto& [id, state] : inflight_) {
        Complete(&state, Status::Internal("transport closed"), &results);
        ++completed;
      }
      inflight_.clear();
      break;
    }
    auto it = inflight_.find(message.header.query_id);
    if (it == inflight_.end()) continue;  // Stale reply: drop.
    if (HandleReply(&it->second, message, &results)) {
      inflight_.erase(it);
      ++completed;
    }
  }

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->queries = results.size();
    std::vector<double> latencies;
    latencies.reserve(results.size());
    for (const BatchQueryResult& r : results) {
      if (r.status.ok()) {
        ++stats->succeeded;
        if (r.answer.found) ++stats->answers_found;
      } else if (r.status.IsDeadlineExceeded()) {
        ++stats->deadline_exceeded;
      } else if (r.status.IsCancelled()) {
        ++stats->cancelled;
      } else {
        ++stats->failed;
      }
      stats->totals.MergeFrom(r.stats);
      latencies.push_back(r.latency_seconds);
    }
    stats->wall_seconds = batch_timer.ElapsedSeconds();
    if (stats->wall_seconds > 0.0) {
      stats->throughput_qps =
          static_cast<double>(stats->queries) / stats->wall_seconds;
    }
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      double sum = 0.0;
      for (double v : latencies) sum += v;
      stats->latency_mean_seconds = sum / static_cast<double>(latencies.size());
      stats->latency_p50_seconds = Percentile(latencies, 0.50);
      stats->latency_p95_seconds = Percentile(latencies, 0.95);
      stats->latency_p99_seconds = Percentile(latencies, 0.99);
      stats->latency_max_seconds = latencies.back();
    }
    // Cross-check: the per-query shard_msgs counters must cover every
    // message the fabric carried for this batch (stale replies included —
    // they were counted when sent).
    stats->totals.shard_msgs =
        std::max(stats->totals.shard_msgs,
                 transport_->messages_sent() - msgs_base);
  }
  return results;
}

Result<GpssnAnswer> ServingCluster::Query(const GpssnQuery& query,
                                          QueryStats* stats) {
  std::vector<BatchQueryResult> results = QueryBatch({&query, 1});
  if (stats != nullptr) *stats = results[0].stats;
  if (!results[0].status.ok()) return results[0].status;
  return std::move(results[0].answer);
}

}  // namespace gpssn::serving
