#include "serving/transport.h"

#include <utility>

namespace gpssn::serving {

Mailbox::Mailbox(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

bool Mailbox::Send(TransportMessage message) {
  MutexLock lock(mu_);
  while (!closed_ && queue_.size() >= capacity_) {
    not_full_.Wait(mu_);
  }
  if (closed_) return false;
  queue_.push_back(std::move(message));
  not_empty_.NotifyOne();
  return true;
}

bool Mailbox::Recv(TransportMessage* out) {
  MutexLock lock(mu_);
  while (queue_.empty() && !closed_) {
    not_empty_.Wait(mu_);
  }
  if (queue_.empty()) return false;  // Closed and drained.
  *out = std::move(queue_.front());
  queue_.pop_front();
  not_full_.NotifyOne();
  return true;
}

void Mailbox::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
}

InProcessTransport::InProcessTransport(int num_shards, size_t mailbox_capacity)
    : num_shards_(num_shards), coordinator_inbox_(mailbox_capacity) {
  shard_inboxes_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shard_inboxes_.push_back(std::make_unique<Mailbox>(mailbox_capacity));
  }
}

bool InProcessTransport::SendToShard(int shard, TransportMessage message) {
  if (!shard_inboxes_[shard]->Send(std::move(message))) return false;
  messages_sent_.fetch_add(
      1, std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stat counter)
  return true;
}

bool InProcessTransport::SendToCoordinator(TransportMessage message) {
  if (!coordinator_inbox_.Send(std::move(message))) return false;
  messages_sent_.fetch_add(
      1, std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stat counter)
  return true;
}

bool InProcessTransport::RecvAtShard(int shard, TransportMessage* out) {
  return shard_inboxes_[shard]->Recv(out);
}

bool InProcessTransport::RecvAtCoordinator(TransportMessage* out) {
  return coordinator_inbox_.Recv(out);
}

void InProcessTransport::Close() {
  for (auto& inbox : shard_inboxes_) inbox->Close();
  coordinator_inbox_.Close();
}

}  // namespace gpssn::serving
