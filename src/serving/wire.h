// Copyright 2026 The gpssn Authors.
//
// Wire format of the sharded serving layer (DESIGN.md §12). Every message
// is a fixed-layout header struct followed by flat POD arrays, so the
// in-process transport and a future socket transport carry the SAME bytes:
// each header struct below is `gpssn-serialized` (trivially copyable,
// pinned size — enforced by scripts/lint.py rules serialized-struct and
// serving-wire). Multi-byte fields are host-endian; a socket transport
// between heterogeneous hosts would add byteswapping at the boundary.
//
// Message flow (coordinator <-> shard s, one query):
//
//   kGatherRequest  -> s   WireQuery
//   kCandidates     <- s   WireCandidatesHeader users[] pois[] QueryStats
//   kRefineRequest  -> s   WireRefineHeader WireQuery centers[] groups[]
//   kAnswer         <- s   WireAnswerHeader users[] pois[] QueryStats
//
// Replies carry a StatusCode in the envelope header; a non-OK reply has an
// empty payload. Stale replies (a shard answering after the coordinator
// abandoned the query) are identified — and dropped — by `query_id`.

#ifndef GPSSN_SERVING_WIRE_H_
#define GPSSN_SERVING_WIRE_H_

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "core/query.h"
#include "core/stats.h"

namespace gpssn::serving {

enum class MessageKind : uint32_t {
  kGatherRequest = 1,
  kCandidates = 2,
  kRefineRequest = 3,
  kAnswer = 4,
};

/// Transport envelope prefixed to every message.
// gpssn-serialized(bytes=32)
struct WireHeader {
  uint32_t kind = 0;        // MessageKind.
  int32_t shard = -1;       // Sender (replies) / receiver (requests).
  uint64_t query_id = 0;    // Coordinator-assigned, never reused.
  int32_t status_code = 0;  // StatusCode (replies; 0 = OK).
  uint32_t reserved = 0;
  uint64_t payload_bytes = 0;
};
static_assert(std::is_trivially_copyable_v<WireHeader>,
              "WireHeader crosses the transport verbatim");
static_assert(sizeof(WireHeader) == 32,
              "WireHeader wire layout is fixed at 32 bytes");

/// Query parameters (Definition 5) plus the cooperative deadline, encoded
/// as seconds-remaining at send time (< 0 = unarmed). Re-arming on the
/// receiving side loses the request's transport latency — the shard's
/// deadline is never EARLIER than the coordinator's, so a query is never
/// spuriously expired by the transfer.
// gpssn-serialized(bytes=48)
struct WireQuery {
  int32_t issuer = -1;
  int32_t tau = 0;
  uint32_t metric = 0;  // InterestMetric.
  uint32_t reserved = 0;
  double gamma = 0.0;
  double theta = 0.0;
  double radius = 0.0;
  double deadline_seconds = -1.0;
};
static_assert(std::is_trivially_copyable_v<WireQuery>,
              "WireQuery crosses the transport verbatim");
static_assert(sizeof(WireQuery) == 48,
              "WireQuery wire layout is fixed at 48 bytes");

/// Gather (scatter-phase) reply: candidate users in I_S leaf-traversal
/// order, candidate POIs sorted ascending, and the shard's objective lower
/// bound. Followed by int32 users[num_users], int32 pois[num_pois], and a
/// QueryStats blob of stats_bytes.
// gpssn-serialized(bytes=24)
struct WireCandidatesHeader {
  uint32_t num_users = 0;
  uint32_t num_pois = 0;
  double lower_bound = 0.0;
  uint32_t stats_bytes = 0;
  uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<WireCandidatesHeader>,
              "WireCandidatesHeader crosses the transport verbatim");
static_assert(sizeof(WireCandidatesHeader) == 24,
              "WireCandidatesHeader wire layout is fixed at 24 bytes");

/// Refine request: the global incumbent plus this shard's candidate
/// centers and the coordinator's enumerated groups (each exactly
/// group_size users, flattened row-major). Followed by a WireQuery, int32
/// centers[num_centers], and int32 groups[num_groups * group_size].
// gpssn-serialized(bytes=32)
struct WireRefineHeader {
  uint32_t num_centers = 0;
  uint32_t num_groups = 0;
  uint32_t group_size = 0;
  uint32_t reserved = 0;
  double incumbent = 0.0;
  double reserved2 = 0.0;
};
static_assert(std::is_trivially_copyable_v<WireRefineHeader>,
              "WireRefineHeader crosses the transport verbatim");
static_assert(sizeof(WireRefineHeader) == 32,
              "WireRefineHeader wire layout is fixed at 32 bytes");

/// Refine reply: the shard's best answer (found = 0 when no candidate beat
/// the incumbent) plus its discovery rank (center_worst, group_index — see
/// ShardRefineResult). Followed by int32 users[num_users], int32
/// pois[num_pois], and a QueryStats blob of stats_bytes.
// gpssn-serialized(bytes=48)
struct WireAnswerHeader {
  uint32_t found = 0;
  int32_t center = -1;
  uint32_t num_users = 0;
  uint32_t num_pois = 0;
  double max_dist = 0.0;
  double center_worst = 0.0;
  int64_t group_index = -1;
  uint32_t stats_bytes = 0;
  uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<WireAnswerHeader>,
              "WireAnswerHeader crosses the transport verbatim");
static_assert(sizeof(WireAnswerHeader) == 48,
              "WireAnswerHeader wire layout is fixed at 48 bytes");

/// One transport message: envelope + serialized payload bytes.
struct TransportMessage {
  WireHeader header;
  std::vector<uint8_t> payload;
};

// --- Decoded request/reply forms -------------------------------------------

struct GatherRequest {
  GpssnQuery query;
  double deadline_seconds = -1.0;  // < 0 = unarmed.
};

struct CandidatesReply {
  ShardCandidates candidates;
  QueryStats stats;
};

struct RefineRequest {
  GpssnQuery query;
  double deadline_seconds = -1.0;
  double incumbent = 0.0;
  std::vector<PoiId> centers;
  std::vector<std::vector<UserId>> groups;
};

struct AnswerReply {
  ShardRefineResult result;
  QueryStats stats;
};

// --- Encode / decode --------------------------------------------------------
// Encoders produce the payload bytes; the caller fills the envelope.
// Decoders bounds-check every section and return InvalidArgument on a
// malformed payload (truncated, inconsistent counts, stats size mismatch).

std::vector<uint8_t> EncodeGatherRequest(const GatherRequest& request);
Result<GatherRequest> DecodeGatherRequest(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeCandidatesReply(const CandidatesReply& reply);
Result<CandidatesReply> DecodeCandidatesReply(
    std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeRefineRequest(const RefineRequest& request);
Result<RefineRequest> DecodeRefineRequest(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeAnswerReply(const AnswerReply& reply);
Result<AnswerReply> DecodeAnswerReply(std::span<const uint8_t> payload);

/// Reconstructs a Status from a wire status_code (0 = OK). Unknown codes
/// map to Internal.
Status StatusFromWire(int32_t code);

}  // namespace gpssn::serving

#endif  // GPSSN_SERVING_WIRE_H_
