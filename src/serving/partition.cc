#include "serving/partition.h"

#include <cstddef>

namespace gpssn::serving {
namespace {

/// Packs the ordered frontier `nodes` into `num_shards` contiguous groups,
/// greedily balanced against the ideal cumulative weight. Guarantees no
/// shard is left empty while enough nodes remain for the shards after it.
template <typename NodeId, typename WeightOf>
std::vector<std::vector<NodeId>> PackContiguous(
    const std::vector<NodeId>& nodes, int num_shards, WeightOf weight_of) {
  double total = 0.0;
  for (NodeId id : nodes) total += weight_of(id);
  std::vector<std::vector<NodeId>> groups(num_shards);
  int shard = 0;
  double acc = 0.0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    groups[shard].push_back(nodes[i]);
    acc += weight_of(nodes[i]);
    const size_t left = nodes.size() - i - 1;
    const size_t shards_left = static_cast<size_t>(num_shards - shard - 1);
    if (shard + 1 < num_shards &&
        (acc >= total * (shard + 1) / num_shards || left <= shards_left)) {
      ++shard;
    }
  }
  return groups;
}

/// Grows a left-to-right frontier from `root`: every round replaces each
/// internal node with its children (leaves keep their place), stopping as
/// soon as the frontier can seed `num_shards` groups or only leaves
/// remain. The expansion is level-synchronous, so the frontier always
/// enumerates the tree's leaves in single-node descent order.
template <typename NodeId, typename ChildrenOf, typename IsLeaf>
std::vector<NodeId> GrowFrontier(NodeId root, int num_shards,
                                 ChildrenOf children_of, IsLeaf is_leaf) {
  std::vector<NodeId> frontier{root};
  for (;;) {
    if (static_cast<int>(frontier.size()) >= num_shards) break;
    bool any_internal = false;
    for (NodeId id : frontier) {
      if (!is_leaf(id)) {
        any_internal = true;
        break;
      }
    }
    if (!any_internal) break;
    std::vector<NodeId> next;
    next.reserve(frontier.size() * 2);
    for (NodeId id : frontier) {
      if (is_leaf(id)) {
        next.push_back(id);
        continue;
      }
      for (NodeId child : children_of(id)) next.push_back(child);
    }
    frontier = std::move(next);
  }
  return frontier;
}

}  // namespace

Result<ServingPartition> MakeServingPartition(const SocialIndex& social,
                                              const PoiIndex& poi,
                                              int num_shards) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  ServingPartition partition;
  partition.scopes.resize(num_shards);

  // --- Social side: partition-tree subtrees.
  const std::vector<SNodeId> s_frontier = GrowFrontier<SNodeId>(
      social.root(), num_shards,
      [&](SNodeId id) -> std::vector<SNodeId> {
        return social.node(id).children;
      },
      [&](SNodeId id) { return social.node(id).is_leaf(); });
  auto s_groups = PackContiguous<SNodeId>(
      s_frontier, num_shards,
      [&](SNodeId id) { return double(social.node(id).subtree_users); });
  for (int s = 0; s < num_shards; ++s) {
    partition.scopes[s].social_roots = std::move(s_groups[s]);
  }

  // --- Road side: R*-tree regions.
  const RStarTree& tree = poi.tree();
  const std::vector<RNodeId> r_frontier = GrowFrontier<RNodeId>(
      tree.root(), num_shards,
      [&](RNodeId id) {
        std::vector<RNodeId> children;
        for (const RTreeEntry& e : tree.node(id).entries) {
          children.push_back(e.id);
        }
        return children;
      },
      [&](RNodeId id) { return tree.node(id).is_leaf(); });
  auto r_groups = PackContiguous<RNodeId>(
      r_frontier, num_shards,
      [&](RNodeId id) { return double(poi.node_aug(id).subtree_pois); });
  for (int s = 0; s < num_shards; ++s) {
    partition.scopes[s].road_roots = std::move(r_groups[s]);
  }

  // --- Ownership maps (and, implicitly, the coverage invariant).
  partition.user_shard.assign(social.ssn().num_users(), -1);
  partition.poi_shard.assign(social.ssn().num_pois(), -1);
  for (int s = 0; s < num_shards; ++s) {
    std::vector<SNodeId> stack(partition.scopes[s].social_roots);
    while (!stack.empty()) {
      const SNodeId id = stack.back();
      stack.pop_back();
      const SocialIndexNode& node = social.node(id);
      if (node.is_leaf()) {
        for (UserId u : node.users) {
          if (partition.user_shard[u] != -1) {
            return Status::Internal("user owned by two shards");
          }
          partition.user_shard[u] = s;
        }
      } else {
        for (SNodeId child : node.children) stack.push_back(child);
      }
    }
    std::vector<RNodeId> r_stack(partition.scopes[s].road_roots);
    while (!r_stack.empty()) {
      const RNodeId id = r_stack.back();
      r_stack.pop_back();
      const RTreeNode& node = tree.node(id);
      for (const RTreeEntry& e : node.entries) {
        if (node.is_leaf()) {
          if (partition.poi_shard[e.id] != -1) {
            return Status::Internal("poi owned by two shards");
          }
          partition.poi_shard[e.id] = s;
        } else {
          r_stack.push_back(e.id);
        }
      }
    }
  }
  for (int32_t s : partition.user_shard) {
    if (s == -1) return Status::Internal("user not covered by any shard");
  }
  for (int32_t s : partition.poi_shard) {
    if (s == -1) return Status::Internal("poi not covered by any shard");
  }
  return partition;
}

Status ValidateServingPartition(const ServingPartition& partition,
                                const SocialIndex& social,
                                const PoiIndex& poi) {
  // MakeServingPartition already proves coverage while deriving the
  // ownership maps; re-derive and cross-check here so a hand-built or
  // mutated partition is caught too.
  auto rebuilt = MakeServingPartition(
      social, poi, static_cast<int>(partition.scopes.size()));
  if (!rebuilt.ok()) return rebuilt.status();
  if (partition.user_shard.size() !=
          static_cast<size_t>(social.ssn().num_users()) ||
      partition.poi_shard.size() !=
          static_cast<size_t>(social.ssn().num_pois())) {
    return Status::InvalidArgument("ownership map size mismatch");
  }
  std::vector<int32_t> user_seen(partition.user_shard.size(), -1);
  std::vector<int32_t> poi_seen(partition.poi_shard.size(), -1);
  for (size_t s = 0; s < partition.scopes.size(); ++s) {
    std::vector<SNodeId> stack(partition.scopes[s].social_roots);
    while (!stack.empty()) {
      const SNodeId id = stack.back();
      stack.pop_back();
      const SocialIndexNode& node = social.node(id);
      if (node.is_leaf()) {
        for (UserId u : node.users) {
          if (user_seen[u] != -1) {
            return Status::Internal("user in two scopes");
          }
          user_seen[u] = static_cast<int32_t>(s);
        }
      } else {
        for (SNodeId child : node.children) stack.push_back(child);
      }
    }
    std::vector<RNodeId> r_stack(partition.scopes[s].road_roots);
    while (!r_stack.empty()) {
      const RNodeId id = r_stack.back();
      r_stack.pop_back();
      const RTreeNode& node = poi.tree().node(id);
      for (const RTreeEntry& e : node.entries) {
        if (node.is_leaf()) {
          if (poi_seen[e.id] != -1) {
            return Status::Internal("poi in two scopes");
          }
          poi_seen[e.id] = static_cast<int32_t>(s);
        } else {
          r_stack.push_back(e.id);
        }
      }
    }
  }
  if (user_seen != partition.user_shard) {
    return Status::Internal("user ownership map disagrees with scopes");
  }
  if (poi_seen != partition.poi_shard) {
    return Status::Internal("poi ownership map disagrees with scopes");
  }
  return Status::OK();
}

}  // namespace gpssn::serving
