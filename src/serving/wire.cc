#include "serving/wire.h"

#include <cstring>
#include <string>

namespace gpssn::serving {
namespace {

// The per-shard QueryStats travels as one trivially-copyable blob; the
// decoder rejects a size mismatch (a skewed build on the far end of a
// socket would otherwise read garbage counters).
static_assert(std::is_trivially_copyable_v<QueryStats>,
              "QueryStats crosses the serving transport verbatim");

template <typename T>
void AppendPod(std::vector<uint8_t>* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

void AppendIds(std::vector<uint8_t>* out, const std::vector<int32_t>& ids) {
  const size_t offset = out->size();
  out->resize(offset + ids.size() * sizeof(int32_t));
  if (!ids.empty()) {
    std::memcpy(out->data() + offset, ids.data(),
                ids.size() * sizeof(int32_t));
  }
}

/// Bounds-checked sequential reader over a payload.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  template <typename T>
  bool ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadIds(size_t count, std::vector<int32_t>* out) {
    if (count > (data_.size() - pos_) / sizeof(int32_t)) return false;
    out->resize(count);
    if (count > 0) {
      std::memcpy(out->data(), data_.data() + pos_, count * sizeof(int32_t));
    }
    pos_ += count * sizeof(int32_t);
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

WireQuery ToWire(const GpssnQuery& query, double deadline_seconds) {
  WireQuery w;
  w.issuer = query.issuer;
  w.tau = query.tau;
  w.metric = static_cast<uint32_t>(query.metric);
  w.gamma = query.gamma;
  w.theta = query.theta;
  w.radius = query.radius;
  w.deadline_seconds = deadline_seconds;
  return w;
}

GpssnQuery FromWire(const WireQuery& w) {
  GpssnQuery query;
  query.issuer = w.issuer;
  query.tau = w.tau;
  query.metric = static_cast<InterestMetric>(w.metric);
  query.gamma = w.gamma;
  query.theta = w.theta;
  query.radius = w.radius;
  return query;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed payload: ") + what);
}

}  // namespace

std::vector<uint8_t> EncodeGatherRequest(const GatherRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(sizeof(WireQuery));
  AppendPod(&out, ToWire(request.query, request.deadline_seconds));
  return out;
}

Result<GatherRequest> DecodeGatherRequest(std::span<const uint8_t> payload) {
  Reader reader(payload);
  WireQuery w;
  if (!reader.ReadPod(&w) || !reader.AtEnd()) {
    return Malformed("gather request");
  }
  GatherRequest request;
  request.query = FromWire(w);
  request.deadline_seconds = w.deadline_seconds;
  return request;
}

std::vector<uint8_t> EncodeCandidatesReply(const CandidatesReply& reply) {
  WireCandidatesHeader h;
  h.num_users = static_cast<uint32_t>(reply.candidates.users.size());
  h.num_pois = static_cast<uint32_t>(reply.candidates.pois.size());
  h.lower_bound = reply.candidates.lower_bound;
  h.stats_bytes = static_cast<uint32_t>(sizeof(QueryStats));
  std::vector<uint8_t> out;
  out.reserve(sizeof(h) +
              (reply.candidates.users.size() + reply.candidates.pois.size()) *
                  sizeof(int32_t) +
              sizeof(QueryStats));
  AppendPod(&out, h);
  AppendIds(&out, reply.candidates.users);
  AppendIds(&out, reply.candidates.pois);
  AppendPod(&out, reply.stats);
  return out;
}

Result<CandidatesReply> DecodeCandidatesReply(
    std::span<const uint8_t> payload) {
  Reader reader(payload);
  WireCandidatesHeader h;
  if (!reader.ReadPod(&h)) return Malformed("candidates header");
  if (h.stats_bytes != sizeof(QueryStats)) {
    return Malformed("candidates stats size");
  }
  CandidatesReply reply;
  reply.candidates.lower_bound = h.lower_bound;
  if (!reader.ReadIds(h.num_users, &reply.candidates.users) ||
      !reader.ReadIds(h.num_pois, &reply.candidates.pois) ||
      !reader.ReadPod(&reply.stats) || !reader.AtEnd()) {
    return Malformed("candidates body");
  }
  return reply;
}

std::vector<uint8_t> EncodeRefineRequest(const RefineRequest& request) {
  WireRefineHeader h;
  h.num_centers = static_cast<uint32_t>(request.centers.size());
  h.num_groups = static_cast<uint32_t>(request.groups.size());
  h.group_size = static_cast<uint32_t>(request.query.tau);
  h.incumbent = request.incumbent;
  std::vector<uint8_t> out;
  out.reserve(sizeof(h) + sizeof(WireQuery) +
              (request.centers.size() +
               request.groups.size() * static_cast<size_t>(request.query.tau)) *
                  sizeof(int32_t));
  AppendPod(&out, h);
  AppendPod(&out, ToWire(request.query, request.deadline_seconds));
  AppendIds(&out, request.centers);
  for (const auto& group : request.groups) {
    AppendIds(&out, group);
  }
  return out;
}

Result<RefineRequest> DecodeRefineRequest(std::span<const uint8_t> payload) {
  Reader reader(payload);
  WireRefineHeader h;
  WireQuery w;
  if (!reader.ReadPod(&h) || !reader.ReadPod(&w)) {
    return Malformed("refine header");
  }
  RefineRequest request;
  request.query = FromWire(w);
  request.deadline_seconds = w.deadline_seconds;
  request.incumbent = h.incumbent;
  if (h.group_size != static_cast<uint32_t>(request.query.tau)) {
    return Malformed("refine group size");
  }
  if (!reader.ReadIds(h.num_centers, &request.centers)) {
    return Malformed("refine centers");
  }
  request.groups.resize(h.num_groups);
  for (auto& group : request.groups) {
    if (!reader.ReadIds(h.group_size, &group)) {
      return Malformed("refine groups");
    }
  }
  if (!reader.AtEnd()) return Malformed("refine trailer");
  return request;
}

std::vector<uint8_t> EncodeAnswerReply(const AnswerReply& reply) {
  const GpssnAnswer& answer = reply.result.answer;
  WireAnswerHeader h;
  h.found = answer.found ? 1 : 0;
  h.center = answer.center;
  h.num_users = static_cast<uint32_t>(answer.users.size());
  h.num_pois = static_cast<uint32_t>(answer.pois.size());
  h.max_dist = answer.max_dist;
  h.center_worst = reply.result.center_worst;
  h.group_index = reply.result.group_index;
  h.stats_bytes = static_cast<uint32_t>(sizeof(QueryStats));
  std::vector<uint8_t> out;
  out.reserve(sizeof(h) +
              (answer.users.size() + answer.pois.size()) * sizeof(int32_t) +
              sizeof(QueryStats));
  AppendPod(&out, h);
  AppendIds(&out, answer.users);
  AppendIds(&out, answer.pois);
  AppendPod(&out, reply.stats);
  return out;
}

Result<AnswerReply> DecodeAnswerReply(std::span<const uint8_t> payload) {
  Reader reader(payload);
  WireAnswerHeader h;
  if (!reader.ReadPod(&h)) return Malformed("answer header");
  if (h.stats_bytes != sizeof(QueryStats)) {
    return Malformed("answer stats size");
  }
  AnswerReply reply;
  GpssnAnswer& answer = reply.result.answer;
  answer.found = h.found != 0;
  answer.center = h.center;
  answer.max_dist = h.max_dist;
  reply.result.center_worst = h.center_worst;
  reply.result.group_index = h.group_index;
  if (!reader.ReadIds(h.num_users, &answer.users) ||
      !reader.ReadIds(h.num_pois, &answer.pois) ||
      !reader.ReadPod(&reply.stats) || !reader.AtEnd()) {
    return Malformed("answer body");
  }
  return reply;
}

Status StatusFromWire(int32_t code) {
  const auto status_code = static_cast<StatusCode>(code);
  switch (status_code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kIoError:
    case StatusCode::kNotImplemented:
    case StatusCode::kInternal:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return Status(status_code,
                    std::string("shard reported ") +
                        StatusCodeName(status_code));
  }
  return Status::Internal("shard reported unknown status code");
}

}  // namespace gpssn::serving
