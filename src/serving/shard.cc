#include "serving/shard.h"

#include <utility>

namespace gpssn::serving {

ShardProcess::ShardProcess(const ShardConfig& config,
                           InProcessTransport* transport)
    : config_(config),
      transport_(transport),
      scheduler_(config.num_workers < 1 ? 1 : config.num_workers) {
  if (config_.distance_cache_entries > 0) {
    DistanceCacheOptions cache_options;
    cache_options.max_entries = config_.distance_cache_entries;
    distance_cache_ = std::make_unique<DistanceCache>(cache_options);
  }
  processors_.reserve(scheduler_.num_threads());
  for (int w = 0; w < scheduler_.num_threads(); ++w) {
    processors_.push_back(std::make_unique<GpssnProcessor>(
        config_.poi_index, config_.social_index));
  }
  pump_ = std::thread([this] { PumpLoop(); });
}

ShardProcess::~ShardProcess() {
  // The owner closed the transport, so the pump's Recv fails and it exits;
  // the scheduler destructor then drains any still-queued requests (their
  // replies fail to send into the closed fabric, which is fine).
  if (pump_.joinable()) pump_.join();
}

void ShardProcess::PumpLoop() {
  TransportMessage message;
  while (transport_->RecvAtShard(config_.shard_id, &message)) {
    // Hand the request to the shard's scheduler so several queries can be
    // in flight on this shard at once; the pump goes straight back to the
    // inbox.
    auto shared = std::make_shared<TransportMessage>(std::move(message));
    scheduler_.Submit(
        [this, shared](int worker) { Handle(worker, *shared); });
  }
}

void ShardProcess::Reply(MessageKind kind, uint64_t query_id,
                         const Status& status, std::vector<uint8_t> payload) {
  TransportMessage reply;
  reply.header.kind = static_cast<uint32_t>(kind);
  reply.header.shard = config_.shard_id;
  reply.header.query_id = query_id;
  reply.header.status_code = static_cast<int32_t>(status.code());
  reply.payload = std::move(payload);
  reply.header.payload_bytes = reply.payload.size();
  // A false return means the fabric is closed — the coordinator is gone
  // and nobody is waiting for this reply.
  (void)transport_->SendToCoordinator(std::move(reply));
}

void ShardProcess::Handle(int worker, const TransportMessage& message) {
  const uint64_t query_id = message.header.query_id;
  GpssnProcessor& processor = *processors_[worker];

  QueryOptions options = config_.query;
  options.distance_cache = distance_cache_.get();
  options.cancel = config_.cancel;
  // Serving shards parallelize ACROSS queries (scheduler tasks), not
  // within one — the discovery-rank protocol depends on the serial
  // refinement loop — and always use the scalar social kernels.
  options.scheduler = nullptr;
  options.intra_query_workers = 0;
  options.vectorized_social_kernels = false;

  auto arm = [&options](double deadline_seconds) {
    // Re-arming from seconds-remaining loses the request's transport
    // latency, so the shard's deadline is never EARLIER than the
    // coordinator's (the coordinator, not the shard, is the authority on
    // expiring a query).
    options.deadline = deadline_seconds >= 0.0
                           ? QueryDeadline::After(deadline_seconds)
                           : QueryDeadline();
  };

  switch (static_cast<MessageKind>(message.header.kind)) {
    case MessageKind::kGatherRequest: {
      auto request = DecodeGatherRequest(message.payload);
      if (!request.ok()) {
        Reply(MessageKind::kCandidates, query_id, request.status(), {});
        return;
      }
      arm(request->deadline_seconds);
      CandidatesReply reply;
      auto candidates = processor.GatherCandidates(
          request->query, options, config_.scope, &reply.stats);
      if (!candidates.ok()) {
        Reply(MessageKind::kCandidates, query_id, candidates.status(), {});
        return;
      }
      reply.candidates = std::move(*candidates);
      Reply(MessageKind::kCandidates, query_id, Status::OK(),
            EncodeCandidatesReply(reply));
      return;
    }
    case MessageKind::kRefineRequest: {
      auto request = DecodeRefineRequest(message.payload);
      if (!request.ok()) {
        Reply(MessageKind::kAnswer, query_id, request.status(), {});
        return;
      }
      arm(request->deadline_seconds);
      AnswerReply reply;
      auto result = processor.RefineCandidates(
          request->query, options, request->centers, request->groups,
          request->incumbent, &reply.stats);
      if (!result.ok()) {
        Reply(MessageKind::kAnswer, query_id, result.status(), {});
        return;
      }
      reply.result = std::move(*result);
      Reply(MessageKind::kAnswer, query_id, Status::OK(),
            EncodeAnswerReply(reply));
      return;
    }
    default:
      // A reply kind (or garbage) landed in a shard inbox; answer so the
      // coordinator never hangs on a miscounted gather.
      Reply(MessageKind::kAnswer, query_id,
            Status::InvalidArgument("unexpected message kind at shard"), {});
      return;
  }
}

}  // namespace gpssn::serving
