// Copyright 2026 The gpssn Authors.
//
// Transport abstraction of the sharded serving layer (DESIGN.md §12). The
// coordinator and the shards exchange TransportMessages (wire.h) through
// endpoint mailboxes; this file provides the in-process implementation —
// bounded MPSC queues on the capability-annotated sync layer. Because the
// payloads are already flat bytes, a socket transport is a drop-in: same
// envelope, same payload, different carrier.
//
// Topology: one inbox per shard (coordinator -> shard requests) plus one
// coordinator inbox (shard -> coordinator replies, multi-producer). Close()
// tears the whole fabric down: blocked senders and receivers wake up and
// observe `false`, which is the shard pump threads' exit signal.

#ifndef GPSSN_SERVING_TRANSPORT_H_
#define GPSSN_SERVING_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/sync.h"
#include "serving/wire.h"

namespace gpssn::serving {

/// Bounded MPSC (in practice MPMC-safe) queue of TransportMessages.
/// Send blocks while full, Recv blocks while empty; both return false once
/// the mailbox is closed (Recv drains buffered messages first).
class Mailbox {
 public:
  explicit Mailbox(size_t capacity);
  GPSSN_DISALLOW_COPY_AND_MOVE(Mailbox);

  /// Enqueues `message`, blocking while the mailbox is at capacity.
  /// Returns false (message dropped) if the mailbox is or becomes closed.
  bool Send(TransportMessage message) GPSSN_EXCLUDES(mu_);

  /// Dequeues into `*out`, blocking while the mailbox is empty. Returns
  /// false only when the mailbox is closed AND drained.
  bool Recv(TransportMessage* out) GPSSN_EXCLUDES(mu_);

  /// Closes the mailbox: wakes every blocked sender and receiver. Messages
  /// already buffered remain receivable. Idempotent.
  void Close() GPSSN_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<TransportMessage> queue_ GPSSN_GUARDED_BY(mu_);
  bool closed_ GPSSN_GUARDED_BY(mu_) = false;
};

/// The in-process transport fabric: `num_shards` shard inboxes plus the
/// coordinator inbox. Thread-safe; the per-message cost is one lock
/// acquisition and one vector move per hop.
class InProcessTransport {
 public:
  InProcessTransport(int num_shards, size_t mailbox_capacity);
  GPSSN_DISALLOW_COPY_AND_MOVE(InProcessTransport);

  int num_shards() const { return num_shards_; }

  /// Coordinator -> shard request. False if the fabric is closed.
  bool SendToShard(int shard, TransportMessage message);
  /// Shard -> coordinator reply. False if the fabric is closed.
  bool SendToCoordinator(TransportMessage message);

  /// Blocking receive on shard `shard`'s inbox (its pump thread's loop).
  bool RecvAtShard(int shard, TransportMessage* out);
  /// Blocking receive on the coordinator inbox (the event loop).
  bool RecvAtCoordinator(TransportMessage* out);

  /// Closes every mailbox; all blocked parties wake and observe false.
  void Close();

  /// Total messages accepted across all mailboxes (the `shard_msgs` stat).
  uint64_t messages_sent() const {
    return messages_sent_.load(
        std::memory_order_relaxed);  // gpssn-lint: relaxed(monotone stat counter)
  }

 private:
  const int num_shards_;
  std::vector<std::unique_ptr<Mailbox>> shard_inboxes_;
  Mailbox coordinator_inbox_;
  std::atomic<uint64_t> messages_sent_{0};
};

}  // namespace gpssn::serving

#endif  // GPSSN_SERVING_TRANSPORT_H_
