// Copyright 2026 The gpssn Authors.
//
// ServingCluster: the scatter-gather coordinator of the sharded serving
// layer (DESIGN.md §12). Splits a GpssnDatabase's candidate space across N
// ShardProcesses (partition.h), carries Query/Candidates/Refine/Answer
// messages over an in-process Transport (transport.h, wire.h), and merges
// per-shard answers with CROSS-SHARD INCUMBENT PRUNING:
//
//   1. GATHER   broadcast the query; every shard descends its own index
//               slice and returns candidate users/POIs plus an objective
//               lower bound (no δ cut — δ is a global property).
//   2. PLAN     (driver thread) concatenate the shard candidate lists in
//               shard order — reproducing the single-node candidate order —
//               then Corollary 2 + group enumeration, exactly as Execute().
//   3. REFINE   wave 1: the shard with the SMALLEST lower bound refines
//               first (unbounded) and establishes the global incumbent.
//               Wave 2: every other shard whose bound exceeds the incumbent
//               is SKIPPED outright (QueryStats::skipped_shards); the rest
//               refine in parallel under the incumbent.
//   4. MERGE    shard answers carry their discovery rank (center_worst,
//               group_index — see ShardRefineResult); the lexicographically
//               least (max_dist, center_worst, center, group_index) wins,
//               which is provably the exact answer the single-node serial
//               loop returns. Answers are byte-identical at any shard count.
//
// The coordinator is a single-threaded event loop over its transport inbox
// that PIPELINES up to max_inflight queries (per-query state machines keyed
// by a never-reused query_id), so a batch keeps every shard busy even
// though each individual query serializes wave 1. Stale replies — a shard
// answering after an error already completed its query — are dropped by
// query_id.

#ifndef GPSSN_SERVING_COORDINATOR_H_
#define GPSSN_SERVING_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "core/database.h"
#include "serving/partition.h"
#include "serving/shard.h"
#include "serving/transport.h"
#include "serving/wire.h"

namespace gpssn::serving {

struct ServingOptions {
  /// Number of shards (>= 1). Trailing shards may own empty scopes when
  /// the indexes have fewer subtrees than shards.
  int num_shards = 4;
  /// Per-endpoint transport queue depth.
  size_t mailbox_capacity = 64;
  /// Queries pipelined by the coordinator at once (>= 1). This is what
  /// scales batch QPS: while one query waits on its wave-1 refine, other
  /// queries' gathers and refines keep the remaining shards busy.
  int max_inflight = 8;
  /// Base processor options for every shard. `distance_backend` left null
  /// is filled from the database (CH when the database built one);
  /// `subset_sampling` must be off — sampling is nondeterministic across
  /// partitions, and serving rejects it per query with InvalidArgument.
  QueryOptions query;
  /// Deadline applied to every query (seconds; <= 0 = none), armed at
  /// submit and re-encoded as seconds-remaining on each shard request.
  double default_deadline_seconds = 0.0;
  /// Scheduler workers (= pooled processors) per shard.
  int shard_num_workers = 1;
  /// Entry budget of each shard-private distance cache; 0 disables.
  size_t shard_distance_cache_entries = 1u << 18;
};

/// An in-process N-shard serving cluster over one GpssnDatabase's indexes.
/// Not thread-safe: one thread drives Query/QueryBatch (the shard workers
/// and pump threads are internal). CancelAll() may be called from any
/// thread.
class ServingCluster {
 public:
  /// Builds the partition, transport fabric, and shard processes over the
  /// database's immutable indexes (which must outlive the cluster; dynamic
  /// maintenance must be quiesced while a cluster is attached, as for
  /// queries). Fails on an invalid partition or options.
  static Result<std::unique_ptr<ServingCluster>> Create(
      const GpssnDatabase& db, const ServingOptions& options = {});

  ~ServingCluster();
  GPSSN_DISALLOW_COPY_AND_MOVE(ServingCluster);

  int num_shards() const { return options_.num_shards; }
  const ServingPartition& partition() const { return partition_; }

  /// Answers one query through the full scatter-gather path (a batch of
  /// one). Answers are byte-identical to GpssnDatabase::Query under the
  /// same options.
  Result<GpssnAnswer> Query(const GpssnQuery& query,
                            QueryStats* stats = nullptr);

  /// Runs `queries` through the pipelined event loop; results in input
  /// order. `stats` (optional) receives the batch aggregate, including the
  /// summed skipped/refined shard counters.
  std::vector<BatchQueryResult> QueryBatch(std::span<const GpssnQuery> queries,
                                           BatchStats* stats = nullptr);

  /// Raises the cluster-wide cancel flag: in-flight shard work finishes
  /// with Cancelled at its next cooperative poll. Cleared when the next
  /// batch starts.
  void CancelAll() { cancel_.store(true, std::memory_order_relaxed); }  // gpssn-lint: relaxed(cooperative cancel flag; latency not ordering)

 private:
  /// Discovery rank of a shard answer (see ShardRefineResult): the
  /// single-node winner is the lexicographic minimum.
  struct RankKey {
    double max_dist = kInfDistance;
    double center_worst = kInfDistance;
    PoiId center = kInvalidPoi;
    int64_t group_index = -1;
  };

  enum class Phase { kGather, kRefineWave1, kRefineWave2 };

  /// One in-flight query's state machine.
  struct QueryState {
    size_t slot = 0;  // Index into the batch result vector.
    GpssnQuery query;
    QueryDeadline deadline;
    Phase phase = Phase::kGather;
    int outstanding = 0;  // Replies still expected in this phase.
    std::vector<ShardCandidates> per_shard;  // Indexed by shard.
    std::vector<std::vector<UserId>> groups;
    double incumbent = kInfDistance;
    GpssnAnswer best;
    RankKey best_rank;
    int wave1_shard = -1;
    QueryStats stats;
    WallTimer submit_timer;
    WallTimer phase_timer;
  };

  ServingCluster(const GpssnDatabase& db, const ServingOptions& options,
                 ServingPartition partition);

  void StartQuery(uint64_t query_id, size_t slot, const GpssnQuery& query,
                  std::vector<BatchQueryResult>* results);
  /// Processes one shard reply; returns true when the query completed.
  bool HandleReply(QueryState* state, const TransportMessage& message,
                   std::vector<BatchQueryResult>* results);
  void Plan(QueryState* state);
  bool SendRefine(QueryState* state, uint64_t query_id, int shard,
                  double incumbent);
  bool SendGather(QueryState* state, uint64_t query_id, int shard);
  void Complete(QueryState* state, Status status,
                std::vector<BatchQueryResult>* results);

  double DeadlineSecondsRemaining(const QueryState& state) const;

  const ServingOptions options_;
  const GpssnDatabase& db_;
  ServingPartition partition_;
  QueryOptions shard_query_options_;  // Backend default filled in.
  std::atomic<bool> cancel_{false};
  uint64_t next_query_id_ = 1;  // Never reused (stale-reply detection).
  std::unordered_map<uint64_t, QueryState> inflight_;
  std::unique_ptr<InProcessTransport> transport_;
  std::vector<std::unique_ptr<ShardProcess>> shards_;  // After transport_.
};

}  // namespace gpssn::serving

#endif  // GPSSN_SERVING_COORDINATOR_H_
