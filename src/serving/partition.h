// Copyright 2026 The gpssn Authors.
//
// Index partitioner for the sharded serving layer (DESIGN.md §12): splits
// the candidate space of a GpssnDatabase into N disjoint ShardScopes —
// users by social partition-tree subtree, POIs by R*-tree region — so each
// ShardProcess descends only its own slice of I_S / I_R.
//
// Partitioning invariants (validated by ValidateServingPartition and
// tests/serving/partitioner_test.cc):
//   * COVERAGE: every user / POI is under exactly one shard's scope.
//   * ORDER: concatenating the shards' scopes in shard order visits the
//     index leaves in the same left-to-right order a single-node descent
//     does — this is what makes the coordinator's merged candidate list
//     (and therefore group enumeration and tie-breaking) byte-identical to
//     the single-node run.
//   * BALANCE: contiguous frontier nodes are packed greedily against the
//     ideal per-shard weight (subtree user / POI counts), so shards get
//     within one subtree of an even split. Trailing shards may own an
//     EMPTY scope when the tree has fewer frontier nodes than shards
//     (an empty scope is a valid idle shard).

#ifndef GPSSN_SERVING_PARTITION_H_
#define GPSSN_SERVING_PARTITION_H_

#include <vector>

#include "common/result.h"
#include "core/query.h"
#include "index/poi_index.h"
#include "index/social_index.h"

namespace gpssn::serving {

struct ServingPartition {
  /// Per-shard index scopes, in shard order (size = num_shards).
  std::vector<ShardScope> scopes;
  /// Owning shard per user / POI (derived from the scopes; used by tests
  /// and by the coordinator to route candidate-specific work).
  std::vector<int32_t> user_shard;
  std::vector<int32_t> poi_shard;
};

/// Splits both indexes into `num_shards` scopes. The frontier is grown
/// level-synchronously from each root (internal nodes replaced by their
/// children, leaves kept in place — preserving left-to-right order) until
/// it holds at least `num_shards` nodes or only leaves remain, then packed
/// contiguously into shards balanced by subtree weight. Returns
/// InvalidArgument for num_shards < 1.
Result<ServingPartition> MakeServingPartition(const SocialIndex& social,
                                              const PoiIndex& poi,
                                              int num_shards);

/// Checks the coverage/disjointness invariants (every user and POI in
/// exactly one scope, scope lists within each tree disjoint). Used by
/// tests and debug builds; O(index size).
Status ValidateServingPartition(const ServingPartition& partition,
                                const SocialIndex& social,
                                const PoiIndex& poi);

}  // namespace gpssn::serving

#endif  // GPSSN_SERVING_PARTITION_H_
