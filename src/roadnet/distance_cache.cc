#include "roadnet/distance_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gpssn {

namespace {

int RoundUpPow2(int v) {
  int p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

DistanceCache::DistanceCache(const DistanceCacheOptions& options)
    : max_entries_(std::max<size_t>(options.max_entries, 1)) {
  const int shards = RoundUpPow2(std::max(options.num_shards, 1));
  shard_mask_ = static_cast<uint64_t>(shards - 1);
  shards_ = std::vector<Shard>(shards);
  per_shard_capacity_ =
      std::max<size_t>(1, (max_entries_ + shards - 1) / shards);
  poi_gen_ = std::make_unique<std::atomic<uint32_t>[]>(kPoiGenBuckets);
  for (size_t i = 0; i < kPoiGenBuckets; ++i) {
    poi_gen_[i].store(0, std::memory_order_relaxed);  // gpssn-lint: relaxed(construction; not yet shared)
  }
}

bool DistanceCache::Lookup(UserId user, PoiId poi, double bound,
                           double* dist) {
  const uint64_t key = Key(user, poi);
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return false;
  }
  Entry& e = it->second;
  if (e.poi_gen != PoiGen(poi).load(std::memory_order_acquire)) {
    // The POI's bucket was invalidated after this entry was cached (e.g.
    // AddPoi rewired edges near it): drop lazily and miss.
    shard.lru.erase(e.lru);
    shard.map.erase(it);
    ++shard.stale_drops;
    ++shard.misses;
    return false;
  }
  if (!std::isfinite(e.dist) && e.bound < bound) {
    // "dist > e.bound" says nothing about bounds beyond e.bound.
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, e.lru);
  ++shard.hits;
  // A finite entry is the exact distance; report it against the caller's
  // bound so the hit is indistinguishable from a fresh computation.
  *dist = e.dist <= bound ? e.dist : kInfDistance;
  return true;
}

void DistanceCache::Insert(UserId user, PoiId poi, double bound,
                           double dist) {
  const uint64_t key = Key(user, poi);
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const uint32_t gen = PoiGen(poi).load(std::memory_order_acquire);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    Entry& e = it->second;
    if (e.poi_gen != gen) {
      // Stale survivor: the fresh value simply replaces it.
      e.dist = dist;
      e.bound = bound;
      e.poi_gen = gen;
      shard.lru.splice(shard.lru.begin(), shard.lru, e.lru);
      return;
    }
    // Finite (exact) beats inf; among inf tags the larger bound is
    // strictly more informative.
    if (std::isfinite(dist)) {
      e.dist = dist;
      e.bound = bound;
    } else if (!std::isfinite(e.dist) && bound > e.bound) {
      e.bound = bound;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, e.lru);
    return;
  }
  if (shard.map.size() >= per_shard_capacity_) {
    const uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    shard.map.erase(victim);
    ++shard.evictions;
  }
  shard.lru.push_front(key);
  Entry e;
  e.dist = dist;
  e.bound = bound;
  e.poi_gen = gen;
  e.lru = shard.lru.begin();
  shard.map.emplace(key, e);
  ++shard.insertions;
}

void DistanceCache::InvalidatePoi(PoiId poi) {
  // Release pairs with Lookup/Insert acquire loads: a reader that sees the
  // new generation also sees every network mutation sequenced before this
  // call (the caller mutates the network first, then invalidates).
  PoiGen(poi).fetch_add(1, std::memory_order_release);
}

DistanceCache::Stats DistanceCache::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.stale_drops += shard.stale_drops;
    stats.entries += shard.map.size();
  }
  return stats;
}

void DistanceCache::Clear() {
  // Drops every entry but keeps the lifetime counters: a Clear() after an
  // index mutation should not erase the observability history.
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
  }
}

std::string DistanceCache::Stats::ToString() const {
  char buf[192];
  const uint64_t total = hits + misses;
  std::snprintf(buf, sizeof(buf),
                "entries=%zu hits=%llu misses=%llu (%.1f%% hit) "
                "insertions=%llu evictions=%llu stale-drops=%llu",
                entries, static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                total > 0 ? 100.0 * static_cast<double>(hits) /
                                static_cast<double>(total)
                          : 0.0,
                static_cast<unsigned long long>(insertions),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(stale_drops));
  return buf;
}

}  // namespace gpssn
