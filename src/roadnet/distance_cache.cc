#include "roadnet/distance_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gpssn {

namespace {

int RoundUpPow2(int v) {
  int p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

DistanceCache::DistanceCache(const DistanceCacheOptions& options)
    : max_entries_(std::max<size_t>(options.max_entries, 1)) {
  const int shards = RoundUpPow2(std::max(options.num_shards, 1));
  shard_mask_ = static_cast<uint64_t>(shards - 1);
  shards_ = std::vector<Shard>(shards);
  per_shard_capacity_ =
      std::max<size_t>(1, (max_entries_ + shards - 1) / shards);
}

bool DistanceCache::Lookup(UserId user, PoiId poi, double bound,
                           double* dist) {
  const uint64_t key = Key(user, poi);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return false;
  }
  Entry& e = it->second;
  if (!std::isfinite(e.dist) && e.bound < bound) {
    // "dist > e.bound" says nothing about bounds beyond e.bound.
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, e.lru);
  ++shard.hits;
  // A finite entry is the exact distance; report it against the caller's
  // bound so the hit is indistinguishable from a fresh computation.
  *dist = e.dist <= bound ? e.dist : kInfDistance;
  return true;
}

void DistanceCache::Insert(UserId user, PoiId poi, double bound,
                           double dist) {
  const uint64_t key = Key(user, poi);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    Entry& e = it->second;
    // Finite (exact) beats inf; among inf tags the larger bound is
    // strictly more informative.
    if (std::isfinite(dist)) {
      e.dist = dist;
      e.bound = bound;
    } else if (!std::isfinite(e.dist) && bound > e.bound) {
      e.bound = bound;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, e.lru);
    return;
  }
  if (shard.map.size() >= per_shard_capacity_) {
    const uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    shard.map.erase(victim);
    ++shard.evictions;
  }
  shard.lru.push_front(key);
  Entry e;
  e.dist = dist;
  e.bound = bound;
  e.lru = shard.lru.begin();
  shard.map.emplace(key, e);
  ++shard.insertions;
}

DistanceCache::Stats DistanceCache::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.entries += shard.map.size();
  }
  return stats;
}

void DistanceCache::Clear() {
  // Drops every entry but keeps the lifetime counters: a Clear() after an
  // index mutation should not erase the observability history.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
  }
}

std::string DistanceCache::Stats::ToString() const {
  char buf[160];
  const uint64_t total = hits + misses;
  std::snprintf(buf, sizeof(buf),
                "entries=%zu hits=%llu misses=%llu (%.1f%% hit) "
                "insertions=%llu evictions=%llu",
                entries, static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                total > 0 ? 100.0 * static_cast<double>(hits) /
                                static_cast<double>(total)
                          : 0.0,
                static_cast<unsigned long long>(insertions),
                static_cast<unsigned long long>(evictions));
  return buf;
}

}  // namespace gpssn
