// Copyright 2026 The gpssn Authors.
//
// The spatial road network G_r (Definition 1): an undirected graph embedded
// in the 2D plane, with weighted edges (road segments) and vertices at road
// intersections. Built once via RoadNetworkBuilder, then immutable; the
// adjacency is stored in CSR form for cache-friendly traversal.

#ifndef GPSSN_ROADNET_ROAD_GRAPH_H_
#define GPSSN_ROADNET_ROAD_GRAPH_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geom/point.h"
#include "roadnet/types.h"

namespace gpssn {

/// One directed half of an undirected road edge, as seen from a vertex.
struct RoadArc {
  VertexId to = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
  double weight = 0.0;
};

/// Immutable road network. Construct with RoadNetworkBuilder.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  int num_vertices() const { return static_cast<int>(points_.size()); }
  int num_edges() const { return static_cast<int>(edge_u_.size()); }

  const Point& vertex_point(VertexId v) const { return points_[v]; }

  VertexId edge_u(EdgeId e) const { return edge_u_[e]; }
  VertexId edge_v(EdgeId e) const { return edge_v_[e]; }
  double edge_weight(EdgeId e) const { return edge_w_[e]; }

  /// Flat storage views (serialization).
  std::span<const Point> points() const { return points_; }
  std::span<const VertexId> edge_sources() const { return edge_u_; }
  std::span<const VertexId> edge_targets() const { return edge_v_; }
  std::span<const double> edge_weights() const { return edge_w_; }

  /// Reassembles a network from its flat arrays (deserialization). The
  /// arrays must describe a valid network (in-range endpoints, no
  /// self-loops or parallel edges) — index files are validated by
  /// checksum, not re-checked edge by edge.
  static RoadNetwork FromParts(std::vector<Point> points,
                               std::vector<VertexId> edge_u,
                               std::vector<VertexId> edge_v,
                               std::vector<double> edge_w);

  /// Outgoing arcs of `v` (each undirected edge appears once per endpoint).
  std::span<const RoadArc> Neighbors(VertexId v) const {
    return std::span<const RoadArc>(arcs_.data() + offsets_[v],
                                    offsets_[v + 1] - offsets_[v]);
  }

  int Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Average vertex degree (the deg(G_r) statistic of Table 2).
  double AverageDegree() const;

  /// 2D location of a position on an edge (linear interpolation between the
  /// edge's endpoint coordinates).
  Point PositionPoint(const EdgePosition& p) const;

  /// Distance along the edge from `p` to the edge endpoint `end`
  /// (which must be one of the edge's two endpoints).
  double OffsetTo(const EdgePosition& p, VertexId end) const;

  /// Bounding box of all vertex coordinates.
  void BoundingBox(Point* lo, Point* hi) const;

 private:
  friend class RoadNetworkBuilder;

  /// Rebuilds offsets_/arcs_ from the edge arrays.
  void BuildCsr();

  std::vector<Point> points_;
  std::vector<VertexId> edge_u_, edge_v_;
  std::vector<double> edge_w_;
  // CSR adjacency.
  std::vector<int> offsets_;
  std::vector<RoadArc> arcs_;
};

/// Accumulates vertices/edges, then finalizes the CSR representation.
class RoadNetworkBuilder {
 public:
  VertexId AddVertex(Point p);

  /// Adds an undirected edge. `weight` < 0 means "use the Euclidean length
  /// of the segment". Returns InvalidArgument for self-loops or bad ids;
  /// parallel edges are rejected as AlreadyExists.
  Result<EdgeId> AddEdge(VertexId a, VertexId b, double weight = -1.0);

  bool HasEdge(VertexId a, VertexId b) const;

  int num_vertices() const { return static_cast<int>(points_.size()); }
  int num_edges() const { return static_cast<int>(edge_u_.size()); }

  /// Builds the immutable network. The builder is left empty.
  RoadNetwork Build();

 private:
  std::vector<Point> points_;
  std::vector<VertexId> edge_u_, edge_v_;
  std::vector<double> edge_w_;
  // Adjacency sets for duplicate detection (sorted vectors per vertex).
  std::vector<std::vector<VertexId>> adjacency_;
};

}  // namespace gpssn

#endif  // GPSSN_ROADNET_ROAD_GRAPH_H_
