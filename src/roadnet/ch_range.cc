#include "roadnet/ch_range.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>

#include "common/macros.h"
#include "common/parallel_for.h"
#include "common/task_scheduler.h"

namespace gpssn {

ChUpwardSearch::ChUpwardSearch(const ContractionHierarchy* ch) : ch_(ch) {
  GPSSN_CHECK(ch != nullptr && ch->built());
  const int n = ch->graph().num_vertices();
  dist_.assign(n, kInfDistance);
  stamp_.assign(n, 0);
  parent_.assign(n, -1);
  arc_.assign(n, -1);
}

const std::vector<ChUpwardSearch::Settle>& ChUpwardSearch::Run(
    std::span<const std::pair<VertexId, double>> seeds, double bound) {
  settles_.clear();
  ++generation_;
  if (generation_ == 0) {  // Stamp wrap-around: hard reset.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    generation_ = 1;
  }
  heap_.clear();
  auto greater = [](const std::pair<double, VertexId>& a,
                    const std::pair<double, VertexId>& b) {
    return a.first > b.first;
  };
  auto relax = [&](VertexId v, double d, int32_t parent_settle, int32_t arc) {
    if (d > bound) return;
    if (stamp_[v] == generation_ && dist_[v] <= d) return;
    dist_[v] = d;
    stamp_[v] = generation_;
    parent_[v] = parent_settle;
    arc_[v] = arc;
    heap_.emplace_back(d, v);
    std::push_heap(heap_.begin(), heap_.end(), greater);
  };
  for (const auto& [v, d] : seeds) relax(v, d, -1, -1);
  const std::span<const int64_t> offs = ch_->up_offsets();
  const std::span<const ContractionHierarchy::UpArc> arcs = ch_->up_arcs();
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), greater);
    const auto [d, v] = heap_.back();
    heap_.pop_back();
    if (stamp_[v] != generation_ || d > dist_[v]) continue;  // Stale.
    const int32_t settle_idx = static_cast<int32_t>(settles_.size());
    settles_.push_back(Settle{v, parent_[v], arc_[v], d});
    for (int64_t ai = offs[v]; ai < offs[v + 1]; ++ai) {
      relax(arcs[ai].to, d + arcs[ai].weight, settle_idx,
            static_cast<int32_t>(ai));
    }
  }
  return settles_;
}

ChBallIndex::ChBallIndex(const ContractionHierarchy* ch,
                         const std::vector<Poi>* pois, double max_radius,
                         TaskScheduler* scheduler, int max_lanes)
    : ch_(ch), pois_(pois), max_radius_(max_radius) {
  GPSSN_CHECK(ch != nullptr && ch->built() && pois != nullptr);
  GPSSN_CHECK(ch->up_arcs().size() <=
              static_cast<size_t>(std::numeric_limits<int32_t>::max()));
  const int n = ch->graph().num_vertices();
  vertex_to_source_.assign(n, -1);
  bucket_offsets_.assign(n + 1, 0);
  RegisterPois(0);
  IndexSources(0, /*into_delta=*/false, scheduler, max_lanes);
}

size_t ChBallIndex::RegisterPois(size_t from) {
  const size_t first_new_source = sources_.size();
  const RoadNetwork& g = ch_->graph();
  std::vector<EdgeId> new_edges;
  for (size_t i = from; i < pois_->size(); ++i) {
    const EdgeId e = (*pois_)[i].position.edge;
    if (!std::binary_search(poi_edges_.begin(), poi_edges_.end(), e)) {
      new_edges.push_back(e);
    }
  }
  std::sort(new_edges.begin(), new_edges.end());
  new_edges.erase(std::unique(new_edges.begin(), new_edges.end()),
                  new_edges.end());
  if (!new_edges.empty()) {
    const size_t mid = poi_edges_.size();
    poi_edges_.insert(poi_edges_.end(), new_edges.begin(), new_edges.end());
    std::inplace_merge(poi_edges_.begin(), poi_edges_.begin() + mid,
                       poi_edges_.end());
    for (const EdgeId e : new_edges) {
      for (const VertexId x : {g.edge_u(e), g.edge_v(e)}) {
        if (vertex_to_source_[x] < 0) {
          vertex_to_source_[x] = static_cast<int32_t>(sources_.size());
          sources_.push_back(x);
        }
      }
    }
  }
  indexed_pois_ = pois_->size();
  return first_new_source;
}

void ChBallIndex::IndexSources(size_t first_source, bool into_delta,
                               TaskScheduler* scheduler, int max_lanes) {
  const size_t count = sources_.size() - first_source;
  if (count == 0) return;
  const double bound = max_radius_ == kInfDistance
                           ? kInfDistance
                           : ChRangeSlackRadius(max_radius_);
  // Phase 1 (parallel): the backward upward searches are independent;
  // each writes only its own slot of `local`.
  std::vector<std::vector<ChUpwardSearch::Settle>> local(count);
  const int lanes = PreprocessLaneCap(scheduler, max_lanes);
  std::vector<std::unique_ptr<ChUpwardSearch>> searches(lanes);
  for (int lane = 0; lane < lanes; ++lane) {
    searches[lane] = std::make_unique<ChUpwardSearch>(ch_);
  }
  ParallelFor loop(scheduler, lanes, count, 8,
                   [&](int lane, size_t b, size_t e) {
                     for (size_t i = b; i < e; ++i) {
                       const std::pair<VertexId, double> seed{
                           sources_[first_source + i], 0.0};
                       local[i] = searches[lane]->Run(
                           std::span<const std::pair<VertexId, double>>(
                               &seed, 1),
                           bound);
                     }
                   });
  loop.Run();

  // Phase 2 (serial, deterministic): concatenate settle logs and group
  // bucket entries by vertex, distance-ascending within each vertex.
  const int n = ch_->graph().num_vertices();
  size_t total = 0;
  for (const auto& settles : local) total += settles.size();
  GPSSN_CHECK(log_.size() + total <=
              static_cast<size_t>(std::numeric_limits<int32_t>::max()));
  if (!into_delta) {
    std::vector<int64_t> counts(n, 0);
    for (const auto& settles : local) {
      for (const auto& s : settles) ++counts[s.vertex];
    }
    bucket_offsets_[0] = 0;
    for (int v = 0; v < n; ++v) {
      bucket_offsets_[v + 1] = bucket_offsets_[v] + counts[v];
    }
    bucket_entries_.resize(total);
    std::vector<int64_t> cursor(bucket_offsets_.begin(),
                                bucket_offsets_.end() - 1);
    for (size_t i = 0; i < count; ++i) {
      const int32_t src = static_cast<int32_t>(first_source + i);
      const int32_t base = static_cast<int32_t>(log_.size());
      for (size_t k = 0; k < local[i].size(); ++k) {
        const ChUpwardSearch::Settle& s = local[i][k];
        log_.push_back(
            LogEntry{s.vertex, s.parent < 0 ? -1 : base + s.parent, s.arc});
        bucket_entries_[cursor[s.vertex]++] =
            Entry{src, base + static_cast<int32_t>(k), s.dist};
      }
    }
    // Distance-ascending buckets let queries stop scanning a bucket the
    // moment an entry can no longer fit the radius — hub vertices carry
    // entries from almost every source, and without the early exit the
    // bucket scan, not the upward search, dominates query time. Each
    // source settles a vertex at most once, so (dist, source) is a strict
    // total order and the sort is deterministic.
    for (int v = 0; v < n; ++v) {
      std::sort(bucket_entries_.begin() + bucket_offsets_[v],
                bucket_entries_.begin() + bucket_offsets_[v + 1],
                [](const Entry& a, const Entry& b) {
                  if (a.dist != b.dist) return a.dist < b.dist;
                  return a.source < b.source;
                });
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      const int32_t src = static_cast<int32_t>(first_source + i);
      const int32_t base = static_cast<int32_t>(log_.size());
      for (size_t k = 0; k < local[i].size(); ++k) {
        const ChUpwardSearch::Settle& s = local[i][k];
        log_.push_back(
            LogEntry{s.vertex, s.parent < 0 ? -1 : base + s.parent, s.arc});
        delta_buckets_[s.vertex].push_back(
            Entry{src, base + static_cast<int32_t>(k), s.dist});
      }
    }
    // Keep delta buckets distance-ascending too (same early-exit contract
    // as the CSR buckets; see above).
    for (auto& [v, entries] : delta_buckets_) {
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.dist != b.dist) return a.dist < b.dist;
                  return a.source < b.source;
                });
    }
  }
}

void ChBallIndex::AppendNewPois() {
  if (indexed_pois_ == pois_->size()) return;
  const size_t first = RegisterPois(indexed_pois_);
  IndexSources(first, /*into_delta=*/true, /*scheduler=*/nullptr,
               /*max_lanes=*/1);
}

ChRangeEngine::ChRangeEngine(const ChBallIndex* index)
    : index_(index),
      ch_(&index->ch()),
      graph_(&ch_->graph()),
      search_(ch_),
      unpacker_(ch_) {}

void ChRangeEngine::EnsureArenas() {
  const size_t ns = index_->num_sources();
  if (best_cand_.size() < ns) {
    best_cand_.resize(ns, kInfDistance);
    best_meet_settle_.resize(ns, -1);
    best_meet_entry_.resize(ns, -1);
    cand_stamp_.resize(ns, 0);
    source_label_.resize(ns, kInfDistance);
    label_stamp_.resize(ns, 0);
  }
}

std::vector<std::pair<PoiId, double>> ChRangeEngine::BallWithDistances(
    const EdgePosition& center, double radius, const PoiLocator& locator,
    const std::vector<Poi>& pois) {
  std::vector<std::pair<PoiId, double>> out;
  EnsureArenas();
  ++generation_;
  if (generation_ == 0) {  // Stamp wrap-around: hard reset.
    std::fill(cand_stamp_.begin(), cand_stamp_.end(), 0);
    std::fill(label_stamp_.begin(), label_stamp_.end(), 0);
    generation_ = 1;
  }

  // Seeds mirror the reference bounded Dijkstra exactly: each endpoint of
  // the center edge enters with its exact offset, gated at the radius.
  const VertexId eu = graph_->edge_u(center.edge);
  const VertexId ev = graph_->edge_v(center.edge);
  std::pair<VertexId, double> seeds[2];
  size_t num_seeds = 0;
  const double du0 = graph_->OffsetTo(center, eu);
  const double dv0 = graph_->OffsetTo(center, ev);
  if (du0 <= radius) seeds[num_seeds++] = {eu, du0};
  if (dv0 <= radius) seeds[num_seeds++] = {ev, dv0};

  const double slack = ChRangeSlackRadius(radius);
  const std::vector<ChUpwardSearch::Settle>& settles = search_.Run(
      std::span<const std::pair<VertexId, double>>(seeds, num_seeds), slack);
  last_settled_ = settles.size();
  last_candidates_ = 0;

  // Candidate scan runs on the upward-approximate labels: every label is a
  // genuine path length (>= the true distance), and on the true shortest
  // path's meeting vertex both legs are exact, so the per-source minimum
  // still lands on the right meeting chain and nothing within the radius
  // is filtered away (the slack absorbs ulp-level differences, exactly as
  // it does for the backward `en.dist` side). Exact forward labels are
  // reconstructed lazily below, only along the chains that actually win —
  // eagerly unpacking every settle is what used to dominate query time.
  const std::span<const ContractionHierarchy::UpArc> up_arcs = ch_->up_arcs();
  exact_fw_.assign(settles.size(), kInfDistance);
  touched_sources_.clear();
  const bool has_delta = index_->has_delta();
  for (size_t i = 0; i < settles.size(); ++i) {
    const ChUpwardSearch::Settle& s = settles[i];
    const double fw = s.dist;
    const auto scan = [&](const ChBallIndex::Entry& en) {
      ++last_candidates_;
      const double cand = fw + en.dist;
      if (cand > slack) return;
      if (cand_stamp_[en.source] != generation_) {
        cand_stamp_[en.source] = generation_;
        best_cand_[en.source] = cand;
        best_meet_settle_[en.source] = static_cast<int32_t>(i);
        best_meet_entry_[en.source] = en.log_entry;
        touched_sources_.push_back(en.source);
      } else if (cand < best_cand_[en.source]) {
        best_cand_[en.source] = cand;
        best_meet_settle_[en.source] = static_cast<int32_t>(i);
        best_meet_entry_[en.source] = en.log_entry;
      }
    };
    // Buckets are distance-ascending: once fw + dist exceeds the slack
    // radius no later entry can qualify, so stop scanning. This is what
    // keeps hub-vertex buckets (one entry per source, nearly) from
    // dominating the query.
    for (const ChBallIndex::Entry& en : index_->BucketAt(s.vertex)) {
      if (fw + en.dist > slack) break;
      scan(en);
    }
    if (has_delta) {
      if (const std::vector<ChBallIndex::Entry>* d =
              index_->DeltaBucketAt(s.vertex)) {
        for (const ChBallIndex::Entry& en : *d) {
          if (fw + en.dist > slack) break;
          scan(en);
        }
      }
    }
  }

  // Exact forward label of settle `idx`, memoized per settle: walk up the
  // tree to the nearest already-exact ancestor (seeds are exact by
  // construction), then unpack each tree arc into original edges
  // accumulated left-to-right — Dijkstra's association along the same
  // (unique) shortest path.
  const auto exact_fw = [&](int32_t idx) {
    fw_chain_.clear();
    int32_t cur = idx;
    while (exact_fw_[cur] == kInfDistance && settles[cur].parent >= 0) {
      fw_chain_.push_back(cur);
      cur = settles[cur].parent;
    }
    if (exact_fw_[cur] == kInfDistance) exact_fw_[cur] = settles[cur].dist;
    for (size_t k = fw_chain_.size(); k-- > 0;) {
      const int32_t c = fw_chain_[k];
      const ChUpwardSearch::Settle& s = settles[c];
      exact_fw_[c] = unpacker_.Accumulate(settles[s.parent].vertex, s.vertex,
                                          up_arcs[s.arc], exact_fw_[s.parent]);
    }
    return exact_fw_[idx];
  };

  // Finalize each touched source: continue the exact accumulation from the
  // best meeting point down the source's settle-log chain (descending the
  // hierarchy toward the source — forward travel order, one original edge
  // at a time). The exact label then faces the same `<= radius` test the
  // reference applies to its Dijkstra label.
  for (const int32_t src : touched_sources_) {
    double acc = exact_fw(best_meet_settle_[src]);
    int32_t cur = best_meet_entry_[src];
    while (index_->log(cur).parent >= 0) {
      const ChBallIndex::LogEntry& le = index_->log(cur);
      const ChBallIndex::LogEntry& pa = index_->log(le.parent);
      acc = unpacker_.Accumulate(le.vertex, pa.vertex, up_arcs[le.arc], acc);
      cur = le.parent;
    }
    if (acc <= radius) {
      source_label_[src] = acc;
      label_stamp_[src] = generation_;
    }
  }

  // Emit POIs with the reference's own arithmetic and order: ascending
  // edge id over POI-carrying edges, insertion order within an edge. An
  // edge whose endpoints both missed the radius contributes nothing in
  // the reference too (its labels read as kInfDistance there).
  const auto label = [&](VertexId x) -> double {
    const int32_t s = index_->source_index(x);
    if (s < 0 || label_stamp_[s] != generation_) return kInfDistance;
    return source_label_[s];
  };
  for (const EdgeId e : index_->poi_edges()) {
    const VertexId u = graph_->edge_u(e);
    const VertexId v = graph_->edge_v(e);
    const double du = label(u);
    const double dv = label(v);
    if (du == kInfDistance && dv == kInfDistance && e != center.edge) {
      continue;
    }
    const double w = graph_->edge_weight(e);
    for (const PoiId id : locator.PoisOnEdge(e)) {
      const Poi& poi = pois[id];
      double d = std::min(du + poi.position.t * w,
                          dv + (1.0 - poi.position.t) * w);
      if (e == center.edge) {
        d = std::min(d, std::abs(center.t - poi.position.t) * w);
      }
      if (d <= radius) out.emplace_back(id, d);
    }
  }
  return out;
}

}  // namespace gpssn
