#include "roadnet/road_locator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace gpssn {

double PointSegmentDistanceSq(const Point& p, const Point& a, const Point& b,
                              double* t_out) {
  const double abx = b.x - a.x, aby = b.y - a.y;
  const double len_sq = abx * abx + aby * aby;
  double t = 0.0;
  if (len_sq > 0.0) {
    t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq;
    t = std::clamp(t, 0.0, 1.0);
  }
  if (t_out != nullptr) *t_out = t;
  const Point proj = Lerp(a, b, t);
  return SquaredDistance(p, proj);
}

RoadLocator::RoadLocator(const RoadNetwork* graph) : graph_(graph) {
  GPSSN_CHECK(graph != nullptr && graph->num_vertices() > 0);
  Point lo, hi;
  graph->BoundingBox(&lo, &hi);
  min_x_ = lo.x;
  min_y_ = lo.y;
  const double span = std::max(hi.x - lo.x, hi.y - lo.y);
  cells_ = std::max(1, static_cast<int>(std::sqrt(graph->num_vertices() / 2.0)));
  cell_ = span > 0 ? span / cells_ : 1.0;
  buckets_.resize(static_cast<size_t>(cells_) * cells_);
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    const Point& p = graph->vertex_point(v);
    const int cx = std::clamp(static_cast<int>((p.x - min_x_) / cell_), 0, cells_ - 1);
    const int cy = std::clamp(static_cast<int>((p.y - min_y_) / cell_), 0, cells_ - 1);
    buckets_[static_cast<size_t>(cy) * cells_ + cx].push_back(v);
  }
}

void RoadLocator::Candidates(const Point& p, std::vector<VertexId>* out) const {
  out->clear();
  const int cx = std::clamp(static_cast<int>((p.x - min_x_) / cell_), 0, cells_ - 1);
  const int cy = std::clamp(static_cast<int>((p.y - min_y_) / cell_), 0, cells_ - 1);
  for (int ring = 0; ring < cells_; ++ring) {
    const int lo_x = std::max(0, cx - ring), hi_x = std::min(cells_ - 1, cx + ring);
    const int lo_y = std::max(0, cy - ring), hi_y = std::min(cells_ - 1, cy + ring);
    for (int y = lo_y; y <= hi_y; ++y) {
      for (int x = lo_x; x <= hi_x; ++x) {
        if (ring > 0 && x > lo_x && x < hi_x && y > lo_y && y < hi_y) continue;
        const auto& bucket = buckets_[static_cast<size_t>(y) * cells_ + x];
        out->insert(out->end(), bucket.begin(), bucket.end());
      }
    }
    // One extra ring after the first hit, to cover boundary effects.
    if (!out->empty() && ring >= 1) return;
    if (lo_x == 0 && lo_y == 0 && hi_x == cells_ - 1 && hi_y == cells_ - 1) {
      return;
    }
  }
}

VertexId RoadLocator::NearestVertex(const Point& p) const {
  std::vector<VertexId> candidates;
  Candidates(p, &candidates);
  GPSSN_CHECK(!candidates.empty());
  VertexId best = candidates.front();
  double best_d = std::numeric_limits<double>::infinity();
  for (VertexId v : candidates) {
    const double d = SquaredDistance(p, graph_->vertex_point(v));
    if (d < best_d) {
      best_d = d;
      best = v;
    }
  }
  return best;
}

EdgePosition RoadLocator::NearestEdgePosition(const Point& p) const {
  std::vector<VertexId> candidates;
  Candidates(p, &candidates);
  GPSSN_CHECK(!candidates.empty());
  EdgePosition best;
  double best_d = std::numeric_limits<double>::infinity();
  for (VertexId v : candidates) {
    for (const RoadArc& arc : graph_->Neighbors(v)) {
      double t = 0.0;
      const Point& a = graph_->vertex_point(graph_->edge_u(arc.edge));
      const Point& b = graph_->vertex_point(graph_->edge_v(arc.edge));
      const double d = PointSegmentDistanceSq(p, a, b, &t);
      if (d < best_d) {
        best_d = d;
        best = EdgePosition{arc.edge, t};
      }
    }
  }
  GPSSN_CHECK(best.edge != kInvalidEdge);
  return best;
}

}  // namespace gpssn
