// Copyright 2026 The gpssn Authors.
//
// Synthetic spatial road-network generator (Section 6.1): random
// intersection points in a 2D data space, with road segments connecting
// spatially close vertices. The construction connects nearest neighbors
// (crossing-free in the overwhelming majority of cases, approximating the
// paper's planar requirement), guarantees a connected network, and hits a
// target average degree.

#ifndef GPSSN_ROADNET_ROAD_GENERATOR_H_
#define GPSSN_ROADNET_ROAD_GENERATOR_H_

#include "common/rng.h"
#include "roadnet/road_graph.h"

namespace gpssn {

struct RoadGenOptions {
  int num_vertices = 10000;
  /// Target average vertex degree; real road networks sit near 2-3
  /// (Table 2: California 2.1, Colorado 2.4).
  double avg_degree = 2.2;
  /// Side length of the square data space.
  double space_size = 100.0;
  /// How many nearest neighbors to consider as candidate edges per vertex.
  int knn = 6;
  uint64_t seed = 1;
};

/// Generates a connected, spatially embedded road network.
RoadNetwork GenerateRoadNetwork(const RoadGenOptions& options);

struct GridRoadOptions {
  int rows = 50;
  int cols = 50;
  /// Distance between adjacent intersections.
  double spacing = 1.0;
  /// Fraction of grid edges randomly removed (closed streets); the network
  /// is kept connected regardless.
  double knockout_fraction = 0.1;
  uint64_t seed = 1;
};

/// Generates a Manhattan-style grid city: rows x cols intersections with
/// axis-aligned streets, minus a random knockout of street segments. A
/// harsher test for spatial indexes than the organic generator (strong
/// directional structure, many equal-length shortest paths).
RoadNetwork GenerateGridRoadNetwork(const GridRoadOptions& options);

}  // namespace gpssn

#endif  // GPSSN_ROADNET_ROAD_GENERATOR_H_
