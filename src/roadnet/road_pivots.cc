#include "roadnet/road_pivots.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/rng.h"

namespace gpssn {

RoadPivotTable::RoadPivotTable(const RoadNetwork& graph,
                               std::vector<VertexId> pivots)
    : graph_(&graph), pivots_(std::move(pivots)) {
  DijkstraEngine engine(&graph);
  tables_.resize(pivots_.size());
  for (size_t k = 0; k < pivots_.size(); ++k) {
    GPSSN_CHECK(pivots_[k] >= 0 && pivots_[k] < graph.num_vertices());
    engine.RunFromVertex(pivots_[k]);
    auto& table = tables_[k];
    table.resize(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      table[v] = engine.Distance(v);
    }
  }
}

double RoadPivotTable::PositionToPivot(const EdgePosition& pos, int k) const {
  const VertexId u = graph_->edge_u(pos.edge);
  const VertexId v = graph_->edge_v(pos.edge);
  return std::min(tables_[k][u] + graph_->OffsetTo(pos, u),
                  tables_[k][v] + graph_->OffsetTo(pos, v));
}

double RoadPivotTable::LowerBound(const std::vector<double>& a_to_pivots,
                                  const std::vector<double>& b_to_pivots) const {
  GPSSN_CHECK(a_to_pivots.size() == pivots_.size());
  GPSSN_CHECK(b_to_pivots.size() == pivots_.size());
  double best = 0.0;
  for (size_t k = 0; k < pivots_.size(); ++k) {
    best = std::max(best, std::abs(a_to_pivots[k] - b_to_pivots[k]));
  }
  return best;
}

double RoadPivotTable::UpperBound(const std::vector<double>& a_to_pivots,
                                  const std::vector<double>& b_to_pivots) const {
  GPSSN_CHECK(a_to_pivots.size() == pivots_.size());
  GPSSN_CHECK(b_to_pivots.size() == pivots_.size());
  double best = kInfDistance;
  for (size_t k = 0; k < pivots_.size(); ++k) {
    best = std::min(best, a_to_pivots[k] + b_to_pivots[k]);
  }
  return best;
}

std::vector<double> RoadPivotTable::PositionDistances(
    const EdgePosition& pos) const {
  std::vector<double> out(pivots_.size());
  for (int k = 0; k < num_pivots(); ++k) out[k] = PositionToPivot(pos, k);
  return out;
}

std::vector<VertexId> RandomRoadPivots(const RoadNetwork& graph, int h,
                                       uint64_t seed) {
  GPSSN_CHECK(h >= 1 && h <= graph.num_vertices());
  Rng rng(seed);
  std::vector<VertexId> out;
  for (size_t idx : rng.SampleWithoutReplacement(graph.num_vertices(), h)) {
    out.push_back(static_cast<VertexId>(idx));
  }
  return out;
}

}  // namespace gpssn
