// Copyright 2026 The gpssn Authors.
//
// Exact road-network shortest-path distances dist_RN (Definition 5) via
// Dijkstra's algorithm. The engine owns reusable arenas (distance labels with
// generation stamps and a binary heap) so repeated queries do no per-query
// allocation, and supports:
//   * full single-source distance arrays (pivot table construction),
//   * bounded searches (ball queries B(o, r) of Section 3.1 / Fig. 2),
//   * multi-seed starts (positions on edge interiors seed both endpoints),
//   * early-terminating point-to-point queries.

#ifndef GPSSN_ROADNET_SHORTEST_PATH_H_
#define GPSSN_ROADNET_SHORTEST_PATH_H_

#include <limits>
#include <utility>
#include <vector>

#include "roadnet/poi.h"
#include "roadnet/road_graph.h"
#include "roadnet/types.h"

namespace gpssn {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Reusable Dijkstra arena bound to one road network. Not thread-safe;
/// create one engine per thread.
class DijkstraEngine {
 public:
  explicit DijkstraEngine(const RoadNetwork* graph);

  /// Runs Dijkstra from `seeds` (vertex, initial distance) pairs until the
  /// queue empties or all settled labels exceed `bound`. After the call,
  /// Distance(v) returns the label of v (kInfDistance when unreached or
  /// beyond the bound). Results stay valid until the next Run/.*From call.
  void Run(const std::vector<std::pair<VertexId, double>>& seeds,
           double bound = kInfDistance);

  /// As Run, but additionally stops as soon as every vertex in `targets`
  /// has been settled (exact labels for the targets).
  void RunWithTargets(const std::vector<std::pair<VertexId, double>>& seeds,
                      double bound, const std::vector<VertexId>& targets);

  /// Convenience: single-source from a vertex.
  void RunFromVertex(VertexId source, double bound = kInfDistance);

  /// Convenience: from a position on an edge interior (seeds both
  /// endpoints with the respective offsets).
  void RunFromPosition(const EdgePosition& pos, double bound = kInfDistance);

  /// Settled distance label of `v` from the last run.
  double Distance(VertexId v) const;

  /// Vertices settled by the last run (distance <= bound), unordered.
  const std::vector<VertexId>& Settled() const { return settled_; }

  /// Distance from the last run's source to a position on an edge: the
  /// cheaper of entering through either endpoint. Does NOT account for a
  /// source on the same edge; PositionToPosition handles that shortcut.
  double DistanceToPosition(const EdgePosition& pos) const;

  /// Exact point-to-point distance between two edge positions, with early
  /// termination once `bound` is exceeded (returns kInfDistance then).
  double PositionToPosition(const EdgePosition& a, const EdgePosition& b,
                            double bound = kInfDistance);

  /// Exact vertex-to-vertex distance with early termination.
  double VertexToVertex(VertexId s, VertexId t, double bound = kInfDistance);

  const RoadNetwork& graph() const { return *graph_; }

 private:
  struct HeapGreater {
    bool operator()(const std::pair<double, VertexId>& a,
                    const std::pair<double, VertexId>& b) const {
      return a.first > b.first;
    }
  };

  void Reset();
  void Relax(VertexId v, double dist);

  const RoadNetwork* graph_;
  std::vector<double> dist_;
  std::vector<uint32_t> stamp_;          // Label validity (tentative).
  std::vector<uint32_t> settled_stamp_;  // Label finality (exact).
  std::vector<uint32_t> target_stamp_;   // RunWithTargets membership.
  uint32_t generation_ = 0;
  std::vector<VertexId> settled_;
  // Binary heap of (distance, vertex); lazily deleted entries.
  std::vector<std::pair<double, VertexId>> heap_;
};

/// Direct distance along a shared edge between two positions, or
/// kInfDistance when they are on different edges.
double SameEdgeDistance(const RoadNetwork& graph, const EdgePosition& a,
                        const EdgePosition& b);

/// An index from road edges to the POIs located on them, enabling exact
/// network ball queries over POIs.
class PoiLocator {
 public:
  PoiLocator(const RoadNetwork* graph, const std::vector<Poi>* pois);

  /// Returns ids of all POIs with dist_RN(center, poi) <= radius, using a
  /// bounded Dijkstra from `center`. Exact: a network path to a POI on edge
  /// (u, v) must pass u or v, or start on the same edge.
  std::vector<PoiId> Ball(const EdgePosition& center, double radius,
                          DijkstraEngine* engine) const;

  /// As Ball, but also reports each POI's exact distance from the center.
  std::vector<std::pair<PoiId, double>> BallWithDistances(
      const EdgePosition& center, double radius, DijkstraEngine* engine) const;

  const std::vector<PoiId>& PoisOnEdge(EdgeId e) const {
    return pois_on_edge_[e];
  }

 private:
  const RoadNetwork* graph_;
  const std::vector<Poi>* pois_;
  std::vector<std::vector<PoiId>> pois_on_edge_;
};

}  // namespace gpssn

#endif  // GPSSN_ROADNET_SHORTEST_PATH_H_
