// Copyright 2026 The gpssn Authors.
//
// Shared id types for the spatial-social network substrates.

#ifndef GPSSN_ROADNET_TYPES_H_
#define GPSSN_ROADNET_TYPES_H_

#include <cstdint>

namespace gpssn {

using VertexId = int32_t;  // Road-network intersection.
using EdgeId = int32_t;    // Road segment.
using PoiId = int32_t;     // Point of interest.
using UserId = int32_t;    // Social-network user.
using KeywordId = int32_t; // Topic / keyword in the global vocabulary.

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;
inline constexpr PoiId kInvalidPoi = -1;
inline constexpr UserId kInvalidUser = -1;

/// A location on a road edge: parameter `t` in [0, 1] measured from the
/// edge's first endpoint toward its second. Users' homes and POIs are both
/// modeled this way (Definitions 2-4 place them on edges of G_r).
struct EdgePosition {
  EdgeId edge = kInvalidEdge;
  double t = 0.0;
};

}  // namespace gpssn

#endif  // GPSSN_ROADNET_TYPES_H_
