#include "roadnet/shortest_path.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace gpssn {

DijkstraEngine::DijkstraEngine(const RoadNetwork* graph) : graph_(graph) {
  GPSSN_CHECK(graph != nullptr);
  dist_.resize(graph->num_vertices(), kInfDistance);
  stamp_.resize(graph->num_vertices(), 0);
  settled_stamp_.resize(graph->num_vertices(), 0);
  target_stamp_.resize(graph->num_vertices(), 0);
}

void DijkstraEngine::Reset() {
  ++generation_;
  if (generation_ == 0) {  // Stamp wrap-around: hard reset.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    std::fill(settled_stamp_.begin(), settled_stamp_.end(), 0);
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0);
    generation_ = 1;
  }
  settled_.clear();
  heap_.clear();
}

void DijkstraEngine::Relax(VertexId v, double dist) {
  if (stamp_[v] == generation_ && dist_[v] <= dist) return;
  dist_[v] = dist;
  stamp_[v] = generation_;
  heap_.emplace_back(dist, v);
  std::push_heap(heap_.begin(), heap_.end(), HeapGreater());
}

void DijkstraEngine::Run(const std::vector<std::pair<VertexId, double>>& seeds,
                         double bound) {
  RunWithTargets(seeds, bound, {});
}

void DijkstraEngine::RunWithTargets(
    const std::vector<std::pair<VertexId, double>>& seeds, double bound,
    const std::vector<VertexId>& targets) {
  Reset();
  for (const auto& [v, d] : seeds) {
    GPSSN_CHECK(v >= 0 && v < graph_->num_vertices());
    if (d <= bound) Relax(v, d);
  }
  // Generation-stamped target marks: O(1) membership per settled vertex,
  // and counting DISTINCT targets (duplicates in `targets` must not
  // inflate the count past what settling can clear, or early termination
  // would never fire).
  size_t targets_left = 0;
  for (VertexId t : targets) {
    GPSSN_CHECK(t >= 0 && t < graph_->num_vertices());
    if (target_stamp_[t] != generation_) {
      target_stamp_[t] = generation_;
      ++targets_left;
    }
  }
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater());
    const auto [d, v] = heap_.back();
    heap_.pop_back();
    if (settled_stamp_[v] == generation_) continue;  // Stale entry.
    if (d > bound) break;
    settled_stamp_[v] = generation_;
    settled_.push_back(v);
    // Each vertex settles at most once per generation, so a marked target
    // decrements exactly once.
    if (targets_left > 0 && target_stamp_[v] == generation_) {
      if (--targets_left == 0) return;
    }
    for (const RoadArc& arc : graph_->Neighbors(v)) {
      const double nd = d + arc.weight;
      if (nd <= bound) Relax(arc.to, nd);
    }
  }
}

void DijkstraEngine::RunFromVertex(VertexId source, double bound) {
  Run({{source, 0.0}}, bound);
}

void DijkstraEngine::RunFromPosition(const EdgePosition& pos, double bound) {
  const VertexId u = graph_->edge_u(pos.edge);
  const VertexId v = graph_->edge_v(pos.edge);
  Run({{u, graph_->OffsetTo(pos, u)}, {v, graph_->OffsetTo(pos, v)}}, bound);
}

double DijkstraEngine::Distance(VertexId v) const {
  return settled_stamp_[v] == generation_ ? dist_[v] : kInfDistance;
}

double DijkstraEngine::DistanceToPosition(const EdgePosition& pos) const {
  const VertexId u = graph_->edge_u(pos.edge);
  const VertexId v = graph_->edge_v(pos.edge);
  return std::min(Distance(u) + graph_->OffsetTo(pos, u),
                  Distance(v) + graph_->OffsetTo(pos, v));
}

double SameEdgeDistance(const RoadNetwork& graph, const EdgePosition& a,
                        const EdgePosition& b) {
  if (a.edge != b.edge) return kInfDistance;
  return std::abs(a.t - b.t) * graph.edge_weight(a.edge);
}

double DijkstraEngine::PositionToPosition(const EdgePosition& a,
                                          const EdgePosition& b,
                                          double bound) {
  const double direct = SameEdgeDistance(*graph_, a, b);
  const double effective_bound = std::min(bound, direct);
  const VertexId bu = graph_->edge_u(b.edge);
  const VertexId bv = graph_->edge_v(b.edge);
  const VertexId au = graph_->edge_u(a.edge);
  const VertexId av = graph_->edge_v(a.edge);
  RunWithTargets({{au, graph_->OffsetTo(a, au)}, {av, graph_->OffsetTo(a, av)}},
                 effective_bound, {bu, bv});
  const double via_network = DistanceToPosition(b);
  const double result = std::min(direct, via_network);
  return result <= bound ? result : kInfDistance;
}

double DijkstraEngine::VertexToVertex(VertexId s, VertexId t, double bound) {
  RunWithTargets({{s, 0.0}}, bound, {t});
  const double d = Distance(t);
  return d <= bound ? d : kInfDistance;
}

PoiLocator::PoiLocator(const RoadNetwork* graph, const std::vector<Poi>* pois)
    : graph_(graph), pois_(pois) {
  GPSSN_CHECK(graph != nullptr && pois != nullptr);
  pois_on_edge_.resize(graph->num_edges());
  for (const Poi& poi : *pois) {
    GPSSN_CHECK(poi.position.edge >= 0 &&
                poi.position.edge < graph->num_edges());
    pois_on_edge_[poi.position.edge].push_back(poi.id);
  }
}

std::vector<std::pair<PoiId, double>> PoiLocator::BallWithDistances(
    const EdgePosition& center, double radius, DijkstraEngine* engine) const {
  std::vector<std::pair<PoiId, double>> out;
  engine->RunFromPosition(center, radius);

  // Deduplicate edges incident to settled vertices.
  std::vector<EdgeId> edges;
  for (VertexId v : engine->Settled()) {
    for (const RoadArc& arc : graph_->Neighbors(v)) {
      if (!pois_on_edge_[arc.edge].empty()) edges.push_back(arc.edge);
    }
  }
  // The center's own edge may carry in-range POIs even when no vertex is
  // settled (tiny radius).
  if (!pois_on_edge_[center.edge].empty()) edges.push_back(center.edge);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  for (EdgeId e : edges) {
    const VertexId u = graph_->edge_u(e);
    const VertexId v = graph_->edge_v(e);
    const double du = engine->Distance(u);
    const double dv = engine->Distance(v);
    const double w = graph_->edge_weight(e);
    for (PoiId id : pois_on_edge_[e]) {
      const Poi& poi = (*pois_)[id];
      double d = std::min(du + poi.position.t * w,
                          dv + (1.0 - poi.position.t) * w);
      if (e == center.edge) {
        d = std::min(d, std::abs(center.t - poi.position.t) * w);
      }
      if (d <= radius) out.emplace_back(id, d);
    }
  }
  return out;
}

std::vector<PoiId> PoiLocator::Ball(const EdgePosition& center, double radius,
                                    DijkstraEngine* engine) const {
  std::vector<PoiId> out;
  for (const auto& [id, d] : BallWithDistances(center, radius, engine)) {
    out.push_back(id);
  }
  return out;
}

}  // namespace gpssn
