// Copyright 2026 The gpssn Authors.
//
// CH-powered range/ball engine: answers B(o, r) — "all POIs within road
// distance r of a center" — from the contraction hierarchy instead of a
// bounded Dijkstra over the ball's whole neighbourhood, BIT-EXACT against
// the reference PoiLocator::BallWithDistances (identical distances AND
// output order) whenever shortest paths are unique.
//
// Structure (a bucket index over the sparse POI vertex set W = endpoints
// of POI-carrying edges):
//
//   * ChBallIndex (built once per backend, shared, immutable during
//     queries): one upward search per w ∈ W records, at every reached
//     vertex m, a bucket entry (w, d_up(w, m)) plus a settle-log chain
//     that remembers the upward parent tree — enough to later unpack the
//     w→m path into original road edges.
//   * ChRangeEngine (per thread): one upward search from the center with
//     parent tracking. At each settled vertex it scans the bucket and
//     keeps, per w, the best meeting. Forward labels are made EXACT by
//     unpacking each tree arc and accumulating original edge weights in
//     travel order; the winning meeting's backward chain is then unpacked
//     the same way, so the final label reproduces bounded Dijkstra's
//     floating-point accumulation along the same shortest path, add by
//     add. POIs are emitted by the reference's own formula over the
//     ascending list of POI-carrying edges — the identical subsequence the
//     Dijkstra ball produces.
//
// Why this is fast: the ball's neighbourhood holds O(r^2·density)
// vertices, all settled by bounded Dijkstra; the upward search settles
// only the center's CH search space (hundreds on million-vertex graphs)
// and touches buckets proportional to nearby POI edges.
//
// Mutation contract: AppendNewPois() indexes POIs appended since the last
// build/append (delta buckets + new sources). It must run with queries
// quiesced (the database's maintenance lock); engines created afterwards
// see the grown index via DistanceBackend::poi_generation().

#ifndef GPSSN_ROADNET_CH_RANGE_H_
#define GPSSN_ROADNET_CH_RANGE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "roadnet/contraction_hierarchy.h"
#include "roadnet/poi.h"
#include "roadnet/road_graph.h"
#include "roadnet/shortest_path.h"

namespace gpssn {

class TaskScheduler;

/// Slack added to the query radius when pruning the upward search and its
/// meeting candidates: upward labels carry shortcut-association rounding
/// (relative error ~1e-12 on realistic paths), so candidates are kept
/// slightly beyond the radius and the EXACT unpacked label makes the final
/// `<= radius` decision — bit-for-bit the comparison Dijkstra performs.
inline double ChRangeSlackRadius(double radius) {
  return radius + 1e-9 * (1.0 + radius);
}

/// Upward Dijkstra with parent tracking. Settles are reported in order
/// with the parent tree (settle-index links) and the global up-arc index
/// used to reach each vertex, so callers can unpack exact path weights.
/// Reusable arenas; one instance per thread.
class ChUpwardSearch {
 public:
  explicit ChUpwardSearch(const ContractionHierarchy* ch);

  struct Settle {
    VertexId vertex = kInvalidVertex;
    int32_t parent = -1;  // Settle index of the tree parent; -1 for seeds.
    int32_t arc = -1;     // Global up-arc index from parent; -1 for seeds.
    double dist = 0.0;    // Upward label (approximate across shortcuts).
  };

  /// Runs from `seeds` (vertex, exact seed distance); labels above `bound`
  /// are neither settled nor relaxed. Returns the settle list, valid until
  /// the next Run.
  const std::vector<Settle>& Run(
      std::span<const std::pair<VertexId, double>> seeds, double bound);

 private:
  const ContractionHierarchy* ch_;
  std::vector<double> dist_;
  std::vector<uint32_t> stamp_;
  std::vector<int32_t> parent_;  // Settle index of the current best parent.
  std::vector<int32_t> arc_;     // Global up-arc index of that relaxation.
  uint32_t generation_ = 0;
  std::vector<std::pair<double, VertexId>> heap_;
  std::vector<Settle> settles_;
};

/// Immutable-during-queries bucket index over the POI vertex set. Shared
/// by every engine of a CH backend.
class ChBallIndex {
 public:
  /// Bucket entry at vertex m: source w reaches m with upward distance
  /// `dist`; `log_entry` indexes the settle-log chain from m back to w.
  struct Entry {
    int32_t source = -1;
    int32_t log_entry = -1;
    double dist = 0.0;
  };
  /// One settle of a source's upward search; parent links point toward
  /// the source (-1 at the source itself).
  struct LogEntry {
    VertexId vertex = kInvalidVertex;
    int32_t parent = -1;  // Global log index; -1 at the source.
    int32_t arc = -1;     // Global up-arc index from parent; -1 at source.
  };

  /// Builds buckets for every endpoint of a POI-carrying edge. Backward
  /// searches are bounded by ChRangeSlackRadius(max_radius) —
  /// kInfDistance = unbounded, serving any radius. With a scheduler the
  /// per-source searches fan out as morsel chunks (bitwise-identical
  /// index at every worker count).
  ChBallIndex(const ContractionHierarchy* ch, const std::vector<Poi>* pois,
              double max_radius, TaskScheduler* scheduler, int max_lanes);

  /// Indexes POIs appended to the backing vector since construction (or
  /// the previous call): new POI edges and delta buckets for new source
  /// vertices. Requires quiesced queries (see header comment).
  void AppendNewPois();

  const ContractionHierarchy& ch() const { return *ch_; }
  double max_radius() const { return max_radius_; }
  size_t num_sources() const { return sources_.size(); }
  size_t indexed_pois() const { return indexed_pois_; }

  /// Source index of vertex `v`, or -1 when v is not a POI-edge endpoint.
  int32_t source_index(VertexId v) const { return vertex_to_source_[v]; }
  VertexId source_vertex(int32_t s) const { return sources_[s]; }

  /// Ascending ids of all edges carrying at least one POI.
  std::span<const EdgeId> poi_edges() const { return poi_edges_; }

  std::span<const Entry> BucketAt(VertexId v) const {
    return std::span<const Entry>(
        bucket_entries_.data() + bucket_offsets_[v],
        static_cast<size_t>(bucket_offsets_[v + 1] - bucket_offsets_[v]));
  }

  bool has_delta() const { return !delta_buckets_.empty(); }
  /// Delta bucket of `v` (entries for sources added by AppendNewPois), or
  /// nullptr.
  const std::vector<Entry>* DeltaBucketAt(VertexId v) const {
    const auto it = delta_buckets_.find(v);
    return it == delta_buckets_.end() ? nullptr : &it->second;
  }

  const LogEntry& log(int32_t i) const { return log_[i]; }

 private:
  /// Runs the upward searches for sources_[first_source..) and appends
  /// their settle logs; bulk (CSR) or delta storage per `into_delta`.
  void IndexSources(size_t first_source, bool into_delta,
                    TaskScheduler* scheduler, int max_lanes);
  /// Rebuilds poi_edges_ / sources_ bookkeeping from (*pois_)[from..).
  /// Returns the first new source index.
  size_t RegisterPois(size_t from);

  const ContractionHierarchy* ch_;
  const std::vector<Poi>* pois_;
  double max_radius_ = kInfDistance;
  size_t indexed_pois_ = 0;

  std::vector<VertexId> sources_;
  std::vector<int32_t> vertex_to_source_;
  std::vector<EdgeId> poi_edges_;  // Sorted ascending, unique.

  // Bulk bucket storage: CSR over vertices, entries grouped by vertex in
  // ascending source order.
  std::vector<int64_t> bucket_offsets_;
  std::vector<Entry> bucket_entries_;
  // Delta storage for sources added after construction.
  std::unordered_map<VertexId, std::vector<Entry>> delta_buckets_;

  std::vector<LogEntry> log_;
};

/// Per-thread ball/range query engine over a ChBallIndex. Not thread-safe
/// (stamped candidate arenas); create one per engine/thread.
class ChRangeEngine {
 public:
  explicit ChRangeEngine(const ChBallIndex* index);

  /// Bit-exact replacement for
  /// PoiLocator::BallWithDistances(center, radius, <bounded Dijkstra>):
  /// same (id, distance) pairs in the same order. `locator` and `pois`
  /// must be the ones the reference engine would use.
  std::vector<std::pair<PoiId, double>> BallWithDistances(
      const EdgePosition& center, double radius, const PoiLocator& locator,
      const std::vector<Poi>& pois);

  /// Upward vertices settled by the last query (perf introspection).
  size_t last_settled() const { return last_settled_; }
  /// Meeting candidates examined by the last query.
  size_t last_candidates() const { return last_candidates_; }

 private:
  void EnsureArenas();

  const ChBallIndex* index_;
  const ContractionHierarchy* ch_;
  const RoadNetwork* graph_;
  ChUpwardSearch search_;
  ChPathUnpacker unpacker_;

  // Per-settle exact forward labels, memoized lazily along winning chains
  // (kInfDistance = not yet reconstructed); fw_chain_ is walk scratch.
  std::vector<double> exact_fw_;
  std::vector<int32_t> fw_chain_;
  // Per-source candidate arena, stamped by query generation.
  std::vector<double> best_cand_;
  std::vector<int32_t> best_meet_settle_;
  std::vector<int32_t> best_meet_entry_;
  std::vector<uint32_t> cand_stamp_;
  std::vector<double> source_label_;
  std::vector<uint32_t> label_stamp_;
  std::vector<int32_t> touched_sources_;
  uint32_t generation_ = 0;

  size_t last_settled_ = 0;
  size_t last_candidates_ = 0;
};

}  // namespace gpssn

#endif  // GPSSN_ROADNET_CH_RANGE_H_
