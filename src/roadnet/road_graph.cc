#include "roadnet/road_graph.h"

#include <algorithm>

#include "common/macros.h"

namespace gpssn {

double RoadNetwork::AverageDegree() const {
  if (points_.empty()) return 0.0;
  return 2.0 * num_edges() / static_cast<double>(num_vertices());
}

Point RoadNetwork::PositionPoint(const EdgePosition& p) const {
  GPSSN_CHECK(p.edge >= 0 && p.edge < num_edges());
  return Lerp(points_[edge_u_[p.edge]], points_[edge_v_[p.edge]], p.t);
}

double RoadNetwork::OffsetTo(const EdgePosition& p, VertexId end) const {
  GPSSN_CHECK(p.edge >= 0 && p.edge < num_edges());
  const double w = edge_w_[p.edge];
  if (end == edge_u_[p.edge]) return p.t * w;
  GPSSN_CHECK(end == edge_v_[p.edge]);
  return (1.0 - p.t) * w;
}

void RoadNetwork::BoundingBox(Point* lo, Point* hi) const {
  lo->x = lo->y = std::numeric_limits<double>::infinity();
  hi->x = hi->y = -std::numeric_limits<double>::infinity();
  for (const Point& p : points_) {
    lo->x = std::min(lo->x, p.x);
    lo->y = std::min(lo->y, p.y);
    hi->x = std::max(hi->x, p.x);
    hi->y = std::max(hi->y, p.y);
  }
}

void RoadNetwork::BuildCsr() {
  const int n = static_cast<int>(points_.size());
  const int m = static_cast<int>(edge_u_.size());
  offsets_.assign(n + 1, 0);
  for (int e = 0; e < m; ++e) {
    ++offsets_[edge_u_[e] + 1];
    ++offsets_[edge_v_[e] + 1];
  }
  for (int v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  arcs_.resize(2 * static_cast<size_t>(m));
  std::vector<int> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const VertexId u = edge_u_[e], v = edge_v_[e];
    const double w = edge_w_[e];
    arcs_[cursor[u]++] = RoadArc{v, e, w};
    arcs_[cursor[v]++] = RoadArc{u, e, w};
  }
}

RoadNetwork RoadNetwork::FromParts(std::vector<Point> points,
                                   std::vector<VertexId> edge_u,
                                   std::vector<VertexId> edge_v,
                                   std::vector<double> edge_w) {
  GPSSN_CHECK(edge_u.size() == edge_v.size() &&
              edge_u.size() == edge_w.size());
  RoadNetwork g;
  g.points_ = std::move(points);
  g.edge_u_ = std::move(edge_u);
  g.edge_v_ = std::move(edge_v);
  g.edge_w_ = std::move(edge_w);
  g.BuildCsr();
  return g;
}

VertexId RoadNetworkBuilder::AddVertex(Point p) {
  points_.push_back(p);
  adjacency_.emplace_back();
  return static_cast<VertexId>(points_.size() - 1);
}

Result<EdgeId> RoadNetworkBuilder::AddEdge(VertexId a, VertexId b,
                                           double weight) {
  if (a < 0 || b < 0 || a >= num_vertices() || b >= num_vertices()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (a == b) {
    return Status::InvalidArgument("self-loop edges are not allowed");
  }
  if (HasEdge(a, b)) {
    return Status::AlreadyExists("parallel edge");
  }
  if (weight < 0.0) {
    weight = EuclideanDistance(points_[a], points_[b]);
  }
  edge_u_.push_back(a);
  edge_v_.push_back(b);
  edge_w_.push_back(weight);
  auto insert_sorted = [](std::vector<VertexId>* v, VertexId x) {
    v->insert(std::upper_bound(v->begin(), v->end(), x), x);
  };
  insert_sorted(&adjacency_[a], b);
  insert_sorted(&adjacency_[b], a);
  return static_cast<EdgeId>(edge_u_.size() - 1);
}

bool RoadNetworkBuilder::HasEdge(VertexId a, VertexId b) const {
  const auto& adj = adjacency_[a];
  return std::binary_search(adj.begin(), adj.end(), b);
}

RoadNetwork RoadNetworkBuilder::Build() {
  RoadNetwork g;
  g.points_ = std::move(points_);
  g.edge_u_ = std::move(edge_u_);
  g.edge_v_ = std::move(edge_v_);
  g.edge_w_ = std::move(edge_w_);
  g.BuildCsr();
  *this = RoadNetworkBuilder();
  return g;
}

}  // namespace gpssn
