#include "roadnet/contraction_hierarchy.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/macros.h"

namespace gpssn {

namespace {

// Small bounded Dijkstra over the remaining (uncontracted) graph used for
// witness searches. Owns stamped arenas sized once per build.
class WitnessSearch {
 public:
  explicit WitnessSearch(int n)
      : dist_(n, kInfDistance), hops_(n, 0), stamp_(n, 0) {}

  /// Returns the distance from `source` to `target` in the remaining graph
  /// with `skip` removed, or kInfDistance once `bound`, the hop limit, or
  /// the settle budget is exceeded. Never underestimates reachability
  /// failures: a kInfDistance result only means "no witness found within
  /// the budget", which is safe (a shortcut is added).
  double Run(const std::vector<std::unordered_map<VertexId, double>>& adj,
             const std::vector<bool>& contracted, VertexId source,
             VertexId target, VertexId skip, double bound, int hop_limit,
             int settle_limit) {
    ++generation_;
    if (generation_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
    heap_ = {};
    dist_[source] = 0.0;
    hops_[source] = 0;
    stamp_[source] = generation_;
    heap_.push({0.0, source});
    int settled = 0;
    while (!heap_.empty()) {
      const auto [d, v] = heap_.top();
      heap_.pop();
      if (stamp_[v] != generation_ || d > dist_[v]) continue;
      if (d > bound) return kInfDistance;
      if (v == target) return d;
      if (++settled > settle_limit) return kInfDistance;
      if (hops_[v] >= hop_limit) continue;
      for (const auto& [to, w] : adj[v]) {
        if (to == skip || contracted[to]) continue;
        const double nd = d + w;
        if (nd > bound) continue;
        if (stamp_[to] != generation_ || nd < dist_[to]) {
          dist_[to] = nd;
          hops_[to] = hops_[v] + 1;
          stamp_[to] = generation_;
          heap_.push({nd, to});
        }
      }
    }
    return kInfDistance;
  }

 private:
  std::vector<double> dist_;
  std::vector<int> hops_;
  std::vector<uint32_t> stamp_;
  uint32_t generation_ = 0;
  std::priority_queue<std::pair<double, VertexId>,
                      std::vector<std::pair<double, VertexId>>,
                      std::greater<>>
      heap_;
};

}  // namespace

ContractionHierarchy::ContractionHierarchy(ChOptions options)
    : options_(options) {}

void ContractionHierarchy::Build(const RoadNetwork* graph) {
  GPSSN_CHECK(graph != nullptr);
  graph_ = graph;
  const int n = graph->num_vertices();
  rank_.assign(n, -1);
  up_.assign(n, {});
  num_shortcuts_ = 0;

  // Dynamic remaining graph: min-weight multi-edge collapse.
  std::vector<std::unordered_map<VertexId, double>> adj(n);
  for (EdgeId e = 0; e < graph->num_edges(); ++e) {
    const VertexId u = graph->edge_u(e), v = graph->edge_v(e);
    const double w = graph->edge_weight(e);
    auto relax = [](std::unordered_map<VertexId, double>* m, VertexId key,
                    double weight) {
      auto it = m->find(key);
      if (it == m->end() || weight < it->second) (*m)[key] = weight;
    };
    relax(&adj[u], v, w);
    relax(&adj[v], u, w);
  }
  // All surviving edges (original collapsed + shortcuts), for the final
  // upward-graph construction.
  std::vector<std::tuple<VertexId, VertexId, double>> all_edges;
  for (VertexId u = 0; u < n; ++u) {
    for (const auto& [v, w] : adj[u]) {
      if (u < v) all_edges.emplace_back(u, v, w);
    }
  }

  std::vector<bool> contracted(n, false);
  std::vector<int> deleted_neighbors(n, 0);
  WitnessSearch witness(n);

  // Simulates contracting v: counts (and optionally emits) the shortcuts
  // it would need.
  auto shortcuts_for = [&](VertexId v, bool emit) {
    int count = 0;
    std::vector<std::pair<VertexId, double>> neighbors;
    for (const auto& [u, w] : adj[v]) {
      if (!contracted[u]) neighbors.emplace_back(u, w);
    }
    for (size_t i = 0; i < neighbors.size(); ++i) {
      for (size_t j = i + 1; j < neighbors.size(); ++j) {
        const auto [a, wa] = neighbors[i];
        const auto [b, wb] = neighbors[j];
        const double through = wa + wb;
        const double alt =
            witness.Run(adj, contracted, a, b, v, through,
                        options_.witness_hop_limit,
                        options_.witness_settle_limit);
        if (alt <= through) continue;  // Witness path found: no shortcut.
        ++count;
        if (emit) {
          auto relax = [](std::unordered_map<VertexId, double>* m,
                          VertexId key, double weight) {
            auto it = m->find(key);
            if (it == m->end() || weight < it->second) {
              (*m)[key] = weight;
              return true;
            }
            return false;
          };
          const bool fresh = relax(&adj[a], b, through);
          relax(&adj[b], a, through);
          if (fresh) {
            all_edges.emplace_back(a, b, through);
            ++num_shortcuts_;
          }
        }
      }
    }
    return count;
  };

  auto priority = [&](VertexId v) {
    int degree = 0;
    for (const auto& [u, w] : adj[v]) {
      (void)w;
      if (!contracted[u]) ++degree;
    }
    return shortcuts_for(v, /*emit=*/false) - degree + deleted_neighbors[v];
  };

  // Lazy-update priority queue over (priority, vertex).
  std::priority_queue<std::pair<int, VertexId>,
                      std::vector<std::pair<int, VertexId>>, std::greater<>>
      queue;
  for (VertexId v = 0; v < n; ++v) queue.push({priority(v), v});

  int next_rank = 0;
  while (!queue.empty()) {
    const auto [p, v] = queue.top();
    queue.pop();
    if (contracted[v]) continue;
    // Lazy update: re-evaluate; requeue when stale.
    const int fresh = priority(v);
    if (!queue.empty() && fresh > queue.top().first) {
      queue.push({fresh, v});
      continue;
    }
    shortcuts_for(v, /*emit=*/true);
    contracted[v] = true;
    rank_[v] = next_rank++;
    for (const auto& [u, w] : adj[v]) {
      (void)w;
      if (!contracted[u]) ++deleted_neighbors[u];
    }
  }

  // Upward graph: every surviving edge points from the lower-ranked to the
  // higher-ranked endpoint; keep the minimum weight per (from, to).
  std::vector<std::unordered_map<VertexId, double>> up_min(n);
  for (const auto& [u, v, w] : all_edges) {
    const VertexId lo = rank_[u] < rank_[v] ? u : v;
    const VertexId hi = lo == u ? v : u;
    auto it = up_min[lo].find(hi);
    if (it == up_min[lo].end() || w < it->second) up_min[lo][hi] = w;
  }
  for (VertexId v = 0; v < n; ++v) {
    up_[v].reserve(up_min[v].size());
    for (const auto& [to, w] : up_min[v]) up_[v].push_back(UpArc{to, w});
  }
}

ChQuery::ChQuery(const ContractionHierarchy* ch) : ch_(ch) {
  GPSSN_CHECK(ch != nullptr && ch->built());
  const int n = ch->graph().num_vertices();
  for (int side = 0; side < 2; ++side) {
    dist_[side].resize(n, kInfDistance);
    stamp_[side].resize(n, 0);
  }
}

double ChQuery::VertexToVertex(VertexId s, VertexId t) {
  const int n = ch_->graph().num_vertices();
  GPSSN_CHECK(s >= 0 && s < n && t >= 0 && t < n);
  if (s == t) return 0.0;
  ++generation_;
  if (generation_ == 0) {
    for (int side = 0; side < 2; ++side) {
      std::fill(stamp_[side].begin(), stamp_[side].end(), 0);
    }
    generation_ = 1;
  }
  heap_[0].clear();
  heap_[1].clear();
  last_settled_ = 0;
  auto greater = [](const std::pair<double, VertexId>& a,
                    const std::pair<double, VertexId>& b) {
    return a.first > b.first;
  };
  auto relax = [&](int side, VertexId v, double d) {
    if (stamp_[side][v] == generation_ && dist_[side][v] <= d) return;
    dist_[side][v] = d;
    stamp_[side][v] = generation_;
    heap_[side].emplace_back(d, v);
    std::push_heap(heap_[side].begin(), heap_[side].end(), greater);
  };
  relax(0, s, 0.0);
  relax(1, t, 0.0);

  double best = kInfDistance;
  // Both searches run to exhaustion of keys below `best` (upward graphs are
  // small, so this stays cheap).
  for (int side = 0; side < 2; ++side) {
    while (!heap_[side].empty()) {
      std::pop_heap(heap_[side].begin(), heap_[side].end(), greater);
      const auto [d, v] = heap_[side].back();
      heap_[side].pop_back();
      if (stamp_[side][v] != generation_ || d > dist_[side][v]) continue;
      if (d >= best) continue;
      ++last_settled_;
      const int other = 1 - side;
      if (stamp_[other][v] == generation_) {
        best = std::min(best, d + dist_[other][v]);
      }
      for (const auto& arc : ch_->up(v)) {
        relax(side, arc.to, d + arc.weight);
      }
    }
  }
  // The meeting minimum must be re-checked after both sides finished (a
  // backward label may have been written after the forward side visited).
  // Scan the smaller frontier's touched vertices via the heaps is no longer
  // possible (drained), so recompute over the meeting candidates lazily:
  // labels survive in dist_/stamp_, and every settled forward vertex was
  // compared when popped; vertices settled backward AFTER the forward pop
  // are covered because the backward pop also compares. Hence `best` is
  // already exact here.
  return best;
}

double ChQuery::PositionToPosition(const EdgePosition& a,
                                   const EdgePosition& b) {
  const RoadNetwork& g = ch_->graph();
  double best = SameEdgeDistance(g, a, b);
  for (VertexId sa : {g.edge_u(a.edge), g.edge_v(a.edge)}) {
    for (VertexId tb : {g.edge_u(b.edge), g.edge_v(b.edge)}) {
      const double mid = VertexToVertex(sa, tb);
      if (mid < kInfDistance) {
        best = std::min(best, g.OffsetTo(a, sa) + mid + g.OffsetTo(b, tb));
      }
    }
  }
  return best;
}

}  // namespace gpssn
