#include "roadnet/contraction_hierarchy.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/parallel_for.h"
#include "common/task_scheduler.h"

namespace gpssn {

namespace {

// One directed half of a remaining-graph edge during construction.
// `middle` is the contracted vertex a shortcut bypasses (kInvalidVertex
// for original road edges).
struct BuildArc {
  VertexId to = kInvalidVertex;
  VertexId middle = kInvalidVertex;
  double weight = 0.0;
};

// An undirected remaining-graph edge, accumulated for the final upward
// graph. all_edges keeps every inserted value (later improvements append
// again); the final per-(lo, hi) minimum wins.
struct EdgeRec {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  VertexId middle = kInvalidVertex;
  double weight = 0.0;
};

// Small bounded one-to-many Dijkstra over the remaining (uncontracted)
// graph used for witness searches. One search per contraction neighbour
// serves every pair that neighbour participates in, so simulating a
// degree-d contraction costs d searches instead of d^2/2. Owns stamped
// arenas sized once per build; one instance per build lane.
class WitnessSearch {
 public:
  explicit WitnessSearch(int n)
      : dist_(n, kInfDistance),
        hops_(n, 0),
        stamp_(n, 0),
        target_bound_(n, 0.0),
        target_stamp_(n, 0) {}

  /// Searches from `source` in the remaining graph with `skip` removed
  /// (and, when `excluded` is non-empty, every flagged vertex removed —
  /// the round's whole selected set). Each target carries its own
  /// acceptance bound (the through-v weight of its pair); the search stops
  /// once every target holds a label within its bound, the settle budget
  /// runs out, or all keys exceed the largest bound. Read results with
  /// Label(): any returned label is a genuine path length, so accepting
  /// `Label(b) <= through` is always sound — budget exhaustion only means
  /// "no witness found", which conservatively adds a shortcut.
  void Run(const std::vector<std::vector<BuildArc>>& adj,
           const std::vector<uint8_t>& contracted,
           const std::vector<uint8_t>& excluded, VertexId source,
           const std::vector<std::pair<VertexId, double>>& targets,
           VertexId skip, int hop_limit, int settle_limit) {
    ++generation_;
    if (generation_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      std::fill(target_stamp_.begin(), target_stamp_.end(), 0);
      generation_ = 1;
    }
    heap_.clear();
    double bound = 0.0;
    int remaining = 0;
    for (const auto& [t, b] : targets) {
      target_stamp_[t] = generation_;
      target_bound_[t] = b;
      bound = std::max(bound, b);
      ++remaining;
    }
    dist_[source] = 0.0;
    hops_[source] = 0;
    stamp_[source] = generation_;
    heap_.push_back({0.0, source});
    int settled = 0;
    const bool has_excluded = !excluded.empty();
    auto greater = [](const std::pair<double, VertexId>& a,
                      const std::pair<double, VertexId>& b) {
      return a.first > b.first;
    };
    while (!heap_.empty() && remaining > 0) {
      std::pop_heap(heap_.begin(), heap_.end(), greater);
      const auto [d, v] = heap_.back();
      heap_.pop_back();
      if (stamp_[v] != generation_ || d > dist_[v]) continue;
      if (d > bound) break;
      if (++settled > settle_limit) break;
      if (hops_[v] >= hop_limit) continue;
      for (const BuildArc& arc : adj[v]) {
        const VertexId to = arc.to;
        if (to == skip || contracted[to] != 0) continue;
        if (has_excluded && excluded[to] != 0) continue;
        const double nd = d + arc.weight;
        if (nd > bound) continue;
        if (stamp_[to] != generation_ || nd < dist_[to]) {
          if (target_stamp_[to] == generation_ && nd <= target_bound_[to] &&
              !(stamp_[to] == generation_ && dist_[to] <= target_bound_[to])) {
            --remaining;  // Target newly satisfied by this label.
          }
          dist_[to] = nd;
          hops_[to] = hops_[v] + 1;
          stamp_[to] = generation_;
          heap_.push_back({nd, to});
          std::push_heap(heap_.begin(), heap_.end(), greater);
        }
      }
    }
  }

  /// Best path label the last Run assigned to `v` (kInfDistance if none).
  double Label(VertexId v) const {
    return stamp_[v] == generation_ ? dist_[v] : kInfDistance;
  }

 private:
  std::vector<double> dist_;
  std::vector<int> hops_;
  std::vector<uint32_t> stamp_;
  std::vector<double> target_bound_;
  std::vector<uint32_t> target_stamp_;
  uint32_t generation_ = 0;
  std::vector<std::pair<double, VertexId>> heap_;
};

// A shortcut to insert, produced by a (parallel) contraction simulation.
struct ShortcutRec {
  VertexId a = kInvalidVertex;
  VertexId b = kInvalidVertex;
  double weight = 0.0;
};

// Round-based independent-set contraction. All phase outputs are written
// to per-vertex or per-index slots, so the parallel and serial paths are
// bitwise identical.
class ChBuilder {
 public:
  ChBuilder(const RoadNetwork& g, const ChOptions& options)
      : g_(g), options_(options) {}

  void Run();

  std::vector<int32_t> rank;
  std::vector<int64_t> up_offsets;
  std::vector<ContractionHierarchy::UpArc> up_arcs;
  int num_shortcuts = 0;
  int rounds = 0;

 private:
  int UncontractedDegree(VertexId v) const {
    int degree = 0;
    for (const BuildArc& arc : adj_[v]) {
      if (contracted_[arc.to] == 0) ++degree;
    }
    return degree;
  }

  // (priority, id) lexicographic order decides local minima; ids break
  // ties, so keys are distinct and every round selects at least the
  // global minimum among alive vertices.
  bool KeyLess(VertexId a, VertexId b) const {
    if (priority_[a] != priority_[b]) return priority_[a] < priority_[b];
    return a < b;
  }

  bool IsLocalMinimum(VertexId v) const {
    for (const BuildArc& arc : adj_[v]) {
      if (contracted_[arc.to] == 0 && KeyLess(arc.to, v)) return false;
    }
    return true;
  }

  /// Simulates contracting `v`: counts the shortcuts it would need and
  /// (when `out` != nullptr) records them. With `exclude_selected`, the
  /// witness searches treat the round's whole selected set as removed.
  /// Runs ONE one-to-many witness search per neighbour (targets = the
  /// later neighbours, each bounded by its pair's through-v weight), so
  /// the cost is linear rather than quadratic in the degree.
  int SimulateContraction(VertexId v, int lane, bool exclude_selected,
                          std::vector<ShortcutRec>* out) {
    WitnessSearch& witness = *witness_[lane];
    std::vector<std::pair<VertexId, double>>& neighbors =
        neighbor_scratch_[lane];
    std::vector<std::pair<VertexId, double>>& targets = target_scratch_[lane];
    neighbors.clear();
    for (const BuildArc& arc : adj_[v]) {
      if (contracted_[arc.to] == 0) neighbors.emplace_back(arc.to, arc.weight);
    }
    int count = 0;
    for (size_t i = 0; i + 1 < neighbors.size(); ++i) {
      const auto [a, wa] = neighbors[i];
      targets.clear();
      for (size_t j = i + 1; j < neighbors.size(); ++j) {
        targets.emplace_back(neighbors[j].first, wa + neighbors[j].second);
      }
      // The settle budget covers the whole one-to-many search. Scale it
      // with the target count but cap the scaling: witness paths between
      // neighbours of one vertex are short, so a modest multiple of the
      // per-pair budget almost always suffices, while an uncapped product
      // makes every witness FAILURE (the case that inserts a shortcut)
      // pay for a huge exhaustive ball. Priority-only simulations (out ==
      // nullptr) just need an estimate and get a tighter cap.
      const int scale =
          std::min(static_cast<int>(targets.size()), out != nullptr ? 4 : 2);
      witness.Run(adj_, contracted_,
                  exclude_selected ? selected_flag_ : no_flags_, a, targets, v,
                  options_.witness_hop_limit,
                  options_.witness_settle_limit * scale);
      for (size_t j = i + 1; j < neighbors.size(); ++j) {
        const auto [b, wb] = neighbors[j];
        const double through = wa + wb;
        if (witness.Label(b) <= through) continue;  // Witness: no shortcut.
        ++count;
        if (out != nullptr) out->push_back(ShortcutRec{a, b, through});
      }
    }
    return count;
  }

  /// Inserts (or improves) the directed half (from -> to) of a shortcut
  /// through `middle`. Returns true when the adjacency changed.
  bool RelaxAdj(VertexId from, VertexId to, double weight, VertexId middle) {
    for (BuildArc& arc : adj_[from]) {
      if (arc.to != to) continue;
      if (weight < arc.weight) {
        arc.weight = weight;
        arc.middle = middle;
        return true;
      }
      return false;
    }
    adj_[from].push_back(BuildArc{to, middle, weight});
    return true;
  }

  void MarkDirty(VertexId v) {
    if (dirty_flag_[v] == 0) dirty_flag_[v] = 1;
  }

  void ParallelPhase(size_t count, size_t chunk,
                     const std::function<void(int, size_t, size_t)>& fn) {
    ParallelFor loop(options_.scheduler, lanes_, count, chunk, fn);
    loop.Run();
  }

  void BuildUpwardGraph();

  const RoadNetwork& g_;
  const ChOptions& options_;
  int n_ = 0;
  int lanes_ = 1;

  std::vector<std::vector<BuildArc>> adj_;
  std::vector<EdgeRec> all_edges_;
  std::vector<uint8_t> contracted_;
  std::vector<uint8_t> selected_flag_;
  std::vector<uint8_t> no_flags_;  // Empty: witness excludes nothing extra.
  std::vector<uint8_t> min_flag_;
  std::vector<uint8_t> dirty_flag_;
  std::vector<int> deleted_neighbors_;
  std::vector<int> priority_;
  std::vector<VertexId> alive_;
  std::vector<VertexId> dirty_;
  std::vector<VertexId> selected_;
  std::vector<std::vector<ShortcutRec>> round_shortcuts_;
  std::vector<std::unique_ptr<WitnessSearch>> witness_;
  std::vector<std::vector<std::pair<VertexId, double>>> neighbor_scratch_;
  std::vector<std::vector<std::pair<VertexId, double>>> target_scratch_;
};

// Vertices above this remaining degree get an approximate priority
// (assume every pair needs a shortcut) instead of a full contraction
// simulation. Such vertices sit in the dense late-contraction core where
// (a) simulation is quadratic in the degree and (b) the approximation is
// the dominant term anyway, so selection order barely changes while
// priority recomputation stops being the build bottleneck on grid-like
// networks. Purely a function of round-start state — serial and parallel
// builds still match bitwise.
constexpr int kPrioritySimulationDegreeCap = 16;

void ChBuilder::Run() {
  n_ = g_.num_vertices();
  lanes_ = PreprocessLaneCap(options_.scheduler, options_.build_max_lanes);

  rank.assign(n_, -1);
  adj_.assign(n_, {});
  for (EdgeId e = 0; e < g_.num_edges(); ++e) {
    const VertexId u = g_.edge_u(e), v = g_.edge_v(e);
    const double w = g_.edge_weight(e);
    // The builder rejects self-loops and parallel edges, so every (u, v)
    // appears exactly once — original arcs carry the exact edge weight.
    adj_[u].push_back(BuildArc{v, kInvalidVertex, w});
    adj_[v].push_back(BuildArc{u, kInvalidVertex, w});
  }
  all_edges_.reserve(static_cast<size_t>(g_.num_edges()) * 2);
  for (VertexId u = 0; u < n_; ++u) {
    for (const BuildArc& arc : adj_[u]) {
      if (u < arc.to) {
        all_edges_.push_back(EdgeRec{u, arc.to, kInvalidVertex, arc.weight});
      }
    }
  }

  contracted_.assign(n_, 0);
  selected_flag_.assign(n_, 0);
  min_flag_.assign(n_, 0);
  dirty_flag_.assign(n_, 0);
  deleted_neighbors_.assign(n_, 0);
  priority_.assign(n_, 0);
  witness_.resize(lanes_);
  neighbor_scratch_.resize(lanes_);
  target_scratch_.resize(lanes_);
  for (int lane = 0; lane < lanes_; ++lane) {
    witness_[lane] = std::make_unique<WitnessSearch>(n_);
  }

  alive_.resize(n_);
  for (VertexId v = 0; v < n_; ++v) alive_[v] = v;
  dirty_ = alive_;

  int next_rank = 0;
  while (next_rank < n_) {
    ++rounds;

    // Phase A: recompute priorities of vertices whose neighbourhood
    // changed last round (all vertices in round 1).
    ParallelPhase(dirty_.size(), 64, [this](int lane, size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        const VertexId v = dirty_[i];
        const int degree = UncontractedDegree(v);
        const int needed =
            degree > kPrioritySimulationDegreeCap
                ? degree * (degree - 1) / 2
                : SimulateContraction(v, lane, false, nullptr);
        priority_[v] = needed - degree + deleted_neighbors_[v];
      }
    });

    // Phase B: independent set = alive vertices that are local minima of
    // (priority, id) among their alive neighbours.
    ParallelPhase(alive_.size(), 512, [this](int, size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        const VertexId v = alive_[i];
        min_flag_[v] = IsLocalMinimum(v) ? 1 : 0;
      }
    });
    selected_.clear();
    for (const VertexId v : alive_) {
      if (min_flag_[v] != 0) {
        selected_.push_back(v);
        selected_flag_[v] = 1;
      }
    }
    // The alive vertex with the globally smallest key is always a local
    // minimum, so every round makes progress.
    GPSSN_CHECK(!selected_.empty());

    // Phase C: simulate every selected contraction against the
    // round-start graph. Witness searches skip the whole selected set, so
    // each witness path survives the entire round.
    round_shortcuts_.resize(selected_.size());
    for (auto& recs : round_shortcuts_) recs.clear();
    ParallelPhase(selected_.size(), 8, [this](int lane, size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        SimulateContraction(selected_[i], lane, true, &round_shortcuts_[i]);
      }
    });

    // Phase D: apply serially in id order (selected_ is id-ascending).
    for (const VertexId v : selected_) {
      contracted_[v] = 1;
      rank[v] = next_rank++;
    }
    for (size_t i = 0; i < selected_.size(); ++i) {
      const VertexId v = selected_[i];
      for (const BuildArc& arc : adj_[v]) {
        if (contracted_[arc.to] == 0) {
          ++deleted_neighbors_[arc.to];
          MarkDirty(arc.to);
        }
      }
      for (const ShortcutRec& sc : round_shortcuts_[i]) {
        const bool fresh = RelaxAdj(sc.a, sc.b, sc.weight, v);
        RelaxAdj(sc.b, sc.a, sc.weight, v);
        if (fresh) {
          all_edges_.push_back(EdgeRec{sc.a, sc.b, v, sc.weight});
          ++num_shortcuts;
        }
        MarkDirty(sc.a);
        MarkDirty(sc.b);
      }
      selected_flag_[v] = 0;
    }

    // Refresh the alive and dirty lists (id order keeps everything
    // deterministic). Dirty vertices compact their adjacency — every
    // vertex next to something contracted this round IS dirty, so after
    // this loop no live list carries dead entries and witness searches
    // never scan them. Contracted vertices release their lists outright.
    std::vector<VertexId> next_alive;
    next_alive.reserve(alive_.size() - selected_.size());
    dirty_.clear();
    for (const VertexId v : alive_) {
      if (contracted_[v] != 0) {
        dirty_flag_[v] = 0;
        std::vector<BuildArc>().swap(adj_[v]);
        continue;
      }
      next_alive.push_back(v);
      if (dirty_flag_[v] != 0) {
        dirty_.push_back(v);
        dirty_flag_[v] = 0;
        std::erase_if(adj_[v], [this](const BuildArc& arc) {
          return contracted_[arc.to] != 0;
        });
      }
    }
    alive_ = std::move(next_alive);
  }

  BuildUpwardGraph();
}

void ChBuilder::BuildUpwardGraph() {
  // Every surviving edge points from the lower-ranked to the higher-ranked
  // endpoint; keep the minimum weight per (from, to) — stable sort keeps
  // the earliest insertion among exact ties, so an original edge always
  // beats a later equal-weight shortcut and unpacking terminates.
  for (EdgeRec& rec : all_edges_) {
    if (rank[rec.u] > rank[rec.v]) std::swap(rec.u, rec.v);
  }
  std::stable_sort(all_edges_.begin(), all_edges_.end(),
                   [](const EdgeRec& a, const EdgeRec& b) {
                     if (a.u != b.u) return a.u < b.u;
                     if (a.v != b.v) return a.v < b.v;
                     return a.weight < b.weight;
                   });
  up_offsets.assign(n_ + 1, 0);
  size_t kept = 0;
  for (size_t i = 0; i < all_edges_.size(); ++i) {
    if (i > 0 && all_edges_[i].u == all_edges_[i - 1].u &&
        all_edges_[i].v == all_edges_[i - 1].v) {
      continue;  // Dominated duplicate of the same vertex pair.
    }
    all_edges_[kept++] = all_edges_[i];
    ++up_offsets[all_edges_[i].u + 1];
  }
  all_edges_.resize(kept);
  for (VertexId v = 0; v < n_; ++v) up_offsets[v + 1] += up_offsets[v];
  up_arcs.resize(kept);
  std::vector<int64_t> cursor(up_offsets.begin(), up_offsets.end() - 1);
  for (const EdgeRec& rec : all_edges_) {
    up_arcs[cursor[rec.u]++] =
        ContractionHierarchy::UpArc{rec.v, rec.middle, rec.weight};
  }
}

}  // namespace

ContractionHierarchy::ContractionHierarchy(ChOptions options)
    : options_(options) {}

void ContractionHierarchy::AdoptOwned(OwnedStorage owned) {
  auto shared = std::make_shared<OwnedStorage>(std::move(owned));
  rank_ = shared->rank;
  up_offsets_ = shared->up_offsets;
  up_arcs_ = shared->up_arcs;
  payload_ = std::move(shared);
}

void ContractionHierarchy::Build(const RoadNetwork* graph) {
  GPSSN_CHECK(graph != nullptr);
  graph_ = graph;
  ChBuilder builder(*graph, options_);
  builder.Run();
  num_shortcuts_ = builder.num_shortcuts;
  build_rounds_ = builder.rounds;
  AdoptOwned(OwnedStorage{std::move(builder.rank),
                          std::move(builder.up_offsets),
                          std::move(builder.up_arcs)});
}

ContractionHierarchy ContractionHierarchy::AdoptStorage(
    const RoadNetwork* graph, const ChOptions& options,
    std::span<const int32_t> rank, std::span<const int64_t> up_offsets,
    std::span<const UpArc> up_arcs, int num_shortcuts,
    std::shared_ptr<const void> payload) {
  GPSSN_CHECK(graph != nullptr);
  GPSSN_CHECK(static_cast<int>(rank.size()) == graph->num_vertices());
  GPSSN_CHECK(up_offsets.size() == rank.size() + 1);
  ContractionHierarchy ch(options);
  ch.graph_ = graph;
  ch.rank_ = rank;
  ch.up_offsets_ = up_offsets;
  ch.up_arcs_ = up_arcs;
  ch.num_shortcuts_ = num_shortcuts;
  ch.payload_ = std::move(payload);
  return ch;
}

const ContractionHierarchy::UpArc& ContractionHierarchy::UpArcBetween(
    VertexId from, VertexId to) const {
  // up(from) is sorted by target id; hub vertices carry hundreds of arcs
  // and unpacking visits them constantly, so binary search matters.
  const std::span<const UpArc> arcs = up(from);
  const auto it = std::lower_bound(
      arcs.begin(), arcs.end(), to,
      [](const UpArc& arc, VertexId target) { return arc.to < target; });
  GPSSN_CHECK(it != arcs.end() && it->to == to &&
              "missing unpack arc: hierarchy is inconsistent");
  return *it;
}

double ChPathUnpacker::Accumulate(VertexId from, VertexId to,
                                  const ContractionHierarchy::UpArc& arc,
                                  double acc) {
  stack_.clear();
  stack_.push_back(Frame{from, to, &arc});
  while (!stack_.empty()) {
    const Frame f = stack_.back();
    stack_.pop_back();
    if (f.arc->middle == kInvalidVertex) {
      acc += f.arc->weight;
      continue;
    }
    const VertexId m = f.arc->middle;
    // Both halves live in up(m): m was contracted before either endpoint.
    // Push the far half first so the `from` half pops (and accumulates)
    // first — weights are added strictly in travel order.
    stack_.push_back(Frame{m, f.to, &ch_->UpArcBetween(m, f.to)});
    stack_.push_back(Frame{f.from, m, &ch_->UpArcBetween(m, f.from)});
  }
  return acc;
}

ChQuery::ChQuery(const ContractionHierarchy* ch) : ch_(ch) {
  GPSSN_CHECK(ch != nullptr && ch->built());
  const int n = ch->graph().num_vertices();
  for (int side = 0; side < 2; ++side) {
    dist_[side].resize(n, kInfDistance);
    stamp_[side].resize(n, 0);
  }
}

double ChQuery::VertexToVertex(VertexId s, VertexId t) {
  const int n = ch_->graph().num_vertices();
  GPSSN_CHECK(s >= 0 && s < n && t >= 0 && t < n);
  if (s == t) return 0.0;
  ++generation_;
  if (generation_ == 0) {
    for (int side = 0; side < 2; ++side) {
      std::fill(stamp_[side].begin(), stamp_[side].end(), 0);
    }
    generation_ = 1;
  }
  heap_[0].clear();
  heap_[1].clear();
  last_settled_ = 0;
  auto greater = [](const std::pair<double, VertexId>& a,
                    const std::pair<double, VertexId>& b) {
    return a.first > b.first;
  };
  auto relax = [&](int side, VertexId v, double d) {
    if (stamp_[side][v] == generation_ && dist_[side][v] <= d) return;
    dist_[side][v] = d;
    stamp_[side][v] = generation_;
    heap_[side].emplace_back(d, v);
    std::push_heap(heap_[side].begin(), heap_[side].end(), greater);
  };
  relax(0, s, 0.0);
  relax(1, t, 0.0);

  double best = kInfDistance;
  // Both searches run to exhaustion of keys below `best` (upward graphs are
  // small, so this stays cheap).
  for (int side = 0; side < 2; ++side) {
    while (!heap_[side].empty()) {
      std::pop_heap(heap_[side].begin(), heap_[side].end(), greater);
      const auto [d, v] = heap_[side].back();
      heap_[side].pop_back();
      if (stamp_[side][v] != generation_ || d > dist_[side][v]) continue;
      if (d >= best) continue;
      ++last_settled_;
      const int other = 1 - side;
      if (stamp_[other][v] == generation_) {
        best = std::min(best, d + dist_[other][v]);
      }
      for (const auto& arc : ch_->up(v)) {
        relax(side, arc.to, d + arc.weight);
      }
    }
  }
  // The meeting minimum must be re-checked after both sides finished (a
  // backward label may have been written after the forward side visited).
  // Scan the smaller frontier's touched vertices via the heaps is no longer
  // possible (drained), so recompute over the meeting candidates lazily:
  // labels survive in dist_/stamp_, and every settled forward vertex was
  // compared when popped; vertices settled backward AFTER the forward pop
  // are covered because the backward pop also compares. Hence `best` is
  // already exact here.
  return best;
}

double ChQuery::PositionToPosition(const EdgePosition& a,
                                   const EdgePosition& b) {
  const RoadNetwork& g = ch_->graph();
  double best = SameEdgeDistance(g, a, b);
  for (VertexId sa : {g.edge_u(a.edge), g.edge_v(a.edge)}) {
    for (VertexId tb : {g.edge_u(b.edge), g.edge_v(b.edge)}) {
      const double mid = VertexToVertex(sa, tb);
      if (mid < kInfDistance) {
        best = std::min(best, g.OffsetTo(a, sa) + mid + g.OffsetTo(b, tb));
      }
    }
  }
  return best;
}

}  // namespace gpssn
