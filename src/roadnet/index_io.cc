#include "roadnet/index_io.h"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/pagestore.h"

namespace gpssn {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(const void* data, size_t len, uint64_t hash = kFnvOffset) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

size_t AlignUp8(size_t x) { return (x + 7) & ~size_t{7}; }

struct SectionPayload {
  IndexSectionKind kind;
  const void* data;
  size_t bytes;
  size_t count;
};

// Keeps everything the adopted hierarchy's spans point into alive: the
// file mapping plus the materialized graph the hierarchy references.
struct LoadedIndexPayload {
  MappedFile file;
  std::shared_ptr<const RoadNetwork> graph;
};

}  // namespace

uint64_t RoadNetworkFingerprint(const RoadNetwork& graph) {
  const int64_t n = graph.num_vertices();
  const int64_t m = graph.num_edges();
  uint64_t hash = Fnv1a(&n, sizeof(n));
  hash = Fnv1a(&m, sizeof(m), hash);
  hash = Fnv1a(graph.points().data(), graph.points().size_bytes(), hash);
  hash = Fnv1a(graph.edge_sources().data(), graph.edge_sources().size_bytes(),
               hash);
  hash = Fnv1a(graph.edge_targets().data(), graph.edge_targets().size_bytes(),
               hash);
  hash = Fnv1a(graph.edge_weights().data(), graph.edge_weights().size_bytes(),
               hash);
  return hash;
}

Status SaveRoadIndex(const RoadNetwork& graph, const ContractionHierarchy& ch,
                     const std::string& path) {
  if (!ch.built() || &ch.graph() != &graph) {
    return Status::InvalidArgument(
        "SaveRoadIndex: hierarchy was not built over the given graph");
  }
  const IndexMeta meta{
      graph.num_vertices(),
      graph.num_edges(),
      ch.num_shortcuts(),
      ch.options().witness_hop_limit,
      ch.options().witness_settle_limit,
      RoadNetworkFingerprint(graph),
  };
  const SectionPayload sections[] = {
      {IndexSectionKind::kPoints, graph.points().data(),
       graph.points().size_bytes(), graph.points().size()},
      {IndexSectionKind::kEdgeU, graph.edge_sources().data(),
       graph.edge_sources().size_bytes(), graph.edge_sources().size()},
      {IndexSectionKind::kEdgeV, graph.edge_targets().data(),
       graph.edge_targets().size_bytes(), graph.edge_targets().size()},
      {IndexSectionKind::kEdgeW, graph.edge_weights().data(),
       graph.edge_weights().size_bytes(), graph.edge_weights().size()},
      {IndexSectionKind::kChRank, ch.ranks().data(), ch.ranks().size_bytes(),
       ch.ranks().size()},
      {IndexSectionKind::kChUpOffsets, ch.up_offsets().data(),
       ch.up_offsets().size_bytes(), ch.up_offsets().size()},
      {IndexSectionKind::kChUpArcs, ch.up_arcs().data(),
       ch.up_arcs().size_bytes(), ch.up_arcs().size()},
      {IndexSectionKind::kMeta, &meta, sizeof(meta), 1},
  };
  constexpr size_t kNumSections = sizeof(sections) / sizeof(sections[0]);

  // Lay out: header, section table, 8-byte-aligned payloads.
  std::vector<IndexSectionEntry> table(kNumSections);
  size_t offset =
      sizeof(IndexFileHeader) + kNumSections * sizeof(IndexSectionEntry);
  for (size_t i = 0; i < kNumSections; ++i) {
    offset = AlignUp8(offset);
    table[i].kind = static_cast<uint32_t>(sections[i].kind);
    table[i].offset = offset;
    table[i].bytes = sections[i].bytes;
    table[i].count = sections[i].count;
    table[i].checksum = Fnv1a(sections[i].data, sections[i].bytes);
    offset += sections[i].bytes;
  }
  const size_t file_bytes = offset;

  IndexFileHeader header;
  std::memcpy(header.magic, kRoadIndexMagic, sizeof(header.magic));
  header.version = kRoadIndexVersion;
  header.num_sections = kNumSections;
  header.file_bytes = file_bytes;
  header.table_checksum =
      Fnv1a(table.data(), table.size() * sizeof(IndexSectionEntry));

  std::vector<uint8_t> buffer(file_bytes, 0);
  std::memcpy(buffer.data(), &header, sizeof(header));
  std::memcpy(buffer.data() + sizeof(header), table.data(),
              table.size() * sizeof(IndexSectionEntry));
  for (size_t i = 0; i < kNumSections; ++i) {
    if (sections[i].bytes > 0) {
      std::memcpy(buffer.data() + table[i].offset, sections[i].data,
                  sections[i].bytes);
    }
  }

  const std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + tmp_path + " for writing");
  }
  const size_t written = std::fwrite(buffer.data(), 1, buffer.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != buffer.size() || !flushed) {
    std::remove(tmp_path.c_str());
    return Status::IoError("short write to " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::OK();
}

Result<RoadIndexBundle> LoadRoadIndex(const std::string& path) {
  GPSSN_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  const uint8_t* base = file.data();
  const size_t size = file.size();
  if (size < sizeof(IndexFileHeader)) {
    return Status::IoError("truncated road index file: " + path);
  }
  IndexFileHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kRoadIndexMagic, sizeof(header.magic)) != 0) {
    return Status::IoError("corrupted road index file (bad magic): " + path);
  }
  if (header.version != kRoadIndexVersion) {
    return Status::IoError("unsupported road-index version " +
                           std::to_string(header.version) + ": " + path);
  }
  if (header.file_bytes != size) {
    return Status::IoError("truncated road index file: " + path);
  }
  const size_t table_bytes =
      static_cast<size_t>(header.num_sections) * sizeof(IndexSectionEntry);
  if (sizeof(header) + table_bytes > size) {
    return Status::IoError("truncated road index file: " + path);
  }
  std::vector<IndexSectionEntry> table(header.num_sections);
  std::memcpy(table.data(), base + sizeof(header), table_bytes);
  if (Fnv1a(table.data(), table_bytes) != header.table_checksum) {
    return Status::IoError("corrupted road index file (section table): " +
                           path);
  }
  const IndexSectionEntry* by_kind[16] = {};
  for (const IndexSectionEntry& entry : table) {
    if (entry.offset % 8 != 0 || entry.offset + entry.bytes > size) {
      return Status::IoError("truncated road index file: " + path);
    }
    if (Fnv1a(base + entry.offset, entry.bytes) != entry.checksum) {
      return Status::IoError("corrupted road index file (section " +
                             std::to_string(entry.kind) + "): " + path);
    }
    if (entry.kind < 16) by_kind[entry.kind] = &entry;
  }
  auto section = [&](IndexSectionKind kind) {
    return by_kind[static_cast<uint32_t>(kind)];
  };
  for (const IndexSectionKind kind :
       {IndexSectionKind::kPoints, IndexSectionKind::kEdgeU,
        IndexSectionKind::kEdgeV, IndexSectionKind::kEdgeW,
        IndexSectionKind::kChRank, IndexSectionKind::kChUpOffsets,
        IndexSectionKind::kChUpArcs, IndexSectionKind::kMeta}) {
    if (section(kind) == nullptr) {
      return Status::IoError("corrupted road index file (missing section " +
                             std::to_string(static_cast<uint32_t>(kind)) +
                             "): " + path);
    }
  }
  const IndexSectionEntry& meta_entry = *section(IndexSectionKind::kMeta);
  if (meta_entry.bytes != sizeof(IndexMeta)) {
    return Status::IoError("corrupted road index file (meta size): " + path);
  }
  IndexMeta meta;
  std::memcpy(&meta, base + meta_entry.offset, sizeof(meta));
  const int64_t n = meta.num_vertices;
  const int64_t m = meta.num_edges;
  auto check_counts = [&](IndexSectionKind kind, size_t elem_bytes,
                          uint64_t expected_count) {
    const IndexSectionEntry& entry = *section(kind);
    return entry.count == expected_count &&
           entry.bytes == expected_count * elem_bytes;
  };
  if (n < 0 || m < 0 ||
      !check_counts(IndexSectionKind::kPoints, sizeof(Point), n) ||
      !check_counts(IndexSectionKind::kEdgeU, sizeof(VertexId), m) ||
      !check_counts(IndexSectionKind::kEdgeV, sizeof(VertexId), m) ||
      !check_counts(IndexSectionKind::kEdgeW, sizeof(double), m) ||
      !check_counts(IndexSectionKind::kChRank, sizeof(int32_t), n) ||
      !check_counts(IndexSectionKind::kChUpOffsets, sizeof(int64_t), n + 1)) {
    return Status::IoError("corrupted road index file (section counts): " +
                           path);
  }

  // Materialize the graph (its CSR adjacency must be rebuilt regardless).
  auto copy_array = [&](IndexSectionKind kind, auto* out) {
    const IndexSectionEntry& entry = *section(kind);
    out->resize(entry.count);
    if (entry.bytes > 0) {
      std::memcpy(out->data(), base + entry.offset, entry.bytes);
    }
  };
  std::vector<Point> points;
  std::vector<VertexId> edge_u, edge_v;
  std::vector<double> edge_w;
  copy_array(IndexSectionKind::kPoints, &points);
  copy_array(IndexSectionKind::kEdgeU, &edge_u);
  copy_array(IndexSectionKind::kEdgeV, &edge_v);
  copy_array(IndexSectionKind::kEdgeW, &edge_w);
  for (int64_t e = 0; e < m; ++e) {
    if (edge_u[e] < 0 || edge_u[e] >= n || edge_v[e] < 0 || edge_v[e] >= n ||
        edge_u[e] == edge_v[e]) {
      return Status::IoError("corrupted road index file (edge endpoints): " +
                             path);
    }
  }
  auto payload = std::make_shared<LoadedIndexPayload>();
  payload->graph = std::make_shared<RoadNetwork>(RoadNetwork::FromParts(
      std::move(points), std::move(edge_u), std::move(edge_v),
      std::move(edge_w)));
  if (RoadNetworkFingerprint(*payload->graph) != meta.graph_fingerprint) {
    return Status::IoError("corrupted road index file (graph fingerprint): " +
                           path);
  }

  // The hierarchy's arrays alias the mapping — move it into the payload
  // AFTER the last use of `base` derived pointers is re-derived below.
  const IndexSectionEntry& rank_entry = *section(IndexSectionKind::kChRank);
  const IndexSectionEntry& offs_entry =
      *section(IndexSectionKind::kChUpOffsets);
  const IndexSectionEntry& arcs_entry = *section(IndexSectionKind::kChUpArcs);
  if (arcs_entry.bytes !=
      arcs_entry.count * sizeof(ContractionHierarchy::UpArc)) {
    return Status::IoError("corrupted road index file (section counts): " +
                           path);
  }
  payload->file = std::move(file);
  const uint8_t* mapped = payload->file.data();
  const std::span<const int32_t> rank(
      reinterpret_cast<const int32_t*>(mapped + rank_entry.offset),
      static_cast<size_t>(rank_entry.count));
  const std::span<const int64_t> up_offsets(
      reinterpret_cast<const int64_t*>(mapped + offs_entry.offset),
      static_cast<size_t>(offs_entry.count));
  const std::span<const ContractionHierarchy::UpArc> up_arcs(
      reinterpret_cast<const ContractionHierarchy::UpArc*>(mapped +
                                                           arcs_entry.offset),
      static_cast<size_t>(arcs_entry.count));
  if (n > 0 &&
      (up_offsets[0] != 0 ||
       up_offsets[static_cast<size_t>(n)] !=
           static_cast<int64_t>(arcs_entry.count))) {
    return Status::IoError("corrupted road index file (CSR offsets): " + path);
  }

  ChOptions options;
  options.witness_hop_limit = meta.witness_hop_limit;
  options.witness_settle_limit = meta.witness_settle_limit;
  RoadIndexBundle bundle;
  bundle.graph = payload->graph;
  bundle.ch = std::make_shared<ContractionHierarchy>(
      ContractionHierarchy::AdoptStorage(
          payload->graph.get(), options, rank, up_offsets, up_arcs,
          static_cast<int>(meta.num_shortcuts), payload));
  return bundle;
}

}  // namespace gpssn
