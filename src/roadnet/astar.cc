#include "roadnet/astar.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace gpssn {

AStarEngine::AStarEngine(const RoadNetwork* graph) : graph_(graph) {
  GPSSN_CHECK(graph != nullptr);
  g_.resize(graph->num_vertices(), kInfDistance);
  parent_.resize(graph->num_vertices(), kInvalidVertex);
  stamp_.resize(graph->num_vertices(), 0);
  settled_stamp_.resize(graph->num_vertices(), 0);
  // The Euclidean heuristic is admissible only when every edge weight is at
  // least the segment's Euclidean length. Graphs with, e.g., travel-time
  // weights fall back to a zero heuristic (plain uniform-cost search) and
  // stay exact.
  heuristic_enabled_ = true;
  for (EdgeId e = 0; e < graph->num_edges(); ++e) {
    const double len = EuclideanDistance(graph->vertex_point(graph->edge_u(e)),
                                         graph->vertex_point(graph->edge_v(e)));
    if (graph->edge_weight(e) < len - 1e-9) {
      heuristic_enabled_ = false;
      break;
    }
  }
}

void AStarEngine::Reset() {
  ++generation_;
  if (generation_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    std::fill(settled_stamp_.begin(), settled_stamp_.end(), 0);
    generation_ = 1;
  }
  heap_.clear();
  last_settled_ = 0;
}

double AStarEngine::VertexToVertex(VertexId source, VertexId target) {
  GPSSN_CHECK(source >= 0 && source < graph_->num_vertices());
  GPSSN_CHECK(target >= 0 && target < graph_->num_vertices());
  Reset();
  const Point goal = graph_->vertex_point(target);
  auto heuristic = [&](VertexId v) {
    return heuristic_enabled_
               ? EuclideanDistance(graph_->vertex_point(v), goal)
               : 0.0;
  };
  g_[source] = 0.0;
  parent_[source] = kInvalidVertex;
  stamp_[source] = generation_;
  heap_.push_back({heuristic(source), source});
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater());
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    const VertexId v = top.v;
    if (settled_stamp_[v] == generation_) continue;
    settled_stamp_[v] = generation_;
    ++last_settled_;
    if (v == target) return g_[v];
    for (const RoadArc& arc : graph_->Neighbors(v)) {
      const double ng = g_[v] + arc.weight;
      if (stamp_[arc.to] != generation_ || ng < g_[arc.to]) {
        g_[arc.to] = ng;
        parent_[arc.to] = v;
        stamp_[arc.to] = generation_;
        heap_.push_back({ng + heuristic(arc.to), arc.to});
        std::push_heap(heap_.begin(), heap_.end(), HeapGreater());
      }
    }
  }
  return kInfDistance;
}

double AStarEngine::PositionToPosition(const EdgePosition& a,
                                       const EdgePosition& b) {
  const double direct = SameEdgeDistance(*graph_, a, b);
  // Via-network route: try all four endpoint combinations. Each A* run is
  // goal-directed, so four runs still beat one full Dijkstra on real maps.
  double best = direct;
  for (VertexId sa : {graph_->edge_u(a.edge), graph_->edge_v(a.edge)}) {
    for (VertexId tb : {graph_->edge_u(b.edge), graph_->edge_v(b.edge)}) {
      const double mid = VertexToVertex(sa, tb);
      if (mid < kInfDistance) {
        best = std::min(best,
                        graph_->OffsetTo(a, sa) + mid + graph_->OffsetTo(b, tb));
      }
    }
  }
  return best;
}

RouteResult AStarEngine::Route(VertexId source, VertexId target) {
  RouteResult result;
  result.distance = VertexToVertex(source, target);
  if (!result.reachable()) return result;
  for (VertexId v = target; v != kInvalidVertex; v = parent_[v]) {
    result.path.push_back(v);
    if (v == source) break;
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

BidirectionalDijkstra::BidirectionalDijkstra(const RoadNetwork* graph)
    : graph_(graph) {
  GPSSN_CHECK(graph != nullptr);
  for (int side = 0; side < 2; ++side) {
    dist_[side].resize(graph->num_vertices(), kInfDistance);
    stamp_[side].resize(graph->num_vertices(), 0);
    settled_stamp_[side].resize(graph->num_vertices(), 0);
  }
}

void BidirectionalDijkstra::Reset() {
  ++generation_;
  if (generation_ == 0) {
    for (int side = 0; side < 2; ++side) {
      std::fill(stamp_[side].begin(), stamp_[side].end(), 0);
      std::fill(settled_stamp_[side].begin(), settled_stamp_[side].end(), 0);
    }
    generation_ = 1;
  }
  heap_[0].clear();
  heap_[1].clear();
  last_settled_ = 0;
}

double BidirectionalDijkstra::VertexToVertex(VertexId source, VertexId target) {
  GPSSN_CHECK(source >= 0 && source < graph_->num_vertices());
  GPSSN_CHECK(target >= 0 && target < graph_->num_vertices());
  if (source == target) return 0.0;
  Reset();
  auto greater = [](const std::pair<double, VertexId>& a,
                    const std::pair<double, VertexId>& b) {
    return a.first > b.first;
  };
  auto relax = [&](int side, VertexId v, double d) {
    if (stamp_[side][v] == generation_ && dist_[side][v] <= d) return;
    dist_[side][v] = d;
    stamp_[side][v] = generation_;
    heap_[side].emplace_back(d, v);
    std::push_heap(heap_[side].begin(), heap_[side].end(), greater);
  };
  relax(0, source, 0.0);
  relax(1, target, 0.0);

  double best = kInfDistance;
  // Standard termination: stop when the sum of both frontiers' minimum keys
  // reaches the best meeting distance found so far.
  while (!heap_[0].empty() && !heap_[1].empty()) {
    if (heap_[0].front().first + heap_[1].front().first >= best) break;
    // Expand the side with the smaller frontier key.
    const int side = heap_[0].front().first <= heap_[1].front().first ? 0 : 1;
    std::pop_heap(heap_[side].begin(), heap_[side].end(), greater);
    const auto [d, v] = heap_[side].back();
    heap_[side].pop_back();
    if (settled_stamp_[side][v] == generation_) continue;
    settled_stamp_[side][v] = generation_;
    ++last_settled_;
    const int other = 1 - side;
    if (stamp_[other][v] == generation_) {
      best = std::min(best, d + dist_[other][v]);
    }
    for (const RoadArc& arc : graph_->Neighbors(v)) {
      relax(side, arc.to, d + arc.weight);
      // Meeting through a relaxed (not necessarily settled) vertex.
      if (stamp_[other][arc.to] == generation_) {
        best = std::min(best, d + arc.weight + dist_[other][arc.to]);
      }
    }
  }
  return best;
}

}  // namespace gpssn
