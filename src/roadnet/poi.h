// Copyright 2026 The gpssn Authors.
//
// Points of interest (Definition 2): facilities located on road edges,
// each with a 2D location and a set of describing keywords.

#ifndef GPSSN_ROADNET_POI_H_
#define GPSSN_ROADNET_POI_H_

#include <vector>

#include "geom/point.h"
#include "roadnet/types.h"

namespace gpssn {

/// One POI object o_i: id, a position on a road edge, the derived 2D
/// location, and the keyword set o_i.K (sorted keyword ids).
struct Poi {
  PoiId id = kInvalidPoi;
  EdgePosition position;
  Point location;
  std::vector<KeywordId> keywords;  // Sorted, unique.
};

}  // namespace gpssn

#endif  // GPSSN_ROADNET_POI_H_
