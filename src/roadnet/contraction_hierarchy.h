// Copyright 2026 The gpssn Authors.
//
// Contraction hierarchies (Geisberger et al. 2008) over the road network:
// an exact distance oracle that preprocesses the graph by contracting
// vertices in importance order (inserting shortcuts that preserve shortest
// paths) and answers point-to-point queries with a bidirectional upward
// search touching only a tiny fraction of the graph.
//
// This is the substrate a production deployment of GP-SSN would use for the
// exact maxdist evaluations of the refinement phase on continental road
// networks; the library's default Dijkstra engine remains the reference
// implementation (and the two are equivalence-tested against each other).

#ifndef GPSSN_ROADNET_CONTRACTION_HIERARCHY_H_
#define GPSSN_ROADNET_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_graph.h"
#include "roadnet/shortest_path.h"

namespace gpssn {

struct ChOptions {
  /// Hop limit of the witness searches during contraction (higher = fewer
  /// shortcuts, slower preprocessing).
  int witness_hop_limit = 8;
  /// Settled-vertex budget per witness search.
  int witness_settle_limit = 64;
};

/// Preprocessed hierarchy. Build once (seconds for 10^5-vertex graphs),
/// then query from any number of ChQuery engines.
class ContractionHierarchy {
 public:
  ContractionHierarchy() : ContractionHierarchy(ChOptions{}) {}
  explicit ContractionHierarchy(ChOptions options);

  /// Preprocesses `graph` (kept by pointer; must outlive the hierarchy).
  void Build(const RoadNetwork* graph);

  bool built() const { return graph_ != nullptr; }
  const RoadNetwork& graph() const { return *graph_; }

  /// Contraction rank of a vertex (higher = more important).
  int rank(VertexId v) const { return rank_[v]; }

  /// Number of shortcut edges added during preprocessing.
  int num_shortcuts() const { return num_shortcuts_; }

  /// Upward adjacency (arcs from v to higher-ranked vertices, original or
  /// shortcut), used by the query engine.
  struct UpArc {
    VertexId to;
    double weight;
  };
  const std::vector<UpArc>& up(VertexId v) const { return up_[v]; }

 private:
  friend class ChQuery;

  ChOptions options_;
  const RoadNetwork* graph_ = nullptr;
  std::vector<int> rank_;
  std::vector<std::vector<UpArc>> up_;
  int num_shortcuts_ = 0;
};

/// Query engine over a built hierarchy. Reusable arenas; not thread-safe
/// (one engine per thread).
class ChQuery {
 public:
  explicit ChQuery(const ContractionHierarchy* ch);

  /// Exact dist_RN(s, t) (kInfDistance when disconnected).
  double VertexToVertex(VertexId s, VertexId t);

  /// Exact distance between positions on edges (same-edge shortcut
  /// included).
  double PositionToPosition(const EdgePosition& a, const EdgePosition& b);

  /// Vertices settled by the last query (both directions).
  size_t last_settled() const { return last_settled_; }

 private:
  const ContractionHierarchy* ch_;
  // Two-sided upward Dijkstra state.
  std::vector<double> dist_[2];
  std::vector<uint32_t> stamp_[2];
  uint32_t generation_ = 0;
  std::vector<std::pair<double, VertexId>> heap_[2];
  size_t last_settled_ = 0;
};

}  // namespace gpssn

#endif  // GPSSN_ROADNET_CONTRACTION_HIERARCHY_H_
