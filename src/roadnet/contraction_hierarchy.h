// Copyright 2026 The gpssn Authors.
//
// Contraction hierarchies (Geisberger et al. 2008) over the road network:
// an exact distance oracle that preprocesses the graph by contracting
// vertices in importance order (inserting shortcuts that preserve shortest
// paths) and answers point-to-point queries with a bidirectional upward
// search touching only a tiny fraction of the graph.
//
// Construction is ROUND-BASED: each round recomputes priorities for dirty
// vertices, selects the priority-local-minima (an independent set — no two
// selected vertices are adjacent), simulates every selected contraction
// with witness searches that treat ALL round-selected vertices as removed,
// and applies the results serially in vertex-id order. Because selection
// and simulation are pure functions of the round-start graph, the rounds
// are data-parallel: with a TaskScheduler in ChOptions the priority /
// selection / simulation phases fan out as morsel chunks, and the built
// hierarchy is BITWISE IDENTICAL at every worker count (the serial path
// runs the same rounds on one lane).
//
// Witness searches skipping the whole selected set is what makes
// simultaneous contraction sound: a witness path found this round avoids
// every vertex removed this round, so it survives in the remaining graph
// and the usual one-at-a-time distance-preservation argument applies
// unchanged (skipping extra vertices can only add redundant shortcuts,
// never lose a needed one).
//
// The preprocessed arrays (rank permutation + CSR upward graph) live
// behind spans over a shared payload, so a hierarchy can be backed either
// by vectors built in-process or by a read-only file mapping
// (roadnet/index_io.h) with zero copies. Shortcut arcs record their
// contracted middle vertex, which lets the range engine (roadnet/
// ch_range.h) unpack any upward path into its original edges and
// reproduce bounded Dijkstra's exact floating-point label accumulation.
//
// This is the substrate a production deployment of GP-SSN uses for the
// exact maxdist evaluations of the refinement phase on continental road
// networks; the library's default Dijkstra engine remains the reference
// implementation (and the two are equivalence-tested against each other).

#ifndef GPSSN_ROADNET_CONTRACTION_HIERARCHY_H_
#define GPSSN_ROADNET_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "roadnet/road_graph.h"
#include "roadnet/shortest_path.h"

namespace gpssn {

class TaskScheduler;

struct ChOptions {
  /// Hop limit of the witness searches during contraction (higher = fewer
  /// shortcuts, slower preprocessing).
  int witness_hop_limit = 8;
  /// Settled-vertex budget per witness search.
  int witness_settle_limit = 64;
  /// Optional scheduler for morselized parallel construction. nullptr
  /// builds serially. The hierarchy is bitwise identical either way.
  TaskScheduler* scheduler = nullptr;
  /// Cap on concurrent build lanes (0 = scheduler workers + caller).
  int build_max_lanes = 0;
  /// CH backend: also build the ball/range index (roadnet/ch_range.h) so
  /// B(o, r) queries run on the hierarchy instead of bounded Dijkstra.
  bool build_ball_index = true;
  /// Largest ball radius the range index serves (kInfDistance = any
  /// radius). Bounding it shrinks the index's backward search spaces.
  double ball_index_max_radius = kInfDistance;
};

/// Preprocessed hierarchy. Build once (seconds for 10^5-vertex graphs),
/// then query from any number of ChQuery engines. Copyable: copies share
/// the (immutable) preprocessed payload.
class ContractionHierarchy {
 public:
  /// Upward arc: original road edge (middle == kInvalidVertex) or shortcut
  /// bypassing its contracted `middle` vertex. Fixed-width and trivially
  /// copyable — this struct is stored verbatim in index files and read
  /// back through mmap (see roadnet/index_io.h).
  // gpssn-serialized(bytes=16)
  struct UpArc {
    VertexId to = kInvalidVertex;
    VertexId middle = kInvalidVertex;
    double weight = 0.0;
  };

  ContractionHierarchy() : ContractionHierarchy(ChOptions{}) {}
  explicit ContractionHierarchy(ChOptions options);

  /// Preprocesses `graph` (kept by pointer; must outlive the hierarchy).
  void Build(const RoadNetwork* graph);

  /// Internal (index_io): wraps already-preprocessed storage, e.g. spans
  /// into a file mapping. `payload` keeps the spans' backing memory alive;
  /// `graph` must outlive the hierarchy.
  static ContractionHierarchy AdoptStorage(
      const RoadNetwork* graph, const ChOptions& options,
      std::span<const int32_t> rank, std::span<const int64_t> up_offsets,
      std::span<const UpArc> up_arcs, int num_shortcuts,
      std::shared_ptr<const void> payload);

  bool built() const { return graph_ != nullptr; }
  const RoadNetwork& graph() const { return *graph_; }
  const ChOptions& options() const { return options_; }

  /// Contraction rank of a vertex (higher = more important).
  int rank(VertexId v) const { return rank_[v]; }

  /// Number of shortcut edges added during preprocessing.
  int num_shortcuts() const { return num_shortcuts_; }

  /// Number of contraction rounds the build ran (0 for adopted storage).
  int build_rounds() const { return build_rounds_; }

  /// Upward adjacency (arcs from v to higher-ranked vertices, original or
  /// shortcut), sorted by target id; used by the query engines.
  std::span<const UpArc> up(VertexId v) const {
    return up_arcs_.subspan(
        static_cast<size_t>(up_offsets_[v]),
        static_cast<size_t>(up_offsets_[v + 1] - up_offsets_[v]));
  }

  /// Flat storage views (serialization + arc-indexed traversals).
  std::span<const int32_t> ranks() const { return rank_; }
  std::span<const int64_t> up_offsets() const { return up_offsets_; }
  std::span<const UpArc> up_arcs() const { return up_arcs_; }

  /// The upward arc connecting `from` and `to`, where rank(from) <
  /// rank(to). Every shortcut's two halves are present by construction, so
  /// unpacking can always resolve them.
  const UpArc& UpArcBetween(VertexId from, VertexId to) const;

 private:
  friend class ChQuery;

  struct OwnedStorage {
    std::vector<int32_t> rank;
    std::vector<int64_t> up_offsets;
    std::vector<UpArc> up_arcs;
  };
  void AdoptOwned(OwnedStorage owned);

  ChOptions options_;
  const RoadNetwork* graph_ = nullptr;
  std::span<const int32_t> rank_;
  std::span<const int64_t> up_offsets_;
  std::span<const UpArc> up_arcs_;
  // Keeps the span targets alive: OwnedStorage for in-process builds, a
  // MappedFile for index files loaded by roadnet/index_io.
  std::shared_ptr<const void> payload_;
  int num_shortcuts_ = 0;
  int build_rounds_ = 0;
};

static_assert(std::is_trivially_copyable_v<ContractionHierarchy::UpArc>,
              "UpArc is stored verbatim in index files");
static_assert(sizeof(ContractionHierarchy::UpArc) == 16,
              "UpArc file layout is fixed at 16 bytes");

/// Unpacks (possibly shortcut) upward arcs into their original road edges,
/// accumulating edge weights one at a time in travel order — the exact
/// floating-point association bounded Dijkstra uses when it relaxes the
/// same path edge by edge. Reusable scratch; one per thread.
class ChPathUnpacker {
 public:
  explicit ChPathUnpacker(const ContractionHierarchy* ch) : ch_(ch) {}

  /// Returns `acc` + the original-edge weights of the arc between `from`
  /// and `to`, added left-to-right starting from the `from` side.
  double Accumulate(VertexId from, VertexId to,
                    const ContractionHierarchy::UpArc& arc, double acc);

 private:
  struct Frame {
    VertexId from;
    VertexId to;
    const ContractionHierarchy::UpArc* arc;
  };
  const ContractionHierarchy* ch_;
  std::vector<Frame> stack_;
};

/// Query engine over a built hierarchy. Reusable arenas; not thread-safe
/// (one engine per thread).
class ChQuery {
 public:
  explicit ChQuery(const ContractionHierarchy* ch);

  /// Exact dist_RN(s, t) (kInfDistance when disconnected).
  double VertexToVertex(VertexId s, VertexId t);

  /// Exact distance between positions on edges (same-edge shortcut
  /// included).
  double PositionToPosition(const EdgePosition& a, const EdgePosition& b);

  /// Vertices settled by the last query (both directions).
  size_t last_settled() const { return last_settled_; }

 private:
  const ContractionHierarchy* ch_;
  // Two-sided upward Dijkstra state.
  std::vector<double> dist_[2];
  std::vector<uint32_t> stamp_[2];
  uint32_t generation_ = 0;
  std::vector<std::pair<double, VertexId>> heap_[2];
  size_t last_settled_ = 0;
};

}  // namespace gpssn

#endif  // GPSSN_ROADNET_CONTRACTION_HIERARCHY_H_
