// Copyright 2026 The gpssn Authors.
//
// Road-network pivot distance tables (Section 4.1): h road-network vertices
// rp_1..rp_h are chosen as pivots and the exact dist_RN from every vertex to
// every pivot is precomputed offline. At query time the triangle inequality
// turns these tables into cheap lower/upper bounds of dist_RN between
// arbitrary positions (Eqs. 16-17 and the leaf-entry bounds of Eqs. 7-8).

#ifndef GPSSN_ROADNET_ROAD_PIVOTS_H_
#define GPSSN_ROADNET_ROAD_PIVOTS_H_

#include <vector>

#include "roadnet/road_graph.h"
#include "roadnet/shortest_path.h"
#include "roadnet/types.h"

namespace gpssn {

/// Precomputed exact distances from every road vertex to each pivot.
class RoadPivotTable {
 public:
  RoadPivotTable() = default;

  /// Runs one full Dijkstra per pivot. Pivot ids must be valid vertices.
  RoadPivotTable(const RoadNetwork& graph, std::vector<VertexId> pivots);

  int num_pivots() const { return static_cast<int>(pivots_.size()); }
  const std::vector<VertexId>& pivots() const { return pivots_; }

  /// Exact dist_RN(v, rp_k).
  double VertexToPivot(VertexId v, int k) const {
    return tables_[k][v];
  }

  /// Exact dist_RN(pos, rp_k) for a position on an edge (the cheaper of the
  /// two endpoint routes).
  double PositionToPivot(const EdgePosition& pos, int k) const;

  /// Triangle-inequality lower bound of dist_RN(a, b):
  ///   max_k | d(a, rp_k) − d(b, rp_k) |.
  double LowerBound(const std::vector<double>& a_to_pivots,
                    const std::vector<double>& b_to_pivots) const;

  /// Triangle-inequality upper bound of dist_RN(a, b):
  ///   min_k ( d(a, rp_k) + d(b, rp_k) ).
  double UpperBound(const std::vector<double>& a_to_pivots,
                    const std::vector<double>& b_to_pivots) const;

  /// All pivot distances of a position, as a dense vector of length h.
  std::vector<double> PositionDistances(const EdgePosition& pos) const;

 private:
  const RoadNetwork* graph_ = nullptr;
  std::vector<VertexId> pivots_;
  // tables_[k][v] = dist_RN(v, pivots_[k]).
  std::vector<std::vector<double>> tables_;
};

/// Picks `h` distinct random vertices as pivots (the baseline selection that
/// Algorithm 1's local search improves on; see index/pivot_select.h).
std::vector<VertexId> RandomRoadPivots(const RoadNetwork& graph, int h,
                                       uint64_t seed);

}  // namespace gpssn

#endif  // GPSSN_ROADNET_ROAD_PIVOTS_H_
