// Copyright 2026 The gpssn Authors.
//
// Pluggable exact-distance backends for the GP-SSN query path. The
// refinement phase's hottest kernel is "distances from one user to the
// members of every surviving POI ball" (the maxdist_RN evaluations of
// Definition 5); this header abstracts it behind a DistanceEngine so the
// processor can run either
//   * the reference bounded Dijkstra (bit-exact seed behaviour, optimal
//     for radius-bounded local searches), or
//   * a contraction-hierarchy bucket engine: one backward upward search
//     per target POI filling per-vertex buckets, then ONE forward upward
//     search per user — so a user's distances to all needed ball members
//     cost O(upward search space) instead of a bounded Dijkstra over the
//     whole neighbourhood. On large road networks the upward search space
//     is orders of magnitude smaller than the Dijkstra frontier.
//
// Both engines return IDENTICAL results (up to floating-point association
// in shortcut weights, < 1e-9 on realistic weights); the differential test
// suite asserts answer-level equality across backends.

#ifndef GPSSN_ROADNET_DISTANCE_BACKEND_H_
#define GPSSN_ROADNET_DISTANCE_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "roadnet/contraction_hierarchy.h"
#include "roadnet/poi.h"
#include "roadnet/road_graph.h"
#include "roadnet/shortest_path.h"

namespace gpssn {

enum class DistanceBackendKind {
  kDijkstra,
  kContractionHierarchy,
};

/// Per-thread exact-distance engine. Owns reusable arenas; not
/// thread-safe — create one engine per thread (DistanceBackend::CreateEngine
/// is cheap relative to preprocessing).
class DistanceEngine {
 public:
  virtual ~DistanceEngine() = default;

  virtual DistanceBackendKind kind() const = 0;
  virtual const char* name() const = 0;

  /// Exact dist_RN between two edge positions, with early termination:
  /// returns kInfDistance when the distance exceeds `bound`.
  virtual double PositionToPosition(const EdgePosition& a,
                                    const EdgePosition& b, double bound) = 0;

  /// All POIs with dist_RN(center, poi) <= radius, with exact distances.
  /// The Dijkstra backend answers with the reference bounded search; the
  /// CH backend answers from its ball/range index (bit-exact against the
  /// reference) whenever the radius is covered, falling back to bounded
  /// Dijkstra otherwise.
  virtual std::vector<std::pair<PoiId, double>> BallWithDistances(
      const EdgePosition& center, double radius) = 0;

  /// True when BallWithDistances(center, radius) would be answered by the
  /// CH range index rather than bounded Dijkstra (stats introspection).
  virtual bool BallUsesRangeEngine(double radius) const {
    (void)radius;
    return false;
  }

  /// Registers the target positions for subsequent SourceToTargets calls.
  /// The CH engine runs one backward upward search per target here,
  /// bucketing (target, distance) entries at every reached vertex; the
  /// Dijkstra engine just stores the list. Targets stay registered until
  /// the next SetTargets call.
  virtual void SetTargets(std::span<const EdgePosition> targets) = 0;

  virtual size_t num_targets() const = 0;

  /// Exact distances from `source` to every registered target, in one
  /// forward search. out[i] receives dist_RN(source, targets[i]) when it
  /// is <= bound, kInfDistance otherwise. `out` must have room for
  /// num_targets() entries.
  virtual void SourceToTargets(const EdgePosition& source, double bound,
                               double* out) = 0;
};

/// Immutable, thread-safe engine factory bound to one road network and POI
/// set (both kept by pointer; must outlive the backend). Share one backend
/// across all query processors / batch-executor workers; hand each thread
/// its own engine. Engines may reference state owned by their backend (the
/// CH backend owns the hierarchy) — an engine must not outlive the backend
/// that created it.
class DistanceBackend {
 public:
  virtual ~DistanceBackend() = default;

  virtual DistanceBackendKind kind() const = 0;
  virtual const char* name() const = 0;
  virtual std::unique_ptr<DistanceEngine> CreateEngine() const = 0;

  /// Generation counter bumped by NotifyPoisMutated. Engines are bound to
  /// the generation they were created under; a holder that caches an
  /// engine must recreate it when the backend's generation moves on.
  uint64_t poi_generation() const {
    return poi_generation_.load(std::memory_order_acquire);
  }

  /// Must be called (with queries quiesced) after POIs are appended to the
  /// backing vector. The base bumps the generation; the CH backend first
  /// folds the new POIs into its ball/range index so freshly created
  /// engines see them.
  virtual void NotifyPoisMutated() {
    poi_generation_.fetch_add(1, std::memory_order_release);
  }

  /// True when the preprocessed index was loaded from an index file
  /// rather than built in-process (see MakeChBackend's index_path).
  virtual bool loaded_from_disk() const { return false; }

 private:
  std::atomic<uint64_t> poi_generation_{0};
};

/// The reference backend: bounded Dijkstra with reusable arenas. Engines
/// reproduce the seed query path bit-exactly.
std::unique_ptr<DistanceBackend> MakeDijkstraBackend(
    const RoadNetwork* graph, const std::vector<Poi>* pois);

/// The CH-accelerated backend. Builds a ContractionHierarchy once
/// (seconds for 10^5-vertex graphs; pass a scheduler in `options` for the
/// morselized parallel build); engines answer SourceToTargets with the
/// bucket many-to-many algorithm, PositionToPosition with the
/// bidirectional upward search, and BallWithDistances from the CH range
/// index (when enabled and the radius is covered).
///
/// When `index_path` is non-empty, the backend tries to mmap a previously
/// saved graph+CH index from that file (validating its checksums and that
/// its fingerprint matches `graph`); on any mismatch it rebuilds from
/// `graph` and best-effort saves the result back to `index_path`. The
/// ball index is always built in-process (it depends on the POI set).
std::unique_ptr<DistanceBackend> MakeChBackend(
    const RoadNetwork* graph, const std::vector<Poi>* pois,
    const ChOptions& options = {}, const std::string& index_path = {});

}  // namespace gpssn

#endif  // GPSSN_ROADNET_DISTANCE_BACKEND_H_
