#include "roadnet/road_generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/macros.h"
#include "geom/point.h"

namespace gpssn {

namespace {

// Uniform grid over the data space for nearest-neighbor candidate lookup.
class PointGrid {
 public:
  PointGrid(const std::vector<Point>& points, double space, int cells)
      : points_(points), space_(space), cells_(cells), buckets_(cells * cells) {
    for (size_t i = 0; i < points.size(); ++i) {
      buckets_[CellOf(points[i])].push_back(static_cast<int>(i));
    }
  }

  // k nearest neighbors of point i (excluding i), by expanding grid rings.
  std::vector<int> Knn(int i, int k) const {
    const Point& p = points_[i];
    const int cx = ClampCell(p.x), cy = ClampCell(p.y);
    std::vector<std::pair<double, int>> found;
    for (int ring = 0; ring < cells_; ++ring) {
      const int lo_x = std::max(0, cx - ring), hi_x = std::min(cells_ - 1, cx + ring);
      const int lo_y = std::max(0, cy - ring), hi_y = std::min(cells_ - 1, cy + ring);
      for (int y = lo_y; y <= hi_y; ++y) {
        for (int x = lo_x; x <= hi_x; ++x) {
          // Only the boundary of the ring is new.
          if (ring > 0 && x > lo_x && x < hi_x && y > lo_y && y < hi_y) continue;
          for (int j : buckets_[y * cells_ + x]) {
            if (j == i) continue;
            found.emplace_back(SquaredDistance(p, points_[j]), j);
          }
        }
      }
      // Stop once we have enough candidates and the next ring cannot
      // contain anything closer than the current k-th best.
      if (static_cast<int>(found.size()) >= k) {
        std::nth_element(found.begin(), found.begin() + (k - 1), found.end());
        const double kth = found[k - 1].first;
        const double ring_guard = ring * (space_ / cells_);
        if (kth <= ring_guard * ring_guard) break;
      }
      if (lo_x == 0 && lo_y == 0 && hi_x == cells_ - 1 && hi_y == cells_ - 1) {
        break;  // Whole grid scanned.
      }
    }
    const int take = std::min<int>(k, static_cast<int>(found.size()));
    std::partial_sort(found.begin(), found.begin() + take, found.end());
    std::vector<int> out(take);
    for (int t = 0; t < take; ++t) out[t] = found[t].second;
    return out;
  }

 private:
  int ClampCell(double v) const {
    int c = static_cast<int>(v / space_ * cells_);
    return std::clamp(c, 0, cells_ - 1);
  }
  int CellOf(const Point& p) const {
    return ClampCell(p.y) * cells_ + ClampCell(p.x);
  }

  const std::vector<Point>& points_;
  double space_;
  int cells_;
  std::vector<std::vector<int>> buckets_;
};

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

RoadNetwork GenerateRoadNetwork(const RoadGenOptions& options) {
  GPSSN_CHECK(options.num_vertices >= 2);
  GPSSN_CHECK(options.avg_degree > 0.0);
  Rng rng(options.seed);
  const int n = options.num_vertices;

  std::vector<Point> points(n);
  for (Point& p : points) {
    p = Point{rng.UniformDouble(0.0, options.space_size),
              rng.UniformDouble(0.0, options.space_size)};
  }

  const int cells = std::max(1, static_cast<int>(std::sqrt(n / 2.0)));
  PointGrid grid(points, options.space_size, cells);

  // Candidate edges: union of kNN links, sorted by length.
  struct Candidate {
    double len;
    int a, b;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(static_cast<size_t>(n) * options.knn);
  for (int i = 0; i < n; ++i) {
    for (int j : grid.Knn(i, options.knn)) {
      if (i < j) {
        candidates.push_back(
            Candidate{EuclideanDistance(points[i], points[j]), i, j});
      } else {
        candidates.push_back(
            Candidate{EuclideanDistance(points[j], points[i]), j, i});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(), [](const auto& x, const auto& y) {
    if (x.len != y.len) return x.len < y.len;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const auto& x, const auto& y) {
                                 return x.a == y.a && x.b == y.b;
                               }),
                   candidates.end());

  RoadNetworkBuilder builder;
  for (const Point& p : points) builder.AddVertex(p);

  // Pass 1 (Kruskal): spanning forest over the candidate set — short edges
  // first, so the skeleton looks like a road network, not a random graph.
  UnionFind uf(n);
  const int target_edges =
      std::max(n - 1, static_cast<int>(options.avg_degree * n / 2.0));
  int added = 0;
  for (const Candidate& c : candidates) {
    if (uf.Union(c.a, c.b)) {
      GPSSN_CHECK(builder.AddEdge(c.a, c.b).ok());
      ++added;
    }
  }

  // Pass 2: stitch any remaining components (kNN graph of a uniform point
  // set is almost always connected; this is a safety net). Link each
  // component's representative to its nearest vertex in another component.
  {
    std::vector<int> reps;
    for (int i = 0; i < n; ++i) {
      if (uf.Find(i) == i) reps.push_back(i);
    }
    for (size_t r = 1; r < reps.size(); ++r) {
      // Nearest vertex of the first component to this rep.
      int best = -1;
      double best_d = std::numeric_limits<double>::infinity();
      for (int i = 0; i < n; ++i) {
        if (uf.Find(i) == uf.Find(reps[r])) continue;
        const double d = SquaredDistance(points[reps[r]], points[i]);
        if (d < best_d) {
          best_d = d;
          best = i;
        }
      }
      if (best >= 0 && uf.Union(reps[r], best)) {
        GPSSN_CHECK(builder.AddEdge(reps[r], best).ok());
        ++added;
      }
    }
  }

  // Pass 3: densify with the shortest unused candidates until the target
  // edge count (≈ avg_degree · n / 2) is reached.
  for (const Candidate& c : candidates) {
    if (added >= target_edges) break;
    if (builder.HasEdge(c.a, c.b)) continue;
    GPSSN_CHECK(builder.AddEdge(c.a, c.b).ok());
    ++added;
  }

  return builder.Build();
}

RoadNetwork GenerateGridRoadNetwork(const GridRoadOptions& options) {
  GPSSN_CHECK(options.rows >= 2 && options.cols >= 2);
  GPSSN_CHECK(options.spacing > 0.0);
  GPSSN_CHECK(options.knockout_fraction >= 0.0 &&
              options.knockout_fraction < 1.0);
  Rng rng(options.seed);
  RoadNetworkBuilder builder;
  auto vertex_at = [&](int r, int c) { return r * options.cols + c; };
  for (int r = 0; r < options.rows; ++r) {
    for (int c = 0; c < options.cols; ++c) {
      builder.AddVertex({c * options.spacing, r * options.spacing});
    }
  }
  // Candidate street segments.
  struct Segment {
    VertexId a, b;
  };
  std::vector<Segment> segments;
  for (int r = 0; r < options.rows; ++r) {
    for (int c = 0; c < options.cols; ++c) {
      if (c + 1 < options.cols) {
        segments.push_back({vertex_at(r, c), vertex_at(r, c + 1)});
      }
      if (r + 1 < options.rows) {
        segments.push_back({vertex_at(r, c), vertex_at(r + 1, c)});
      }
    }
  }
  rng.Shuffle(&segments);
  // Keep a spanning skeleton first so knockouts cannot disconnect the city.
  const int n = options.rows * options.cols;
  UnionFind uf(n);
  std::vector<Segment> optional;
  for (const Segment& s : segments) {
    if (uf.Union(s.a, s.b)) {
      GPSSN_CHECK(builder.AddEdge(s.a, s.b).ok());
    } else {
      optional.push_back(s);
    }
  }
  for (const Segment& s : optional) {
    if (rng.UniformDouble() >= options.knockout_fraction) {
      GPSSN_CHECK(builder.AddEdge(s.a, s.b).ok());
    }
  }
  return builder.Build();
}

}  // namespace gpssn
