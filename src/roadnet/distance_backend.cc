#include "roadnet/distance_backend.h"

#include <algorithm>
#include <cstdint>

#include "common/macros.h"
#include "roadnet/ch_range.h"
#include "roadnet/index_io.h"

namespace gpssn {

namespace {

// ---------------------------------------------------------------- Dijkstra

/// Reference engine: bounded Dijkstra + PoiLocator. SourceToTargets is one
/// bounded run from the source followed by per-target label reads — the
/// exact operation sequence the seed query path performed inline, so the
/// default backend is bit-exact with it.
class DijkstraDistanceEngine final : public DistanceEngine {
 public:
  DijkstraDistanceEngine(const RoadNetwork* graph,
                         const std::vector<Poi>* pois)
      : graph_(graph), engine_(graph), locator_(graph, pois) {}

  DistanceBackendKind kind() const override {
    return DistanceBackendKind::kDijkstra;
  }
  const char* name() const override { return "dijkstra"; }

  double PositionToPosition(const EdgePosition& a, const EdgePosition& b,
                            double bound) override {
    return engine_.PositionToPosition(a, b, bound);
  }

  std::vector<std::pair<PoiId, double>> BallWithDistances(
      const EdgePosition& center, double radius) override {
    return locator_.BallWithDistances(center, radius, &engine_);
  }

  void SetTargets(std::span<const EdgePosition> targets) override {
    targets_.assign(targets.begin(), targets.end());
  }

  size_t num_targets() const override { return targets_.size(); }

  void SourceToTargets(const EdgePosition& source, double bound,
                       double* out) override {
    engine_.RunFromPosition(source, bound);
    for (size_t i = 0; i < targets_.size(); ++i) {
      double d = engine_.DistanceToPosition(targets_[i]);
      d = std::min(d, SameEdgeDistance(*graph_, source, targets_[i]));
      out[i] = d <= bound ? d : kInfDistance;
    }
  }

 private:
  const RoadNetwork* graph_;
  DijkstraEngine engine_;
  PoiLocator locator_;
  std::vector<EdgePosition> targets_;
};

class DijkstraBackend final : public DistanceBackend {
 public:
  DijkstraBackend(const RoadNetwork* graph, const std::vector<Poi>* pois)
      : graph_(graph), pois_(pois) {
    GPSSN_CHECK(graph != nullptr && pois != nullptr);
  }

  DistanceBackendKind kind() const override {
    return DistanceBackendKind::kDijkstra;
  }
  const char* name() const override { return "dijkstra"; }

  std::unique_ptr<DistanceEngine> CreateEngine() const override {
    return std::make_unique<DijkstraDistanceEngine>(graph_, pois_);
  }

 private:
  const RoadNetwork* graph_;
  const std::vector<Poi>* pois_;
};

// -------------------------------------------------------------- CH buckets

/// CH bucket many-to-many engine. SetTargets runs one upward Dijkstra per
/// target (seeding both endpoints of its edge) and records (target, dist)
/// pairs in a bucket at every settled vertex. SourceToTargets then runs a
/// single upward search from the source and, at each settled vertex v,
/// combines its label with v's bucket entries: because the hierarchy
/// preserves shortest paths, min over meeting vertices of
/// d_up(source, v) + d_up(target, v) is the exact road distance (the same
/// invariant ChQuery relies on — one forward frontier now amortizes over
/// ALL targets instead of paying one bidirectional query each).
class ChDistanceEngine final : public DistanceEngine {
 public:
  ChDistanceEngine(const ContractionHierarchy* ch,
                   const std::vector<Poi>* pois,
                   const ChBallIndex* ball_index)
      : ch_(ch),
        pois_(pois),
        graph_(&ch->graph()),
        dijkstra_(graph_),
        locator_(graph_, pois),
        p2p_(ch) {
    const int n = graph_->num_vertices();
    dist_.resize(n, kInfDistance);
    stamp_.resize(n, 0);
    buckets_.resize(n);
    if (ball_index != nullptr) {
      range_ = std::make_unique<ChRangeEngine>(ball_index);
      range_max_radius_ = ball_index->max_radius();
    }
  }

  DistanceBackendKind kind() const override {
    return DistanceBackendKind::kContractionHierarchy;
  }
  const char* name() const override { return "ch-bucket"; }

  double PositionToPosition(const EdgePosition& a, const EdgePosition& b,
                            double bound) override {
    const double d = p2p_.PositionToPosition(a, b);
    return d <= bound ? d : kInfDistance;
  }

  std::vector<std::pair<PoiId, double>> BallWithDistances(
      const EdgePosition& center, double radius) override {
    if (BallUsesRangeEngine(radius)) {
      return range_->BallWithDistances(center, radius, locator_, *pois_);
    }
    // No index (or radius beyond its bound): the reference bounded search.
    return locator_.BallWithDistances(center, radius, &dijkstra_);
  }

  bool BallUsesRangeEngine(double radius) const override {
    return range_ != nullptr && radius <= range_max_radius_;
  }

  void SetTargets(std::span<const EdgePosition> targets) override {
    // Clear the previous target set's buckets.
    for (VertexId v : bucketed_) buckets_[v].clear();
    bucketed_.clear();
    targets_.assign(targets.begin(), targets.end());
    for (size_t j = 0; j < targets_.size(); ++j) {
      const EdgePosition& t = targets_[j];
      const VertexId u = graph_->edge_u(t.edge);
      const VertexId v = graph_->edge_v(t.edge);
      UpwardSearch({{u, graph_->OffsetTo(t, u)}, {v, graph_->OffsetTo(t, v)}},
                   kInfDistance, [&](VertexId w, double d) {
                     if (buckets_[w].empty()) bucketed_.push_back(w);
                     buckets_[w].emplace_back(static_cast<int32_t>(j), d);
                   });
    }
  }

  size_t num_targets() const override { return targets_.size(); }

  void SourceToTargets(const EdgePosition& source, double bound,
                       double* out) override {
    // Same-edge shortcut: a path between positions on one edge need not
    // pass either endpoint.
    for (size_t j = 0; j < targets_.size(); ++j) {
      out[j] = SameEdgeDistance(*graph_, source, targets_[j]);
    }
    const VertexId u = graph_->edge_u(source.edge);
    const VertexId v = graph_->edge_v(source.edge);
    // Forward labels above `bound` cannot open a candidate <= bound
    // (bucket distances are nonnegative), so the search prunes at it.
    UpwardSearch(
        {{u, graph_->OffsetTo(source, u)}, {v, graph_->OffsetTo(source, v)}},
        bound, [&](VertexId w, double d) {
          for (const auto& [j, td] : buckets_[w]) {
            const double cand = d + td;
            if (cand < out[j]) out[j] = cand;
          }
        });
    for (size_t j = 0; j < targets_.size(); ++j) {
      if (out[j] > bound) out[j] = kInfDistance;
    }
  }

 private:
  /// Dijkstra over the upward graph from `seeds`, invoking `on_settled`
  /// with every vertex's final upward label. Labels above `bound` are
  /// neither settled nor relaxed.
  template <typename Fn>
  void UpwardSearch(std::initializer_list<std::pair<VertexId, double>> seeds,
                    double bound, Fn&& on_settled) {
    ++generation_;
    if (generation_ == 0) {  // Stamp wrap-around: hard reset.
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
    heap_.clear();
    auto greater = [](const std::pair<double, VertexId>& a,
                      const std::pair<double, VertexId>& b) {
      return a.first > b.first;
    };
    auto relax = [&](VertexId w, double d) {
      if (d > bound) return;
      if (stamp_[w] == generation_ && dist_[w] <= d) return;
      dist_[w] = d;
      stamp_[w] = generation_;
      heap_.emplace_back(d, w);
      std::push_heap(heap_.begin(), heap_.end(), greater);
    };
    for (const auto& [w, d] : seeds) relax(w, d);
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), greater);
      const auto [d, w] = heap_.back();
      heap_.pop_back();
      if (stamp_[w] != generation_ || d > dist_[w]) continue;  // Stale.
      on_settled(w, d);
      for (const auto& arc : ch_->up(w)) relax(arc.to, d + arc.weight);
    }
  }

  const ContractionHierarchy* ch_;
  const std::vector<Poi>* pois_;
  const RoadNetwork* graph_;
  DijkstraEngine dijkstra_;  // Fallback radius-bounded ball queries.
  PoiLocator locator_;
  ChQuery p2p_;
  std::unique_ptr<ChRangeEngine> range_;  // Ball queries via the CH index.
  double range_max_radius_ = 0.0;

  // Upward-search arena (shared by target and source searches).
  std::vector<double> dist_;
  std::vector<uint32_t> stamp_;
  uint32_t generation_ = 0;
  std::vector<std::pair<double, VertexId>> heap_;

  // Target buckets: per-vertex (target index, backward upward distance).
  std::vector<EdgePosition> targets_;
  std::vector<std::vector<std::pair<int32_t, double>>> buckets_;
  std::vector<VertexId> bucketed_;  // Vertices with non-empty buckets.
};

class ChBackend final : public DistanceBackend {
 public:
  ChBackend(const RoadNetwork* graph, const std::vector<Poi>* pois,
            const ChOptions& options, const std::string& index_path) {
    GPSSN_CHECK(graph != nullptr && pois != nullptr);
    pois_ = pois;
    // Load path: a saved index is only trusted when it checksums clean AND
    // was built from this exact graph.
    if (!index_path.empty()) {
      Result<RoadIndexBundle> loaded = LoadRoadIndex(index_path);
      if (loaded.ok() &&
          RoadNetworkFingerprint(*loaded.value().graph) ==
              RoadNetworkFingerprint(*graph)) {
        bundle_ = std::move(loaded.value());
        ch_ = bundle_.ch;
        loaded_from_disk_ = true;
      }
    }
    if (ch_ == nullptr) {
      auto built = std::make_shared<ContractionHierarchy>(options);
      built->Build(graph);
      if (!index_path.empty()) {
        // Best effort: a failed save just means the next start rebuilds.
        SaveRoadIndex(*graph, *built, index_path).ok();
      }
      ch_ = std::move(built);
    }
    if (options.build_ball_index) {
      ball_index_ = std::make_unique<ChBallIndex>(
          ch_.get(), pois, options.ball_index_max_radius, options.scheduler,
          options.build_max_lanes);
    }
  }

  DistanceBackendKind kind() const override {
    return DistanceBackendKind::kContractionHierarchy;
  }
  const char* name() const override { return "ch-bucket"; }

  std::unique_ptr<DistanceEngine> CreateEngine() const override {
    return std::make_unique<ChDistanceEngine>(ch_.get(), pois_,
                                              ball_index_.get());
  }

  void NotifyPoisMutated() override {
    if (ball_index_ != nullptr) ball_index_->AppendNewPois();
    DistanceBackend::NotifyPoisMutated();
  }

  bool loaded_from_disk() const override { return loaded_from_disk_; }

 private:
  const std::vector<Poi>* pois_ = nullptr;
  RoadIndexBundle bundle_;  // Keeps a loaded mapping (and graph) alive.
  std::shared_ptr<const ContractionHierarchy> ch_;
  std::unique_ptr<ChBallIndex> ball_index_;
  bool loaded_from_disk_ = false;
};

}  // namespace

std::unique_ptr<DistanceBackend> MakeDijkstraBackend(
    const RoadNetwork* graph, const std::vector<Poi>* pois) {
  return std::make_unique<DijkstraBackend>(graph, pois);
}

std::unique_ptr<DistanceBackend> MakeChBackend(const RoadNetwork* graph,
                                               const std::vector<Poi>* pois,
                                               const ChOptions& options,
                                               const std::string& index_path) {
  return std::make_unique<ChBackend>(graph, pois, options, index_path);
}

}  // namespace gpssn
