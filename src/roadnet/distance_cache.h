// Copyright 2026 The gpssn Authors.
//
// A sharded, memory-bounded cross-query cache of exact user→POI road
// distances. The batch executor's workers repeatedly recompute the same
// user→POI distances (popular issuers, overlapping candidate balls); this
// cache lets any worker reuse a distance another worker already paid for,
// across queries, over the immutable indexes.
//
// Entries are BOUND-TAGGED: refinement computes distances under a bound
// (the best objective so far), and "no result" only proves the distance
// exceeds THAT bound. An entry therefore stores either
//   * a finite distance d — exact, reusable under ANY requested bound
//     (the caller compares d against its own bound), or
//   * kInfDistance tagged with the bound b it was computed under —
//     meaning dist > b, reusable only for requests with bound <= b.
// Serving an inf entry computed under a smaller bound to a larger-bound
// request would wrongly report "unreachable"; Lookup treats that case as
// a miss. See DESIGN.md "Distance backends & caching".
//
// Dynamic maintenance invalidates SURGICALLY, not wholesale: entries are
// stamped with the generation of their POI's bucket in a fixed table of
// atomic counters, and InvalidatePoi(poi) just bumps that bucket. Lookup
// drops entries whose stamp is stale (lazy eviction), so an AddPoi only
// costs the cache the columns that share the mutated POI's bucket — every
// other cached row keeps serving hits. Clear() remains for full resets.

#ifndef GPSSN_ROADNET_DISTANCE_CACHE_H_
#define GPSSN_ROADNET_DISTANCE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/sync.h"
#include "roadnet/shortest_path.h"
#include "roadnet/types.h"

namespace gpssn {

struct DistanceCacheOptions {
  /// Total entry budget across all shards (LRU-evicted per shard).
  size_t max_entries = 1u << 20;
  /// Lock-striping factor; rounded up to a power of two. One mutex, map,
  /// and LRU list per shard.
  int num_shards = 16;
};

/// Thread-safe (user, poi) → distance cache with striped locks and
/// per-shard LRU eviction. Shared by all workers of a batch executor.
class DistanceCache {
 public:
  explicit DistanceCache(const DistanceCacheOptions& options = {});

  GPSSN_DISALLOW_COPY_AND_MOVE(DistanceCache);

  /// Returns true on a usable hit and sets *dist to the cached distance
  /// (kInfDistance = proven greater than `bound`). An inf entry tagged
  /// with a smaller bound than `bound` is NOT usable and misses.
  bool Lookup(UserId user, PoiId poi, double bound, double* dist);

  /// Records dist_RN(user, poi) computed under `bound`: `dist` is the
  /// exact distance when <= bound, kInfDistance meaning "> bound"
  /// otherwise. Finite entries always win over inf entries; among inf
  /// entries the larger bound wins.
  void Insert(UserId user, PoiId poi, double bound, double dist);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t stale_drops = 0;  // Entries dropped by generation mismatch.
    size_t entries = 0;
    std::string ToString() const;
  };
  Stats GetStats() const;

  size_t max_entries() const { return max_entries_; }

  /// Invalidates every cached (*, poi) distance by bumping the generation
  /// of `poi`'s bucket; stale entries are dropped lazily on their next
  /// Lookup. POIs sharing the bucket (id mod kPoiGenBuckets) are
  /// conservatively invalidated too — safe, and with 4096 buckets the
  /// collateral is 1/4096th of the id space per AddPoi instead of the
  /// whole cache. O(1), no locks.
  void InvalidatePoi(PoiId poi);

  void Clear();

 private:
  /// Generation-table size (power of two). Small distinct POI ids map to
  /// distinct buckets, which keeps invalidation exact in tests and small
  /// datasets.
  static constexpr size_t kPoiGenBuckets = 4096;

  struct Entry {
    double dist = kInfDistance;   // Exact when finite.
    double bound = 0.0;           // Tag: the bound `dist` was computed under.
    uint32_t poi_gen = 0;         // Bucket generation at insert time.
    std::list<uint64_t>::iterator lru;
  };

  // Everything in a shard — map, LRU list, and counters — is one unit
  // under the stripe lock `mu`; there is no lock-free read path.
  struct alignas(64) Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, Entry> map GPSSN_GUARDED_BY(mu);
    std::list<uint64_t> lru GPSSN_GUARDED_BY(mu);  // Front = most recent.
    uint64_t hits GPSSN_GUARDED_BY(mu) = 0;
    uint64_t misses GPSSN_GUARDED_BY(mu) = 0;
    uint64_t insertions GPSSN_GUARDED_BY(mu) = 0;
    uint64_t evictions GPSSN_GUARDED_BY(mu) = 0;
    uint64_t stale_drops GPSSN_GUARDED_BY(mu) = 0;
  };

  static uint64_t Key(UserId user, PoiId poi) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(user)) << 32) |
           static_cast<uint32_t>(poi);
  }

  Shard& ShardFor(uint64_t key) {
    // Multiplicative mix so consecutive ids spread across shards.
    const uint64_t h = key * 0x9e3779b97f4a7c15ull;
    return shards_[(h >> 32) & shard_mask_];
  }

  std::atomic<uint32_t>& PoiGen(PoiId poi) {
    return poi_gen_[static_cast<uint32_t>(poi) & (kPoiGenBuckets - 1)];
  }

  size_t max_entries_;
  size_t per_shard_capacity_;
  uint64_t shard_mask_;
  std::vector<Shard> shards_;
  // Per-bucket POI generations (see InvalidatePoi). unique_ptr-to-array
  // because std::atomic is neither copyable nor movable.
  std::unique_ptr<std::atomic<uint32_t>[]> poi_gen_;
};

}  // namespace gpssn

#endif  // GPSSN_ROADNET_DISTANCE_CACHE_H_
