// Copyright 2026 The gpssn Authors.
//
// Versioned binary persistence for the road graph + contraction hierarchy,
// designed for mmap loading: a continental-scale CH takes minutes to build
// but milliseconds to map back in, and the big preprocessed arrays (CSR
// upward graph, rank permutation) are used directly out of the read-only
// mapping with zero copies.
//
// File layout (all integers little-endian, payloads 8-byte aligned):
//
//   IndexFileHeader   magic "GPSSNIDX", version, section count, total
//                     bytes, checksum of the section table
//   IndexSectionEntry × num_sections
//                     kind, offset, byte length, element count, FNV-1a
//                     checksum of the payload
//   payloads          raw arrays: graph (points, edge endpoints, weights),
//                     CH (rank, up offsets, up arcs), and an IndexMeta
//                     section with counts, build options, and the source
//                     graph fingerprint
//
// Load validates sizes and checksums before trusting anything; distinct
// error messages distinguish wrong-version, truncated, and corrupted
// files. Writes go to `path + ".tmp"` and rename into place, so readers
// never observe a half-written index.

#ifndef GPSSN_ROADNET_INDEX_IO_H_
#define GPSSN_ROADNET_INDEX_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>

#include "common/result.h"
#include "common/status.h"
#include "roadnet/contraction_hierarchy.h"
#include "roadnet/road_graph.h"

namespace gpssn {

inline constexpr char kRoadIndexMagic[8] = {'G', 'P', 'S', 'S',
                                            'N', 'I', 'D', 'X'};
inline constexpr uint32_t kRoadIndexVersion = 1;

// gpssn-serialized(bytes=32)
struct IndexFileHeader {
  char magic[8] = {};
  uint32_t version = 0;
  uint32_t num_sections = 0;
  uint64_t file_bytes = 0;
  uint64_t table_checksum = 0;  // FNV-1a over the section table.
};
static_assert(std::is_trivially_copyable_v<IndexFileHeader>,
              "IndexFileHeader is stored verbatim in index files");
static_assert(sizeof(IndexFileHeader) == 32,
              "IndexFileHeader file layout is fixed at 32 bytes");

enum class IndexSectionKind : uint32_t {
  kPoints = 1,     // Point[num_vertices]
  kEdgeU = 2,      // VertexId[num_edges]
  kEdgeV = 3,      // VertexId[num_edges]
  kEdgeW = 4,      // double[num_edges]
  kChRank = 5,     // int32[num_vertices]
  kChUpOffsets = 6,  // int64[num_vertices + 1]
  kChUpArcs = 7,   // ContractionHierarchy::UpArc[...]
  kMeta = 8,       // IndexMeta[1]
};

// gpssn-serialized(bytes=40)
struct IndexSectionEntry {
  uint32_t kind = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;  // From file start; 8-byte aligned.
  uint64_t bytes = 0;
  uint64_t count = 0;  // Element count (sanity cross-check).
  uint64_t checksum = 0;  // FNV-1a over the payload bytes.
};
static_assert(std::is_trivially_copyable_v<IndexSectionEntry>,
              "IndexSectionEntry is stored verbatim in index files");
static_assert(sizeof(IndexSectionEntry) == 40,
              "IndexSectionEntry file layout is fixed at 40 bytes");

// gpssn-serialized(bytes=40)
struct IndexMeta {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  int64_t num_shortcuts = 0;
  int32_t witness_hop_limit = 0;
  int32_t witness_settle_limit = 0;
  uint64_t graph_fingerprint = 0;
};
static_assert(std::is_trivially_copyable_v<IndexMeta>,
              "IndexMeta is stored verbatim in index files");
static_assert(sizeof(IndexMeta) == 40,
              "IndexMeta file layout is fixed at 40 bytes");

/// FNV-1a fingerprint of a road network's flat arrays (vertex/edge counts
/// and the raw bytes of coordinates, endpoints, and weights). A saved CH
/// is only valid for the exact graph it was built from.
uint64_t RoadNetworkFingerprint(const RoadNetwork& graph);

/// A graph + hierarchy pair loaded from one index file. The hierarchy's
/// arrays alias the file mapping (kept alive by the hierarchy's payload);
/// the graph is materialized (its CSR adjacency must be rebuilt anyway).
struct RoadIndexBundle {
  std::shared_ptr<const RoadNetwork> graph;
  std::shared_ptr<const ContractionHierarchy> ch;
};

/// Writes `graph` + `ch` to `path` (tmp file + rename).
Status SaveRoadIndex(const RoadNetwork& graph, const ContractionHierarchy& ch,
                     const std::string& path);

/// Maps `path` and reconstructs the bundle, validating magic, version,
/// section table, and payload checksums.
Result<RoadIndexBundle> LoadRoadIndex(const std::string& path);

}  // namespace gpssn

#endif  // GPSSN_ROADNET_INDEX_IO_H_
