// Copyright 2026 The gpssn Authors.
//
// Maps arbitrary 2D points to positions on the road network (nearest edge),
// used to place user homes derived from check-in centroids (Section 6.1:
// "set to the centroid of POIs that s/he checked in").

#ifndef GPSSN_ROADNET_ROAD_LOCATOR_H_
#define GPSSN_ROADNET_ROAD_LOCATOR_H_

#include <vector>

#include "geom/point.h"
#include "roadnet/road_graph.h"
#include "roadnet/types.h"

namespace gpssn {

/// Grid-accelerated nearest-edge lookup over an immutable road network.
class RoadLocator {
 public:
  explicit RoadLocator(const RoadNetwork* graph);

  /// Vertex closest to `p` (Euclidean).
  VertexId NearestVertex(const Point& p) const;

  /// Position on the road network closest to `p`: the orthogonal projection
  /// of `p` onto the best edge incident to the nearest vertices.
  EdgePosition NearestEdgePosition(const Point& p) const;

 private:
  // Candidate vertices near p (grows the search ring until non-empty).
  void Candidates(const Point& p, std::vector<VertexId>* out) const;

  const RoadNetwork* graph_;
  double min_x_, min_y_, cell_;
  int cells_;
  std::vector<std::vector<VertexId>> buckets_;
};

/// Squared distance from `p` to segment ab; `t_out` receives the clamped
/// projection parameter in [0, 1].
double PointSegmentDistanceSq(const Point& p, const Point& a, const Point& b,
                              double* t_out);

}  // namespace gpssn

#endif  // GPSSN_ROADNET_ROAD_LOCATOR_H_
