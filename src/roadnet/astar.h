// Copyright 2026 The gpssn Authors.
//
// Goal-directed point-to-point shortest paths on the road network:
//   * A* with the Euclidean heuristic — admissible because road-edge
//     weights default to the segment's Euclidean length (and never less),
//   * bidirectional Dijkstra — no heuristic requirement, ~2x fewer settled
//     vertices on long queries.
// Both return exactly dist_RN and are cross-checked against the plain
// Dijkstra engine by the test suite. The GP-SSN refinement uses the plain
// engine (it needs one-to-many distances); these are the substrate a
// routing-style consumer of the library would use, plus path extraction.

#ifndef GPSSN_ROADNET_ASTAR_H_
#define GPSSN_ROADNET_ASTAR_H_

#include <vector>

#include "roadnet/road_graph.h"
#include "roadnet/shortest_path.h"

namespace gpssn {

/// Result of a point-to-point search: the distance and the vertex path
/// (empty when unreachable; for same-edge shortcuts the path holds the two
/// positions' shared edge endpoints only when the network route wins).
struct RouteResult {
  double distance = kInfDistance;
  std::vector<VertexId> path;  // Source-side endpoint ... target-side.

  bool reachable() const { return distance < kInfDistance; }
};

/// A* engine with reusable arenas. Not thread-safe.
class AStarEngine {
 public:
  explicit AStarEngine(const RoadNetwork* graph);

  /// Exact vertex-to-vertex distance (A*, Euclidean heuristic).
  double VertexToVertex(VertexId source, VertexId target);

  /// Exact distance between positions on edges, including the same-edge
  /// shortcut.
  double PositionToPosition(const EdgePosition& a, const EdgePosition& b);

  /// As VertexToVertex, plus the vertex path.
  RouteResult Route(VertexId source, VertexId target);

  /// Number of vertices settled by the last search (for the efficiency
  /// comparison benches).
  size_t last_settled() const { return last_settled_; }

  /// False when the graph's weights make the Euclidean heuristic
  /// inadmissible (the engine then runs as plain uniform-cost search).
  bool heuristic_enabled() const { return heuristic_enabled_; }

 private:
  struct HeapEntry {
    double f;  // g + heuristic.
    VertexId v;
  };
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.f > b.f;
    }
  };

  void Reset();

  const RoadNetwork* graph_;
  std::vector<double> g_;
  std::vector<VertexId> parent_;
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> settled_stamp_;
  uint32_t generation_ = 0;
  std::vector<HeapEntry> heap_;
  size_t last_settled_ = 0;
  bool heuristic_enabled_ = true;
};

/// Bidirectional Dijkstra engine with reusable arenas. Not thread-safe.
class BidirectionalDijkstra {
 public:
  explicit BidirectionalDijkstra(const RoadNetwork* graph);

  /// Exact vertex-to-vertex distance.
  double VertexToVertex(VertexId source, VertexId target);

  size_t last_settled() const { return last_settled_; }

 private:
  void Reset();

  const RoadNetwork* graph_;
  // Index 0 = forward (from source), 1 = backward (from target).
  std::vector<double> dist_[2];
  std::vector<uint32_t> stamp_[2];
  std::vector<uint32_t> settled_stamp_[2];
  uint32_t generation_ = 0;
  std::vector<std::pair<double, VertexId>> heap_[2];
  size_t last_settled_ = 0;
};

}  // namespace gpssn

#endif  // GPSSN_ROADNET_ASTAR_H_
