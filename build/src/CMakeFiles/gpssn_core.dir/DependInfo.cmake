
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline.cc" "src/CMakeFiles/gpssn_core.dir/core/baseline.cc.o" "gcc" "src/CMakeFiles/gpssn_core.dir/core/baseline.cc.o.d"
  "/root/repo/src/core/database.cc" "src/CMakeFiles/gpssn_core.dir/core/database.cc.o" "gcc" "src/CMakeFiles/gpssn_core.dir/core/database.cc.o.d"
  "/root/repo/src/core/pruning.cc" "src/CMakeFiles/gpssn_core.dir/core/pruning.cc.o" "gcc" "src/CMakeFiles/gpssn_core.dir/core/pruning.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/gpssn_core.dir/core/query.cc.o" "gcc" "src/CMakeFiles/gpssn_core.dir/core/query.cc.o.d"
  "/root/repo/src/core/refinement.cc" "src/CMakeFiles/gpssn_core.dir/core/refinement.cc.o" "gcc" "src/CMakeFiles/gpssn_core.dir/core/refinement.cc.o.d"
  "/root/repo/src/core/scores.cc" "src/CMakeFiles/gpssn_core.dir/core/scores.cc.o" "gcc" "src/CMakeFiles/gpssn_core.dir/core/scores.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/CMakeFiles/gpssn_core.dir/core/snapshot.cc.o" "gcc" "src/CMakeFiles/gpssn_core.dir/core/snapshot.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/CMakeFiles/gpssn_core.dir/core/stats.cc.o" "gcc" "src/CMakeFiles/gpssn_core.dir/core/stats.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/CMakeFiles/gpssn_core.dir/core/tuning.cc.o" "gcc" "src/CMakeFiles/gpssn_core.dir/core/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpssn_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_ssn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_socialnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
