# Empty compiler generated dependencies file for gpssn_core.
# This may be replaced when dependencies are built.
