file(REMOVE_RECURSE
  "libgpssn_core.a"
)
