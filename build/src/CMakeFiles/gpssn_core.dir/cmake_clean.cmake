file(REMOVE_RECURSE
  "CMakeFiles/gpssn_core.dir/core/baseline.cc.o"
  "CMakeFiles/gpssn_core.dir/core/baseline.cc.o.d"
  "CMakeFiles/gpssn_core.dir/core/database.cc.o"
  "CMakeFiles/gpssn_core.dir/core/database.cc.o.d"
  "CMakeFiles/gpssn_core.dir/core/pruning.cc.o"
  "CMakeFiles/gpssn_core.dir/core/pruning.cc.o.d"
  "CMakeFiles/gpssn_core.dir/core/query.cc.o"
  "CMakeFiles/gpssn_core.dir/core/query.cc.o.d"
  "CMakeFiles/gpssn_core.dir/core/refinement.cc.o"
  "CMakeFiles/gpssn_core.dir/core/refinement.cc.o.d"
  "CMakeFiles/gpssn_core.dir/core/scores.cc.o"
  "CMakeFiles/gpssn_core.dir/core/scores.cc.o.d"
  "CMakeFiles/gpssn_core.dir/core/snapshot.cc.o"
  "CMakeFiles/gpssn_core.dir/core/snapshot.cc.o.d"
  "CMakeFiles/gpssn_core.dir/core/stats.cc.o"
  "CMakeFiles/gpssn_core.dir/core/stats.cc.o.d"
  "CMakeFiles/gpssn_core.dir/core/tuning.cc.o"
  "CMakeFiles/gpssn_core.dir/core/tuning.cc.o.d"
  "libgpssn_core.a"
  "libgpssn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
