file(REMOVE_RECURSE
  "CMakeFiles/gpssn_geom.dir/geom/pruning_region.cc.o"
  "CMakeFiles/gpssn_geom.dir/geom/pruning_region.cc.o.d"
  "CMakeFiles/gpssn_geom.dir/geom/rect.cc.o"
  "CMakeFiles/gpssn_geom.dir/geom/rect.cc.o.d"
  "libgpssn_geom.a"
  "libgpssn_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
