# Empty compiler generated dependencies file for gpssn_geom.
# This may be replaced when dependencies are built.
