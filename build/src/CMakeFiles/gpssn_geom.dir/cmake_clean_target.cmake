file(REMOVE_RECURSE
  "libgpssn_geom.a"
)
