file(REMOVE_RECURSE
  "libgpssn_common.a"
)
