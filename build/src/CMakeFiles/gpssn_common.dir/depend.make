# Empty dependencies file for gpssn_common.
# This may be replaced when dependencies are built.
