file(REMOVE_RECURSE
  "CMakeFiles/gpssn_common.dir/common/bitvector.cc.o"
  "CMakeFiles/gpssn_common.dir/common/bitvector.cc.o.d"
  "CMakeFiles/gpssn_common.dir/common/pagestore.cc.o"
  "CMakeFiles/gpssn_common.dir/common/pagestore.cc.o.d"
  "CMakeFiles/gpssn_common.dir/common/rng.cc.o"
  "CMakeFiles/gpssn_common.dir/common/rng.cc.o.d"
  "CMakeFiles/gpssn_common.dir/common/status.cc.o"
  "CMakeFiles/gpssn_common.dir/common/status.cc.o.d"
  "CMakeFiles/gpssn_common.dir/common/table_printer.cc.o"
  "CMakeFiles/gpssn_common.dir/common/table_printer.cc.o.d"
  "libgpssn_common.a"
  "libgpssn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
