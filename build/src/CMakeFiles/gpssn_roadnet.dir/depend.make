# Empty dependencies file for gpssn_roadnet.
# This may be replaced when dependencies are built.
