file(REMOVE_RECURSE
  "CMakeFiles/gpssn_roadnet.dir/roadnet/astar.cc.o"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/astar.cc.o.d"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/contraction_hierarchy.cc.o"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/contraction_hierarchy.cc.o.d"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/road_generator.cc.o"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/road_generator.cc.o.d"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/road_graph.cc.o"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/road_graph.cc.o.d"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/road_locator.cc.o"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/road_locator.cc.o.d"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/road_pivots.cc.o"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/road_pivots.cc.o.d"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/shortest_path.cc.o"
  "CMakeFiles/gpssn_roadnet.dir/roadnet/shortest_path.cc.o.d"
  "libgpssn_roadnet.a"
  "libgpssn_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
