file(REMOVE_RECURSE
  "libgpssn_roadnet.a"
)
