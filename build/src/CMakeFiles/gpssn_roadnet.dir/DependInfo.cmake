
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/astar.cc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/astar.cc.o" "gcc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/astar.cc.o.d"
  "/root/repo/src/roadnet/contraction_hierarchy.cc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/contraction_hierarchy.cc.o" "gcc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/contraction_hierarchy.cc.o.d"
  "/root/repo/src/roadnet/road_generator.cc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/road_generator.cc.o" "gcc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/road_generator.cc.o.d"
  "/root/repo/src/roadnet/road_graph.cc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/road_graph.cc.o" "gcc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/road_graph.cc.o.d"
  "/root/repo/src/roadnet/road_locator.cc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/road_locator.cc.o" "gcc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/road_locator.cc.o.d"
  "/root/repo/src/roadnet/road_pivots.cc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/road_pivots.cc.o" "gcc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/road_pivots.cc.o.d"
  "/root/repo/src/roadnet/shortest_path.cc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/shortest_path.cc.o" "gcc" "src/CMakeFiles/gpssn_roadnet.dir/roadnet/shortest_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpssn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
