file(REMOVE_RECURSE
  "CMakeFiles/gpssn_index.dir/index/pivot_select.cc.o"
  "CMakeFiles/gpssn_index.dir/index/pivot_select.cc.o.d"
  "CMakeFiles/gpssn_index.dir/index/poi_index.cc.o"
  "CMakeFiles/gpssn_index.dir/index/poi_index.cc.o.d"
  "CMakeFiles/gpssn_index.dir/index/rstar_tree.cc.o"
  "CMakeFiles/gpssn_index.dir/index/rstar_tree.cc.o.d"
  "CMakeFiles/gpssn_index.dir/index/social_index.cc.o"
  "CMakeFiles/gpssn_index.dir/index/social_index.cc.o.d"
  "libgpssn_index.a"
  "libgpssn_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
