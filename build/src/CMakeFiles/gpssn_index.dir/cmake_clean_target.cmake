file(REMOVE_RECURSE
  "libgpssn_index.a"
)
