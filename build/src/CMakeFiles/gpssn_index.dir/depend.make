# Empty dependencies file for gpssn_index.
# This may be replaced when dependencies are built.
