
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/socialnet/bfs.cc" "src/CMakeFiles/gpssn_socialnet.dir/socialnet/bfs.cc.o" "gcc" "src/CMakeFiles/gpssn_socialnet.dir/socialnet/bfs.cc.o.d"
  "/root/repo/src/socialnet/partitioner.cc" "src/CMakeFiles/gpssn_socialnet.dir/socialnet/partitioner.cc.o" "gcc" "src/CMakeFiles/gpssn_socialnet.dir/socialnet/partitioner.cc.o.d"
  "/root/repo/src/socialnet/social_generator.cc" "src/CMakeFiles/gpssn_socialnet.dir/socialnet/social_generator.cc.o" "gcc" "src/CMakeFiles/gpssn_socialnet.dir/socialnet/social_generator.cc.o.d"
  "/root/repo/src/socialnet/social_graph.cc" "src/CMakeFiles/gpssn_socialnet.dir/socialnet/social_graph.cc.o" "gcc" "src/CMakeFiles/gpssn_socialnet.dir/socialnet/social_graph.cc.o.d"
  "/root/repo/src/socialnet/social_pivots.cc" "src/CMakeFiles/gpssn_socialnet.dir/socialnet/social_pivots.cc.o" "gcc" "src/CMakeFiles/gpssn_socialnet.dir/socialnet/social_pivots.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpssn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
