file(REMOVE_RECURSE
  "CMakeFiles/gpssn_socialnet.dir/socialnet/bfs.cc.o"
  "CMakeFiles/gpssn_socialnet.dir/socialnet/bfs.cc.o.d"
  "CMakeFiles/gpssn_socialnet.dir/socialnet/partitioner.cc.o"
  "CMakeFiles/gpssn_socialnet.dir/socialnet/partitioner.cc.o.d"
  "CMakeFiles/gpssn_socialnet.dir/socialnet/social_generator.cc.o"
  "CMakeFiles/gpssn_socialnet.dir/socialnet/social_generator.cc.o.d"
  "CMakeFiles/gpssn_socialnet.dir/socialnet/social_graph.cc.o"
  "CMakeFiles/gpssn_socialnet.dir/socialnet/social_graph.cc.o.d"
  "CMakeFiles/gpssn_socialnet.dir/socialnet/social_pivots.cc.o"
  "CMakeFiles/gpssn_socialnet.dir/socialnet/social_pivots.cc.o.d"
  "libgpssn_socialnet.a"
  "libgpssn_socialnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_socialnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
