# Empty compiler generated dependencies file for gpssn_socialnet.
# This may be replaced when dependencies are built.
