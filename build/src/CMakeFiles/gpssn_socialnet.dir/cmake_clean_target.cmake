file(REMOVE_RECURSE
  "libgpssn_socialnet.a"
)
