file(REMOVE_RECURSE
  "libgpssn_ssn.a"
)
