
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssn/dataset.cc" "src/CMakeFiles/gpssn_ssn.dir/ssn/dataset.cc.o" "gcc" "src/CMakeFiles/gpssn_ssn.dir/ssn/dataset.cc.o.d"
  "/root/repo/src/ssn/serialize.cc" "src/CMakeFiles/gpssn_ssn.dir/ssn/serialize.cc.o" "gcc" "src/CMakeFiles/gpssn_ssn.dir/ssn/serialize.cc.o.d"
  "/root/repo/src/ssn/spatial_social_network.cc" "src/CMakeFiles/gpssn_ssn.dir/ssn/spatial_social_network.cc.o" "gcc" "src/CMakeFiles/gpssn_ssn.dir/ssn/spatial_social_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpssn_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_socialnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
