file(REMOVE_RECURSE
  "CMakeFiles/gpssn_ssn.dir/ssn/dataset.cc.o"
  "CMakeFiles/gpssn_ssn.dir/ssn/dataset.cc.o.d"
  "CMakeFiles/gpssn_ssn.dir/ssn/serialize.cc.o"
  "CMakeFiles/gpssn_ssn.dir/ssn/serialize.cc.o.d"
  "CMakeFiles/gpssn_ssn.dir/ssn/spatial_social_network.cc.o"
  "CMakeFiles/gpssn_ssn.dir/ssn/spatial_social_network.cc.o.d"
  "libgpssn_ssn.a"
  "libgpssn_ssn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_ssn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
