# Empty dependencies file for gpssn_ssn.
# This may be replaced when dependencies are built.
