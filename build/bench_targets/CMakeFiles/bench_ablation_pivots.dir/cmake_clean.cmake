file(REMOVE_RECURSE
  "../bench/bench_ablation_pivots"
  "../bench/bench_ablation_pivots.pdb"
  "CMakeFiles/bench_ablation_pivots.dir/bench_ablation_pivots.cc.o"
  "CMakeFiles/bench_ablation_pivots.dir/bench_ablation_pivots.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pivots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
