# Empty dependencies file for bench_ablation_pivots.
# This may be replaced when dependencies are built.
