file(REMOVE_RECURSE
  "../bench/bench_fig8_vs_baseline"
  "../bench/bench_fig8_vs_baseline.pdb"
  "CMakeFiles/bench_fig8_vs_baseline.dir/bench_fig8_vs_baseline.cc.o"
  "CMakeFiles/bench_fig8_vs_baseline.dir/bench_fig8_vs_baseline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
