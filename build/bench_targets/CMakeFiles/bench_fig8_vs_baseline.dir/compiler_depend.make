# Empty compiler generated dependencies file for bench_fig8_vs_baseline.
# This may be replaced when dependencies are built.
