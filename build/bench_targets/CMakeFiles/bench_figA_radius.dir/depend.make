# Empty dependencies file for bench_figA_radius.
# This may be replaced when dependencies are built.
