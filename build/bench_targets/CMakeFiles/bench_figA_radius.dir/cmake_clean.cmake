file(REMOVE_RECURSE
  "../bench/bench_figA_radius"
  "../bench/bench_figA_radius.pdb"
  "CMakeFiles/bench_figA_radius.dir/bench_figA_radius.cc.o"
  "CMakeFiles/bench_figA_radius.dir/bench_figA_radius.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figA_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
