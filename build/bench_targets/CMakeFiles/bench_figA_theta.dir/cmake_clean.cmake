file(REMOVE_RECURSE
  "../bench/bench_figA_theta"
  "../bench/bench_figA_theta.pdb"
  "CMakeFiles/bench_figA_theta.dir/bench_figA_theta.cc.o"
  "CMakeFiles/bench_figA_theta.dir/bench_figA_theta.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figA_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
