# Empty compiler generated dependencies file for bench_figA_theta.
# This may be replaced when dependencies are built.
