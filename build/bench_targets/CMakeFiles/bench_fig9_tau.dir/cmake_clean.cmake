file(REMOVE_RECURSE
  "../bench/bench_fig9_tau"
  "../bench/bench_fig9_tau.pdb"
  "CMakeFiles/bench_fig9_tau.dir/bench_fig9_tau.cc.o"
  "CMakeFiles/bench_fig9_tau.dir/bench_fig9_tau.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
