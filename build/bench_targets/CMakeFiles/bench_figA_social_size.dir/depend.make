# Empty dependencies file for bench_figA_social_size.
# This may be replaced when dependencies are built.
