file(REMOVE_RECURSE
  "../bench/bench_figA_social_size"
  "../bench/bench_figA_social_size.pdb"
  "CMakeFiles/bench_figA_social_size.dir/bench_figA_social_size.cc.o"
  "CMakeFiles/bench_figA_social_size.dir/bench_figA_social_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figA_social_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
