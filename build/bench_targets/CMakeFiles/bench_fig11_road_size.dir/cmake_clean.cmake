file(REMOVE_RECURSE
  "../bench/bench_fig11_road_size"
  "../bench/bench_fig11_road_size.pdb"
  "CMakeFiles/bench_fig11_road_size.dir/bench_fig11_road_size.cc.o"
  "CMakeFiles/bench_fig11_road_size.dir/bench_fig11_road_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_road_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
