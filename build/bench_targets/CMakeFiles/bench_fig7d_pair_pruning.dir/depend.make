# Empty dependencies file for bench_fig7d_pair_pruning.
# This may be replaced when dependencies are built.
