
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_buffer.cc" "bench_targets/CMakeFiles/bench_ablation_buffer.dir/bench_ablation_buffer.cc.o" "gcc" "bench_targets/CMakeFiles/bench_ablation_buffer.dir/bench_ablation_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_targets/CMakeFiles/gpssn_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_ssn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_socialnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpssn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
