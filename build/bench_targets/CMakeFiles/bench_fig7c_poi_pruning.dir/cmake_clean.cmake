file(REMOVE_RECURSE
  "../bench/bench_fig7c_poi_pruning"
  "../bench/bench_fig7c_poi_pruning.pdb"
  "CMakeFiles/bench_fig7c_poi_pruning.dir/bench_fig7c_poi_pruning.cc.o"
  "CMakeFiles/bench_fig7c_poi_pruning.dir/bench_fig7c_poi_pruning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c_poi_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
