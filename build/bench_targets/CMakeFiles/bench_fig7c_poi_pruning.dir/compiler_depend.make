# Empty compiler generated dependencies file for bench_fig7c_poi_pruning.
# This may be replaced when dependencies are built.
