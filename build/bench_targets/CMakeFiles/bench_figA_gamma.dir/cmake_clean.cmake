file(REMOVE_RECURSE
  "../bench/bench_figA_gamma"
  "../bench/bench_figA_gamma.pdb"
  "CMakeFiles/bench_figA_gamma.dir/bench_figA_gamma.cc.o"
  "CMakeFiles/bench_figA_gamma.dir/bench_figA_gamma.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figA_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
