# Empty dependencies file for bench_figA_gamma.
# This may be replaced when dependencies are built.
