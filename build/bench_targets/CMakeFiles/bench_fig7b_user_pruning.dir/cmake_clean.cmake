file(REMOVE_RECURSE
  "../bench/bench_fig7b_user_pruning"
  "../bench/bench_fig7b_user_pruning.pdb"
  "CMakeFiles/bench_fig7b_user_pruning.dir/bench_fig7b_user_pruning.cc.o"
  "CMakeFiles/bench_fig7b_user_pruning.dir/bench_fig7b_user_pruning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_user_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
