# Empty compiler generated dependencies file for bench_fig7b_user_pruning.
# This may be replaced when dependencies are built.
