# Empty compiler generated dependencies file for bench_fig7a_pruning_levels.
# This may be replaced when dependencies are built.
