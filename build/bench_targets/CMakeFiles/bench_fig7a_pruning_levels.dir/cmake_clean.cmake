file(REMOVE_RECURSE
  "../bench/bench_fig7a_pruning_levels"
  "../bench/bench_fig7a_pruning_levels.pdb"
  "CMakeFiles/bench_fig7a_pruning_levels.dir/bench_fig7a_pruning_levels.cc.o"
  "CMakeFiles/bench_fig7a_pruning_levels.dir/bench_fig7a_pruning_levels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_pruning_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
