file(REMOVE_RECURSE
  "../bench/bench_fig10_num_pois"
  "../bench/bench_fig10_num_pois.pdb"
  "CMakeFiles/bench_fig10_num_pois.dir/bench_fig10_num_pois.cc.o"
  "CMakeFiles/bench_fig10_num_pois.dir/bench_fig10_num_pois.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_num_pois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
