# Empty compiler generated dependencies file for bench_fig10_num_pois.
# This may be replaced when dependencies are built.
