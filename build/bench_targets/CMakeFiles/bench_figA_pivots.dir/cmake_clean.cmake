file(REMOVE_RECURSE
  "../bench/bench_figA_pivots"
  "../bench/bench_figA_pivots.pdb"
  "CMakeFiles/bench_figA_pivots.dir/bench_figA_pivots.cc.o"
  "CMakeFiles/bench_figA_pivots.dir/bench_figA_pivots.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figA_pivots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
