# Empty dependencies file for bench_figA_pivots.
# This may be replaced when dependencies are built.
