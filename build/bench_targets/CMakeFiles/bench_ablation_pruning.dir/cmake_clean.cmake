file(REMOVE_RECURSE
  "../bench/bench_ablation_pruning"
  "../bench/bench_ablation_pruning.pdb"
  "CMakeFiles/bench_ablation_pruning.dir/bench_ablation_pruning.cc.o"
  "CMakeFiles/bench_ablation_pruning.dir/bench_ablation_pruning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
