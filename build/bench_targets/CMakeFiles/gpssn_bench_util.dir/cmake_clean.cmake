file(REMOVE_RECURSE
  "CMakeFiles/gpssn_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/gpssn_bench_util.dir/bench_util.cc.o.d"
  "libgpssn_bench_util.a"
  "libgpssn_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
