# Empty dependencies file for gpssn_bench_util.
# This may be replaced when dependencies are built.
