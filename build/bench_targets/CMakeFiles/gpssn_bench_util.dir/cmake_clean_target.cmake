file(REMOVE_RECURSE
  "libgpssn_bench_util.a"
)
