# Empty dependencies file for group_marketing.
# This may be replaced when dependencies are built.
