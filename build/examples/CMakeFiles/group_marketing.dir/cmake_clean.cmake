file(REMOVE_RECURSE
  "CMakeFiles/group_marketing.dir/group_marketing.cpp.o"
  "CMakeFiles/group_marketing.dir/group_marketing.cpp.o.d"
  "group_marketing"
  "group_marketing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_marketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
