file(REMOVE_RECURSE
  "CMakeFiles/trip_planning.dir/trip_planning.cpp.o"
  "CMakeFiles/trip_planning.dir/trip_planning.cpp.o.d"
  "trip_planning"
  "trip_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trip_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
