# Empty compiler generated dependencies file for trip_planning.
# This may be replaced when dependencies are built.
