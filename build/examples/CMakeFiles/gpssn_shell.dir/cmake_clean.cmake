file(REMOVE_RECURSE
  "CMakeFiles/gpssn_shell.dir/gpssn_shell.cpp.o"
  "CMakeFiles/gpssn_shell.dir/gpssn_shell.cpp.o.d"
  "gpssn_shell"
  "gpssn_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
