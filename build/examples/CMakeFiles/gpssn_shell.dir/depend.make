# Empty dependencies file for gpssn_shell.
# This may be replaced when dependencies are built.
