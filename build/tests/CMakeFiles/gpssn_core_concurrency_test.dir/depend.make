# Empty dependencies file for gpssn_core_concurrency_test.
# This may be replaced when dependencies are built.
