file(REMOVE_RECURSE
  "CMakeFiles/gpssn_index_pivot_select_test.dir/index/pivot_select_test.cc.o"
  "CMakeFiles/gpssn_index_pivot_select_test.dir/index/pivot_select_test.cc.o.d"
  "gpssn_index_pivot_select_test"
  "gpssn_index_pivot_select_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_index_pivot_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
