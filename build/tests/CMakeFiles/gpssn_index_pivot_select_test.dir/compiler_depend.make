# Empty compiler generated dependencies file for gpssn_index_pivot_select_test.
# This may be replaced when dependencies are built.
