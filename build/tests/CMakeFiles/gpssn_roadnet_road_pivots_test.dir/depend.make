# Empty dependencies file for gpssn_roadnet_road_pivots_test.
# This may be replaced when dependencies are built.
