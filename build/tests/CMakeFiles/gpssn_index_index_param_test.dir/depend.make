# Empty dependencies file for gpssn_index_index_param_test.
# This may be replaced when dependencies are built.
