file(REMOVE_RECURSE
  "CMakeFiles/gpssn_index_index_param_test.dir/index/index_param_test.cc.o"
  "CMakeFiles/gpssn_index_index_param_test.dir/index/index_param_test.cc.o.d"
  "gpssn_index_index_param_test"
  "gpssn_index_index_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_index_index_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
