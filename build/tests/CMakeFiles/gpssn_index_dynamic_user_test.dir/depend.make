# Empty dependencies file for gpssn_index_dynamic_user_test.
# This may be replaced when dependencies are built.
