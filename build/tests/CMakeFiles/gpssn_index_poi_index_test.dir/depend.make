# Empty dependencies file for gpssn_index_poi_index_test.
# This may be replaced when dependencies are built.
