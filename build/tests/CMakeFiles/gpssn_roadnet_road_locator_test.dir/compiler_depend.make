# Empty compiler generated dependencies file for gpssn_roadnet_road_locator_test.
# This may be replaced when dependencies are built.
