file(REMOVE_RECURSE
  "CMakeFiles/gpssn_common_status_test.dir/common/status_test.cc.o"
  "CMakeFiles/gpssn_common_status_test.dir/common/status_test.cc.o.d"
  "gpssn_common_status_test"
  "gpssn_common_status_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_common_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
