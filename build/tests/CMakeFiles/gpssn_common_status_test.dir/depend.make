# Empty dependencies file for gpssn_common_status_test.
# This may be replaced when dependencies are built.
