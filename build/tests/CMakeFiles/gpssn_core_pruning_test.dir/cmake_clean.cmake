file(REMOVE_RECURSE
  "CMakeFiles/gpssn_core_pruning_test.dir/core/pruning_test.cc.o"
  "CMakeFiles/gpssn_core_pruning_test.dir/core/pruning_test.cc.o.d"
  "gpssn_core_pruning_test"
  "gpssn_core_pruning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_core_pruning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
