# Empty compiler generated dependencies file for gpssn_core_pruning_test.
# This may be replaced when dependencies are built.
