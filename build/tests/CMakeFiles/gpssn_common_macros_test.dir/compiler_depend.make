# Empty compiler generated dependencies file for gpssn_common_macros_test.
# This may be replaced when dependencies are built.
