# Empty compiler generated dependencies file for gpssn_core_topk_test.
# This may be replaced when dependencies are built.
