file(REMOVE_RECURSE
  "CMakeFiles/gpssn_core_topk_test.dir/core/topk_test.cc.o"
  "CMakeFiles/gpssn_core_topk_test.dir/core/topk_test.cc.o.d"
  "gpssn_core_topk_test"
  "gpssn_core_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_core_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
