# Empty dependencies file for gpssn_core_refinement_test.
# This may be replaced when dependencies are built.
