# Empty compiler generated dependencies file for gpssn_socialnet_bfs_test.
# This may be replaced when dependencies are built.
