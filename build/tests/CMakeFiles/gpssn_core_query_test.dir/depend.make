# Empty dependencies file for gpssn_core_query_test.
# This may be replaced when dependencies are built.
