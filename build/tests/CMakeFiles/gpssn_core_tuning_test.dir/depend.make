# Empty dependencies file for gpssn_core_tuning_test.
# This may be replaced when dependencies are built.
