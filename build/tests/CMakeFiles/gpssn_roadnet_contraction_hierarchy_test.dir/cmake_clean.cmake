file(REMOVE_RECURSE
  "CMakeFiles/gpssn_roadnet_contraction_hierarchy_test.dir/roadnet/contraction_hierarchy_test.cc.o"
  "CMakeFiles/gpssn_roadnet_contraction_hierarchy_test.dir/roadnet/contraction_hierarchy_test.cc.o.d"
  "gpssn_roadnet_contraction_hierarchy_test"
  "gpssn_roadnet_contraction_hierarchy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_roadnet_contraction_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
