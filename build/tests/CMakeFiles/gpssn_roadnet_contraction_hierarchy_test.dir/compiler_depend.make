# Empty compiler generated dependencies file for gpssn_roadnet_contraction_hierarchy_test.
# This may be replaced when dependencies are built.
