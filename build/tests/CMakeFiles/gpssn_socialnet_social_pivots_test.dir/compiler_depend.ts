# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gpssn_socialnet_social_pivots_test.
