# Empty compiler generated dependencies file for gpssn_socialnet_social_pivots_test.
# This may be replaced when dependencies are built.
