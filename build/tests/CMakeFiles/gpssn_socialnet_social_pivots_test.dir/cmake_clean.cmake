file(REMOVE_RECURSE
  "CMakeFiles/gpssn_socialnet_social_pivots_test.dir/socialnet/social_pivots_test.cc.o"
  "CMakeFiles/gpssn_socialnet_social_pivots_test.dir/socialnet/social_pivots_test.cc.o.d"
  "gpssn_socialnet_social_pivots_test"
  "gpssn_socialnet_social_pivots_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_socialnet_social_pivots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
