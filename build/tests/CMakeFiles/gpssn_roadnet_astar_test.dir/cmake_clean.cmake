file(REMOVE_RECURSE
  "CMakeFiles/gpssn_roadnet_astar_test.dir/roadnet/astar_test.cc.o"
  "CMakeFiles/gpssn_roadnet_astar_test.dir/roadnet/astar_test.cc.o.d"
  "gpssn_roadnet_astar_test"
  "gpssn_roadnet_astar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_roadnet_astar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
