# Empty dependencies file for gpssn_roadnet_astar_test.
# This may be replaced when dependencies are built.
