file(REMOVE_RECURSE
  "CMakeFiles/gpssn_common_rng_test.dir/common/rng_test.cc.o"
  "CMakeFiles/gpssn_common_rng_test.dir/common/rng_test.cc.o.d"
  "gpssn_common_rng_test"
  "gpssn_common_rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_common_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
