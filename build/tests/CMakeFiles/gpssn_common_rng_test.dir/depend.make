# Empty dependencies file for gpssn_common_rng_test.
# This may be replaced when dependencies are built.
