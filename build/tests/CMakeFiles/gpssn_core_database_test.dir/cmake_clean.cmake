file(REMOVE_RECURSE
  "CMakeFiles/gpssn_core_database_test.dir/core/database_test.cc.o"
  "CMakeFiles/gpssn_core_database_test.dir/core/database_test.cc.o.d"
  "gpssn_core_database_test"
  "gpssn_core_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_core_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
