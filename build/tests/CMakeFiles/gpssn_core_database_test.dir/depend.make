# Empty dependencies file for gpssn_core_database_test.
# This may be replaced when dependencies are built.
