# Empty dependencies file for gpssn_ssn_dataset_test.
# This may be replaced when dependencies are built.
