# Empty compiler generated dependencies file for gpssn_index_social_index_test.
# This may be replaced when dependencies are built.
