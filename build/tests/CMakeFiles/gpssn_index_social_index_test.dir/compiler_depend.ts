# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gpssn_index_social_index_test.
