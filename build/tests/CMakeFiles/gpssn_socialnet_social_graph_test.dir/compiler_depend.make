# Empty compiler generated dependencies file for gpssn_socialnet_social_graph_test.
# This may be replaced when dependencies are built.
