file(REMOVE_RECURSE
  "CMakeFiles/gpssn_socialnet_social_graph_test.dir/socialnet/social_graph_test.cc.o"
  "CMakeFiles/gpssn_socialnet_social_graph_test.dir/socialnet/social_graph_test.cc.o.d"
  "gpssn_socialnet_social_graph_test"
  "gpssn_socialnet_social_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_socialnet_social_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
