# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gpssn_geom_rect_test.
