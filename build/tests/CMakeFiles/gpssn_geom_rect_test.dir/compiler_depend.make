# Empty compiler generated dependencies file for gpssn_geom_rect_test.
# This may be replaced when dependencies are built.
