file(REMOVE_RECURSE
  "CMakeFiles/gpssn_geom_rect_test.dir/geom/rect_test.cc.o"
  "CMakeFiles/gpssn_geom_rect_test.dir/geom/rect_test.cc.o.d"
  "gpssn_geom_rect_test"
  "gpssn_geom_rect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_geom_rect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
