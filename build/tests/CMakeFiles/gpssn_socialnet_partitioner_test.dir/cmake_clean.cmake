file(REMOVE_RECURSE
  "CMakeFiles/gpssn_socialnet_partitioner_test.dir/socialnet/partitioner_test.cc.o"
  "CMakeFiles/gpssn_socialnet_partitioner_test.dir/socialnet/partitioner_test.cc.o.d"
  "gpssn_socialnet_partitioner_test"
  "gpssn_socialnet_partitioner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_socialnet_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
