# Empty compiler generated dependencies file for gpssn_core_baseline_test.
# This may be replaced when dependencies are built.
