file(REMOVE_RECURSE
  "CMakeFiles/gpssn_ssn_serialize_fuzz_test.dir/ssn/serialize_fuzz_test.cc.o"
  "CMakeFiles/gpssn_ssn_serialize_fuzz_test.dir/ssn/serialize_fuzz_test.cc.o.d"
  "gpssn_ssn_serialize_fuzz_test"
  "gpssn_ssn_serialize_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_ssn_serialize_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
