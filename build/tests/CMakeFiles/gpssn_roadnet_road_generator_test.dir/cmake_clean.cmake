file(REMOVE_RECURSE
  "CMakeFiles/gpssn_roadnet_road_generator_test.dir/roadnet/road_generator_test.cc.o"
  "CMakeFiles/gpssn_roadnet_road_generator_test.dir/roadnet/road_generator_test.cc.o.d"
  "gpssn_roadnet_road_generator_test"
  "gpssn_roadnet_road_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_roadnet_road_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
