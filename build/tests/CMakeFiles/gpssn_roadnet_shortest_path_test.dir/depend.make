# Empty dependencies file for gpssn_roadnet_shortest_path_test.
# This may be replaced when dependencies are built.
