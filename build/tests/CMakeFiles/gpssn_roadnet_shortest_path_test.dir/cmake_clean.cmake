file(REMOVE_RECURSE
  "CMakeFiles/gpssn_roadnet_shortest_path_test.dir/roadnet/shortest_path_test.cc.o"
  "CMakeFiles/gpssn_roadnet_shortest_path_test.dir/roadnet/shortest_path_test.cc.o.d"
  "gpssn_roadnet_shortest_path_test"
  "gpssn_roadnet_shortest_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_roadnet_shortest_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
