# Empty dependencies file for gpssn_core_scores_test.
# This may be replaced when dependencies are built.
