# Empty dependencies file for gpssn_common_pagestore_test.
# This may be replaced when dependencies are built.
