file(REMOVE_RECURSE
  "CMakeFiles/gpssn_common_pagestore_test.dir/common/pagestore_test.cc.o"
  "CMakeFiles/gpssn_common_pagestore_test.dir/common/pagestore_test.cc.o.d"
  "gpssn_common_pagestore_test"
  "gpssn_common_pagestore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_common_pagestore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
