# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gpssn_geom_pruning_region_test.
