# Empty compiler generated dependencies file for gpssn_geom_pruning_region_test.
# This may be replaced when dependencies are built.
