file(REMOVE_RECURSE
  "CMakeFiles/gpssn_geom_pruning_region_test.dir/geom/pruning_region_test.cc.o"
  "CMakeFiles/gpssn_geom_pruning_region_test.dir/geom/pruning_region_test.cc.o.d"
  "gpssn_geom_pruning_region_test"
  "gpssn_geom_pruning_region_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_geom_pruning_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
