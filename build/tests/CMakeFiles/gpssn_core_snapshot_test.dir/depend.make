# Empty dependencies file for gpssn_core_snapshot_test.
# This may be replaced when dependencies are built.
