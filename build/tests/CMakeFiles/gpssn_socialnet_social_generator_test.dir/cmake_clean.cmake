file(REMOVE_RECURSE
  "CMakeFiles/gpssn_socialnet_social_generator_test.dir/socialnet/social_generator_test.cc.o"
  "CMakeFiles/gpssn_socialnet_social_generator_test.dir/socialnet/social_generator_test.cc.o.d"
  "gpssn_socialnet_social_generator_test"
  "gpssn_socialnet_social_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_socialnet_social_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
