# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gpssn_index_dynamic_poi_test.
