# Empty dependencies file for gpssn_index_dynamic_poi_test.
# This may be replaced when dependencies are built.
