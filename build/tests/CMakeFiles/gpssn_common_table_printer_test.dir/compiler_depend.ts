# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gpssn_common_table_printer_test.
