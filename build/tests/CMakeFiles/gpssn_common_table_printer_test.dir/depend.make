# Empty dependencies file for gpssn_common_table_printer_test.
# This may be replaced when dependencies are built.
