# Empty dependencies file for gpssn_index_rstar_tree_test.
# This may be replaced when dependencies are built.
