file(REMOVE_RECURSE
  "CMakeFiles/gpssn_index_rstar_tree_test.dir/index/rstar_tree_test.cc.o"
  "CMakeFiles/gpssn_index_rstar_tree_test.dir/index/rstar_tree_test.cc.o.d"
  "gpssn_index_rstar_tree_test"
  "gpssn_index_rstar_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_index_rstar_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
