file(REMOVE_RECURSE
  "CMakeFiles/gpssn_ssn_serialize_test.dir/ssn/serialize_test.cc.o"
  "CMakeFiles/gpssn_ssn_serialize_test.dir/ssn/serialize_test.cc.o.d"
  "gpssn_ssn_serialize_test"
  "gpssn_ssn_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpssn_ssn_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
