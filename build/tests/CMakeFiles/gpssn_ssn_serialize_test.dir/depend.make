# Empty dependencies file for gpssn_ssn_serialize_test.
# This may be replaced when dependencies are built.
