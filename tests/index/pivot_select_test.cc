// Tests for Algorithm 1 (pivot selection): selected pivots must be valid
// and the cost-model local search should beat random pivots on lower-bound
// tightness (statistically).

#include "index/pivot_select.h"

#include <set>

#include <gtest/gtest.h>

#include "roadnet/road_generator.h"
#include "roadnet/road_pivots.h"
#include "socialnet/social_generator.h"
#include "socialnet/social_pivots.h"

namespace gpssn {
namespace {

TEST(PivotSelectTest, RoadPivotsValidAndDistinct) {
  RoadGenOptions gen;
  gen.num_vertices = 800;
  gen.seed = 51;
  const RoadNetwork g = GenerateRoadNetwork(gen);
  PivotSelectOptions options;
  options.seed = 1;
  const auto pivots = SelectRoadPivots(g, 5, options);
  ASSERT_EQ(pivots.size(), 5u);
  std::set<VertexId> unique(pivots.begin(), pivots.end());
  EXPECT_EQ(unique.size(), 5u);
  for (VertexId p : pivots) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, g.num_vertices());
  }
}

TEST(PivotSelectTest, SocialPivotsValidAndDistinct) {
  SocialGenOptions gen;
  gen.num_users = 900;
  gen.seed = 52;
  const SocialNetwork g = GenerateSocialNetwork(gen);
  PivotSelectOptions options;
  options.seed = 2;
  const auto pivots = SelectSocialPivots(g, 4, options);
  ASSERT_EQ(pivots.size(), 4u);
  std::set<UserId> unique(pivots.begin(), pivots.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(PivotSelectTest, OptimizedBeatsRandomOnRoadTightness) {
  RoadGenOptions gen;
  gen.num_vertices = 1200;
  gen.seed = 53;
  const RoadNetwork g = GenerateRoadNetwork(gen);
  PivotSelectOptions options;
  options.seed = 3;
  const auto selected = SelectRoadPivots(g, 4, options);
  // Average over several random pivot draws to avoid flaky comparisons.
  double random_tightness = 0;
  for (uint64_t s = 0; s < 5; ++s) {
    random_tightness += MeasureRoadPivotTightness(
        g, RandomRoadPivots(g, 4, 100 + s), 60, 17);
  }
  random_tightness /= 5;
  const double selected_tightness =
      MeasureRoadPivotTightness(g, selected, 60, 17);
  EXPECT_GE(selected_tightness, random_tightness * 0.95)
      << "Algorithm 1 should not be clearly worse than random";
  EXPECT_GT(selected_tightness, 0.2);
}

TEST(PivotSelectTest, OptimizedBeatsRandomOnSocialTightness) {
  SocialGenOptions gen;
  gen.num_users = 1500;
  gen.seed = 54;
  const SocialNetwork g = GenerateSocialNetwork(gen);
  PivotSelectOptions options;
  options.seed = 4;
  const auto selected = SelectSocialPivots(g, 4, options);
  double random_tightness = 0;
  for (uint64_t s = 0; s < 5; ++s) {
    random_tightness += MeasureSocialPivotTightness(
        g, RandomSocialPivots(g, 4, 200 + s), 60, 19);
  }
  random_tightness /= 5;
  const double selected_tightness =
      MeasureSocialPivotTightness(g, selected, 60, 19);
  EXPECT_GE(selected_tightness, random_tightness * 0.9);
}

TEST(PivotSelectTest, SingleVertexGraphEdgeCase) {
  RoadNetworkBuilder b;
  b.AddVertex({0, 0});
  b.AddVertex({1, 0});
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  const RoadNetwork g = b.Build();
  PivotSelectOptions options;
  const auto pivots = SelectRoadPivots(g, 1, options);
  EXPECT_EQ(pivots.size(), 1u);
}

TEST(PivotSelectTest, DeterministicForSeed) {
  RoadGenOptions gen;
  gen.num_vertices = 500;
  gen.seed = 55;
  const RoadNetwork g = GenerateRoadNetwork(gen);
  PivotSelectOptions options;
  options.seed = 5;
  EXPECT_EQ(SelectRoadPivots(g, 3, options), SelectRoadPivots(g, 3, options));
}

}  // namespace
}  // namespace gpssn
