// Parameterized configuration sweeps over both indexes: structural
// invariants and query exactness must hold for every fanout / cell size /
// radius-envelope combination, not just the defaults.

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/database.h"
#include "ssn/dataset.h"

namespace gpssn {
namespace {

struct IndexConfig {
  int rtree_max_entries;
  double r_min, r_max;
  int leaf_cell_size;
  int fanout;
  int pivots;
};

class IndexParamTest : public ::testing::TestWithParam<IndexConfig> {};

TEST_P(IndexParamTest, InvariantsAndExactAnswers) {
  const IndexConfig config = GetParam();
  SyntheticSsnOptions data;
  data.num_road_vertices = 250;
  data.num_pois = 120;
  data.num_users = 220;
  data.num_topics = 15;
  data.space_size = 20.0;
  data.seed = 97;
  GpssnBuildOptions build;
  build.num_road_pivots = config.pivots;
  build.num_social_pivots = config.pivots;
  build.poi_index.rtree.max_entries = config.rtree_max_entries;
  build.poi_index.r_min = config.r_min;
  build.poi_index.r_max = config.r_max;
  build.social_index.leaf_cell_size = config.leaf_cell_size;
  build.social_index.fanout = config.fanout;
  GpssnDatabase db(MakeSynthetic(data), build);

  // Structural invariants.
  EXPECT_TRUE(db.poi_index().tree().CheckInvariants());
  EXPECT_EQ(db.poi_index().node_aug(db.poi_index().tree().root()).subtree_pois,
            db.ssn().num_pois());
  EXPECT_EQ(db.social_index().node(db.social_index().root()).subtree_users,
            db.ssn().num_users());
  for (SNodeId id = 0; id < db.social_index().num_nodes(); ++id) {
    EXPECT_LE(
        static_cast<int>(db.social_index().node(id).children.size()),
        config.fanout);
  }

  // Exactness across the radius envelope.
  for (double radius : {config.r_min, (config.r_min + config.r_max) / 2,
                        config.r_max}) {
    GpssnQuery q;
    q.issuer = 31 % db.ssn().num_users();
    q.tau = 3;
    q.gamma = 0.25;
    q.theta = 0.25;
    q.radius = radius;
    auto got = db.Query(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const GpssnAnswer oracle = BruteForceGpssn(db.ssn(), q);
    ASSERT_EQ(got->found, oracle.found) << "radius " << radius;
    if (oracle.found) {
      EXPECT_NEAR(got->max_dist, oracle.max_dist, 1e-9) << "radius " << radius;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, IndexParamTest,
    ::testing::Values(IndexConfig{8, 0.5, 2.0, 8, 2, 1},
                      IndexConfig{16, 0.25, 4.0, 16, 4, 3},
                      IndexConfig{32, 0.5, 4.0, 32, 8, 5},
                      IndexConfig{64, 1.0, 6.0, 64, 16, 7},
                      IndexConfig{8, 0.1, 8.0, 100, 3, 2},
                      IndexConfig{48, 2.0, 2.0, 12, 5, 10}));

}  // namespace
}  // namespace gpssn
