// Tests for dynamic POI insertion: after any sequence of inserts, the
// incrementally maintained index must be equivalent to an index built from
// scratch over the grown network, and queries must match the brute-force
// oracle.

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/database.h"
#include "index/poi_index.h"
#include "ssn/dataset.h"

namespace gpssn {
namespace {

SyntheticSsnOptions SmallData(uint64_t seed) {
  SyntheticSsnOptions data;
  data.num_road_vertices = 250;
  data.num_pois = 80;
  data.num_users = 150;
  data.num_topics = 15;
  data.space_size = 20.0;
  data.seed = seed;
  return data;
}

TEST(DynamicPoiTest, InsertRejectsBadArguments) {
  SpatialSocialNetwork ssn = MakeSynthetic(SmallData(1));
  EXPECT_TRUE(ssn.AddPoi({-1, 0.5}, {0}).status().IsInvalidArgument());
  EXPECT_TRUE(ssn.AddPoi({0, 1.5}, {0}).status().IsInvalidArgument());
  EXPECT_TRUE(ssn.AddPoi({0, 0.5}, {999}).status().IsInvalidArgument());
  auto ok = ssn.AddPoi({0, 0.5}, {3, 1, 3});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 80);
  // Keywords were deduplicated and sorted.
  EXPECT_EQ(ssn.poi(*ok).keywords, (std::vector<KeywordId>{1, 3}));
  EXPECT_TRUE(ssn.Validate().ok());
}

TEST(DynamicPoiTest, IncrementalIndexMatchesFreshRebuild) {
  SpatialSocialNetwork ssn = MakeSynthetic(SmallData(2));
  RoadPivotTable pivots(ssn.road(), RandomRoadPivots(ssn.road(), 3, 5));
  PoiIndexOptions options;
  options.r_min = 0.5;
  options.r_max = 3.0;
  PoiIndex incremental(&ssn, &pivots, options);

  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    const EdgePosition pos{
        static_cast<EdgeId>(rng.NextBounded(ssn.road().num_edges())),
        rng.UniformDouble()};
    std::vector<KeywordId> kws = {
        static_cast<KeywordId>(rng.NextBounded(15)),
        static_cast<KeywordId>(rng.NextBounded(15))};
    auto id = ssn.AddPoi(pos, std::move(kws));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(incremental.InsertPoi(*id).ok());
  }

  // A from-scratch index over the grown network must agree on every
  // deterministic augmentation (samples are random and excluded).
  PoiIndex fresh(&ssn, &pivots, options);
  ASSERT_EQ(ssn.num_pois(), 92);
  for (PoiId id = 0; id < ssn.num_pois(); ++id) {
    const PoiAug& a = incremental.poi_aug(id);
    const PoiAug& b = fresh.poi_aug(id);
    EXPECT_EQ(a.sup_keywords, b.sup_keywords) << "poi " << id;
    EXPECT_EQ(a.sub_keywords, b.sub_keywords) << "poi " << id;
    ASSERT_EQ(a.pivot_dist.size(), b.pivot_dist.size());
    for (size_t k = 0; k < a.pivot_dist.size(); ++k) {
      EXPECT_NEAR(a.pivot_dist[k], b.pivot_dist[k], 1e-9);
    }
    // The incremental bit vector may carry extra bits from superseded
    // states, but must cover the exact sup set.
    for (KeywordId kw : b.sup_keywords) {
      EXPECT_TRUE(a.v_sup.MayContain(kw));
    }
  }
  EXPECT_TRUE(incremental.tree().CheckInvariants());
  EXPECT_EQ(incremental.tree().size(), ssn.num_pois());
  EXPECT_EQ(incremental.node_aug(incremental.tree().root()).subtree_pois,
            ssn.num_pois());
}

TEST(DynamicPoiTest, InsertPoiRejectsWrongId) {
  SpatialSocialNetwork ssn = MakeSynthetic(SmallData(3));
  RoadPivotTable pivots(ssn.road(), RandomRoadPivots(ssn.road(), 2, 5));
  PoiIndexOptions options;
  PoiIndex index(&ssn, &pivots, options);
  EXPECT_TRUE(index.InsertPoi(5).IsInvalidArgument());     // Already present.
  EXPECT_TRUE(index.InsertPoi(80).IsInvalidArgument());    // Not in network.
}

TEST(DynamicPoiTest, DatabaseQueriesStayExactAfterInserts) {
  GpssnBuildOptions build;
  build.num_road_pivots = 3;
  build.num_social_pivots = 3;
  build.social_index.leaf_cell_size = 16;
  GpssnDatabase db(MakeSynthetic(SmallData(4)), build);

  GpssnQuery q;
  q.issuer = 11;
  q.tau = 3;
  q.gamma = 0.25;
  q.theta = 0.25;
  q.radius = 2.0;

  Rng rng(9);
  for (int round = 0; round < 4; ++round) {
    // Open a couple of new facilities.
    for (int i = 0; i < 3; ++i) {
      const EdgePosition pos{
          static_cast<EdgeId>(rng.NextBounded(db.ssn().road().num_edges())),
          rng.UniformDouble()};
      auto id = db.AddPoi(pos, {static_cast<KeywordId>(rng.NextBounded(15))});
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    auto got = db.Query(q);
    ASSERT_TRUE(got.ok());
    const GpssnAnswer oracle = BruteForceGpssn(db.ssn(), q);
    ASSERT_EQ(got->found, oracle.found) << "round " << round;
    if (oracle.found) {
      EXPECT_NEAR(got->max_dist, oracle.max_dist, 1e-9) << "round " << round;
    }
  }
}

TEST(DynamicPoiTest, SharedCacheSurvivesUnrelatedAddPoi) {
  // Regression: AddPoi used to Clear() the whole shared DistanceCache, so
  // every batch worker recomputed every row after ANY insert. Invalidation
  // is now generation-tagged per POI column: rows cached before an
  // UNRELATED AddPoi must still serve hits afterwards.
  GpssnBuildOptions build;
  build.num_road_pivots = 3;
  build.num_social_pivots = 3;
  build.distance_cache_entries = 1 << 16;
  GpssnDatabase db(MakeSynthetic(SmallData(6)), build);
  ASSERT_NE(db.distance_cache(), nullptr);

  GpssnQuery q;
  q.issuer = 11;
  q.tau = 3;
  q.gamma = 0.2;
  q.theta = 0.2;
  q.radius = 2.5;
  // First run fills the cache; second run proves rows actually hit.
  ASSERT_TRUE(db.Query(q).ok());
  const auto warm = db.distance_cache()->GetStats();
  ASSERT_GT(warm.insertions, 0u) << "workload never touched the cache; "
                                    "the regression check below is vacuous";
  ASSERT_TRUE(db.Query(q).ok());
  const auto before = db.distance_cache()->GetStats();
  ASSERT_GT(before.hits, warm.hits);

  // Open a facility somewhere; the existing columns must keep serving.
  Rng rng(13);
  const EdgePosition pos{
      static_cast<EdgeId>(rng.NextBounded(db.ssn().road().num_edges())),
      rng.UniformDouble()};
  auto id = db.AddPoi(pos, {1});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_GT(db.distance_cache()->GetStats().entries, 0u)
      << "AddPoi wiped the cache wholesale";

  QueryStats stats;
  auto got = db.Query(q, QueryOptions(), &stats);
  ASSERT_TRUE(got.ok());
  const auto after = db.distance_cache()->GetStats();
  EXPECT_GT(after.hits, before.hits)
      << "no cached row survived the unrelated AddPoi";
  // And the answers stay exact over the grown network.
  const GpssnAnswer oracle = BruteForceGpssn(db.ssn(), q);
  ASSERT_EQ(got->found, oracle.found);
  if (oracle.found) {
    EXPECT_NEAR(got->max_dist, oracle.max_dist, 1e-9);
  }
}

TEST(DynamicPoiTest, NewPoiCanBecomeTheAnswer) {
  GpssnBuildOptions build;
  build.num_road_pivots = 2;
  build.num_social_pivots = 2;
  build.social_index.leaf_cell_size = 16;
  GpssnDatabase db(MakeSynthetic(SmallData(5)), build);
  GpssnQuery q;
  q.issuer = 7;
  q.tau = 1;  // Only the issuer: the answer is their best-matching ball.
  q.gamma = 0.0;
  q.theta = 0.0;
  q.radius = 1.0;
  auto before = db.Query(q);
  ASSERT_TRUE(before.ok());
  // Open a facility right on the issuer's home edge.
  const EdgePosition home = db.ssn().user_home(q.issuer);
  auto id = db.AddPoi(home, {0});
  ASSERT_TRUE(id.ok());
  auto after = db.Query(q);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->found);
  EXPECT_LE(after->max_dist, before->found ? before->max_dist : kInfDistance);
  EXPECT_NEAR(after->max_dist, 0.0, 1e-6);  // The new POI sits at home.
}

}  // namespace
}  // namespace gpssn
