// Tests for the social index I_S: partition-tree structure, interest and
// pivot bounds (Eqs. 9-14), and page layout.

#include "index/social_index.h"

#include <gtest/gtest.h>

#include "ssn/dataset.h"

namespace gpssn {
namespace {

class SocialIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSsnOptions data;
    data.num_road_vertices = 300;
    data.num_pois = 150;
    data.num_users = 800;
    data.num_topics = 25;
    data.seed = 31;
    ssn_ = std::make_unique<SpatialSocialNetwork>(MakeSynthetic(data));
    road_pivots_ = std::make_unique<RoadPivotTable>(
        ssn_->road(), RandomRoadPivots(ssn_->road(), 3, 1));
    social_pivots_ = std::make_unique<SocialPivotTable>(
        ssn_->social(), RandomSocialPivots(ssn_->social(), 3, 2));
    options_.leaf_cell_size = 32;
    options_.fanout = 4;
    index_ = std::make_unique<SocialIndex>(ssn_.get(), social_pivots_.get(),
                                           road_pivots_.get(), options_);
  }

  std::unique_ptr<SpatialSocialNetwork> ssn_;
  std::unique_ptr<RoadPivotTable> road_pivots_;
  std::unique_ptr<SocialPivotTable> social_pivots_;
  SocialIndexOptions options_;
  std::unique_ptr<SocialIndex> index_;
};

TEST_F(SocialIndexTest, EveryUserInExactlyOneLeaf) {
  std::vector<int> seen(ssn_->num_users(), 0);
  for (SNodeId id = 0; id < index_->num_nodes(); ++id) {
    const SocialIndexNode& node = index_->node(id);
    if (!node.is_leaf()) continue;
    for (UserId u : node.users) ++seen[u];
  }
  for (UserId u = 0; u < ssn_->num_users(); ++u) {
    ASSERT_EQ(seen[u], 1) << "user " << u;
  }
}

TEST_F(SocialIndexTest, UniformLeafDepthAndReachability) {
  // Every leaf must sit at level 0 and be reachable from the root; every
  // internal node's children are exactly one level below.
  std::vector<bool> reached(index_->num_nodes(), false);
  std::vector<SNodeId> stack = {index_->root()};
  reached[index_->root()] = true;
  int leaves = 0;
  while (!stack.empty()) {
    const SNodeId id = stack.back();
    stack.pop_back();
    const SocialIndexNode& node = index_->node(id);
    if (node.is_leaf()) {
      ++leaves;
      EXPECT_TRUE(node.children.empty());
      continue;
    }
    EXPECT_FALSE(node.children.empty());
    for (SNodeId child : node.children) {
      EXPECT_EQ(index_->node(child).level, node.level - 1);
      EXPECT_FALSE(reached[child]) << "node reached twice";
      reached[child] = true;
      stack.push_back(child);
    }
  }
  EXPECT_GT(leaves, 1);
  for (SNodeId id = 0; id < index_->num_nodes(); ++id) {
    EXPECT_TRUE(reached[id]) << "orphan node " << id;
  }
}

TEST_F(SocialIndexTest, InterestBoundsContainMembers) {
  std::vector<SNodeId> stack = {index_->root()};
  while (!stack.empty()) {
    const SNodeId id = stack.back();
    stack.pop_back();
    const SocialIndexNode& node = index_->node(id);
    if (node.is_leaf()) {
      for (UserId u : node.users) {
        const auto w = ssn_->social().Interests(u);
        for (int f = 0; f < ssn_->num_topics(); ++f) {
          ASSERT_LE(node.lb_w[f], w[f] + 1e-12);
          ASSERT_GE(node.ub_w[f], w[f] - 1e-12);
        }
      }
    } else {
      for (SNodeId child : node.children) {
        const SocialIndexNode& c = index_->node(child);
        for (int f = 0; f < ssn_->num_topics(); ++f) {
          ASSERT_LE(node.lb_w[f], c.lb_w[f] + 1e-12);
          ASSERT_GE(node.ub_w[f], c.ub_w[f] - 1e-12);
        }
        stack.push_back(child);
      }
    }
  }
}

TEST_F(SocialIndexTest, PivotBoundsContainMembers) {
  std::vector<SNodeId> stack = {index_->root()};
  while (!stack.empty()) {
    const SNodeId id = stack.back();
    stack.pop_back();
    const SocialIndexNode& node = index_->node(id);
    if (node.is_leaf()) {
      for (UserId u : node.users) {
        for (int k = 0; k < social_pivots_->num_pivots(); ++k) {
          const int hops = social_pivots_->UserToPivot(u, k);
          ASSERT_LE(node.lb_sp[k], hops);
          ASSERT_GE(node.ub_sp[k], hops);
        }
        const auto& rp = index_->user_road_pivot_dists(u);
        for (int k = 0; k < road_pivots_->num_pivots(); ++k) {
          ASSERT_LE(node.lb_rp[k], rp[k] + 1e-9);
          ASSERT_GE(node.ub_rp[k], rp[k] - 1e-9);
        }
      }
    } else {
      stack.insert(stack.end(), node.children.begin(), node.children.end());
    }
  }
}

TEST_F(SocialIndexTest, UserRoadPivotDistancesAreExact) {
  for (UserId u = 0; u < ssn_->num_users(); u += 37) {
    const auto& rp = index_->user_road_pivot_dists(u);
    ASSERT_EQ(rp.size(), static_cast<size_t>(road_pivots_->num_pivots()));
    for (int k = 0; k < road_pivots_->num_pivots(); ++k) {
      EXPECT_NEAR(rp[k], road_pivots_->PositionToPivot(ssn_->user_home(u), k),
                  1e-9);
    }
  }
}

TEST_F(SocialIndexTest, SubtreeCountsSumToAllUsers) {
  EXPECT_EQ(index_->node(index_->root()).subtree_users, ssn_->num_users());
}

TEST_F(SocialIndexTest, FanoutRespected) {
  for (SNodeId id = 0; id < index_->num_nodes(); ++id) {
    EXPECT_LE(static_cast<int>(index_->node(id).children.size()),
              options_.fanout);
  }
}

TEST_F(SocialIndexTest, PagesAssigned) {
  for (SNodeId id = 0; id < index_->num_nodes(); ++id) {
    EXPECT_NE(index_->node(id).page, kInvalidPage);
  }
  for (UserId u = 0; u < ssn_->num_users(); ++u) {
    EXPECT_NE(index_->user_page(u), kInvalidPage);
  }
}

}  // namespace
}  // namespace gpssn
