// Tests for the R*-tree: structural invariants under incremental insertion
// and query equivalence against linear scans, parameterized over sizes and
// point distributions.

#include "index/rstar_tree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gpssn {
namespace {

enum class Distro { kUniform, kClustered, kDiagonal };

std::vector<Point> MakePoints(int n, Distro distro, Rng* rng) {
  std::vector<Point> pts(n);
  switch (distro) {
    case Distro::kUniform:
      for (Point& p : pts) {
        p = {rng->UniformDouble(0, 100), rng->UniformDouble(0, 100)};
      }
      break;
    case Distro::kClustered:
      for (int i = 0; i < n; ++i) {
        const double cx = (i % 5) * 20.0 + 10.0;
        const double cy = (i / 5 % 5) * 20.0 + 10.0;
        pts[i] = {cx + rng->Normal(), cy + rng->Normal()};
      }
      break;
    case Distro::kDiagonal:
      for (int i = 0; i < n; ++i) {
        const double t = rng->UniformDouble(0, 100);
        pts[i] = {t, t + rng->UniformDouble(-1, 1)};
      }
      break;
  }
  return pts;
}

struct Config {
  int n;
  Distro distro;
};

class RStarTreeParamTest : public ::testing::TestWithParam<Config> {};

TEST_P(RStarTreeParamTest, InvariantsAndQueryEquivalence) {
  const Config config = GetParam();
  Rng rng(static_cast<uint64_t>(config.n) * 31 +
          static_cast<uint64_t>(config.distro));
  const std::vector<Point> pts = MakePoints(config.n, config.distro, &rng);
  RStarTree tree;
  for (int i = 0; i < config.n; ++i) {
    tree.Insert(pts[i], i);
  }
  EXPECT_EQ(tree.size(), config.n);
  ASSERT_TRUE(tree.CheckInvariants());

  for (int q = 0; q < 25; ++q) {
    Rect query;
    query.min_x = rng.UniformDouble(0, 90);
    query.min_y = rng.UniformDouble(0, 90);
    query.max_x = query.min_x + rng.UniformDouble(0, 15);
    query.max_y = query.min_y + rng.UniformDouble(0, 15);
    std::vector<int32_t> got;
    tree.RangeQuery(query, &got);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (int i = 0; i < config.n; ++i) {
      if (query.ContainsPoint(pts[i])) want.push_back(i);
    }
    ASSERT_EQ(got, want);
  }

  for (int q = 0; q < 25; ++q) {
    const Point center{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)};
    const double radius = rng.UniformDouble(0.5, 20);
    std::vector<int32_t> got;
    tree.CircleQuery(center, radius, &got);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (int i = 0; i < config.n; ++i) {
      if (EuclideanDistance(center, pts[i]) <= radius) want.push_back(i);
    }
    ASSERT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDistros, RStarTreeParamTest,
    ::testing::Values(Config{0, Distro::kUniform}, Config{1, Distro::kUniform},
                      Config{33, Distro::kUniform},
                      Config{500, Distro::kUniform},
                      Config{3000, Distro::kUniform},
                      Config{500, Distro::kClustered},
                      Config{2000, Distro::kClustered},
                      Config{500, Distro::kDiagonal},
                      Config{2000, Distro::kDiagonal}));

TEST(RStarTreeTest, EmptyTreeQueries) {
  RStarTree tree;
  std::vector<int32_t> out;
  tree.RangeQuery(Rect{0, 0, 100, 100}, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.bounds().empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, DuplicatePointsSupported) {
  RStarTree tree;
  for (int i = 0; i < 200; ++i) tree.Insert(Point{5, 5}, i);
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<int32_t> out;
  tree.RangeQuery(Rect{5, 5, 5, 5}, &out);
  EXPECT_EQ(out.size(), 200u);
}

TEST(RStarTreeTest, HeightGrowsLogarithmically) {
  Rng rng(3);
  RStarTree tree;
  for (int i = 0; i < 5000; ++i) {
    tree.Insert({rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)}, i);
  }
  EXPECT_GE(tree.height(), 2);
  EXPECT_LE(tree.height(), 5);
}

TEST(RStarTreeTest, SmallFanoutStressesSplits) {
  RStarTree::Options options;
  options.max_entries = 4;
  RStarTree tree(options);
  Rng rng(7);
  std::vector<Point> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)});
    tree.Insert(pts.back(), i);
    if (i % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "after " << i;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants());
  std::vector<int32_t> out;
  tree.RangeQuery(tree.bounds(), &out);
  EXPECT_EQ(out.size(), 400u);
}

TEST(RStarTreeTest, BoundsCoverAllPoints) {
  Rng rng(11);
  RStarTree tree;
  std::vector<Point> pts = MakePoints(300, Distro::kUniform, &rng);
  for (int i = 0; i < 300; ++i) tree.Insert(pts[i], i);
  const Rect bounds = tree.bounds();
  for (const Point& p : pts) EXPECT_TRUE(bounds.ContainsPoint(p));
}

}  // namespace
}  // namespace gpssn
