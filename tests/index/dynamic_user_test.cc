// Tests for dynamic user-interest updates: after any sequence of profile
// changes, I_S's interest boxes must stay exact and queries must match the
// brute-force oracle.

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/database.h"
#include "ssn/dataset.h"

namespace gpssn {
namespace {

SyntheticSsnOptions SmallData(uint64_t seed) {
  SyntheticSsnOptions data;
  data.num_road_vertices = 250;
  data.num_pois = 80;
  data.num_users = 150;
  data.num_topics = 12;
  data.space_size = 20.0;
  data.seed = seed;
  return data;
}

std::vector<double> RandomInterests(int d, Rng* rng) {
  std::vector<double> w(d, 0.0);
  for (double& p : w) {
    if (rng->Bernoulli(0.25)) p = rng->UniformDouble();
  }
  return w;
}

TEST(DynamicUserTest, RejectsBadUpdates) {
  GpssnDatabase db(MakeSynthetic(SmallData(1)));
  const std::vector<double> wrong_dim = {0.5};
  EXPECT_TRUE(db.UpdateUserInterests(0, wrong_dim).IsInvalidArgument());
  const std::vector<double> out_of_range(12, 1.5);
  EXPECT_TRUE(db.UpdateUserInterests(0, out_of_range).IsInvalidArgument());
  std::vector<double> ok(12, 0.5);
  EXPECT_TRUE(db.UpdateUserInterests(-1, ok).IsInvalidArgument());
  EXPECT_TRUE(db.UpdateUserInterests(0, ok).ok());
}

TEST(DynamicUserTest, BoxesStayExactAfterUpdates) {
  GpssnBuildOptions build;
  build.social_index.leaf_cell_size = 16;
  GpssnDatabase db(MakeSynthetic(SmallData(2)), build);
  Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    const UserId u = rng.NextBounded(db.ssn().num_users());
    ASSERT_TRUE(db.UpdateUserInterests(u, RandomInterests(12, &rng)).ok());
  }
  // Every node's box must exactly bound its members (no slack left behind,
  // no member outside).
  const SocialIndex& index = db.social_index();
  const SocialNetwork& social = db.ssn().social();
  for (SNodeId id = 0; id < index.num_nodes(); ++id) {
    const SocialIndexNode& node = index.node(id);
    if (!node.is_leaf()) continue;
    for (int f = 0; f < 12; ++f) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      for (UserId u : node.users) {
        lo = std::min(lo, social.Interests(u)[f]);
        hi = std::max(hi, social.Interests(u)[f]);
      }
      EXPECT_DOUBLE_EQ(node.lb_w[f], lo) << "node " << id << " topic " << f;
      EXPECT_DOUBLE_EQ(node.ub_w[f], hi) << "node " << id << " topic " << f;
    }
  }
}

TEST(DynamicUserTest, QueriesStayExactAfterUpdates) {
  GpssnBuildOptions build;
  build.num_road_pivots = 3;
  build.num_social_pivots = 3;
  build.social_index.leaf_cell_size = 16;
  GpssnDatabase db(MakeSynthetic(SmallData(3)), build);
  GpssnQuery q;
  q.issuer = 9;
  q.tau = 3;
  q.gamma = 0.25;
  q.theta = 0.25;
  q.radius = 2.0;
  Rng rng(11);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      const UserId u = rng.NextBounded(db.ssn().num_users());
      ASSERT_TRUE(db.UpdateUserInterests(u, RandomInterests(12, &rng)).ok());
    }
    auto got = db.Query(q);
    ASSERT_TRUE(got.ok());
    const GpssnAnswer oracle = BruteForceGpssn(db.ssn(), q);
    ASSERT_EQ(got->found, oracle.found) << "round " << round;
    if (oracle.found) {
      EXPECT_NEAR(got->max_dist, oracle.max_dist, 1e-9) << "round " << round;
    }
  }
}

TEST(DynamicUserTest, UpdateCanCreateAndDestroyAnswers) {
  GpssnBuildOptions build;
  build.social_index.leaf_cell_size = 16;
  GpssnDatabase db(MakeSynthetic(SmallData(4)), build);
  GpssnQuery q;
  q.issuer = 5;
  q.tau = 2;
  q.gamma = 0.9;  // Nearly impossible pairwise score...
  q.theta = 0.0;
  q.radius = 2.0;
  // ...unless we force the issuer and one friend to identical strong
  // profiles.
  const auto friends = db.ssn().social().Friends(q.issuer);
  ASSERT_FALSE(friends.empty());
  std::vector<double> strong(12, 0.0);
  strong[0] = strong[1] = 1.0;  // Dot product = 2.0 >= 0.9.
  ASSERT_TRUE(db.UpdateUserInterests(q.issuer, strong).ok());
  ASSERT_TRUE(db.UpdateUserInterests(friends[0], strong).ok());
  auto answer = db.Query(q);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->found);
  // Now destroy the friendship's compatibility.
  const std::vector<double> zero(12, 0.0);
  ASSERT_TRUE(db.UpdateUserInterests(friends[0], zero).ok());
  // Any other qualifying partner would need score >= 0.9 with `strong`.
  const GpssnAnswer oracle = BruteForceGpssn(db.ssn(), q);
  auto after = db.Query(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->found, oracle.found);
}

}  // namespace
}  // namespace gpssn
