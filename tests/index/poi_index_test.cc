// Tests for the POI index I_R: sup/sub keyword sets, pivot distance
// bounds, node aggregation, and page layout.

#include "index/poi_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/scores.h"
#include "ssn/dataset.h"

namespace gpssn {
namespace {

class PoiIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSsnOptions data;
    data.num_road_vertices = 400;
    data.num_pois = 250;
    data.num_users = 200;
    data.num_topics = 30;
    data.seed = 21;
    ssn_ = std::make_unique<SpatialSocialNetwork>(MakeSynthetic(data));
    pivots_ = std::make_unique<RoadPivotTable>(
        ssn_->road(), RandomRoadPivots(ssn_->road(), 4, 5));
    options_.r_min = 0.5;
    options_.r_max = 3.0;
    index_ = std::make_unique<PoiIndex>(ssn_.get(), pivots_.get(), options_);
  }

  std::unique_ptr<SpatialSocialNetwork> ssn_;
  std::unique_ptr<RoadPivotTable> pivots_;
  PoiIndexOptions options_;
  std::unique_ptr<PoiIndex> index_;
};

TEST_F(PoiIndexTest, SupIsSupersetOfSubAndOwnKeywords) {
  for (PoiId id = 0; id < ssn_->num_pois(); ++id) {
    const PoiAug& aug = index_->poi_aug(id);
    ASSERT_TRUE(std::includes(aug.sup_keywords.begin(), aug.sup_keywords.end(),
                              aug.sub_keywords.begin(), aug.sub_keywords.end()))
        << "sub_K must be a subset of sup_K for poi " << id;
    const auto& own = ssn_->poi(id).keywords;
    ASSERT_TRUE(std::includes(aug.sup_keywords.begin(), aug.sup_keywords.end(),
                              own.begin(), own.end()));
    // The POI is inside its own r_min ball, so sub_K covers its keywords.
    ASSERT_TRUE(std::includes(aug.sub_keywords.begin(), aug.sub_keywords.end(),
                              own.begin(), own.end()));
  }
}

TEST_F(PoiIndexTest, SupCoversAnyBallWithinEnvelope) {
  // Property: keywords of every ball B(o, r) with r <= r_max are contained
  // in sup_K(o) — that is what makes the match-score upper bound sound.
  DijkstraEngine engine(&ssn_->road());
  PoiLocator locator(&ssn_->road(), &ssn_->pois());
  Rng rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    const PoiId center = rng.NextBounded(ssn_->num_pois());
    const double r = rng.UniformDouble(options_.r_min, options_.r_max);
    const auto ball = locator.Ball(ssn_->poi(center).position, r, &engine);
    const auto ball_kws = UnionKeywords(*ssn_, ball);
    const PoiAug& aug = index_->poi_aug(center);
    ASSERT_TRUE(std::includes(aug.sup_keywords.begin(), aug.sup_keywords.end(),
                              ball_kws.begin(), ball_kws.end()))
        << "center " << center << " r " << r;
    // Bit-vector signature also covers everything.
    for (KeywordId kw : ball_kws) ASSERT_TRUE(aug.v_sup.MayContain(kw));
  }
}

TEST_F(PoiIndexTest, SubIsSubsetOfAnyBallKeywords) {
  DijkstraEngine engine(&ssn_->road());
  PoiLocator locator(&ssn_->road(), &ssn_->pois());
  Rng rng(10);
  for (int trial = 0; trial < 40; ++trial) {
    const PoiId center = rng.NextBounded(ssn_->num_pois());
    const double r = rng.UniformDouble(options_.r_min, options_.r_max);
    const auto ball = locator.Ball(ssn_->poi(center).position, r, &engine);
    const auto ball_kws = UnionKeywords(*ssn_, ball);
    const PoiAug& aug = index_->poi_aug(center);
    ASSERT_TRUE(std::includes(ball_kws.begin(), ball_kws.end(),
                              aug.sub_keywords.begin(), aug.sub_keywords.end()));
  }
}

TEST_F(PoiIndexTest, PivotDistancesAreExact) {
  DijkstraEngine engine(&ssn_->road());
  for (PoiId id = 0; id < ssn_->num_pois(); id += 13) {
    const PoiAug& aug = index_->poi_aug(id);
    for (int k = 0; k < pivots_->num_pivots(); ++k) {
      EXPECT_NEAR(aug.pivot_dist[k],
                  pivots_->PositionToPivot(ssn_->poi(id).position, k), 1e-9);
    }
  }
}

TEST_F(PoiIndexTest, NodeBoundsContainMemberDistances) {
  // Eqs. 7-8: node per-pivot bounds must sandwich every member POI.
  const RStarTree& tree = index_->tree();
  std::vector<RNodeId> stack = {tree.root()};
  while (!stack.empty()) {
    const RNodeId id = stack.back();
    stack.pop_back();
    const RTreeNode& node = tree.node(id);
    const PoiNodeAug& aug = index_->node_aug(id);
    if (node.is_leaf()) {
      for (const RTreeEntry& e : node.entries) {
        const PoiAug& poi = index_->poi_aug(e.id);
        for (int k = 0; k < pivots_->num_pivots(); ++k) {
          ASSERT_LE(aug.lb_pivot[k], poi.pivot_dist[k] + 1e-9);
          ASSERT_GE(aug.ub_pivot[k], poi.pivot_dist[k] - 1e-9);
        }
        for (KeywordId kw : poi.sup_keywords) {
          ASSERT_TRUE(aug.v_sup.MayContain(kw));
        }
      }
    } else {
      for (const RTreeEntry& e : node.entries) {
        const PoiNodeAug& child = index_->node_aug(e.id);
        for (int k = 0; k < pivots_->num_pivots(); ++k) {
          ASSERT_LE(aug.lb_pivot[k], child.lb_pivot[k] + 1e-9);
          ASSERT_GE(aug.ub_pivot[k], child.ub_pivot[k] - 1e-9);
        }
        stack.push_back(e.id);
      }
    }
  }
}

TEST_F(PoiIndexTest, SubtreeCountsSumToAllPois) {
  EXPECT_EQ(index_->node_aug(index_->tree().root()).subtree_pois,
            ssn_->num_pois());
}

TEST_F(PoiIndexTest, SamplesAreValidPois) {
  for (RNodeId id = 0; id < index_->tree().num_nodes(); ++id) {
    const PoiNodeAug& aug = index_->node_aug(id);
    EXPECT_LE(static_cast<int>(aug.sub_samples.size()),
              options_.sub_samples_per_node);
    for (PoiId s : aug.sub_samples) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, ssn_->num_pois());
    }
  }
}

TEST_F(PoiIndexTest, PagesAssigned) {
  for (RNodeId id = 0; id < index_->tree().num_nodes(); ++id) {
    EXPECT_NE(index_->node_aug(id).page, kInvalidPage);
  }
  for (PoiId id = 0; id < ssn_->num_pois(); ++id) {
    EXPECT_NE(index_->poi_page(id), kInvalidPage);
  }
}

}  // namespace
}  // namespace gpssn
