// Tests for the simulated paged storage and LRU buffer pool (the I/O
// metric's substrate).

#include "common/pagestore.h"

#include <gtest/gtest.h>

namespace gpssn {
namespace {

TEST(PageAllocatorTest, PacksSmallObjectsOnOnePage) {
  PageAllocator alloc(100);
  const PageId a = alloc.Place(40);
  const PageId b = alloc.Place(40);
  EXPECT_EQ(a, b);  // Both fit on the first page.
  const PageId c = alloc.Place(40);  // 120 > 100: next page.
  EXPECT_EQ(c, a + 1);
}

TEST(PageAllocatorTest, LargeObjectsSpanPages) {
  PageAllocator alloc(100);
  alloc.Place(10);
  const PageId big = alloc.Place(250);  // Needs 3 pages, starts fresh.
  EXPECT_EQ(big, 1u);
  EXPECT_EQ(alloc.PagesSpanned(250), 3u);
  const PageId next = alloc.Place(10);
  EXPECT_EQ(next, 4u);
}

TEST(PageAllocatorTest, ZeroByteObjectsStillGetAPage) {
  PageAllocator alloc(100);
  const PageId a = alloc.Place(0);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(alloc.PagesSpanned(1), 1u);
}

TEST(BufferPoolTest, ColdAccessesMiss) {
  BufferPool pool(4);
  pool.Access(1);
  pool.Access(2);
  EXPECT_EQ(pool.stats().logical_accesses, 2u);
  EXPECT_EQ(pool.stats().page_misses, 2u);
}

TEST(BufferPoolTest, WarmAccessesHit) {
  BufferPool pool(4);
  pool.Access(1);
  pool.Access(1);
  pool.Access(1);
  EXPECT_EQ(pool.stats().logical_accesses, 3u);
  EXPECT_EQ(pool.stats().page_misses, 1u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  pool.Access(1);  // miss
  pool.Access(2);  // miss
  pool.Access(1);  // hit (1 now MRU)
  pool.Access(3);  // miss, evicts 2
  pool.Access(1);  // hit
  pool.Access(2);  // miss again
  EXPECT_EQ(pool.stats().page_misses, 4u);
  EXPECT_EQ(pool.stats().logical_accesses, 6u);
}

TEST(BufferPoolTest, ZeroCapacityAlwaysMisses) {
  BufferPool pool(0);
  for (int i = 0; i < 5; ++i) pool.Access(7);
  EXPECT_EQ(pool.stats().page_misses, 5u);
}

TEST(BufferPoolTest, AccessRunTouchesConsecutivePages) {
  BufferPool pool(16);
  pool.AccessRun(10, 3);
  EXPECT_EQ(pool.stats().logical_accesses, 3u);
  EXPECT_EQ(pool.stats().page_misses, 3u);
  pool.Access(11);
  EXPECT_EQ(pool.stats().page_misses, 3u);  // Already cached.
}

TEST(BufferPoolTest, ClearDropsCacheKeepsStats) {
  BufferPool pool(4);
  pool.Access(1);
  pool.Clear();
  pool.Access(1);
  EXPECT_EQ(pool.stats().page_misses, 2u);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().page_misses, 0u);
  EXPECT_EQ(pool.stats().logical_accesses, 0u);
}

}  // namespace
}  // namespace gpssn
