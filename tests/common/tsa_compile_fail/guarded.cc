// Compile-pass half of the TSA smoke test (driven by run.cmake): identical
// to unguarded.cc except the guarded read happens under a MutexLock, so
// this TU must COMPILE under -Wthread-safety -Werror=thread-safety. It
// pins the baseline: if this file fails, the failure of unguarded.cc
// proves nothing (the toolchain would be rejecting the annotations
// themselves, not the missing lock).

#include <cstdint>

#include "common/sync.h"
#include "common/task_scheduler.h"

namespace gpssn {

class MiniInjector {
 public:
  uint64_t GuardedSize() {
    MutexLock lock(mu_);
    return next_seq_;  // OK: mu_ is held for the read.
  }

 private:
  Mutex mu_;
  uint64_t next_seq_ GPSSN_GUARDED_BY(mu_) = 0;
};

}  // namespace gpssn
