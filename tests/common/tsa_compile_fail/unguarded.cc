// Compile-fail half of the TSA smoke test (driven by run.cmake): this TU
// must be REJECTED under -Wthread-safety -Werror=thread-safety. It mirrors
// the TaskScheduler's injector protocol — queue state GUARDED_BY(mu_) — and
// then reads that state without holding the capability. If this file ever
// compiles under the tsa preset, the analysis is not actually running
// (e.g. the flags were dropped) and the whole "proved at compile time"
// claim is vacuous. The scheduler header is included so the real annotated
// API is parsed under the analysis too.

#include <cstdint>

#include "common/sync.h"
#include "common/task_scheduler.h"

namespace gpssn {

class MiniInjector {
 public:
  uint64_t UnguardedSize() {
    return next_seq_;  // BAD: mu_ is not held; TSA must reject this read.
  }

 private:
  Mutex mu_;
  uint64_t next_seq_ GPSSN_GUARDED_BY(mu_) = 0;
};

}  // namespace gpssn
