# Driver for the TSA compile-fail smoke test (registered as
# gpssn_common_tsa_compile_fail in tests/CMakeLists.txt, GPSSN_THREAD_SAFETY
# builds only). Invoked as:
#
#   cmake -DCXX=<clang++> -DSRC_DIR=<repo>/src -DTEST_DIR=<this dir>
#         -P run.cmake
#
# guarded.cc must compile (baseline: the annotations themselves are
# accepted); unguarded.cc must be rejected WITH a thread-safety diagnostic
# (proof the analysis runs and catches an unguarded access to guarded
# state — not some unrelated compile error).

set(flags -std=c++20 -fsyntax-only -I${SRC_DIR}
    -Wthread-safety -Wthread-safety-beta
    -Werror=thread-safety -Werror=thread-safety-beta)

execute_process(COMMAND ${CXX} ${flags} ${TEST_DIR}/guarded.cc
                RESULT_VARIABLE guarded_rc
                ERROR_VARIABLE guarded_err)
if(NOT guarded_rc EQUAL 0)
  message(FATAL_ERROR
          "guarded.cc must compile under TSA but failed:\n${guarded_err}")
endif()

execute_process(COMMAND ${CXX} ${flags} ${TEST_DIR}/unguarded.cc
                RESULT_VARIABLE unguarded_rc
                ERROR_VARIABLE unguarded_err)
if(unguarded_rc EQUAL 0)
  message(FATAL_ERROR
          "unguarded.cc compiled cleanly: Thread-Safety Analysis did not "
          "reject the unguarded access (are -Wthread-safety flags active?)")
endif()
if(NOT unguarded_err MATCHES "thread-safety|guarded_by|requires holding")
  message(FATAL_ERROR
          "unguarded.cc was rejected for the wrong reason:\n${unguarded_err}")
endif()

message(STATUS "TSA compile-fail smoke test passed")
