// Unit and property tests for the deterministic RNG and the Zipf sampler.

#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace gpssn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NormalHasZeroMeanUnitVariance) {
  Rng rng(17);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  for (size_t n : {5u, 50u, 500u}) {
    for (size_t k : {0u, 1u, 3u, 5u}) {
      if (k > n) continue;
      const auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (size_t idx : sample) EXPECT_LT(idx, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

// --- ZipfSampler properties, parameterized over the exponent.

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, SamplesInRange) {
  const double s = GetParam();
  ZipfSampler sampler(20, s);
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(sampler.Sample(&rng), 20u);
  }
}

TEST_P(ZipfTest, LowerRanksAtLeastAsFrequent) {
  const double s = GetParam();
  ZipfSampler sampler(10, s);
  Rng rng(37);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.Sample(&rng)];
  if (s > 0.0) {
    // Rank 0 must clearly dominate the last rank for a real Zipf.
    EXPECT_GT(counts[0], counts[9]);
  }
  // Counts should be non-increasing within statistical noise.
  for (int i = 0; i + 1 < 10; ++i) {
    EXPECT_GE(counts[i] + 400, counts[i + 1]) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0));

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfSampler sampler(4, 0.0);
  Rng rng(41);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(ZipfTest, SingleElement) {
  ZipfSampler sampler(1, 1.0);
  Rng rng(43);
  EXPECT_EQ(sampler.Sample(&rng), 0u);
}

}  // namespace
}  // namespace gpssn
