// Unit tests for the Status / Result error model.

#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace gpssn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  Status s = Status::Internal("bad invariant");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "bad invariant");
  EXPECT_EQ(s.ToString(), "internal: bad invariant");
}

TEST(StatusTest, CopyPreservesContents) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kNotFound);
  EXPECT_EQ(b.message(), "missing");
  Status c;
  c = a;
  EXPECT_EQ(c.message(), "missing");
  // Self-assignment is harmless.
  c = *&c;
  EXPECT_EQ(c.message(), "missing");
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status a = Status::IoError("disk");
  Status b = std::move(a);
  EXPECT_TRUE(a.ok());  // NOLINT(bugprone-use-after-move) — documented.
  EXPECT_EQ(b.message(), "disk");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid-argument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "already-exists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented), "not-implemented");
}

TEST(StatusTest, EqualityComparesCodes) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace gpssn
