// Tests for the error-propagation macros.

#include "common/macros.h"

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace gpssn {
namespace {

Status FailWhen(bool fail) {
  if (fail) return Status::NotFound("nope");
  return Status::OK();
}

Status Chained(bool fail, int* reached) {
  GPSSN_RETURN_NOT_OK(FailWhen(fail));
  *reached = 1;
  return Status::OK();
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  int reached = 0;
  EXPECT_TRUE(Chained(true, &reached).IsNotFound());
  EXPECT_EQ(reached, 0);
  EXPECT_TRUE(Chained(false, &reached).ok());
  EXPECT_EQ(reached, 1);
}

Result<int> ProduceValue(bool fail) {
  if (fail) return Status::OutOfRange("bad");
  return 41;
}

Status ConsumeValue(bool fail, int* out) {
  GPSSN_ASSIGN_OR_RETURN(const int v, ProduceValue(fail));
  *out = v + 1;
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnBindsValue) {
  int out = 0;
  EXPECT_TRUE(ConsumeValue(false, &out).ok());
  EXPECT_EQ(out, 42);
}

TEST(MacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(ConsumeValue(true, &out).IsOutOfRange());
  EXPECT_EQ(out, 0);
}

TEST(MacrosTest, CheckOkPassesOnOk) {
  GPSSN_CHECK_OK(Status::OK());  // Must not abort.
  GPSSN_CHECK(1 + 1 == 2);
}

TEST(MacrosDeathTest, CheckAbortsOnFailure) {
  EXPECT_DEATH(GPSSN_CHECK(false), "GPSSN_CHECK failed");
  EXPECT_DEATH(GPSSN_CHECK_OK(Status::Internal("boom")),
               "GPSSN_CHECK_OK failed");
}

}  // namespace
}  // namespace gpssn
