// Tests for the aligned-table printer used by the benchmark harness.

#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace gpssn {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "22"});
  const std::string out = t.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every line begins at the same column widths: the value column starts
  // after the widest name plus two spaces.
  EXPECT_NE(out.find("longer-name  22"), std::string::npos);
  EXPECT_NE(out.find("name         value"), std::string::npos);
}

TEST(TablePrinterTest, HeaderOnlyTable) {
  TablePrinter t({"x"});
  const std::string out = t.ToString();
  EXPECT_EQ(out, "x\n-\n");
}

TEST(TablePrinterTest, NumFormatsSignificantDigits) {
  EXPECT_EQ(TablePrinter::Num(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::Num(1000000.0, 4), "1e+06");
  EXPECT_EQ(TablePrinter::Num(42.0, 4), "42");
}

TEST(TablePrinterTest, RuleMatchesWidths) {
  TablePrinter t({"ab", "c"});
  t.AddRow({"x", "yyyy"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("--  ----"), std::string::npos);
}

}  // namespace
}  // namespace gpssn
