// Tests for the keyword bit-vector signatures: the load-bearing property is
// NO FALSE NEGATIVES — a signature must never deny a keyword that was added
// (upper-bound soundness of Lemmas 1/6 depends on it).

#include "common/bitvector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gpssn {
namespace {

TEST(KeywordBitVectorTest, EmptyByDefault) {
  KeywordBitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.PopCount(), 0);
  EXPECT_FALSE(v.MayContain(0));
  EXPECT_FALSE(v.MayContain(12345));
}

TEST(KeywordBitVectorTest, AddedKeywordsAlwaysFound) {
  KeywordBitVector v;
  for (int kw : {0, 1, 5, 99, 255, 256, 100000}) {
    v.Add(kw);
    EXPECT_TRUE(v.MayContain(kw)) << kw;
  }
}

TEST(KeywordBitVectorTest, NoFalseNegativesProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> kws;
    const int count = 1 + static_cast<int>(rng.NextBounded(40));
    for (int i = 0; i < count; ++i) {
      kws.push_back(static_cast<int>(rng.NextBounded(100000)));
    }
    const KeywordBitVector v = KeywordBitVector::FromKeywords(kws);
    for (int kw : kws) ASSERT_TRUE(v.MayContain(kw));
  }
}

TEST(KeywordBitVectorTest, FalsePositiveRateIsBounded) {
  Rng rng(11);
  // 20 keywords in 256 bits: false-positive rate should be well under 20%.
  std::vector<int> kws;
  for (int i = 0; i < 20; ++i) kws.push_back(static_cast<int>(rng.NextBounded(1 << 20)));
  const KeywordBitVector v = KeywordBitVector::FromKeywords(kws);
  int fp = 0;
  const int probes = 5000;
  for (int i = 0; i < probes; ++i) {
    const int probe = (1 << 20) + static_cast<int>(rng.NextBounded(1 << 20));
    if (v.MayContain(probe)) ++fp;
  }
  EXPECT_LT(fp, probes / 5);
}

TEST(KeywordBitVectorTest, UnionIsSupersetOfBoth) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> a, b;
    for (int i = 0; i < 10; ++i) {
      a.push_back(static_cast<int>(rng.NextBounded(1000)));
      b.push_back(static_cast<int>(rng.NextBounded(1000)));
    }
    KeywordBitVector va = KeywordBitVector::FromKeywords(a);
    const KeywordBitVector vb = KeywordBitVector::FromKeywords(b);
    va.UnionWith(vb);
    for (int kw : a) ASSERT_TRUE(va.MayContain(kw));
    for (int kw : b) ASSERT_TRUE(va.MayContain(kw));
  }
}

TEST(KeywordBitVectorTest, PopCountMatchesDistinctBits) {
  KeywordBitVector v;
  v.Add(1);
  const int after_one = v.PopCount();
  EXPECT_EQ(after_one, 1);
  v.Add(1);  // Re-adding is idempotent.
  EXPECT_EQ(v.PopCount(), 1);
  v.Add(2);
  EXPECT_GE(v.PopCount(), 1);
  EXPECT_LE(v.PopCount(), 2);
}

TEST(KeywordBitVectorTest, EqualityAndDeterminism) {
  const std::vector<int> kws = {3, 14, 15, 92, 65};
  EXPECT_TRUE(KeywordBitVector::FromKeywords(kws) ==
              KeywordBitVector::FromKeywords(kws));
  EXPECT_EQ(KeywordBitVector::BitFor(42), KeywordBitVector::BitFor(42));
  EXPECT_GE(KeywordBitVector::BitFor(42), 0);
  EXPECT_LT(KeywordBitVector::BitFor(42), KeywordBitVector::kBits);
}

}  // namespace
}  // namespace gpssn
