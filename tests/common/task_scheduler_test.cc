// Unit and race tests for the unified work-stealing TaskScheduler:
// drain-on-destruction, WaitAll semantics, Spawn/steal plumbing and steal
// fairness, earliest-deadline-first injector ordering, the Publish/Retire
// morsel-source barrier, and lost-wakeup hammers (shutdown and publish
// races). The TSAN preset runs this test.

#include "common/task_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace gpssn {
namespace {

TEST(TaskSchedulerTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    TaskScheduler scheduler(4);
    for (int i = 0; i < 1000; ++i) {
      scheduler.Submit([&count](int) { ++count; });
    }
    // Destruction drains: every task runs even without WaitAll.
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(TaskSchedulerTest, WaitAllCoversTasksSubmittedFromTasks) {
  TaskScheduler scheduler(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    scheduler.Submit([&](int) {
      ++count;
      scheduler.Spawn([&count](int) { ++count; });
    });
  }
  scheduler.WaitAll();
  EXPECT_EQ(count.load(), 100);
  scheduler.WaitAll();  // Idempotent on an empty scheduler.
}

TEST(TaskSchedulerTest, WorkerIndexIsInRange) {
  TaskScheduler scheduler(4);
  std::atomic<int> bad{0};
  for (int i = 0; i < 200; ++i) {
    scheduler.Submit([&](int worker) {
      if (worker < 0 || worker >= 4) ++bad;
    });
  }
  scheduler.WaitAll();
  EXPECT_EQ(bad.load(), 0);
}

TEST(TaskSchedulerTest, SpawnedWorkIsStolenByIdleWorkers) {
  // One root task spawns many children onto its own deque and then blocks
  // until every child ran. Only stealing lets the other workers help, so
  // completion without a timeout proves the steal path works; the stat
  // counter proves it was actually exercised.
  TaskScheduler scheduler(4);
  constexpr int kChildren = 64;
  std::atomic<int> done{0};
  scheduler.Submit([&](int) {
    for (int i = 0; i < kChildren; ++i) {
      scheduler.Spawn([&done](int) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++done;
      });
    }
    while (done.load() < kChildren) std::this_thread::yield();
  });
  scheduler.WaitAll();
  EXPECT_EQ(done.load(), kChildren);
  EXPECT_GT(scheduler.GetStats().tasks_stolen, 0u);
}

TEST(TaskSchedulerTest, StealSpreadsWorkAcrossWorkers) {
  // Fairness: with one spawner and long-ish children, every worker should
  // end up running some of them (round-robin victim scan + FIFO steals).
  constexpr int kWorkers = 4;
  constexpr int kChildren = 200;
  TaskScheduler scheduler(kWorkers);
  Mutex mu;
  std::vector<int> per_worker(kWorkers, 0);
  std::atomic<int> done{0};
  scheduler.Submit([&](int) {
    for (int i = 0; i < kChildren; ++i) {
      scheduler.Spawn([&](int worker) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        {
          MutexLock lock(mu);
          ++per_worker[worker];
        }
        ++done;
      });
    }
    while (done.load() < kChildren) std::this_thread::yield();
  });
  scheduler.WaitAll();
  int busy_workers = 0;
  for (int n : per_worker) busy_workers += n > 0 ? 1 : 0;
  EXPECT_GE(busy_workers, 2) << "stealing never spread the spawned work";
}

TEST(TaskSchedulerTest, DeadlinePriorityOrdersInjector) {
  // Single worker, queue pre-loaded while it is blocked: release order must
  // be earliest-deadline-first, then unarmed tasks in FIFO order.
  TaskScheduler scheduler(1);
  Mutex gate;
  gate.Lock();
  std::atomic<bool> blocker_running{false};
  scheduler.Submit([&](int) {
    blocker_running.store(true);
    gate.Lock();  // Holds the worker until every Submit below landed.
    gate.Unlock();
  });
  // The blocker must have been POPPED (not just queued) before the batch
  // below lands, or it would compete with the armed tasks on priority.
  while (!blocker_running.load()) std::this_thread::yield();

  Mutex mu;
  std::vector<int> order;
  const auto now = std::chrono::steady_clock::now();
  auto record = [&mu, &order](int tag) {
    MutexLock lock(mu);
    order.push_back(tag);
  };
  using std::chrono::seconds;
  scheduler.Submit([&, record](int) { record(4); });  // Unarmed, FIFO 1st.
  scheduler.Submit([&, record](int) { record(2); },
                   TaskPriority::DeadlineAt(now + seconds(20)));
  scheduler.Submit([&, record](int) { record(5); });  // Unarmed, FIFO 2nd.
  scheduler.Submit([&, record](int) { record(1); },
                   TaskPriority::DeadlineAt(now + seconds(10)));
  scheduler.Submit([&, record](int) { record(3); },
                   TaskPriority::DeadlineAt(now + seconds(30)));
  gate.Unlock();
  scheduler.WaitAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

// A morsel source handing out one increment per visit, up to a cap.
class CountingSource : public TaskScheduler::MorselSource {
 public:
  explicit CountingSource(int cap) : cap_(cap) {}
  bool RunMorsels(int /*worker*/) override {
    if (claimed_.fetch_add(1) >= cap_) return false;
    ++ran_;
    return true;
  }
  int ran() const { return ran_.load(); }

 private:
  const int cap_;
  std::atomic<int> claimed_{0};
  std::atomic<int> ran_{0};
};

TEST(TaskSchedulerTest, IdleWorkersVisitPublishedSources) {
  TaskScheduler scheduler(3);
  CountingSource source(50);
  scheduler.Publish(&source);
  // Workers are idle, so they must find the source without any Submit.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (source.ran() < 50 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  scheduler.Retire(&source);
  EXPECT_EQ(source.ran(), 50);
  EXPECT_GT(scheduler.GetStats().morsel_visits, 0u);
}

TEST(TaskSchedulerTest, RetireBlocksUntilInFlightMorselsReturn) {
  // The source flips `inside` while a worker is in RunMorsels; Retire must
  // not return while any call is still in flight (this is the barrier that
  // lets sources live on the publisher's stack).
  class SlowSource : public TaskScheduler::MorselSource {
   public:
    bool RunMorsels(int) override {
      if (first_.exchange(false)) {
        inside.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        inside.store(false);
        return true;
      }
      return false;
    }
    std::atomic<bool> inside{false};

   private:
    std::atomic<bool> first_{true};
  };
  TaskScheduler scheduler(2);
  SlowSource source;
  scheduler.Publish(&source);
  while (!source.inside.load()) std::this_thread::yield();
  scheduler.Retire(&source);
  EXPECT_FALSE(source.inside.load()) << "Retire returned mid-RunMorsels";
}

TEST(TaskSchedulerTest, SaturatedWorkersPreferTasksOverMorsels) {
  // With every worker busy on injector tasks, a published source must be
  // left alone (the caller-runs-lane-0 degenerate case); once the tasks
  // drain, the now-idle workers pick it up.
  TaskScheduler scheduler(2);
  std::atomic<bool> release{false};
  std::atomic<int> busy{0};
  for (int i = 0; i < 2; ++i) {
    scheduler.Submit([&](int) {
      ++busy;
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (busy.load() < 2) std::this_thread::yield();
  CountingSource source(8);
  scheduler.Publish(&source);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(source.ran(), 0) << "a busy worker visited a morsel source";
  release.store(true);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (source.ran() < 8 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  scheduler.Retire(&source);
  EXPECT_EQ(source.ran(), 8);
}

TEST(TaskSchedulerTest, NoLostWakeupsUnderShutdownHammer) {
  // Construct/submit/destroy in a tight loop: a lost wakeup would leave a
  // worker asleep with queued work and hang the draining destructor.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    {
      TaskScheduler scheduler(3);
      for (int i = 0; i < 8; ++i) {
        scheduler.Submit([&count](int) { ++count; });
      }
    }
    ASSERT_EQ(count.load(), 8) << "round " << round;
  }
}

TEST(TaskSchedulerTest, PublishRetireHammerNeverHangsOrLeaks) {
  // Rapid publish/retire cycles racing idle workers' source scans; each
  // round must observe every morsel exactly once and Retire must always
  // return (no lost publish wakeup, no stuck active count).
  TaskScheduler scheduler(4);
  for (int round = 0; round < 300; ++round) {
    CountingSource source(3);
    scheduler.Publish(&source);
    if ((round & 3) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    scheduler.Retire(&source);
    ASSERT_LE(source.ran(), 3);
  }
}

TEST(TaskSchedulerTest, StatsAreMonotoneAndConsistent) {
  TaskScheduler scheduler(2);
  const auto before = scheduler.GetStats();
  for (int i = 0; i < 32; ++i) scheduler.Submit([](int) {});
  scheduler.WaitAll();
  const auto after = scheduler.GetStats();
  EXPECT_EQ(after.tasks_run - before.tasks_run, 32u);
  EXPECT_GE(after.sources_published, before.sources_published);
}

}  // namespace
}  // namespace gpssn
