// Transport-layer unit tests: mailbox blocking/close semantics and
// lossless encode/decode roundtrips of every serving wire message
// (src/serving/transport.h, src/serving/wire.h).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serving/transport.h"
#include "serving/wire.h"

namespace gpssn::serving {
namespace {

TransportMessage Msg(uint64_t query_id) {
  TransportMessage m;
  m.header.kind = static_cast<uint32_t>(MessageKind::kGatherRequest);
  m.header.query_id = query_id;
  return m;
}

TEST(MailboxTest, FifoDelivery) {
  Mailbox box(8);
  ASSERT_TRUE(box.Send(Msg(1)));
  ASSERT_TRUE(box.Send(Msg(2)));
  TransportMessage out;
  ASSERT_TRUE(box.Recv(&out));
  EXPECT_EQ(out.header.query_id, 1u);
  ASSERT_TRUE(box.Recv(&out));
  EXPECT_EQ(out.header.query_id, 2u);
}

TEST(MailboxTest, SendBlocksAtCapacityUntilRecv) {
  Mailbox box(1);
  ASSERT_TRUE(box.Send(Msg(1)));
  std::atomic<bool> second_sent{false};
  std::thread sender([&] {
    ASSERT_TRUE(box.Send(Msg(2)));
    second_sent.store(true);
  });
  // The second Send must be parked until we drain one slot.
  TransportMessage out;
  ASSERT_TRUE(box.Recv(&out));
  EXPECT_EQ(out.header.query_id, 1u);
  sender.join();
  EXPECT_TRUE(second_sent.load());
  ASSERT_TRUE(box.Recv(&out));
  EXPECT_EQ(out.header.query_id, 2u);
}

TEST(MailboxTest, CloseWakesBlockedReceiverAndFailsSends) {
  Mailbox box(4);
  std::thread closer([&] { box.Close(); });
  TransportMessage out;
  EXPECT_FALSE(box.Recv(&out));  // Wakes on Close, empty queue.
  closer.join();
  EXPECT_FALSE(box.Send(Msg(1)));
}

TEST(MailboxTest, CloseDrainsBufferedMessagesFirst) {
  Mailbox box(4);
  ASSERT_TRUE(box.Send(Msg(7)));
  box.Close();
  TransportMessage out;
  ASSERT_TRUE(box.Recv(&out));  // Buffered message still delivered.
  EXPECT_EQ(out.header.query_id, 7u);
  EXPECT_FALSE(box.Recv(&out));  // Then closed-and-drained.
}

TEST(MailboxTest, CloseWakesBlockedSender) {
  Mailbox box(1);
  ASSERT_TRUE(box.Send(Msg(1)));
  std::atomic<bool> send_failed{false};
  std::thread sender([&] {
    if (!box.Send(Msg(2))) send_failed.store(true);
  });
  box.Close();
  sender.join();
  EXPECT_TRUE(send_failed.load());
}

TEST(InProcessTransportTest, RoutesAndCounts) {
  InProcessTransport transport(2, 8);
  ASSERT_TRUE(transport.SendToShard(0, Msg(1)));
  ASSERT_TRUE(transport.SendToShard(1, Msg(2)));
  ASSERT_TRUE(transport.SendToCoordinator(Msg(3)));
  EXPECT_EQ(transport.messages_sent(), 3u);
  TransportMessage out;
  ASSERT_TRUE(transport.RecvAtShard(0, &out));
  EXPECT_EQ(out.header.query_id, 1u);
  ASSERT_TRUE(transport.RecvAtShard(1, &out));
  EXPECT_EQ(out.header.query_id, 2u);
  ASSERT_TRUE(transport.RecvAtCoordinator(&out));
  EXPECT_EQ(out.header.query_id, 3u);
  transport.Close();
  EXPECT_FALSE(transport.SendToShard(0, Msg(4)));
  EXPECT_FALSE(transport.RecvAtCoordinator(&out));
}

GpssnQuery SampleQuery() {
  GpssnQuery q;
  q.issuer = 17;
  q.tau = 4;
  q.gamma = 0.25;
  q.metric = InterestMetric::kJaccard;
  q.theta = 0.4;
  q.radius = 1.75;
  return q;
}

TEST(WireTest, GatherRequestRoundtrip) {
  GatherRequest request;
  request.query = SampleQuery();
  request.deadline_seconds = 0.125;
  auto decoded = DecodeGatherRequest(EncodeGatherRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->query.issuer, 17);
  EXPECT_EQ(decoded->query.tau, 4);
  EXPECT_EQ(decoded->query.metric, InterestMetric::kJaccard);
  EXPECT_EQ(decoded->query.gamma, 0.25);
  EXPECT_EQ(decoded->query.theta, 0.4);
  EXPECT_EQ(decoded->query.radius, 1.75);
  EXPECT_EQ(decoded->deadline_seconds, 0.125);
}

TEST(WireTest, CandidatesReplyRoundtrip) {
  CandidatesReply reply;
  reply.candidates.users = {3, 1, 9};  // Traversal order, not sorted.
  reply.candidates.pois = {2, 5};
  reply.candidates.lower_bound = 0.375;
  reply.stats.users_candidates = 3;
  reply.stats.pois_candidates = 2;
  reply.stats.cpu_seconds = 0.5;
  auto decoded = DecodeCandidatesReply(EncodeCandidatesReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->candidates.users, reply.candidates.users);
  EXPECT_EQ(decoded->candidates.pois, reply.candidates.pois);
  EXPECT_EQ(decoded->candidates.lower_bound, 0.375);
  EXPECT_EQ(decoded->stats.users_candidates, 3u);
  EXPECT_EQ(decoded->stats.pois_candidates, 2u);
  EXPECT_EQ(decoded->stats.cpu_seconds, 0.5);
}

TEST(WireTest, RefineRequestRoundtrip) {
  RefineRequest request;
  request.query = SampleQuery();
  request.deadline_seconds = -1.0;
  request.incumbent = 2.5;
  request.centers = {4, 8, 15};
  request.groups = {{1, 2, 17, 30}, {1, 5, 17, 21}};
  auto decoded = DecodeRefineRequest(EncodeRefineRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->incumbent, 2.5);
  EXPECT_EQ(decoded->centers, request.centers);
  EXPECT_EQ(decoded->groups, request.groups);
  EXPECT_EQ(decoded->deadline_seconds, -1.0);
}

TEST(WireTest, AnswerReplyRoundtrip) {
  AnswerReply reply;
  reply.result.answer.found = true;
  reply.result.answer.users = {1, 2, 17};
  reply.result.answer.center = 8;
  reply.result.answer.pois = {6, 8, 9};
  reply.result.answer.max_dist = 1.625;
  reply.result.center_worst = 1.5;
  reply.result.group_index = 42;
  reply.stats.ball_queries = 7;
  auto decoded = DecodeAnswerReply(EncodeAnswerReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->result.answer.found);
  EXPECT_EQ(decoded->result.answer.users, reply.result.answer.users);
  EXPECT_EQ(decoded->result.answer.center, 8);
  EXPECT_EQ(decoded->result.answer.pois, reply.result.answer.pois);
  EXPECT_EQ(decoded->result.answer.max_dist, 1.625);
  EXPECT_EQ(decoded->result.center_worst, 1.5);
  EXPECT_EQ(decoded->result.group_index, 42);
  EXPECT_EQ(decoded->stats.ball_queries, 7u);
}

TEST(WireTest, TruncatedPayloadsAreRejectedNotRead) {
  RefineRequest request;
  request.query = SampleQuery();
  request.centers = {4, 8, 15};
  request.groups = {{1, 2, 17, 30}};
  std::vector<uint8_t> bytes = EncodeRefineRequest(request);
  for (size_t cut : {size_t{0}, size_t{8}, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_TRUE(DecodeRefineRequest(truncated).status().IsInvalidArgument())
        << "cut=" << cut;
  }
  // Trailing garbage is as malformed as missing bytes.
  bytes.push_back(0);
  EXPECT_TRUE(DecodeRefineRequest(bytes).status().IsInvalidArgument());

  CandidatesReply reply;
  reply.candidates.users = {1};
  std::vector<uint8_t> cbytes = EncodeCandidatesReply(reply);
  cbytes.resize(cbytes.size() / 2);
  EXPECT_TRUE(DecodeCandidatesReply(cbytes).status().IsInvalidArgument());
}

TEST(WireTest, StatusCodesSurviveTheWire) {
  EXPECT_TRUE(StatusFromWire(0).ok());
  EXPECT_TRUE(StatusFromWire(static_cast<int32_t>(StatusCode::kCancelled))
                  .IsCancelled());
  EXPECT_TRUE(
      StatusFromWire(static_cast<int32_t>(StatusCode::kDeadlineExceeded))
          .IsDeadlineExceeded());
  EXPECT_TRUE(StatusFromWire(static_cast<int32_t>(StatusCode::kInvalidArgument))
                  .IsInvalidArgument());
  EXPECT_EQ(StatusFromWire(999).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace gpssn::serving
