// Sharded-serving differential harness: on randomized synthetic networks,
// a ServingCluster must return BYTE-IDENTICAL answers to the single-node
// GpssnDatabase::Query path — same found flag, users, center, POIs, and
// bitwise-equal objective — at every shard count {1, 2, 4, 8} and under
// both distance backends (built-in Dijkstra and CH). This is the
// acceptance gate of the discovery-rank merge protocol (DESIGN.md §12):
// shard answers carry (center_worst, group_index) and the coordinator's
// lexicographic merge reproduces the single-node serial loop's
// first-encountered winner exactly.

#include <gtest/gtest.h>

#include <vector>

#include "core/database.h"
#include "roadnet/distance_backend.h"
#include "serving/coordinator.h"
#include "ssn/dataset.h"

namespace gpssn::serving {
namespace {

class ShardedDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

void ExpectIdenticalAnswer(const GpssnAnswer& want, const GpssnAnswer& got,
                           int shards, const char* backend, uint64_t seed,
                           int trial) {
  ASSERT_EQ(want.found, got.found) << "shards=" << shards << " " << backend
                                   << " seed=" << seed << " trial=" << trial;
  if (!want.found) return;
  EXPECT_EQ(want.users, got.users) << "shards=" << shards << " " << backend
                                   << " seed=" << seed << " trial=" << trial;
  EXPECT_EQ(want.center, got.center) << "shards=" << shards << " " << backend
                                     << " seed=" << seed << " trial=" << trial;
  EXPECT_EQ(want.pois, got.pois) << "shards=" << shards << " " << backend
                                 << " seed=" << seed << " trial=" << trial;
  // Bitwise: the sharded path runs the same arithmetic in the same order.
  EXPECT_EQ(want.max_dist, got.max_dist)
      << "shards=" << shards << " " << backend << " seed=" << seed
      << " trial=" << trial;
}

TEST_P(ShardedDifferentialTest, ShardedAnswersAreByteIdenticalToSingleNode) {
  Rng rng(GetParam() * 7321 + 13);

  SyntheticSsnOptions data;
  data.num_road_vertices = 110 + static_cast<int>(rng.NextBounded(100));
  data.num_pois = 35 + static_cast<int>(rng.NextBounded(35));
  data.num_users = 50 + static_cast<int>(rng.NextBounded(50));
  data.num_topics = 8 + static_cast<int>(rng.NextBounded(8));
  data.space_size = 12.0 + rng.UniformDouble(0, 6);
  data.distribution =
      rng.Bernoulli(0.5) ? Distribution::kUniform : Distribution::kZipf;
  data.seed = rng.Next();

  GpssnBuildOptions build;
  build.num_road_pivots = 1 + static_cast<int>(rng.NextBounded(4));
  build.num_social_pivots = 1 + static_cast<int>(rng.NextBounded(4));
  build.optimize_pivots = rng.Bernoulli(0.5);
  build.poi_index.r_min = 0.3;
  build.poi_index.r_max = 4.5;
  build.seed = rng.Next();

  GpssnDatabase db(MakeSynthetic(data), build);
  const auto ch_backend = MakeChBackend(&db.ssn().road(), &db.ssn().pois());

  // A small query workload shared by every configuration.
  std::vector<GpssnQuery> workload;
  for (int trial = 0; trial < 3; ++trial) {
    GpssnQuery q;
    q.issuer = static_cast<UserId>(rng.NextBounded(db.ssn().num_users()));
    q.tau = 2 + static_cast<int>(rng.NextBounded(3));
    q.gamma = rng.UniformDouble(0.05, 0.5);
    q.theta = rng.UniformDouble(0.05, 0.6);
    q.radius = rng.UniformDouble(0.4, 4.0);
    workload.push_back(q);
  }

  for (const bool use_ch : {false, true}) {
    const char* backend = use_ch ? "ch" : "dijkstra";
    QueryOptions single;
    if (use_ch) single.distance_backend = ch_backend.get();

    // Single-node reference answers under the same backend.
    std::vector<GpssnAnswer> want(workload.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      auto reference = db.Query(workload[i], single);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      want[i] = *reference;
    }

    for (int shards : {1, 2, 4, 8}) {
      ServingOptions options;
      options.num_shards = shards;
      options.query = single;
      auto cluster = ServingCluster::Create(db, options);
      ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

      // Batch path (the pipelined event loop).
      BatchStats batch_stats;
      auto results = (*cluster)->QueryBatch(workload, &batch_stats);
      ASSERT_EQ(results.size(), workload.size());
      EXPECT_EQ(batch_stats.succeeded, workload.size());
      for (size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].status.ok())
            << results[i].status.ToString() << " shards=" << shards;
        ExpectIdenticalAnswer(want[i], results[i].answer, shards, backend,
                              GetParam(), static_cast<int>(i));
      }
      EXPECT_GT(batch_stats.totals.shard_msgs, 0u);

      // Single-query path repeats one query through a warm cluster (the
      // shard distance caches now hold bound-tagged rows — answers must
      // not drift).
      QueryStats stats;
      auto again = (*cluster)->Query(workload[0], &stats);
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      ExpectIdenticalAnswer(want[0], *again, shards, backend, GetParam(), 0);
      EXPECT_GT(stats.shard_msgs, 0u);
      EXPECT_LE(stats.refined_shards + stats.skipped_shards,
                static_cast<uint64_t>(shards));
      if (want[0].found) {
        EXPECT_GE(stats.refined_shards, 1u);
      }
    }
  }
}

TEST(ServingClusterTest, RejectsSubsetSamplingAndBadShardCounts) {
  SyntheticSsnOptions data;
  data.num_road_vertices = 80;
  data.num_pois = 25;
  data.num_users = 30;
  data.seed = 5;
  GpssnBuildOptions build;
  build.poi_index.r_min = 0.3;
  build.poi_index.r_max = 4.5;
  GpssnDatabase db(MakeSynthetic(data), build);

  ServingOptions sampling;
  sampling.query.subset_sampling = true;
  EXPECT_TRUE(ServingCluster::Create(db, sampling)
                  .status()
                  .IsInvalidArgument());

  ServingOptions zero;
  zero.num_shards = 0;
  EXPECT_TRUE(ServingCluster::Create(db, zero).status().IsInvalidArgument());
}

TEST(ServingClusterTest, InvalidQueriesFailPerQueryNotPerBatch) {
  SyntheticSsnOptions data;
  data.num_road_vertices = 80;
  data.num_pois = 25;
  data.num_users = 30;
  data.seed = 6;
  GpssnBuildOptions build;
  build.poi_index.r_min = 0.3;
  build.poi_index.r_max = 4.5;
  GpssnDatabase db(MakeSynthetic(data), build);

  ServingOptions options;
  options.num_shards = 2;
  auto cluster = ServingCluster::Create(db, options);
  ASSERT_TRUE(cluster.ok());

  GpssnQuery good;
  good.issuer = 0;
  good.tau = 2;
  good.gamma = 0.05;
  good.theta = 0.05;
  good.radius = 2.0;
  GpssnQuery bad = good;
  bad.issuer = static_cast<UserId>(db.ssn().num_users() + 100);

  // The invalid query fails on its first shard reply and later (stale)
  // replies for it must be dropped without disturbing the good queries.
  std::vector<GpssnQuery> batch{good, bad, good};
  BatchStats stats;
  auto results = (*cluster)->QueryBatch(batch, &stats);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_TRUE(results[1].status.IsInvalidArgument());
  EXPECT_TRUE(results[2].status.ok()) << results[2].status.ToString();
  EXPECT_EQ(stats.succeeded, 2u);
  EXPECT_EQ(stats.failed, 1u);

  // The cluster stays serviceable after the failure.
  auto after = (*cluster)->Query(good);
  EXPECT_TRUE(after.ok());
}

// 20 random networks × 2 backends × shard counts {1, 2, 4, 8}.
INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace gpssn::serving
