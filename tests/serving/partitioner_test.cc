// Partitioner invariants (src/serving/partition.h): COVERAGE (every user
// and POI under exactly one shard), ORDER (shard scopes concatenated in
// shard order enumerate the index leaves in single-node descent order),
// and BALANCE (no shard hogs the whole candidate space when the tree
// offers enough subtrees).

#include <gtest/gtest.h>

#include <vector>

#include "core/database.h"
#include "serving/partition.h"
#include "ssn/dataset.h"

namespace gpssn::serving {
namespace {

GpssnDatabase MakeDb(uint64_t seed) {
  SyntheticSsnOptions data;
  data.num_road_vertices = 150;
  data.num_pois = 60;
  data.num_users = 80;
  data.seed = seed;
  GpssnBuildOptions build;
  build.poi_index.r_min = 0.3;
  build.poi_index.r_max = 4.5;
  return GpssnDatabase(MakeSynthetic(data), build);
}

// Left-to-right user order of the social partition tree's leaves, starting
// from `roots` (single-node descent enumerates leaves in this order).
std::vector<UserId> LeafUsers(const SocialIndex& social,
                              const std::vector<SNodeId>& roots) {
  std::vector<UserId> users;
  for (SNodeId root : roots) {
    std::vector<SNodeId> stack{root};
    while (!stack.empty()) {
      const SNodeId id = stack.back();
      stack.pop_back();
      const SocialIndexNode& node = social.node(id);
      if (node.is_leaf()) {
        users.insert(users.end(), node.users.begin(), node.users.end());
      } else {
        for (auto it = node.children.rbegin(); it != node.children.rend();
             ++it) {
          stack.push_back(*it);
        }
      }
    }
  }
  return users;
}

TEST(PartitionerTest, CoverageAndValidationAtEveryShardCount) {
  GpssnDatabase db = MakeDb(11);
  for (int shards : {1, 2, 4, 8, 16}) {
    auto partition = MakeServingPartition(db.social_index(),
                                          db.poi_index(), shards);
    ASSERT_TRUE(partition.ok()) << partition.status().ToString();
    ASSERT_EQ(partition->scopes.size(), static_cast<size_t>(shards));
    EXPECT_TRUE(ValidateServingPartition(*partition, db.social_index(),
                                         db.poi_index())
                    .ok());
    ASSERT_EQ(partition->user_shard.size(),
              static_cast<size_t>(db.ssn().num_users()));
    ASSERT_EQ(partition->poi_shard.size(),
              static_cast<size_t>(db.ssn().num_pois()));
    for (int32_t s : partition->user_shard) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, shards);
    }
    for (int32_t s : partition->poi_shard) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, shards);
    }
  }
}

TEST(PartitionerTest, ShardOrderReproducesSingleNodeLeafOrder) {
  GpssnDatabase db = MakeDb(12);
  const std::vector<UserId> full =
      LeafUsers(db.social_index(), {db.social_index().root()});
  for (int shards : {1, 2, 4, 8}) {
    auto partition = MakeServingPartition(db.social_index(),
                                          db.poi_index(), shards);
    ASSERT_TRUE(partition.ok());
    std::vector<UserId> concatenated;
    for (const ShardScope& scope : partition->scopes) {
      const std::vector<UserId> part =
          LeafUsers(db.social_index(), scope.social_roots);
      concatenated.insert(concatenated.end(), part.begin(), part.end());
    }
    EXPECT_EQ(concatenated, full) << "shards=" << shards;
  }
}

TEST(PartitionerTest, MultipleShardsActuallySplitTheSpace) {
  GpssnDatabase db = MakeDb(13);
  auto partition = MakeServingPartition(db.social_index(),
                                        db.poi_index(), 4);
  ASSERT_TRUE(partition.ok());
  // With 80 users / 60 POIs the trees have plenty of subtrees: no single
  // shard may own everything.
  for (size_t s = 0; s < partition->scopes.size(); ++s) {
    size_t owned_users = 0;
    for (int32_t owner : partition->user_shard) {
      if (owner == static_cast<int32_t>(s)) ++owned_users;
    }
    EXPECT_LT(owned_users, partition->user_shard.size()) << "shard " << s;
  }
  int shards_with_users = 0;
  int shards_with_pois = 0;
  for (size_t s = 0; s < partition->scopes.size(); ++s) {
    if (!partition->scopes[s].social_roots.empty()) ++shards_with_users;
    if (!partition->scopes[s].road_roots.empty()) ++shards_with_pois;
  }
  EXPECT_GT(shards_with_users, 1);
  EXPECT_GT(shards_with_pois, 1);
}

TEST(PartitionerTest, RejectsNonPositiveShardCount) {
  GpssnDatabase db = MakeDb(14);
  EXPECT_TRUE(MakeServingPartition(db.social_index(), db.poi_index(), 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MakeServingPartition(db.social_index(), db.poi_index(), -3)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace gpssn::serving
