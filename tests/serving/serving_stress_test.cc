// Serving concurrency hammer (runs under the TSAN preset via
// scripts/check.sh): drives the transport/coordinator/shard machinery
// through its racy corners — CancelAll landing mid-gather, deadlines
// expiring during refine, and shards answering after the coordinator
// already completed (and abandoned) their query. The invariants are
// liveness (every batch returns; nothing deadlocks on the bounded
// mailboxes) and sane terminal statuses; answers are checked only for
// queries that completed OK.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/database.h"
#include "serving/coordinator.h"
#include "ssn/dataset.h"

namespace gpssn::serving {
namespace {

GpssnDatabase MakeDb(uint64_t seed) {
  SyntheticSsnOptions data;
  data.num_road_vertices = 120;
  data.num_pois = 40;
  data.num_users = 60;
  data.seed = seed;
  GpssnBuildOptions build;
  build.poi_index.r_min = 0.3;
  build.poi_index.r_max = 4.5;
  return GpssnDatabase(MakeSynthetic(data), build);
}

std::vector<GpssnQuery> MakeWorkload(const GpssnDatabase& db, uint64_t seed,
                                     int count) {
  Rng rng(seed);
  std::vector<GpssnQuery> workload;
  for (int i = 0; i < count; ++i) {
    GpssnQuery q;
    q.issuer = static_cast<UserId>(rng.NextBounded(db.ssn().num_users()));
    q.tau = 2 + static_cast<int>(rng.NextBounded(3));
    q.gamma = rng.UniformDouble(0.05, 0.4);
    q.theta = rng.UniformDouble(0.05, 0.5);
    q.radius = rng.UniformDouble(0.5, 3.5);
    workload.push_back(q);
  }
  return workload;
}

TEST(ServingStressTest, CancelAllMidBatchTerminatesEveryQuery) {
  GpssnDatabase db = MakeDb(21);
  ServingOptions options;
  options.num_shards = 4;
  options.max_inflight = 6;
  options.shard_num_workers = 2;
  auto cluster = ServingCluster::Create(db, options);
  ASSERT_TRUE(cluster.ok());
  const std::vector<GpssnQuery> workload = MakeWorkload(db, 99, 24);

  for (int round = 0; round < 3; ++round) {
    // Fire CancelAll from another thread while the event loop is mid-
    // gather/refine; every query must still reach a terminal status.
    std::atomic<bool> go{false};
    std::thread canceller([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      (*cluster)->CancelAll();
    });
    go.store(true, std::memory_order_release);
    BatchStats stats;
    auto results = (*cluster)->QueryBatch(workload, &stats);
    canceller.join();
    ASSERT_EQ(results.size(), workload.size());
    for (const auto& r : results) {
      EXPECT_TRUE(r.status.ok() || r.status.IsCancelled())
          << r.status.ToString();
    }
    EXPECT_EQ(stats.succeeded + stats.cancelled, workload.size());

    // The cancel flag is cleared at the next batch: everything succeeds.
    auto after = (*cluster)->QueryBatch(MakeWorkload(db, 7, 4), &stats);
    for (const auto& r : after) {
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    }
  }
}

TEST(ServingStressTest, TightDeadlinesExpireCleanlyDuringRefine) {
  GpssnDatabase db = MakeDb(22);
  ServingOptions options;
  options.num_shards = 4;
  options.max_inflight = 8;
  // Tight enough that many queries expire inside gather/refine on any
  // machine, loose enough that some may finish — both paths must be clean.
  options.default_deadline_seconds = 2e-4;
  auto cluster = ServingCluster::Create(db, options);
  ASSERT_TRUE(cluster.ok());

  for (int round = 0; round < 4; ++round) {
    BatchStats stats;
    auto results =
        (*cluster)->QueryBatch(MakeWorkload(db, 31 + round, 16), &stats);
    ASSERT_EQ(results.size(), 16u);
    for (const auto& r : results) {
      EXPECT_TRUE(r.status.ok() || r.status.IsDeadlineExceeded())
          << r.status.ToString();
    }
    EXPECT_EQ(stats.succeeded + stats.deadline_exceeded, 16u);
  }

  // A deadline-free batch on the same (warm, previously-expired) cluster
  // must fully succeed: no poisoned shard state survives an expiry.
  ServingOptions clean = options;
  clean.default_deadline_seconds = 0.0;
  auto cluster2 = ServingCluster::Create(db, clean);
  ASSERT_TRUE(cluster2.ok());
  BatchStats stats;
  auto results = (*cluster2)->QueryBatch(MakeWorkload(db, 77, 8), &stats);
  EXPECT_EQ(stats.succeeded, 8u);
}

TEST(ServingStressTest, StaleRepliesAfterErrorShortCircuitAreDropped) {
  GpssnDatabase db = MakeDb(23);
  ServingOptions options;
  options.num_shards = 4;
  options.max_inflight = 6;
  options.shard_num_workers = 2;
  auto cluster = ServingCluster::Create(db, options);
  ASSERT_TRUE(cluster.ok());

  // Invalid queries complete on their FIRST error reply; the other three
  // shards answer a query the coordinator already finished. Interleaving
  // many of them with valid queries hammers the stale-drop path while the
  // pipeline is full.
  std::vector<GpssnQuery> workload = MakeWorkload(db, 13, 20);
  for (size_t i = 0; i < workload.size(); i += 3) {
    workload[i].issuer = static_cast<UserId>(db.ssn().num_users() + 1 + i);
  }
  for (int round = 0; round < 3; ++round) {
    BatchStats stats;
    auto results = (*cluster)->QueryBatch(workload, &stats);
    ASSERT_EQ(results.size(), workload.size());
    for (size_t i = 0; i < results.size(); ++i) {
      if (i % 3 == 0) {
        EXPECT_TRUE(results[i].status.IsInvalidArgument())
            << results[i].status.ToString();
      } else {
        EXPECT_TRUE(results[i].status.ok()) << results[i].status.ToString();
      }
    }
  }
}

TEST(ServingStressTest, ClusterTeardownWithPendingWorkIsClean) {
  GpssnDatabase db = MakeDb(24);
  for (int round = 0; round < 4; ++round) {
    ServingOptions options;
    options.num_shards = 3;
    options.shard_num_workers = 2;
    options.default_deadline_seconds = round % 2 == 0 ? 1e-4 : 0.0;
    auto cluster = ServingCluster::Create(db, options);
    ASSERT_TRUE(cluster.ok());
    (void)(*cluster)->QueryBatch(MakeWorkload(db, 41 + round, 6));
    // Destructor closes the transport while shard schedulers may still
    // hold queued work; must join cleanly (TSAN checks the shutdown
    // ordering).
  }
}

}  // namespace
}  // namespace gpssn::serving
