// Differential correctness harness: the property-based oracle behind the
// pruning rules (Lemmas 1-9). On ≥ 20 randomized synthetic networks —
// varying seed, τ, γ, θ, r, and ALL THREE InterestMetric values — the
// indexed GpssnProcessor must return exactly the oracle's feasibility
// verdict and objective max_dist. Any divergence is a soundness bug in a
// pruning rule, a bound, or the δ-cut fallback.

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/database.h"
#include "ssn/dataset.h"

namespace gpssn {
namespace {

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, OptimizedMatchesBaselineOracle) {
  Rng rng(GetParam() * 6007 + 13);

  // One random network + build configuration per seed.
  SyntheticSsnOptions data;
  data.num_road_vertices = 100 + static_cast<int>(rng.NextBounded(120));
  data.num_pois = 40 + static_cast<int>(rng.NextBounded(50));
  data.num_users = 60 + static_cast<int>(rng.NextBounded(80));
  data.num_topics = 8 + static_cast<int>(rng.NextBounded(12));
  data.space_size = 12.0 + rng.UniformDouble(0, 8);
  data.community_size = 20 + static_cast<int>(rng.NextBounded(40));
  data.distribution =
      rng.Bernoulli(0.5) ? Distribution::kUniform : Distribution::kZipf;
  data.seed = rng.Next();

  GpssnBuildOptions build;
  build.num_road_pivots = 1 + static_cast<int>(rng.NextBounded(5));
  build.num_social_pivots = 1 + static_cast<int>(rng.NextBounded(5));
  build.optimize_pivots = rng.Bernoulli(0.5);
  build.social_index.leaf_cell_size = 8 + static_cast<int>(rng.NextBounded(24));
  build.poi_index.r_min = 0.3;
  build.poi_index.r_max = 4.5;
  build.seed = rng.Next();

  GpssnDatabase db(MakeSynthetic(data), build);

  const InterestMetric kMetrics[] = {InterestMetric::kDotProduct,
                                     InterestMetric::kJaccard,
                                     InterestMetric::kHamming};
  for (InterestMetric metric : kMetrics) {
    for (int trial = 0; trial < 2; ++trial) {
      GpssnQuery q;
      q.issuer = static_cast<UserId>(rng.NextBounded(db.ssn().num_users()));
      q.tau = 2 + static_cast<int>(rng.NextBounded(3));
      q.theta = rng.UniformDouble(0.05, 0.6);
      q.radius = rng.UniformDouble(0.4, 4.0);
      q.metric = metric;
      // γ ranges matched to each metric's score distribution so both
      // feasible and infeasible instances occur.
      switch (metric) {
        case InterestMetric::kDotProduct:
          q.gamma = rng.UniformDouble(0.05, 0.6);
          break;
        case InterestMetric::kJaccard:
          q.gamma = rng.UniformDouble(0.02, 0.3);
          break;
        case InterestMetric::kHamming:
          q.gamma = rng.UniformDouble(0.4, 0.9);
          break;
      }

      auto got = db.Query(q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const GpssnAnswer oracle = BruteForceGpssn(db.ssn(), q);
      ASSERT_EQ(got->found, oracle.found)
          << "seed=" << GetParam() << " metric=" << static_cast<int>(q.metric)
          << " trial=" << trial << " issuer=" << q.issuer << " tau=" << q.tau
          << " gamma=" << q.gamma << " theta=" << q.theta << " r=" << q.radius;
      if (oracle.found) {
        ASSERT_NEAR(got->max_dist, oracle.max_dist, 1e-9)
            << "seed=" << GetParam() << " metric="
            << static_cast<int>(q.metric) << " trial=" << trial
            << " issuer=" << q.issuer;
      }
    }
  }
}

// 20 random networks × 3 metrics × 2 queries = 120 oracle comparisons.
INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace gpssn
