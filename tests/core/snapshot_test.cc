// Tests for database snapshots: a restored database must answer every
// query exactly like the original, and malformed snapshots must fail
// cleanly.

#include "core/snapshot.h"

#include <fstream>

#include <gtest/gtest.h>

#include "ssn/dataset.h"

namespace gpssn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::unique_ptr<GpssnDatabase> BuildSmall(uint64_t seed) {
  SyntheticSsnOptions data;
  data.num_road_vertices = 300;
  data.num_pois = 150;
  data.num_users = 250;
  data.num_topics = 20;
  data.space_size = 20.0;
  data.seed = seed;
  GpssnBuildOptions build;
  build.num_road_pivots = 3;
  build.num_social_pivots = 4;
  build.social_index.leaf_cell_size = 16;
  build.seed = seed;
  return std::make_unique<GpssnDatabase>(MakeSynthetic(data), build);
}

TEST(SnapshotTest, RoundTripPreservesEveryAnswer) {
  auto original = BuildSmall(1);
  const std::string path = TempPath("db.snapshot");
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());
  auto restored = LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // Pivot ids and per-POI keyword sets must match exactly.
  EXPECT_EQ((*restored)->road_pivots().pivots(),
            original->road_pivots().pivots());
  EXPECT_EQ((*restored)->social_pivots().pivots(),
            original->social_pivots().pivots());
  for (PoiId id = 0; id < original->ssn().num_pois(); ++id) {
    EXPECT_EQ((*restored)->poi_index().poi_aug(id).sup_keywords,
              original->poi_index().poi_aug(id).sup_keywords);
    EXPECT_EQ((*restored)->poi_index().poi_aug(id).sub_keywords,
              original->poi_index().poi_aug(id).sub_keywords);
  }

  // Identical answers across a spread of queries.
  for (int i = 0; i < 10; ++i) {
    GpssnQuery q;
    q.issuer = (i * 37) % original->ssn().num_users();
    q.tau = 2 + (i % 3);
    q.gamma = 0.25;
    q.theta = 0.25;
    q.radius = 2.0;
    auto a = original->Query(q);
    auto b = (*restored)->Query(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->found, b->found) << "query " << i;
    if (a->found) {
      EXPECT_EQ(a->users, b->users) << "query " << i;
      EXPECT_EQ(a->center, b->center) << "query " << i;
      EXPECT_DOUBLE_EQ(a->max_dist, b->max_dist) << "query " << i;
    }
  }
}

TEST(SnapshotTest, SnapshotAfterDynamicInsertsStaysConsistent) {
  auto db = BuildSmall(2);
  // Open a few facilities, then snapshot.
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    const EdgePosition pos{
        static_cast<EdgeId>(rng.NextBounded(db->ssn().road().num_edges())),
        rng.UniformDouble()};
    ASSERT_TRUE(
        db->AddPoi(pos, {static_cast<KeywordId>(rng.NextBounded(20))}).ok());
  }
  const std::string path = TempPath("db-dynamic.snapshot");
  ASSERT_TRUE(SaveSnapshot(*db, path).ok());
  auto restored = LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->ssn().num_pois(), db->ssn().num_pois());
  GpssnQuery q;
  q.issuer = 11;
  q.tau = 3;
  auto a = db->Query(q);
  auto b = (*restored)->Query(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->found, b->found);
  if (a->found) {
    EXPECT_DOUBLE_EQ(a->max_dist, b->max_dist);
  }
}

TEST(SnapshotTest, RejectsMalformedSnapshots) {
  EXPECT_TRUE(LoadSnapshot(TempPath("missing.snapshot")).status().IsIoError());
  {
    std::ofstream out(TempPath("badmagic.snapshot"));
    out << "not-a-snapshot\n";
  }
  EXPECT_TRUE(
      LoadSnapshot(TempPath("badmagic.snapshot")).status().IsIoError());

  // Truncate a valid snapshot at several points.
  auto db = BuildSmall(3);
  const std::string path = TempPath("trunc-src.snapshot");
  ASSERT_TRUE(SaveSnapshot(*db, path).ok());
  std::string contents;
  {
    std::ifstream in(path);
    contents.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  for (double fraction : {0.2, 0.5, 0.9, 0.99}) {
    const std::string cut_path = TempPath("trunc.snapshot");
    {
      std::ofstream out(cut_path);
      out << contents.substr(0,
                             static_cast<size_t>(contents.size() * fraction));
    }
    EXPECT_FALSE(LoadSnapshot(cut_path).ok()) << "fraction " << fraction;
  }
}

}  // namespace
}  // namespace gpssn
