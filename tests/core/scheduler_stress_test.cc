// TSAN-registered stress test for intra-query morsel sharing on the
// unified scheduler: queries finish (and their stack frames unwind) while
// sibling workers race to steal refinement morsels. The PR 5 helper-lambda
// protocol captured `&run_lane` by reference guarded only by a close flag
// — the exact shape of bug this hammer exists to catch; the Publish/Retire
// barrier must make every morsel descriptor fully owned. Also races batch
// cancellation and tight deadlines against the stealing, and checks
// sharing never changes answers.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/executor.h"
#include "ssn/dataset.h"

namespace gpssn {
namespace {

GpssnDatabase MakeStressDb(uint64_t seed) {
  SyntheticSsnOptions data;
  data.num_road_vertices = 300;
  data.num_pois = 100;
  data.num_users = 140;
  data.num_topics = 12;
  data.seed = seed;
  GpssnBuildOptions build;
  build.poi_index.r_min = 0.3;
  build.poi_index.r_max = 5.0;
  return GpssnDatabase(MakeSynthetic(data), build);
}

std::vector<GpssnQuery> MixedWorkload(const GpssnDatabase& db, int count,
                                      uint64_t seed) {
  // Mostly tiny queries (finish fast, churn the morsel registry) with a
  // heavy tail (big radius: long refinement, lots of stealable centers).
  Rng rng(seed);
  std::vector<GpssnQuery> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    GpssnQuery q;
    q.issuer = static_cast<UserId>(rng.NextBounded(db.ssn().num_users()));
    q.tau = 2 + static_cast<int>(rng.NextBounded(3));
    q.gamma = 0.2;
    q.theta = 0.2;
    q.radius = (i % 5 == 0) ? 4.5 : 0.8;
    queries.push_back(q);
  }
  return queries;
}

TEST(SchedulerStressTest, QueriesFinishWhileWorkersRaceToStealMorsels) {
  GpssnDatabase db = MakeStressDb(31);
  const std::vector<GpssnQuery> workload = MixedWorkload(db, 40, 7);

  // Reference answers: sharing off.
  BatchExecutorOptions off;
  off.num_workers = 4;
  GpssnBatchExecutor off_executor(&db.poi_index(), &db.social_index(), off);
  const auto want = off_executor.ExecuteAll(workload);

  BatchExecutorOptions on;
  on.num_workers = 4;
  on.intra_query_sharing = true;
  // Sharing auto-degenerates to the serial path on a 1-core host; the
  // explicit lane cap forces the morsel path so its races stay covered.
  on.query.intra_query_workers = 4;
  GpssnBatchExecutor executor(&db.poi_index(), &db.social_index(), on);
  for (int round = 0; round < 8; ++round) {
    BatchStats stats;
    const auto got = executor.ExecuteAll(workload, &stats);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i].status.ok()) << got[i].status.ToString();
      ASSERT_EQ(got[i].answer.found, want[i].answer.found) << "query " << i;
      if (want[i].answer.found) {
        EXPECT_EQ(got[i].answer.users, want[i].answer.users) << "query " << i;
        EXPECT_EQ(got[i].answer.center, want[i].answer.center)
            << "query " << i;
        EXPECT_EQ(got[i].answer.max_dist, want[i].answer.max_dist)
            << "query " << i;
      }
    }
    // Every query publishes once; stolen morsels only happen when a worker
    // had nothing queued, so the count is workload-dependent — but the
    // registry traffic itself must be visible.
    EXPECT_GT(stats.scheduler_sources_published, 0u);
  }
}

TEST(SchedulerStressTest, CancellationRacesStolenMorsels) {
  GpssnDatabase db = MakeStressDb(32);
  const std::vector<GpssnQuery> workload = MixedWorkload(db, 30, 9);
  BatchExecutorOptions on;
  on.num_workers = 4;
  on.intra_query_sharing = true;
  on.query.intra_query_workers = 4;  // Force lanes even on a 1-core host.
  GpssnBatchExecutor executor(&db.poi_index(), &db.social_index(), on);

  for (int round = 0; round < 10; ++round) {
    for (const GpssnQuery& q : workload) executor.Submit(q);
    std::thread canceller([&executor, round] {
      std::this_thread::sleep_for(std::chrono::microseconds(100 * round));
      executor.CancelAll();
    });
    const auto results = executor.Wait();
    canceller.join();
    for (const auto& r : results) {
      // Finished or cancelled — never failed, never hung, and under TSAN
      // never a lane touching a dead query's stack.
      EXPECT_TRUE(r.status.ok() || r.status.IsCancelled())
          << r.status.ToString();
    }
  }
}

TEST(SchedulerStressTest, TightDeadlinesRaceStolenMorsels) {
  GpssnDatabase db = MakeStressDb(33);
  const std::vector<GpssnQuery> workload = MixedWorkload(db, 30, 11);
  BatchExecutorOptions on;
  on.num_workers = 4;
  on.intra_query_sharing = true;
  on.query.intra_query_workers = 4;  // Force lanes even on a 1-core host.
  GpssnBatchExecutor executor(&db.poi_index(), &db.social_index(), on);

  for (int round = 0; round < 6; ++round) {
    for (size_t i = 0; i < workload.size(); ++i) {
      // Deadlines from "already expired" to "comfortably long"; stolen
      // lanes poll the deadline too, so the abandon must be clean at any
      // point of the refinement.
      executor.Submit(workload[i], 1e-6 * static_cast<double>(i * i));
    }
    const auto results = executor.Wait();
    for (const auto& r : results) {
      EXPECT_TRUE(r.status.ok() || r.status.IsDeadlineExceeded())
          << r.status.ToString();
    }
  }
}

TEST(SchedulerStressTest, SingleWorkerSharingDegeneratesToSerial) {
  // On a 1-worker executor the only worker runs the query itself, so no
  // lane can ever be stolen: sharing must cost nothing and change nothing.
  GpssnDatabase db = MakeStressDb(34);
  const std::vector<GpssnQuery> workload = MixedWorkload(db, 12, 13);
  BatchExecutorOptions off;
  off.num_workers = 1;
  GpssnBatchExecutor off_executor(&db.poi_index(), &db.social_index(), off);
  const auto want = off_executor.ExecuteAll(workload);

  BatchExecutorOptions on = off;
  on.intra_query_sharing = true;
  GpssnBatchExecutor on_executor(&db.poi_index(), &db.social_index(), on);
  BatchStats stats;
  const auto got = on_executor.ExecuteAll(workload, &stats);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].answer.found, want[i].answer.found);
    if (want[i].answer.found) {
      EXPECT_EQ(got[i].answer.users, want[i].answer.users);
      EXPECT_EQ(got[i].answer.max_dist, want[i].answer.max_dist);
    }
  }
  EXPECT_EQ(stats.totals.refine_morsels_stolen, 0u)
      << "a 1-worker scheduler stole from itself";
}

}  // namespace
}  // namespace gpssn
