// Tests for the invariant-audit layer (core/audit.h): the structural
// validators must accept freshly built indexes, localize injected
// corruption to the exact offending node, and the pruning-soundness
// recorder must stay silent on sound pruning but trip when a pruning bound
// is loosened past what the lemmas guarantee.

#include "core/audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/query.h"
#include "index/poi_index.h"
#include "index/social_index.h"
#include "ssn/dataset.h"

namespace gpssn {
namespace {

bool HasIssue(const AuditReport& report, const std::string& check,
              int32_t node) {
  return std::any_of(report.issues.begin(), report.issues.end(),
                     [&](const AuditIssue& issue) {
                       return issue.check == check && issue.node == node;
                     });
}

bool HasCheck(const AuditReport& report, const std::string& check) {
  return std::any_of(
      report.issues.begin(), report.issues.end(),
      [&](const AuditIssue& issue) { return issue.check == check; });
}

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSsnOptions data;
    data.num_road_vertices = 200;
    data.num_pois = 80;
    data.num_users = 300;
    data.num_topics = 12;
    data.space_size = 20.0;
    data.community_size = 50;
    data.seed = 7;
    ssn_ = std::make_unique<SpatialSocialNetwork>(MakeSynthetic(data));
    road_pivots_ = std::make_unique<RoadPivotTable>(
        ssn_->road(), RandomRoadPivots(ssn_->road(), 3, 1));
    social_pivots_ = std::make_unique<SocialPivotTable>(
        ssn_->social(), RandomSocialPivots(ssn_->social(), 3, 2));
    PoiIndexOptions poi_options;
    poi_options.r_min = 0.5;
    poi_options.r_max = 4.0;
    poi_index_ = std::make_unique<PoiIndex>(ssn_.get(), road_pivots_.get(),
                                            poi_options);
    SocialIndexOptions social_options;
    social_options.leaf_cell_size = 16;
    social_index_ = std::make_unique<SocialIndex>(
        ssn_.get(), social_pivots_.get(), road_pivots_.get(), social_options);
  }

  GpssnQuery SmallQuery() const {
    GpssnQuery q;
    q.issuer = 17 % ssn_->num_users();
    q.tau = 3;
    q.gamma = 0.3;
    q.theta = 0.3;
    q.radius = 2.0;
    return q;
  }

  std::unique_ptr<SpatialSocialNetwork> ssn_;
  std::unique_ptr<RoadPivotTable> road_pivots_;
  std::unique_ptr<SocialPivotTable> social_pivots_;
  std::unique_ptr<PoiIndex> poi_index_;
  std::unique_ptr<SocialIndex> social_index_;
};

// ----- Structural validators on clean indexes -----

TEST_F(AuditTest, CleanIndexesPassAllValidators) {
  const AuditReport tree = AuditRStarTree(poi_index_->tree());
  EXPECT_TRUE(tree.ok()) << tree.ToString();
  const AuditReport poi = AuditPoiIndex(*poi_index_);
  EXPECT_TRUE(poi.ok()) << poi.ToString();
  const AuditReport social = AuditSocialIndex(*social_index_);
  EXPECT_TRUE(social.ok()) << social.ToString();
}

// ----- Localized corruption: R*-tree MBR -----

TEST_F(AuditTest, RTreeMbrCorruptionIsLocalizedToNode) {
  RStarTree& tree = poi_index_->mutable_tree_for_test();
  const RTreeNode& root = tree.node(tree.root());
  ASSERT_FALSE(root.is_leaf()) << "fixture too small: root is a leaf";
  // Shrink the first root entry's MBR to a far-away degenerate point; the
  // validator must attribute the containment break to that entry's child.
  const RNodeId victim = root.entries[0].id;
  RTreeEntry& entry = tree.mutable_node_for_test(tree.root()).entries[0];
  entry.mbr = Rect{-1e6, -1e6, -1e6, -1e6};
  const AuditReport report = AuditRStarTree(tree);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasIssue(report, "rtree-mbr-containment", victim))
      << report.ToString();
}

// ----- Localized corruption: I_R augmentation -----

TEST_F(AuditTest, PoiSubtreeCountCorruptionIsLocalizedToNode) {
  const RNodeId root = poi_index_->tree().root();
  poi_index_->mutable_node_aug_for_test(root).subtree_pois += 7;
  const AuditReport report = AuditPoiIndex(*poi_index_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasIssue(report, "poi-node-subtree-count", root))
      << report.ToString();
}

// ----- Localized corruption: I_S bounds and partition -----

TEST_F(AuditTest, SocialInterestBoxCorruptionIsLocalizedToNode) {
  const SNodeId victim = social_index_->root();
  SocialIndexNode& node = social_index_->mutable_node_for_test(victim);
  // An upper bound below every weight breaks Eq. 10 for every member.
  std::fill(node.ub_w.begin(), node.ub_w.end(), -1.0);
  const AuditReport report = AuditSocialIndex(*social_index_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasIssue(report, "social-interest-box", victim))
      << report.ToString();
  // The corruption is node-local: no other node's interest box may trip.
  for (const AuditIssue& issue : report.issues) {
    if (issue.check == "social-interest-box") {
      EXPECT_EQ(issue.node, victim);
    }
  }
}

TEST_F(AuditTest, SocialDuplicateUserBreaksPartitionDisjointness) {
  // Find two distinct leaves and copy a user from one into the other.
  SNodeId first = -1, second = -1;
  for (SNodeId id = 0; id < social_index_->num_nodes(); ++id) {
    if (!social_index_->node(id).is_leaf()) continue;
    if (first < 0) {
      first = id;
    } else {
      second = id;
      break;
    }
  }
  ASSERT_GE(second, 0) << "fixture too small: need at least two leaves";
  const UserId dup = social_index_->node(first).users.front();
  social_index_->mutable_node_for_test(second).users.push_back(dup);
  const AuditReport report = AuditSocialIndex(*social_index_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasCheck(report, "social-partition-disjoint"))
      << report.ToString();
}

// ----- Pruning-soundness recorder -----

TEST_F(AuditTest, AuditorSilentOnSoundPruning) {
  GpssnProcessor processor(poi_index_.get(), social_index_.get());
  PruningAuditorOptions audit_options;
  audit_options.sample_period = 1;  // Re-test every pruned candidate.
  audit_options.abort_on_violation = false;
  PruningAuditor auditor(poi_index_.get(), social_index_.get(), audit_options);
  QueryOptions options;
  options.auditor = &auditor;
  for (int i = 0; i < 4; ++i) {
    GpssnQuery q = SmallQuery();
    q.issuer = (i * 53) % ssn_->num_users();
    auto answer = processor.Execute(q, options);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  }
  EXPECT_GT(auditor.events(), 0) << "queries exercised no pruning at all";
  EXPECT_GT(auditor.samples(), 0);
  EXPECT_EQ(auditor.violations(), 0)
      << "sound pruning flagged as unsound:\n"
      << auditor.issues().front().detail;
}

TEST_F(AuditTest, LoosenedInterestBoundTripsAuditor) {
  // Construct the processor BEFORE corrupting: GPSSN_AUDIT builds validate
  // the indexes at construction time.
  GpssnProcessor processor(poi_index_.get(), social_index_.get());
  // Collapse every node's interest box to the empty range. Lemma 8 now
  // "proves" every subtree interest-infeasible, which is unsound for any
  // subtree holding a user similar to the issuer (the issuer itself, at
  // the latest).
  for (SNodeId id = 0; id < social_index_->num_nodes(); ++id) {
    SocialIndexNode& node = social_index_->mutable_node_for_test(id);
    std::fill(node.lb_w.begin(), node.lb_w.end(), 0.0);
    std::fill(node.ub_w.begin(), node.ub_w.end(), 0.0);
  }
  PruningAuditorOptions audit_options;
  audit_options.sample_period = 1;
  audit_options.abort_on_violation = false;
  PruningAuditor auditor(poi_index_.get(), social_index_.get(), audit_options);
  QueryOptions options;
  options.auditor = &auditor;
  GpssnQuery q = SmallQuery();
  q.gamma = 1e-6;  // Any socially similar pair now violates the prune.
  auto answer = processor.Execute(q, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_GT(auditor.violations(), 0)
      << "loosened Lemma 8 bound was not caught";
  EXPECT_TRUE(std::any_of(auditor.issues().begin(), auditor.issues().end(),
                          [](const AuditIssue& issue) {
                            return issue.check.find("social-node-interest") !=
                                   std::string::npos;
                          }))
      << "violations attributed to the wrong rule";
}

TEST_F(AuditTest, BogusDistanceLowerBoundTripsAuditor) {
  PruningAuditorOptions audit_options;
  audit_options.sample_period = 1;
  audit_options.abort_on_violation = false;
  PruningAuditor auditor(poi_index_.get(), social_index_.get(), audit_options);
  const QueryUserContext ctx(SmallQuery(), *social_index_);
  // Claim an absurd lower bound on dist_RN(u_q, poi 0): the brute-force
  // Dijkstra re-test must expose it.
  auditor.OnPoiDistanceBound(ctx, /*poi=*/0, /*lb=*/1e9);
  EXPECT_EQ(auditor.violations(), 1);
  // And a sound (trivial) bound must not trip.
  auditor.OnPoiDistanceBound(ctx, /*poi=*/0, /*lb=*/0.0);
  EXPECT_EQ(auditor.violations(), 1);
}

}  // namespace
}  // namespace gpssn
