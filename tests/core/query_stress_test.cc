// Randomized stress testing: the indexed processor must equal the
// exhaustive oracle across randomly drawn networks, build configurations,
// query parameters, and metrics. This is the widest net in the suite.

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/database.h"
#include "ssn/dataset.h"

namespace gpssn {
namespace {

class QueryStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryStressTest, RandomInstancesMatchOracle) {
  Rng rng(GetParam() * 7919 + 1);

  for (int instance = 0; instance < 3; ++instance) {
    // Random network shape.
    SyntheticSsnOptions data;
    data.num_road_vertices = 150 + static_cast<int>(rng.NextBounded(250));
    data.num_pois = 60 + static_cast<int>(rng.NextBounded(80));
    data.num_users = 100 + static_cast<int>(rng.NextBounded(150));
    data.num_topics = 8 + static_cast<int>(rng.NextBounded(20));
    data.space_size = 15.0 + rng.UniformDouble(0, 10);
    data.community_size = 30 + static_cast<int>(rng.NextBounded(60));
    data.distribution =
        rng.Bernoulli(0.5) ? Distribution::kUniform : Distribution::kZipf;
    data.seed = rng.Next();

    // Random build configuration.
    GpssnBuildOptions build;
    build.num_road_pivots = 1 + static_cast<int>(rng.NextBounded(5));
    build.num_social_pivots = 1 + static_cast<int>(rng.NextBounded(5));
    build.optimize_pivots = rng.Bernoulli(0.5);
    build.social_index.leaf_cell_size = 8 + static_cast<int>(rng.NextBounded(32));
    build.social_index.fanout = 3 + static_cast<int>(rng.NextBounded(6));
    build.poi_index.rtree.max_entries = 8 + static_cast<int>(rng.NextBounded(32));
    build.poi_index.r_min = 0.3;
    build.poi_index.r_max = 4.5;
    build.seed = rng.Next();

    GpssnDatabase db(MakeSynthetic(data), build);

    for (int trial = 0; trial < 4; ++trial) {
      GpssnQuery q;
      q.issuer = static_cast<UserId>(rng.NextBounded(db.ssn().num_users()));
      q.tau = 2 + static_cast<int>(rng.NextBounded(3));
      q.gamma = rng.UniformDouble(0.05, 0.6);
      q.theta = rng.UniformDouble(0.05, 0.6);
      q.radius = rng.UniformDouble(0.4, 4.0);
      q.metric = rng.Bernoulli(0.25) ? InterestMetric::kJaccard
                                     : InterestMetric::kDotProduct;
      if (q.metric == InterestMetric::kJaccard) {
        q.gamma = rng.UniformDouble(0.02, 0.3);
      }
      auto got = db.Query(q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const GpssnAnswer oracle = BruteForceGpssn(db.ssn(), q);
      ASSERT_EQ(got->found, oracle.found)
          << "instance=" << instance << " trial=" << trial
          << " issuer=" << q.issuer << " tau=" << q.tau
          << " gamma=" << q.gamma << " theta=" << q.theta
          << " r=" << q.radius
          << " metric=" << static_cast<int>(q.metric);
      if (oracle.found) {
        ASSERT_NEAR(got->max_dist, oracle.max_dist, 1e-9)
            << "instance=" << instance << " trial=" << trial
            << " issuer=" << q.issuer;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryStressTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace gpssn
